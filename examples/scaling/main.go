// scaling: the paper's headline experiment in miniature — throughput of
// Leopard vs HotStuff as the replica count grows, on the calibrated
// simulator (Fig. 9). Expect Leopard to stay near 1e5 requests/sec while
// HotStuff's leader bottleneck collapses its throughput.
//
//	go run ./examples/scaling            # quick sweep
//	go run ./examples/scaling -full      # the paper's scales up to 600
package main

import (
	"flag"
	"fmt"
	"log"

	"leopard/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "sweep the paper's full scale list (slow)")
	flag.Parse()
	scales := []int{16, 64, 128}
	if *full {
		scales = []int{32, 64, 128, 256, 300, 400, 600}
	}
	if err := run(scales); err != nil {
		log.Fatal(err)
	}
}

func run(scales []int) error {
	fmt.Println("throughput vs scale (payload 128 B, Table II batch sizes)")
	fmt.Println("   n   Leopard(Kreq/s)   HotStuff(Kreq/s)   leader bw: Leo / HS (Mbps)")
	rows, err := experiments.Fig9(scales, 300)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if r.HotStuff != nil {
			fmt.Printf("%4d   %15.1f   %16.1f   %10.0f / %-6.0f\n",
				r.N, r.Leopard.Throughput/1e3, r.HotStuff.Throughput/1e3,
				r.Leopard.LeaderMbps, r.HotStuff.LeaderMbps)
		} else {
			fmt.Printf("%4d   %15.1f   %16s   %10.0f / %-6s\n",
				r.N, r.Leopard.Throughput/1e3, "-", r.Leopard.LeaderMbps, "-")
		}
	}
	fmt.Println("\nLeopard's curve stays flat because every replica shares the")
	fmt.Println("dissemination load (constant scaling factor); HotStuff's leader")
	fmt.Println("must push every request to all n-1 replicas itself.")
	return nil
}
