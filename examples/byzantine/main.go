// byzantine: the paper's selective attack (§IV-A2) and Leopard's defense.
//
// A faulty replica disseminates its datablocks to only a bare quorum of
// replicas and ignores retrieval queries from everyone else. The ready
// round guarantees the leader only links datablocks held by 2f+1 replicas,
// so the excluded honest replicas can always recover them from f+1 honest
// holders via erasure-coded responses (Alg. 3) — liveness is preserved.
//
//	go run ./examples/byzantine
package main

import (
	"fmt"
	"log"
	"time"

	"leopard/internal/crypto"
	"leopard/internal/leopard"
	"leopard/internal/simnet"
	"leopard/internal/transport"
	"leopard/internal/types"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 7 // f = 2, quorum = 5; replica 1 leads view 1
	q, err := types.NewQuorumParams(n)
	if err != nil {
		return err
	}
	suite, err := crypto.NewEd25519Suite(n, []byte("byzantine-demo"))
	if err != nil {
		return err
	}
	nodes := make([]transport.Node, n)
	leo := make([]*leopard.Node, n)
	for i := 0; i < n; i++ {
		node, err := leopard.NewNode(leopard.Config{
			ID:               types.ReplicaID(i),
			Quorum:           q,
			Suite:            suite,
			DatablockSize:    20,
			BFTBlockSize:     2,
			RetrievalTimeout: 10 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		leo[i] = node
		nodes[i] = node
	}

	// Replica 2 is Byzantine: its datablocks reach only replicas
	// 0, 1, 3, 4 (with itself that is 2f+1 = 5 holders, enough for the
	// ready round), and it ignores queries from replicas 5 and 6.
	leo[2].SetSelectiveAttack([]types.ReplicaID{0, 1, 3, 4})

	net, err := simnet.New(simnet.DefaultConfig(), nodes)
	if err != nil {
		return err
	}
	net.Start()

	// The faulty replica's clients submit 60 requests through it.
	for i := 0; i < 60; i++ {
		leo[2].SubmitRequest(net.Now(), types.Request{
			ClientID: 7, Seq: uint64(i), Payload: []byte("attacked-payload"),
		})
	}
	net.Run(2 * time.Second)

	fmt.Println("per-replica outcome (replica 2 is the attacker):")
	for i, node := range leo {
		st := node.Stats()
		retrBytes := net.Stats(types.ReplicaID(i)).Received[transport.ClassRetrieval]
		fmt.Printf("  replica %d: confirmed=%3d retrievals=%d retrieval-bytes-in=%d\n",
			i, st.ConfirmedRequests, st.Retrievals, retrBytes)
	}

	for i, node := range leo {
		if got := node.Stats().ConfirmedRequests; got < 60 {
			return fmt.Errorf("replica %d confirmed only %d of 60", i, got)
		}
	}
	recovered := leo[5].Stats().Retrievals + leo[6].Stats().Retrievals
	fmt.Printf("\nliveness preserved: all replicas confirmed all 60 requests;\n"+
		"replicas 5 and 6 recovered %d datablocks through the erasure-coded committee\n", recovered)
	return nil
}
