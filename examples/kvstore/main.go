// kvstore: a replicated key-value store built on the Leopard log.
//
// Each replica applies confirmed requests (SET commands) to a local map in
// log order; because Leopard guarantees an identical log at every honest
// replica, all stores converge to the same state. The demo issues
// conflicting writes through different replicas and shows that every
// replica resolves them identically.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"leopard/internal/crypto"
	"leopard/internal/leopard"
	"leopard/internal/simnet"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// Store is the state machine: a string map applied in log order.
type Store struct {
	data    map[string]string
	applied int
}

// Apply executes one SET command of the form "key=value".
func (s *Store) Apply(payload []byte) {
	parts := strings.SplitN(string(payload), "=", 2)
	if len(parts) != 2 {
		return
	}
	s.data[parts[0]] = parts[1]
	s.applied++
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 4
	q, err := types.NewQuorumParams(n)
	if err != nil {
		return err
	}
	suite, err := crypto.NewEd25519Suite(n, []byte("kvstore"))
	if err != nil {
		return err
	}

	stores := make([]*Store, n)
	nodes := make([]transport.Node, n)
	leo := make([]*leopard.Node, n)
	for i := 0; i < n; i++ {
		stores[i] = &Store{data: make(map[string]string)}
		node, err := leopard.NewNode(leopard.Config{
			ID:            types.ReplicaID(i),
			Quorum:        q,
			Suite:         suite,
			DatablockSize: 4,
			BFTBlockSize:  2,
		})
		if err != nil {
			return err
		}
		store := stores[i]
		node.SetExecutor(func(sn types.SeqNum, reqs []types.Request) {
			for _, r := range reqs {
				store.Apply(r.Payload)
			}
		})
		leo[i] = node
		nodes[i] = node
	}

	net, err := simnet.New(simnet.DefaultConfig(), nodes)
	if err != nil {
		return err
	}
	net.Start()

	// Two synthetic clients write through different replicas, including
	// conflicting writes to the same key. The log linearizes them.
	writes := []struct {
		via     types.ReplicaID
		client  uint64
		seq     uint64
		command string
	}{
		{2, 1, 1, "alice=100"},
		{3, 2, 1, "bob=250"},
		{2, 1, 2, "alice=175"}, // overwrites through the same replica
		{3, 2, 2, "carol=50"},
		{3, 2, 3, "alice=900"}, // conflicting write through another replica
		{2, 1, 3, "dave=75"},
	}
	for _, w := range writes {
		leo[w.via].SubmitRequest(net.Now(), types.Request{
			ClientID: w.client, Seq: w.seq, Payload: []byte(w.command),
		})
	}

	net.Run(2 * time.Second)

	// Every replica must hold the same state.
	fmt.Println("replica states after convergence:")
	for i, s := range stores {
		fmt.Printf("  replica %d: applied=%d alice=%s bob=%s carol=%s dave=%s\n",
			i, s.applied, s.data["alice"], s.data["bob"], s.data["carol"], s.data["dave"])
	}
	for i := 1; i < n; i++ {
		for k, v := range stores[0].data {
			if stores[i].data[k] != v {
				return fmt.Errorf("divergence: replica %d has %s=%s, replica 0 has %s", i, k, stores[i].data[k], v)
			}
		}
	}
	fmt.Println("\nall replicas agree on the final key-value state")
	return nil
}
