// kvstore: a replicated key-value store built on the Leopard log, served
// through the authenticated client path.
//
// Each replica applies confirmed requests (SET commands) to a local map in
// log order; because Leopard guarantees an identical log at every honest
// replica, all stores converge to the same state. Writes are signed with
// per-client ed25519 keys and verified at admission; a write counts as
// done only when f+1 replicas return matching signed replies (the reply
// certificate — at least one of them is honest). Reads are served from any
// single replica's executed state without agreement, tagged with the
// height the replica had executed to: fast, but possibly stale, and a
// lone Byzantine replica could lie — certificate-grade reads would need
// f+1 matching answers too.
//
// The demo issues conflicting writes through different replicas (including
// a duplicate retransmission) and shows that every replica resolves them
// identically and applies each write exactly once.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"leopard/internal/client"
	"leopard/internal/crypto"
	"leopard/internal/leopard"
	"leopard/internal/simnet"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// Store is the state machine: a string map applied in log order. It keeps
// the executed height alongside the data so local reads can report how
// fresh they are.
type Store struct {
	data    map[string]string
	applied int
	height  types.SeqNum
	// seen guards against duplicate application: a request retransmitted
	// through two replicas can be packed into two datablocks and therefore
	// appear twice in the log. A per-client high-water mark is NOT enough —
	// datablocks from different replicas commit in log order, not per-client
	// seq order, so a later seq can execute before an earlier one.
	seen map[types.RequestID]bool
}

// Apply executes one SET command of the form "key=value", exactly once per
// (client, seq).
func (s *Store) Apply(sn types.SeqNum, r types.Request) {
	s.height = sn
	if s.seen[r.ID()] {
		return // duplicate commit of a retransmitted write
	}
	s.seen[r.ID()] = true
	parts := strings.SplitN(string(r.Payload), "=", 2)
	if len(parts) != 2 {
		return
	}
	s.data[parts[0]] = parts[1]
	s.applied++
}

// Get is the fast local read path: it answers from this replica's executed
// state without running agreement, and reports the executed height the
// answer reflects. The caveat: the value can lag writes other replicas
// already executed, and trusting one replica is weaker than a certificate.
func (s *Store) Get(key string) (string, types.SeqNum) {
	return s.data[key], s.height
}

// certTracker aggregates signed replies per write until f+1 replicas agree
// on the same (serial number, result) — the reply-certificate rule from
// internal/client, inlined here because the demo's writes are concurrent
// rather than one closed loop.
type certTracker struct {
	f     int
	suite crypto.Suite
	votes map[types.RequestID]map[types.ReplicaID]string
	done  map[types.RequestID]bool
}

func (c *certTracker) add(m leopard.ReplyMsg) {
	// Only count replies whose signature share verifies: Share.Signer is
	// what names the voting replica, so counting an unverified reply would
	// let one Byzantine replica stuff a certificate with forged signers.
	if c.suite.VerifyShare(client.ReplyDigest(m.Client, m.Seq, m.SN, m.Result), m.Share) != nil {
		return
	}
	id := types.RequestID{Client: m.Client, Seq: m.Seq}
	if c.votes[id] == nil {
		c.votes[id] = make(map[types.ReplicaID]string)
	}
	key := fmt.Sprintf("%d/%x", m.SN, m.Result[:4])
	c.votes[id][m.Share.Signer] = key
	matching := 0
	for _, k := range c.votes[id] {
		if k == key {
			matching++
		}
	}
	if matching >= c.f+1 {
		c.done[id] = true
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 4
	q, err := types.NewQuorumParams(n)
	if err != nil {
		return err
	}
	suite, err := crypto.NewEd25519Suite(n, []byte("kvstore"))
	if err != nil {
		return err
	}
	// Three registered clients; each signs its writes with its own key.
	keys, err := client.NewKeychain(3, []byte("kvstore"))
	if err != nil {
		return err
	}

	certs := &certTracker{
		f:     q.F,
		suite: suite,
		votes: make(map[types.RequestID]map[types.ReplicaID]string),
		done:  make(map[types.RequestID]bool),
	}
	stores := make([]*Store, n)
	nodes := make([]transport.Node, n)
	leo := make([]*leopard.Node, n)
	for i := 0; i < n; i++ {
		stores[i] = &Store{data: make(map[string]string), seen: make(map[types.RequestID]bool)}
		node, err := leopard.NewNode(leopard.Config{
			ID:            types.ReplicaID(i),
			Quorum:        q,
			Suite:         suite,
			DatablockSize: 4,
			BFTBlockSize:  2,
			Verifier:      keys.Verifier(),
		})
		if err != nil {
			return err
		}
		store := stores[i]
		node.SetExecutor(func(sn types.SeqNum, reqs []types.Request) {
			for _, r := range reqs {
				store.Apply(sn, r)
			}
		})
		node.SetReplySink(certs.add)
		leo[i] = node
		nodes[i] = node
	}

	net, err := simnet.New(simnet.DefaultConfig(), nodes)
	if err != nil {
		return err
	}
	net.Start()

	// Two clients write through different replicas, including conflicting
	// writes to the same key and one duplicate retransmission through a
	// second replica. The log linearizes the conflicts; the per-client seq
	// watermark in Apply suppresses the duplicate.
	writes := []struct {
		via     types.ReplicaID
		client  uint64
		seq     uint64
		command string
	}{
		{2, 1, 1, "alice=100"},
		{3, 2, 1, "bob=250"},
		{2, 1, 2, "alice=175"}, // overwrites through the same replica
		{3, 2, 2, "carol=50"},
		{3, 2, 3, "alice=900"}, // conflicting write through another replica
		{2, 1, 3, "dave=75"},
		{3, 1, 3, "dave=75"}, // retransmission of the same signed write
	}
	ids := make(map[types.RequestID]string)
	for _, w := range writes {
		req := types.Request{ClientID: w.client, Seq: w.seq, Payload: []byte(w.command)}
		sig, err := keys.Sign(req)
		if err != nil {
			return err
		}
		if v := leo[w.via].SubmitSigned(net.Now(), req, sig); !v.OK() {
			fmt.Printf("replica %d refused %q: %v (expected for the duplicate)\n", w.via, w.command, v)
		}
		ids[req.ID()] = w.command
	}
	// A forged write must be rejected at admission: client 2's key cannot
	// sign for client 1.
	forged := types.Request{ClientID: 1, Seq: 9, Payload: []byte("alice=0")}
	badSig, err := keys.Sign(types.Request{ClientID: 2, Seq: 9, Payload: []byte("alice=0")})
	if err != nil {
		return err
	}
	if v := leo[2].SubmitSigned(net.Now(), forged, badSig); v.OK() {
		return fmt.Errorf("forged write was admitted")
	} else {
		fmt.Printf("forged write rejected at admission: %v\n\n", v)
	}

	net.Run(2 * time.Second)

	// Every submitted write must hold an f+1 reply certificate.
	fmt.Println("reply certificates (f+1 matching signed replies):")
	for id, cmd := range ids {
		status := "MISSING"
		if certs.done[id] {
			status = "certified"
		}
		fmt.Printf("  client %d seq %d %-12q %s\n", id.Client, id.Seq, cmd, status)
		if !certs.done[id] {
			return fmt.Errorf("write %q never formed a reply certificate", cmd)
		}
	}

	// Every replica must hold the same state, each write applied once.
	fmt.Println("\nreplica states after convergence:")
	for i, s := range stores {
		fmt.Printf("  replica %d: applied=%d alice=%s bob=%s carol=%s dave=%s\n",
			i, s.applied, s.data["alice"], s.data["bob"], s.data["carol"], s.data["dave"])
	}
	for i := 1; i < n; i++ {
		if stores[i].applied != stores[0].applied {
			return fmt.Errorf("replica %d applied %d writes, replica 0 applied %d (duplicate suppression diverged)",
				i, stores[i].applied, stores[0].applied)
		}
		for k, v := range stores[0].data {
			if stores[i].data[k] != v {
				return fmt.Errorf("divergence: replica %d has %s=%s, replica 0 has %s", i, k, stores[i].data[k], v)
			}
		}
	}

	// The fast local read path: any single replica answers immediately from
	// executed state, tagged with the height the answer reflects.
	value, height := stores[2].Get("alice")
	fmt.Printf("\nfast local read at replica 2: alice=%s (executed height %d; no agreement run —\n"+
		"the value may lag other replicas and certificate-grade reads need f+1 answers)\n", value, height)

	fmt.Println("\nall replicas agree on the final key-value state")
	return nil
}
