// Quickstart: a 4-replica Leopard cluster on the in-process simulator.
// Submit 100 requests to the non-leader replicas and watch them confirm.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"leopard/internal/crypto"
	"leopard/internal/leopard"
	"leopard/internal/simnet"
	"leopard/internal/transport"
	"leopard/internal/types"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 4
	q, err := types.NewQuorumParams(n)
	if err != nil {
		return err
	}
	// Real Ed25519 threshold-style signatures (trusted-dealer setup).
	suite, err := crypto.NewEd25519Suite(n, []byte("quickstart"))
	if err != nil {
		return err
	}

	// Build the four replicas. Replica 0's executor prints confirmations.
	nodes := make([]transport.Node, n)
	var leoNodes [n]*leopard.Node
	for i := 0; i < n; i++ {
		node, err := leopard.NewNode(leopard.Config{
			ID:            types.ReplicaID(i),
			Quorum:        q,
			Suite:         suite,
			DatablockSize: 10, // small batches so the demo confirms fast
			BFTBlockSize:  2,
		})
		if err != nil {
			return err
		}
		leoNodes[i] = node
		nodes[i] = node
	}
	confirmed := 0
	leoNodes[0].SetExecutor(func(sn types.SeqNum, reqs []types.Request) {
		confirmed += len(reqs)
		fmt.Printf("block %d executed with %d requests (total %d)\n", sn, len(reqs), confirmed)
	})

	// Wire them onto the simulated network (9.8 Gbps, 500us latency).
	net, err := simnet.New(simnet.DefaultConfig(), nodes)
	if err != nil {
		return err
	}
	net.Start()

	// Submit 100 requests to the non-leader replicas (replica 1 leads
	// view 1): one client per replica, each with its own contiguous seq
	// stream — the nonce-aware mempool parks gapped seqs, so a client must
	// not stripe one stream across replicas. In a deployment a client
	// library does this; see cmd/leopard-client.
	leader := leoNodes[0].Leader()
	seqs := make(map[types.ReplicaID]uint64)
	submitted := 0
	for i := 0; submitted < 100; i++ {
		target := types.ReplicaID(i % n)
		if target == leader {
			continue
		}
		req := types.Request{
			ClientID: 42 + uint64(target),
			Seq:      seqs[target],
			Payload:  []byte(fmt.Sprintf("transfer #%d", submitted)),
		}
		seqs[target]++
		leoNodes[target].SubmitRequest(net.Now(), req)
		submitted++
	}

	// Run one virtual second; everything confirms within a few ms.
	net.Run(time.Second)

	fmt.Printf("\nconfirmed %d/100 requests; replica 0 executed up to block %d\n",
		confirmed, leoNodes[0].ExecutedTo())
	if confirmed < 100 {
		return fmt.Errorf("expected all 100 requests to confirm")
	}
	return nil
}
