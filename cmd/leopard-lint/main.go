// Command leopard-lint is the multichecker for the project's invariant
// suite (internal/lint): five custom analyzers that machine-check the
// codebase's hard-won contracts — persist-before-broadcast vote-ahead
// logging, the codec frame-ownership/borrow contract, deterministic simnet
// execution, copy-on-return store accessors, and wire-kind exhaustiveness —
// plus selected stock vet passes.
//
// Usage:
//
//	go run ./cmd/leopard-lint ./...
//	go run ./cmd/leopard-lint -stock=false ./internal/leopard
//
// The exit status is 0 iff no analyzer reported a finding; CI runs it as a
// blocking gate. Stock passes (copylocks, lostcancel) are delegated to
// `go vet`, which ships them in-toolchain; the SSA-based nilness pass needs
// golang.org/x/tools, which the hermetic build environment cannot fetch —
// it joins the suite automatically once that dependency becomes available
// (see internal/lint/analysis for the compatibility story).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"leopard/internal/lint"
)

func main() {
	stock := flag.Bool("stock", true, "also run the stock vet passes (copylocks, lostcancel) via go vet")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: leopard-lint [-stock=false] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Suite() {
			fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "leopard-lint:", err)
		os.Exit(2)
	}

	failed := false
	findings, err := lint.Run(dir, lint.Suite(), patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leopard-lint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
		failed = true
	}

	if *stock {
		// The stock passes run as a separate go vet invocation: naming
		// specific analyzer flags disables the rest of the vet suite, so
		// this adds exactly copylocks + lostcancel to the gate.
		args := append([]string{"vet", "-copylocks", "-lostcancel"}, patterns...)
		cmd := exec.Command("go", args...)
		cmd.Dir = dir
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	if failed {
		os.Exit(1)
	}
}
