// Command leopard-sim reproduces the paper's tables and figures from the
// command line. Each experiment id corresponds to one table/figure of the
// evaluation section (see DESIGN.md for the index):
//
//	leopard-sim -experiment fig9
//	leopard-sim -experiment fig12 -scales 4,16,64
//	leopard-sim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"leopard/internal/erasure"
	"leopard/internal/experiments"
	"leopard/internal/leopard/analysis"
	"leopard/internal/metrics"
	"leopard/internal/obs"
)

var knownExperiments = []struct{ id, desc string }{
	{"fig2", "HotStuff throughput and leader bandwidth vs n"},
	{"table1", "amortized costs and scaling factors (analytical)"},
	{"fig6", "HotStuff throughput vs batch size"},
	{"fig7", "Leopard throughput vs BFTblock size"},
	{"fig8", "Leopard throughput vs datablock size"},
	{"fig9", "throughput vs scale, Leopard vs HotStuff"},
	{"fig10", "scaling up: throughput/latency vs per-replica bandwidth"},
	{"fig11", "leader bandwidth vs n, both systems"},
	{"table3", "bandwidth utilization breakdown (n=32)"},
	{"table4", "latency breakdown (n=32)"},
	{"fig12", "retrieval cost of a missing datablock (+ Table V)"},
	{"fig13", "view-change time and communication cost"},
	{"attack", "throughput under f selective-attacking replicas"},
	{"vclanes", "view-change convergence under saturated bulk lanes (lanes vs FIFO)"},
	{"stream", "slow-receiver datablock fan-out: credit streaming vs drop-on-overflow"},
	{"recover", "crash-restart a replica: WAL recovery + state transfer vs no-durability baseline"},
	{"chaos", "seeded fault schedules (partitions, loss, skew, crashes) under the invariant checker"},
	{"clients", "closed-loop signed clients: reply certificates under leader churn + a reply-suppressing replica"},
	{"rotate", "pipelined rotating-leader agreement: fixed vs rotated A/B with per-replica CPU shares"},
	{"chaos-rotate", "the chaos fault sweep with the rotating-leader schedule enabled"},
}

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id (see -list)")
		scalesArg  = flag.String("scales", "", "comma-separated replica counts (default: per-experiment)")
		list       = flag.Bool("list", false, "list available experiments")

		erasureWorkers = flag.Int("erasure.parallel", 0,
			"erasure-coding worker goroutines per replica (0 = NumCPU, 1 = serial)")
		erasureCache = flag.Int("erasure.cache", 0,
			"decode-matrix cache entries per replica (0 = default, negative disables)")
		numClients = flag.Int("clients", 1200,
			"closed-loop client sessions for -experiment clients")
		tracePath = flag.String("trace", "",
			"write a Chrome trace_event JSON of the run to this path (chaos, chaos-rotate, rotate)")
		jsonPath = flag.String("json", "",
			"write the experiment's result rows as JSON to this path")
	)
	flag.Parse()
	experiments.ErasureOpts = erasure.Options{Parallel: *erasureWorkers, CacheSize: *erasureCache}
	if *list || *experiment == "" {
		fmt.Println("experiments:")
		for _, e := range knownExperiments {
			fmt.Printf("  %-8s %s\n", e.id, e.desc)
		}
		if *experiment == "" && !*list {
			os.Exit(2)
		}
		return
	}
	scales, err := parseScales(*scalesArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *tracePath != "" {
		if !traceable[*experiment] {
			fmt.Fprintf(os.Stderr, "-trace is not supported by experiment %q (supported: chaos, chaos-rotate, rotate)\n", *experiment)
			os.Exit(2)
		}
		experiments.Tracing = obs.NewCollector(obs.DefaultRingCap)
	}
	rows, runErr := run(*experiment, scales, *numClients)
	// The trace and JSON artifacts are written even when the run reports
	// violations: a failing chaos run is exactly when the trace matters.
	if *jsonPath != "" && rows != nil {
		if err := writeJSON(*jsonPath, *experiment, scales, rows); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *tracePath != "" {
		if err := writeTrace(*tracePath, experiments.Tracing); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, runErr)
		os.Exit(1)
	}
}

// traceable marks the experiments wired into the experiments.Tracing
// collector; -trace on anything else would silently export nothing.
var traceable = map[string]bool{"chaos": true, "chaos-rotate": true, "rotate": true}

// writeJSON dumps the experiment's typed result rows for machines.
func writeJSON(path, experiment string, scales []int, rows any) error {
	doc := struct {
		Experiment string `json:"experiment"`
		Scales     []int  `json:"scales,omitempty"`
		Rows       any    `json:"rows"`
	}{Experiment: experiment, Scales: scales, Rows: rows}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal results: %w", err)
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// writeTrace exports the collected event traces as Chrome trace_event JSON
// (chrome://tracing, Perfetto) and prints the stage-latency reduction.
func writeTrace(path string, col *obs.Collector) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create trace: %w", err)
	}
	if err := col.WriteChrome(f); err != nil {
		f.Close()
		return fmt.Errorf("write trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if rows := col.StageBreakdown(); len(rows) > 0 {
		fmt.Println("-- traced stage breakdown --")
		for _, r := range rows {
			fmt.Printf("%-34s %12v %6.2f%%\n", r.Stage, r.Total, r.Percent)
		}
	}
	fmt.Printf("trace written to %s\n", path)
	return nil
}

func parseScales(arg string) ([]int, error) {
	if arg == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(arg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad scale %q: %w", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

// run executes one experiment: it prints the human-readable table and
// returns the typed result rows for the -json writer (nil when the
// experiment has no row form).
func run(id string, scales []int, numClients int) (any, error) {
	var out any
	switch id {
	case "fig2":
		rows, err := experiments.Fig2(scales)
		if err != nil {
			return nil, err
		}
		out = rows
		fmt.Println("   n   throughput(Kreq/s)   leader(Gbps)")
		for _, r := range rows {
			fmt.Printf("%4d   %18.1f   %12.2f\n", r.N, r.Throughput/1e3, r.LeaderMbps/1e3)
		}
	case "table1":
		rows := analysis.TableI()
		out = rows
		for _, r := range rows {
			fmt.Printf("%-9s leader=%-5s replica=%-5s SF=%-5s votes=%d/%d\n",
				r.Protocol, r.LeaderCost, r.ReplicaCost, r.ScalingFactor, r.VotingOptimistic, r.VotingFaulty)
		}
	case "fig6":
		rows, err := experiments.Fig6(scales, nil)
		if err != nil {
			return nil, err
		}
		out = rows
		printPoints("batch", rows)
	case "fig7":
		rows, err := experiments.Fig7(scales, nil)
		if err != nil {
			return nil, err
		}
		out = rows
		printPoints("links", rows)
	case "fig8":
		type fig8Group struct {
			BFTBlockSize int
			Rows         []experiments.Point
		}
		var groups []fig8Group
		for _, bft := range []int{10, 100} {
			rows, err := experiments.Fig8(scales, nil, bft)
			if err != nil {
				return nil, err
			}
			groups = append(groups, fig8Group{BFTBlockSize: bft, Rows: rows})
			fmt.Printf("-- BFTblock size %d --\n", bft)
			printPoints("datablock", rows)
		}
		out = groups
	case "fig9", "fig11":
		rows, err := experiments.Fig9(scales, 300)
		if err != nil {
			return nil, err
		}
		out = rows
		if id == "fig9" {
			fmt.Println("   n   Leopard(Kreq/s)   HotStuff(Kreq/s)")
		} else {
			fmt.Println("   n   Leopard-leader(Mbps)   HotStuff-leader(Mbps)")
		}
		for _, r := range rows {
			if id == "fig9" {
				if r.HotStuff != nil {
					fmt.Printf("%4d   %15.1f   %16.1f\n", r.N, r.Leopard.Throughput/1e3, r.HotStuff.Throughput/1e3)
				} else {
					fmt.Printf("%4d   %15.1f   %16s\n", r.N, r.Leopard.Throughput/1e3, "-")
				}
				continue
			}
			if r.HotStuff != nil {
				fmt.Printf("%4d   %20.0f   %21.0f\n", r.N, r.Leopard.LeaderMbps, r.HotStuff.LeaderMbps)
			} else {
				fmt.Printf("%4d   %20.0f   %21s\n", r.N, r.Leopard.LeaderMbps, "-")
			}
		}
	case "fig10":
		rows, err := experiments.Fig10(scales, nil)
		if err != nil {
			return nil, err
		}
		out = rows
		fmt.Println("system     n   bw(Mbps)   tput(Mbps)   latency")
		for _, r := range rows {
			fmt.Printf("%-8s %4d   %8.0f   %10.2f   %v\n", r.System, r.N, r.BandwidthMbps, r.TputMbps, r.MeanLat)
		}
	case "table3":
		leader, replica, err := experiments.Table3(32)
		if err != nil {
			return nil, err
		}
		out = struct {
			Leader  []metrics.BreakdownRow
			Replica []metrics.BreakdownRow
		}{Leader: leader, Replica: replica}
		fmt.Println("-- leader --")
		fmt.Print(metrics.FormatBreakdown(leader))
		fmt.Println("-- non-leader --")
		fmt.Print(metrics.FormatBreakdown(replica))
	case "table4":
		rows, err := experiments.Table4(32)
		if err != nil {
			return nil, err
		}
		out = rows
		for _, r := range rows {
			fmt.Printf("%-26s %6.2f%%\n", r.Stage, r.Percent)
		}
	case "fig12":
		rows, err := experiments.Fig12(scales, false)
		if err != nil {
			return nil, err
		}
		out = rows
		fmt.Println("   n   recover(KB)   respond(KB)   time(ms)")
		for _, r := range rows {
			fmt.Printf("%4d   %11.1f   %11.1f   %8.1f\n",
				r.N, float64(r.RecoverBytes)/1e3, float64(r.RespondBytes)/1e3,
				float64(r.RetrievalTime.Microseconds())/1e3)
		}
	case "fig13":
		rows, err := experiments.Fig13(scales)
		if err != nil {
			return nil, err
		}
		out = rows
		fmt.Println("   n   time(ms)   total(B)   leader-sent(B)")
		for _, r := range rows {
			fmt.Printf("%4d   %8.1f   %8d   %14d\n",
				r.N, float64(r.Time.Microseconds())/1e3, r.TotalBytes, r.LeaderSent)
		}
	case "vclanes":
		rows, err := experiments.ViewChangeUnderBulk(scales)
		if err != nil {
			return nil, err
		}
		out = rows
		fmt.Println("   n   laned(ms)   single-queue(ms)")
		for _, r := range rows {
			fmt.Printf("%4d   %9.1f   %16.1f\n",
				r.N, float64(r.Laned.Microseconds())/1e3, float64(r.SingleQ.Microseconds())/1e3)
		}
	case "stream":
		rows, err := experiments.StreamScenario(scales)
		if err != nil {
			return nil, err
		}
		out = rows
		fmt.Println("   n   mode     converge(ms)   peak-queued(KB)   drops   retrievals")
		for _, r := range rows {
			fmt.Printf("%4d   %-6s   %12.1f   %15.1f   %5d   %10d\n",
				r.N, r.Mode, float64(r.Converged.Microseconds())/1e3,
				float64(r.PeakQueuedBytes)/1e3, r.BulkDrops, r.Retrievals)
		}
	case "recover":
		rows, err := experiments.RecoverScenario(scales)
		if err != nil {
			return nil, err
		}
		out = rows
		fmt.Println("   n   mode       caught-up   catchup(ms)   height@restart   replayed   transferred   retrievals   re-votes")
		for _, r := range rows {
			caught := "yes"
			catchup := fmt.Sprintf("%11.1f", float64(r.CatchupTime.Microseconds())/1e3)
			if !r.CaughtUp {
				caught, catchup = "NO", fmt.Sprintf("%11s", "never")
			}
			fmt.Printf("%4d   %-8s   %9s   %s   %14d   %8d   %11d   %10d   %8d\n",
				r.N, r.Mode, caught, catchup, r.HeightAtRestart,
				r.BlocksReplayed, r.StateBlocks, r.Retrievals, r.ReVotes)
		}
	case "rotate":
		rows, err := experiments.RotateScenario(scales)
		if err != nil {
			return nil, err
		}
		out = rows
		fmt.Println("   n   mode      throughput(Kreq/s)   latency(ms)   leader-cpu   other-cpu   max-cpu")
		for _, r := range rows {
			fmt.Printf("%4d   %-7s   %18.1f   %11.1f   %9.1f%%   %8.1f%%   %6.1f%%\n",
				r.N, r.Mode, r.Throughput/1e3, float64(r.MeanLat.Microseconds())/1e3,
				100*r.LeaderCPU, 100*r.OtherCPU, 100*r.MaxCPU)
		}
	case "chaos", "chaos-rotate":
		var rows []experiments.ChaosResult
		var err error
		if id == "chaos-rotate" {
			rows, err = experiments.ChaosScenarioRotated(scales)
		} else {
			rows, err = experiments.ChaosScenario(scales)
		}
		if err != nil {
			return nil, err
		}
		out = rows
		fmt.Println("   n   plan                     height   view-changes   votes-logged   votes-reloaded   violations")
		bad := 0
		for _, r := range rows {
			viol := "none"
			if len(r.Violations) > 0 {
				viol = fmt.Sprintf("%d (see below)", len(r.Violations))
				bad += len(r.Violations)
			}
			fmt.Printf("%4d   %-22s   %6d   %12d   %12d   %14d   %s\n",
				r.N, r.Plan, r.Height, r.ViewChanges, r.VotesLogged, r.VotesReloaded, viol)
		}
		for _, r := range rows {
			for _, v := range r.Violations {
				fmt.Printf("VIOLATION n=%d plan=%s: %s\n", r.N, r.Plan, v)
			}
			if r.PostMortem != "" {
				fmt.Printf("-- post-mortem n=%d plan=%s (event history at first violation) --\n%s", r.N, r.Plan, r.PostMortem)
			}
		}
		if bad > 0 {
			return out, fmt.Errorf("chaos: %d invariant violations", bad)
		}
	case "clients":
		rows, err := experiments.ClientsScenario(scales, numClients)
		if err != nil {
			return nil, err
		}
		out = rows
		for _, r := range rows {
			fmt.Print(experiments.FormatClients(r))
		}
	case "attack":
		if len(scales) == 0 {
			scales = []int{16, 64}
		}
		var rows []experiments.SelectiveAttackResult
		fmt.Println("   n   throughput(Kreq/s)   retrievals")
		for _, n := range scales {
			r, err := experiments.SelectiveAttack(n)
			if err != nil {
				return nil, err
			}
			rows = append(rows, r)
			fmt.Printf("%4d   %18.1f   %10d\n", r.N, r.Throughput/1e3, r.Retrievals)
		}
		out = rows
	default:
		return nil, fmt.Errorf("unknown experiment %q (use -list)", id)
	}
	return out, nil
}

func printPoints(param string, rows []experiments.Point) {
	fmt.Printf("   n   %9s   throughput(Kreq/s)\n", param)
	for _, r := range rows {
		fmt.Printf("%4d   %9.0f   %18.1f\n", r.N, r.Param, r.Throughput/1e3)
	}
}
