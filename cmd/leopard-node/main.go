// Command leopard-node runs one Leopard replica over real TCP from a JSON
// cluster configuration, plus a client port accepting request submissions.
//
// Cluster config (shared by all replicas):
//
//	{
//	  "replicas": ["127.0.0.1:7000", "127.0.0.1:7001", ...],
//	  "clientPorts": ["127.0.0.1:8000", "127.0.0.1:8001", ...],
//	  "seed": "dev-cluster-seed",
//	  "datablockSize": 500,
//	  "bftBlockSize": 10
//	}
//
// Run: leopard-node -config cluster.json -id 2
//
// Client wire protocol (on the replica's client port): each frame is
// 4-byte big-endian length + body; a submission body is an encoded
// leopard.RequestMsg (the client-signed request), and the replica answers
// each executed request with an encoded leopard.ReplyMsg — a signed
// (serial number, result) claim the client aggregates into an f+1 reply
// certificate (see cmd/leopard-client). Client keys are derived from the
// cluster seed; "clients" bounds the registered key space.
//
// With -data-dir the replica is durable: executed blocks go to a
// segmented CRC-checked write-ahead log, stable checkpoints anchor it, and
// a restart with the same directory recovers locally then state-transfers
// whatever the cluster decided in the meantime. Each replica needs its own
// directory.
//
// With -status the replica serves its unified metrics registry over HTTP:
// GET /metrics is the Prometheus text exposition and GET /status a JSON
// snapshot of the same registry — both views are generated from one source
// of truth, so adding a counter to leopard.Stats or metrics.StreamStats
// surfaces on both endpoints with no hand edits. Each scrape re-binds the
// node's counters on the runtime's apply loop via Inject — the node is a
// single-goroutine state machine, so Stats()/ExecutedTo() must never be
// read directly from an HTTP handler goroutine. -pprof additionally mounts
// net/http/pprof profiling handlers on the status listener.
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"leopard/internal/client"
	"leopard/internal/crypto"
	"leopard/internal/leopard"
	"leopard/internal/mempool"
	"leopard/internal/obs"
	"leopard/internal/storage"
	"leopard/internal/transport"
	"leopard/internal/transport/tcp"
	"leopard/internal/types"
)

// ClusterConfig is the JSON file shared by every replica and client.
type ClusterConfig struct {
	Replicas      []string `json:"replicas"`
	ClientPorts   []string `json:"clientPorts"`
	Seed          string   `json:"seed"`
	DatablockSize int      `json:"datablockSize"`
	BFTBlockSize  int      `json:"bftBlockSize"`
	// Clients is the size of the registered client key space; client i
	// signs with the key derived from (seed, i). Zero means 1024.
	Clients int `json:"clients"`
}

func main() {
	var (
		configPath = flag.String("config", "cluster.json", "cluster config file")
		id         = flag.Int("id", -1, "replica id")
		statusAddr = flag.String("status", "", "HTTP observability listen address serving /metrics and /status (empty disables)")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/ on the -status listener")
		dataDir    = flag.String("data-dir", "", "durable state directory for this replica (empty runs in-memory); "+
			"holds the executed-block WAL, the stable-checkpoint anchor and replica metadata — "+
			"on restart the replica recovers from it and state-transfers the rest from peers")
	)
	flag.Parse()
	if err := run(*configPath, *id, *statusAddr, *pprofOn, *dataDir); err != nil {
		log.Fatal(err)
	}
}

func run(configPath string, id int, statusAddr string, pprofOn bool, dataDir string) error {
	raw, err := os.ReadFile(configPath)
	if err != nil {
		return err
	}
	var cfg ClusterConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return fmt.Errorf("parse %s: %w", configPath, err)
	}
	n := len(cfg.Replicas)
	if id < 0 || id >= n {
		return fmt.Errorf("id %d outside cluster of %d replicas", id, n)
	}
	q, err := types.NewQuorumParams(n)
	if err != nil {
		return err
	}
	suite, err := crypto.NewEd25519Suite(n, []byte(cfg.Seed))
	if err != nil {
		return err
	}
	var store storage.Store
	if dataDir != "" {
		wal, err := storage.Open(dataDir, storage.Options{})
		if err != nil {
			return fmt.Errorf("open data dir %s: %w", dataDir, err)
		}
		defer wal.Close()
		store = wal
		log.Printf("replica %d: durable state in %s", id, dataDir)
	}
	numClients := cfg.Clients
	if numClients <= 0 {
		numClients = 1024
	}
	keys, err := client.NewKeychain(numClients, []byte(cfg.Seed))
	if err != nil {
		return err
	}
	// One registry feeds both HTTP views; the tracer keeps a ring of
	// recent lifecycle events and mirrors per-kind counts into the
	// registry so the event stream shows up on /metrics too. Both are
	// only worth the atomics when something will scrape them.
	var (
		reg    *obs.Registry
		tracer *obs.Tracer
	)
	if statusAddr != "" {
		reg = obs.NewRegistry()
		tracer = obs.NewTracer(obs.DefaultRingCap)
		tracer.MirrorCounts(reg, "leopard")
	}
	node, err := leopard.NewNode(leopard.Config{
		ID:            types.ReplicaID(id),
		Quorum:        q,
		Suite:         suite,
		DatablockSize: cfg.DatablockSize,
		BFTBlockSize:  cfg.BFTBlockSize,
		Store:         store,
		Verifier:      keys.Verifier(),
		Tracer:        tracer,
	})
	if err != nil {
		return err
	}

	hub := newReplyHub()
	node.SetReplySink(hub.notify)

	rt, err := tcp.New(tcp.Config{
		Self:   types.ReplicaID(id),
		Addrs:  cfg.Replicas,
		Codec:  leopard.WireCodec{},
		Tracer: tracer,
	}, node)
	if err != nil {
		return err
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	var wg sync.WaitGroup
	if statusAddr != "" {
		statusLn, err := net.Listen("tcp", statusAddr)
		if err != nil {
			return fmt.Errorf("status listen: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/status", func(w http.ResponseWriter, req *http.Request) {
			if err := refresh(reg, rt, node, n); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(reg.Snapshot())
		})
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
			if err := refresh(reg, rt, node, n); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(w)
		})
		if pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			log.Printf("replica %d: pprof on http://%s/debug/pprof/", id, statusAddr)
		}
		srv := &http.Server{Handler: mux}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-ctx.Done()
			srv.Close()
			statusLn.Close()
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.Serve(statusLn)
		}()
		log.Printf("replica %d: observability on http://%s/metrics and /status", id, statusAddr)
	} else if pprofOn {
		return errors.New("-pprof requires -status (profiling handlers mount on the status listener)")
	}
	if len(cfg.ClientPorts) == n {
		ln, err := net.Listen("tcp", cfg.ClientPorts[id])
		if err != nil {
			return fmt.Errorf("client listen: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-ctx.Done()
			ln.Close()
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			serveClients(ln, rt, node, hub)
		}()
		log.Printf("replica %d: consensus on %s, clients on %s", id, cfg.Replicas[id], cfg.ClientPorts[id])
	} else {
		log.Printf("replica %d: consensus on %s (no client port configured)", id, cfg.Replicas[id])
	}

	err = rt.Run(ctx)
	// Release the listener goroutines before waiting on them — Run can
	// return (e.g. a failed listen) without the signal context firing.
	cancel()
	wg.Wait()
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}

// refresh re-binds the replica's counters into the registry for one
// scrape. Node counters are read under the runtime's serialization: the
// closure runs on the apply loop, the only goroutine allowed to touch node
// state. Every exported numeric field of leopard.Stats becomes a
// leopard_* gauge via SetStruct, so new stats fields surface on /metrics
// and /status without touching this file. nReplicas is the cluster size,
// for summing per-peer transport counters.
func refresh(reg *obs.Registry, rt *tcp.Runtime, node *leopard.Node, nReplicas int) error {
	done := make(chan struct{})
	err := rt.Inject(func(now time.Duration, out transport.Sink) {
		defer close(done)
		reg.SetStruct("leopard", node.Stats())
		reg.Gauge("leopard_now_seconds", "runtime clock at scrape time").Set(now.Seconds())
		reg.Gauge("leopard_leader", "leader replica id in the current view").SetInt(int64(node.Leader()))
		reg.Gauge("leopard_executed_to", "execution frontier sequence number").SetInt(int64(node.ExecutedTo()))
	})
	if err != nil {
		return err
	}
	// The closure may be enqueued but never run if the runtime stops
	// first; waiting on done alone would hang the scrape forever.
	select {
	case <-done:
	case <-rt.Done():
		// The bind may have completed in the same instant the runtime
		// stopped; prefer it over the shutdown error.
		select {
		case <-done:
		default:
			return errors.New("runtime stopped")
		}
	}
	// Transport-side counters live behind their own locks, not the apply
	// loop, so they are read here rather than inside the Inject closure.
	reg.SetStruct("leopard_stream", rt.StreamTotals())
	var drops int64
	for i := 0; i < nReplicas; i++ {
		drops += rt.Drops(types.ReplicaID(i))
	}
	reg.Gauge("leopard_dropped_frames", "inbound frames dropped by the control-queue bound, summed over peers").SetInt(drops)
	return nil
}

// clientConn serializes reply writes to one client connection.
type clientConn struct {
	mu   sync.Mutex
	conn net.Conn
}

func (c *clientConn) writeFrame(body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	writeClientFrame(c.conn, body)
}

// replyHub routes signed execution replies back to the client connection
// that submitted (or retransmitted) each request. The node emits a ReplyMsg
// for every executed request; only requests some connection registered
// interest in are forwarded, the rest are dropped here.
type replyHub struct {
	mu      sync.Mutex
	waiters map[types.RequestID]*clientConn
}

func newReplyHub() *replyHub {
	return &replyHub{waiters: make(map[types.RequestID]*clientConn)}
}

// expect registers conn as the reply destination for id. A retransmission
// through a newer connection takes the slot over.
func (h *replyHub) expect(id types.RequestID, conn *clientConn) {
	h.mu.Lock()
	h.waiters[id] = conn
	h.mu.Unlock()
}

// drop forgets every registration pointing at conn (connection closed).
func (h *replyHub) drop(conn *clientConn) {
	h.mu.Lock()
	for id, c := range h.waiters {
		if c == conn {
			delete(h.waiters, id)
		}
	}
	h.mu.Unlock()
}

// notify runs on the runtime's apply loop: it must not block, so the frame
// write happens on a fresh goroutine.
func (h *replyHub) notify(m leopard.ReplyMsg) {
	id := types.RequestID{Client: m.Client, Seq: m.Seq}
	h.mu.Lock()
	conn := h.waiters[id]
	delete(h.waiters, id)
	h.mu.Unlock()
	if conn == nil {
		return
	}
	go func() {
		buf, err := leopard.EncodeMessage(&m)
		if err != nil {
			return
		}
		conn.writeFrame(buf)
	}()
}

// serveClients handles client submissions on the client port.
func serveClients(ln net.Listener, rt *tcp.Runtime, node *leopard.Node, hub *replyHub) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go handleClient(conn, rt, node, hub)
	}
}

func handleClient(conn net.Conn, rt *tcp.Runtime, node *leopard.Node, hub *replyHub) {
	cc := &clientConn{conn: conn}
	defer func() {
		hub.drop(cc)
		conn.Close()
	}()
	for {
		frame, err := readClientFrame(conn)
		if err != nil {
			return
		}
		msg, err := leopard.DecodeMessageCopying(frame)
		if err != nil {
			return
		}
		req, ok := msg.(*leopard.RequestMsg)
		if !ok {
			return
		}
		// The waiter is registered inside the Inject closure, after the
		// admission verdict: RequestID is only (client, seq), so a request
		// that fails signature verification must never take over another
		// client's reply slot (suppressing its reply) or grow the waiters
		// map from an unauthenticated connection. Registering on the apply
		// loop is race-free — the reply for this request also fires on the
		// apply loop, strictly after admission. Duplicate submissions
		// (retransmits, DupLive) still move the reply slot here.
		if err := rt.Inject(func(now time.Duration, out transport.Sink) {
			if v := node.SubmitSigned(now, req.Req, req.Sig); v != mempool.BadSignature {
				hub.expect(req.Req.ID(), cc)
			}
		}); err != nil {
			return
		}
	}
}

func readClientFrame(conn net.Conn) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > 16<<20 {
		return nil, fmt.Errorf("client frame too large: %d", size)
	}
	frame := make([]byte, size)
	if _, err := io.ReadFull(conn, frame); err != nil {
		return nil, err
	}
	return frame, nil
}

func writeClientFrame(conn net.Conn, body []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(body)
	return err
}
