// Command leopard-client submits requests to a running leopard-node
// cluster and reports confirmation latency. It speaks the client frame
// protocol documented in cmd/leopard-node.
//
//	leopard-client -config cluster.json -replica 2 -count 100 -payload 128
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sort"
	"time"
)

func main() {
	var (
		configPath = flag.String("config", "cluster.json", "cluster config file")
		replica    = flag.Int("replica", 2, "replica to submit to (must not be the leader)")
		count      = flag.Int("count", 100, "number of requests")
		payload    = flag.Int("payload", 128, "payload bytes per request")
		clientID   = flag.Uint64("client", 1, "client id")
	)
	flag.Parse()
	if err := run(*configPath, *replica, *count, *payload, *clientID); err != nil {
		log.Fatal(err)
	}
}

type clusterConfig struct {
	ClientPorts []string `json:"clientPorts"`
}

func run(configPath string, replica, count, payload int, clientID uint64) error {
	raw, err := os.ReadFile(configPath)
	if err != nil {
		return err
	}
	var cfg clusterConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return err
	}
	if replica < 0 || replica >= len(cfg.ClientPorts) {
		return fmt.Errorf("replica %d has no client port", replica)
	}
	conn, err := net.DialTimeout("tcp", cfg.ClientPorts[replica], 5*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()

	sendAt := make(map[uint64]time.Time, count)
	done := make(chan []time.Duration, 1)
	go func() {
		latencies := make([]time.Duration, 0, count)
		for len(latencies) < count {
			ack, err := readFrame(conn)
			if err != nil {
				break
			}
			if len(ack) != 16 {
				continue
			}
			seq := binary.BigEndian.Uint64(ack[8:16])
			if at, ok := sendAt[seq]; ok {
				latencies = append(latencies, time.Since(at))
			}
		}
		done <- latencies
	}()

	body := make([]byte, 16+payload)
	binary.BigEndian.PutUint64(body[0:8], clientID)
	start := time.Now()
	for i := 0; i < count; i++ {
		binary.BigEndian.PutUint64(body[8:16], uint64(i))
		sendAt[uint64(i)] = time.Now()
		if err := writeFrame(conn, body); err != nil {
			return err
		}
	}

	select {
	case latencies := <-done:
		elapsed := time.Since(start)
		if len(latencies) == 0 {
			return fmt.Errorf("no acknowledgments received")
		}
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		var sum time.Duration
		for _, l := range latencies {
			sum += l
		}
		fmt.Printf("confirmed %d/%d requests in %v\n", len(latencies), count, elapsed)
		fmt.Printf("latency: mean=%v p50=%v p99=%v\n",
			sum/time.Duration(len(latencies)),
			latencies[len(latencies)/2],
			latencies[len(latencies)*99/100])
		return nil
	case <-time.After(60 * time.Second):
		return fmt.Errorf("timed out waiting for acknowledgments")
	}
}

func readFrame(conn net.Conn) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > 1<<20 {
		return nil, fmt.Errorf("oversized ack frame")
	}
	frame := make([]byte, size)
	if _, err := io.ReadFull(conn, frame); err != nil {
		return nil, err
	}
	return frame, nil
}

func writeFrame(conn net.Conn, body []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(body)
	return err
}
