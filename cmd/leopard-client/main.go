// Command leopard-client runs one closed-loop authenticated client against
// a running leopard-node cluster: it signs each request with the key
// derived from the cluster seed, submits to f+1 replicas, collects signed
// ReplyMsgs and accepts a request only on an f+1 matching reply certificate
// (so at least one honest replica vouches for the committed result). On
// timeout it retransmits to a rotating f+1 window until every replica has
// been covered. It reports mean/p50/p99 latency and a log-scale histogram.
//
//	leopard-client -config cluster.json -origin 2 -count 100 -payload 128
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"time"

	"leopard/internal/client"
	"leopard/internal/crypto"
	"leopard/internal/leopard"
	"leopard/internal/metrics"
	"leopard/internal/types"
)

func main() {
	var (
		configPath = flag.String("config", "cluster.json", "cluster config file")
		origin     = flag.Int("origin", 0, "replica the first transmission of each request goes to")
		count      = flag.Int("count", 100, "number of requests")
		payload    = flag.Int("payload", 128, "payload bytes per request")
		clientID   = flag.Uint64("client", 1, "client id (selects the signing key)")
		firstSeq   = flag.Uint64("first-seq", 0, "sequence number of the first request")
		retransmit = flag.Duration("retransmit", 2*time.Second, "retransmit patience per request")
	)
	flag.Parse()
	if err := run(*configPath, *origin, *count, *payload, *clientID, *firstSeq, *retransmit); err != nil {
		log.Fatal(err)
	}
}

type clusterConfig struct {
	Replicas    []string `json:"replicas"`
	ClientPorts []string `json:"clientPorts"`
	Seed        string   `json:"seed"`
	Clients     int      `json:"clients"`
}

func run(configPath string, origin, count, payload int, clientID, firstSeq uint64, retransmit time.Duration) error {
	raw, err := os.ReadFile(configPath)
	if err != nil {
		return err
	}
	var cfg clusterConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return err
	}
	n := len(cfg.ClientPorts)
	if n == 0 {
		return fmt.Errorf("cluster config has no client ports")
	}
	if len(cfg.Replicas) != n {
		return fmt.Errorf("cluster config has %d replicas but %d client ports", len(cfg.Replicas), n)
	}
	if payload < 8 {
		return fmt.Errorf("payload must be at least 8 bytes (the sequence-number prefix), got %d", payload)
	}
	q, err := types.NewQuorumParams(n)
	if err != nil {
		return err
	}
	// The replica suite's public keys, derived from the same cluster seed
	// the replicas use: replies are only counted toward a certificate after
	// their signature share verifies against the claimed signer's key.
	suite, err := crypto.NewEd25519Suite(n, []byte(cfg.Seed))
	if err != nil {
		return err
	}
	numClients := cfg.Clients
	if numClients <= 0 {
		numClients = 1024
	}
	keys, err := client.NewKeychain(numClients, []byte(cfg.Seed))
	if err != nil {
		return err
	}
	if clientID >= uint64(numClients) {
		return fmt.Errorf("client id %d outside the cluster's key space of %d", clientID, numClients)
	}
	if origin < 0 || origin >= n {
		return fmt.Errorf("origin replica %d has no client port", origin)
	}

	// Dial every replica's client port up front; replies from all of them
	// funnel into one channel. A replica that is down just contributes no
	// replies (and swallows the sends aimed at it).
	replies := make(chan client.Reply, 256)
	conns := make([]net.Conn, n)
	for i, addr := range cfg.ClientPorts {
		conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			log.Printf("replica %d (%s) unreachable: %v", i, addr, err)
			continue
		}
		defer conn.Close()
		conns[i] = conn
		go readReplies(conn, suite, replies)
	}

	session := client.NewSession(client.SessionConfig{
		ClientID:        clientID,
		F:               q.F,
		RetransmitAfter: retransmit,
		FirstSeq:        firstSeq,
	})
	send := func(req types.Request, sig []byte, targets []types.ReplicaID) {
		buf, err := leopard.EncodeMessage(&leopard.RequestMsg{Req: req, Sig: sig})
		if err != nil {
			return
		}
		for _, id := range targets {
			if conns[id] != nil {
				writeFrame(conns[id], buf)
			}
		}
	}

	var lat metrics.LatencyRecorder
	var sig []byte
	start := time.Now()
	body := make([]byte, payload)
	for int(session.Accepted()) < count {
		now := time.Since(start)
		switch {
		case !session.InFlight():
			binary.BigEndian.PutUint64(body[:8], session.Seq())
			req := session.Begin(now, body)
			if sig, err = keys.Sign(req); err != nil {
				return err
			}
			send(req, sig, client.RetransmitSet(n, q.F, 0, types.ReplicaID(origin)))
		case session.Due(now):
			req := session.Retransmit(now)
			send(req, sig, client.RetransmitSet(n, q.F, session.Attempt(), types.ReplicaID(origin)))
		}
		select {
		case r := <-replies:
			if ok, l := session.OnReply(time.Since(start), r); ok {
				lat.Add(l)
			}
		case <-time.After(10 * time.Millisecond):
		}
		if time.Since(start) > time.Duration(count)*retransmit+60*time.Second {
			break
		}
	}

	if lat.Count() == 0 {
		return fmt.Errorf("no reply certificates completed")
	}
	fmt.Printf("accepted %d/%d requests in %v (%d retransmissions)\n",
		lat.Count(), count, time.Since(start).Round(time.Millisecond), session.Retransmits())
	fmt.Printf("latency: mean=%v p50=%v p99=%v\n", lat.Mean(), lat.Percentile(50), lat.Percentile(99))
	fmt.Print(lat.Histogram())
	return nil
}

// readReplies decodes ReplyMsg frames off one replica connection and drops
// any reply whose signature share does not verify: Share.Signer is
// attacker-controlled wire data, and the f+1 certificate rule only holds if
// each counted reply is provably from the distinct replica it names — an
// unverified reply would let a single Byzantine replica (or a tampered
// connection) forge a full certificate over an arbitrary result.
func readReplies(conn net.Conn, suite crypto.Suite, out chan<- client.Reply) {
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return
		}
		msg, err := leopard.DecodeMessageCopying(frame)
		if err != nil {
			return
		}
		m, ok := msg.(*leopard.ReplyMsg)
		if !ok {
			continue
		}
		digest := client.ReplyDigest(m.Client, m.Seq, m.SN, m.Result)
		if suite.VerifyShare(digest, m.Share) != nil {
			continue
		}
		out <- client.Reply{
			Client: m.Client, Seq: m.Seq, SN: m.SN, Result: m.Result,
			Replica: m.Share.Signer,
		}
	}
}

func readFrame(conn net.Conn) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > 1<<20 {
		return nil, fmt.Errorf("oversized reply frame")
	}
	frame := make([]byte, size)
	if _, err := io.ReadFull(conn, frame); err != nil {
		return nil, err
	}
	return frame, nil
}

func writeFrame(conn net.Conn, body []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(body)
	return err
}
