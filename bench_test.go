// Benchmarks regenerating every table and figure in the Leopard paper's
// evaluation (§VI). Each benchmark prints the same rows/series the paper
// reports; EXPERIMENTS.md records the paper-vs-measured comparison.
//
// The default point sets are trimmed so the whole suite finishes in
// minutes on one core; run with -args -leopard.full for the paper's full
// sweeps (up to n = 600).
package main

import (
	"flag"
	"fmt"
	"testing"

	"leopard/internal/experiments"
	"leopard/internal/leopard/analysis"
)

var fullSweep = flag.Bool("leopard.full", false, "run the paper's full parameter sweeps (slow)")

// scalesFor trims a scale list unless -leopard.full is set.
func scalesFor(full, quick []int) []int {
	if *fullSweep {
		return full
	}
	return quick
}

// BenchmarkFig2_HotStuffLeaderBottleneck regenerates Fig. 2: HotStuff
// throughput falls while the leader's bandwidth utilization climbs as n
// grows — the paper's motivating observation.
func BenchmarkFig2_HotStuffLeaderBottleneck(b *testing.B) {
	scales := scalesFor([]int{4, 16, 32, 64, 128, 256, 300}, []int{4, 16, 64, 128})
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig2(scales)
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			continue
		}
		fmt.Println("\nFig 2: HotStuff throughput and leader bandwidth vs n (payload 128B)")
		fmt.Println("   n   throughput(Kreq/s)   leader-bandwidth(Gbps)")
		for _, r := range rows {
			fmt.Printf("%4d   %18.1f   %22.2f\n", r.N, r.Throughput/1e3, r.LeaderMbps/1e3)
		}
	}
}

// BenchmarkTable1_AmortizedCosts regenerates Table I from the analytical
// cost model and prints the numeric scaling factors behind the O(·) forms.
func BenchmarkTable1_AmortizedCosts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := analysis.TableI()
		if i > 0 {
			continue
		}
		fmt.Println("\nTable I: amortized cost (honest leader, after GST)")
		fmt.Println("protocol   leader   non-leader   scaling-factor   votes(opt/faulty)")
		for _, r := range rows {
			fmt.Printf("%-9s  %-6s   %-10s   %-14s   %d / %d\n",
				r.Protocol, r.LeaderCost, r.ReplicaCost, r.ScalingFactor, r.VotingOptimistic, r.VotingFaulty)
		}
		fmt.Println("\nNumeric SF from the §V-B model (payload 128B, Table II batches):")
		fmt.Println("   n    SF(Leopard)   SF(leader-dissemination)")
		for _, n := range []int{16, 64, 128, 300, 600} {
			db, bft, _ := experiments.TableII(n)
			p := analysis.DefaultParams(n, db)
			p.Tau = float64(bft)
			fmt.Printf("%4d   %11.3f   %24.1f\n",
				n, analysis.LeopardScalingFactor(p), analysis.LeaderDisseminationScalingFactor(p, 1, false))
		}
	}
}

// BenchmarkFig6_HotStuffBatchSweep regenerates Fig. 6: HotStuff throughput
// saturates as the batch size grows.
func BenchmarkFig6_HotStuffBatchSweep(b *testing.B) {
	scales := scalesFor([]int{32, 64, 128, 256, 300}, []int{32, 128})
	batches := scalesFor([]int{100, 200, 400, 600, 800, 1200}, []int{100, 400, 800, 1200})
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(scales, batches)
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			continue
		}
		fmt.Println("\nFig 6: HotStuff throughput (Kreq/s) vs batch size")
		fmt.Println("   n   batch   throughput")
		for _, r := range rows {
			fmt.Printf("%4d   %5.0f   %10.1f\n", r.N, r.Param, r.Throughput/1e3)
		}
	}
}

// BenchmarkFig7_LeopardBFTBlockSweep regenerates Fig. 7: Leopard throughput
// vs BFTblock size (datablock links per proposal).
func BenchmarkFig7_LeopardBFTBlockSweep(b *testing.B) {
	scales := scalesFor([]int{32, 64, 128, 256, 400, 600}, []int{32, 128})
	sizes := scalesFor([]int{10, 50, 100, 200, 400}, []int{10, 100, 400})
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7(scales, sizes)
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			continue
		}
		fmt.Println("\nFig 7: Leopard throughput (Kreq/s) vs BFTblock size (links)")
		fmt.Println("   n   links   throughput")
		for _, r := range rows {
			fmt.Printf("%4d   %5.0f   %10.1f\n", r.N, r.Param, r.Throughput/1e3)
		}
	}
}

// BenchmarkFig8_LeopardDatablockSweep regenerates Fig. 8: Leopard
// throughput vs datablock size at fixed BFTblock sizes 10 and 100.
func BenchmarkFig8_LeopardDatablockSweep(b *testing.B) {
	scales := scalesFor([]int{32, 64, 128}, []int{32, 128})
	dbs := scalesFor([]int{500, 1000, 2000, 3000, 4000}, []int{500, 2000, 4000})
	for i := 0; i < b.N; i++ {
		for _, bft := range []int{10, 100} {
			rows, err := experiments.Fig8(scales, dbs, bft)
			if err != nil {
				b.Fatal(err)
			}
			if i > 0 {
				continue
			}
			fmt.Printf("\nFig 8: Leopard throughput (Kreq/s) vs datablock size (BFTblock size %d)\n", bft)
			fmt.Println("   n   datablock   throughput")
			for _, r := range rows {
				fmt.Printf("%4d   %9.0f   %10.1f\n", r.N, r.Param, r.Throughput/1e3)
			}
		}
	}
}

// BenchmarkFig9_ThroughputVsScale regenerates Fig. 9, the headline result:
// Leopard stays near 1e5 req/s up to n=600 while HotStuff collapses, with
// a >=5x gap at n=300.
func BenchmarkFig9_ThroughputVsScale(b *testing.B) {
	scales := scalesFor([]int{32, 64, 128, 256, 300, 400, 600}, []int{32, 128, 300})
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig9(scales, 300)
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			continue
		}
		fmt.Println("\nFig 9: throughput (Kreq/s) vs number of replicas")
		fmt.Println("   n   Leopard   HotStuff   ratio")
		for _, r := range rows {
			if r.HotStuff != nil {
				fmt.Printf("%4d   %7.1f   %8.1f   %5.1fx\n",
					r.N, r.Leopard.Throughput/1e3, r.HotStuff.Throughput/1e3,
					r.Leopard.Throughput/r.HotStuff.Throughput)
			} else {
				fmt.Printf("%4d   %7.1f   %8s   %5s\n", r.N, r.Leopard.Throughput/1e3, "-", "-")
			}
		}
	}
}

// BenchmarkFig10_ScalingUp regenerates Fig. 10: throughput and latency
// under 20-200 Mbps per-replica bandwidth. Leopard's throughput grows with
// slope ~1/2 of the added bandwidth at all scales; HotStuff's slope decays
// toward 0 as n grows.
func BenchmarkFig10_ScalingUp(b *testing.B) {
	scales := scalesFor([]int{4, 16, 32, 64, 128}, []int{4, 64})
	bws := []float64{20, 100, 200}
	if *fullSweep {
		bws = []float64{20, 40, 80, 100, 200}
	}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(scales, bws)
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			continue
		}
		fmt.Println("\nFig 10: throughput (Mbps of payload) and latency vs per-replica bandwidth")
		fmt.Println("system     n   bandwidth(Mbps)   throughput(Mbps)   mean-latency")
		for _, r := range rows {
			fmt.Printf("%-8s %4d   %15.0f   %16.2f   %12v\n", r.System, r.N, r.BandwidthMbps, r.TputMbps, r.MeanLat)
		}
	}
}

// BenchmarkFig11_LeaderBandwidth regenerates Fig. 11: the leader's
// bandwidth utilization vs n for both systems.
func BenchmarkFig11_LeaderBandwidth(b *testing.B) {
	scales := scalesFor([]int{4, 16, 32, 64, 128, 256, 300, 400, 600}, []int{4, 32, 128, 300})
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11(scales, 300)
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			continue
		}
		fmt.Println("\nFig 11: leader bandwidth utilization (Mbps) vs n")
		fmt.Println("   n   Leopard   HotStuff")
		for _, r := range rows {
			if r.HotStuff != nil {
				fmt.Printf("%4d   %7.0f   %8.0f\n", r.N, r.Leopard.LeaderMbps, r.HotStuff.LeaderMbps)
			} else {
				fmt.Printf("%4d   %7.0f   %8s\n", r.N, r.Leopard.LeaderMbps, "-")
			}
		}
	}
}

// BenchmarkTable3_BandwidthBreakdown regenerates Table III: per-component
// bandwidth utilization at the leader and a non-leader replica (n=32).
func BenchmarkTable3_BandwidthBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		leader, replica, err := experiments.Table3(32)
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			continue
		}
		fmt.Println("\nTable III: bandwidth utilization breakdown (n=32)")
		fmt.Println("-- leader --")
		for _, r := range leader {
			fmt.Printf("  %-8s %-11s %6.2f%%\n", r.Direction, r.Class, r.Percent)
		}
		fmt.Println("-- non-leader replica --")
		for _, r := range replica {
			fmt.Printf("  %-8s %-11s %6.2f%%\n", r.Direction, r.Class, r.Percent)
		}
	}
}

// BenchmarkTable4_LatencyBreakdown regenerates Table IV: time spent per
// Leopard pipeline stage (n=32).
func BenchmarkTable4_LatencyBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4(32)
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			continue
		}
		fmt.Println("\nTable IV: latency breakdown (n=32)")
		for _, r := range rows {
			fmt.Printf("  %-26s %6.2f%%\n", r.Stage, r.Percent)
		}
	}
}

// BenchmarkFig12_RetrievalCost regenerates Fig. 12 and Table V: the
// communication and time costs of recovering one 2000-request datablock.
func BenchmarkFig12_RetrievalCost(b *testing.B) {
	scales := scalesFor([]int{4, 7, 16, 32, 64, 128}, []int{4, 16, 64})
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig12(scales, false)
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			continue
		}
		fmt.Println("\nFig 12 + Table V: retrieving a 2000-request datablock")
		fmt.Println("   n   recover(KB)   respond(KB)   time(ms)")
		for _, r := range rows {
			fmt.Printf("%4d   %11.1f   %11.1f   %8.1f\n",
				r.N, float64(r.RecoverBytes)/1e3, float64(r.RespondBytes)/1e3,
				float64(r.RetrievalTime.Microseconds())/1e3)
		}
	}
}

// BenchmarkFig13_ViewChange regenerates Fig. 13: view-change time and
// communication cost after crashing the leader.
func BenchmarkFig13_ViewChange(b *testing.B) {
	scales := scalesFor([]int{4, 8, 13, 32, 64, 128}, []int{4, 13, 64})
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig13(scales)
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			continue
		}
		fmt.Println("\nFig 13: view-change cost after a leader crash")
		fmt.Println("   n   time(ms)   total(B)   leader-sent(B)   leader-recv(B)   replica-sent(B)")
		for _, r := range rows {
			fmt.Printf("%4d   %8.1f   %8d   %14d   %14d   %15d\n",
				r.N, float64(r.Time.Microseconds())/1e3, r.TotalBytes,
				r.LeaderSent, r.LeaderReceived, r.PerReplicaSent)
		}
	}
}

// BenchmarkAblation_RetrievalLeaderVsCommittee compares the paper's
// committee+erasure retrieval against the naive leader-serves-full-blocks
// alternative (§IV-A2's "intuitive solution").
func BenchmarkAblation_RetrievalLeaderVsCommittee(b *testing.B) {
	scales := scalesFor([]int{4, 16, 64, 128}, []int{4, 32})
	for i := 0; i < b.N; i++ {
		committee, err := experiments.Fig12(scales, false)
		if err != nil {
			b.Fatal(err)
		}
		naive, err := experiments.Fig12(scales, true)
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			continue
		}
		fmt.Println("\nAblation A1: per-responder retrieval cost, committee vs leader-only")
		fmt.Println("   n   committee-respond(KB)   leader-respond(KB)")
		for j := range committee {
			fmt.Printf("%4d   %21.1f   %18.1f\n",
				committee[j].N, float64(committee[j].RespondBytes)/1e3, float64(naive[j].RespondBytes)/1e3)
		}
	}
}

// BenchmarkAblation_AdaptiveAlpha demonstrates the α = λ(n-1) recipe: with
// a fixed small datablock the agreement overhead grows with n, while the
// adaptive size keeps throughput flat (constant scaling factor).
func BenchmarkAblation_AdaptiveAlpha(b *testing.B) {
	scales := scalesFor([]int{16, 64, 128, 256}, []int{16, 128})
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationAdaptiveAlpha(scales)
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			continue
		}
		fmt.Println("\nAblation A3: fixed vs adaptive datablock size (Kreq/s)")
		fmt.Println("   n   fixed-200   adaptive-16(n-1)")
		for _, r := range rows {
			fmt.Printf("%4d   %9.1f   %16.1f\n", r.N, r.FixedTput/1e3, r.AdaptiveTput/1e3)
		}
	}
}

// BenchmarkByzantine_SelectiveAttack measures throughput under f selective-
// attacking replicas (the §VI-D fault setting): the ready round plus
// retrieval keep the system live.
func BenchmarkByzantine_SelectiveAttack(b *testing.B) {
	scales := scalesFor([]int{16, 64, 128}, []int{16})
	for i := 0; i < b.N; i++ {
		fmt.Println("\nByzantine: throughput with f selective-attacking replicas")
		fmt.Println("   n   throughput(Kreq/s)   retrievals")
		for _, n := range scales {
			r, err := experiments.SelectiveAttack(n)
			if err != nil {
				b.Fatal(err)
			}
			if i > 0 {
				continue
			}
			fmt.Printf("%4d   %18.1f   %10d\n", r.N, r.Throughput/1e3, r.Retrievals)
		}
	}
}
