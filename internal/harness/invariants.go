package harness

import (
	"fmt"
	"time"

	"leopard/internal/crypto"
	"leopard/internal/leopard"
	"leopard/internal/obs"
	"leopard/internal/protocol"
	"leopard/internal/storage"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// maxViolations bounds the recorded violation list: a genuinely broken run
// can violate an invariant once per message, and the report only needs
// enough examples to diagnose it.
const maxViolations = 64

// InvariantChecker watches a simulated cluster for protocol-level safety,
// durability and agreement-vote violations. It taps three surfaces:
//
//   - executions, via each replica's Config.OnExecute hook
//     (ExecutionObserver): no two replicas may execute blocks with
//     different content at the same height, and two replicas executing the
//     same block must agree on the chain state hash it produces;
//   - messages, via simnet.SetObserver (ObserveMessage): no replica may
//     send two different proposals or two different votes for the same
//     (view, seq, round) — the equivocation the vote-ahead log exists to
//     prevent across crashes;
//   - stores, via RegisterStore + BeforeRestart/AfterRestart: a restarted
//     replica must recover at least the execution frontier its store held
//     durably at crash time.
//
// CheckCertificates additionally verifies every replica's latest stable
// checkpoint proof and that same-height checkpoints certify the same
// state. The checker is not thread-safe; the simulator is single-threaded.
type InvariantChecker struct {
	suite crypto.Suite

	execs map[types.SeqNum]map[types.Hash]*execObs // height -> full digest -> first observation
	votes map[voteKey]types.Hash

	// digest cache for the message tap: proposals for one block are
	// observed once per receiver, and the block pointer is shared across
	// those deliveries, so caching by pointer skips the rehash.
	lastBlock  *types.BFTblock
	lastDigest types.Hash

	stores   map[types.ReplicaID]storage.Store
	expected map[types.ReplicaID]types.SeqNum

	// rotationN, when positive, marks the cluster as running the rotating
	// leader schedule over n replicas: every proposal must come from
	// types.LeaderFor(view, seq, n) — a proposal from anyone else is a
	// schedule violation even if it never equivocates.
	rotationN int

	violations []string
	suppressed int

	// trace, when attached, is dumped into postMortem at the first
	// violation — the event history leading up to the failure, captured
	// before the run continues and the rings wrap past it.
	trace      *obs.TraceSet
	postMortem string
}

type execObs struct {
	content types.Hash
	chain   types.Hash
	by      types.ReplicaID
}

// voteKey identifies one replica's vote slot: round 0 is the leader's
// proposal (a vote for its own block), rounds 1 and 2 are the σ1/σ2 votes.
type voteKey struct {
	voter types.ReplicaID
	view  types.View
	seq   types.SeqNum
	round uint8
}

// NewInvariantChecker builds a checker; suite verifies checkpoint proofs
// in CheckCertificates (nil skips proof verification).
func NewInvariantChecker(suite crypto.Suite) *InvariantChecker {
	return &InvariantChecker{
		suite:    suite,
		execs:    make(map[types.SeqNum]map[types.Hash]*execObs),
		votes:    make(map[voteKey]types.Hash),
		stores:   make(map[types.ReplicaID]storage.Store),
		expected: make(map[types.ReplicaID]types.SeqNum),
	}
}

// SetRotation tells the checker the cluster rotates proposers per serial
// number among n replicas (Config.RotateLeaders), enabling the scheduled-
// proposer check in ObserveMessage. The per-slot equivocation check already
// covers rotated double-proposes — the vote map keys on (voter, view, seq) —
// so this adds the stronger claim that only the scheduled replica proposes.
func (ic *InvariantChecker) SetRotation(n int) { ic.rotationN = n }

// postMortemEvents is how much per-replica event history a violation dump
// keeps: enough to see the protocol steps leading into the failure without
// flooding the report.
const postMortemEvents = 32

// AttachTrace gives the checker the cluster's trace set; on the first
// violation the last postMortemEvents events of every replica are captured
// as the post-mortem.
func (ic *InvariantChecker) AttachTrace(ts *obs.TraceSet) { ic.trace = ts }

// PostMortem returns the per-replica event dump captured at the first
// violation (empty when no violation occurred or no trace was attached).
func (ic *InvariantChecker) PostMortem() string { return ic.postMortem }

// Violate records a violation (the experiment's own checks, e.g. bounded
// liveness, report through here so one list covers the whole run).
func (ic *InvariantChecker) Violate(format string, args ...any) {
	if len(ic.violations) == 0 && ic.suppressed == 0 && ic.trace != nil {
		// First violation: freeze the event history now, while it still
		// shows the steps that led here.
		ic.postMortem = ic.trace.DumpLast(postMortemEvents)
	}
	if len(ic.violations) >= maxViolations {
		ic.suppressed++
		return
	}
	ic.violations = append(ic.violations, fmt.Sprintf(format, args...))
}

// Violations returns the recorded violations (with a trailing marker when
// the list was capped).
func (ic *InvariantChecker) Violations() []string {
	out := append([]string(nil), ic.violations...)
	if ic.suppressed > 0 {
		out = append(out, fmt.Sprintf("... and %d more suppressed", ic.suppressed))
	}
	return out
}

// Ok reports whether no invariant was violated.
func (ic *InvariantChecker) Ok() bool { return len(ic.violations) == 0 && ic.suppressed == 0 }

// contentDigest hashes only a block's linked content, not its view: after
// a view change the new leader re-proposes carried blocks re-stamped with
// the new view, so replicas may execute view-relabeled twins of the same
// block at one height. Safety is about the content agreeing.
func contentDigest(b *types.BFTblock) types.Hash {
	buf := make([]byte, 0, len(b.Content)*len(types.Hash{}))
	for _, h := range b.Content {
		buf = append(buf, h[:]...)
	}
	return crypto.HashBytes(buf)
}

// ExecutionObserver returns the Config.OnExecute hook for replica id.
func (ic *InvariantChecker) ExecutionObserver(id types.ReplicaID) func(types.SeqNum, *types.BFTblock, types.Hash) {
	return func(sn types.SeqNum, block *types.BFTblock, chain types.Hash) {
		ic.observeExecution(id, sn, block, chain)
	}
}

func (ic *InvariantChecker) observeExecution(id types.ReplicaID, sn types.SeqNum, block *types.BFTblock, chain types.Hash) {
	full := crypto.HashBFTblock(block)
	content := contentDigest(block)
	at := ic.execs[sn]
	if at == nil {
		at = make(map[types.Hash]*execObs, 1)
		ic.execs[sn] = at
	}
	if obs, ok := at[full]; ok {
		// Same block at the same height: the chain hash folds the whole
		// executed prefix, so it must match too (replay after a restart
		// re-reports the same heights and passes through here).
		if obs.chain != chain {
			ic.Violate("divergent history: replicas %d and %d executed block %x at height %d with different chain hashes",
				obs.by, id, full[:4], sn)
		}
		return
	}
	for _, obs := range at {
		if obs.content != content {
			ic.Violate("execution conflict: replicas %d and %d executed different content at height %d",
				obs.by, id, sn)
			break
		}
	}
	at[full] = &execObs{content: content, chain: chain, by: id}
}

// ObserveMessage is a simnet observer tap recording proposals and votes;
// install with Net.SetObserver(ic.ObserveMessage). A replica sending two
// different digests for one (view, seq, round) slot — across its whole
// lifetime, crashes included — is equivocating.
func (ic *InvariantChecker) ObserveMessage(now time.Duration, from, to types.ReplicaID, msg transport.Message) {
	switch m := msg.(type) {
	case *leopard.BFTblockMsg:
		if m.Block == nil {
			return
		}
		if ic.lastBlock != m.Block {
			ic.lastBlock = m.Block
			ic.lastDigest = crypto.HashBFTblock(m.Block)
		}
		if ic.rotationN > 0 {
			if want := types.LeaderFor(m.Block.View, m.Block.Seq, ic.rotationN); from != want {
				ic.Violate("rotation: replica %d proposed view %d seq %d scheduled for replica %d",
					from, m.Block.View, m.Block.Seq, want)
			}
		}
		ic.observeVote(from, m.Block.View, m.Block.Seq, 0, ic.lastDigest)
	case *leopard.VoteMsg:
		ic.observeVote(from, m.Block.View, m.Block.Seq, uint8(m.Round), m.Digest)
	}
}

func (ic *InvariantChecker) observeVote(voter types.ReplicaID, view types.View, seq types.SeqNum, round uint8, digest types.Hash) {
	key := voteKey{voter: voter, view: view, seq: seq, round: round}
	if prev, ok := ic.votes[key]; ok {
		if prev != digest {
			what := "vote"
			if round == 0 {
				what = "proposal"
			}
			ic.Violate("equivocation: replica %d sent two different %ss for view %d seq %d round %d",
				voter, what, view, seq, round)
		}
		return
	}
	ic.votes[key] = digest
}

// RegisterStore associates a replica's durable store with the checker so
// restarts can assert durability. Call once per durable replica.
func (ic *InvariantChecker) RegisterStore(id types.ReplicaID, st storage.Store) {
	ic.stores[id] = st
}

// durableFrontier walks the store exactly as recovery does: checkpoint
// anchor, then contiguous retained records above it.
func durableFrontier(st storage.Store) types.SeqNum {
	var frontier types.SeqNum
	if cp, ok := st.Checkpoint(); ok {
		frontier = cp.Seq
	}
	for {
		if _, ok := st.Get(frontier + 1); !ok {
			return frontier
		}
		frontier++
	}
}

// BeforeRestart snapshots the durable execution frontier of replica id's
// registered store; AfterRestart asserts the recovered replica reached it.
func (ic *InvariantChecker) BeforeRestart(id types.ReplicaID) {
	st, ok := ic.stores[id]
	if !ok {
		return
	}
	ic.expected[id] = durableFrontier(st)
}

// AfterRestart checks the recovered execution frontier against the
// pre-restart durable state: recovering less means the WAL lost blocks.
func (ic *InvariantChecker) AfterRestart(id types.ReplicaID, recovered types.SeqNum) {
	want, ok := ic.expected[id]
	if !ok {
		return
	}
	delete(ic.expected, id)
	if recovered < want {
		ic.Violate("durability: replica %d recovered to height %d but its store held %d", id, recovered, want)
	}
}

// checkpointed is the read surface CheckCertificates needs; *leopard.Node
// satisfies it.
type checkpointed interface {
	LastCheckpoint() *leopard.CheckpointProofMsg
}

// CheckCertificates verifies each replica's latest stable checkpoint: the
// threshold proof must verify, and two checkpoints at the same height must
// certify the same state (they also must match any observed execution's
// chain hash at that height). Call at the end of a run. Replicas that do
// not expose checkpoints (non-Leopard protocols) are skipped.
func (ic *InvariantChecker) CheckCertificates(replicas []protocol.Replica) {
	type cpObs struct {
		state types.Hash
		by    types.ReplicaID
	}
	seen := make(map[types.SeqNum]cpObs)
	for i, rep := range replicas {
		r, ok := rep.(checkpointed)
		if !ok {
			continue
		}
		cp := r.LastCheckpoint()
		if cp == nil {
			continue
		}
		id := types.ReplicaID(i)
		if ic.suite != nil {
			if err := ic.suite.VerifyProof(leopard.CheckpointDigest(cp.Seq, cp.StateHash), cp.Proof); err != nil {
				ic.Violate("certificate: replica %d holds an invalid checkpoint proof at height %d: %v", id, cp.Seq, err)
				continue
			}
		}
		if prev, ok := seen[cp.Seq]; ok && prev.state != cp.StateHash {
			ic.Violate("certificate conflict: replicas %d and %d hold checkpoints at height %d certifying different states",
				prev.by, id, cp.Seq)
		} else if !ok {
			seen[cp.Seq] = cpObs{state: cp.StateHash, by: id}
		}
		if at := ic.execs[cp.Seq]; at != nil {
			matched := false
			for _, obs := range at {
				if obs.chain == cp.StateHash {
					matched = true
					break
				}
			}
			if !matched {
				ic.Violate("certificate: replica %d's checkpoint at height %d certifies a state no replica was observed executing",
					id, cp.Seq)
			}
		}
	}
}

var _ checkpointed = (*leopard.Node)(nil)
