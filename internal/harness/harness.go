// Package harness wires protocol replicas onto the simulated network,
// attaches workload generators and latency trackers, and runs measured
// experiments. Every figure/table reproduction in bench_test.go and
// cmd/leopard-sim is built on this package.
package harness

import (
	"fmt"
	"time"

	"leopard/internal/metrics"
	"leopard/internal/obs"
	"leopard/internal/protocol"
	"leopard/internal/simnet"
	"leopard/internal/transport"
	"leopard/internal/types"
	"leopard/internal/workload"
)

// BuildFunc constructs the replica with the given id.
type BuildFunc func(id types.ReplicaID) (protocol.Replica, error)

// Options configures a cluster experiment.
type Options struct {
	N           int
	Net         simnet.Config
	Build       BuildFunc
	PayloadSize int
	// SaturationDepth keeps each non-leader replica's pending pool topped
	// up to this many requests (closed-loop saturation). Zero disables.
	SaturationDepth int
	// RequestRate submits this many requests per second, spread across
	// non-leader replicas (open loop). Zero disables.
	RequestRate float64
	// InjectEvery is the injection granularity (default 5ms).
	InjectEvery time.Duration
	// SubmitToLeader routes all requests to the current leader instead of
	// the non-leader replicas. Leader-dissemination protocols (HotStuff,
	// PBFT) batch at the leader, so their clients submit there.
	SubmitToLeader bool
	// SubmitEverywhere routes requests to every replica including the
	// leader. Rotating-leader clusters have no replica exempt from packing
	// datablocks, so all of them serve clients.
	SubmitEverywhere bool
	// LatencySample tracks client latency for one request in every
	// LatencySample (by client id). 1 (default) tracks everything; large
	// simulations use a sparse sample to stay within memory. Throughput is
	// always counted exactly, via executions observed at replica 0.
	LatencySample int
	// Trace, when set, attaches its per-replica tracers to the simnet's
	// flow-control emit sites (credit parks/evictions). Protocol-level
	// events are the Build closure's job: it must set the same tracer into
	// the replica's config (obs is clock-agnostic, so one tracer can carry
	// both), which also keeps one event history across Restart.
	Trace *obs.TraceSet
}

// Cluster is a running simulated deployment.
type Cluster struct {
	Net      *simnet.Network
	Replicas []protocol.Replica
	Tracker  *workload.Tracker
	// gens holds one request generator per replica, each over a disjoint
	// client-ID range: the nonce-aware mempool requires every client's seq
	// stream to arrive contiguously at whichever replica serves it, so one
	// global stream must not be striped across replicas.
	gens []*workload.Generator
	// Invariants, when attached (AttachInvariants), asserts durability
	// around every Restart and observes traffic for equivocation.
	Invariants *InvariantChecker

	opts        Options
	submittedTo map[types.RequestID]types.ReplicaID
	injecting   bool
	ratePending float64
	executed    int64 // requests executed at the observer (replica 0)
}

// NewCluster builds n replicas, wires them onto a simnet and registers
// executors/trackers. Call Start, then Run*.
func NewCluster(opts Options) (*Cluster, error) {
	if opts.N < 4 {
		return nil, fmt.Errorf("harness: need at least 4 replicas, got %d", opts.N)
	}
	if opts.Build == nil {
		return nil, fmt.Errorf("harness: missing Build function")
	}
	if opts.InjectEvery <= 0 {
		opts.InjectEvery = 5 * time.Millisecond
	}
	if opts.PayloadSize <= 0 {
		opts.PayloadSize = 128
	}
	if opts.LatencySample <= 0 {
		opts.LatencySample = 1
	}
	c := &Cluster{
		Tracker:     workload.NewTracker(),
		gens:        make([]*workload.Generator, opts.N),
		opts:        opts,
		submittedTo: make(map[types.RequestID]types.ReplicaID),
	}
	const clientsPerReplica = 64
	for i := range c.gens {
		c.gens[i] = workload.NewGeneratorAt(opts.PayloadSize, clientsPerReplica,
			uint64(i)*clientsPerReplica)
	}
	nodes := make([]transport.Node, opts.N)
	c.Replicas = make([]protocol.Replica, opts.N)
	for i := 0; i < opts.N; i++ {
		id := types.ReplicaID(i)
		r, err := opts.Build(id)
		if err != nil {
			return nil, fmt.Errorf("harness: build replica %d: %w", i, err)
		}
		r.SetExecutor(c.executorFor(id))
		c.Replicas[i] = r
		nodes[i] = r
	}
	net, err := simnet.New(opts.Net, nodes)
	if err != nil {
		return nil, err
	}
	c.Net = net
	if opts.Trace != nil {
		for i := 0; i < opts.N; i++ {
			net.SetTracer(types.ReplicaID(i), opts.Trace.Tracer(i))
		}
	}
	return c, nil
}

// sampled reports whether a request participates in latency tracking.
func (c *Cluster) sampled(id types.RequestID) bool {
	return id.Client%uint64(c.opts.LatencySample) == 0
}

// executorFor returns the execution callback for replica id. Replica 0 is
// the throughput observer (every replica executes the same log, so one
// counter suffices); latency acks are recorded when the replica a sampled
// request was submitted to executes it (that replica answers the client,
// so its execution time is the client-visible confirmation).
func (c *Cluster) executorFor(id types.ReplicaID) protocol.ExecuteFunc {
	return func(sn types.SeqNum, reqs []types.Request) {
		if id == 0 {
			c.executed += int64(len(reqs))
		}
		now := c.Net.Now()
		for _, r := range reqs {
			rid := r.ID()
			if !c.sampled(rid) {
				continue
			}
			if owner, ok := c.submittedTo[rid]; ok && owner == id {
				c.Tracker.Acked(rid, now)
				delete(c.submittedTo, rid)
			}
		}
	}
}

// Start initializes the network and begins workload injection.
func (c *Cluster) Start() {
	c.Net.Start()
	if c.opts.SaturationDepth > 0 || c.opts.RequestRate > 0 {
		c.injecting = true
		c.scheduleInjection(c.Net.Now())
	}
}

// StopInjection halts workload injection (used to drain at the end).
func (c *Cluster) StopInjection() { c.injecting = false }

func (c *Cluster) scheduleInjection(at time.Duration) {
	c.Net.ScheduleCall(at, func(now time.Duration) {
		if !c.injecting {
			return
		}
		c.inject(now)
		c.scheduleInjection(now + c.opts.InjectEvery)
	})
}

// inject tops pools up (saturation) or feeds the configured rate.
func (c *Cluster) inject(now time.Duration) {
	leader := c.Replicas[0].Leader()
	targets := func(id types.ReplicaID) bool {
		if c.opts.SubmitEverywhere {
			return true
		}
		if c.opts.SubmitToLeader {
			return id == leader
		}
		return id != leader
	}
	if c.opts.SaturationDepth > 0 {
		for i, r := range c.Replicas {
			if !targets(types.ReplicaID(i)) {
				continue
			}
			// Bound the top-up: if the pool rejects (rate limit, budget), a
			// bare pending<depth loop would spin forever at one virtual
			// instant. Unfilled depth is retried at the next injection tick.
			for attempts := 2 * c.opts.SaturationDepth; attempts > 0 &&
				r.PendingRequests() < c.opts.SaturationDepth; attempts-- {
				c.submit(now, types.ReplicaID(i), r)
			}
		}
	}
	if c.opts.RequestRate > 0 {
		c.ratePending += c.opts.RequestRate * c.opts.InjectEvery.Seconds()
		i := 0
		for c.ratePending >= 1 {
			id := types.ReplicaID(i % c.opts.N)
			i++
			if !targets(id) {
				continue
			}
			c.submit(now, id, c.Replicas[id])
			c.ratePending--
		}
	}
}

func (c *Cluster) submit(now time.Duration, id types.ReplicaID, r protocol.Replica) {
	req := c.gens[id].Next()
	if r.SubmitRequest(now, req) {
		if c.sampled(req.ID()) {
			c.Tracker.Submitted(req.ID(), now)
			c.submittedTo[req.ID()] = id
		}
		// Account the client's bytes into the replica's ingress figures
		// (Table III's "Reqs. from Clients" row).
		c.Net.Stats(id).AddReceived(transport.ClassRequest, req.Size())
	}
}

// SubmitN submits exactly count fresh requests to replica id right now
// (bypassing the injection loop); used by controlled fault experiments.
func (c *Cluster) SubmitN(id types.ReplicaID, count int) {
	for i := 0; i < count; i++ {
		c.submit(c.Net.Now(), id, c.Replicas[id])
	}
}

// Restart rebuilds the replica at id with the cluster's Build function and
// swaps it into the network (simnet.Replace): the crash-restart-with-
// durable-state model. The Build closure decides what survives — a
// replica built over the same storage.Store recovers its durable state;
// one built without a store models the pre-durability baseline.
func (c *Cluster) Restart(id types.ReplicaID) error {
	return c.checkDurability(id, func() error {
		r, err := c.opts.Build(id)
		if err != nil {
			return fmt.Errorf("harness: rebuild replica %d: %w", id, err)
		}
		r.SetExecutor(c.executorFor(id))
		c.Replicas[id] = r
		return c.Net.Replace(id, r)
	})
}

// RunUntil advances the network in steps of the given granularity until
// cond returns true or the deadline passes; it reports whether cond held.
func (c *Cluster) RunUntil(deadline, step time.Duration, cond func() bool) bool {
	for c.Net.Now() < deadline {
		if cond() {
			return true
		}
		c.Net.Run(c.Net.Now() + step)
	}
	return cond()
}

// Warmup runs the cluster for d, then clears bandwidth counters and sets
// the latency cutoff, so measurements exclude ramp-up.
func (c *Cluster) Warmup(d time.Duration) {
	c.Net.Run(c.Net.Now() + d)
	c.Net.ResetStats()
	c.Tracker.SetMeasureFrom(c.Net.Now())
}

// Result summarizes one measured run.
type Result struct {
	N          int
	Elapsed    time.Duration
	Confirmed  int64
	Throughput float64 // requests per second
	MeanLat    time.Duration
	P50Lat     time.Duration
	P99Lat     time.Duration
}

// MeasureFor runs the cluster for d and returns throughput/latency over
// exactly that window.
func (c *Cluster) MeasureFor(d time.Duration) Result {
	before := c.executed
	start := c.Net.Now()
	c.Net.Run(start + d)
	elapsed := c.Net.Now() - start
	confirmed := c.executed - before
	lat := c.Tracker.Latency()
	return Result{
		N:          c.opts.N,
		Elapsed:    elapsed,
		Confirmed:  confirmed,
		Throughput: metrics.Throughput(confirmed, elapsed),
		MeanLat:    lat.Mean(),
		P50Lat:     lat.Percentile(50),
		P99Lat:     lat.Percentile(99),
	}
}

// LeaderStats returns the bandwidth counters of the current leader.
func (c *Cluster) LeaderStats() *metrics.Bandwidth {
	return c.Net.Stats(c.Replicas[0].Leader())
}

// NonLeaderStats returns the bandwidth counters of the first non-leader.
func (c *Cluster) NonLeaderStats() *metrics.Bandwidth {
	leader := c.Replicas[0].Leader()
	for i := range c.Replicas {
		if types.ReplicaID(i) != leader {
			return c.Net.Stats(types.ReplicaID(i))
		}
	}
	return c.Net.Stats(0)
}
