package harness_test

import (
	"testing"
	"time"

	"leopard/internal/crypto"
	"leopard/internal/harness"
	"leopard/internal/leopard"
	"leopard/internal/protocol"
	"leopard/internal/simnet"
	"leopard/internal/types"
)

func options(t *testing.T, n int) harness.Options {
	t.Helper()
	q, err := types.NewQuorumParams(n)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := crypto.NewEd25519Suite(n, []byte("harness-test"))
	if err != nil {
		t.Fatal(err)
	}
	return harness.Options{
		N:   n,
		Net: simnet.DefaultConfig(),
		Build: func(id types.ReplicaID) (protocol.Replica, error) {
			return leopard.NewNode(leopard.Config{
				ID: id, Quorum: q, Suite: suite,
				DatablockSize: 20, BFTBlockSize: 2,
			})
		},
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := harness.NewCluster(harness.Options{N: 2}); err == nil {
		t.Error("n=2 accepted")
	}
	if _, err := harness.NewCluster(harness.Options{N: 4}); err == nil {
		t.Error("missing Build accepted")
	}
}

func TestSaturationProducesThroughput(t *testing.T) {
	opts := options(t, 4)
	opts.SaturationDepth = 100
	c, err := harness.NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Warmup(200 * time.Millisecond)
	res := c.MeasureFor(time.Second)
	if res.Confirmed == 0 || res.Throughput == 0 {
		t.Fatalf("no throughput measured: %+v", res)
	}
	if res.Elapsed != time.Second {
		t.Errorf("elapsed = %v, want 1s", res.Elapsed)
	}
}

func TestOpenLoopRateIsRespected(t *testing.T) {
	opts := options(t, 4)
	opts.RequestRate = 2000 // well below capacity
	c, err := harness.NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Warmup(500 * time.Millisecond)
	res := c.MeasureFor(2 * time.Second)
	// Confirmed rate should track the offered rate within 15%.
	if res.Throughput < 1700 || res.Throughput > 2300 {
		t.Errorf("throughput %.0f, want ~2000 (open loop)", res.Throughput)
	}
	if res.MeanLat <= 0 {
		t.Error("no latency measured at low rate")
	}
}

func TestStopInjectionDrains(t *testing.T) {
	opts := options(t, 4)
	opts.SaturationDepth = 50
	c, err := harness.NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Net.Run(500 * time.Millisecond)
	c.StopInjection()
	before := c.MeasureFor(time.Second).Confirmed
	if before == 0 {
		t.Fatal("nothing confirmed while draining")
	}
	// After draining, no new confirmations.
	later := c.MeasureFor(time.Second).Confirmed
	if later > int64(4*50) {
		t.Errorf("%d confirmations after injection stopped; expected only the drained tail", later)
	}
}

func TestLeaderAndNonLeaderStats(t *testing.T) {
	opts := options(t, 4)
	opts.SaturationDepth = 100
	c, err := harness.NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.MeasureFor(time.Second)
	if c.LeaderStats() == c.NonLeaderStats() {
		t.Error("leader and non-leader stats must differ")
	}
	if c.LeaderStats().Total() == 0 {
		t.Error("leader recorded no traffic")
	}
}

func TestRunUntil(t *testing.T) {
	opts := options(t, 4)
	opts.SaturationDepth = 100
	c, err := harness.NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	node := c.Replicas[0].(*leopard.Node)
	ok := c.RunUntil(10*time.Second, 10*time.Millisecond, func() bool {
		return node.ExecutedTo() >= 3
	})
	if !ok {
		t.Fatal("condition never met")
	}
	if c.Net.Now() >= 10*time.Second {
		t.Error("RunUntil ran to the deadline despite the condition holding")
	}
}
