package harness_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"leopard/internal/crypto"
	"leopard/internal/harness"
	"leopard/internal/leopard"
	"leopard/internal/metrics"
	"leopard/internal/protocol"
	"leopard/internal/simnet"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// runFingerprint runs a full Leopard cluster under load (with jitter, so
// the seeded RNG is actually exercised) and returns every replica's
// bandwidth counters plus a rendering of its protocol counters. streaming
// selects the chunked credit-based bulk model instead of the legacy pipes.
func runFingerprint(t *testing.T, seed int64, streaming bool) ([]metrics.Bandwidth, []string) {
	t.Helper()
	const n = 7
	q, err := types.NewQuorumParams(n)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := crypto.NewSimSuite(n, []byte("determinism"))
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.DefaultConfig()
	net.Seed = seed
	net.Jitter = 200 * time.Microsecond
	net.TickInterval = 2 * time.Millisecond
	if streaming {
		net.Bulk = simnet.BulkCredit
		// A small window and chunk relative to the ~3 KiB datablocks so
		// the run actually exercises chunk interleaving, parking and
		// credit grants, not just single-chunk streams.
		net.Stream = transport.StreamConfig{
			ChunkSize:       1024,
			StreamThreshold: 1024,
			CreditWindow:    8 << 10,
			ParkBudget:      1 << 20,
		}
	}
	c, err := harness.NewCluster(harness.Options{
		N:               n,
		Net:             net,
		PayloadSize:     64,
		SaturationDepth: 100,
		Build: func(id types.ReplicaID) (protocol.Replica, error) {
			return leopard.NewNode(leopard.Config{
				ID:            id,
				Quorum:        q,
				Suite:         suite,
				DatablockSize: 25,
				BFTBlockSize:  3,
				BatchTimeout:  5 * time.Millisecond,
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Net.Run(400 * time.Millisecond)

	bw := make([]metrics.Bandwidth, n)
	protoStats := make([]string, n)
	for i := 0; i < n; i++ {
		bw[i] = *c.Net.Stats(types.ReplicaID(i))
		node := c.Replicas[i].(*leopard.Node)
		st := node.Stats()
		protoStats[i] = fmt.Sprintf(
			"confirmed=%d blocks=%d executed=%d made=%d held=%d retr=%d vc=%d view=%d execTo=%d",
			st.ConfirmedRequests, st.ConfirmedBlocks, st.ExecutedBlocks,
			st.DatablocksMade, st.DatablocksHeld, st.Retrievals,
			st.ViewChanges, st.View, node.ExecutedTo())
	}
	return bw, protoStats
}

// TestDeterministicStatsAcrossRuns asserts the simnet Sink's determinism
// contract at the protocol level: two full-cluster runs with the same seed
// produce byte-identical bandwidth accounting and protocol counters at
// every replica, while a different seed (with jitter active) diverges.
func TestDeterministicStatsAcrossRuns(t *testing.T) {
	bw1, st1 := runFingerprint(t, 42, false)
	bw2, st2 := runFingerprint(t, 42, false)
	if !reflect.DeepEqual(bw1, bw2) {
		t.Fatal("bandwidth stats differ across identically-seeded runs")
	}
	for i := range st1 {
		if st1[i] != st2[i] {
			t.Fatalf("replica %d protocol stats differ:\n run1: %s\n run2: %s", i, st1[i], st2[i])
		}
	}
	// Sanity: the fingerprint reflects real work, not an idle cluster.
	if bw1[0].Total() == 0 {
		t.Fatal("fingerprint run did no work")
	}
}

// TestDeterministicStatsWithStreaming extends the determinism guarantee
// to the chunked credit-based bulk model: the per-pair chunk schedules,
// credit grants and park/resume cycles are all heap events, so two
// identically-seeded streaming runs must stay byte-identical too.
func TestDeterministicStatsWithStreaming(t *testing.T) {
	bw1, st1 := runFingerprint(t, 42, true)
	bw2, st2 := runFingerprint(t, 42, true)
	if !reflect.DeepEqual(bw1, bw2) {
		t.Fatal("bandwidth stats differ across identically-seeded streaming runs")
	}
	for i := range st1 {
		if st1[i] != st2[i] {
			t.Fatalf("replica %d protocol stats differ:\n run1: %s\n run2: %s", i, st1[i], st2[i])
		}
	}
	if bw1[0].Total() == 0 {
		t.Fatal("fingerprint run did no work")
	}
	// The streaming fingerprint must actually have streamed: credit
	// grants show up as ClassMisc traffic, which the pipe model never
	// produces.
	var misc int64
	for i := range bw1 {
		misc += bw1[i].Sent[transport.ClassMisc]
	}
	if misc == 0 {
		t.Fatal("streaming run granted no credits: bulk model not exercised")
	}
}
