package harness

import (
	"leopard/internal/faultplan"
	"leopard/internal/types"
)

// InstallPlan arms a fault schedule on the cluster: the engine's filter
// takes the network's filter slot (partitions, probabilistic loss) and its
// timed events (delay spikes, clock skew, crashes, durable restarts) are
// registered against the simulator clock. Restarts go through the
// cluster's Restart, so a replica built over a surviving store recovers
// durably — and trips the invariant checker's durability hooks when one
// is attached. Install at most one plan per run, before Start.
func (c *Cluster) InstallPlan(p faultplan.Plan) (*faultplan.Engine, error) {
	if err := p.Validate(c.opts.N); err != nil {
		return nil, err
	}
	eng := faultplan.New(p)
	c.Net.SetFilter(eng.Filter)
	eng.Schedule(faultplan.Hooks{
		N:            c.opts.N,
		Schedule:     c.Net.ScheduleCall,
		Crash:        func(id types.ReplicaID) { c.Net.Crash(id) },
		Restart:      c.Restart,
		SetLinkDelay: c.Net.SetLinkDelay,
		SetClockSkew: c.Net.SetClockSkew,
	})
	return eng, nil
}

// AttachInvariants installs the checker's message tap and remembers it so
// Restart can assert durability around every crash-restart cycle.
// Execution observers and stores are per-replica wiring the experiment's
// Build function owns (Config.OnExecute + RegisterStore).
func (c *Cluster) AttachInvariants(ic *InvariantChecker) {
	c.Invariants = ic
	c.Net.SetObserver(ic.ObserveMessage)
}

// frontier reports a replica's executed height when it exposes one.
func frontier(r any) (types.SeqNum, bool) {
	e, ok := r.(interface{ ExecutedTo() types.SeqNum })
	if !ok {
		return 0, false
	}
	return e.ExecutedTo(), true
}

// checkDurability brackets a restart for the invariant checker.
func (c *Cluster) checkDurability(id types.ReplicaID, rebuild func() error) error {
	if c.Invariants == nil {
		return rebuild()
	}
	c.Invariants.BeforeRestart(id)
	if err := rebuild(); err != nil {
		return err
	}
	if recovered, ok := frontier(c.Replicas[id]); ok {
		c.Invariants.AfterRestart(id, recovered)
	}
	return nil
}
