package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"leopard/internal/codec"
	"leopard/internal/crypto"
	"leopard/internal/types"
)

// testRecord builds a deterministic record at seq with payload-bearing
// datablocks (reqPerDB requests of payloadLen bytes each).
func testRecord(seq types.SeqNum, links, reqPerDB, payloadLen int) *BlockRecord {
	block := &types.BFTblock{View: 1, Seq: seq}
	rec := &BlockRecord{
		Seq:       seq,
		Block:     block,
		Notarized: crypto.Proof{Sig: []byte(fmt.Sprintf("sigma1-%d", seq))},
		Confirmed: crypto.Proof{Sig: []byte(fmt.Sprintf("sigma2-%d", seq))},
	}
	for i := 0; i < links; i++ {
		db := &types.Datablock{Ref: types.DatablockRef{Generator: types.ReplicaID(i % 4), Counter: uint64(seq)*100 + uint64(i)}}
		for r := 0; r < reqPerDB; r++ {
			payload := bytes.Repeat([]byte{byte(seq), byte(i), byte(r)}, payloadLen/3+1)[:payloadLen]
			db.Requests = append(db.Requests, types.Request{ClientID: uint64(i), Seq: uint64(seq)*1000 + uint64(r), Payload: payload})
		}
		rec.Datablocks = append(rec.Datablocks, db)
		rec.Block.Content = append(rec.Block.Content, crypto.HashDatablock(db))
	}
	return rec
}

func encodeRecord(rec *BlockRecord) []byte {
	w := &codec.Writer{}
	AppendBlockRecord(w, rec)
	return w.Buf
}

func recordsEqual(a, b *BlockRecord) bool {
	return bytes.Equal(encodeRecord(a), encodeRecord(b))
}

func TestBlockRecordRoundTrip(t *testing.T) {
	for _, links := range []int{0, 1, 3} {
		rec := testRecord(7, links, 2, 16)
		buf := encodeRecord(rec)
		r := &codec.Reader{Buf: buf}
		got, err := ReadBlockRecord(r)
		if err != nil {
			t.Fatalf("links=%d: %v", links, err)
		}
		if err := r.Finish(); err != nil {
			t.Fatalf("links=%d: trailing: %v", links, err)
		}
		if !recordsEqual(rec, got) {
			t.Fatalf("links=%d: round trip mismatch", links)
		}
		// Truncations must error, never panic.
		for cut := 0; cut < len(buf); cut++ {
			r := &codec.Reader{Buf: buf[:cut]}
			if rec, err := ReadBlockRecord(r); err == nil && r.Finish() == nil {
				// A shorter valid record is impossible: the encoding is
				// length-prefixed throughout.
				t.Fatalf("links=%d: truncation at %d decoded: %+v", links, cut, rec)
			}
		}
		if rec.WireSize() != len(buf) {
			t.Fatalf("links=%d: WireSize %d != encoded %d", links, rec.WireSize(), len(buf))
		}
	}
}

func TestWALAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	// Small segments force several rolls.
	l, err := Open(dir, Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	var appended []*BlockRecord
	for sn := types.SeqNum(1); sn <= 20; sn++ {
		rec := testRecord(sn, 2, 4, 64)
		appended = append(appended, rec)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	cp := Checkpoint{Seq: 8, StateHash: types.Hash{1, 2}, Proof: crypto.Proof{Sig: []byte("cp-proof")}}
	if err := l.SaveCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	if err := l.SaveMeta(Meta{View: 3, CounterReserve: 2048}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got, ok := re.Checkpoint(); !ok || got.Seq != 8 || !bytes.Equal(got.Proof.Sig, cp.Proof.Sig) {
		t.Fatalf("checkpoint not recovered: %+v ok=%v", got, ok)
	}
	if m := re.Meta(); m.View != 3 || m.CounterReserve != 2048 {
		t.Fatalf("meta not recovered: %+v", m)
	}
	first, last := re.Bounds()
	if first != 1 || last != 20 {
		t.Fatalf("bounds (%d, %d), want (1, 20)", first, last)
	}
	for _, want := range appended {
		got, ok := re.Get(want.Seq)
		if !ok || !recordsEqual(want, got) {
			t.Fatalf("record %d not recovered intact", want.Seq)
		}
	}
	st := re.Stats()
	if st.Loaded != 20 || st.TailTruncated {
		t.Fatalf("stats after clean reopen: %+v", st)
	}
	if st.Segments < 2 {
		t.Fatalf("expected multiple segments, got %d", st.Segments)
	}

	// Truncation below the checkpoint drops whole old segments but keeps
	// the contiguous tail.
	if err := re.TruncateBelow(8); err != nil {
		t.Fatal(err)
	}
	if _, last := re.Bounds(); last != 20 {
		t.Fatalf("truncate lost the tail: last=%d", last)
	}
	for sn := types.SeqNum(9); sn <= 20; sn++ {
		if _, ok := re.Get(sn); !ok {
			t.Fatalf("record %d lost by truncation", sn)
		}
	}
	if after := re.Stats(); after.Segments >= st.Segments {
		t.Fatalf("truncation removed no segments: %d -> %d", st.Segments, after.Segments)
	}
}

// corrupt applies fn to the newest segment file.
func corruptNewestSegment(t *testing.T, dir string, fn func([]byte) []byte) {
	t.Helper()
	entries, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	path := entries[len(entries)-1]
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fn(buf), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestWALTortureRecovery is the damage table: truncated tail record,
// corrupt CRC, and a torn mid-record write must all recover to the last
// complete record.
func TestWALTortureRecovery(t *testing.T) {
	const records = 6
	cases := []struct {
		name string
		// damage returns the mutated segment bytes; lastGood is the highest
		// seq that must survive.
		damage   func(buf []byte) []byte
		lastGood types.SeqNum
	}{
		{
			name:     "truncated tail record",
			damage:   func(buf []byte) []byte { return buf[:len(buf)-7] },
			lastGood: records - 1,
		},
		{
			name: "corrupt crc in last record",
			damage: func(buf []byte) []byte {
				buf[len(buf)-1] ^= 0xff
				return buf
			},
			lastGood: records - 1,
		},
		{
			name: "mid-record crash",
			damage: func(buf []byte) []byte {
				// Cut inside the middle record: a write that never finished.
				return buf[:len(buf)/2]
			},
			lastGood: 0, // computed per-run below: whatever prefix survived
		},
		{
			name: "corrupt first record",
			damage: func(buf []byte) []byte {
				buf[12] ^= 0xff // inside record 1's payload
				return buf
			},
			lastGood: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{}) // one segment: large threshold
			if err != nil {
				t.Fatal(err)
			}
			var appended []*BlockRecord
			for sn := types.SeqNum(1); sn <= records; sn++ {
				rec := testRecord(sn, 1, 2, 32)
				appended = append(appended, rec)
				if err := l.Append(rec); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			corruptNewestSegment(t, dir, tc.damage)

			re, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("recovery must not fail: %v", err)
			}
			defer re.Close()
			st := re.Stats()
			if !st.TailTruncated {
				t.Fatal("damage not reported as tail truncation")
			}
			first, last := re.Bounds()
			if tc.lastGood > 0 && last != tc.lastGood {
				t.Fatalf("recovered to %d, want %d", last, tc.lastGood)
			}
			// Every surviving record must equal what was appended, and the
			// run must be the contiguous prefix.
			if first != 0 && first != 1 {
				t.Fatalf("recovered run starts at %d", first)
			}
			for sn := first; sn != 0 && sn <= last; sn++ {
				got, ok := re.Get(sn)
				if !ok || !recordsEqual(appended[sn-1], got) {
					t.Fatalf("record %d damaged by recovery", sn)
				}
			}
			// The log must accept appends continuing from the survivor.
			next := last + 1
			if err := re.Append(testRecord(next, 1, 2, 32)); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
		})
	}
}

// TestFlushStagedNeverAliasesSpare is the regression test for a buffer
// recycling bug: a flush that found nothing staged (a segment roll racing
// the background syncer), or one whose chunk was too large to recycle,
// skipped the spare exchange after pending had already been repointed at
// spare's array — leaving the two aliased, so the next flush handed
// f.Write a buffer that concurrent Appends were growing, silently
// corrupting frames on disk.
func TestFlushStagedNeverAliasesSpare(t *testing.T) {
	// A huge FsyncInterval keeps the background syncer out of the test.
	l, err := Open(t.TempDir(), Options{FsyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	aliased := func() bool {
		l.mu.Lock()
		defer l.mu.Unlock()
		if cap(l.pending) == 0 || cap(l.spare) == 0 {
			return false
		}
		return &l.pending[:1][0] == &l.spare[:1][0]
	}

	// Populate spare via one normal append+flush cycle.
	if err := l.Append(testRecord(1, 1, 1, 32)); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Empty flush: nothing staged, so the recycle used to be skipped.
	l.flushMu.Lock()
	err = l.flushStaged()
	l.flushMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if aliased() {
		t.Fatal("empty flush left spare aliasing pending")
	}

	// Oversized chunk (> 8 MiB): not recycled, and must not leave the old
	// spare array shared with pending either.
	if err := l.Append(testRecord(2, 1, 1, 9<<20)); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if aliased() {
		t.Fatal("oversized flush left spare aliasing pending")
	}

	// The log must still be intact end to end.
	if err := l.Append(testRecord(3, 1, 1, 32)); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	first, last := l.Bounds()
	if first != 1 || last != 3 {
		t.Fatalf("bounds (%d, %d), want (1, 3)", first, last)
	}
}

func TestWALRejectsNonContiguousAppend(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(testRecord(1, 1, 1, 8)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRecord(3, 1, 1, 8)); err == nil {
		t.Fatal("gap append accepted")
	}
	m := NewMemLog()
	if err := m.Append(testRecord(1, 1, 1, 8)); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(testRecord(3, 1, 1, 8)); err == nil {
		t.Fatal("memlog gap append accepted")
	}
}

func TestMemLogTruncateAndBounds(t *testing.T) {
	m := NewMemLog()
	for sn := types.SeqNum(1); sn <= 10; sn++ {
		if err := m.Append(testRecord(sn, 1, 1, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.SaveCheckpoint(Checkpoint{Seq: 6}); err != nil {
		t.Fatal(err)
	}
	if err := m.TruncateBelow(6); err != nil {
		t.Fatal(err)
	}
	first, last := m.Bounds()
	if first != 7 || last != 10 {
		t.Fatalf("bounds (%d, %d), want (7, 10)", first, last)
	}
	if _, ok := m.Get(6); ok {
		t.Fatal("truncated record still present")
	}
	if m.Stats().Records != 4 {
		t.Fatalf("records %d, want 4", m.Stats().Records)
	}
}

// TestWALCorruptCheckpointFileFails asserts a damaged checkpoint file is a
// loud Open error, not a silent empty store: the WAL tail was truncated
// against that anchor, so pretending it never existed would un-anchor the
// retained records.
func TestWALCorruptCheckpointFile(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SaveCheckpoint(Checkpoint{Seq: 5, Proof: crypto.Proof{Sig: []byte("p")}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "checkpoint")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt checkpoint file accepted")
	}
}

// FuzzWALReplay corrupts a valid log at an arbitrary offset with arbitrary
// junk and asserts replay never panics and never yields a record that was
// not appended: recovery is a contiguous prefix of the original records,
// byte-identical up to the first damaged byte.
func FuzzWALReplay(f *testing.F) {
	const records = 5
	baseDir := f.TempDir()
	l, err := Open(baseDir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	var appended []*BlockRecord
	var appendedVotes []VoteRecord
	var appendedNotes []NoteRecord
	// recordEnd[i] is the file offset where block record i+1's frame ends
	// (captured before the interleaved vote/note frames that follow it).
	var recordEnd []int
	for sn := types.SeqNum(1); sn <= records; sn++ {
		rec := testRecord(sn, 1, 2, 24)
		appended = append(appended, rec)
		if err := l.Append(rec); err != nil {
			f.Fatal(err)
		}
		if err := l.Sync(); err != nil {
			f.Fatal(err)
		}
		st := l.Stats()
		recordEnd = append(recordEnd, int(st.LiveBytes))
		// Interleave the other frame kinds so corruption traverses
		// VoteRecord and NoteRecord frames too, not just block records.
		v := VoteRecord{View: 1, Seq: sn, Round: 1, Digest: types.Hash{byte(sn)}}
		appendedVotes = append(appendedVotes, v)
		if err := l.AppendVote(v); err != nil {
			f.Fatal(err)
		}
		if sn%2 == 1 {
			nt := testNote(sn, 1)
			appendedNotes = append(appendedNotes, nt)
			if err := l.AppendNote(nt); err != nil {
				f.Fatal(err)
			}
		}
		if err := l.Sync(); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	segPath, err := filepath.Glob(filepath.Join(baseDir, "seg-*.wal"))
	if err != nil || len(segPath) != 1 {
		f.Fatalf("expected one segment: %v %v", segPath, err)
	}
	base, err := os.ReadFile(segPath[0])
	if err != nil {
		f.Fatal(err)
	}

	f.Add(uint16(0), []byte{})
	f.Add(uint16(len(base)/2), []byte{0xde, 0xad})
	f.Add(uint16(len(base)), []byte{0x00})
	f.Fuzz(func(t *testing.T, cutRaw uint16, junk []byte) {
		cut := int(cutRaw) % (len(base) + 1)
		mutated := append(append([]byte{}, base[:cut]...), junk...)

		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "seg-00000001.wal"), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("open must recover, not fail: %v", err)
		}
		defer re.Close()

		// Records whose frames sit entirely below the cut are untouched and
		// must be recovered verbatim.
		intact := 0
		for i, end := range recordEnd {
			if end <= cut {
				intact = i + 1
			}
		}
		first, last := re.Bounds()
		if intact > 0 && (first != 1 || last < types.SeqNum(intact)) {
			t.Fatalf("intact prefix of %d lost: bounds (%d, %d)", intact, first, last)
		}
		for sn := types.SeqNum(1); sn <= types.SeqNum(intact); sn++ {
			got, ok := re.Get(sn)
			if !ok || !recordsEqual(appended[sn-1], got) {
				t.Fatalf("intact record %d not recovered verbatim", sn)
			}
		}
		// Whatever was recovered beyond the intact prefix must still be a
		// contiguous run of structurally valid records starting at 1 —
		// damage may shorten the log, never fabricate or reorder it.
		if first != 0 && first != 1 {
			t.Fatalf("recovered run starts at %d", first)
		}
		for sn := first; sn != 0 && sn <= last; sn++ {
			rec, ok := re.Get(sn)
			if !ok {
				t.Fatalf("hole at %d inside recovered bounds", sn)
			}
			if rec.Seq != sn {
				t.Fatalf("record at %d claims seq %d", sn, rec.Seq)
			}
			// Every recovered record must re-encode cleanly (no partially
			// decoded state escapes the scan).
			r := &codec.Reader{Buf: encodeRecord(rec)}
			if _, err := ReadBlockRecord(r); err != nil || r.Finish() != nil {
				t.Fatalf("recovered record %d does not round-trip: %v", sn, err)
			}
		}
		// Damage may drop vote/note frames, never fabricate them: every
		// recovered record must be one that was appended.
		for _, v := range re.Votes() {
			ok := false
			for _, want := range appendedVotes {
				if v == want {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("fabricated vote record %+v", v)
			}
		}
		for _, nt := range re.Notes() {
			ok := false
			for _, want := range appendedNotes {
				if notesEqual(nt, want) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("fabricated note record seq %d", nt.Block.Seq)
			}
		}
	})
}
