package storage

import (
	"fmt"
	"os"
	"sync"
)

// FS is the narrow filesystem surface the WAL runs on. The default OsFS
// passes straight through to the os package; FaultFS wraps any FS and
// injects scheduled disk faults (failed fsyncs, torn writes, bit flips on
// read) so the torn-tail recovery and sticky-werr fail-stop semantics can be
// exercised against a live log rather than crafted on-disk corpses.
type FS interface {
	MkdirAll(path string) error
	// ReadDir returns the names (not paths) of the entries in dir.
	ReadDir(dir string) ([]string, error)
	ReadFile(path string) ([]byte, error)
	WriteFile(path string, data []byte) error
	// OpenFile opens path with os.O_* flags for writing (the WAL never
	// reads through an open handle).
	OpenFile(path string, flag int) (File, error)
	Truncate(path string, size int64) error
	Remove(path string) error
	Rename(oldPath, newPath string) error
}

// File is an open, writable WAL segment or atomic-replace temporary.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// OsFS is the production FS: direct os package calls.
type OsFS struct{}

var _ FS = OsFS{}

func (OsFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

func (OsFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names, nil
}

func (OsFS) ReadFile(path string) ([]byte, error)     { return os.ReadFile(path) }
func (OsFS) WriteFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }
func (OsFS) Truncate(path string, size int64) error   { return os.Truncate(path, size) }
func (OsFS) Remove(path string) error                 { return os.Remove(path) }
func (OsFS) Rename(oldPath, newPath string) error     { return os.Rename(oldPath, newPath) }
func (OsFS) OpenFile(path string, flag int) (File, error) {
	return os.OpenFile(path, flag, 0o644)
}

// FaultStats counts the faults a FaultFS actually delivered.
type FaultStats struct {
	Writes    int64 // Write calls observed (across all files)
	Bytes     int64 // bytes accepted by Write (after tearing)
	Syncs     int64 // Sync calls observed
	Tears     int64 // torn writes delivered
	SyncFails int64 // injected fsync failures delivered
	BitFlips  int64 // read-side bit flips delivered
}

// FaultFS wraps an FS and injects scheduled disk faults. Faults are armed
// from the test and fire deterministically against the cumulative write
// stream (tears), the Sync call sequence (fsync failures), or the next
// qualifying read (bit flips). All methods are safe for concurrent use —
// the WAL's syncer goroutine writes while tests arm faults.
type FaultFS struct {
	inner FS

	mu        sync.Mutex
	written   int64 // cumulative bytes offered to Write across all files
	tearAt    int64 // -1 = disarmed; tear when written crosses this offset
	failSyncs int   // number of upcoming Sync calls to fail
	flipAt    int64 // -1 = disarmed; flip a bit at this offset of the next long-enough read
	stats     FaultStats
}

// NewFaultFS wraps inner with all faults disarmed.
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OsFS{}
	}
	return &FaultFS{inner: inner, tearAt: -1, flipAt: -1}
}

var _ FS = (*FaultFS)(nil)

// BytesWritten returns the cumulative bytes offered to Write so far, the
// coordinate system TearWriteAt schedules against.
func (f *FaultFS) BytesWritten() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

// TearWriteAt arms a torn write: the Write call during which the cumulative
// write stream crosses offset persists only the bytes up to it, then fails.
// This models a crash mid-write: a partial frame reaches the disk.
func (f *FaultFS) TearWriteAt(offset int64) {
	f.mu.Lock()
	f.tearAt = offset
	f.mu.Unlock()
}

// FailNextSyncs arms the next k Sync calls (on any file) to fail.
func (f *FaultFS) FailNextSyncs(k int) {
	f.mu.Lock()
	f.failSyncs = k
	f.mu.Unlock()
}

// FlipBitOnRead arms a single-bit corruption at byte offset of the next
// ReadFile whose result is long enough to contain it.
func (f *FaultFS) FlipBitOnRead(offset int64) {
	f.mu.Lock()
	f.flipAt = offset
	f.mu.Unlock()
}

// FaultStats returns the delivered-fault counters.
func (f *FaultFS) FaultStats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

func (f *FaultFS) MkdirAll(path string) error           { return f.inner.MkdirAll(path) }
func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }
func (f *FaultFS) WriteFile(path string, data []byte) error {
	return f.inner.WriteFile(path, data)
}
func (f *FaultFS) Truncate(path string, size int64) error { return f.inner.Truncate(path, size) }
func (f *FaultFS) Remove(path string) error               { return f.inner.Remove(path) }
func (f *FaultFS) Rename(oldPath, newPath string) error   { return f.inner.Rename(oldPath, newPath) }

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	buf, err := f.inner.ReadFile(path)
	if err != nil {
		return buf, err
	}
	f.mu.Lock()
	if f.flipAt >= 0 && int64(len(buf)) > f.flipAt {
		buf[f.flipAt] ^= 0x40
		f.flipAt = -1
		f.stats.BitFlips++
	}
	f.mu.Unlock()
	return buf, nil
}

func (f *FaultFS) OpenFile(path string, flag int) (File, error) {
	inner, err := f.inner.OpenFile(path, flag)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

type faultFile struct {
	fs    *FaultFS
	inner File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	ff.fs.stats.Writes++
	tear := -1
	if ff.fs.tearAt >= 0 && ff.fs.written+int64(len(p)) > ff.fs.tearAt {
		tear = int(ff.fs.tearAt - ff.fs.written)
		if tear < 0 {
			tear = 0
		}
		ff.fs.tearAt = -1
		ff.fs.stats.Tears++
	}
	ff.fs.mu.Unlock()
	if tear >= 0 {
		n, err := ff.inner.Write(p[:tear])
		ff.fs.mu.Lock()
		ff.fs.written += int64(n)
		ff.fs.stats.Bytes += int64(n)
		ff.fs.mu.Unlock()
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("storage: injected torn write after %d of %d bytes", n, len(p))
	}
	n, err := ff.inner.Write(p)
	ff.fs.mu.Lock()
	ff.fs.written += int64(n)
	ff.fs.stats.Bytes += int64(n)
	ff.fs.mu.Unlock()
	return n, err
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	ff.fs.stats.Syncs++
	fail := ff.fs.failSyncs > 0
	if fail {
		ff.fs.failSyncs--
		ff.fs.stats.SyncFails++
	}
	ff.fs.mu.Unlock()
	if fail {
		return fmt.Errorf("storage: injected fsync failure")
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error { return ff.inner.Close() }
