package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"leopard/internal/codec"
	"leopard/internal/crypto"
	"leopard/internal/types"
)

// TestAppendVoteDurableBeforeReturn: a vote must be on disk when AppendVote
// returns, even under the default group-commit options — the caller
// broadcasts it immediately, so the durability boundary is the call, not
// the next batch flush. Staged block frames ride the same fsync. The batch
// window is set absurdly long so nothing reaches the file except through
// AppendVote itself.
func TestAppendVoteDurableBeforeReturn(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{FsyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	rec := testRecord(1, 1, 1, 16)
	if err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "seg-00000001.wal")
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(len(segMagic)) {
		t.Fatalf("block append flushed eagerly: segment is %d bytes", fi.Size())
	}

	vote := VoteRecord{View: 1, Seq: 2, Round: 1, Digest: types.Hash{2}}
	if err := l.AppendVote(vote); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Both frames — the staged block and the vote that committed the batch
	// — must be complete on disk the moment AppendVote returns.
	off := len(segMagic)
	kind, _, n := decodeFrame(buf[off:])
	if kind != recBlock {
		t.Fatalf("first frame on disk is kind %d, want block", kind)
	}
	off += n
	kind, payload, _ := decodeFrame(buf[off:])
	if kind != recVote {
		t.Fatalf("second frame on disk is kind %d, want vote", kind)
	}
	got, err := readVoteRecord(&codec.Reader{Buf: payload})
	if err != nil {
		t.Fatal(err)
	}
	if got != vote {
		t.Fatalf("vote on disk %+v, want %+v", got, vote)
	}
	if l.Stats().Syncs == 0 {
		t.Fatal("AppendVote returned without an fsync batch")
	}
}

// testNote builds a deterministic notarization record at seq.
func testNote(seq types.SeqNum, view types.View) NoteRecord {
	return NoteRecord{
		Block:     &types.BFTblock{View: view, Seq: seq, Content: []types.Hash{{byte(seq)}}},
		Notarized: crypto.Proof{Sig: []byte(fmt.Sprintf("sigma1-%d", seq))},
	}
}

func encodeNote(nt NoteRecord) []byte {
	w := &codec.Writer{}
	appendNoteRecord(w, nt)
	return w.Buf
}

func notesEqual(a, b NoteRecord) bool {
	return string(encodeNote(a)) == string(encodeNote(b))
}

// TestWALNoteRecordLifecycle covers the notarization records' durability
// arc, mirroring the vote-record lifecycle: interleaved with block and vote
// frames, recovered in order on reopen, pruned by checkpoint truncation,
// filtered against the anchor at scan, and re-staged across a Reset.
func TestWALNoteRecordLifecycle(t *testing.T) {
	dir := t.TempDir()
	l := tortureLog(t, dir, OsFS{})
	notes := []NoteRecord{
		testNote(3, 2),
		testNote(7, 2),
		testNote(9, 3),
	}
	for i, nt := range notes {
		if err := l.AppendNote(nt); err != nil {
			t.Fatal(err)
		}
		// Interleave the round-2 vote that rides with each note, and a
		// block frame.
		v := VoteRecord{View: nt.Block.View, Seq: nt.Block.Seq, Round: 2, Digest: types.Hash{byte(nt.Block.Seq)}}
		if err := l.AppendVote(v); err != nil {
			t.Fatal(err)
		}
		if err := l.Append(testRecord(types.SeqNum(i+1), 1, 1, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re := tortureLog(t, dir, OsFS{})
	got := re.Notes()
	if len(got) != len(notes) {
		t.Fatalf("recovered %d notes, want %d", len(got), len(notes))
	}
	for i := range notes {
		if !notesEqual(got[i], notes[i]) {
			t.Fatalf("note %d: got %+v want %+v", i, got[i], notes[i])
		}
	}

	// Truncation below an advanced watermark prunes covered notes.
	if err := re.SaveCheckpoint(Checkpoint{Seq: 3, Proof: crypto.Proof{Sig: []byte("p")}}); err != nil {
		t.Fatal(err)
	}
	if err := re.TruncateBelow(3); err != nil {
		t.Fatal(err)
	}
	for _, nt := range re.Notes() {
		if nt.Block.Seq <= 3 {
			t.Fatalf("note at %d survived truncation", nt.Block.Seq)
		}
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh scan filters notes at or below the saved anchor even though
	// their frames are still in the retained segments.
	re2 := tortureLog(t, dir, OsFS{})
	for _, nt := range re2.Notes() {
		if nt.Block.Seq <= 3 {
			t.Fatalf("scan admitted note at %d below the anchor", nt.Block.Seq)
		}
	}

	// Reset re-anchors the log; notes above the anchor are re-staged into
	// the fresh segment and survive the next restart.
	if err := re2.Reset(7); err != nil {
		t.Fatal(err)
	}
	if g := re2.Notes(); len(g) != 1 || !notesEqual(g[0], notes[2]) {
		t.Fatalf("notes after reset: %+v", g)
	}
	if err := re2.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := re2.Close(); err != nil {
		t.Fatal(err)
	}
	re3 := tortureLog(t, dir, OsFS{})
	defer re3.Close()
	if g := re3.Notes(); len(g) != 1 || !notesEqual(g[0], notes[2]) {
		t.Fatalf("re-staged note lost across restart: %+v", g)
	}
}

// TestStoreAccessorsCopy: Votes and Notes hand out copies on both Store
// implementations — pruning reuses the internal backing arrays in place, so
// a caller appending to (or mutating) the result must not corrupt the log.
func TestStoreAccessorsCopy(t *testing.T) {
	stores := map[string]Store{"memlog": NewMemLog()}
	l := tortureLog(t, t.TempDir(), OsFS{})
	defer l.Close()
	stores["wal"] = l
	for name, st := range stores {
		t.Run(name, func(t *testing.T) {
			want := VoteRecord{View: 1, Seq: 5, Round: 1, Digest: types.Hash{5}}
			if err := st.AppendVote(want); err != nil {
				t.Fatal(err)
			}
			if err := st.AppendNote(testNote(5, 1)); err != nil {
				t.Fatal(err)
			}
			votes := st.Votes()
			votes[0] = VoteRecord{View: 99, Seq: 99}
			if got := st.Votes()[0]; got != want {
				t.Fatalf("mutating the Votes result corrupted the store: %+v", got)
			}
			notes := st.Notes()
			notes[0] = NoteRecord{}
			if got := st.Notes()[0]; !notesEqual(got, testNote(5, 1)) {
				t.Fatalf("mutating the Notes result corrupted the store: %+v", got)
			}
		})
	}
}
