package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"leopard/internal/codec"
	"leopard/internal/types"
)

// On-disk layout under the data directory:
//
//	seg-00000001.wal  segment: 8-byte magic, then framed records
//	checkpoint        latest stable checkpoint (atomically replaced)
//	meta              replica-local metadata (atomically replaced)
//
// A segment frame is u32 length | u32 CRC-32 (IEEE, over the payload) |
// payload, where payload is a one-byte record kind followed by the record
// encoding. The single-file checkpoint and meta records use the same frame
// after their own magic.
const (
	segMagic  = "LPWAL001"
	ckptMagic = "LPCKPT01"
	metaMagic = "LPMETA01"

	recBlock byte = 1
	recVote  byte = 2
	recNote  byte = 3

	// maxFrameLen bounds a single record frame. A record carries up to τ
	// full datablocks, so the bound is generous; anything larger is
	// corruption.
	maxFrameLen = 1 << 30
)

// Options tunes a file-backed Log. The zero value selects the defaults.
type Options struct {
	// SegmentBytes is the roll threshold: a segment exceeding it is closed
	// and a new one started. Default 8 MiB.
	SegmentBytes int64
	// FsyncInterval is the group-commit window: staged appends are written
	// and fsynced in batches at most this far apart. Default 2ms.
	FsyncInterval time.Duration
	// StageBudget bounds the staged-but-unwritten bytes. An Append that
	// would exceed it flushes inline instead (backpressure), so a disk that
	// cannot keep up degrades the log to disk speed rather than ballooning
	// memory. Default 32 MiB.
	StageBudget int64
	// SyncEachAppend makes every Append write, flush and fsync before
	// returning (no batching). Benchmarks use it as the serialized
	// baseline; real deployments should not.
	SyncEachAppend bool
	// FS is the filesystem the log runs on. Nil selects OsFS; tests inject
	// a FaultFS to exercise torn writes, failed fsyncs and read corruption.
	FS FS
}

func (o *Options) normalize() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 2 * time.Millisecond
	}
	if o.StageBudget <= 0 {
		o.StageBudget = 32 << 20
	}
	if o.FS == nil {
		o.FS = OsFS{}
	}
}

type segInfo struct {
	index int
	path  string
	first types.SeqNum // 0 when the segment holds no records yet
	last  types.SeqNum
	bytes int64 // committed + staged bytes destined for this segment
}

// Log is the file-backed Store: a segmented WAL with group-committed
// appends. Append stages the framed record in memory and returns — no
// write or fsync syscalls on the caller's path — and the background syncer
// writes and fsyncs staged batches at most once per FsyncInterval, so the
// execute path pays encode + memcpy and nothing else (BenchmarkWALAppend).
// Retained records are also kept decoded in memory (the retained window is
// bounded by the checkpoint interval), so Get and recovery replay never
// re-read disk after Open.
type Log struct {
	dir  string
	opts Options
	fs   FS

	// flushMu serializes flushes (syncer, explicit Sync, segment rolls,
	// Close) so staged bytes reach the file in append order. It is always
	// acquired before mu when both are held.
	flushMu sync.Mutex

	mu      sync.Mutex
	f       File
	pending []byte    // staged frames not yet written to the current segment
	spare   []byte    // recycled staging buffer
	segs    []segInfo // closed and current segments, ascending index
	records map[types.SeqNum]*BlockRecord
	votes   []VoteRecord // retained vote-ahead records, append order
	notes   []NoteRecord // retained notarization records, append order
	first   types.SeqNum
	last    types.SeqNum
	cp      *Checkpoint
	meta    Meta
	werr    error // sticky async write/fsync error, surfaced on Append/Sync
	closed  bool
	stats   Stats

	kick chan struct{} // signals the syncer that appends are staged
	done chan struct{}
	wg   sync.WaitGroup
}

var _ Store = (*Log)(nil)

// Open loads (or creates) the write-ahead log in dir, recovering to the
// last complete record: a damaged frame — truncated tail, CRC mismatch,
// torn write — truncates its segment there and discards later segments.
func Open(dir string, opts Options) (*Log, error) {
	opts.normalize()
	if err := opts.FS.MkdirAll(dir); err != nil {
		return nil, err
	}
	l := &Log{
		dir:     dir,
		opts:    opts,
		fs:      opts.FS,
		records: make(map[types.SeqNum]*BlockRecord),
		kick:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	if err := l.loadCheckpoint(); err != nil {
		return nil, err
	}
	if err := l.loadMeta(); err != nil {
		return nil, err
	}
	if err := l.scanSegments(); err != nil {
		return nil, err
	}
	if err := l.openCurrent(); err != nil {
		return nil, err
	}
	if !opts.SyncEachAppend {
		l.wg.Add(1)
		go l.syncLoop()
	}
	return l, nil
}

// scanSegments reads every segment in index order, stopping at the first
// damaged frame.
func (l *Log) scanSegments() error {
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return err
	}
	var segs []segInfo
	for _, name := range names {
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		idx, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".wal"))
		if err != nil {
			continue
		}
		segs = append(segs, segInfo{index: idx, path: filepath.Join(l.dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })

	for i := range segs {
		ok, err := l.scanSegment(&segs[i])
		if err != nil {
			return err
		}
		l.segs = append(l.segs, segs[i])
		if !ok {
			// Damage: later segments cannot be contiguous with the
			// truncated run, so they are dead.
			for _, dead := range segs[i+1:] {
				l.fs.Remove(dead.path)
			}
			l.stats.TailTruncated = true
			break
		}
	}
	return nil
}

// scanSegment loads one segment's records, truncating at the first damaged
// or non-contiguous frame. It returns false when the segment was truncated.
func (l *Log) scanSegment(seg *segInfo) (bool, error) {
	buf, err := l.fs.ReadFile(seg.path)
	if err != nil {
		return false, err
	}
	if len(buf) < len(segMagic) || string(buf[:len(segMagic)]) != segMagic {
		// A segment without a valid magic is recreated empty.
		if err := l.fs.WriteFile(seg.path, []byte(segMagic)); err != nil {
			return false, err
		}
		seg.bytes = int64(len(segMagic))
		return false, nil
	}
	good := len(buf) // offset of the first damaged byte
	intact := true
	off := len(segMagic)
	for off < len(buf) {
		kind, payload, n := decodeFrame(buf[off:])
		switch kind {
		case recBlock:
			rec, err := parseBlockPayload(payload)
			if err != nil {
				kind = 0
				break
			}
			if l.last != 0 && rec.Seq != l.last+1 {
				kind = 0
				break
			}
			l.admit(rec)
			l.stats.Loaded++
			l.stats.LoadedBytes += int64(n)
			if seg.first == 0 {
				seg.first = rec.Seq
			}
			seg.last = rec.Seq
		case recVote:
			v, err := readVoteRecord(&codec.Reader{Buf: payload})
			if err != nil {
				kind = 0
				break
			}
			// Votes at or below the checkpoint anchor are obsolete history.
			if l.cp == nil || v.Seq > l.cp.Seq {
				l.votes = append(l.votes, v)
			}
		case recNote:
			nt, err := readNoteRecord(&codec.Reader{Buf: payload})
			if err != nil {
				kind = 0
				break
			}
			if l.cp == nil || nt.Block.Seq > l.cp.Seq {
				l.notes = append(l.notes, nt)
			}
		}
		if kind == 0 {
			good, intact = off, false
			break
		}
		off += n
	}
	if !intact {
		if err := l.fs.Truncate(seg.path, int64(good)); err != nil {
			return false, err
		}
		seg.bytes = int64(good)
		return false, nil
	}
	seg.bytes = int64(len(buf))
	return true, nil
}

// decodeFrame parses one frame header from buf, returning (0, nil, 0) on
// any damage: short header, oversize or zero length, short payload, CRC
// mismatch, or an unknown record kind. The returned payload excludes the
// kind byte; it aliases buf, so record parsers must copy.
func decodeFrame(buf []byte) (byte, []byte, int) {
	if len(buf) < 8 {
		return 0, nil, 0
	}
	length := binary.BigEndian.Uint32(buf[0:4])
	crc := binary.BigEndian.Uint32(buf[4:8])
	if length == 0 || length > maxFrameLen || int(length) > len(buf)-8 {
		return 0, nil, 0
	}
	payload := buf[8 : 8+length]
	if crc32.ChecksumIEEE(payload) != crc {
		return 0, nil, 0
	}
	switch payload[0] {
	case recBlock, recVote, recNote:
		return payload[0], payload[1:], 8 + int(length)
	}
	return 0, nil, 0
}

// parseBlockPayload decodes a block-record payload (after the kind byte).
// Copying decode: the scan buffer is transient, so records must own their
// bytes.
func parseBlockPayload(payload []byte) (*BlockRecord, error) {
	r := &codec.Reader{Buf: payload}
	rec, err := ReadBlockRecord(r)
	if err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return rec, nil
}

// admit installs a scanned or appended record into the in-memory index.
func (l *Log) admit(rec *BlockRecord) {
	l.records[rec.Seq] = rec
	if l.first == 0 {
		l.first = rec.Seq
	}
	l.last = rec.Seq
}

// openCurrent opens the newest segment for appending, creating the first
// one if none exists.
func (l *Log) openCurrent() error {
	if len(l.segs) == 0 {
		return l.roll()
	}
	seg := &l.segs[len(l.segs)-1]
	f, err := l.fs.OpenFile(seg.path, os.O_WRONLY|os.O_APPEND)
	if err != nil {
		return err
	}
	l.f = f
	return nil
}

// roll flushes staged bytes into the current segment, fsyncs and closes it,
// and starts the next segment. Callers hold flushMu (or are in Open,
// before the syncer starts).
func (l *Log) roll() error {
	if l.f != nil {
		if err := l.flushStaged(); err != nil {
			return err
		}
		if err := l.f.Sync(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return err
		}
	}
	next := 1
	if len(l.segs) > 0 {
		next = l.segs[len(l.segs)-1].index + 1
	}
	path := filepath.Join(l.dir, fmt.Sprintf("seg-%08d.wal", next))
	f, err := l.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	l.mu.Lock()
	l.f = f
	l.segs = append(l.segs, segInfo{index: next, path: path, bytes: int64(len(segMagic))})
	l.mu.Unlock()
	return nil
}

// Append implements Store: frame the record, stage it in memory, and
// schedule the group commit. No disk syscalls happen on this path (unless
// SyncEachAppend, or a segment roll is due).
func (l *Log) Append(rec *BlockRecord) error {
	w := codec.GetWriter()
	w.U64(0) // frame header placeholder, patched below
	w.U8(recBlock)
	AppendBlockRecord(w, rec)
	frame := w.Buf
	payload := frame[8:]
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		codec.PutWriter(w)
		return fmt.Errorf("storage: log closed")
	}
	if err := l.werr; err != nil {
		l.mu.Unlock()
		codec.PutWriter(w)
		return err
	}
	if l.last != 0 && rec.Seq != l.last+1 {
		l.mu.Unlock()
		codec.PutWriter(w)
		return fmt.Errorf("storage: non-contiguous append %d after %d", rec.Seq, l.last)
	}
	if len(l.segs) == 0 || l.f == nil {
		// A failed Reset left no live segment; the sticky error (set there)
		// was already returned above, but guard against panics regardless.
		l.mu.Unlock()
		codec.PutWriter(w)
		return fmt.Errorf("storage: log has no live segment")
	}
	seg := &l.segs[len(l.segs)-1]
	wasEmpty := len(l.pending) == 0
	l.pending = append(l.pending, frame...)
	seg.bytes += int64(len(frame))
	if seg.first == 0 {
		seg.first = rec.Seq
	}
	seg.last = rec.Seq
	l.admit(rec)
	l.stats.Appended++
	rollDue := seg.bytes > l.opts.SegmentBytes
	overBudget := int64(len(l.pending)) > l.opts.StageBudget
	l.mu.Unlock()
	codec.PutWriter(w)

	if overBudget && !rollDue {
		// Backpressure: the syncer is behind the append rate. Flush inline
		// so staged memory stays bounded; this is the only path on which an
		// append waits for the disk.
		return l.Sync()
	}
	if rollDue {
		l.flushMu.Lock()
		err := l.roll()
		l.flushMu.Unlock()
		if err != nil {
			l.fail(err)
			return err
		}
		return nil
	}
	if l.opts.SyncEachAppend {
		return l.Sync()
	}
	if wasEmpty {
		select {
		case l.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

// encodeVoteFrame frames one vote record (header | kind | encoding).
func encodeVoteFrame(v VoteRecord) []byte {
	w := codec.GetWriter()
	w.U64(0) // frame header placeholder, patched below
	w.U8(recVote)
	appendVoteRecord(w, v)
	return sealFrame(w)
}

// encodeNoteFrame frames one notarization record (header | kind | encoding).
func encodeNoteFrame(nt NoteRecord) []byte {
	w := codec.GetWriter()
	w.U64(0) // frame header placeholder, patched below
	w.U8(recNote)
	appendNoteRecord(w, nt)
	return sealFrame(w)
}

// sealFrame copies the writer's buffer out, patches the length + CRC header
// and recycles the writer.
func sealFrame(w *codec.Writer) []byte {
	frame := append([]byte(nil), w.Buf...)
	codec.PutWriter(w)
	payload := frame[8:]
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	return frame
}

// stageFrame appends an already-sealed frame to the staging buffer under mu,
// charging the current segment. It returns whether the segment is due to
// roll and whether the staging buffer went from empty to non-empty.
func (l *Log) stageFrame(frame []byte) (rollDue, wasEmpty bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false, false, fmt.Errorf("storage: log closed")
	}
	if l.werr != nil {
		return false, false, l.werr
	}
	if len(l.segs) == 0 || l.f == nil {
		return false, false, fmt.Errorf("storage: log has no live segment")
	}
	seg := &l.segs[len(l.segs)-1]
	wasEmpty = len(l.pending) == 0
	l.pending = append(l.pending, frame...)
	seg.bytes += int64(len(frame))
	return seg.bytes > l.opts.SegmentBytes, wasEmpty, nil
}

// AppendVote implements Store: frame the vote record, stage it with any
// pending block or note frames, and flush + fsync before returning. Unlike
// block appends — whose group-commit window is safe because everything in
// it was quorum-confirmed and can be fetched back — a vote is the replica's
// own unilateral commitment: the caller broadcasts it the moment AppendVote
// returns, so the record must be durable first or a crash inside the batch
// window would forget a vote a peer already counted, re-opening the amnesia
// window vote-ahead logging exists to close. Staged block and note frames
// ride the same fsync, so a vote under load also commits the batch early.
func (l *Log) AppendVote(v VoteRecord) error {
	rollDue, _, err := l.stageFrame(encodeVoteFrame(v))
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.votes = append(l.votes, v)
	l.mu.Unlock()
	if rollDue {
		// roll flushes and fsyncs the closing segment — including the frame
		// just staged — before opening the next one.
		l.flushMu.Lock()
		err := l.roll()
		l.flushMu.Unlock()
		if err != nil {
			l.fail(err)
			return err
		}
		return nil
	}
	return l.Sync()
}

// Votes implements Store.
func (l *Log) Votes() []VoteRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]VoteRecord(nil), l.votes...)
}

// AppendNote implements Store: stage one notarization-certificate frame on
// the group-commit path. The frame is not fsynced here — callers follow it
// with the round-2 AppendVote, whose fsync covers both records in one
// batch; if staging fails, the same failure (sticky werr) surfaces on that
// AppendVote and aborts the vote.
func (l *Log) AppendNote(nt NoteRecord) error {
	rollDue, wasEmpty, err := l.stageFrame(encodeNoteFrame(nt))
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.notes = append(l.notes, nt)
	l.mu.Unlock()
	if rollDue {
		l.flushMu.Lock()
		err := l.roll()
		l.flushMu.Unlock()
		if err != nil {
			l.fail(err)
			return err
		}
		return nil
	}
	if l.opts.SyncEachAppend {
		return l.Sync()
	}
	if wasEmpty {
		select {
		case l.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

// Notes implements Store.
func (l *Log) Notes() []NoteRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]NoteRecord(nil), l.notes...)
}

// Err implements Store: the sticky async write/fsync error, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.werr
}

// fail records a sticky async error.
func (l *Log) fail(err error) {
	l.mu.Lock()
	if l.werr == nil {
		l.werr = err
	}
	l.mu.Unlock()
}

// syncLoop is the group-commit goroutine: woken by the first staged append,
// it waits out the batch window, then writes and fsyncs everything that
// accumulated.
func (l *Log) syncLoop() {
	defer l.wg.Done()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-l.done:
			return
		case <-l.kick:
		}
		timer.Reset(l.opts.FsyncInterval)
		select {
		case <-l.done:
			timer.Stop()
			// Close performs the final sync.
			return
		case <-timer.C:
		}
		if err := l.Sync(); err != nil {
			l.fail(err)
		}
	}
}

// flushStaged writes the staged bytes to the current segment. Callers hold
// flushMu.
func (l *Log) flushStaged() error {
	l.mu.Lock()
	chunk := l.pending
	l.pending = l.spare[:0]
	// Invariant: spare never aliases pending's backing array. chunk (the
	// old pending) is recycled into spare only at the end, after the write
	// is done with it; until then spare is cleared, so no path — including
	// the empty-chunk and oversized-buffer skips below — can leave a later
	// flush handing f.Write a buffer that concurrent Appends are growing.
	l.spare = nil
	f := l.f
	l.mu.Unlock()
	var err error
	if len(chunk) > 0 && f != nil {
		_, err = f.Write(chunk)
	}
	l.mu.Lock()
	if cap(chunk) <= 8<<20 {
		l.spare = chunk[:0]
	}
	l.mu.Unlock()
	return err
}

// Sync implements Store: write staged appends and fsync the segment.
func (l *Log) Sync() error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	if l.werr != nil {
		err := l.werr
		l.mu.Unlock()
		return err
	}
	staged := len(l.pending) > 0
	f := l.f
	l.mu.Unlock()
	if !staged || f == nil {
		return nil
	}
	if err := l.flushStaged(); err != nil {
		l.fail(err)
		return err
	}
	if err := f.Sync(); err != nil {
		l.fail(err)
		return err
	}
	l.mu.Lock()
	l.stats.Syncs++
	l.mu.Unlock()
	return nil
}

// Get implements Store. Staged-but-unflushed records are served too: the
// in-memory index is the read path, files are the durability.
func (l *Log) Get(seq types.SeqNum) (*BlockRecord, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec, ok := l.records[seq]
	return rec, ok
}

// Bounds implements Store.
func (l *Log) Bounds() (types.SeqNum, types.SeqNum) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.first, l.last
}

// SaveCheckpoint implements Store: write-through with atomic replace.
func (l *Log) SaveCheckpoint(cp Checkpoint) error {
	w := codec.GetWriter()
	appendCheckpoint(w, cp)
	err := writeAtomic(l.fs, filepath.Join(l.dir, "checkpoint"), ckptMagic, w.Buf)
	codec.PutWriter(w)
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.cp = &cp
	l.mu.Unlock()
	return nil
}

// Checkpoint implements Store.
func (l *Log) Checkpoint() (Checkpoint, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cp == nil {
		return Checkpoint{}, false
	}
	return *l.cp, true
}

// SaveMeta implements Store: write-through with atomic replace.
func (l *Log) SaveMeta(m Meta) error {
	w := codec.GetWriter()
	appendMeta(w, m)
	err := writeAtomic(l.fs, filepath.Join(l.dir, "meta"), metaMagic, w.Buf)
	codec.PutWriter(w)
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.meta = m
	l.mu.Unlock()
	return nil
}

// Meta implements Store.
func (l *Log) Meta() Meta {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.meta
}

// TruncateBelow implements Store: whole segments whose records all sit at
// or below seq are deleted (never the current segment), and the in-memory
// index drops the covered records.
func (l *Log) TruncateBelow(seq types.SeqNum) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.segs[:0]
	for i := range l.segs {
		s := l.segs[i]
		current := i == len(l.segs)-1
		if !current && s.last != 0 && s.last <= seq {
			for sn := s.first; sn <= s.last; sn++ {
				delete(l.records, sn)
			}
			l.fs.Remove(s.path)
			continue
		}
		kept = append(kept, s)
	}
	l.segs = kept
	l.votes = pruneVotes(l.votes, seq)
	l.notes = pruneNotes(l.notes, seq)
	// Recompute the lower bound from what survived (records in kept
	// segments below seq stay retained — they are still servable to
	// recovering peers).
	l.first = 0
	if len(l.records) == 0 {
		l.last = 0
	} else {
		for sn := range l.records {
			if l.first == 0 || sn < l.first {
				l.first = sn
			}
		}
	}
	return nil
}

// Reset implements Store: every segment is discarded and the log starts a
// fresh one, re-anchored so the next append must be seq+1. The caller has
// already durably saved the checkpoint that justifies abandoning the old
// records, so a crash between the save and this reset recovers correctly
// (replay from the anchor skips the stale records).
func (l *Log) Reset(seq types.SeqNum) error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	l.pending = l.pending[:0]
	old := l.segs
	l.segs = nil
	f := l.f
	l.f = nil
	l.records = make(map[types.SeqNum]*BlockRecord)
	l.first = 0
	l.last = seq
	// Vote-ahead and notarization records above the new anchor survive the
	// reset — the replica may have voted above the checkpoint it is jumping
	// to, and dropping those locks (or the certificates its view-change
	// messages must keep advertising) would reopen the amnesia window.
	// Their frames die with the old segments, so they are re-staged into
	// the fresh one.
	retained := append([]VoteRecord(nil), pruneVotes(l.votes, seq)...)
	retainedNotes := append([]NoteRecord(nil), pruneNotes(l.notes, seq)...)
	l.votes = l.votes[:0]
	l.notes = l.notes[:0]
	l.mu.Unlock()
	if f != nil {
		f.Close()
	}
	for _, s := range old {
		l.fs.Remove(s.path)
	}
	if err := l.roll(); err != nil {
		// Leave the log in a failed-but-safe state: Append and Sync return
		// the sticky error instead of panicking on a missing segment.
		l.fail(err)
		return err
	}
	if len(retained) > 0 || len(retainedNotes) > 0 {
		l.mu.Lock()
		seg := &l.segs[len(l.segs)-1]
		for _, v := range retained {
			frame := encodeVoteFrame(v)
			l.pending = append(l.pending, frame...)
			seg.bytes += int64(len(frame))
		}
		for _, nt := range retainedNotes {
			frame := encodeNoteFrame(nt)
			l.pending = append(l.pending, frame...)
			seg.bytes += int64(len(frame))
		}
		l.votes = append(l.votes, retained...)
		l.notes = append(l.notes, retainedNotes...)
		l.mu.Unlock()
		select {
		case l.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

// Stats implements Store.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Segments = int64(len(l.segs))
	for _, seg := range l.segs {
		s.LiveBytes += seg.bytes
	}
	s.Records = int64(len(l.records))
	s.Votes = int64(len(l.votes))
	s.Notes = int64(len(l.notes))
	return s
}

// Close implements Store: stop the syncer, final write + fsync.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.done)
	l.wg.Wait()
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	if l.f == nil {
		return nil // a failed Reset already closed the segment
	}
	if err := l.flushStaged(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	return l.f.Close()
}

// writeAtomic replaces path with magic || frame(payload) via a fsynced
// temporary file and rename, so the file is always either the old or the
// new complete record.
func writeAtomic(fs FS, path, magic string, payload []byte) error {
	tmp := path + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC)
	if err != nil {
		return err
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := f.Write([]byte(magic)); err == nil {
		if _, err2 := f.Write(hdr[:]); err2 != nil {
			err = err2
		} else if _, err3 := f.Write(payload); err3 != nil {
			err = err3
		}
	}
	if err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return err
	}
	return fs.Rename(tmp, path)
}

// readAtomic loads a file written by writeAtomic. A missing file returns
// (nil, nil); a damaged one returns an error.
func readAtomic(fs FS, path, magic string) ([]byte, error) {
	buf, err := fs.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(buf) < len(magic)+8 || string(buf[:len(magic)]) != magic {
		return nil, fmt.Errorf("storage: %s: bad header", filepath.Base(path))
	}
	body := buf[len(magic):]
	length := binary.BigEndian.Uint32(body[0:4])
	crc := binary.BigEndian.Uint32(body[4:8])
	if int(length) != len(body)-8 || crc32.ChecksumIEEE(body[8:]) != crc {
		return nil, fmt.Errorf("storage: %s: corrupt record", filepath.Base(path))
	}
	return body[8:], nil
}

func (l *Log) loadCheckpoint() error {
	payload, err := readAtomic(l.fs, filepath.Join(l.dir, "checkpoint"), ckptMagic)
	if err != nil || payload == nil {
		return err
	}
	cp, err := readCheckpoint(&codec.Reader{Buf: payload})
	if err != nil {
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	l.cp = &cp
	return nil
}

func (l *Log) loadMeta() error {
	payload, err := readAtomic(l.fs, filepath.Join(l.dir, "meta"), metaMagic)
	if err != nil || payload == nil {
		return err
	}
	m, err := readMeta(&codec.Reader{Buf: payload})
	if err != nil {
		return fmt.Errorf("storage: meta: %w", err)
	}
	l.meta = m
	return nil
}
