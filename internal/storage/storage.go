// Package storage provides the durability layer for a Leopard replica: a
// segmented, CRC-checked append-only write-ahead log of executed blocks,
// plus durable stable-checkpoint and replica-local metadata records.
//
// # What is persisted
//
// The unit of durability is the executed block: a BlockRecord carries the
// BFTblock, both agreement proofs (σ1 notarization over H(block), σ2
// confirmation over H(σ1)) and the full datablocks the block links — enough
// for a restarted replica to replay its executed prefix without the
// network, and enough for a peer to serve the record over the state-transfer
// protocol to a recovering replica that can verify it independently.
// Alongside the log, the latest stable checkpoint (sequence number, state
// hash, quorum proof — the paper's Alg. 4 certificate) is kept in its own
// atomically-replaced file: it is the anchor a recovering replica trusts
// when its own log no longer reaches back far enough, and the bound below
// which log segments are garbage.
//
// # Durability model
//
// Appends are group-committed: Append buffers the framed record and returns
// immediately; a background syncer flushes and fsyncs at most once per
// Options.FsyncInterval. The hot execute path therefore never waits on the
// disk (see BenchmarkWALAppend), at the cost of a bounded window — up to one
// interval of executed blocks — that a crash may lose. That window is safe
// by construction: everything in it was confirmed by a quorum, so the
// recovering replica fetches it back via state transfer exactly as it
// fetches blocks executed while it was down. Vote-ahead records are the
// exception: a vote is the replica's own unilateral commitment and is
// broadcast the moment AppendVote returns, so AppendVote flushes and fsyncs
// before returning (taking any staged block and note frames along in the
// same batch). Checkpoints and metadata are small and rare, and are always
// written through (write, fsync, rename).
//
// # Recovery semantics
//
// Open scans segments in order and stops at the first damaged frame —
// truncated tail, CRC mismatch, or torn mid-record write — truncating the
// log to the last complete record and discarding any later segments. The
// replica's durable state is the checkpoint anchor plus the contiguous run
// of records above it; FuzzWALReplay asserts the scan never panics and
// never fabricates a record from damage.
package storage

import (
	"fmt"

	"leopard/internal/codec"
	"leopard/internal/crypto"
	"leopard/internal/types"
)

// BlockRecord is one executed block as persisted in the WAL and shipped by
// the state-transfer protocol: the block, its two agreement proofs, and the
// linked datablocks in Content order.
type BlockRecord struct {
	Seq       types.SeqNum
	Block     *types.BFTblock
	Notarized crypto.Proof // σ1 over H(block)
	Confirmed crypto.Proof // σ2 over H(σ1)
	// Datablocks holds the full linked datablocks, aligned with
	// Block.Content (Datablocks[i] hashes to Content[i]).
	Datablocks []*types.Datablock
}

// WireSize returns the exact encoded size in bytes, matching
// AppendBlockRecord (codec.MarshalBFTblock spends 20 bytes on the header,
// unlike the approximate types.BFTblock.Size).
func (rec *BlockRecord) WireSize() int {
	s := 8 + 20 + 32*len(rec.Block.Content) + 4 + len(rec.Notarized.Sig) + 4 + len(rec.Confirmed.Sig)
	for _, db := range rec.Datablocks {
		s += db.Size()
	}
	return s
}

// AppendBlockRecord appends the canonical encoding of rec to w. The
// datablock count is implied by len(Block.Content), so a record has exactly
// one encoding.
func AppendBlockRecord(w *codec.Writer, rec *BlockRecord) {
	w.U64(uint64(rec.Seq))
	codec.MarshalBFTblock(w, rec.Block)
	w.Bytes(rec.Notarized.Sig)
	w.Bytes(rec.Confirmed.Sig)
	for _, db := range rec.Datablocks {
		codec.MarshalDatablockTo(w, db)
	}
}

// ReadBlockRecord decodes one BlockRecord from r in r's mode (borrow or
// copy), without a terminal trailing-bytes check — the record may be
// embedded in a larger frame. The datablock count is Block.Content's
// length, mirroring AppendBlockRecord.
func ReadBlockRecord(r *codec.Reader) (*BlockRecord, error) {
	rec := &BlockRecord{Seq: types.SeqNum(r.U64())}
	block, err := codec.UnmarshalBFTblock(r)
	if err != nil {
		return nil, err
	}
	rec.Block = block
	rec.Notarized = crypto.Proof{Sig: r.Bytes()}
	rec.Confirmed = crypto.Proof{Sig: r.Bytes()}
	if len(block.Content) > 0 {
		rec.Datablocks = make([]*types.Datablock, 0, len(block.Content))
	}
	for range block.Content {
		db, err := codec.UnmarshalDatablockFrom(r)
		if err != nil {
			return nil, err
		}
		rec.Datablocks = append(rec.Datablocks, db)
	}
	return rec, r.Err()
}

// VoteRecord persists one agreement vote cast above the executed frontier
// (vote-ahead logging). A replica that crashes between voting and executing
// would otherwise forget the vote and could sign different content for the
// same (view, seq) slot after restart; reloading these records at Start
// re-locks those slots and closes that amnesia window.
type VoteRecord struct {
	View   types.View
	Seq    types.SeqNum
	Round  uint8 // 1 = σ1 (over H(block)), 2 = σ2 (over H(σ1))
	Digest types.Hash
}

func appendVoteRecord(w *codec.Writer, v VoteRecord) {
	w.U64(uint64(v.View))
	w.U64(uint64(v.Seq))
	w.U8(v.Round)
	w.Hash(v.Digest)
}

func readVoteRecord(r *codec.Reader) (VoteRecord, error) {
	v := VoteRecord{
		View:  types.View(r.U64()),
		Seq:   types.SeqNum(r.U64()),
		Round: r.U8(),
	}
	v.Digest = r.Hash()
	return v, r.Finish()
}

// NoteRecord persists the notarization certificate a round-2 vote endorses:
// the notarized block and its σ1 proof. The redo plan's quorum-intersection
// argument assumes every view-change quorum contains an honest σ2 voter
// that still advertises the notarized block; a voter that crash-restarted
// would otherwise have lost it (the carried set is in-memory), letting a
// confirmed block be redone as a dummy. The certificate is therefore logged
// alongside the round-2 VoteRecord and reloaded into the carried set at
// Start.
type NoteRecord struct {
	Block     *types.BFTblock
	Notarized crypto.Proof // σ1 over H(block)
}

func appendNoteRecord(w *codec.Writer, nt NoteRecord) {
	codec.MarshalBFTblock(w, nt.Block)
	w.Bytes(nt.Notarized.Sig)
}

func readNoteRecord(r *codec.Reader) (NoteRecord, error) {
	block, err := codec.UnmarshalBFTblock(r)
	if err != nil {
		return NoteRecord{}, err
	}
	nt := NoteRecord{Block: block, Notarized: crypto.Proof{Sig: r.Bytes()}}
	return nt, r.Finish()
}

// Checkpoint is the durable stable-checkpoint record: the Alg. 4 quorum
// certificate anchoring recovery and log truncation.
type Checkpoint struct {
	Seq       types.SeqNum
	StateHash types.Hash
	Proof     crypto.Proof
}

func appendCheckpoint(w *codec.Writer, cp Checkpoint) {
	w.U64(uint64(cp.Seq))
	w.Hash(cp.StateHash)
	w.Bytes(cp.Proof.Sig)
}

func readCheckpoint(r *codec.Reader) (Checkpoint, error) {
	cp := Checkpoint{
		Seq:       types.SeqNum(r.U64()),
		StateHash: r.Hash(),
		Proof:     crypto.Proof{Sig: r.Bytes()},
	}
	return cp, r.Finish()
}

// Meta is small replica-local state that must survive restarts but is not
// part of the replicated log: the view the replica last entered, and a
// reserved ceiling for its datablock counter. The counter reservation keeps
// restarts from reusing a (generator, counter) pair — peers dedup
// datablocks by that pair, so a reuse would make every peer silently reject
// the restarted replica's fresh datablocks. The replica persists a reserve
// some slack above its live counter and resumes from the reserve, skipping
// at most the slack.
type Meta struct {
	View           types.View
	CounterReserve uint64
}

func appendMeta(w *codec.Writer, m Meta) {
	w.U64(uint64(m.View))
	w.U64(m.CounterReserve)
}

func readMeta(r *codec.Reader) (Meta, error) {
	m := Meta{View: types.View(r.U64()), CounterReserve: r.U64()}
	return m, r.Finish()
}

// Stats describes a store's shape and activity, for the metrics surface
// (leopard-node -status, experiment reports).
type Stats struct {
	// Segments is the number of live WAL segment files (1 for MemLog).
	Segments int64
	// LiveBytes is the total size of live segment files.
	LiveBytes int64
	// Records is the number of block records currently retained.
	Records int64
	// Appended counts records appended this session.
	Appended int64
	// Votes is the number of vote-ahead records currently retained.
	Votes int64
	// Notes is the number of notarization records currently retained.
	Notes int64
	// Loaded counts records recovered from disk at Open.
	Loaded int64
	// LoadedBytes is the byte volume of records recovered at Open.
	LoadedBytes int64
	// Syncs counts fsync batches issued.
	Syncs int64
	// TailTruncated reports whether Open discarded a damaged tail.
	TailTruncated bool
}

// Store is the durability interface a replica persists through. Two
// implementations exist: Log (file-backed WAL, real deployments) and MemLog
// (deterministic in-memory model for the simulator's crash-restart
// experiments). All methods are safe for use from the replica's single
// event loop; Log additionally synchronizes with its background syncer.
type Store interface {
	// Append durably logs one executed block. Records must be appended in
	// strictly increasing, contiguous Seq order above the checkpoint.
	Append(rec *BlockRecord) error
	// AppendVote durably logs one agreement vote above the executed
	// frontier (vote-ahead logging). Unlike Append, the record is flushed
	// and fsynced before AppendVote returns — the caller broadcasts the
	// vote immediately after, so the durable lock must already cover
	// anything a peer may count. Any staged block or note frames ride the
	// same fsync.
	AppendVote(v VoteRecord) error
	// Votes returns a copy of the retained vote-ahead records in append
	// order. Votes at or below the checkpoint anchor may be pruned.
	Votes() []VoteRecord
	// AppendNote logs the notarization certificate a round-2 vote
	// endorses. The frame is staged only: callers follow it with the
	// round-2 AppendVote, whose fsync covers both records (and whose
	// failure, via the sticky error, aborts the vote).
	AppendNote(nt NoteRecord) error
	// Notes returns a copy of the retained notarization records in append
	// order. Notes at or below the checkpoint anchor may be pruned.
	Notes() []NoteRecord
	// Err returns the store's sticky failure, if any: once the backing
	// medium has failed an async write or fsync, the store refuses further
	// appends and the replica must fail-stop its agreement participation.
	Err() error
	// Get returns the retained record at seq, if present.
	Get(seq types.SeqNum) (*BlockRecord, bool)
	// Bounds returns the lowest and highest retained record seq (0, 0 when
	// the log holds no records).
	Bounds() (first, last types.SeqNum)
	// SaveCheckpoint durably replaces the stable-checkpoint anchor.
	SaveCheckpoint(cp Checkpoint) error
	// Checkpoint returns the saved anchor, if any.
	Checkpoint() (Checkpoint, bool)
	// SaveMeta durably replaces the replica-local metadata.
	SaveMeta(m Meta) error
	// Meta returns the saved metadata (zero value when never saved).
	Meta() Meta
	// TruncateBelow garbage-collects records with seq <= the given bound
	// (the advanced low watermark). File-backed stores drop whole segments
	// only, so some records below the bound may be retained — and may still
	// be served to recovering peers.
	TruncateBelow(seq types.SeqNum) error
	// Reset drops every record and re-anchors the log at seq: the next
	// append must be seq+1. Used when the replica adopts a checkpoint it
	// cannot reach by replay (state-transfer jump) — everything logged
	// before the anchor is obsolete history below a stable checkpoint.
	Reset(seq types.SeqNum) error
	// Sync forces any buffered appends to durable storage.
	Sync() error
	// Stats returns the store's counters.
	Stats() Stats
	// Close releases resources after a final Sync.
	Close() error
}

// MemLog is a deterministic in-memory Store. It models a WAL whose every
// append is already fsync-complete — the simulator's crash-restart
// experiments hand the surviving MemLog to the restarted replica, and the
// WAL torture tests cover the lost-tail cases a real crash adds on top.
type MemLog struct {
	records map[types.SeqNum]*BlockRecord
	votes   []VoteRecord
	notes   []NoteRecord
	first   types.SeqNum
	last    types.SeqNum
	cp      *Checkpoint
	meta    Meta
	stats   Stats
}

// NewMemLog returns an empty in-memory store.
func NewMemLog() *MemLog {
	return &MemLog{records: make(map[types.SeqNum]*BlockRecord)}
}

var _ Store = (*MemLog)(nil)

// Append implements Store.
func (m *MemLog) Append(rec *BlockRecord) error {
	if m.last != 0 && rec.Seq != m.last+1 {
		return fmt.Errorf("storage: non-contiguous append %d after %d", rec.Seq, m.last)
	}
	m.records[rec.Seq] = rec
	if m.first == 0 {
		m.first = rec.Seq
	}
	m.last = rec.Seq
	m.stats.Appended++
	return nil
}

// AppendVote implements Store.
func (m *MemLog) AppendVote(v VoteRecord) error {
	m.votes = append(m.votes, v)
	return nil
}

// Votes implements Store. The slice is a copy: pruning reuses the internal
// backing array in place, so handing it out would alias the store.
func (m *MemLog) Votes() []VoteRecord {
	return append([]VoteRecord(nil), m.votes...)
}

// AppendNote implements Store.
func (m *MemLog) AppendNote(nt NoteRecord) error {
	m.notes = append(m.notes, nt)
	return nil
}

// Notes implements Store.
func (m *MemLog) Notes() []NoteRecord {
	return append([]NoteRecord(nil), m.notes...)
}

// Err implements Store: an in-memory log cannot fail.
func (m *MemLog) Err() error { return nil }

// Get implements Store.
func (m *MemLog) Get(seq types.SeqNum) (*BlockRecord, bool) {
	rec, ok := m.records[seq]
	return rec, ok
}

// Bounds implements Store.
func (m *MemLog) Bounds() (types.SeqNum, types.SeqNum) { return m.first, m.last }

// SaveCheckpoint implements Store.
func (m *MemLog) SaveCheckpoint(cp Checkpoint) error {
	m.cp = &cp
	return nil
}

// Checkpoint implements Store.
func (m *MemLog) Checkpoint() (Checkpoint, bool) {
	if m.cp == nil {
		return Checkpoint{}, false
	}
	return *m.cp, true
}

// SaveMeta implements Store.
func (m *MemLog) SaveMeta(meta Meta) error {
	m.meta = meta
	return nil
}

// Meta implements Store.
func (m *MemLog) Meta() Meta { return m.meta }

// TruncateBelow implements Store.
func (m *MemLog) TruncateBelow(seq types.SeqNum) error {
	for m.first != 0 && m.first <= seq && m.first <= m.last {
		delete(m.records, m.first)
		m.first++
	}
	if len(m.records) == 0 {
		m.first, m.last = 0, 0
	}
	m.votes = pruneVotes(m.votes, seq)
	m.notes = pruneNotes(m.notes, seq)
	return nil
}

// Reset implements Store. Vote-ahead and notarization records above the new
// anchor are retained: the replica may have voted above the checkpoint it is
// jumping to, and dropping those locks (or the certificates its view-change
// messages must keep advertising) would reopen the amnesia window.
func (m *MemLog) Reset(seq types.SeqNum) error {
	m.records = make(map[types.SeqNum]*BlockRecord)
	m.first = 0
	m.last = seq
	m.votes = pruneVotes(m.votes, seq)
	m.notes = pruneNotes(m.notes, seq)
	return nil
}

// pruneVotes drops vote records at or below seq, in place.
func pruneVotes(votes []VoteRecord, seq types.SeqNum) []VoteRecord {
	kept := votes[:0]
	for _, v := range votes {
		if v.Seq > seq {
			kept = append(kept, v)
		}
	}
	return kept
}

// pruneNotes drops notarization records at or below seq, in place.
func pruneNotes(notes []NoteRecord, seq types.SeqNum) []NoteRecord {
	kept := notes[:0]
	for _, nt := range notes {
		if nt.Block != nil && nt.Block.Seq > seq {
			kept = append(kept, nt)
		}
	}
	return kept
}

// Sync implements Store.
func (m *MemLog) Sync() error { return nil }

// Stats implements Store.
func (m *MemLog) Stats() Stats {
	s := m.stats
	s.Segments = 1
	s.Records = int64(len(m.records))
	s.Votes = int64(len(m.votes))
	s.Notes = int64(len(m.notes))
	return s
}

// Close implements Store.
func (m *MemLog) Close() error { return nil }
