package storage

import (
	"strings"
	"testing"

	"leopard/internal/crypto"
	"leopard/internal/types"
)

// tortureLog opens a small-segment, write-through log over the given FS in
// dir. SyncEachAppend makes every append's write+fsync synchronous, so the
// byte stream offsets FaultFS schedules against are deterministic.
func tortureLog(t *testing.T, dir string, fs FS) *Log {
	t.Helper()
	l, err := Open(dir, Options{SegmentBytes: 2048, SyncEachAppend: true, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestLiveDiskFaultTorture drives a live log through appends, vote frames,
// segment rolls and checkpoint saves while the injected FS tears writes and
// fails fsyncs at scheduled points, then restarts the replica's store and
// asserts the recovery invariants: the surviving log is a contiguous,
// verbatim prefix, the checkpoint anchor is intact, and appends continue
// from the survivor.
func TestLiveDiskFaultTorture(t *testing.T) {
	const preFault = 5 // records appended before the fault arms
	cases := []struct {
		name string
		// arm installs the fault after preFault records are durable.
		arm func(f *FaultFS)
		// wantStuck: the fault must latch the sticky error on the next append.
		wantStuck bool
		// minLast/maxLast bound the recovered frontier. A torn write loses
		// the in-flight frame; a failed fsync happens after the OS accepted
		// the write, so the frame may still be complete on "disk".
		minLast, maxLast types.SeqNum
	}{
		{
			name:      "torn write mid-frame",
			arm:       func(f *FaultFS) { f.TearWriteAt(f.BytesWritten() + 40) },
			wantStuck: true,
			minLast:   preFault, maxLast: preFault,
		},
		{
			name:      "failed fsync",
			arm:       func(f *FaultFS) { f.FailNextSyncs(1) },
			wantStuck: true,
			minLast:   preFault, maxLast: preFault + 1,
		},
		{
			name:      "torn write at frame boundary",
			arm:       func(f *FaultFS) { f.TearWriteAt(f.BytesWritten()) },
			wantStuck: true,
			minLast:   preFault, maxLast: preFault,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := NewFaultFS(OsFS{})
			l := tortureLog(t, dir, ffs)

			// testRecord is deterministic, so recovered records are verified
			// by rebuilding the expected record at each seq — a frame whose
			// write landed before its failed fsync may legitimately survive.
			appendOne := func(sn types.SeqNum) error {
				if err := l.Append(testRecord(sn, 1, 2, 48)); err != nil {
					return err
				}
				return l.AppendVote(VoteRecord{View: 1, Seq: sn + 1, Round: 1, Digest: types.Hash{byte(sn)}})
			}
			for sn := types.SeqNum(1); sn <= preFault; sn++ {
				if err := appendOne(sn); err != nil {
					t.Fatal(err)
				}
			}
			cp := Checkpoint{Seq: 2, StateHash: types.Hash{9}, Proof: crypto.Proof{Sig: []byte("cp")}}
			if err := l.SaveCheckpoint(cp); err != nil {
				t.Fatal(err)
			}

			tc.arm(ffs)
			err := appendOne(preFault + 1)
			if tc.wantStuck {
				if err == nil {
					t.Fatal("append through the armed fault succeeded")
				}
				// The error is sticky: the medium failed, so the store
				// refuses everything until restart even though the FS has
				// no further faults armed.
				if got := l.Err(); got == nil {
					t.Fatal("no sticky error after injected fault")
				}
				if err := l.Append(testRecord(preFault+2, 1, 2, 48)); err == nil {
					t.Fatal("append accepted on a failed store")
				}
				if err := l.AppendVote(VoteRecord{View: 1, Seq: 99, Round: 1}); err == nil {
					t.Fatal("vote append accepted on a failed store")
				}
			} else if err != nil {
				t.Fatal(err)
			}
			l.Close() // the final flush may fail too; recovery is the contract

			// Restart over the surviving files with a healthy FS.
			re := tortureLog(t, dir, OsFS{})
			defer re.Close()
			first, last := re.Bounds()
			if last < tc.minLast || last > tc.maxLast {
				t.Fatalf("recovered frontier %d outside [%d, %d]", last, tc.minLast, tc.maxLast)
			}
			if first == 0 || first > types.SeqNum(1) {
				t.Fatalf("recovered run starts at %d", first)
			}
			for sn := first; sn <= last; sn++ {
				got, ok := re.Get(sn)
				if !ok || !recordsEqual(testRecord(sn, 1, 2, 48), got) {
					t.Fatalf("record %d not recovered verbatim", sn)
				}
			}
			if got, ok := re.Checkpoint(); !ok || got.Seq != cp.Seq {
				t.Fatalf("checkpoint anchor lost: %+v ok=%v", got, ok)
			}
			// Recovered vote frames: every vote is above the anchor and was
			// actually appended (no fabrication from the damaged tail).
			for _, v := range re.Votes() {
				if v.Seq <= cp.Seq {
					t.Fatalf("vote at %d survived below the checkpoint anchor", v.Seq)
				}
				if v.View != 1 || v.Round != 1 {
					t.Fatalf("fabricated vote record: %+v", v)
				}
			}
			// The restarted log must accept the continuation.
			if err := re.Append(testRecord(last+1, 1, 2, 48)); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if re.Err() != nil {
				t.Fatalf("sticky error leaked into the restarted store: %v", re.Err())
			}
		})
	}
}

// TestLiveDiskFaultCheckpointSave: an fsync failure during the checkpoint's
// atomic replace must fail the save loudly and leave the previous anchor
// intact — never a half-written checkpoint file.
func TestLiveDiskFaultCheckpointSave(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OsFS{})
	l := tortureLog(t, dir, ffs)
	old := Checkpoint{Seq: 4, StateHash: types.Hash{1}, Proof: crypto.Proof{Sig: []byte("old")}}
	if err := l.SaveCheckpoint(old); err != nil {
		t.Fatal(err)
	}
	ffs.FailNextSyncs(1)
	if err := l.SaveCheckpoint(Checkpoint{Seq: 8, Proof: crypto.Proof{Sig: []byte("new")}}); err == nil {
		t.Fatal("checkpoint save through failed fsync succeeded")
	}
	l.Close()
	re := tortureLog(t, dir, OsFS{})
	defer re.Close()
	got, ok := re.Checkpoint()
	if !ok || got.Seq != old.Seq || string(got.Proof.Sig) != "old" {
		t.Fatalf("previous anchor not preserved: %+v ok=%v", got, ok)
	}
}

// TestBitFlipOnReplayTruncates: a single flipped bit in a segment read back
// at Open fails that frame's CRC; recovery truncates there and keeps the
// verbatim prefix, instead of admitting the corrupt record.
func TestBitFlipOnReplayTruncates(t *testing.T) {
	dir := t.TempDir()
	l := tortureLog(t, dir, OsFS{})
	var appended []*BlockRecord
	for sn := types.SeqNum(1); sn <= 4; sn++ {
		rec := testRecord(sn, 1, 2, 48)
		appended = append(appended, rec)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside the last record's frame. The segment is the only
	// file in the directory large enough to contain the offset.
	st := l.Stats()
	ffs := NewFaultFS(OsFS{})
	ffs.FlipBitOnRead(st.LiveBytes - 20)
	re := tortureLog(t, dir, ffs)
	defer re.Close()
	if ffs.FaultStats().BitFlips != 1 {
		t.Fatal("bit flip never delivered")
	}
	first, last := re.Bounds()
	if first != 1 || last != 3 {
		t.Fatalf("bounds (%d, %d) after bit flip, want (1, 3)", first, last)
	}
	if !re.Stats().TailTruncated {
		t.Fatal("corruption not reported as tail truncation")
	}
	for sn := types.SeqNum(1); sn <= 3; sn++ {
		got, ok := re.Get(sn)
		if !ok || !recordsEqual(appended[sn-1], got) {
			t.Fatalf("record %d not recovered verbatim", sn)
		}
	}
}

// TestWALVoteRecordLifecycle covers the vote-ahead records' durability arc:
// interleaved with block frames, recovered in order on reopen, pruned by
// checkpoint truncation, filtered against the anchor at scan, and re-staged
// across a Reset.
func TestWALVoteRecordLifecycle(t *testing.T) {
	dir := t.TempDir()
	l := tortureLog(t, dir, OsFS{})
	votes := []VoteRecord{
		{View: 2, Seq: 3, Round: 1, Digest: types.Hash{3}},
		{View: 2, Seq: 3, Round: 2, Digest: types.Hash{3, 3}},
		{View: 2, Seq: 7, Round: 1, Digest: types.Hash{7}},
		{View: 3, Seq: 9, Round: 1, Digest: types.Hash{9}},
	}
	for i, v := range votes {
		if err := l.AppendVote(v); err != nil {
			t.Fatal(err)
		}
		// Interleave block frames between votes.
		if err := l.Append(testRecord(types.SeqNum(i+1), 1, 1, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re := tortureLog(t, dir, OsFS{})
	got := re.Votes()
	if len(got) != len(votes) {
		t.Fatalf("recovered %d votes, want %d", len(got), len(votes))
	}
	for i := range votes {
		if got[i] != votes[i] {
			t.Fatalf("vote %d: got %+v want %+v", i, got[i], votes[i])
		}
	}

	// Truncation below an advanced watermark prunes covered votes.
	if err := re.SaveCheckpoint(Checkpoint{Seq: 3, Proof: crypto.Proof{Sig: []byte("p")}}); err != nil {
		t.Fatal(err)
	}
	if err := re.TruncateBelow(3); err != nil {
		t.Fatal(err)
	}
	for _, v := range re.Votes() {
		if v.Seq <= 3 {
			t.Fatalf("vote at %d survived truncation", v.Seq)
		}
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh scan filters votes at or below the saved anchor even though
	// their frames are still in the retained segments.
	re2 := tortureLog(t, dir, OsFS{})
	for _, v := range re2.Votes() {
		if v.Seq <= 3 {
			t.Fatalf("scan admitted vote at %d below the anchor", v.Seq)
		}
	}

	// Reset re-anchors the log; votes above the anchor are re-staged into
	// the fresh segment and survive the next restart.
	if err := re2.Reset(7); err != nil {
		t.Fatal(err)
	}
	want := []VoteRecord{{View: 3, Seq: 9, Round: 1, Digest: types.Hash{9}}}
	if g := re2.Votes(); len(g) != 1 || g[0] != want[0] {
		t.Fatalf("votes after reset: %+v, want %+v", g, want)
	}
	if err := re2.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := re2.Close(); err != nil {
		t.Fatal(err)
	}
	re3 := tortureLog(t, dir, OsFS{})
	defer re3.Close()
	if g := re3.Votes(); len(g) != 1 || g[0] != want[0] {
		t.Fatalf("re-staged vote lost across restart: %+v", g)
	}
}

// TestWALTornVoteFrame: a write torn inside a vote frame truncates the tail
// there — prior block records survive verbatim, and no partial vote is ever
// fabricated.
func TestWALTornVoteFrame(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OsFS{})
	l := tortureLog(t, dir, ffs)
	for sn := types.SeqNum(1); sn <= 3; sn++ {
		if err := l.Append(testRecord(sn, 1, 1, 16)); err != nil {
			t.Fatal(err)
		}
	}
	ffs.TearWriteAt(ffs.BytesWritten() + 10) // inside the next vote frame
	err := l.AppendVote(VoteRecord{View: 1, Seq: 5, Round: 2, Digest: types.Hash{5}})
	if err == nil {
		t.Fatal("torn vote append succeeded")
	}
	if !strings.Contains(err.Error(), "torn") {
		t.Fatalf("unexpected error: %v", err)
	}
	l.Close()

	re := tortureLog(t, dir, OsFS{})
	defer re.Close()
	if _, last := re.Bounds(); last != 3 {
		t.Fatalf("blocks lost with the torn vote: last=%d", last)
	}
	if vs := re.Votes(); len(vs) != 0 {
		t.Fatalf("partial vote frame fabricated a record: %+v", vs)
	}
	if !re.Stats().TailTruncated {
		t.Fatal("torn tail not reported")
	}
}
