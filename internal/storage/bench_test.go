package storage

import (
	"sort"
	"testing"
	"time"

	"leopard/internal/types"
)

// BenchmarkWALAppend measures the execute-path cost of persisting one
// executed block (~one datablock of 2000 128-byte requests, the paper's
// Table II sizing). The "batched" variant is the production configuration —
// Append stages in memory and the fsync batches off the hot path — and the
// p50/p99 metrics are the per-append latency block execution actually pays;
// "synceach" is the serialized baseline that writes and fsyncs inside every
// Append, showing what group commit avoids. MB/s for both is ultimately
// disk-bound at saturation (the stage budget backpressures); the point of
// batching is the caller-path latency, not peak disk throughput.
func BenchmarkWALAppend(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"batched", Options{SegmentBytes: 256 << 20}},
		{"synceach", Options{SegmentBytes: 256 << 20, SyncEachAppend: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			l, err := Open(b.TempDir(), mode.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			// One template, re-stamped per append: the benchmark measures
			// persistence, not request generation. The datablock pointers are
			// shared — Append never mutates records.
			tmpl := testRecord(1, 1, 2000, 128)
			b.SetBytes(int64(tmpl.WireSize()))
			lat := make([]time.Duration, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seq := types.SeqNum(i + 1)
				rec := &BlockRecord{
					Seq:        seq,
					Block:      &types.BFTblock{View: 1, Seq: seq, Content: tmpl.Block.Content},
					Notarized:  tmpl.Notarized,
					Confirmed:  tmpl.Confirmed,
					Datablocks: tmpl.Datablocks,
				}
				start := time.Now()
				if err := l.Append(rec); err != nil {
					b.Fatal(err)
				}
				lat[i] = time.Since(start)
			}
			b.StopTimer()
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			b.ReportMetric(float64(lat[len(lat)/2].Microseconds()), "p50-µs/append")
			b.ReportMetric(float64(lat[len(lat)*99/100].Microseconds()), "p99-µs/append")
		})
	}
}

// BenchmarkWALReplay measures Open over a log of 64 full-size records —
// the restart cost before state transfer takes over.
func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 16 << 20})
	if err != nil {
		b.Fatal(err)
	}
	var bytes int64
	for sn := types.SeqNum(1); sn <= 64; sn++ {
		rec := testRecord(sn, 1, 2000, 128)
		bytes += int64(rec.WireSize())
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re, err := Open(dir, Options{SegmentBytes: 16 << 20})
		if err != nil {
			b.Fatal(err)
		}
		if st := re.Stats(); st.Loaded != 64 {
			b.Fatalf("loaded %d", st.Loaded)
		}
		re.Close()
	}
}
