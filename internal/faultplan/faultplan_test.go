package faultplan

import (
	"testing"
	"time"

	"leopard/internal/leopard"
	"leopard/internal/types"
)

func id(ids ...int) []types.ReplicaID {
	out := make([]types.ReplicaID, len(ids))
	for i, v := range ids {
		out[i] = types.ReplicaID(v)
	}
	return out
}

// TestFilterWindows pins the filter semantics: partitions block only
// inside their [From, Until) window, one-way partitions block a single
// direction, and control-only loss spares bulk traffic.
func TestFilterWindows(t *testing.T) {
	plan := Plan{
		Name: "windows",
		Seed: 1,
		Partitions: []Partition{
			{From: 100 * time.Millisecond, Until: 200 * time.Millisecond, A: id(0), B: id(1)},
			{From: 300 * time.Millisecond, Until: 400 * time.Millisecond, A: id(2), B: id(3), OneWay: true},
		},
		Losses: []Loss{
			{From: 500 * time.Millisecond, Until: 600 * time.Millisecond, Prob: 1.0, ControlOnly: true},
		},
	}
	e := New(plan)
	vote := &leopard.VoteMsg{}
	bulk := &leopard.DatablockMsg{}

	if !e.Filter(50*time.Millisecond, 0, 1, vote) {
		t.Error("blocked before the partition window opened")
	}
	if e.Filter(150*time.Millisecond, 0, 1, vote) || e.Filter(150*time.Millisecond, 1, 0, vote) {
		t.Error("symmetric partition admitted a message inside its window")
	}
	if !e.Filter(200*time.Millisecond, 0, 1, vote) {
		t.Error("blocked at the window's exclusive end")
	}
	if e.Filter(350*time.Millisecond, 2, 3, vote) {
		t.Error("one-way partition admitted A->B")
	}
	if !e.Filter(350*time.Millisecond, 3, 2, vote) {
		t.Error("one-way partition blocked the reverse direction")
	}
	if e.Filter(550*time.Millisecond, 0, 2, vote) {
		t.Error("Prob=1 control loss admitted a vote")
	}
	if !e.Filter(550*time.Millisecond, 0, 2, bulk) {
		t.Error("control-only loss dropped a bulk datablock")
	}
}

// TestFilterDeterministic: two engines over the same plan admit and drop
// the identical message sequence — the property the whole chaos suite's
// byte-identical replay rests on.
func TestFilterDeterministic(t *testing.T) {
	plan := Plan{
		Name:   "coin",
		Seed:   7,
		Losses: []Loss{{From: 0, Until: time.Second, Prob: 0.5}},
	}
	decide := func() []bool {
		e := New(plan)
		var out []bool
		msg := &leopard.VoteMsg{}
		for i := 0; i < 500; i++ {
			now := time.Duration(i) * time.Millisecond
			out = append(out, e.Filter(now, types.ReplicaID(i%4), types.ReplicaID((i+1)%4), msg))
		}
		return out
	}
	a, b := decide(), decide()
	drops := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged between identically-seeded engines", i)
		}
		if !a[i] {
			drops++
		}
	}
	if drops == 0 || drops == len(a) {
		t.Fatalf("Prob=0.5 loss dropped %d of %d; RNG not engaged", drops, len(a))
	}
}

// TestPlanEndAndValidate covers the heal instant and replica-range
// validation the experiment layer relies on.
func TestPlanEndAndValidate(t *testing.T) {
	plan := Plan{
		Name:       "bounds",
		Partitions: []Partition{{From: 0, Until: 300 * time.Millisecond, A: id(0), B: id(1)}},
		Skews:      []Skew{{At: 700 * time.Millisecond, Replica: 2}},
		Crashes:    []Crash{{At: 100 * time.Millisecond, Replica: 3, RestartAt: 900 * time.Millisecond}},
	}
	if got := plan.End(); got != 900*time.Millisecond {
		t.Errorf("End() = %v, want 900ms (the restart point)", got)
	}
	if err := plan.Validate(4); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	if err := plan.Validate(3); err == nil {
		t.Error("plan referencing replica 3 validated against n=3")
	}
}

// TestScheduleExpandsWildcards: a wildcard delay installs (and later
// clears) every ordered link, and crash/restart land at their instants.
func TestScheduleExpandsWildcards(t *testing.T) {
	plan := Plan{
		Name:    "sched",
		Delays:  []Delay{{Start: 10 * time.Millisecond, Until: 20 * time.Millisecond, From: -1, To: 1, Extra: 5 * time.Millisecond}},
		Crashes: []Crash{{At: 30 * time.Millisecond, Replica: 2, RestartAt: 40 * time.Millisecond}},
	}
	type event struct {
		at   time.Duration
		what string
	}
	var fired []event
	var pending []func(time.Duration)
	var ats []time.Duration
	set := 0
	e := New(plan)
	e.Schedule(Hooks{
		N: 4,
		Schedule: func(at time.Duration, fn func(now time.Duration)) {
			pending = append(pending, fn)
			ats = append(ats, at)
		},
		Crash:   func(rid types.ReplicaID) { fired = append(fired, event{what: "crash"}) },
		Restart: func(rid types.ReplicaID) error { fired = append(fired, event{what: "restart"}); return nil },
		SetLinkDelay: func(from, to types.ReplicaID, extra, jitter time.Duration) {
			if to != 1 || from == to {
				t.Errorf("delay installed on unexpected link %d->%d", from, to)
			}
			if extra > 0 {
				set++
			} else {
				set--
			}
		},
		SetClockSkew: func(types.ReplicaID, time.Duration) {},
	})
	for i, fn := range pending {
		fn(ats[i])
	}
	if set != 0 {
		t.Errorf("delay install/clear imbalance: %d", set)
	}
	if len(fired) != 2 || fired[0].what != "crash" || fired[1].what != "restart" {
		t.Errorf("crash/restart sequence = %v", fired)
	}
	if len(e.Errs()) != 0 {
		t.Errorf("unexpected scheduled-op errors: %v", e.Errs())
	}
}
