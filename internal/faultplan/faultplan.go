// Package faultplan scripts deterministic fault schedules against the
// simulated cluster: timed network partitions (symmetric and asymmetric),
// per-link delay/jitter spikes, probabilistic control-lane message loss,
// per-replica clock skew, and crash/restart points. A Plan is pure data; an
// Engine turns it into a simnet message filter plus a set of scheduled
// calls, drawing every random decision from its own seeded RNG so two
// identically-seeded runs of the same plan are byte-identical.
//
// The engine composes with the existing simnet machinery rather than
// replacing it: partitions and loss act through the network's Filter hook,
// delay spikes and clock skew through SetLinkDelay/SetClockSkew, crashes
// and restarts through Crash and the harness's durable Restart. Invariant
// checkers observe traffic through the separate SetObserver tap, so a plan
// and a checker never fight over the filter slot.
package faultplan

import (
	"fmt"
	"math/rand"
	"time"

	"leopard/internal/transport"
	"leopard/internal/types"
)

// Partition blocks messages between two replica groups during [From, Until).
// Symmetric by default; OneWay blocks only A→B traffic (an asymmetric
// partition: B's messages still reach A), modeling e.g. a leader that can
// send but not hear.
type Partition struct {
	From  time.Duration
	Until time.Duration
	A, B  []types.ReplicaID
	// OneWay blocks only traffic from a replica in A to a replica in B.
	OneWay bool
}

// Loss drops each matching message with probability Prob during
// [From, Until). ControlOnly restricts the loss to control-lane traffic
// (votes, proposals, proofs), leaving bulk dissemination intact — the
// adversarial case for agreement latency.
type Loss struct {
	From        time.Duration
	Until       time.Duration
	Prob        float64
	ControlOnly bool
	// Replicas, when non-empty, restricts the loss to messages sent by
	// these replicas; empty means every sender.
	Replicas []types.ReplicaID
}

// Delay installs an extra one-way delay spike (plus up to Jitter of seeded
// random spread per message) on the From→To link during [Start, Until).
// Negative From or To is a wildcard for every replica.
type Delay struct {
	Start time.Duration
	Until time.Duration
	From  int // sender, -1 = all
	To    int // receiver, -1 = all
	Extra time.Duration
	// Jitter adds up to this much seeded random extra delay per message.
	Jitter time.Duration
}

// Skew offsets the clock replica Replica observes by Offset, from At
// onward (a later Skew entry for the same replica overwrites it; an entry
// with zero Offset heals the clock).
type Skew struct {
	At      time.Duration
	Replica types.ReplicaID
	Offset  time.Duration
}

// Crash kills Replica at At; a non-zero RestartAt revives it through the
// harness's durable restart path (rebuild over the surviving store).
type Crash struct {
	At        time.Duration
	Replica   types.ReplicaID
	RestartAt time.Duration
}

// Plan is one complete fault schedule. The zero plan injects nothing.
type Plan struct {
	Name string
	// Seed feeds the engine's RNG (probabilistic loss). Plans with equal
	// seeds and events replay byte-identically.
	Seed       int64
	Partitions []Partition
	Losses     []Loss
	Delays     []Delay
	Skews      []Skew
	Crashes    []Crash
}

// End returns the instant the schedule has fully healed: the latest window
// end, skew onset, or restart point. Bounded-liveness checks grant the
// cluster a grace period from here.
func (p *Plan) End() time.Duration {
	var end time.Duration
	bump := func(t time.Duration) {
		if t > end {
			end = t
		}
	}
	for _, w := range p.Partitions {
		bump(w.Until)
	}
	for _, w := range p.Losses {
		bump(w.Until)
	}
	for _, w := range p.Delays {
		bump(w.Until)
	}
	for _, s := range p.Skews {
		bump(s.At)
	}
	for _, c := range p.Crashes {
		bump(c.At)
		bump(c.RestartAt)
	}
	return end
}

// Validate checks every replica reference against cluster size n.
func (p *Plan) Validate(n int) error {
	check := func(id types.ReplicaID) error {
		if int(id) < 0 || int(id) >= n {
			return fmt.Errorf("faultplan %q: replica %d out of range [0, %d)", p.Name, id, n)
		}
		return nil
	}
	for _, w := range p.Partitions {
		for _, id := range append(append([]types.ReplicaID(nil), w.A...), w.B...) {
			if err := check(id); err != nil {
				return err
			}
		}
	}
	for _, w := range p.Losses {
		for _, id := range w.Replicas {
			if err := check(id); err != nil {
				return err
			}
		}
	}
	for _, d := range p.Delays {
		if d.From >= n || d.To >= n {
			return fmt.Errorf("faultplan %q: delay endpoint out of range [0, %d)", p.Name, n)
		}
	}
	for _, s := range p.Skews {
		if err := check(s.Replica); err != nil {
			return err
		}
	}
	for _, c := range p.Crashes {
		if err := check(c.Replica); err != nil {
			return err
		}
	}
	return nil
}

// Hooks is the cluster surface the engine schedules against. Schedule is
// the simulator's ScheduleCall; Crash/Restart/SetLinkDelay/SetClockSkew
// map to the simnet and harness operations of the same names. N is the
// cluster size (expands wildcard delay endpoints).
type Hooks struct {
	N            int
	Schedule     func(at time.Duration, fn func(now time.Duration))
	Crash        func(id types.ReplicaID)
	Restart      func(id types.ReplicaID) error
	SetLinkDelay func(from, to types.ReplicaID, extra, jitter time.Duration)
	SetClockSkew func(id types.ReplicaID, off time.Duration)
}

// Engine executes one plan: its Filter implements the windowed faults
// (partitions, probabilistic loss) and Schedule registers the timed events
// (delay spikes, skews, crashes/restarts).
type Engine struct {
	plan Plan
	rng  *rand.Rand
	errs []error
}

// New builds an engine over the plan with a fresh RNG seeded from it.
func New(p Plan) *Engine {
	return &Engine{plan: p, rng: rand.New(rand.NewSource(p.Seed))}
}

// Plan returns the engine's schedule.
func (e *Engine) Plan() Plan { return e.plan }

// Errs returns errors from scheduled operations (e.g. a failed restart).
func (e *Engine) Errs() []error { return e.errs }

func member(ids []types.ReplicaID, id types.ReplicaID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// Filter is a simnet.Filter implementing the plan's partitions and message
// loss; true admits the message. Loss draws from the engine's seeded RNG
// only for messages inside an active window, so the random stream — and
// therefore the whole run — is a deterministic function of the plan.
func (e *Engine) Filter(now time.Duration, from, to types.ReplicaID, msg transport.Message) bool {
	for _, w := range e.plan.Partitions {
		if now < w.From || now >= w.Until {
			continue
		}
		if member(w.A, from) && member(w.B, to) {
			return false
		}
		if !w.OneWay && member(w.B, from) && member(w.A, to) {
			return false
		}
	}
	for _, w := range e.plan.Losses {
		if now < w.From || now >= w.Until {
			continue
		}
		if w.ControlOnly && transport.IsBulk(msg) {
			continue
		}
		if len(w.Replicas) > 0 && !member(w.Replicas, from) {
			continue
		}
		if e.rng.Float64() < w.Prob {
			return false
		}
	}
	return true
}

// Schedule registers the plan's timed events through the hooks. Call once,
// before the run starts.
func (e *Engine) Schedule(h Hooks) {
	for _, d := range e.plan.Delays {
		d := d
		eachLink := func(fn func(from, to types.ReplicaID)) {
			for from := 0; from < h.N; from++ {
				if d.From >= 0 && from != d.From {
					continue
				}
				for to := 0; to < h.N; to++ {
					if to == from || (d.To >= 0 && to != d.To) {
						continue
					}
					fn(types.ReplicaID(from), types.ReplicaID(to))
				}
			}
		}
		h.Schedule(d.Start, func(time.Duration) {
			eachLink(func(from, to types.ReplicaID) { h.SetLinkDelay(from, to, d.Extra, d.Jitter) })
		})
		h.Schedule(d.Until, func(time.Duration) {
			eachLink(func(from, to types.ReplicaID) { h.SetLinkDelay(from, to, 0, 0) })
		})
	}
	for _, s := range e.plan.Skews {
		s := s
		h.Schedule(s.At, func(time.Duration) { h.SetClockSkew(s.Replica, s.Offset) })
	}
	for _, c := range e.plan.Crashes {
		c := c
		h.Schedule(c.At, func(time.Duration) { h.Crash(c.Replica) })
		if c.RestartAt > 0 {
			h.Schedule(c.RestartAt, func(time.Duration) {
				if err := h.Restart(c.Replica); err != nil {
					e.errs = append(e.errs, fmt.Errorf("faultplan %q: restart %d: %w", e.plan.Name, c.Replica, err))
				}
			})
		}
	}
}
