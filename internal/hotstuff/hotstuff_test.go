package hotstuff_test

import (
	"testing"
	"time"

	"leopard/internal/crypto"
	"leopard/internal/harness"
	"leopard/internal/hotstuff"
	"leopard/internal/protocol"
	"leopard/internal/simnet"
	"leopard/internal/types"
)

func buildCluster(t *testing.T, n int, mutate func(*hotstuff.Config)) *harness.Cluster {
	t.Helper()
	q, err := types.NewQuorumParams(n)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := crypto.NewEd25519Suite(n, []byte("hs-test-seed"))
	if err != nil {
		t.Fatal(err)
	}
	netCfg := simnet.DefaultConfig()
	netCfg.TickInterval = 2 * time.Millisecond
	cluster, err := harness.NewCluster(harness.Options{
		N:               n,
		Net:             netCfg,
		PayloadSize:     128,
		SaturationDepth: 400,
		SubmitToLeader:  true,
		Build: func(id types.ReplicaID) (protocol.Replica, error) {
			cfg := hotstuff.Config{ID: id, Quorum: q, Suite: suite, BatchSize: 100}
			if mutate != nil {
				mutate(&cfg)
			}
			return hotstuff.NewNode(cfg)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cluster
}

func TestHotStuffCommitsRequests(t *testing.T) {
	cluster := buildCluster(t, 4, nil)
	cluster.Start()
	res := cluster.MeasureFor(2 * time.Second)
	if res.Confirmed == 0 {
		t.Fatalf("no requests committed in %v", res.Elapsed)
	}
	t.Logf("n=4 committed=%d throughput=%.0f req/s meanLat=%v", res.Confirmed, res.Throughput, res.MeanLat)
}

func TestHotStuffAllReplicasAgree(t *testing.T) {
	const n = 7
	counts := make([]int64, n)
	q, _ := types.NewQuorumParams(n)
	suite, err := crypto.NewEd25519Suite(n, []byte("hs-agree"))
	if err != nil {
		t.Fatal(err)
	}
	netCfg := simnet.DefaultConfig()
	cluster, err := harness.NewCluster(harness.Options{
		N:               n,
		Net:             netCfg,
		SaturationDepth: 300,
		SubmitToLeader:  true,
		Build: func(id types.ReplicaID) (protocol.Replica, error) {
			node, err := hotstuff.NewNode(hotstuff.Config{ID: id, Quorum: q, Suite: suite, BatchSize: 50})
			if err != nil {
				return nil, err
			}
			return node, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cluster.Replicas {
		id := i
		inner := cluster.Replicas[i].(*hotstuff.Node)
		_ = inner
		cluster.Replicas[i].SetExecutor(func(sn types.SeqNum, reqs []types.Request) {
			counts[id] += int64(len(reqs))
		})
	}
	cluster.Start()
	cluster.MeasureFor(1500 * time.Millisecond)
	if counts[0] == 0 {
		t.Fatal("leader committed nothing")
	}
	// All replicas commit the same requests modulo pipeline lag: require
	// every replica to be within one batch round of the max.
	var max int64
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	for i, c := range counts {
		if max-c > 3*50 {
			t.Errorf("replica %d lags: committed %d of %d", i, c, max)
		}
	}
}
