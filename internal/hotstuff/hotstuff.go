// Package hotstuff implements a chained (pipelined) HotStuff baseline (Yin
// et al., PODC'19), the comparison system in the Leopard paper's
// evaluation. The leader batches full client requests into each proposal —
// the classic leader-dissemination design whose O(n) leader cost the paper
// identifies as the scalability bottleneck.
//
// The implementation follows the chained algorithm: each proposal carries a
// quorum certificate (QC) for its parent; a block commits when it heads a
// three-chain of consecutive heights. Votes are threshold-signature shares
// combined by the leader, and a simple pacemaker rotates leaders on
// timeout.
package hotstuff

import (
	"encoding/binary"
	"errors"
	"sort"
	"time"

	"leopard/internal/crypto"
	"leopard/internal/mempool"
	"leopard/internal/protocol"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// Default parameters; the batch size follows the paper's Table II.
const (
	DefaultBatchSize       = 800
	DefaultBatchTimeout    = 10 * time.Millisecond
	DefaultViewChangeAfter = 2 * time.Second
)

// Config parameterizes a HotStuff replica.
type Config struct {
	ID     types.ReplicaID
	Quorum types.QuorumParams
	Suite  crypto.Suite
	// BatchSize is the number of requests per proposal.
	BatchSize int
	// BatchTimeout bounds how long a partial batch waits.
	BatchTimeout time.Duration
	// ViewChangeTimeout is the pacemaker's stall threshold.
	ViewChangeTimeout time.Duration
}

// Validate checks cfg and fills defaults.
func (c *Config) Validate() error {
	if !c.Quorum.Valid() {
		return errors.New("hotstuff: invalid quorum parameters")
	}
	if int(c.ID) >= c.Quorum.N {
		return errors.New("hotstuff: replica id out of range")
	}
	if c.Suite == nil {
		return errors.New("hotstuff: missing crypto suite")
	}
	if c.BatchSize <= 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.BatchTimeout <= 0 {
		c.BatchTimeout = DefaultBatchTimeout
	}
	if c.ViewChangeTimeout <= 0 {
		c.ViewChangeTimeout = DefaultViewChangeAfter
	}
	return nil
}

// Block is one chained-HotStuff proposal.
type Block struct {
	Height   uint64
	Parent   types.Hash
	Justify  QC // certificate for the parent
	Proposer types.ReplicaID
	Requests []types.Request
}

// Digest hashes the block's identity-bearing fields.
func (b *Block) Digest() types.Hash {
	var buf []byte
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], b.Height)
	buf = append(buf, tmp[:]...)
	buf = append(buf, b.Parent[:]...)
	buf = append(buf, b.Justify.BlockHash[:]...)
	binary.BigEndian.PutUint32(tmp[:4], uint32(b.Proposer))
	buf = append(buf, tmp[:4]...)
	for _, r := range b.Requests {
		h := crypto.HashRequest(r)
		buf = append(buf, h[:]...)
	}
	return crypto.HashBytes(buf)
}

// Size returns the wire size of the block.
func (b *Block) Size() int {
	s := 8 + 32 + 4 + b.Justify.Size()
	for _, r := range b.Requests {
		s += r.Size()
	}
	return s
}

// QC is a quorum certificate: a combined threshold signature over a block
// digest at a height.
type QC struct {
	BlockHash types.Hash
	Height    uint64
	Proof     crypto.Proof
}

// Size returns the certificate's wire size.
func (q QC) Size() int { return 32 + 8 + len(q.Proof.Sig) }

// ProposalMsg carries a proposal from the leader.
type ProposalMsg struct {
	Block  *Block
	View   types.View
	Digest types.Hash // cached H(Block); recomputed unless TrustDigests
}

var _ transport.Message = (*ProposalMsg)(nil)

// WireSize implements transport.Message.
func (m *ProposalMsg) WireSize() int { return 16 + m.Block.Size() }

// Class implements transport.Message.
func (m *ProposalMsg) Class() transport.Class { return transport.ClassBFTblock }

// CarriesPayload implements transport.PayloadCarrier: HotStuff proposals
// embed the full request batch, so they occupy the processing stage.
func (m *ProposalMsg) CarriesPayload() bool { return true }

// VoteMsg is a replica's threshold share on a block digest.
type VoteMsg struct {
	BlockHash types.Hash
	Height    uint64
	Share     crypto.Share
}

var _ transport.Message = (*VoteMsg)(nil)

// WireSize implements transport.Message.
func (m *VoteMsg) WireSize() int { return 8 + 32 + 8 + len(m.Share.Sig) }

// Class implements transport.Message.
func (m *VoteMsg) Class() transport.Class { return transport.ClassVote }

// TimeoutMsg is a pacemaker timeout vote for a view.
type TimeoutMsg struct {
	View   types.View
	HighQC QC
	Share  crypto.Share
}

var _ transport.Message = (*TimeoutMsg)(nil)

// WireSize implements transport.Message.
func (m *TimeoutMsg) WireSize() int { return 8 + 8 + m.HighQC.Size() + len(m.Share.Sig) }

// Class implements transport.Message.
func (m *TimeoutMsg) Class() transport.Class { return transport.ClassViewChange }

// NewViewMsg announces a view change completion from the new leader.
type NewViewMsg struct {
	View   types.View
	HighQC QC
	Share  crypto.Share
}

var _ transport.Message = (*NewViewMsg)(nil)

// WireSize implements transport.Message.
func (m *NewViewMsg) WireSize() int { return 8 + 8 + m.HighQC.Size() + len(m.Share.Sig) }

// Class implements transport.Message.
func (m *NewViewMsg) Class() transport.Class { return transport.ClassViewChange }

func timeoutDigest(v types.View) types.Hash {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(v))
	return crypto.HashConcat([]byte("hotstuff/timeout"), buf[:])
}

func newViewDigest(v types.View, qc QC) types.Hash {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(v))
	return crypto.HashConcat([]byte("hotstuff/newview"), buf[:], qc.BlockHash[:])
}

// Stats are the per-node counters the experiments read.
type Stats struct {
	CommittedBlocks   int64
	CommittedRequests int64
	ViewChanges       int64
}

// Node is a chained-HotStuff replica.
type Node struct {
	cfg   Config
	suite crypto.Suite
	q     types.QuorumParams
	now   time.Duration

	reqPool *mempool.RequestPool
	execFn  protocol.ExecuteFunc

	view    types.View
	blocks  map[types.Hash]*Block
	digests map[types.Hash]types.Hash // identity map kept for clarity

	highQC   QC
	lockedQC QC
	lastVote uint64 // highest height voted

	// Leader vote collection per block digest.
	votes     map[types.Hash][]crypto.Share
	votesSeen map[types.Hash]map[types.ReplicaID]struct{}

	execHeight   uint64
	committed    map[types.Hash]struct{}
	lastProgress time.Duration
	lastPropose  time.Duration
	pendingQC    bool // leader: a proposal is outstanding without a QC yet

	timeoutVotes map[types.View]map[types.ReplicaID]struct{}
	sentTimeout  map[types.View]bool

	genesis types.Hash

	stats Stats

	// TrustDigests mirrors the Leopard option: skip recomputing proposal
	// digests in simulations.
	TrustDigests bool
	// SkipRequestDedup disables confirmed-request bookkeeping, as in
	// leopard.Config.SkipRequestDedup.
	SkipRequestDedup bool
}

var (
	_ transport.Node   = (*Node)(nil)
	_ protocol.Replica = (*Node)(nil)
)

// NewNode builds a HotStuff replica.
func NewNode(cfg Config) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Node{
		cfg:          cfg,
		suite:        cfg.Suite,
		q:            cfg.Quorum,
		reqPool:      mempool.NewRequestPool(),
		view:         1,
		blocks:       make(map[types.Hash]*Block),
		digests:      make(map[types.Hash]types.Hash),
		votes:        make(map[types.Hash][]crypto.Share),
		votesSeen:    make(map[types.Hash]map[types.ReplicaID]struct{}),
		committed:    make(map[types.Hash]struct{}),
		timeoutVotes: make(map[types.View]map[types.ReplicaID]struct{}),
		sentTimeout:  make(map[types.View]bool),
		genesis:      crypto.HashBytes([]byte("hotstuff/genesis")),
	}
	// Install the genesis block at height 0 so the first proposal has a
	// parent and justify target.
	n.blocks[n.genesis] = &Block{Height: 0}
	n.highQC = QC{BlockHash: n.genesis, Height: 0}
	n.lockedQC = n.highQC
	return n, nil
}

// ID implements transport.Node.
func (n *Node) ID() types.ReplicaID { return n.cfg.ID }

// Leader implements protocol.Replica.
func (n *Node) Leader() types.ReplicaID { return types.LeaderOf(n.view, n.q.N) }

func (n *Node) isLeader() bool { return n.Leader() == n.cfg.ID }

// SetExecutor implements protocol.Replica.
func (n *Node) SetExecutor(fn protocol.ExecuteFunc) { n.execFn = fn }

// PendingRequests implements protocol.Replica.
func (n *Node) PendingRequests() int { return n.reqPool.Len() }

// SubmitRequest implements protocol.Replica.
func (n *Node) SubmitRequest(now time.Duration, req types.Request) bool {
	n.observe(now)
	return n.reqPool.Add(req, now)
}

// Stats returns the node's counters.
func (n *Node) Stats() Stats { return n.stats }

// View returns the current pacemaker view.
func (n *Node) View() types.View { return n.view }

func (n *Node) observe(now time.Duration) {
	if now > n.now {
		n.now = now
	}
}

// Start implements transport.Node.
func (n *Node) Start(now time.Duration, out transport.Sink) {
	n.observe(now)
	n.lastProgress = now
}

// Tick implements transport.Node.
func (n *Node) Tick(now time.Duration, out transport.Sink) {
	n.observe(now)
	if n.isLeader() {
		n.maybePropose(out)
	}
	if n.reqPool.Len() > 0 && now-n.lastProgress >= n.cfg.ViewChangeTimeout {
		n.voteTimeout(n.view, out)
	}
}

// Deliver implements transport.Node.
func (n *Node) Deliver(now time.Duration, from types.ReplicaID, msg transport.Message, out transport.Sink) {
	n.observe(now)
	switch m := msg.(type) {
	case *ProposalMsg:
		n.handleProposal(from, m, out)
	case *VoteMsg:
		n.handleVote(from, m, out)
	case *TimeoutMsg:
		n.handleTimeout(from, m, out)
	case *NewViewMsg:
		n.handleNewView(from, m, out)
	}
}

// maybePropose extends the chain from highQC once the previous proposal is
// certified (the chained pipeline: one proposal per QC round).
func (n *Node) maybePropose(out transport.Sink) {
	if n.pendingQC {
		return
	}
	full := n.reqPool.Len() >= n.cfg.BatchSize
	stale := n.now-n.lastPropose >= n.cfg.BatchTimeout
	if !full && !stale {
		return
	}
	// An empty proposal still advances the chain so earlier blocks can
	// commit via the three-chain rule, but only propose empties while
	// there is something uncommitted.
	reqs, _ := n.reqPool.Extract(n.cfg.BatchSize)
	if len(reqs) == 0 && n.highQC.Height <= n.execHeight {
		return
	}
	parent := n.highQC.BlockHash
	parentBlock := n.blocks[parent]
	if parentBlock == nil {
		return
	}
	block := &Block{
		Height:   parentBlock.Height + 1,
		Parent:   parent,
		Justify:  n.highQC,
		Proposer: n.cfg.ID,
		Requests: reqs,
	}
	digest := block.Digest()
	n.blocks[digest] = block
	n.pendingQC = true
	n.lastPropose = n.now
	out.Broadcast(&ProposalMsg{Block: block, View: n.view, Digest: digest})
	// The leader votes for its own proposal.
	n.castVote(block, digest, out)
}

// safeToVote implements the HotStuff voting rule: the block must extend the
// locked block, or carry a justify higher than the lock.
func (n *Node) safeToVote(b *Block) bool {
	if b.Height <= n.lastVote {
		return false
	}
	if b.Justify.Height > n.lockedQC.Height {
		return true
	}
	// Walk up from b to see whether it extends the locked block.
	cur := b
	for cur != nil && cur.Height > n.lockedQC.Height {
		if cur.Parent == n.lockedQC.BlockHash {
			return true
		}
		cur = n.blocks[cur.Parent]
	}
	return n.lockedQC.BlockHash == n.genesis
}

// handleProposal validates a proposal, applies its justify QC, and votes.
func (n *Node) handleProposal(from types.ReplicaID, m *ProposalMsg, out transport.Sink) {
	if m.Block == nil || from != n.Leader() || m.View != n.view {
		return
	}
	b := m.Block
	digest := m.Digest
	if !n.TrustDigests || digest.IsZero() {
		digest = b.Digest()
	}
	if _, dup := n.blocks[digest]; dup {
		return
	}
	// Verify and apply the embedded certificate (this is also how the
	// previous proposal's votes take effect — the pipelining).
	if b.Justify.BlockHash != n.genesis {
		if err := n.suite.VerifyProof(b.Justify.BlockHash, b.Justify.Proof); err != nil {
			return
		}
	}
	n.blocks[digest] = b
	n.applyQC(b.Justify, out)
	if !n.safeToVote(b) {
		return
	}
	n.castVote(b, digest, out)
}

// castVote signs the digest and sends the share to the current leader.
func (n *Node) castVote(b *Block, digest types.Hash, out transport.Sink) {
	share, err := n.suite.Sign(n.cfg.ID, digest)
	if err != nil {
		return
	}
	n.lastVote = b.Height
	vote := &VoteMsg{BlockHash: digest, Height: b.Height, Share: share}
	if n.isLeader() {
		n.collectVote(n.cfg.ID, vote, out)
		return
	}
	out.Send(transport.Unicast(n.Leader(), vote))
}

// handleVote collects shares into a QC at the leader.
func (n *Node) handleVote(from types.ReplicaID, m *VoteMsg, out transport.Sink) {
	if !n.isLeader() {
		return
	}
	n.collectVote(from, m, out)
}

func (n *Node) collectVote(from types.ReplicaID, m *VoteMsg, out transport.Sink) {
	if _, known := n.blocks[m.BlockHash]; !known {
		return
	}
	seen := n.votesSeen[m.BlockHash]
	if seen == nil {
		seen = make(map[types.ReplicaID]struct{}, n.q.Quorum())
		n.votesSeen[m.BlockHash] = seen
	}
	if _, dup := seen[from]; dup {
		return
	}
	if err := n.suite.VerifyShare(m.BlockHash, m.Share); err != nil || m.Share.Signer != from {
		return
	}
	seen[from] = struct{}{}
	n.votes[m.BlockHash] = append(n.votes[m.BlockHash], m.Share)
	if len(n.votes[m.BlockHash]) < n.q.Quorum() {
		return
	}
	proof, err := n.suite.Combine(m.BlockHash, n.votes[m.BlockHash])
	if err != nil {
		return
	}
	delete(n.votes, m.BlockHash)
	delete(n.votesSeen, m.BlockHash)
	qc := QC{BlockHash: m.BlockHash, Height: m.Height, Proof: proof}
	n.pendingQC = false
	n.applyQC(qc, out)
	// Pipelining: the QC ships inside the next proposal rather than as a
	// separate broadcast; propose immediately if a batch is ready.
	n.maybePropose(out)
}

// applyQC advances highQC/lock and runs the three-chain commit rule.
func (n *Node) applyQC(qc QC, out transport.Sink) {
	if qc.Height > n.highQC.Height {
		n.highQC = qc
	}
	b := n.blocks[qc.BlockHash]
	if b == nil {
		return
	}
	// Two-chain: lock the parent of the newly certified block.
	parent := n.blocks[b.Parent]
	if parent != nil && b.Justify.Height > n.lockedQC.Height {
		n.lockedQC = b.Justify
	}
	// Three-chain commit: b_grandparent commits when b is certified and
	// heights are consecutive.
	if parent == nil {
		return
	}
	gp := n.blocks[parent.Parent]
	if gp == nil {
		return
	}
	if b.Height == parent.Height+1 && parent.Height == gp.Height+1 {
		n.commitUpTo(gp, out)
	}
}

// commitUpTo executes the chain up to and including b, oldest first.
func (n *Node) commitUpTo(b *Block, out transport.Sink) {
	if b.Height <= n.execHeight {
		return
	}
	var chain []*Block
	cur := b
	for cur != nil && cur.Height > n.execHeight {
		chain = append(chain, cur)
		cur = n.blocks[cur.Parent]
	}
	sort.Slice(chain, func(i, j int) bool { return chain[i].Height < chain[j].Height })
	for _, blk := range chain {
		// The chain walk only collects heights above execHeight, so each
		// block executes exactly once.
		if n.execFn != nil && len(blk.Requests) > 0 {
			n.execFn(types.SeqNum(blk.Height), blk.Requests)
		}
		if !n.SkipRequestDedup {
			for _, r := range blk.Requests {
				n.reqPool.MarkConfirmed(r.ID())
			}
		}
		n.stats.CommittedBlocks++
		n.stats.CommittedRequests += int64(len(blk.Requests))
	}
	n.execHeight = b.Height
	n.lastProgress = n.now
}

// voteTimeout broadcasts a pacemaker timeout for view v.
func (n *Node) voteTimeout(v types.View, out transport.Sink) {
	if n.sentTimeout[v] || v < n.view {
		return
	}
	share, err := n.suite.Sign(n.cfg.ID, timeoutDigest(v))
	if err != nil {
		return
	}
	n.sentTimeout[v] = true
	n.recordTimeout(v, n.cfg.ID)
	out.Broadcast(&TimeoutMsg{View: v, HighQC: n.highQC, Share: share})
}

func (n *Node) recordTimeout(v types.View, from types.ReplicaID) {
	votes := n.timeoutVotes[v]
	if votes == nil {
		votes = make(map[types.ReplicaID]struct{}, n.q.Quorum())
		n.timeoutVotes[v] = votes
	}
	votes[from] = struct{}{}
}

// handleTimeout counts timeout votes; 2f+1 move the pacemaker to v+1.
func (n *Node) handleTimeout(from types.ReplicaID, m *TimeoutMsg, out transport.Sink) {
	if m.View < n.view {
		return
	}
	if err := n.suite.VerifyShare(timeoutDigest(m.View), m.Share); err != nil || m.Share.Signer != from {
		return
	}
	n.recordTimeout(m.View, from)
	if m.HighQC.Height > n.highQC.Height {
		if n.blocks[m.HighQC.BlockHash] != nil &&
			n.suite.VerifyProof(m.HighQC.BlockHash, m.HighQC.Proof) == nil {
			n.highQC = m.HighQC
		}
	}
	if len(n.timeoutVotes[m.View]) >= n.q.Small() && !n.sentTimeout[m.View] {
		n.voteTimeout(m.View, out)
	}
	if len(n.timeoutVotes[m.View]) >= n.q.Quorum() {
		n.advanceView(m.View+1, out)
	}
}

// advanceView installs view v; the new leader announces itself.
func (n *Node) advanceView(v types.View, out transport.Sink) {
	if v <= n.view {
		return
	}
	n.view = v
	n.stats.ViewChanges++
	n.lastProgress = n.now
	n.pendingQC = false
	if n.isLeader() {
		share, err := n.suite.Sign(n.cfg.ID, newViewDigest(v, n.highQC))
		if err == nil {
			out.Broadcast(&NewViewMsg{View: v, HighQC: n.highQC, Share: share})
		}
		n.maybePropose(out)
	}
}

// handleNewView accepts the new leader's announcement.
func (n *Node) handleNewView(from types.ReplicaID, m *NewViewMsg, out transport.Sink) {
	if m.View <= n.view || types.LeaderOf(m.View, n.q.N) != from {
		return
	}
	if err := n.suite.VerifyShare(newViewDigest(m.View, m.HighQC), m.Share); err != nil {
		return
	}
	// Adopt the view; the quorum behind it is implied by the leader's
	// willingness to be exposed (a lightweight pacemaker, as in
	// implementations that piggyback TCs).
	n.view = m.View
	n.stats.ViewChanges++
	n.lastProgress = n.now
}
