package metrics

import (
	"math"
	"strings"
	"testing"
	"time"

	"leopard/internal/transport"
)

func TestBandwidthAccounting(t *testing.T) {
	var b Bandwidth
	b.AddSent(transport.ClassDatablock, 100)
	b.AddSent(transport.ClassDatablock, 50)
	b.AddSent(transport.ClassVote, 10)
	b.AddReceived(transport.ClassBFTblock, 30)

	if got := b.TotalSent(); got != 160 {
		t.Errorf("TotalSent = %d", got)
	}
	if got := b.TotalReceived(); got != 30 {
		t.Errorf("TotalReceived = %d", got)
	}
	if got := b.Total(); got != 190 {
		t.Errorf("Total = %d", got)
	}
}

func TestBreakdownPercentages(t *testing.T) {
	var b Bandwidth
	b.AddReceived(transport.ClassDatablock, 960)
	b.AddSent(transport.ClassBFTblock, 30)
	b.AddSent(transport.ClassProof, 10)
	rows := b.Breakdown()
	var sum float64
	var datablockPct float64
	for _, r := range rows {
		sum += r.Percent
		if r.Class == "datablock" && r.Direction == "receive" {
			datablockPct = r.Percent
		}
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Errorf("percentages sum to %f", sum)
	}
	if datablockPct != 96 {
		t.Errorf("datablock share = %f%%, want 96%%", datablockPct)
	}
	text := FormatBreakdown(rows)
	if !strings.Contains(text, "datablock") || !strings.Contains(text, "96.00%") {
		t.Errorf("formatted breakdown missing content:\n%s", text)
	}
}

func TestBreakdownEmpty(t *testing.T) {
	var b Bandwidth
	if rows := b.Breakdown(); rows != nil {
		t.Errorf("empty breakdown should be nil, got %v", rows)
	}
}

func TestLatencyRecorder(t *testing.T) {
	var l LatencyRecorder
	if l.Mean() != 0 || l.Percentile(50) != 0 {
		t.Error("empty recorder must return zeros")
	}
	for i := 1; i <= 100; i++ {
		l.Add(time.Duration(i) * time.Millisecond)
	}
	if got := l.Count(); got != 100 {
		t.Errorf("Count = %d", got)
	}
	if got, want := l.Mean(), 50500*time.Microsecond; got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got := l.Percentile(50); got != 50*time.Millisecond {
		t.Errorf("P50 = %v", got)
	}
	if got := l.Percentile(99); got != 99*time.Millisecond {
		t.Errorf("P99 = %v", got)
	}
	if got := l.Percentile(100); got != 100*time.Millisecond {
		t.Errorf("P100 = %v", got)
	}
	// Adding after a percentile query must re-sort.
	l.Add(time.Microsecond)
	if got := l.Percentile(1); got != time.Microsecond {
		t.Errorf("P1 after re-add = %v", got)
	}
}

func TestThroughputAndRates(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Errorf("Throughput = %f", got)
	}
	if got := Throughput(1000, 0); got != 0 {
		t.Errorf("Throughput with zero elapsed = %f", got)
	}
	if got := Gbps(1.25e9, 10*time.Second); math.Abs(got-1) > 1e-9 {
		t.Errorf("Gbps = %f, want 1", got)
	}
	if got := Mbps(1.25e6, 10*time.Second); math.Abs(got-1) > 1e-9 {
		t.Errorf("Mbps = %f, want 1", got)
	}
}

func TestStageTimer(t *testing.T) {
	var s StageTimer
	s.Add("dissemination", 500*time.Millisecond)
	s.Add("agreement", 300*time.Millisecond)
	s.Add("dissemination", 200*time.Millisecond)

	if got := s.Total(); got != time.Second {
		t.Errorf("Total = %v", got)
	}
	rows := s.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Sorted by name: agreement then dissemination.
	if rows[0].Stage != "agreement" || math.Abs(rows[0].Percent-30) > 1e-9 {
		t.Errorf("row 0 = %+v", rows[0])
	}
	if rows[1].Stage != "dissemination" || math.Abs(rows[1].Percent-70) > 1e-9 {
		t.Errorf("row 1 = %+v", rows[1])
	}
}

func TestStageTimerEmpty(t *testing.T) {
	var s StageTimer
	if s.Total() != 0 {
		t.Error("empty total must be 0")
	}
	if rows := s.Rows(); len(rows) != 0 {
		t.Errorf("empty rows = %v", rows)
	}
}
