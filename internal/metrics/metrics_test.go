package metrics

import (
	"math"
	"strings"
	"testing"
	"time"

	"leopard/internal/transport"
)

func TestBandwidthAccounting(t *testing.T) {
	var b Bandwidth
	b.AddSent(transport.ClassDatablock, 100)
	b.AddSent(transport.ClassDatablock, 50)
	b.AddSent(transport.ClassVote, 10)
	b.AddReceived(transport.ClassBFTblock, 30)

	if got := b.TotalSent(); got != 160 {
		t.Errorf("TotalSent = %d", got)
	}
	if got := b.TotalReceived(); got != 30 {
		t.Errorf("TotalReceived = %d", got)
	}
	if got := b.Total(); got != 190 {
		t.Errorf("Total = %d", got)
	}
}

func TestBreakdownPercentages(t *testing.T) {
	var b Bandwidth
	b.AddReceived(transport.ClassDatablock, 960)
	b.AddSent(transport.ClassBFTblock, 30)
	b.AddSent(transport.ClassProof, 10)
	rows := b.Breakdown()
	var sum float64
	var datablockPct float64
	for _, r := range rows {
		sum += r.Percent
		if r.Class == "datablock" && r.Direction == "receive" {
			datablockPct = r.Percent
		}
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Errorf("percentages sum to %f", sum)
	}
	if datablockPct != 96 {
		t.Errorf("datablock share = %f%%, want 96%%", datablockPct)
	}
	text := FormatBreakdown(rows)
	if !strings.Contains(text, "datablock") || !strings.Contains(text, "96.00%") {
		t.Errorf("formatted breakdown missing content:\n%s", text)
	}
}

func TestBreakdownEmpty(t *testing.T) {
	var b Bandwidth
	if rows := b.Breakdown(); rows != nil {
		t.Errorf("empty breakdown should be nil, got %v", rows)
	}
}

func TestLatencyRecorder(t *testing.T) {
	var l LatencyRecorder
	if l.Mean() != 0 || l.Percentile(50) != 0 {
		t.Error("empty recorder must return zeros")
	}
	for i := 1; i <= 100; i++ {
		l.Add(time.Duration(i) * time.Millisecond)
	}
	if got := l.Count(); got != 100 {
		t.Errorf("Count = %d", got)
	}
	if got, want := l.Mean(), 50500*time.Microsecond; got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got := l.Percentile(50); got != 50*time.Millisecond {
		t.Errorf("P50 = %v", got)
	}
	if got := l.Percentile(99); got != 99*time.Millisecond {
		t.Errorf("P99 = %v", got)
	}
	if got := l.Percentile(100); got != 100*time.Millisecond {
		t.Errorf("P100 = %v", got)
	}
	// Adding after a percentile query must re-sort: with the fresh 1µs
	// sample in place, P1 of 101 samples is nearest-rank ceil(1.01)=2, the
	// second-smallest sample (1ms). Without the re-sort the 1µs sample
	// would sit unsorted at the end and P1 would return 2ms.
	l.Add(time.Microsecond)
	if got := l.Percentile(1); got != time.Millisecond {
		t.Errorf("P1 after re-add = %v", got)
	}
	if got := l.Percentile(0.1); got != time.Microsecond {
		t.Errorf("P0.1 after re-add = %v", got)
	}
}

func TestThroughputAndRates(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Errorf("Throughput = %f", got)
	}
	if got := Throughput(1000, 0); got != 0 {
		t.Errorf("Throughput with zero elapsed = %f", got)
	}
	if got := Gbps(1.25e9, 10*time.Second); math.Abs(got-1) > 1e-9 {
		t.Errorf("Gbps = %f, want 1", got)
	}
	if got := Mbps(1.25e6, 10*time.Second); math.Abs(got-1) > 1e-9 {
		t.Errorf("Mbps = %f, want 1", got)
	}
}

func TestStageTimer(t *testing.T) {
	var s StageTimer
	s.Add("dissemination", 500*time.Millisecond)
	s.Add("agreement", 300*time.Millisecond)
	s.Add("dissemination", 200*time.Millisecond)

	if got := s.Total(); got != time.Second {
		t.Errorf("Total = %v", got)
	}
	rows := s.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Sorted by name: agreement then dissemination.
	if rows[0].Stage != "agreement" || math.Abs(rows[0].Percent-30) > 1e-9 {
		t.Errorf("row 0 = %+v", rows[0])
	}
	if rows[1].Stage != "dissemination" || math.Abs(rows[1].Percent-70) > 1e-9 {
		t.Errorf("row 1 = %+v", rows[1])
	}
}

func TestStageTimerEmpty(t *testing.T) {
	var s StageTimer
	if s.Total() != 0 {
		t.Error("empty total must be 0")
	}
	if rows := s.Rows(); len(rows) != 0 {
		t.Errorf("empty rows = %v", rows)
	}
}

// TestPercentileNearestRank pins the nearest-rank definition over small
// sample counts, where the old floor-based index visibly underestimated
// (e.g. p99 of 10 samples returned the 9th sample instead of the 10th).
func TestPercentileNearestRank(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		n    int // samples are 1ms..n*1ms
		p    float64
		want time.Duration
	}{
		{n: 1, p: 50, want: ms(1)},
		{n: 1, p: 99, want: ms(1)},
		{n: 2, p: 50, want: ms(1)},   // ceil(1.0) = rank 1
		{n: 2, p: 51, want: ms(2)},   // ceil(1.02) = rank 2
		{n: 3, p: 99, want: ms(3)},   // ceil(2.97) = rank 3
		{n: 4, p: 25, want: ms(1)},   // ceil(1.0) = rank 1
		{n: 4, p: 26, want: ms(2)},   // ceil(1.04) = rank 2
		{n: 10, p: 99, want: ms(10)}, // the motivating case: floor gave rank 9
		{n: 10, p: 90, want: ms(9)},
		{n: 10, p: 91, want: ms(10)},
		{n: 100, p: 99, want: ms(99)},
		{n: 100, p: 99.5, want: ms(100)},
		{n: 100, p: 100, want: ms(100)},
		{n: 7, p: 50, want: ms(4)}, // ceil(3.5) = rank 4 (the median)
	}
	for _, c := range cases {
		var l LatencyRecorder
		for i := 1; i <= c.n; i++ {
			l.Add(ms(i))
		}
		if got := l.Percentile(c.p); got != c.want {
			t.Errorf("n=%d p=%v: got %v, want %v", c.n, c.p, got, c.want)
		}
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var empty LatencyRecorder
	if got := empty.Histogram(); got != "(no samples)\n" {
		t.Errorf("empty histogram = %q", got)
	}
	// All samples in a single bucket: exactly one row, full-width bar.
	var single LatencyRecorder
	single.Add(100 * time.Microsecond)
	single.Add(500 * time.Microsecond)
	out := single.Histogram()
	if strings.Count(out, "\n") != 1 {
		t.Errorf("single-bucket histogram should have 1 row:\n%s", out)
	}
	if !strings.Contains(out, "< 1ms") || !strings.Contains(out, "2 ########################################") {
		t.Errorf("single-bucket histogram content:\n%s", out)
	}
	// A gap between occupied buckets still prints the empty bucket rows.
	var gapped LatencyRecorder
	gapped.Add(500 * time.Microsecond) // bucket 0
	gapped.Add(3 * time.Millisecond)   // bucket 2 (2-4ms)
	out = gapped.Histogram()
	if strings.Count(out, "\n") != 3 {
		t.Errorf("gapped histogram should print 3 rows including the empty one:\n%s", out)
	}
}

func TestFormatBreakdownZeroTotal(t *testing.T) {
	var b Bandwidth
	if got := FormatBreakdown(b.Breakdown()); got != "" {
		t.Errorf("zero-total breakdown should format to empty string, got %q", got)
	}
}
