// Package metrics collects the measurements the paper's evaluation reports:
// throughput, latency distributions, and per-component bandwidth utilization
// breakdowns at each replica.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"leopard/internal/transport"
	"leopard/internal/types"
)

// Bandwidth tracks sent/received bytes per message class for one replica.
// The zero value is ready to use.
type Bandwidth struct {
	Sent     [transport.NumClasses]int64
	Received [transport.NumClasses]int64
}

// AddSent records an outbound message of the given class and size.
func (b *Bandwidth) AddSent(c transport.Class, bytes int) { b.Sent[c] += int64(bytes) }

// AddReceived records an inbound message.
func (b *Bandwidth) AddReceived(c transport.Class, bytes int) { b.Received[c] += int64(bytes) }

// TotalSent returns all bytes sent.
func (b *Bandwidth) TotalSent() int64 {
	var t int64
	for _, v := range b.Sent {
		t += v
	}
	return t
}

// TotalReceived returns all bytes received.
func (b *Bandwidth) TotalReceived() int64 {
	var t int64
	for _, v := range b.Received {
		t += v
	}
	return t
}

// Total returns all bytes in both directions.
func (b *Bandwidth) Total() int64 { return b.TotalSent() + b.TotalReceived() }

// BreakdownRow is one line of a Table III-style utilization breakdown.
type BreakdownRow struct {
	Direction string // "send" or "receive"
	Class     string
	Bytes     int64
	Percent   float64 // of the replica's total (send+receive)
}

// Breakdown renders the per-class shares of this replica's total traffic.
func (b *Bandwidth) Breakdown() []BreakdownRow {
	total := b.Total()
	if total == 0 {
		return nil
	}
	var rows []BreakdownRow
	for c := 1; c < transport.NumClasses; c++ {
		if b.Sent[c] > 0 {
			rows = append(rows, BreakdownRow{
				Direction: "send", Class: transport.Class(c).String(),
				Bytes: b.Sent[c], Percent: 100 * float64(b.Sent[c]) / float64(total),
			})
		}
	}
	for c := 1; c < transport.NumClasses; c++ {
		if b.Received[c] > 0 {
			rows = append(rows, BreakdownRow{
				Direction: "receive", Class: transport.Class(c).String(),
				Bytes: b.Received[c], Percent: 100 * float64(b.Received[c]) / float64(total),
			})
		}
	}
	return rows
}

// FormatBreakdown renders rows as an aligned text table.
func FormatBreakdown(rows []BreakdownRow) string {
	var sb strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %-11s %12d B %6.2f%%\n", r.Direction, r.Class, r.Bytes, r.Percent)
	}
	return sb.String()
}

// LatencySample is one request's confirmation latency.
type LatencySample = time.Duration

// LatencyRecorder accumulates latency samples.
// The zero value is ready to use. Not safe for concurrent use.
type LatencyRecorder struct {
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (l *LatencyRecorder) Add(d time.Duration) {
	l.samples = append(l.samples, d)
	l.sorted = false
}

// Count returns the number of samples.
func (l *LatencyRecorder) Count() int { return len(l.samples) }

// Mean returns the average latency, or 0 with no samples.
func (l *LatencyRecorder) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range l.samples {
		sum += s
	}
	return sum / time.Duration(len(l.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100) by the nearest-rank
// method: the smallest sample with at least p% of the samples at or below
// it, i.e. index ceil(p/100*n)-1. (A floor here would systematically
// underestimate: p99 of 10 samples must be the 10th sample, not the 9th.)
func (l *LatencyRecorder) Percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
	// The 1e-9 slack keeps exact ranks (e.g. p50 of 10 → 5.0) from being
	// pushed up a rank by floating-point noise in p/100*n.
	idx := int(math.Ceil(p/100*float64(len(l.samples))-1e-9)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(l.samples) {
		idx = len(l.samples) - 1
	}
	return l.samples[idx]
}

// Histogram renders the samples as a log-scale latency histogram: one row
// per power-of-two bucket starting at 1ms, with a proportional bar and the
// sample count. Buckets with no samples between the first and last occupied
// bucket still print, so the shape of the distribution is readable.
func (l *LatencyRecorder) Histogram() string {
	if len(l.samples) == 0 {
		return "(no samples)\n"
	}
	const base = time.Millisecond
	bucket := func(d time.Duration) int {
		b := 0
		for limit := base; d >= limit && b < 62; limit *= 2 {
			b++
		}
		return b
	}
	counts := make(map[int]int)
	lo, hi := 63, 0
	for _, s := range l.samples {
		b := bucket(s)
		counts[b]++
		if b < lo {
			lo = b
		}
		if b > hi {
			hi = b
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	var sb strings.Builder
	for b := lo; b <= hi; b++ {
		var label string
		if b == 0 {
			label = fmt.Sprintf("       < %v", base)
		} else {
			label = fmt.Sprintf("%8v - %v", base<<(b-1), base<<b)
		}
		c := counts[b]
		bar := strings.Repeat("#", c*40/max)
		fmt.Fprintf(&sb, "%-22s %6d %s\n", label, c, bar)
	}
	return sb.String()
}

// Throughput converts a confirmed-request count over a duration into
// requests per second.
func Throughput(confirmed int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(confirmed) / elapsed.Seconds()
}

// Gbps converts bytes over a duration into gigabits per second.
func Gbps(bytes int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) * 8 / 1e9 / elapsed.Seconds()
}

// Mbps converts bytes over a duration into megabits per second.
func Mbps(bytes int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) * 8 / 1e6 / elapsed.Seconds()
}

// StageTimer accumulates time spent per named pipeline stage, backing the
// paper's Table IV latency breakdown.
// The zero value is ready to use. Not safe for concurrent use.
type StageTimer struct {
	totals map[string]time.Duration
}

// Add accrues d to the named stage.
func (s *StageTimer) Add(stage string, d time.Duration) {
	if s.totals == nil {
		s.totals = make(map[string]time.Duration)
	}
	s.totals[stage] += d
}

// Total returns the sum over all stages.
func (s *StageTimer) Total() time.Duration {
	var t time.Duration
	for _, d := range s.totals {
		t += d
	}
	return t
}

// StageRow is one line of a latency breakdown.
type StageRow struct {
	Stage   string
	Total   time.Duration
	Percent float64
}

// Rows returns the per-stage shares sorted by stage name.
func (s *StageTimer) Rows() []StageRow {
	total := s.Total()
	names := make([]string, 0, len(s.totals))
	for n := range s.totals {
		names = append(names, n)
	}
	sort.Strings(names)
	rows := make([]StageRow, 0, len(names))
	for _, n := range names {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(s.totals[n]) / float64(total)
		}
		rows = append(rows, StageRow{Stage: n, Total: s.totals[n], Percent: pct})
	}
	return rows
}

// ReplicaStats bundles everything measured at one replica.
type ReplicaStats struct {
	ID        types.ReplicaID
	Bandwidth Bandwidth
	Confirmed int64 // requests confirmed at this replica
	Executed  int64
}

// StreamStats are the bulk-lane streaming / flow-control counters a
// transport reports per peer (and aggregated per replica): how much bulk
// data is parked waiting for credit, how much of the credit window is in
// flight, and how often the park budget forced an eviction. Both the TCP
// runtime and the simulator's credit-based bulk model fill this struct, so
// experiments and the -status endpoint read one shape.
type StreamStats struct {
	// QueuedBytes is the bulk payload currently parked (accepted from the
	// node but not yet transmitted).
	QueuedBytes int64
	// PeakQueuedBytes is the high-water mark of QueuedBytes.
	PeakQueuedBytes int64
	// CreditsOutstanding is the portion of the credit window in flight:
	// bytes sent but not yet acknowledged consumed by the receiver.
	CreditsOutstanding int64
	// StreamsActive is the number of streams queued or mid-transmission.
	StreamsActive int64
	// Evictions counts streams dropped by the park-budget bound (the
	// slow-peer eviction path). Under credit flow control this is the only
	// way the bulk lane loses data.
	Evictions int64
}

// Accumulate adds o's counters into s (peak as max), for aggregating
// per-peer stats into a per-replica view.
func (s *StreamStats) Accumulate(o StreamStats) {
	s.QueuedBytes += o.QueuedBytes
	if o.PeakQueuedBytes > s.PeakQueuedBytes {
		s.PeakQueuedBytes = o.PeakQueuedBytes
	}
	s.CreditsOutstanding += o.CreditsOutstanding
	s.StreamsActive += o.StreamsActive
	s.Evictions += o.Evictions
}
