package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file defines the bulk-lane streaming layer shared by the TCP runtime
// and the simulator's credit-based bulk model: the stream chunk header, the
// receive-side reassembler, the credit-grant message, and the configuration
// both transports derive their chunking and flow-control decisions from.
// Keeping the policy here (one chunking function, one set of limits, one
// grant threshold) is what lets the simnet model and the TCP runtime agree
// byte-for-byte on how a given envelope is split and when a sender parks.

// Stream flow-control defaults. See StreamConfig for the meaning of each.
const (
	DefaultChunkSize       = 64 << 10  // 64 KiB
	DefaultStreamThreshold = 256 << 10 // 256 KiB
	DefaultCreditWindow    = 4 << 20   // 4 MiB
	DefaultParkBudget      = 64 << 20  // 64 MiB
	DefaultMaxStreams      = 32
)

// StreamConfig parameterizes bulk-lane streaming and credit-based per-peer
// flow control. The zero value selects the defaults above; Normalize fills
// them in place.
type StreamConfig struct {
	// ChunkSize is the fixed chunk length large frames are split into.
	ChunkSize int
	// StreamThreshold is the largest frame shipped as a single chunk.
	// Frames above it are split into ChunkSize pieces so concurrent
	// streams to the same peer can interleave fairly; frames at or below
	// it ride as one chunk (offset 0, fin) to avoid split overhead.
	StreamThreshold int
	// CreditWindow is the per-peer byte budget a sender may have
	// outstanding (sent but not yet accounted consumed by the receiver).
	// When the window is exhausted the sender parks its streams instead
	// of dropping them; receiver grants (CreditMsg) reopen it.
	CreditWindow int64
	// ParkBudget bounds the bytes a sender will hold parked for one peer.
	// When exceeded, the oldest not-yet-started streams are evicted
	// (counted as drops) so a peer that never grants credit cannot pin
	// unbounded memory — the slow-peer eviction path.
	ParkBudget int64
	// MaxStreams caps how many streams are interleaved to one peer at a
	// time; further streams wait FIFO behind the active set. Receivers
	// enforce the same cap on concurrent partial streams and treat an
	// excess as a protocol violation.
	MaxStreams int
}

// Normalize fills zero fields with the package defaults in place.
func (c *StreamConfig) Normalize() {
	if c.ChunkSize <= 0 {
		c.ChunkSize = DefaultChunkSize
	}
	if c.StreamThreshold <= 0 {
		c.StreamThreshold = DefaultStreamThreshold
	}
	if c.StreamThreshold < c.ChunkSize {
		// A threshold below the chunk size would make "unsplit" frames
		// smaller than a split frame's pieces; clamp up.
		c.StreamThreshold = c.ChunkSize
	}
	if c.CreditWindow <= 0 {
		c.CreditWindow = DefaultCreditWindow
	}
	if c.ParkBudget <= 0 {
		c.ParkBudget = DefaultParkBudget
	}
	if c.MaxStreams <= 0 {
		c.MaxStreams = DefaultMaxStreams
	}
}

// GrantThreshold is how many consumed bytes a receiver accumulates before
// flushing a credit grant: half the window, the classic window-update
// cadence that keeps the pipe full (the sender still holds half a window of
// credit when the grant for the first half is in flight).
func (c StreamConfig) GrantThreshold() int64 { return c.CreditWindow / 2 }

// ChunkLen returns the length of the chunk starting at offset within a
// stream of the given total length: the whole frame when it fits under the
// threshold, otherwise fixed ChunkSize pieces (the final piece carries the
// remainder). Both transports split with exactly this function, which is
// what makes the simulated chunk schedule match the real one.
func (c StreamConfig) ChunkLen(total, offset int) int {
	if total <= c.StreamThreshold {
		return total - offset
	}
	remaining := total - offset
	if remaining > c.ChunkSize {
		return c.ChunkSize
	}
	return remaining
}

// StreamHeader prefixes every chunk on the wire.
//
// Wire layout (StreamHeaderSize bytes, big-endian):
//
//	stream id (8) | offset (8) | total (8) | flags (1)
//
// The stream id is allocated by the sender per (peer, stream); offsets are
// contiguous (each chunk starts where the previous one ended); total is the
// full reassembled frame length and must be identical on every chunk of a
// stream; flags bit 0 (fin) marks the final chunk, whose end must land
// exactly on total.
type StreamHeader struct {
	StreamID uint64
	Offset   uint64
	Total    uint64
	Fin      bool
}

// StreamHeaderSize is the encoded size of a StreamHeader.
const StreamHeaderSize = 8 + 8 + 8 + 1

const finFlag = 0x01

// AppendStreamHeader appends the encoded header to dst.
func AppendStreamHeader(dst []byte, h StreamHeader) []byte {
	var buf [StreamHeaderSize]byte
	binary.BigEndian.PutUint64(buf[0:8], h.StreamID)
	binary.BigEndian.PutUint64(buf[8:16], h.Offset)
	binary.BigEndian.PutUint64(buf[16:24], h.Total)
	if h.Fin {
		buf[24] = finFlag
	}
	return append(dst, buf[:]...)
}

// Errors surfaced by ParseStreamHeader and Reassembler.Add. They signal
// protocol violations: a transport receiving one must fail loudly (drop the
// connection), never silently resynchronize.
var (
	ErrStreamHeader = errors.New("transport: malformed stream chunk header")
	ErrStreamState  = errors.New("transport: stream chunk violates stream state")
)

// ParseStreamHeader splits a chunk frame into its header and payload.
func ParseStreamHeader(frame []byte) (StreamHeader, []byte, error) {
	if len(frame) < StreamHeaderSize {
		return StreamHeader{}, nil, fmt.Errorf("%w: %d bytes", ErrStreamHeader, len(frame))
	}
	flags := frame[24]
	if flags&^finFlag != 0 {
		return StreamHeader{}, nil, fmt.Errorf("%w: unknown flags %#x", ErrStreamHeader, flags)
	}
	h := StreamHeader{
		StreamID: binary.BigEndian.Uint64(frame[0:8]),
		Offset:   binary.BigEndian.Uint64(frame[8:16]),
		Total:    binary.BigEndian.Uint64(frame[16:24]),
		Fin:      flags&finFlag != 0,
	}
	return h, frame[StreamHeaderSize:], nil
}

// Reassembler rebuilds bulk frames from interleaved stream chunks arriving
// from one peer. It is not safe for concurrent use (each read loop owns
// one).
//
// Add enforces the sender contract strictly — consistent totals, contiguous
// offsets, fin exactly at total, at most MaxStreams concurrent partial
// streams, totals bounded by maxTotal — and returns an error on any
// violation or on duplicated/overlapping/oversized chunks. A completed
// frame is returned as a fresh buffer whose ownership transfers to the
// caller (it is safe to hand to a zero-copy Codec.Decode: the reassembler
// keeps no reference).
type Reassembler struct {
	cfg      StreamConfig
	maxTotal int
	partial  map[uint64]*partialStream
}

type partialStream struct {
	buf []byte // len(buf) == received bytes; cap == total
}

// NewReassembler builds a reassembler; maxTotal bounds the reassembled
// frame size (a transport passes its MaxFrame limit).
func NewReassembler(cfg StreamConfig, maxTotal int) *Reassembler {
	cfg.Normalize()
	return &Reassembler{cfg: cfg, maxTotal: maxTotal, partial: make(map[uint64]*partialStream)}
}

// Streams returns the number of incomplete streams currently held.
func (r *Reassembler) Streams() int { return len(r.partial) }

// Buffered returns the bytes currently held across incomplete streams.
func (r *Reassembler) Buffered() int64 {
	var n int64
	for _, p := range r.partial {
		n += int64(len(p.buf))
	}
	return n
}

// Add processes one chunk. It returns the complete frame when this chunk
// finishes its stream, nil while the stream is still partial, and an error
// on any contract violation (the caller must treat the peer as faulty).
func (r *Reassembler) Add(h StreamHeader, payload []byte) ([]byte, error) {
	if h.Total == 0 || h.Total > uint64(r.maxTotal) {
		return nil, fmt.Errorf("%w: total %d outside (0, %d]", ErrStreamState, h.Total, r.maxTotal)
	}
	if len(payload) == 0 {
		return nil, fmt.Errorf("%w: empty chunk", ErrStreamState)
	}
	end := h.Offset + uint64(len(payload))
	if end < h.Offset || end > h.Total {
		return nil, fmt.Errorf("%w: chunk [%d, %d) exceeds total %d", ErrStreamState, h.Offset, end, h.Total)
	}
	p, ok := r.partial[h.StreamID]
	if !ok {
		if h.Offset != 0 {
			return nil, fmt.Errorf("%w: stream %d starts at offset %d", ErrStreamState, h.StreamID, h.Offset)
		}
		if len(r.partial) >= r.cfg.MaxStreams {
			return nil, fmt.Errorf("%w: over %d concurrent streams", ErrStreamState, r.cfg.MaxStreams)
		}
		p = &partialStream{buf: make([]byte, 0, h.Total)}
		r.partial[h.StreamID] = p
	}
	if uint64(cap(p.buf)) != h.Total {
		return nil, fmt.Errorf("%w: stream %d total changed %d -> %d", ErrStreamState, h.StreamID, cap(p.buf), h.Total)
	}
	if h.Offset != uint64(len(p.buf)) {
		// Covers duplicates, overlaps and gaps alike: chunks of one stream
		// arrive strictly in order on a reliable transport.
		return nil, fmt.Errorf("%w: stream %d offset %d, want %d", ErrStreamState, h.StreamID, h.Offset, len(p.buf))
	}
	p.buf = append(p.buf, payload...)
	done := uint64(len(p.buf)) == h.Total
	if h.Fin != done {
		delete(r.partial, h.StreamID)
		if h.Fin {
			return nil, fmt.Errorf("%w: fin at %d of %d bytes", ErrStreamState, len(p.buf), h.Total)
		}
		return nil, fmt.Errorf("%w: stream %d complete without fin", ErrStreamState, h.StreamID)
	}
	if !done {
		return nil, nil
	}
	delete(r.partial, h.StreamID)
	return p.buf, nil
}

// CreditMsg is the control-lane flow-control grant: the receiver tells a
// sender how many bulk-lane bytes it has consumed, reopening the sender's
// credit window. Consumed counts chunk payload bytes and is cumulative per
// connection epoch, so a lost or duplicated grant is healed by the next
// one (receivers of duplicates take the max), and a grant that was in
// flight across a reconnect — whose counter belongs to the dead
// connection — is discarded by its stale epoch instead of corrupting the
// fresh window. CreditMsg is transport-internal: it is never delivered to
// the protocol node.
type CreditMsg struct {
	// Consumed is the cumulative count of bulk payload bytes the receiver
	// has accepted on this connection epoch.
	Consumed int64
}

var _ Message = (*CreditMsg)(nil)

// CreditWireSize is the on-wire cost of one credit grant (frame length
// prefix + frame kind + the 4-byte connection epoch + the 8-byte
// cumulative counter).
const CreditWireSize = 4 + 1 + 4 + 8

// WireSize implements Message.
func (m *CreditMsg) WireSize() int { return CreditWireSize }

// Class implements Message. Credit grants are transport control traffic;
// they ride the control lane and are accounted under ClassMisc.
func (m *CreditMsg) Class() Class { return ClassMisc }
