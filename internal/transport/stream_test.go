package transport_test

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"leopard/internal/transport"
)

// chunkPlan is one pending chunk of a simulated sender.
type chunkPlan struct {
	hdr     transport.StreamHeader
	payload []byte
}

// planStream splits payload into in-order chunks with random sizes.
func planStream(rng *rand.Rand, id uint64, payload []byte) []chunkPlan {
	var plan []chunkPlan
	total := uint64(len(payload))
	off := 0
	for off < len(payload) {
		n := 1 + rng.Intn(len(payload)-off)
		if rng.Intn(4) == 0 {
			n = len(payload) - off // occasional jumbo final chunk
		}
		end := off + n
		plan = append(plan, chunkPlan{
			hdr: transport.StreamHeader{
				StreamID: id,
				Offset:   uint64(off),
				Total:    total,
				Fin:      end == len(payload),
			},
			payload: payload[off:end],
		})
		off = end
	}
	return plan
}

// TestStreamReassemblyProperty drives >=3 concurrent streams of random
// payloads through the reassembler with random chunk sizes and a random
// cross-stream interleaving, asserting every stream reassembles to exactly
// its original payload. This is the sender/receiver contract the TCP
// runtime and simnet both build on.
func TestStreamReassemblyProperty(t *testing.T) {
	for iter := 0; iter < 200; iter++ {
		rng := rand.New(rand.NewSource(int64(iter)))
		nStreams := 3 + rng.Intn(3)
		want := make(map[uint64][]byte, nStreams)
		pending := make([][]chunkPlan, nStreams)
		for i := 0; i < nStreams; i++ {
			payload := make([]byte, 1+rng.Intn(4096))
			rng.Read(payload)
			id := uint64(i)
			want[id] = payload
			pending[i] = planStream(rng, id, payload)
		}
		asm := transport.NewReassembler(transport.StreamConfig{}, 1<<20)
		got := make(map[uint64][]byte)
		for remaining := nStreams; remaining > 0; {
			// Random interleaving: pick any stream with chunks left and
			// feed its next in-order chunk.
			i := rng.Intn(nStreams)
			if len(pending[i]) == 0 {
				continue
			}
			c := pending[i][0]
			pending[i] = pending[i][1:]
			complete, err := asm.Add(c.hdr, c.payload)
			if err != nil {
				t.Fatalf("iter %d: Add(stream %d off %d): %v", iter, c.hdr.StreamID, c.hdr.Offset, err)
			}
			if c.hdr.Fin {
				if complete == nil {
					t.Fatalf("iter %d: fin chunk of stream %d did not complete", iter, c.hdr.StreamID)
				}
				got[c.hdr.StreamID] = complete
				remaining--
			} else if complete != nil {
				t.Fatalf("iter %d: non-fin chunk completed stream %d", iter, c.hdr.StreamID)
			}
		}
		for id, payload := range want {
			if !bytes.Equal(got[id], payload) {
				t.Fatalf("iter %d: stream %d reassembled %d bytes, want %d", iter, id, len(got[id]), len(payload))
			}
		}
		if asm.Streams() != 0 || asm.Buffered() != 0 {
			t.Fatalf("iter %d: reassembler retained %d streams / %d bytes", iter, asm.Streams(), asm.Buffered())
		}
	}
}

// TestStreamReassemblyViolations tables the loud-failure paths: every
// malformed sequence must return an error, never silently resync.
func TestStreamReassemblyViolations(t *testing.T) {
	hdr := func(id, off, total uint64, fin bool) transport.StreamHeader {
		return transport.StreamHeader{StreamID: id, Offset: off, Total: total, Fin: fin}
	}
	pay := func(n int) []byte { return make([]byte, n) }
	cases := []struct {
		name  string
		feed  []chunkPlan
		fails int // index of the chunk that must error
	}{
		{"zero total", []chunkPlan{{hdr(1, 0, 0, true), pay(1)}}, 0},
		{"oversized total", []chunkPlan{{hdr(1, 0, 1<<30, false), pay(8)}}, 0},
		{"empty chunk", []chunkPlan{{hdr(1, 0, 8, false), nil}}, 0},
		{"chunk past total", []chunkPlan{{hdr(1, 0, 4, true), pay(8)}}, 0},
		{"offset wraparound", []chunkPlan{{hdr(1, ^uint64(0)-1, 8, true), pay(4)}}, 0},
		{"new stream mid-offset", []chunkPlan{{hdr(1, 4, 8, true), pay(4)}}, 0},
		{"gap", []chunkPlan{{hdr(1, 0, 8, false), pay(2)}, {hdr(1, 4, 8, true), pay(4)}}, 1},
		{"overlap", []chunkPlan{{hdr(1, 0, 8, false), pay(4)}, {hdr(1, 2, 8, false), pay(2)}}, 1},
		{"duplicate chunk", []chunkPlan{{hdr(1, 0, 8, false), pay(4)}, {hdr(1, 0, 8, false), pay(4)}}, 1},
		{"total changed", []chunkPlan{{hdr(1, 0, 8, false), pay(4)}, {hdr(1, 4, 12, false), pay(4)}}, 1},
		{"early fin", []chunkPlan{{hdr(1, 0, 8, true), pay(4)}}, 0},
		{"missing fin", []chunkPlan{{hdr(1, 0, 8, false), pay(8)}}, 0},
		{"duplicated fin", []chunkPlan{
			{hdr(1, 0, 8, true), pay(8)},
			{hdr(1, 0, 8, true), pay(8)}, // stream 1 is gone; a "new" stream 1 completing again is fine…
			{hdr(1, 8, 8, true), pay(1)}, // …but a trailing fin beyond it must fail
		}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			asm := transport.NewReassembler(transport.StreamConfig{}, 1<<20)
			for i, c := range tc.feed {
				_, err := asm.Add(c.hdr, c.payload)
				if i == tc.fails {
					if err == nil {
						t.Fatalf("chunk %d accepted, want error", i)
					}
					return
				}
				if err != nil {
					t.Fatalf("chunk %d: unexpected error %v", i, err)
				}
			}
		})
	}
}

// TestStreamReassemblyStreamCap: more concurrent partial streams than
// MaxStreams is a protocol violation.
func TestStreamReassemblyStreamCap(t *testing.T) {
	cfg := transport.StreamConfig{MaxStreams: 2}
	asm := transport.NewReassembler(cfg, 1<<20)
	for id := uint64(0); id < 2; id++ {
		if _, err := asm.Add(transport.StreamHeader{StreamID: id, Total: 8}, make([]byte, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := asm.Add(transport.StreamHeader{StreamID: 9, Total: 8}, make([]byte, 4)); err == nil {
		t.Fatal("third concurrent stream accepted over MaxStreams=2")
	}
}

// TestStreamHeaderRoundTrip pins the wire layout.
func TestStreamHeaderRoundTrip(t *testing.T) {
	in := transport.StreamHeader{StreamID: 7, Offset: 1 << 40, Total: 1<<40 + 9, Fin: true}
	frame := transport.AppendStreamHeader(nil, in)
	frame = append(frame, 0xAA, 0xBB)
	if len(frame) != transport.StreamHeaderSize+2 {
		t.Fatalf("encoded header is %d bytes, want %d", len(frame)-2, transport.StreamHeaderSize)
	}
	out, payload, err := transport.ParseStreamHeader(frame)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip %+v -> %+v", in, out)
	}
	if len(payload) != 2 || payload[0] != 0xAA {
		t.Fatalf("payload not preserved: %x", payload)
	}
	if _, _, err := transport.ParseStreamHeader(frame[:10]); err == nil {
		t.Fatal("truncated header accepted")
	}
	bad := transport.AppendStreamHeader(nil, in)
	bad[24] |= 0x80 // unknown flag bit
	if _, _, err := transport.ParseStreamHeader(bad); err == nil {
		t.Fatal("unknown flag bits accepted")
	}
}

// TestChunkLenPolicy pins the shared chunking function both transports
// split with.
func TestChunkLenPolicy(t *testing.T) {
	cfg := transport.StreamConfig{ChunkSize: 100, StreamThreshold: 300}
	cfg.Normalize()
	if got := cfg.ChunkLen(300, 0); got != 300 {
		t.Fatalf("frame at threshold split: chunk %d, want 300", got)
	}
	if got := cfg.ChunkLen(301, 0); got != 100 {
		t.Fatalf("frame above threshold: first chunk %d, want 100", got)
	}
	if got := cfg.ChunkLen(301, 300); got != 1 {
		t.Fatalf("final remainder chunk %d, want 1", got)
	}
}

// FuzzStreamReassemble feeds arbitrary framed chunk sequences to the
// reassembler: it must never panic, never complete a frame whose length
// differs from the advertised total, and never retain more than MaxStreams
// partial streams. Input format: repeated [2-byte big-endian frame length |
// frame], each frame parsed as chunk header + payload.
func FuzzStreamReassemble(f *testing.F) {
	seed := func(chunks ...chunkPlan) []byte {
		var buf []byte
		for _, c := range chunks {
			frame := transport.AppendStreamHeader(nil, c.hdr)
			frame = append(frame, c.payload...)
			var ln [2]byte
			binary.BigEndian.PutUint16(ln[:], uint16(len(frame)))
			buf = append(buf, ln[:]...)
			buf = append(buf, frame...)
		}
		return buf
	}
	f.Add(seed(chunkPlan{transport.StreamHeader{StreamID: 1, Total: 3, Fin: true}, []byte("abc")}))
	f.Add(seed(
		chunkPlan{transport.StreamHeader{StreamID: 1, Total: 4}, []byte("ab")},
		chunkPlan{transport.StreamHeader{StreamID: 2, Total: 2, Fin: true}, []byte("xy")},
		chunkPlan{transport.StreamHeader{StreamID: 1, Offset: 2, Total: 4, Fin: true}, []byte("cd")},
	))
	// Malformed seeds: overlapping offsets, oversized total, dup fin.
	f.Add(seed(
		chunkPlan{transport.StreamHeader{StreamID: 1, Total: 8}, []byte("abcd")},
		chunkPlan{transport.StreamHeader{StreamID: 1, Offset: 2, Total: 8}, []byte("cd")},
	))
	f.Add(seed(chunkPlan{transport.StreamHeader{StreamID: 1, Total: 1 << 62, Fin: false}, []byte("a")}))
	f.Add(seed(
		chunkPlan{transport.StreamHeader{StreamID: 1, Total: 1, Fin: true}, []byte("a")},
		chunkPlan{transport.StreamHeader{StreamID: 1, Offset: 1, Total: 1, Fin: true}, []byte("a")},
	))
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxTotal = 1 << 16
		cfg := transport.StreamConfig{MaxStreams: 4}
		asm := transport.NewReassembler(cfg, maxTotal)
		for len(data) >= 2 {
			n := int(binary.BigEndian.Uint16(data[:2]))
			data = data[2:]
			if n > len(data) {
				n = len(data)
			}
			frame := data[:n]
			data = data[n:]
			hdr, payload, err := transport.ParseStreamHeader(frame)
			if err != nil {
				continue // malformed header: a transport drops the peer
			}
			complete, err := asm.Add(hdr, payload)
			if err != nil {
				return // loud failure: the connection dies here
			}
			if complete != nil && uint64(len(complete)) != hdr.Total {
				t.Fatalf("completed %d bytes, advertised total %d", len(complete), hdr.Total)
			}
			if asm.Streams() > 4 {
				t.Fatalf("%d partial streams retained over cap 4", asm.Streams())
			}
			if asm.Buffered() > 4*maxTotal {
				t.Fatalf("buffered %d bytes over bound", asm.Buffered())
			}
		}
	})
}
