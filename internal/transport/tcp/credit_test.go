package tcp

import (
	"bytes"
	"encoding/binary"
	"sync/atomic"
	"testing"

	"leopard/internal/transport"
)

// schedCfg is a small, easily reasoned-about flow-control configuration
// used by the scheduler table tests: 100-byte chunks, 250-byte window,
// 1000-byte park budget.
func schedCfg() transport.StreamConfig {
	cfg := transport.StreamConfig{
		ChunkSize:       100,
		StreamThreshold: 100,
		CreditWindow:    250,
		ParkBudget:      1000,
		MaxStreams:      4,
	}
	cfg.Normalize()
	return cfg
}

// drain pulls chunks until the scheduler parks, returning the payload
// bytes pulled per chunk.
func drain(s *streamSched) []int {
	var sizes []int
	buf := make([]byte, 0, 1+transport.StreamHeaderSize)
	for {
		_, payload, ok := s.nextChunk(buf)
		if !ok {
			return sizes
		}
		s.chunkWritten() // the test wire never fails
		sizes = append(sizes, len(payload))
	}
}

// TestSchedDebitParkResume is the core grant/debit/park/resume sequence:
// the window admits 250 bytes of a 400-byte stream (100-byte chunks, then
// a 50-byte partial chunk spending the remaining credit), parks at zero
// credit, and resumes exactly as far as each cumulative grant allows.
func TestSchedDebitParkResume(t *testing.T) {
	var drops atomic.Int64
	s := newStreamSched(schedCfg(), &drops)
	s.enqueue(make([]byte, 400))

	if got := drain(s); len(got) != 3 || got[0] != 100 || got[1] != 100 || got[2] != 50 {
		t.Fatalf("window-limited chunks %v, want [100 100 50]", got)
	}
	st := s.stats()
	if st.CreditsOutstanding != 250 || st.QueuedBytes != 150 || st.StreamsActive != 1 {
		t.Fatalf("parked stats %+v", st)
	}
	// Grant 100 consumed bytes (cumulative): exactly 100 more flow.
	s.grant(0, 100)
	if got := drain(s); len(got) != 1 || got[0] != 100 {
		t.Fatalf("after grant(100): chunks %v, want [100]", got)
	}
	// A duplicate of the same cumulative grant is idempotent.
	s.grant(0, 100)
	if got := drain(s); len(got) != 0 {
		t.Fatalf("duplicate grant released chunks %v", got)
	}
	// Granting everything completes the stream and empties the scheduler.
	s.grant(0, 400)
	if got := drain(s); len(got) != 1 || got[0] != 50 {
		t.Fatalf("final chunks %v, want [50]", got)
	}
	st = s.stats()
	if st.QueuedBytes != 0 || st.StreamsActive != 0 {
		t.Fatalf("final stats %+v", st)
	}
	if drops.Load() != 0 {
		t.Fatalf("flow control dropped %d frames", drops.Load())
	}
}

// TestSchedGrantRacesCompletion: a grant arriving after the stream it paid
// for already finished (the receiver consumed faster than it granted) must
// not panic, must not create phantom streams, and must leave the full
// window available for the next stream.
func TestSchedGrantRacesCompletion(t *testing.T) {
	var drops atomic.Int64
	s := newStreamSched(schedCfg(), &drops)
	s.enqueue(make([]byte, 200))
	if got := drain(s); len(got) != 2 {
		t.Fatalf("chunks %v, want 2", got)
	}
	// The stream is gone; now its grant lands.
	s.grant(0, 200)
	if st := s.stats(); st.CreditsOutstanding != 0 || st.StreamsActive != 0 {
		t.Fatalf("stats after late grant %+v", st)
	}
	// A stale lower grant after a higher one must not shrink credit.
	s.grant(0, 150)
	s.enqueue(make([]byte, 250))
	if got := drain(s); len(got) != 3 || got[0]+got[1]+got[2] != 250 {
		t.Fatalf("full window not available after late grants: %v", got)
	}
}

// TestSchedNeverGrantsEvicts is the park-budget eviction path: a peer that
// never grants credit beyond the initial window accumulates parked
// streams until the budget is hit, at which point the oldest not-yet-
// started streams are evicted (counted as drops) and newer data survives.
func TestSchedNeverGrantsEvicts(t *testing.T) {
	var drops atomic.Int64
	s := newStreamSched(schedCfg(), &drops)
	// First stream starts transmitting (exhausts the 250-byte window).
	s.enqueue(make([]byte, 400))
	if got := drain(s); len(got) != 3 {
		t.Fatalf("chunks %v", got)
	}
	// Budget is 1000; 150 remain parked. Fill with two 300-byte streams.
	s.enqueue(make([]byte, 300))
	s.enqueue(make([]byte, 300))
	if st := s.stats(); st.QueuedBytes != 750 || st.Evictions != 0 {
		t.Fatalf("pre-eviction stats %+v", st)
	}
	// 300 more would exceed the budget: the oldest unstarted stream (the
	// first 300) is evicted; the mid-transmission stream must survive.
	s.enqueue(make([]byte, 300))
	st := s.stats()
	if st.Evictions != 1 || drops.Load() != 1 {
		t.Fatalf("evictions %d drops %d, want 1/1", st.Evictions, drops.Load())
	}
	if st.QueuedBytes != 750 || st.StreamsActive != 3 {
		t.Fatalf("post-eviction stats %+v", st)
	}
	// A frame larger than the whole budget can never fit: eviction empties
	// both remaining unstarted streams, then the frame itself is dropped
	// (1 earlier + 2 parked + 1 oversized = 4).
	s.enqueue(make([]byte, 2000))
	if st := s.stats(); st.Evictions != 4 {
		t.Fatalf("evictions %d, want 4", st.Evictions)
	}
	// The partially transmitted stream is never evicted.
	if st := s.stats(); st.StreamsActive != 1 || st.QueuedBytes != 150 {
		t.Fatalf("mid-transmission stream evicted: %+v", s.stats())
	}
}

// TestSchedRoundRobinInterleavesStreams: chunks of concurrent streams
// alternate instead of finishing one stream before starting the next.
func TestSchedRoundRobinInterleavesStreams(t *testing.T) {
	cfg := schedCfg()
	cfg.CreditWindow = 1 << 20 // no credit noise
	var drops atomic.Int64
	s := newStreamSched(cfg, &drops)
	a := bytes.Repeat([]byte{'a'}, 300)
	b := bytes.Repeat([]byte{'b'}, 300)
	s.enqueue(a)
	s.enqueue(b)
	var tags []byte
	buf := make([]byte, 0, 1+transport.StreamHeaderSize)
	for {
		_, payload, ok := s.nextChunk(buf)
		if !ok {
			break
		}
		tags = append(tags, payload[0])
	}
	if string(tags) != "ababab" {
		t.Fatalf("chunk interleaving %q, want fair round-robin \"ababab\"", tags)
	}
}

// TestSchedResetConnRewinds: a reconnect must rewind partially sent
// streams to offset zero under a fresh window, so the new connection's
// reassembler sees every stream from its first byte.
func TestSchedResetConnRewinds(t *testing.T) {
	var drops atomic.Int64
	s := newStreamSched(schedCfg(), &drops)
	s.enqueue(make([]byte, 400))
	drain(s) // 250 sent, parked
	s.resetConn()
	st := s.stats()
	if st.QueuedBytes != 400 || st.CreditsOutstanding != 0 {
		t.Fatalf("post-reset stats %+v", st)
	}
	buf := make([]byte, 0, 1+transport.StreamHeaderSize)
	body, _, ok := s.nextChunk(buf)
	if !ok {
		t.Fatal("nothing to send after reset")
	}
	hdr, _, err := transport.ParseStreamHeader(body[1:])
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Offset != 0 {
		t.Fatalf("first chunk after reset at offset %d, want 0", hdr.Offset)
	}
}

// TestSchedChunksReassemble closes the loop: everything the scheduler
// emits feeds a Reassembler and must rebuild the original frames exactly.
func TestSchedChunksReassemble(t *testing.T) {
	cfg := schedCfg()
	var drops atomic.Int64
	s := newStreamSched(cfg, &drops)
	frames := [][]byte{
		bytes.Repeat([]byte{1}, 450),
		bytes.Repeat([]byte{2}, 99),
		bytes.Repeat([]byte{3}, 301),
	}
	for _, f := range frames {
		s.enqueue(f)
	}
	asm := transport.NewReassembler(cfg, 1<<20)
	var got [][]byte
	buf := make([]byte, 0, 1+transport.StreamHeaderSize)
	var consumed, granted int64 // cumulative, like a real receiver
	for {
		body, payload, ok := s.nextChunk(buf)
		if !ok {
			if consumed > granted {
				s.grant(0, consumed) // play the receiver: grant everything
				granted = consumed
				continue
			}
			break
		}
		s.chunkWritten()
		hdr, _, err := transport.ParseStreamHeader(body[1:])
		if err != nil {
			t.Fatal(err)
		}
		complete, err := asm.Add(hdr, payload)
		if err != nil {
			t.Fatal(err)
		}
		consumed += int64(len(payload))
		if complete != nil {
			got = append(got, complete)
		}
	}
	if len(got) != len(frames) {
		t.Fatalf("reassembled %d frames, want %d", len(got), len(frames))
	}
	for _, f := range frames {
		found := false
		for _, g := range got {
			if bytes.Equal(f, g) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("frame of %d bytes not reassembled intact", len(f))
		}
	}
}

// BenchmarkStreamSend measures the chunking hot path: enqueue a bulk
// frame, pull every chunk through the scheduler and feed the reassembler,
// with credits granted as consumed — the full streaming overhead minus the
// socket. CI runs this as a smoke test so chunking regressions fail
// loudly.
func BenchmarkStreamSend(b *testing.B) {
	for _, size := range []int{64 << 10, 1 << 20} {
		b.Run(sizeLabel(size), func(b *testing.B) {
			cfg := transport.StreamConfig{}
			cfg.Normalize()
			var drops atomic.Int64
			s := newStreamSched(cfg, &drops)
			asm := transport.NewReassembler(cfg, 64<<20)
			frame := make([]byte, size)
			buf := make([]byte, 0, 1+transport.StreamHeaderSize)
			var consumed int64
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.enqueue(frame)
				for {
					body, payload, ok := s.nextChunk(buf)
					if !ok {
						s.grant(0, consumed)
						continue
					}
					s.chunkWritten()
					hdr, _, err := transport.ParseStreamHeader(body[1:])
					if err != nil {
						b.Fatal(err)
					}
					consumed += int64(len(payload))
					complete, err := asm.Add(hdr, payload)
					if err != nil {
						b.Fatal(err)
					}
					if complete != nil {
						break
					}
				}
			}
		})
	}
}

func sizeLabel(n int) string {
	switch {
	case n >= 1<<20:
		return itoa(n>>20) + "MiB"
	case n >= 1<<10:
		return itoa(n>>10) + "KiB"
	default:
		return itoa(n) + "B"
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestSchedFinChunkSurvivesReconnect: a stream whose final chunk was
// dequeued but never confirmed written (the connection died mid-write)
// must be requeued by resetConn and retransmitted from offset zero —
// previously it was silently lost with no drop counted.
func TestSchedFinChunkSurvivesReconnect(t *testing.T) {
	var drops atomic.Int64
	s := newStreamSched(schedCfg(), &drops)
	s.enqueue(make([]byte, 50)) // single fin chunk
	buf := make([]byte, 0, 1+transport.StreamHeaderSize)
	if _, _, ok := s.nextChunk(buf); !ok {
		t.Fatal("nothing to send")
	}
	// No chunkWritten: the write failed. The stream must still be
	// accounted and survive the reconnect.
	if st := s.stats(); st.StreamsActive != 1 {
		t.Fatalf("un-acked fin chunk not tracked: %+v", st)
	}
	s.resetConn()
	if st := s.stats(); st.StreamsActive != 1 || st.QueuedBytes != 50 {
		t.Fatalf("fin-chunk stream lost across reconnect: %+v", st)
	}
	body, payload, ok := s.nextChunk(buf)
	if !ok {
		t.Fatal("stream not retransmitted after reconnect")
	}
	hdr, _, err := transport.ParseStreamHeader(body[1:])
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Offset != 0 || !hdr.Fin || len(payload) != 50 {
		t.Fatalf("retransmission hdr %+v payload %d, want full frame from 0", hdr, len(payload))
	}
	s.chunkWritten() // this time the wire cooperates
	if st := s.stats(); st.StreamsActive != 0 || drops.Load() != 0 {
		t.Fatalf("final stats %+v drops %d", st, drops.Load())
	}
	// A fin chunk that WAS confirmed written must not be requeued.
	s.enqueue(make([]byte, 50))
	if _, _, ok := s.nextChunk(buf); !ok {
		t.Fatal("nothing to send")
	}
	s.chunkWritten()
	s.resetConn()
	if st := s.stats(); st.StreamsActive != 0 {
		t.Fatalf("acked stream duplicated across reconnect: %+v", st)
	}
}

// TestSchedStaleEpochGrantIgnored: grants travel on the reverse-direction
// connection, which survives a data-connection reset — a grant carrying
// the dead connection's cumulative counter must not inflate the fresh
// window.
func TestSchedStaleEpochGrantIgnored(t *testing.T) {
	var drops atomic.Int64
	s := newStreamSched(schedCfg(), &drops)
	e1 := s.resetConn()
	s.enqueue(make([]byte, 400))
	if got := drain(s); len(got) != 3 {
		t.Fatalf("chunks %v", got)
	}
	// A huge grant from another epoch (in flight across the reconnect).
	s.grant(e1+7, 1<<40)
	if got := drain(s); len(got) != 0 {
		t.Fatalf("stale-epoch grant released chunks %v", got)
	}
	if st := s.stats(); st.CreditsOutstanding != 250 {
		t.Fatalf("stale-epoch grant corrupted the window: %+v", st)
	}
	// The current epoch's grant works.
	s.grant(e1, 250)
	if got := drain(s); len(got) != 2 || got[0]+got[1] != 150 {
		t.Fatalf("current-epoch grant: chunks %v, want the remaining 150", got)
	}
	// After another reconnect, the old epoch's grants are stale too.
	e2 := s.resetConn()
	if e2 == e1 {
		t.Fatal("epoch did not advance on reconnect")
	}
	drain(s) // spend the fresh window
	s.grant(e1, 1<<40)
	if got := drain(s); len(got) != 0 {
		t.Fatalf("previous-epoch grant released chunks %v", got)
	}
}

// TestPeerGrantMailboxCoalesces: the per-peer grant mailbox keeps only
// the newest cumulative grant (a queue slot could be dropped on overflow,
// deadlocking a fully parked sender), replaces it wholesale on a new
// connection epoch, and ignores stale regressions within an epoch.
func TestPeerGrantMailboxCoalesces(t *testing.T) {
	p := &peer{grantNotify: make(chan struct{}, 1)}
	if got := p.takeGrant(); got != nil {
		t.Fatalf("empty mailbox yielded %x", got)
	}
	p.setGrant(1, 100)
	p.setGrant(1, 250) // coalesces: only the newest counter matters
	body := p.takeGrant()
	if body == nil || body[0] != frameKindCredit {
		t.Fatalf("mailbox body %x", body)
	}
	if e := binary.BigEndian.Uint32(body[1:5]); e != 1 {
		t.Fatalf("epoch %d, want 1", e)
	}
	if c := binary.BigEndian.Uint64(body[5:]); c != 250 {
		t.Fatalf("consumed %d, want 250 (coalesced)", c)
	}
	if p.takeGrant() != nil {
		t.Fatal("mailbox not drained by takeGrant")
	}
	// Within an epoch the counter only grows: a higher value re-arms the
	// mailbox, a duplicate or regression does not.
	p.setGrant(1, 300)
	if p.takeGrant() == nil {
		t.Fatal("fresh grant lost")
	}
	p.setGrant(1, 200)
	if p.takeGrant() != nil {
		t.Fatal("regressed counter accepted within an epoch")
	}
	// A newer epoch replaces outright, even with a smaller counter.
	p.setGrant(2, 50)
	body = p.takeGrant()
	if body == nil || binary.BigEndian.Uint32(body[1:5]) != 2 ||
		binary.BigEndian.Uint64(body[5:]) != 50 {
		t.Fatalf("new-epoch grant body %x", body)
	}
	// An OLDER epoch must not clobber the slot: after a reconnect the old
	// connection's readLoop can linger on kernel-buffered chunks and its
	// late grants would otherwise destroy the new epoch's grant (which
	// the peer would then never re-receive while fully parked).
	p.setGrant(2, 90)
	p.setGrant(1, 1<<40)
	body = p.takeGrant()
	if body == nil || binary.BigEndian.Uint32(body[1:5]) != 2 ||
		binary.BigEndian.Uint64(body[5:]) != 90 {
		t.Fatalf("stale-epoch grant clobbered the mailbox: %x", body)
	}
}
