package tcp_test

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"leopard/internal/crypto"
	"leopard/internal/leopard"
	"leopard/internal/transport"
	"leopard/internal/transport/tcp"
	"leopard/internal/types"
)

// freeAddrs reserves n distinct localhost ports.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

// TestLeopardOverTCP runs a real 4-replica Leopard cluster over localhost
// TCP with Ed25519 signatures end to end: submit requests, watch every
// replica execute them.
func TestLeopardOverTCP(t *testing.T) {
	const n = 4
	q, err := types.NewQuorumParams(n)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := crypto.NewEd25519Suite(n, []byte("tcp-test"))
	if err != nil {
		t.Fatal(err)
	}
	addrs := freeAddrs(t, n)

	var executed [n]atomic.Int64
	runtimes := make([]*tcp.Runtime, n)
	nodes := make([]*leopard.Node, n)
	for i := 0; i < n; i++ {
		node, err := leopard.NewNode(leopard.Config{
			ID:            types.ReplicaID(i),
			Quorum:        q,
			Suite:         suite,
			DatablockSize: 10,
			BFTBlockSize:  2,
			BatchTimeout:  20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		idx := i
		node.SetExecutor(func(sn types.SeqNum, reqs []types.Request) {
			executed[idx].Add(int64(len(reqs)))
		})
		nodes[i] = node
		rt, err := tcp.New(tcp.Config{
			Self:         types.ReplicaID(i),
			Addrs:        addrs,
			Codec:        leopard.WireCodec{},
			TickInterval: 5 * time.Millisecond,
		}, node)
		if err != nil {
			t.Fatal(err)
		}
		runtimes[i] = rt
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for _, rt := range runtimes {
		rt := rt
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt.Run(ctx)
		}()
	}
	defer func() {
		cancel()
		for _, rt := range runtimes {
			rt.Stop()
		}
		wg.Wait()
	}()

	// Give listeners a moment, then submit 40 requests to replicas 2 and 3
	// (replica 1 leads view 1). One client per replica, each with a
	// contiguous seq stream: the nonce-aware mempool parks gapped seqs until
	// the gap fills, so a client must not stripe one stream across replicas.
	time.Sleep(200 * time.Millisecond)
	for i := 0; i < 40; i++ {
		target := 2 + i%2
		req := types.Request{ClientID: uint64(target), Seq: uint64(i / 2), Payload: []byte(fmt.Sprintf("req-%d", i))}
		node := nodes[target]
		if err := runtimes[target].Inject(func(now time.Duration, out transport.Sink) {
			node.SubmitRequest(now, req)
		}); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.After(15 * time.Second)
	for {
		done := true
		for i := range executed {
			if executed[i].Load() < 40 {
				done = false
			}
		}
		if done {
			break
		}
		select {
		case <-deadline:
			counts := make([]int64, n)
			for i := range executed {
				counts[i] = executed[i].Load()
			}
			t.Fatalf("timeout: executed counts %v, want all >= 40", counts)
		case <-time.After(50 * time.Millisecond):
		}
	}
}
