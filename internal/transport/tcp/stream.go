package tcp

import (
	"sync"
	"sync/atomic"

	"leopard/internal/metrics"
	"leopard/internal/obs"
	"leopard/internal/transport"
)

// streamSched is one peer's bulk-lane scheduler: it holds the bulk frames
// the node has emitted to that peer as streams, slices them into chunks in
// round-robin order across the active streams, and debits the peer's credit
// window per chunk. At zero credit it parks (nextChunk reports nothing to
// send) instead of dropping; the park budget bounds how much a peer that
// never grants credit can pin, with the oldest not-yet-started streams
// evicted beyond it.
//
// Locking: the apply loop enqueues, the read loop grants, the send loop
// consumes; all three synchronize on mu. notify is a 1-buffered wake-up
// channel: any state change that could unpark the send loop signals it, so
// the send loop can block on (stop | control | notify) without missing a
// transition.
type streamSched struct {
	mu     sync.Mutex
	cfg    transport.StreamConfig
	notify chan struct{}

	streams []*outStream
	// sending holds a stream whose final chunk has been handed to the
	// send loop but not yet confirmed written (chunkWritten). It is out
	// of the round-robin set, yet must survive a reconnect: resetConn
	// requeues it, so a fin chunk that dies with the connection is
	// retransmitted instead of silently lost.
	sending *outStream
	rr      int    // round-robin cursor over the active transmit set
	nextID  uint64 // per-connection stream id allocator

	// epoch numbers the peer connection. It increments on every
	// resetConn, is announced to the receiver in the hello, and stamps
	// every credit grant: the cumulative counters below are meaningless
	// across connections, so a grant still in flight from a dead
	// connection (grants travel on the reverse-direction connection,
	// which does not reset with this one) is discarded by its stale
	// epoch instead of inflating the fresh window.
	epoch uint32

	// Credit accounting is cumulative per connection epoch: sent counts
	// chunk payload bytes written, acked is the receiver's cumulative
	// consumed counter (CreditMsg), and the available credit is
	// CreditWindow - (sent - acked). Cumulative counters make grants
	// idempotent: a duplicated or reordered grant is healed by max().
	sent  int64
	acked int64

	queued int64 // unsent bulk payload bytes across all streams
	peak   int64
	evicts int64
	drops  *atomic.Int64 // the peer's drop counter (shared with control)

	// trace, when set, emits a flow-control lifecycle event (park or
	// eviction) for this peer; the runtime installs it when Config.Tracer
	// is set. Called with mu held — the tracer has its own lock and never
	// calls back into the scheduler.
	trace func(kind obs.EventKind, aux int64)
}

// outStream is one queued bulk frame mid-transmission.
type outStream struct {
	id    uint64
	frame []byte
	off   int
}

func newStreamSched(cfg transport.StreamConfig, drops *atomic.Int64) *streamSched {
	return &streamSched{cfg: cfg, notify: make(chan struct{}, 1), drops: drops}
}

// signal wakes the send loop; the 1-buffered channel coalesces bursts.
func (s *streamSched) signal() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// enqueue accepts one bulk frame as a new stream. If parking it would
// exceed the park budget, the oldest streams that have not started
// transmitting are evicted first; if the budget still cannot fit the frame
// (everything left is mid-transmission, or the frame alone exceeds the
// budget) the new frame is dropped. Every eviction/drop counts against the
// peer's drop counter.
func (s *streamSched) enqueue(frame []byte) {
	size := int64(len(frame))
	s.mu.Lock()
	if s.queued+size > s.cfg.ParkBudget {
		kept := s.streams[:0]
		for _, st := range s.streams {
			if s.queued+size > s.cfg.ParkBudget && st.off == 0 {
				s.queued -= int64(len(st.frame))
				s.evicts++
				s.drops.Add(1)
				if s.trace != nil {
					s.trace(obs.EvCreditEvicted, s.queued)
				}
				continue
			}
			kept = append(kept, st)
		}
		s.streams = kept
		s.rr = 0
	}
	if s.queued+size > s.cfg.ParkBudget {
		s.evicts++
		s.drops.Add(1)
		if s.trace != nil {
			s.trace(obs.EvCreditEvicted, s.queued)
		}
		s.mu.Unlock()
		return
	}
	s.queued += size
	if s.queued > s.peak {
		s.peak = s.queued
	}
	s.streams = append(s.streams, &outStream{id: s.nextID, frame: frame})
	s.nextID++
	if s.trace != nil && s.creditLocked() <= 0 {
		// The new stream parked immediately: zero credit at admission.
		s.trace(obs.EvCreditParked, s.queued)
	}
	s.mu.Unlock()
	s.signal()
}

// grant applies a receiver credit grant (cumulative consumed bytes) if it
// carries the current connection epoch; grants from a dead connection are
// discarded.
func (s *streamSched) grant(epoch uint32, consumed int64) {
	s.mu.Lock()
	if epoch == s.epoch && consumed > s.acked {
		s.acked = consumed
	}
	s.mu.Unlock()
	s.signal()
}

// credit returns the available window. Callers hold mu.
func (s *streamSched) creditLocked() int64 {
	return s.cfg.CreditWindow - (s.sent - s.acked)
}

// nextChunk picks the next chunk in round-robin order across the active
// transmit set (the first MaxStreams queued streams) and debits the credit
// window. It appends the wire body prefix (frame kind + stream header) to
// dst[:0] and returns it with the payload slice; ok is false when there is
// nothing sendable — no streams, or zero credit (parked).
func (s *streamSched) nextChunk(dst []byte) (body, payload []byte, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.streams) == 0 {
		return nil, nil, false
	}
	credit := s.creditLocked()
	if credit <= 0 {
		return nil, nil, false
	}
	active := len(s.streams)
	if active > s.cfg.MaxStreams {
		active = s.cfg.MaxStreams
	}
	if s.rr >= active {
		s.rr = 0
	}
	st := s.streams[s.rr]
	n := s.cfg.ChunkLen(len(st.frame), st.off)
	if int64(n) > credit {
		// Partial chunk: spend the remaining credit rather than stalling
		// until a full chunk's worth is granted.
		n = int(credit)
	}
	hdr := transport.StreamHeader{
		StreamID: st.id,
		Offset:   uint64(st.off),
		Total:    uint64(len(st.frame)),
		Fin:      st.off+n == len(st.frame),
	}
	payload = st.frame[st.off : st.off+n]
	st.off += n
	s.sent += int64(n)
	s.queued -= int64(n)
	if hdr.Fin {
		s.streams = append(s.streams[:s.rr], s.streams[s.rr+1:]...)
		// rr now points at the next stream (or wraps at the top). The
		// stream is parked in the sending slot until the send loop
		// confirms the fin chunk reached the wire; a write failure
		// abandons the chunk and resetConn requeues the stream.
		s.sending = st
	} else {
		s.rr++
	}
	body = append(dst[:0], frameKindChunk)
	body = transport.AppendStreamHeader(body, hdr)
	return body, payload, true
}

// chunkWritten confirms the last dequeued chunk reached the wire,
// releasing the stream held in the sending slot (no-op for non-fin
// chunks).
func (s *streamSched) chunkWritten() {
	s.mu.Lock()
	s.sending = nil
	s.mu.Unlock()
}

// resetConn rewinds the scheduler for a fresh connection and returns its
// new epoch: the receiver lost all partial-stream and credit state with
// the old one, so every stream — including one whose fin chunk was in
// flight when the connection died — retransmits from offset zero under a
// full window. Stream ids restart too; the new connection gets a new
// reassembler.
func (s *streamSched) resetConn() uint32 {
	s.mu.Lock()
	s.epoch++
	s.sent, s.acked = 0, 0
	if s.sending != nil {
		s.streams = append(s.streams, nil)
		copy(s.streams[1:], s.streams)
		s.streams[0] = s.sending
		s.sending = nil
	}
	s.rr = 0
	s.queued = 0
	for i, st := range s.streams {
		st.off = 0
		st.id = uint64(i)
		s.queued += int64(len(st.frame))
	}
	s.nextID = uint64(len(s.streams))
	if s.queued > s.peak {
		s.peak = s.queued
	}
	epoch := s.epoch
	s.mu.Unlock()
	s.signal()
	return epoch
}

// stats snapshots the scheduler's flow-control counters.
func (s *streamSched) stats() metrics.StreamStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.creditLocked()
	active := int64(len(s.streams))
	if s.sending != nil {
		active++
	}
	return metrics.StreamStats{
		QueuedBytes:        s.queued,
		PeakQueuedBytes:    s.peak,
		CreditsOutstanding: s.cfg.CreditWindow - out,
		StreamsActive:      active,
		Evictions:          s.evicts,
	}
}
