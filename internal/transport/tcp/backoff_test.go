package tcp

import (
	"math/rand"
	"testing"
	"time"

	"leopard/internal/transport"
)

// TestNextDialDelayLadder checks the exponential shape: intervals double
// from DialRetry up to the cap and stay there, and every delay is its
// interval stretched by less than half (the jitter bound).
func TestNextDialDelayLadder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cur := 500 * time.Millisecond
	max := 8 * time.Second
	wantCur := []time.Duration{
		500 * time.Millisecond, time.Second, 2 * time.Second,
		4 * time.Second, 8 * time.Second, 8 * time.Second, 8 * time.Second,
	}
	for i, want := range wantCur {
		if cur != want {
			t.Fatalf("step %d: interval %v, want %v", i, cur, want)
		}
		var delay time.Duration
		delay, cur = nextDialDelay(cur, max, rng)
		if delay < want || delay >= want+want/2 {
			t.Fatalf("step %d: delay %v outside [%v, %v)", i, delay, want, want+want/2)
		}
	}
}

// TestNextDialDelayDeterministic: identical seeds replay the identical
// jittered schedule, so seeded cluster runs reconnect reproducibly.
func TestNextDialDelayDeterministic(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		cur := 250 * time.Millisecond
		var out []time.Duration
		for i := 0; i < 12; i++ {
			var d time.Duration
			d, cur = nextDialDelay(cur, 4*time.Second, rng)
			out = append(out, d)
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: %v vs %v with identical seeds", i, a[i], b[i])
		}
	}
	c := schedule(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced the identical 12-step schedule; jitter inert?")
	}
}

// TestDialBackoffConfigDefaults pins the validate() defaults: max floors
// at DialRetry, the seed derives from Self when unset.
func TestDialBackoffConfigDefaults(t *testing.T) {
	cfg := Config{Self: 2, Addrs: []string{"a", "b", "c"}, Codec: nopCodec{}}
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.DialRetryMax != 8*time.Second {
		t.Errorf("DialRetryMax default %v, want 8s", cfg.DialRetryMax)
	}
	if cfg.DialSeed != 3 {
		t.Errorf("DialSeed default %d, want Self+1 = 3", cfg.DialSeed)
	}

	cfg = Config{Self: 0, Addrs: []string{"a"}, Codec: nopCodec{},
		DialRetry: 10 * time.Second, DialRetryMax: time.Second}
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.DialRetryMax != 10*time.Second {
		t.Errorf("DialRetryMax %v not floored at DialRetry 10s", cfg.DialRetryMax)
	}
}

type nopCodec struct{}

func (nopCodec) Encode(transport.Message) ([]byte, error) { return nil, nil }
func (nopCodec) Decode([]byte) (transport.Message, error) { return nil, nil }
