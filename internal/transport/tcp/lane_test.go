package tcp_test

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"leopard/internal/transport"
	"leopard/internal/transport/tcp"
	"leopard/internal/types"
)

// laneMsg is a sized, tagged message whose class selects its lane.
type laneMsg struct {
	tag   byte
	class transport.Class
	size  int
}

func (m *laneMsg) WireSize() int          { return m.size }
func (m *laneMsg) Class() transport.Class { return m.class }

// laneCodec round-trips laneMsg through 2-byte frames.
type laneCodec struct{}

func (laneCodec) Encode(msg transport.Message) ([]byte, error) {
	m, ok := msg.(*laneMsg)
	if !ok {
		return nil, fmt.Errorf("laneCodec: unexpected %T", msg)
	}
	return []byte{m.tag, byte(m.class)}, nil
}

func (laneCodec) Decode(buf []byte) (transport.Message, error) {
	if len(buf) != 2 {
		return nil, fmt.Errorf("laneCodec: bad frame")
	}
	return &laneMsg{tag: buf[0], class: transport.Class(buf[1])}, nil
}

// idleNode is a transport.Node that never emits on its own.
type idleNode struct{ id types.ReplicaID }

func (n *idleNode) ID() types.ReplicaID                 { return n.id }
func (n *idleNode) Start(time.Duration, transport.Sink) {}
func (n *idleNode) Tick(time.Duration, transport.Sink)  {}
func (n *idleNode) Deliver(time.Duration, types.ReplicaID, transport.Message, transport.Sink) {
}

// runLaneOrder enqueues two bulk envelopes and then one control envelope to
// an unreachable peer, brings the peer up, and returns the tags in the
// order they crossed the wire.
func runLaneOrder(t *testing.T, disableLanes bool) []byte {
	t.Helper()
	addrs := freeAddrs(t, 2)

	rt, err := tcp.New(tcp.Config{
		Self:         0,
		Addrs:        addrs,
		Codec:        laneCodec{},
		TickInterval: time.Hour, // no tick noise
		DialRetry:    10 * time.Millisecond,
		DisableLanes: disableLanes,
	}, &idleNode{id: 0})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rt.Run(ctx)
	}()
	defer func() {
		cancel()
		rt.Stop()
		wg.Wait()
	}()

	// Peer 1 is down: the send loop dequeues the first frame and spins in
	// dial retries, so everything enqueued next is demonstrably in-queue.
	err = rt.Inject(func(now time.Duration, out transport.Sink) {
		out.Send(transport.Unicast(1, &laneMsg{tag: 'A', class: transport.ClassDatablock}))
		out.Send(transport.Unicast(1, &laneMsg{tag: 'B', class: transport.ClassDatablock}))
		out.Send(transport.Unicast(1, &laneMsg{tag: 'C', class: transport.ClassVote}))
	})
	if err != nil {
		t.Fatal(err)
	}
	// Let the send loop commit to the first bulk frame and hit the dial
	// retry path before the peer appears.
	time.Sleep(50 * time.Millisecond)

	ln, err := net.Listen("tcp", addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ln.(*net.TCPListener).SetDeadline(time.Now().Add(5 * time.Second))
	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))

	var hello [8]byte // replica id + connection epoch
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		t.Fatalf("hello: %v", err)
	}
	if got := binary.BigEndian.Uint32(hello[:4]); got != 0 {
		t.Fatalf("hello from replica %d, want 0", got)
	}
	// Read wire frames ([len | kind | body]) until three messages have
	// crossed: whole frames decode directly, bulk frames arrive as stream
	// chunks and reassemble first.
	asm := transport.NewReassembler(transport.StreamConfig{}, 64<<20)
	var order []byte
	decodeTag := func(frame []byte) {
		msg, err := laneCodec{}.Decode(frame)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		order = append(order, msg.(*laneMsg).tag)
	}
	for len(order) < 3 {
		var hdr [5]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			t.Fatalf("frame %d header: %v", len(order), err)
		}
		body := make([]byte, binary.BigEndian.Uint32(hdr[:4])-1)
		if _, err := io.ReadFull(conn, body); err != nil {
			t.Fatalf("frame %d body: %v", len(order), err)
		}
		switch hdr[4] {
		case 0x00: // whole message
			decodeTag(body)
		case 0x01: // stream chunk
			sh, payload, err := transport.ParseStreamHeader(body)
			if err != nil {
				t.Fatalf("chunk header: %v", err)
			}
			complete, err := asm.Add(sh, payload)
			if err != nil {
				t.Fatalf("reassemble: %v", err)
			}
			if complete != nil {
				decodeTag(complete)
			}
		default:
			t.Fatalf("unexpected frame kind %#x", hdr[4])
		}
	}
	return order
}

// TestControlLaneOvertakesQueuedBulk is the lane-priority regression test:
// a control envelope enqueued after a large bulk envelope must depart
// before it — the strict control-over-bulk scheduler may not let queued
// datablocks head-of-line-block votes.
func TestControlLaneOvertakesQueuedBulk(t *testing.T) {
	order := runLaneOrder(t, false)
	pos := map[byte]int{}
	for i, tag := range order {
		pos[tag] = i
	}
	if len(pos) != 3 {
		t.Fatalf("wire order %q lost frames", order)
	}
	// The control frame C was enqueued after bulk B; with strict lane
	// priority it must cross the wire before B. (A may precede C if the
	// send loop had already committed A to the connection attempt.)
	if pos['C'] > pos['B'] {
		t.Fatalf("control did not overtake queued bulk: wire order %q", order)
	}
}

// TestDisableLanesKeepsFIFO pins the single-queue baseline: with lanes
// disabled the wire order is exactly the emission order, control waits
// behind bulk.
func TestDisableLanesKeepsFIFO(t *testing.T) {
	order := runLaneOrder(t, true)
	if string(order) != "ABC" {
		t.Fatalf("single-FIFO baseline reordered frames: %q", order)
	}
}
