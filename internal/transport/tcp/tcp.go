// Package tcp hosts an event-driven protocol node (transport.Node) over
// real TCP connections, for deployments and integration tests of the kind
// the paper ran on EC2. Frames are length-prefixed; each replica dials
// every peer and uses the dialed connection for sending, while accepted
// connections are receive-only, so no connection-ownership races exist.
//
// Outbound traffic is scheduled in two lanes per peer, mirroring the
// transport.Sink contract: the control lane (votes, proofs, proposals,
// view-change, checkpoint) is transmitted strictly ahead of the bulk lane
// (datablocks, retrieval transfers), so a queued multi-MiB datablock can
// never head-of-line-block the metadata consensus path. The bulk queue is
// bounded and drops on overflow — the protocol recovers via retrieval and
// the ready round — while control frames get a deeper queue sized for vote
// bursts.
//
// Peer identity is announced in a hello frame. The protocol layer's
// signatures authenticate everything consequential (votes, proposals,
// proofs); deployments that also need channel privacy should wrap the
// listener and dialer in TLS.
package tcp

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"leopard/internal/transport"
	"leopard/internal/types"
)

// Codec converts protocol messages to and from wire frames. It is an alias
// of transport.Codec, whose doc states the ownership contract: Decode may
// retain the frame (zero-copy decode), and this runtime honours that by
// reading every message into a fresh buffer (see readFrame) and never
// touching it after Decode.
type Codec = transport.Codec

// Config describes one replica's place in the cluster.
type Config struct {
	// Self is this replica's id; Addrs[Self] is the listen address.
	Self types.ReplicaID
	// Addrs maps every replica id to its host:port.
	Addrs []string
	// Codec encodes and decodes protocol messages.
	Codec Codec
	// TickInterval drives the node's timer handler (default 10ms).
	TickInterval time.Duration
	// DialRetry is the reconnect backoff (default 500ms).
	DialRetry time.Duration
	// MaxFrame bounds accepted frame sizes (default 64 MiB).
	MaxFrame int
	// ControlQueue is the per-peer control-lane queue depth (default
	// 4096 frames). Control frames are small; the depth is sized for vote
	// bursts at large n. Overflow drops the frame.
	ControlQueue int
	// BulkQueue is the per-peer bulk-lane queue depth (default 256
	// frames). Bulk frames are large, so the bound is what keeps a slow
	// peer from pinning unbounded datablock memory; overflow drops the
	// frame and the protocol recovers via retrieval.
	BulkQueue int
	// DisableLanes collapses outbound scheduling to a single FIFO (every
	// frame rides the bulk queue, sized ControlQueue+BulkQueue). This is
	// the pre-lane behaviour, kept as an A/B baseline for benchmarks.
	DisableLanes bool
}

func (c *Config) validate() error {
	if c.Codec == nil {
		return errors.New("tcp: missing codec")
	}
	if int(c.Self) >= len(c.Addrs) {
		return fmt.Errorf("tcp: self id %d outside address list of %d", c.Self, len(c.Addrs))
	}
	if c.TickInterval <= 0 {
		c.TickInterval = 10 * time.Millisecond
	}
	if c.DialRetry <= 0 {
		c.DialRetry = 500 * time.Millisecond
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = 64 << 20
	}
	if c.ControlQueue <= 0 {
		c.ControlQueue = 4096
	}
	if c.BulkQueue <= 0 {
		c.BulkQueue = 256
	}
	return nil
}

// event is one inbound message awaiting the apply loop.
type event struct {
	from types.ReplicaID
	msg  transport.Message
}

// Runtime hosts a node over TCP. Create with New, start with Run.
type Runtime struct {
	cfg  Config
	node transport.Node

	listener net.Listener
	events   chan event
	// local lets the process inject calls (e.g. client submissions) into
	// the apply loop, keeping the node single-threaded.
	local chan func(now time.Duration, out transport.Sink)

	peers []*peer

	start   time.Time
	stop    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup
}

// peer is one outbound connection with two lane queues. The apply loop is
// the only producer; the peer's sendLoop goroutine is the only consumer.
type peer struct {
	id   types.ReplicaID
	addr string
	// control carries LaneControl frames, transmitted strictly before
	// anything queued in bulk.
	control chan []byte
	// bulk carries LaneBulk frames; bounded, drops on overflow.
	bulk  chan []byte
	drops atomic.Int64
}

// New creates a runtime for node. Call Run to start serving.
func New(cfg Config, node transport.Node) (*Runtime, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := &Runtime{
		cfg:  cfg,
		node: node,
		// The event queue absorbs receive bursts from n-1 reader
		// goroutines feeding one apply loop; its size bounds memory, and
		// readers block (applying TCP backpressure) when it fills.
		events: make(chan event, 4096),
		local:  make(chan func(now time.Duration, out transport.Sink), 256),
		stop:   make(chan struct{}),
	}
	for id, addr := range cfg.Addrs {
		if types.ReplicaID(id) == cfg.Self {
			r.peers = append(r.peers, nil)
			continue
		}
		p := &peer{id: types.ReplicaID(id), addr: addr}
		if cfg.DisableLanes {
			// Single-FIFO baseline: everything rides one queue.
			p.bulk = make(chan []byte, cfg.ControlQueue+cfg.BulkQueue)
			p.control = nil
		} else {
			p.control = make(chan []byte, cfg.ControlQueue)
			p.bulk = make(chan []byte, cfg.BulkQueue)
		}
		r.peers = append(r.peers, p)
	}
	return r, nil
}

// Run listens, connects to peers and drives the node until ctx is
// cancelled or Stop is called.
func (r *Runtime) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", r.cfg.Addrs[r.cfg.Self])
	if err != nil {
		// Close r.stop so Done() fires and callers parked on an Inject
		// reply (the documented wait pattern) unblock.
		r.Stop()
		return fmt.Errorf("tcp: listen: %w", err)
	}
	r.listener = ln
	r.start = time.Now()

	for _, p := range r.peers {
		if p == nil {
			continue
		}
		p := p
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.sendLoop(p)
		}()
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.acceptLoop()
	}()

	err = r.applyLoop(ctx)
	r.Stop()
	return err
}

// Stop shuts the runtime down and waits for its goroutines.
func (r *Runtime) Stop() {
	r.stopped.Do(func() {
		close(r.stop)
		if r.listener != nil {
			r.listener.Close()
		}
	})
	r.wg.Wait()
}

// now returns the runtime-relative monotonic time handed to the node.
func (r *Runtime) now() time.Duration { return time.Since(r.start) }

// Done is closed when the runtime stops. Callers waiting on a reply from
// an Inject closure must select on it: a closure that was enqueued but not
// yet run when the runtime stopped will never execute.
func (r *Runtime) Done() <-chan struct{} { return r.stop }

// Drops returns the number of outbound frames dropped to peer id because a
// lane queue was full (diagnostics; zero for the self slot).
func (r *Runtime) Drops(id types.ReplicaID) int64 {
	if int(id) >= len(r.peers) || r.peers[id] == nil {
		return 0
	}
	return r.peers[id].drops.Load()
}

// Inject runs fn on the apply loop; fn may call into the node safely and
// push any resulting envelopes into the provided sink. Used for client
// submissions and for snapshotting node state (Stats, ExecutedTo) under
// the apply loop's serialization — the node is single-goroutine, so any
// off-loop read must go through here.
func (r *Runtime) Inject(fn func(now time.Duration, out transport.Sink)) error {
	select {
	case r.local <- fn:
		return nil
	case <-r.stop:
		return errors.New("tcp: runtime stopped")
	}
}

// applyLoop is the single goroutine that touches the node.
func (r *Runtime) applyLoop(ctx context.Context) error {
	sink := rtSink{r}
	r.node.Start(r.now(), sink)
	ticker := time.NewTicker(r.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-r.stop:
			return nil
		case ev := <-r.events:
			r.node.Deliver(r.now(), ev.from, ev.msg, sink)
		case fn := <-r.local:
			fn(r.now(), sink)
		case <-ticker.C:
			r.node.Tick(r.now(), sink)
		}
	}
}

// rtSink is the transport.Sink handed to the node: it encodes each pushed
// envelope once and routes the frame to the destination peers' lane queues.
type rtSink struct{ r *Runtime }

// Send implements transport.Sink.
func (s rtSink) Send(env transport.Envelope) { s.r.emit(env) }

// Broadcast implements transport.Sink.
func (s rtSink) Broadcast(msg transport.Message) {
	s.r.emit(transport.Envelope{Broadcast: true, Msg: msg})
}

// emit encodes and enqueues one outbound envelope onto its lane.
func (r *Runtime) emit(env transport.Envelope) {
	if env.Msg == nil {
		return
	}
	frame, err := r.cfg.Codec.Encode(env.Msg)
	if err != nil || len(frame) == 0 {
		// Unencodable (or empty-frame) message: drop, protocol will
		// recover. The empty check also protects sendLoop, whose nil
		// frame is the shutdown sentinel.
		return
	}
	lane := env.EffectiveLane()
	if env.Broadcast {
		for _, p := range r.peers {
			if p != nil {
				p.send(frame, lane)
			}
		}
		return
	}
	if int(env.To) < len(r.peers) {
		if p := r.peers[env.To]; p != nil {
			p.send(frame, lane)
		}
	}
}

// send enqueues a frame onto the peer's lane queue without blocking the
// apply loop; a full queue drops the frame.
func (p *peer) send(frame []byte, lane transport.Lane) {
	q := p.bulk
	if lane == transport.LaneControl && p.control != nil {
		q = p.control
	}
	select {
	case q <- frame:
	default:
		p.drops.Add(1)
	}
}

// next dequeues the peer's next outbound frame with strict lane priority:
// anything in the control queue goes first; bulk transmits only while the
// control queue is empty. A control frame enqueued while a bulk frame is
// on the wire therefore overtakes every still-queued bulk frame. Returns
// a nil frame when the runtime stops.
func (r *Runtime) next(p *peer) ([]byte, transport.Lane) {
	if p.control != nil {
		select {
		case frame := <-p.control:
			return frame, transport.LaneControl
		default:
		}
		select {
		case <-r.stop:
			return nil, transport.LaneAuto
		case frame := <-p.control:
			return frame, transport.LaneControl
		case frame := <-p.bulk:
			return frame, transport.LaneBulk
		}
	}
	select {
	case <-r.stop:
		return nil, transport.LaneAuto
	case frame := <-p.bulk:
		return frame, transport.LaneBulk
	}
}

// sendLoop dials the peer (with retry) and writes frames in lane order.
func (r *Runtime) sendLoop(p *peer) {
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	connect := func() net.Conn {
		for {
			select {
			case <-r.stop:
				return nil
			default:
			}
			c, err := net.DialTimeout("tcp", p.addr, 2*time.Second)
			if err == nil {
				if err := writeHello(c, r.cfg.Self); err == nil {
					return c
				}
				c.Close()
			}
			select {
			case <-r.stop:
				return nil
			case <-time.After(r.cfg.DialRetry):
			}
		}
	}
	// write transmits one frame, reconnecting as needed; false = stopping.
	write := func(frame []byte) bool {
		for {
			if conn == nil {
				conn = connect()
				if conn == nil {
					return false
				}
			}
			if err := writeFrame(conn, frame); err != nil {
				conn.Close()
				conn = nil
				continue // reconnect and resend this frame
			}
			return true
		}
	}
	for {
		frame, lane := r.next(p)
		if frame == nil {
			return
		}
		if lane == transport.LaneBulk && p.control != nil {
			// next()'s blocking select picks uniformly when both lanes are
			// ready, so a control frame may have been enqueued while we
			// were parked; strict priority means it transmits before the
			// bulk frame we just dequeued.
			for drained := false; !drained; {
				select {
				case c := <-p.control:
					if !write(c) {
						return
					}
				default:
					drained = true
				}
			}
		}
		if !write(frame) {
			return
		}
	}
}

// acceptLoop receives connections and spawns readers.
func (r *Runtime) acceptLoop() {
	for {
		conn, err := r.listener.Accept()
		if err != nil {
			return // listener closed
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer conn.Close()
			r.readLoop(conn)
		}()
	}
}

// readLoop validates the hello and forwards frames to the apply loop.
func (r *Runtime) readLoop(conn net.Conn) {
	from, err := readHello(conn)
	if err != nil || int(from) >= len(r.cfg.Addrs) || from == r.cfg.Self {
		return
	}
	for {
		frame, err := readFrame(conn, r.cfg.MaxFrame)
		if err != nil {
			return
		}
		msg, err := r.cfg.Codec.Decode(frame)
		if err != nil {
			return // protocol violation: drop the connection
		}
		select {
		case r.events <- event{from: from, msg: msg}:
		case <-r.stop:
			return
		}
	}
}

func writeHello(conn net.Conn, self types.ReplicaID) error {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], uint32(self))
	_, err := conn.Write(buf[:])
	return err
}

func readHello(conn net.Conn) (types.ReplicaID, error) {
	var buf [4]byte
	if _, err := io.ReadFull(conn, buf[:]); err != nil {
		return 0, err
	}
	return types.ReplicaID(binary.BigEndian.Uint32(buf[:])), nil
}

func writeFrame(conn net.Conn, frame []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(frame)
	return err
}

func readFrame(conn net.Conn, max int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	size := int(binary.BigEndian.Uint32(hdr[:]))
	if size > max {
		return nil, fmt.Errorf("tcp: frame of %d exceeds limit %d", size, max)
	}
	// One fresh allocation per frame, never reused: ownership transfers to
	// the codec's Decode, which is free to hand out sub-slices of it
	// (transport.Codec's zero-copy contract). Do not pool this buffer.
	frame := make([]byte, size)
	if _, err := io.ReadFull(conn, frame); err != nil {
		return nil, err
	}
	return frame, nil
}
