// Package tcp hosts an event-driven protocol node (transport.Node) over
// real TCP connections, for deployments and integration tests of the kind
// the paper ran on EC2. Frames are length-prefixed and kind-tagged; each
// replica dials every peer and uses the dialed connection for sending,
// while accepted connections are receive-only, so no connection-ownership
// races exist.
//
// Outbound traffic is scheduled in two lanes per peer, mirroring the
// transport.Sink contract: the control lane (votes, proofs, proposals,
// view-change, checkpoint) is transmitted strictly ahead of the bulk lane
// (datablocks, retrieval transfers), so a queued multi-MiB datablock can
// never head-of-line-block the metadata consensus path.
//
// The bulk lane streams: every bulk frame becomes a stream, large frames
// are split into fixed-size chunks (transport.StreamHeader), and the
// per-peer scheduler interleaves chunks fairly across the streams queued to
// that peer. Delivery of a control frame therefore waits at most one chunk,
// even mid-transfer. Instead of a bounded queue that drops on overflow, the
// bulk lane runs credit-based per-peer flow control: the receiver's read
// loop grants cumulative byte credits on the control lane (CreditMsg) as it
// consumes chunks, the sender debits its window per chunk and parks its
// streams at zero credit. A slow peer backpressures its sender instead of
// forcing drops; only when the sender's park budget fills are the oldest
// parked streams evicted (Config.Stream tunes all of this).
//
// Peer identity is announced in a hello frame. The protocol layer's
// signatures authenticate everything consequential (votes, proposals,
// proofs); deployments that also need channel privacy should wrap the
// listener and dialer in TLS.
package tcp

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"leopard/internal/metrics"
	"leopard/internal/obs"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// Codec converts protocol messages to and from wire frames. It is an alias
// of transport.Codec, whose doc states the ownership contract: Decode may
// retain the frame (zero-copy decode), and this runtime honours that by
// handing Decode only buffers it will never touch again — a fresh
// allocation per whole-message frame, and the reassembler's output buffer
// for streamed frames (chunk payloads are copied out of the read scratch
// buffer during reassembly, so the reassembled frame is fresh by
// construction).
type Codec = transport.Codec

// Wire frame kinds. Every frame after the hello is length-prefixed and
// starts with one of these tags.
const (
	// frameKindMsg is a whole codec frame (control lane, plus everything
	// in DisableLanes mode).
	frameKindMsg = 0x00
	// frameKindChunk is a bulk stream chunk: transport.StreamHeader
	// followed by payload bytes.
	frameKindChunk = 0x01
	// frameKindCredit is a flow-control grant (transport.CreditMsg): a
	// 4-byte connection epoch followed by an 8-byte cumulative count of
	// bulk payload bytes the sender of this frame has consumed from us on
	// that epoch's connection (both big-endian).
	frameKindCredit = 0x02
)

// Config describes one replica's place in the cluster.
type Config struct {
	// Self is this replica's id; Addrs[Self] is the listen address.
	Self types.ReplicaID
	// Addrs maps every replica id to its host:port.
	Addrs []string
	// Codec encodes and decodes protocol messages.
	Codec Codec
	// TickInterval drives the node's timer handler (default 10ms).
	TickInterval time.Duration
	// DialRetry is the initial reconnect backoff (default 500ms). Each
	// consecutive failure doubles the interval up to DialRetryMax, with
	// jitter added so replicas that lost the same peer at the same moment
	// do not retry in lockstep. A successful connection resets the ladder.
	DialRetry time.Duration
	// DialRetryMax caps the exponential reconnect backoff (default 8s,
	// floored at DialRetry).
	DialRetryMax time.Duration
	// DialSeed seeds the backoff jitter. Zero derives a seed from Self;
	// a fixed nonzero seed makes reconnect schedules reproducible.
	DialSeed int64
	// MaxFrame bounds accepted frame sizes, including reassembled stream
	// totals (default 64 MiB).
	MaxFrame int
	// ControlQueue is the per-peer control-lane queue depth (default
	// 4096 frames). Control frames are small; the depth is sized for vote
	// bursts at large n. Overflow drops the frame.
	ControlQueue int
	// BulkQueue is the per-peer queue depth used only by the DisableLanes
	// single-FIFO baseline (default 256 frames). With lanes enabled the
	// bulk lane has no frame queue: it streams under Stream's credit
	// window and park budget instead.
	BulkQueue int
	// Stream tunes bulk-lane chunking and credit-based flow control; zero
	// fields take the transport package defaults.
	Stream transport.StreamConfig
	// DisableLanes collapses outbound scheduling to a single FIFO (every
	// frame rides one bounded queue, sized ControlQueue+BulkQueue, no
	// streaming, drop on overflow). This is the pre-lane behaviour, kept
	// as an A/B baseline for benchmarks.
	DisableLanes bool
	// Tracer, when set, receives bulk-lane flow-control events (credit
	// parks, park-budget evictions) stamped with the runtime's relative
	// clock (time since Run). Event IDs carry the peer replica id.
	Tracer *obs.Tracer
}

func (c *Config) validate() error {
	if c.Codec == nil {
		return errors.New("tcp: missing codec")
	}
	if int(c.Self) >= len(c.Addrs) {
		return fmt.Errorf("tcp: self id %d outside address list of %d", c.Self, len(c.Addrs))
	}
	if c.TickInterval <= 0 {
		c.TickInterval = 10 * time.Millisecond
	}
	if c.DialRetry <= 0 {
		c.DialRetry = 500 * time.Millisecond
	}
	if c.DialRetryMax <= 0 {
		c.DialRetryMax = 8 * time.Second
	}
	if c.DialRetryMax < c.DialRetry {
		c.DialRetryMax = c.DialRetry
	}
	if c.DialSeed == 0 {
		c.DialSeed = int64(c.Self) + 1
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = 64 << 20
	}
	if c.ControlQueue <= 0 {
		c.ControlQueue = 4096
	}
	if c.BulkQueue <= 0 {
		c.BulkQueue = 256
	}
	c.Stream.Normalize()
	return nil
}

// event is one inbound message awaiting the apply loop.
type event struct {
	from types.ReplicaID
	msg  transport.Message
}

// Runtime hosts a node over TCP. Create with New, start with Run.
type Runtime struct {
	cfg  Config
	node transport.Node

	listener net.Listener
	events   chan event
	// local lets the process inject calls (e.g. client submissions) into
	// the apply loop, keeping the node single-threaded.
	local chan func(now time.Duration, out transport.Sink)

	peers []*peer

	start   time.Time
	stop    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup
}

// peer is one outbound connection. The apply loop is the only producer;
// the peer's sendLoop goroutine is the only consumer of the queues, while
// the read loop of the peer's inbound connection feeds credit grants into
// the scheduler.
type peer struct {
	id   types.ReplicaID
	addr string
	// control carries kind-prefixed control-lane wire bodies,
	// transmitted strictly before bulk chunks.
	control chan []byte
	// bulk is the DisableLanes single FIFO; nil with lanes enabled.
	bulk chan []byte
	// sched streams the bulk lane under credit flow control; nil in
	// DisableLanes mode.
	sched *streamSched
	drops atomic.Int64

	// The grant mailbox holds the newest credit grant owed to this peer.
	// It is a one-slot coalescing store rather than a queue entry:
	// grants are cumulative, so only the latest matters, and a mailbox
	// can never be lost to queue overflow — which would deadlock a
	// fully parked sender, since no further chunks arrive to trigger
	// another grant. The read loop fills it; the send loop drains it
	// with control-lane priority.
	grantMu     sync.Mutex
	grantEpoch  uint32
	grantVal    int64
	grantDirty  bool
	grantNotify chan struct{}
}

// setGrant records the newest cumulative grant for this peer. A newer
// connection epoch replaces the slot outright; within an epoch the
// counter only grows. An older epoch is discarded: after a reconnect the
// old connection's readLoop can linger, draining kernel-buffered chunks
// concurrently with the new one, and its late grants must not clobber
// the new epoch's — the peer would discard the stale epoch on arrival
// and, if fully parked, never receive another grant.
func (p *peer) setGrant(epoch uint32, consumed int64) {
	p.grantMu.Lock()
	newer := int32(epoch-p.grantEpoch) > 0 // wraparound-safe
	if newer || (epoch == p.grantEpoch && consumed > p.grantVal) {
		p.grantEpoch = epoch
		p.grantVal = consumed
		p.grantDirty = true
	}
	p.grantMu.Unlock()
	select {
	case p.grantNotify <- struct{}{}:
	default:
	}
}

// takeGrant drains the mailbox into a wire body, or returns nil.
func (p *peer) takeGrant() []byte {
	p.grantMu.Lock()
	defer p.grantMu.Unlock()
	if !p.grantDirty {
		return nil
	}
	p.grantDirty = false
	body := make([]byte, 1+4+8)
	body[0] = frameKindCredit
	binary.BigEndian.PutUint32(body[1:5], p.grantEpoch)
	binary.BigEndian.PutUint64(body[5:], uint64(p.grantVal))
	return body
}

// New creates a runtime for node. Call Run to start serving.
func New(cfg Config, node transport.Node) (*Runtime, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := &Runtime{
		cfg:  cfg,
		node: node,
		// The event queue absorbs receive bursts from n-1 reader
		// goroutines feeding one apply loop; its size bounds memory, and
		// readers block (applying TCP backpressure, which in turn stalls
		// credit grants) when it fills.
		events: make(chan event, 4096),
		local:  make(chan func(now time.Duration, out transport.Sink), 256),
		stop:   make(chan struct{}),
	}
	for id, addr := range cfg.Addrs {
		if types.ReplicaID(id) == cfg.Self {
			r.peers = append(r.peers, nil)
			continue
		}
		p := &peer{id: types.ReplicaID(id), addr: addr, grantNotify: make(chan struct{}, 1)}
		if cfg.DisableLanes {
			// Single-FIFO baseline: everything rides one queue.
			p.bulk = make(chan []byte, cfg.ControlQueue+cfg.BulkQueue)
		} else {
			p.control = make(chan []byte, cfg.ControlQueue)
			p.sched = newStreamSched(cfg.Stream, &p.drops)
			if cfg.Tracer != nil {
				pid := p.id
				p.sched.trace = func(kind obs.EventKind, aux int64) {
					cfg.Tracer.Emit(r.now(), kind, 0, uint64(pid), aux)
				}
			}
		}
		r.peers = append(r.peers, p)
	}
	return r, nil
}

// Run listens, connects to peers and drives the node until ctx is
// cancelled or Stop is called.
func (r *Runtime) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", r.cfg.Addrs[r.cfg.Self])
	if err != nil {
		// Close r.stop so Done() fires and callers parked on an Inject
		// reply (the documented wait pattern) unblock.
		r.Stop()
		return fmt.Errorf("tcp: listen: %w", err)
	}
	r.listener = ln
	r.start = time.Now()

	for _, p := range r.peers {
		if p == nil {
			continue
		}
		p := p
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.sendLoop(p)
		}()
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.acceptLoop()
	}()

	err = r.applyLoop(ctx)
	r.Stop()
	return err
}

// Stop shuts the runtime down and waits for its goroutines.
func (r *Runtime) Stop() {
	r.stopped.Do(func() {
		close(r.stop)
		if r.listener != nil {
			r.listener.Close()
		}
	})
	r.wg.Wait()
}

// now returns the runtime-relative monotonic time handed to the node.
func (r *Runtime) now() time.Duration { return time.Since(r.start) }

// Done is closed when the runtime stops. Callers waiting on a reply from
// an Inject closure must select on it: a closure that was enqueued but not
// yet run when the runtime stopped will never execute.
func (r *Runtime) Done() <-chan struct{} { return r.stop }

// Drops returns the number of outbound frames lost toward peer id
// (diagnostics; zero for the self slot): control-queue overflow, plus
// bulk-stream evictions when the park budget filled. Bulk frames are never
// dropped merely because a queue was momentarily full — they park under
// flow control — so a nonzero bulk component here means a peer stalled
// past the park budget.
func (r *Runtime) Drops(id types.ReplicaID) int64 {
	if int(id) >= len(r.peers) || r.peers[id] == nil {
		return 0
	}
	return r.peers[id].drops.Load()
}

// StreamStats returns the bulk-lane flow-control counters toward peer id
// (zero value for the self slot and in DisableLanes mode).
func (r *Runtime) StreamStats(id types.ReplicaID) metrics.StreamStats {
	if int(id) >= len(r.peers) || r.peers[id] == nil || r.peers[id].sched == nil {
		return metrics.StreamStats{}
	}
	return r.peers[id].sched.stats()
}

// StreamTotals aggregates StreamStats across all peers: total parked
// bytes, credits in flight and active streams, with the peak as the max
// over peers.
func (r *Runtime) StreamTotals() metrics.StreamStats {
	var total metrics.StreamStats
	for _, p := range r.peers {
		if p == nil || p.sched == nil {
			continue
		}
		total.Accumulate(p.sched.stats())
	}
	return total
}

// Inject runs fn on the apply loop; fn may call into the node safely and
// push any resulting envelopes into the provided sink. Used for client
// submissions and for snapshotting node state (Stats, ExecutedTo) under
// the apply loop's serialization — the node is single-goroutine, so any
// off-loop read must go through here.
func (r *Runtime) Inject(fn func(now time.Duration, out transport.Sink)) error {
	select {
	case r.local <- fn:
		return nil
	case <-r.stop:
		return errors.New("tcp: runtime stopped")
	}
}

// applyLoop is the single goroutine that touches the node.
func (r *Runtime) applyLoop(ctx context.Context) error {
	sink := rtSink{r}
	r.node.Start(r.now(), sink)
	ticker := time.NewTicker(r.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-r.stop:
			return nil
		case ev := <-r.events:
			r.node.Deliver(r.now(), ev.from, ev.msg, sink)
		case fn := <-r.local:
			fn(r.now(), sink)
		case <-ticker.C:
			r.node.Tick(r.now(), sink)
		}
	}
}

// rtSink is the transport.Sink handed to the node: it encodes each pushed
// envelope once and routes the frame to the destination peers' lanes.
type rtSink struct{ r *Runtime }

// Send implements transport.Sink.
func (s rtSink) Send(env transport.Envelope) { s.r.emit(env) }

// Broadcast implements transport.Sink.
func (s rtSink) Broadcast(msg transport.Message) {
	s.r.emit(transport.Envelope{Broadcast: true, Msg: msg})
}

// emit encodes and enqueues one outbound envelope onto its lane.
func (r *Runtime) emit(env transport.Envelope) {
	if env.Msg == nil {
		return
	}
	frame, err := r.cfg.Codec.Encode(env.Msg)
	if err != nil || len(frame) == 0 {
		// Unencodable (or empty-frame) message: drop, protocol will
		// recover.
		return
	}
	lane := env.EffectiveLane()
	var body []byte
	if lane != transport.LaneBulk || r.cfg.DisableLanes {
		// Whole-message wire body, shared read-only across the fan-out.
		body = append(make([]byte, 0, 1+len(frame)), frameKindMsg)
		body = append(body, frame...)
	}
	if env.Broadcast {
		for _, p := range r.peers {
			if p != nil {
				p.send(frame, body, lane)
			}
		}
		return
	}
	if int(env.To) < len(r.peers) {
		if p := r.peers[env.To]; p != nil {
			p.send(frame, body, lane)
		}
	}
}

// send routes one encoded frame onto the peer's lane without blocking the
// apply loop. Bulk frames become streams under flow control; control
// frames (and everything in DisableLanes mode) ride a bounded queue whose
// overflow drops the frame.
func (p *peer) send(frame, body []byte, lane transport.Lane) {
	if p.sched != nil && lane == transport.LaneBulk {
		p.sched.enqueue(frame)
		return
	}
	q := p.bulk
	if lane == transport.LaneControl && p.control != nil {
		q = p.control
	}
	select {
	case q <- body:
	default:
		p.drops.Add(1)
	}
}

// sendCredit posts a flow-control grant to peer id's mailbox: the
// cumulative consumed-bytes counter of the inbound connection with the
// given epoch. The send loop transmits it with control-lane priority.
func (r *Runtime) sendCredit(id types.ReplicaID, epoch uint32, consumed int64) {
	if int(id) >= len(r.peers) || r.peers[id] == nil {
		return
	}
	r.peers[id].setGrant(epoch, consumed)
}

// applyCredit feeds a received grant into the scheduler for peer id.
func (r *Runtime) applyCredit(id types.ReplicaID, epoch uint32, consumed int64) {
	if int(id) >= len(r.peers) || r.peers[id] == nil || r.peers[id].sched == nil {
		return
	}
	r.peers[id].sched.grant(epoch, consumed)
}

// next blocks until the peer has something to transmit, with strict lane
// priority: a pending credit grant and anything in the control queue go
// first; the bulk scheduler is consulted only while those are empty, and
// hands out one chunk at a time, so a control frame enqueued mid-stream
// waits at most one chunk write. Parked bulk (zero credit) does not
// busy-wait: the send loop sleeps until a credit grant or a new stream
// signals the scheduler. Returns ok=false when the runtime stops.
func (r *Runtime) next(p *peer, hdrBuf []byte) (msg, chunkBody, chunkPayload []byte, ok bool) {
	for {
		if body := p.takeGrant(); body != nil {
			return body, nil, nil, true
		}
		select {
		case f := <-p.control:
			return f, nil, nil, true
		default:
		}
		if p.sched == nil {
			// DisableLanes: single FIFO.
			select {
			case <-r.stop:
				return nil, nil, nil, false
			case f := <-p.bulk:
				return f, nil, nil, true
			case <-p.grantNotify:
			}
			continue
		}
		if body, payload, ok := p.sched.nextChunk(hdrBuf); ok {
			return nil, body, payload, true
		}
		select {
		case <-r.stop:
			return nil, nil, nil, false
		case f := <-p.control:
			return f, nil, nil, true
		case <-p.sched.notify:
		case <-p.grantNotify:
		}
	}
}

// nextDialDelay computes one step of the jittered exponential dial
// backoff: the returned delay is cur stretched by up to half of itself
// (the jitter that staggers replicas retrying a dead peer in unison),
// and next is the doubled interval capped at max.
func nextDialDelay(cur, max time.Duration, rng *rand.Rand) (delay, next time.Duration) {
	delay = cur
	if half := cur / 2; half > 0 {
		delay += time.Duration(rng.Int63n(int64(half)))
	}
	next = 2 * cur
	if next > max {
		next = max
	}
	return delay, next
}

// sendLoop dials the peer (with retry) and writes wire frames in lane
// order. On reconnect the stream scheduler is rewound (resetConn, which
// also advances the connection epoch announced in the hello): the new
// connection's receiver has a fresh reassembler and a fresh credit
// window, so partially sent streams — including one whose fin chunk died
// with the old connection — restart from offset zero, while an
// interrupted control frame is retransmitted as-is.
func (r *Runtime) sendLoop(p *peer) {
	var conn net.Conn
	var pending []byte // control frame to retransmit after a reconnect
	hdrBuf := make([]byte, 0, 1+transport.StreamHeaderSize)
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	// Per-peer jitter stream: mixing the peer id into the seed keeps the
	// n-1 send loops of one replica off each other's schedule too.
	rng := rand.New(rand.NewSource(r.cfg.DialSeed*31 + int64(p.id)))
	connect := func() net.Conn {
		// Each connect starts the ladder at DialRetry: a successful hello
		// returns from here, so the next outage begins fresh.
		cur := r.cfg.DialRetry
		for {
			select {
			case <-r.stop:
				return nil
			default:
			}
			c, err := net.DialTimeout("tcp", p.addr, 2*time.Second)
			if err == nil {
				// Rewind the scheduler before the hello so the epoch the
				// hello announces is the one this connection's grants
				// must carry.
				var epoch uint32
				if p.sched != nil {
					epoch = p.sched.resetConn()
				}
				if err := writeHello(c, r.cfg.Self, epoch); err == nil {
					return c
				}
				c.Close()
			}
			var delay time.Duration
			delay, cur = nextDialDelay(cur, r.cfg.DialRetryMax, rng)
			select {
			case <-r.stop:
				return nil
			case <-time.After(delay):
			}
		}
	}
	for {
		if conn == nil {
			conn = connect()
			if conn == nil {
				return
			}
		}
		if pending != nil {
			if err := writeWireFrame(conn, pending, nil); err != nil {
				conn.Close()
				conn = nil
				continue
			}
			pending = nil
		}
		msg, chunkBody, chunkPayload, ok := r.next(p, hdrBuf)
		if !ok {
			return
		}
		var err error
		if msg != nil {
			err = writeWireFrame(conn, msg, nil)
			if err != nil {
				pending = msg // resend the control frame on the new conn
			}
		} else {
			err = writeWireFrame(conn, chunkBody, chunkPayload)
			if err == nil {
				p.sched.chunkWritten()
			}
			// A failed chunk is abandoned: resetConn rewinds its stream,
			// including a fin chunk's stream parked in the sending slot.
		}
		if err != nil {
			conn.Close()
			conn = nil
		}
	}
}

// acceptLoop receives connections and spawns readers.
func (r *Runtime) acceptLoop() {
	for {
		conn, err := r.listener.Accept()
		if err != nil {
			return // listener closed
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer conn.Close()
			r.readLoop(conn)
		}()
	}
}

// readLoop validates the hello and forwards frames to the apply loop. It
// owns the connection's stream reassembler and the receive half of flow
// control: consumed chunk bytes accumulate into cumulative credit grants
// flushed at the grant threshold. Any stream-protocol violation (malformed
// header, overlapping offsets, oversized totals, too many streams) drops
// the connection — loud failure, never resynchronization.
func (r *Runtime) readLoop(conn net.Conn) {
	from, epoch, err := readHello(conn)
	if err != nil || int(from) >= len(r.cfg.Addrs) || from == r.cfg.Self {
		return
	}
	asm := transport.NewReassembler(r.cfg.Stream, r.cfg.MaxFrame)
	var scratch []byte // chunk read buffer, reused (payloads are copied)
	var consumed, granted int64
	deliver := func(frame []byte) bool {
		msg, err := r.cfg.Codec.Decode(frame)
		if err != nil {
			return false // protocol violation: drop the connection
		}
		select {
		case r.events <- event{from: from, msg: msg}:
			return true
		case <-r.stop:
			return false
		}
	}
	for {
		kind, frame, err := readWireFrame(conn, r.cfg.MaxFrame, &scratch)
		if err != nil {
			return
		}
		switch kind {
		case frameKindMsg:
			if !deliver(frame) {
				return
			}
		case frameKindChunk:
			hdr, payload, err := transport.ParseStreamHeader(frame)
			if err != nil {
				return
			}
			complete, err := asm.Add(hdr, payload)
			if err != nil {
				return
			}
			if complete != nil && !deliver(complete) {
				return
			}
			// Credit the payload at receipt: the window then bounds the
			// bytes parked in partial streams plus the wire, and a stream
			// larger than the window still completes. When the apply loop
			// stalls, the events queue fills, this loop blocks in deliver,
			// grants stop, and the sender parks — backpressure end to end.
			consumed += int64(len(payload))
			if consumed-granted >= r.cfg.Stream.GrantThreshold() {
				r.sendCredit(from, epoch, consumed)
				granted = consumed
			}
		case frameKindCredit:
			if len(frame) != 12 {
				return
			}
			r.applyCredit(from,
				binary.BigEndian.Uint32(frame[:4]),
				int64(binary.BigEndian.Uint64(frame[4:])))
		default:
			return // unknown frame kind: protocol violation
		}
	}
}

// writeHello announces the dialer's replica id and the connection epoch
// its credit grants must carry (see streamSched.epoch).
func writeHello(conn net.Conn, self types.ReplicaID, epoch uint32) error {
	var buf [8]byte
	binary.BigEndian.PutUint32(buf[:4], uint32(self))
	binary.BigEndian.PutUint32(buf[4:], epoch)
	_, err := conn.Write(buf[:])
	return err
}

func readHello(conn net.Conn) (types.ReplicaID, uint32, error) {
	var buf [8]byte
	if _, err := io.ReadFull(conn, buf[:]); err != nil {
		return 0, 0, err
	}
	return types.ReplicaID(binary.BigEndian.Uint32(buf[:4])),
		binary.BigEndian.Uint32(buf[4:]), nil
}

// writeWireFrame writes one frame: 4-byte big-endian length of
// body+payload, then body (which starts with the frame kind), then the
// optional payload. Small bodies (the chunk kind+header prefix, credit
// grants, little control frames) are coalesced with the length prefix
// into one write; large bodies — a whole-message frame can be megabytes —
// are written in place, never copied.
func writeWireFrame(conn net.Conn, body, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)+len(payload)))
	if len(body) <= 512 {
		head := make([]byte, 0, 4+len(body))
		head = append(head, hdr[:]...)
		head = append(head, body...)
		if _, err := conn.Write(head); err != nil {
			return err
		}
	} else {
		if _, err := conn.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := conn.Write(body); err != nil {
			return err
		}
	}
	if len(payload) > 0 {
		if _, err := conn.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readWireFrame reads one frame and returns its kind and the bytes after
// the kind tag. Whole-message frames (frameKindMsg) are read into a fresh
// allocation whose ownership transfers to the codec's Decode (the
// transport.Codec zero-copy contract — do not pool those). Chunk frames
// are read into *scratch, which is reused across frames: their payloads
// are copied into the reassembler, never retained.
func readWireFrame(conn net.Conn, max int, scratch *[]byte) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return 0, nil, err
	}
	size := int(binary.BigEndian.Uint32(hdr[:4]))
	if size > max {
		return 0, nil, fmt.Errorf("tcp: frame of %d exceeds limit %d", size, max)
	}
	if size < 1 {
		return 0, nil, errors.New("tcp: empty frame")
	}
	kind := hdr[4]
	size-- // remaining body after the kind tag
	var buf []byte
	if kind == frameKindChunk {
		if cap(*scratch) < size {
			*scratch = make([]byte, size)
		}
		buf = (*scratch)[:size]
	} else {
		buf = make([]byte, size)
	}
	if _, err := io.ReadFull(conn, buf); err != nil {
		return 0, nil, err
	}
	return kind, buf, nil
}
