// Package tcp hosts an event-driven protocol node (transport.Node) over
// real TCP connections, for deployments and integration tests of the kind
// the paper ran on EC2. Frames are length-prefixed; each replica dials
// every peer and uses the dialed connection for sending, while accepted
// connections are receive-only, so no connection-ownership races exist.
//
// Peer identity is announced in a hello frame. The protocol layer's
// signatures authenticate everything consequential (votes, proposals,
// proofs); deployments that also need channel privacy should wrap the
// listener and dialer in TLS.
package tcp

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"leopard/internal/transport"
	"leopard/internal/types"
)

// Codec converts protocol messages to and from wire frames. It is an alias
// of transport.Codec, whose doc states the ownership contract: Decode may
// retain the frame (zero-copy decode), and this runtime honours that by
// reading every message into a fresh buffer (see readFrame) and never
// touching it after Decode.
type Codec = transport.Codec

// Config describes one replica's place in the cluster.
type Config struct {
	// Self is this replica's id; Addrs[Self] is the listen address.
	Self types.ReplicaID
	// Addrs maps every replica id to its host:port.
	Addrs []string
	// Codec encodes and decodes protocol messages.
	Codec Codec
	// TickInterval drives the node's timer handler (default 10ms).
	TickInterval time.Duration
	// DialRetry is the reconnect backoff (default 500ms).
	DialRetry time.Duration
	// MaxFrame bounds accepted frame sizes (default 64 MiB).
	MaxFrame int
}

func (c *Config) validate() error {
	if c.Codec == nil {
		return errors.New("tcp: missing codec")
	}
	if int(c.Self) >= len(c.Addrs) {
		return fmt.Errorf("tcp: self id %d outside address list of %d", c.Self, len(c.Addrs))
	}
	if c.TickInterval <= 0 {
		c.TickInterval = 10 * time.Millisecond
	}
	if c.DialRetry <= 0 {
		c.DialRetry = 500 * time.Millisecond
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = 64 << 20
	}
	return nil
}

// event is one inbound message awaiting the apply loop.
type event struct {
	from types.ReplicaID
	msg  transport.Message
}

// Runtime hosts a node over TCP. Create with New, start with Run.
type Runtime struct {
	cfg  Config
	node transport.Node

	listener net.Listener
	events   chan event
	// local lets the process inject calls (e.g. client submissions) into
	// the apply loop, keeping the node single-threaded.
	local chan func(now time.Duration) []transport.Envelope

	mu    sync.Mutex
	peers []*peer

	start   time.Time
	stop    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup
}

// peer is one outbound connection with a send queue.
type peer struct {
	id    types.ReplicaID
	addr  string
	queue chan []byte // buffered: absorbs bursts; Send drops when full
	drops int64
}

// New creates a runtime for node. Call Run to start serving.
func New(cfg Config, node transport.Node) (*Runtime, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := &Runtime{
		cfg:  cfg,
		node: node,
		// The event queue absorbs receive bursts from n-1 reader
		// goroutines feeding one apply loop; its size bounds memory, and
		// readers block (applying TCP backpressure) when it fills.
		events: make(chan event, 4096),
		local:  make(chan func(now time.Duration) []transport.Envelope, 256),
		stop:   make(chan struct{}),
	}
	for id, addr := range cfg.Addrs {
		if types.ReplicaID(id) == cfg.Self {
			r.peers = append(r.peers, nil)
			continue
		}
		r.peers = append(r.peers, &peer{
			id:   types.ReplicaID(id),
			addr: addr,
			// Per-peer send queue: sized to ride out transient stalls
			// without blocking the apply loop; overflow drops the frame
			// (the protocol recovers via retrieval / view change).
			queue: make(chan []byte, 1024),
		})
	}
	return r, nil
}

// Run listens, connects to peers and drives the node until ctx is
// cancelled or Stop is called.
func (r *Runtime) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", r.cfg.Addrs[r.cfg.Self])
	if err != nil {
		return fmt.Errorf("tcp: listen: %w", err)
	}
	r.listener = ln
	r.start = time.Now()

	for _, p := range r.peers {
		if p == nil {
			continue
		}
		p := p
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.sendLoop(p)
		}()
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.acceptLoop()
	}()

	err = r.applyLoop(ctx)
	r.Stop()
	return err
}

// Stop shuts the runtime down and waits for its goroutines.
func (r *Runtime) Stop() {
	r.stopped.Do(func() {
		close(r.stop)
		if r.listener != nil {
			r.listener.Close()
		}
	})
	r.wg.Wait()
}

// now returns the runtime-relative monotonic time handed to the node.
func (r *Runtime) now() time.Duration { return time.Since(r.start) }

// Inject runs fn on the apply loop; fn may call into the node safely and
// return envelopes to send. Used for client submissions.
func (r *Runtime) Inject(fn func(now time.Duration) []transport.Envelope) error {
	select {
	case r.local <- fn:
		return nil
	case <-r.stop:
		return errors.New("tcp: runtime stopped")
	}
}

// applyLoop is the single goroutine that touches the node.
func (r *Runtime) applyLoop(ctx context.Context) error {
	outs := r.node.Start(r.now())
	r.dispatch(outs)
	ticker := time.NewTicker(r.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-r.stop:
			return nil
		case ev := <-r.events:
			r.dispatch(r.node.Deliver(r.now(), ev.from, ev.msg))
		case fn := <-r.local:
			r.dispatch(fn(r.now()))
		case <-ticker.C:
			r.dispatch(r.node.Tick(r.now()))
		}
	}
}

// dispatch encodes and queues outbound envelopes.
func (r *Runtime) dispatch(outs []transport.Envelope) {
	for _, env := range outs {
		if env.Msg == nil {
			continue
		}
		frame, err := r.cfg.Codec.Encode(env.Msg)
		if err != nil {
			continue // unencodable message: drop, protocol will recover
		}
		if env.Broadcast {
			for _, p := range r.peers {
				if p != nil {
					p.send(frame)
				}
			}
			continue
		}
		if int(env.To) < len(r.peers) {
			if p := r.peers[env.To]; p != nil {
				p.send(frame)
			}
		}
	}
}

func (p *peer) send(frame []byte) {
	select {
	case p.queue <- frame:
	default:
		p.drops++
	}
}

// sendLoop dials the peer (with retry) and writes queued frames.
func (r *Runtime) sendLoop(p *peer) {
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	connect := func() net.Conn {
		for {
			select {
			case <-r.stop:
				return nil
			default:
			}
			c, err := net.DialTimeout("tcp", p.addr, 2*time.Second)
			if err == nil {
				if err := writeHello(c, r.cfg.Self); err == nil {
					return c
				}
				c.Close()
			}
			select {
			case <-r.stop:
				return nil
			case <-time.After(r.cfg.DialRetry):
			}
		}
	}
	for {
		select {
		case <-r.stop:
			return
		case frame := <-p.queue:
			for {
				if conn == nil {
					conn = connect()
					if conn == nil {
						return
					}
				}
				if err := writeFrame(conn, frame); err != nil {
					conn.Close()
					conn = nil
					continue // reconnect and resend this frame
				}
				break
			}
		}
	}
}

// acceptLoop receives connections and spawns readers.
func (r *Runtime) acceptLoop() {
	for {
		conn, err := r.listener.Accept()
		if err != nil {
			return // listener closed
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer conn.Close()
			r.readLoop(conn)
		}()
	}
}

// readLoop validates the hello and forwards frames to the apply loop.
func (r *Runtime) readLoop(conn net.Conn) {
	from, err := readHello(conn)
	if err != nil || int(from) >= len(r.cfg.Addrs) || from == r.cfg.Self {
		return
	}
	for {
		frame, err := readFrame(conn, r.cfg.MaxFrame)
		if err != nil {
			return
		}
		msg, err := r.cfg.Codec.Decode(frame)
		if err != nil {
			return // protocol violation: drop the connection
		}
		select {
		case r.events <- event{from: from, msg: msg}:
		case <-r.stop:
			return
		}
	}
}

func writeHello(conn net.Conn, self types.ReplicaID) error {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], uint32(self))
	_, err := conn.Write(buf[:])
	return err
}

func readHello(conn net.Conn) (types.ReplicaID, error) {
	var buf [4]byte
	if _, err := io.ReadFull(conn, buf[:]); err != nil {
		return 0, err
	}
	return types.ReplicaID(binary.BigEndian.Uint32(buf[:])), nil
}

func writeFrame(conn net.Conn, frame []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(frame)
	return err
}

func readFrame(conn net.Conn, max int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	size := int(binary.BigEndian.Uint32(hdr[:]))
	if size > max {
		return nil, fmt.Errorf("tcp: frame of %d exceeds limit %d", size, max)
	}
	// One fresh allocation per frame, never reused: ownership transfers to
	// the codec's Decode, which is free to hand out sub-slices of it
	// (transport.Codec's zero-copy contract). Do not pool this buffer.
	frame := make([]byte, size)
	if _, err := io.ReadFull(conn, frame); err != nil {
		return nil, err
	}
	return frame, nil
}
