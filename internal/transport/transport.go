// Package transport defines the message-passing abstractions shared by the
// network simulator (internal/simnet) and the real TCP transport.
//
// Protocol nodes are event-driven state machines driven through a
// push-based outbound API: the transport hands every event handler a Sink,
// and the node emits its outbound envelopes into it as it processes the
// event. This replaces the older pull-style API in which every handler
// returned a []Envelope slice — the push model eliminates the per-event
// slice churn, lets a transport start transmitting the first envelope
// before the handler finishes, and gives the transport an explicit
// scheduling signal per envelope (its Lane) instead of one undifferentiated
// queue.
//
// # Sink contract
//
// A Sink accepts envelopes in the order the node emits them. Control-lane
// delivery preserves that order per (sender, receiver): the protocol relies
// on per-pair FIFO for the metadata consensus path. Bulk-lane envelopes are
// streamed (see "Bulk streaming" below): each envelope arrives intact and
// chunks of one envelope stay ordered, but two bulk envelopes to the same
// peer may complete out of emission order because their streams interleave
// on the wire — bulk consumers must be (and in this codebase are)
// order-independent, addressing payloads by digest.
//
// Send never blocks the calling node for an unbounded time and never
// reports failure. A transport under bulk pressure parks envelopes under
// credit-based per-peer flow control (StreamConfig) rather than dropping
// them; only when a peer stops granting credit for long enough that the
// park budget fills are the oldest parked envelopes evicted — and in the
// extreme control drops too (its queues are deep, but a long-unreachable
// peer can fill them). The protocol must therefore still treat every send
// as best-effort and recover evicted traffic through its own timers
// (retrieval, re-query, view change); flow control makes that recovery
// path rare instead of routine. The Sink passed to a handler is only valid
// for the duration of that call; nodes must not retain it.
//
// # Bulk streaming and flow control
//
// Large bulk envelopes are split into fixed-size stream chunks
// (StreamHeader: stream id, offset, total, fin) and interleaved fairly
// across the streams queued to one peer, so a newly emitted bulk envelope
// starts flowing without waiting for megabytes of earlier bulk to finish.
// Receivers reassemble chunks (Reassembler) before decoding and grant
// byte credits back on the control lane (CreditMsg) as they consume;
// senders debit their per-peer credit window per chunk and park at zero
// credit. StreamConfig holds the shared policy — chunk size, split
// threshold, credit window, park budget, per-peer stream cap — used
// identically by the TCP runtime and the simulator's credit-based bulk
// model, which is what keeps the simulated chunk schedule faithful to the
// real one.
//
// # Lanes
//
// Every envelope travels in one of two outbound lanes. LaneControl carries
// the metadata consensus path — votes, proofs, view-change, checkpoint and
// other small messages whose latency bounds agreement progress. LaneBulk
// carries datablock dissemination and retrieval transfers — the large
// payloads whose throughput the paper's design offloads from the critical
// path. Transports schedule LaneControl strictly ahead of LaneBulk so a
// multi-MiB datablock transfer can never head-of-line-block a 100-byte
// vote; this is the transport-level mirror of Leopard's separation of
// metadata consensus from data dissemination. The lane is derived from the
// message class (LaneFor) unless the envelope overrides it.
//
// # Determinism
//
// Simulated transports must be deterministic: the same seed and the same
// call sequence yield byte-identical runs. To keep that property, nodes
// must emit into the Sink deterministically (no map-iteration order, no
// wall-clock reads), and deterministic transports process the pushed
// envelopes strictly in emission order. The TCP runtime is free to
// interleave lanes nondeterministically — real networks do — but must still
// preserve per-lane FIFO per peer.
//
// # Migration note for external Node implementors
//
// Before this API, transport.Node handlers returned []Envelope. To migrate
// an implementation: add the trailing Sink parameter to Start/Deliver/Tick,
// replace `out = append(out, env)` with `out.Send(env)` and
// `out = append(out, transport.Broadcast(msg))` with `out.Broadcast(msg)`,
// and delete the return value. Drivers that previously collected the
// returned slice can pass a *SliceSink and read its Envelopes field.
package transport

import (
	"time"

	"leopard/internal/types"
)

// Class labels a message for bandwidth accounting (Table III in the paper
// breaks leader/non-leader utilization down by these components).
type Class uint8

// Message classes.
const (
	ClassRequest Class = iota + 1 // client request submissions
	ClassDatablock
	ClassBFTblock
	ClassVote  // threshold-signature shares (any round, incl. ready)
	ClassProof // combined notarization/confirmation proofs
	ClassRetrieval
	ClassCheckpoint
	ClassViewChange
	ClassAck // acknowledgments to clients
	ClassMisc
	// ClassState is checkpoint-anchored state transfer: requests from and
	// responses to replicas recovering their executed log from peers.
	ClassState
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassRequest:
		return "request"
	case ClassDatablock:
		return "datablock"
	case ClassBFTblock:
		return "bftblock"
	case ClassVote:
		return "vote"
	case ClassProof:
		return "proof"
	case ClassRetrieval:
		return "retrieval"
	case ClassCheckpoint:
		return "checkpoint"
	case ClassViewChange:
		return "viewchange"
	case ClassAck:
		return "ack"
	case ClassMisc:
		return "misc"
	case ClassState:
		return "state"
	default:
		return "unknown"
	}
}

// NumClasses is the count of defined classes, for dense accounting arrays.
const NumClasses = int(ClassState) + 1

// Message is anything a protocol node can send. WireSize must return the
// size in bytes the message occupies on the network; the simulator charges
// bandwidth by it and the TCP codec asserts against it.
type Message interface {
	WireSize() int
	Class() Class
}

// Codec converts protocol messages to and from wire frames. It is shared
// by the TCP transport (real frames) and the simulator's wire-fidelity mode
// (simnet.Config.Codec).
//
// Ownership contract: Decode may retain buf — the decoded message and its
// byte fields are allowed to sub-slice the frame (zero-copy decode), so the
// caller transfers ownership of buf at the call and must neither modify nor
// recycle it afterwards. Transports satisfy this by allocating one fresh
// frame per received message; a transport that pools frame buffers must use
// a copying codec instead. Encode's returned frame is owned by the caller;
// the codec keeps no reference to it.
type Codec interface {
	Encode(Message) ([]byte, error)
	Decode([]byte) (Message, error)
}

// PayloadCarrier is implemented by messages that carry bulk request
// payloads. Network models with a CPU/processing stage charge only these
// through the bulk lane; small control messages (votes, proofs, hash-only
// proposals) are handled out-of-band, as in real multi-threaded replicas.
type PayloadCarrier interface {
	CarriesPayload() bool
}

// IsBulk reports whether msg carries bulk payload bytes: datablocks,
// retrieval transfers and raw request submissions always do; other messages
// only if they declare themselves payload carriers. It drives both the
// default lane classification (LaneFor) and the simulator's CPU-stage
// charging.
func IsBulk(msg Message) bool {
	switch msg.Class() {
	case ClassDatablock, ClassRetrieval, ClassRequest:
		return true
	}
	if pc, ok := msg.(PayloadCarrier); ok {
		return pc.CarriesPayload()
	}
	return false
}

// Lane is an outbound scheduling class. Transports transmit LaneControl
// envelopes strictly ahead of LaneBulk envelopes queued to the same peer.
type Lane uint8

const (
	// LaneAuto (the zero value) resolves to LaneFor(env.Msg): bulk classes
	// ride the bulk lane, everything else the control lane.
	LaneAuto Lane = iota
	// LaneControl is the metadata consensus path: votes, proofs, proposals,
	// view-change, checkpoint. Scheduled ahead of bulk.
	LaneControl
	// LaneBulk is datablock dissemination and retrieval transfers:
	// streamed in chunks under credit-based per-peer flow control, parked
	// (not dropped) at zero credit, evicted only when the park budget
	// fills (the protocol recovers).
	LaneBulk
)

// String implements fmt.Stringer.
func (l Lane) String() string {
	switch l {
	case LaneAuto:
		return "auto"
	case LaneControl:
		return "control"
	case LaneBulk:
		return "bulk"
	default:
		return "unknown"
	}
}

// LaneFor derives the default lane of a message from its class.
func LaneFor(msg Message) Lane {
	if IsBulk(msg) {
		return LaneBulk
	}
	return LaneControl
}

// Envelope is an outbound message. If Broadcast is set the message goes to
// every replica except the sender; otherwise it goes to To.
type Envelope struct {
	To        types.ReplicaID
	Broadcast bool
	Msg       Message
	// Lane overrides the outbound scheduling lane. LaneAuto (the zero
	// value) derives it from the message class via LaneFor; a node can pin
	// a normally-bulk message onto the control lane (or vice versa) when
	// its urgency differs from its class — e.g. a tiny redo datablock that
	// unblocks a view change.
	Lane Lane
}

// EffectiveLane resolves the envelope's scheduling lane, applying the
// LaneAuto default.
func (e Envelope) EffectiveLane() Lane {
	if e.Lane != LaneAuto {
		return e.Lane
	}
	return LaneFor(e.Msg)
}

// Unicast builds a single-destination envelope.
func Unicast(to types.ReplicaID, msg Message) Envelope {
	return Envelope{To: to, Msg: msg}
}

// Broadcast builds an all-peers envelope.
func Broadcast(msg Message) Envelope {
	return Envelope{Broadcast: true, Msg: msg}
}

// Sink receives a node's outbound envelopes as the node emits them. See the
// package doc for the ordering, non-blocking and lifetime contract.
type Sink interface {
	// Send pushes one outbound envelope.
	Send(Envelope)
	// Broadcast is shorthand for Send(Broadcast(msg)).
	Broadcast(Message)
}

// SinkFunc adapts a function to the Sink interface; Broadcast wraps the
// message in a broadcast envelope and forwards to the function.
type SinkFunc func(Envelope)

// Send implements Sink.
func (f SinkFunc) Send(env Envelope) { f(env) }

// Broadcast implements Sink.
func (f SinkFunc) Broadcast(msg Message) { f(Envelope{Broadcast: true, Msg: msg}) }

// SliceSink collects envelopes in emission order. It is the bridge for
// drivers (tests, synchronous routers) that want the old pull-style slice:
// pass a *SliceSink into a handler, then read Envelopes. The zero value is
// ready to use.
type SliceSink struct {
	Envelopes []Envelope
}

// Send implements Sink.
func (s *SliceSink) Send(env Envelope) { s.Envelopes = append(s.Envelopes, env) }

// Broadcast implements Sink.
func (s *SliceSink) Broadcast(msg Message) { s.Send(Envelope{Broadcast: true, Msg: msg}) }

// Reset clears the collected envelopes, retaining capacity.
func (s *SliceSink) Reset() { s.Envelopes = s.Envelopes[:0] }

// Discard is a Sink that drops everything (crash-like fault injection,
// benchmarks measuring the emit path alone).
var Discard Sink = discardSink{}

type discardSink struct{}

func (discardSink) Send(Envelope)     {}
func (discardSink) Broadcast(Message) {}

// Node is an event-driven protocol participant. Handlers emit outbound
// envelopes by pushing into the Sink argument; they must not retain the
// Sink past the call and must be deterministic: the same call sequence
// yields the same emissions in the same order.
type Node interface {
	// ID returns the replica id this node runs as.
	ID() types.ReplicaID
	// Start is called once before any other event, with the initial time.
	Start(now time.Duration, out Sink)
	// Deliver handles a message from another replica.
	Deliver(now time.Duration, from types.ReplicaID, msg Message, out Sink)
	// Tick fires periodically so nodes can run timers (view-change,
	// retrieval timeouts, pacing). The interval is runtime-configured.
	Tick(now time.Duration, out Sink)
}
