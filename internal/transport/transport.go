// Package transport defines the message-passing abstractions shared by the
// network simulator (internal/simnet) and the real TCP transport. Protocol
// nodes are event-driven state machines: they receive messages and timer
// ticks, and return envelopes to send. This keeps 600-replica simulations
// single-threaded and deterministic while letting the TCP runtime drive the
// same state machine with goroutines.
package transport

import (
	"time"

	"leopard/internal/types"
)

// Class labels a message for bandwidth accounting (Table III in the paper
// breaks leader/non-leader utilization down by these components).
type Class uint8

// Message classes.
const (
	ClassRequest Class = iota + 1 // client request submissions
	ClassDatablock
	ClassBFTblock
	ClassVote  // threshold-signature shares (any round, incl. ready)
	ClassProof // combined notarization/confirmation proofs
	ClassRetrieval
	ClassCheckpoint
	ClassViewChange
	ClassAck // acknowledgments to clients
	ClassMisc
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassRequest:
		return "request"
	case ClassDatablock:
		return "datablock"
	case ClassBFTblock:
		return "bftblock"
	case ClassVote:
		return "vote"
	case ClassProof:
		return "proof"
	case ClassRetrieval:
		return "retrieval"
	case ClassCheckpoint:
		return "checkpoint"
	case ClassViewChange:
		return "viewchange"
	case ClassAck:
		return "ack"
	case ClassMisc:
		return "misc"
	default:
		return "unknown"
	}
}

// NumClasses is the count of defined classes, for dense accounting arrays.
const NumClasses = int(ClassMisc) + 1

// Message is anything a protocol node can send. WireSize must return the
// size in bytes the message occupies on the network; the simulator charges
// bandwidth by it and the TCP codec asserts against it.
type Message interface {
	WireSize() int
	Class() Class
}

// Codec converts protocol messages to and from wire frames. It is shared
// by the TCP transport (real frames) and the simulator's wire-fidelity mode
// (simnet.Config.Codec).
//
// Ownership contract: Decode may retain buf — the decoded message and its
// byte fields are allowed to sub-slice the frame (zero-copy decode), so the
// caller transfers ownership of buf at the call and must neither modify nor
// recycle it afterwards. Transports satisfy this by allocating one fresh
// frame per received message; a transport that pools frame buffers must use
// a copying codec instead. Encode's returned frame is owned by the caller;
// the codec keeps no reference to it.
type Codec interface {
	Encode(Message) ([]byte, error)
	Decode([]byte) (Message, error)
}

// PayloadCarrier is implemented by messages that carry bulk request
// payloads. Network models with a CPU/processing stage charge only these
// through the bulk lane; small control messages (votes, proofs, hash-only
// proposals) are handled out-of-band, as in real multi-threaded replicas.
type PayloadCarrier interface {
	CarriesPayload() bool
}

// IsBulk reports whether msg should be charged to the processing stage:
// datablocks, retrieval transfers and raw request submissions always are;
// other messages only if they declare themselves payload carriers.
func IsBulk(msg Message) bool {
	switch msg.Class() {
	case ClassDatablock, ClassRetrieval, ClassRequest:
		return true
	}
	if pc, ok := msg.(PayloadCarrier); ok {
		return pc.CarriesPayload()
	}
	return false
}

// Envelope is an outbound message. If Broadcast is set the message goes to
// every replica except the sender; otherwise it goes to To.
type Envelope struct {
	To        types.ReplicaID
	Broadcast bool
	Msg       Message
}

// Unicast builds a single-destination envelope.
func Unicast(to types.ReplicaID, msg Message) Envelope {
	return Envelope{To: to, Msg: msg}
}

// Broadcast builds an all-peers envelope.
func Broadcast(msg Message) Envelope {
	return Envelope{Broadcast: true, Msg: msg}
}

// Node is an event-driven protocol participant. Implementations must not
// retain the envelope slice capacity across calls and must be deterministic:
// the same call sequence yields the same outputs.
type Node interface {
	// ID returns the replica id this node runs as.
	ID() types.ReplicaID
	// Start is called once before any other event, with the initial time.
	Start(now time.Duration) []Envelope
	// Deliver handles a message from another replica.
	Deliver(now time.Duration, from types.ReplicaID, msg Message) []Envelope
	// Tick fires periodically so nodes can run timers (view-change,
	// retrieval timeouts, pacing). The interval is runtime-configured.
	Tick(now time.Duration) []Envelope
}
