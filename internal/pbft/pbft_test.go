package pbft_test

import (
	"testing"
	"time"

	"leopard/internal/crypto"
	"leopard/internal/harness"
	"leopard/internal/pbft"
	"leopard/internal/protocol"
	"leopard/internal/simnet"
	"leopard/internal/transport"
	"leopard/internal/types"
)

func buildCluster(t *testing.T, n int) (*harness.Cluster, []*pbft.Node) {
	t.Helper()
	q, err := types.NewQuorumParams(n)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := crypto.NewEd25519Suite(n, []byte("pbft-test"))
	if err != nil {
		t.Fatal(err)
	}
	var nodes []*pbft.Node
	cluster, err := harness.NewCluster(harness.Options{
		N:               n,
		Net:             simnet.DefaultConfig(),
		SaturationDepth: 300,
		SubmitToLeader:  true,
		Build: func(id types.ReplicaID) (protocol.Replica, error) {
			node, err := pbft.NewNode(pbft.Config{ID: id, Quorum: q, Suite: suite, BatchSize: 50})
			if err != nil {
				return nil, err
			}
			nodes = append(nodes, node)
			return node, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cluster, nodes
}

func TestPBFTExecutesRequests(t *testing.T) {
	cluster, nodes := buildCluster(t, 4)
	cluster.Start()
	res := cluster.MeasureFor(2 * time.Second)
	if res.Confirmed == 0 {
		t.Fatal("nothing executed")
	}
	for _, node := range nodes {
		if node.Stats().ExecutedRequests == 0 {
			t.Errorf("replica %d executed nothing", node.ID())
		}
	}
	t.Logf("n=4 executed=%d throughput=%.0f req/s", res.Confirmed, res.Throughput)
}

func TestPBFTAllReplicasAgreeOnOrder(t *testing.T) {
	const n = 7
	logs := make([][]types.SeqNum, n)
	q, _ := types.NewQuorumParams(n)
	suite, err := crypto.NewEd25519Suite(n, []byte("pbft-order"))
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := harness.NewCluster(harness.Options{
		N:               n,
		Net:             simnet.DefaultConfig(),
		SaturationDepth: 200,
		SubmitToLeader:  true,
		Build: func(id types.ReplicaID) (protocol.Replica, error) {
			return pbft.NewNode(pbft.Config{ID: id, Quorum: q, Suite: suite, BatchSize: 25})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cluster.Replicas {
		idx := i
		cluster.Replicas[i].SetExecutor(func(sn types.SeqNum, reqs []types.Request) {
			logs[idx] = append(logs[idx], sn)
		})
	}
	cluster.Start()
	cluster.MeasureFor(time.Second)

	if len(logs[0]) == 0 {
		t.Fatal("replica 0 executed nothing")
	}
	// Sequence numbers must be strictly increasing and consistent across
	// replicas on the common prefix.
	for i, l := range logs {
		for j := 1; j < len(l); j++ {
			if l[j] != l[j-1]+1 {
				t.Fatalf("replica %d executed out of order: %v", i, l[:j+1])
			}
		}
	}
}

func TestPBFTQuadraticVoteTraffic(t *testing.T) {
	// PBFT's defining cost: prepare/commit votes are all-to-all, so the
	// per-replica vote traffic *per decision* grows linearly with n
	// (unlike Leopard/HotStuff, whose vote collection is linear overall).
	measure := func(n int) float64 {
		cluster, nodes := buildCluster(t, n)
		cluster.Start()
		cluster.Warmup(500 * time.Millisecond)
		cluster.MeasureFor(time.Second)
		votes := cluster.NonLeaderStats().Received[transport.ClassVote]
		batches := nodes[0].Stats().ExecutedBatches
		if batches == 0 {
			t.Fatalf("n=%d executed nothing", n)
		}
		return float64(votes) / float64(batches)
	}
	small := measure(4)
	big := measure(16)
	// n-1 grows 3 -> 15 (5x); allow slack for boundary effects.
	if big < 3*small {
		t.Errorf("per-decision vote traffic did not grow with n: %.0f (n=4) vs %.0f (n=16)", small, big)
	}
}

func TestPBFTConfigValidation(t *testing.T) {
	q, _ := types.NewQuorumParams(4)
	suite, _ := crypto.NewEd25519Suite(4, []byte("x"))
	if _, err := pbft.NewNode(pbft.Config{ID: 9, Quorum: q, Suite: suite}); err == nil {
		t.Error("out-of-range id accepted")
	}
	if _, err := pbft.NewNode(pbft.Config{ID: 0, Quorum: q}); err == nil {
		t.Error("missing suite accepted")
	}
	if _, err := pbft.NewNode(pbft.Config{ID: 0, Quorum: types.QuorumParams{}}); err == nil {
		t.Error("invalid quorum accepted")
	}
}
