// Package pbft implements the PBFT normal case (Castro & Liskov, OSDI'99)
// as a second baseline: leader-disseminated pre-prepares carrying full
// request batches, followed by all-to-all prepare and commit votes. Its
// quadratic vote traffic and O(n) leader dissemination cost anchor the
// Table I comparison of amortized costs and scaling factors.
//
// Scope: the normal case plus checkpointing of executed sequence numbers.
// View changes are not implemented — the Leopard paper's Table I compares
// the protocols under an honest leader after GST, which is what this
// package reproduces; fault experiments use Leopard and HotStuff.
package pbft

import (
	"encoding/binary"
	"errors"
	"time"

	"leopard/internal/crypto"
	"leopard/internal/mempool"
	"leopard/internal/protocol"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// Default parameters.
const (
	DefaultBatchSize    = 800
	DefaultBatchTimeout = 10 * time.Millisecond
	DefaultMaxParallel  = 64
)

// Config parameterizes a PBFT replica.
type Config struct {
	ID     types.ReplicaID
	Quorum types.QuorumParams
	Suite  crypto.Suite // used for per-message authenticators (no aggregation)
	// BatchSize is the number of requests per pre-prepare.
	BatchSize int
	// BatchTimeout bounds how long a partial batch waits.
	BatchTimeout time.Duration
	// MaxParallel bounds in-flight sequence numbers (watermark window).
	MaxParallel int
}

// Validate checks cfg and fills defaults.
func (c *Config) Validate() error {
	if !c.Quorum.Valid() {
		return errors.New("pbft: invalid quorum parameters")
	}
	if int(c.ID) >= c.Quorum.N {
		return errors.New("pbft: replica id out of range")
	}
	if c.Suite == nil {
		return errors.New("pbft: missing crypto suite")
	}
	if c.BatchSize <= 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.BatchTimeout <= 0 {
		c.BatchTimeout = DefaultBatchTimeout
	}
	if c.MaxParallel <= 0 {
		c.MaxParallel = DefaultMaxParallel
	}
	return nil
}

// PrePrepareMsg is the leader's proposal with the full request batch.
type PrePrepareMsg struct {
	View     types.View
	Seq      types.SeqNum
	Requests []types.Request
	Digest   types.Hash // cached batch digest
	Share    crypto.Share
}

var _ transport.Message = (*PrePrepareMsg)(nil)

// WireSize implements transport.Message.
func (m *PrePrepareMsg) WireSize() int {
	s := 16 + 32 + len(m.Share.Sig)
	for _, r := range m.Requests {
		s += r.Size()
	}
	return s
}

// Class implements transport.Message.
func (m *PrePrepareMsg) Class() transport.Class { return transport.ClassBFTblock }

// CarriesPayload implements transport.PayloadCarrier: PBFT pre-prepares
// embed the full request batch, so they occupy the processing stage.
func (m *PrePrepareMsg) CarriesPayload() bool { return true }

// VoteMsg is a prepare or commit vote, multicast to all replicas.
type VoteMsg struct {
	Phase  int // 1 = prepare, 2 = commit
	View   types.View
	Seq    types.SeqNum
	Digest types.Hash
	Share  crypto.Share
}

var _ transport.Message = (*VoteMsg)(nil)

// WireSize implements transport.Message.
func (m *VoteMsg) WireSize() int { return 1 + 16 + 32 + len(m.Share.Sig) }

// Class implements transport.Message.
func (m *VoteMsg) Class() transport.Class { return transport.ClassVote }

func batchDigest(view types.View, seq types.SeqNum, reqs []types.Request) types.Hash {
	var buf []byte
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], uint64(view))
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(seq))
	buf = append(buf, tmp[:]...)
	for _, r := range reqs {
		h := crypto.HashRequest(r)
		buf = append(buf, h[:]...)
	}
	return crypto.HashBytes(buf)
}

func voteDigest(phase int, view types.View, seq types.SeqNum, d types.Hash) types.Hash {
	var buf [17]byte
	buf[0] = byte(phase)
	binary.BigEndian.PutUint64(buf[1:], uint64(view))
	binary.BigEndian.PutUint64(buf[9:], uint64(seq))
	return crypto.HashConcat([]byte("pbft/vote"), buf[:], d[:])
}

// slot is one in-flight sequence number.
type slot struct {
	digest    types.Hash
	requests  []types.Request
	preprep   bool
	prepared  bool
	committed bool
	prepares  map[types.ReplicaID]struct{}
	commits   map[types.ReplicaID]struct{}
	sentPrep  bool
	sentComm  bool
}

// Stats are the node's counters.
type Stats struct {
	ExecutedBatches  int64
	ExecutedRequests int64
}

// Node is a PBFT replica (normal case).
type Node struct {
	cfg   Config
	suite crypto.Suite
	q     types.QuorumParams
	now   time.Duration

	reqPool *mempool.RequestPool
	execFn  protocol.ExecuteFunc

	view        types.View
	nextSeq     types.SeqNum
	executedTo  types.SeqNum
	slots       map[types.SeqNum]*slot
	lastPropose time.Duration

	stats Stats

	// TrustDigests skips recomputing batch digests (simulation only).
	TrustDigests bool
	// SkipRequestDedup disables confirmed-request bookkeeping, as in
	// leopard.Config.SkipRequestDedup.
	SkipRequestDedup bool
}

var (
	_ transport.Node   = (*Node)(nil)
	_ protocol.Replica = (*Node)(nil)
)

// NewNode builds a PBFT replica.
func NewNode(cfg Config) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Node{
		cfg:     cfg,
		suite:   cfg.Suite,
		q:       cfg.Quorum,
		reqPool: mempool.NewRequestPool(),
		view:    1,
		nextSeq: 1,
		slots:   make(map[types.SeqNum]*slot),
	}, nil
}

// ID implements transport.Node.
func (n *Node) ID() types.ReplicaID { return n.cfg.ID }

// Leader implements protocol.Replica.
func (n *Node) Leader() types.ReplicaID { return types.LeaderOf(n.view, n.q.N) }

func (n *Node) isLeader() bool { return n.Leader() == n.cfg.ID }

// SetExecutor implements protocol.Replica.
func (n *Node) SetExecutor(fn protocol.ExecuteFunc) { n.execFn = fn }

// PendingRequests implements protocol.Replica.
func (n *Node) PendingRequests() int { return n.reqPool.Len() }

// SubmitRequest implements protocol.Replica.
func (n *Node) SubmitRequest(now time.Duration, req types.Request) bool {
	n.observe(now)
	return n.reqPool.Add(req, now)
}

// Stats returns the node's counters.
func (n *Node) Stats() Stats { return n.stats }

func (n *Node) observe(now time.Duration) {
	if now > n.now {
		n.now = now
	}
}

// Start implements transport.Node.
func (n *Node) Start(now time.Duration, out transport.Sink) {
	n.observe(now)
}

// Tick implements transport.Node.
func (n *Node) Tick(now time.Duration, out transport.Sink) {
	n.observe(now)
	if n.isLeader() {
		n.maybePropose(out)
	}
}

// Deliver implements transport.Node.
func (n *Node) Deliver(now time.Duration, from types.ReplicaID, msg transport.Message, out transport.Sink) {
	n.observe(now)
	switch m := msg.(type) {
	case *PrePrepareMsg:
		n.handlePrePrepare(from, m, out)
	case *VoteMsg:
		n.handleVote(from, m, out)
	}
}

func (n *Node) getSlot(seq types.SeqNum) *slot {
	s := n.slots[seq]
	if s == nil {
		s = &slot{
			prepares: make(map[types.ReplicaID]struct{}, n.q.Quorum()),
			commits:  make(map[types.ReplicaID]struct{}, n.q.Quorum()),
		}
		n.slots[seq] = s
	}
	return s
}

// maybePropose batches pending requests into pre-prepares.
func (n *Node) maybePropose(out transport.Sink) {
	for {
		if n.nextSeq > n.executedTo+types.SeqNum(n.cfg.MaxParallel) {
			return
		}
		full := n.reqPool.Len() >= n.cfg.BatchSize
		stale := n.reqPool.Len() > 0 && n.now-n.lastPropose >= n.cfg.BatchTimeout
		if !full && !stale {
			return
		}
		reqs, _ := n.reqPool.Extract(n.cfg.BatchSize)
		if len(reqs) == 0 {
			return
		}
		seq := n.nextSeq
		n.nextSeq++
		n.lastPropose = n.now
		digest := batchDigest(n.view, seq, reqs)
		share, err := n.suite.Sign(n.cfg.ID, digest)
		if err != nil {
			return
		}
		s := n.getSlot(seq)
		s.digest = digest
		s.requests = reqs
		s.preprep = true
		out.Broadcast(&PrePrepareMsg{
			View: n.view, Seq: seq, Requests: reqs, Digest: digest, Share: share,
		})
		// The leader participates in both vote phases.
		n.sendPrepare(seq, s, out)
	}
}

// handlePrePrepare accepts the leader's proposal and multicasts a prepare.
func (n *Node) handlePrePrepare(from types.ReplicaID, m *PrePrepareMsg, out transport.Sink) {
	if from != n.Leader() || m.View != n.view {
		return
	}
	if m.Seq <= n.executedTo || m.Seq > n.executedTo+types.SeqNum(4*n.cfg.MaxParallel) {
		return
	}
	digest := m.Digest
	if !n.TrustDigests || digest.IsZero() {
		digest = batchDigest(m.View, m.Seq, m.Requests)
	}
	if err := n.suite.VerifyShare(digest, m.Share); err != nil || m.Share.Signer != from {
		return
	}
	s := n.getSlot(m.Seq)
	if s.preprep {
		return // duplicate or equivocation: keep the first
	}
	s.preprep = true
	s.digest = digest
	s.requests = m.Requests
	n.sendPrepare(m.Seq, s, out)
	n.checkQuorums(m.Seq, s, out)
}

// sendPrepare multicasts this replica's prepare vote for seq.
func (n *Node) sendPrepare(seq types.SeqNum, s *slot, out transport.Sink) {
	if s.sentPrep {
		return
	}
	d := voteDigest(1, n.view, seq, s.digest)
	share, err := n.suite.Sign(n.cfg.ID, d)
	if err != nil {
		return
	}
	s.sentPrep = true
	s.prepares[n.cfg.ID] = struct{}{}
	out.Broadcast(&VoteMsg{
		Phase: 1, View: n.view, Seq: seq, Digest: s.digest, Share: share,
	})
}

// handleVote records prepare/commit votes (all-to-all pattern).
func (n *Node) handleVote(from types.ReplicaID, m *VoteMsg, out transport.Sink) {
	if m.View != n.view || m.Seq <= n.executedTo {
		return
	}
	d := voteDigest(m.Phase, m.View, m.Seq, m.Digest)
	if err := n.suite.VerifyShare(d, m.Share); err != nil || m.Share.Signer != from {
		return
	}
	s := n.getSlot(m.Seq)
	switch m.Phase {
	case 1:
		s.prepares[from] = struct{}{}
	case 2:
		s.commits[from] = struct{}{}
	default:
		return
	}
	n.checkQuorums(m.Seq, s, out)
}

// checkQuorums advances a slot through prepared -> committed -> executed.
func (n *Node) checkQuorums(seq types.SeqNum, s *slot, out transport.Sink) {
	if s.preprep && !s.prepared && len(s.prepares) >= n.q.Quorum() {
		s.prepared = true
		if !s.sentComm {
			d := voteDigest(2, n.view, seq, s.digest)
			share, err := n.suite.Sign(n.cfg.ID, d)
			if err == nil {
				s.sentComm = true
				s.commits[n.cfg.ID] = struct{}{}
				out.Broadcast(&VoteMsg{
					Phase: 2, View: n.view, Seq: seq, Digest: s.digest, Share: share,
				})
			}
		}
	}
	if s.prepared && !s.committed && len(s.commits) >= n.q.Quorum() {
		s.committed = true
		n.tryExecute()
	}
}

// tryExecute runs the longest consecutive committed prefix.
func (n *Node) tryExecute() {
	for {
		next := n.executedTo + 1
		s, ok := n.slots[next]
		if !ok || !s.committed {
			return
		}
		if n.execFn != nil {
			n.execFn(next, s.requests)
		}
		if !n.SkipRequestDedup {
			for _, r := range s.requests {
				n.reqPool.MarkConfirmed(r.ID())
			}
		}
		n.stats.ExecutedBatches++
		n.stats.ExecutedRequests += int64(len(s.requests))
		delete(n.slots, next)
		n.executedTo = next
	}
}
