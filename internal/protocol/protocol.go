// Package protocol defines the protocol-agnostic replica interface shared
// by Leopard and the baseline protocols (HotStuff, PBFT), so the experiment
// harness can drive any of them interchangeably.
package protocol

import (
	"time"

	"leopard/internal/transport"
	"leopard/internal/types"
)

// ExecuteFunc receives confirmed requests in log order; sn is the decided
// slot (BFTblock serial number, chain height, or PBFT sequence number).
type ExecuteFunc func(sn types.SeqNum, reqs []types.Request)

// Replica is a BFT replica the harness can drive over any transport.
type Replica interface {
	transport.Node
	// SubmitRequest adds a client request to the replica's pending pool.
	SubmitRequest(now time.Duration, req types.Request) bool
	// SetExecutor registers the execution callback. Must be called before
	// the node starts.
	SetExecutor(ExecuteFunc)
	// PendingRequests returns the depth of the pending-request pool.
	PendingRequests() int
	// Leader returns the current view's leader.
	Leader() types.ReplicaID
}
