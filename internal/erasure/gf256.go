// Package erasure implements systematic (k, n) Reed–Solomon erasure coding
// over GF(2^8), from scratch on the standard library.
//
// Leopard's datablock-retrieval mechanism (Alg. 3) encodes a missing
// datablock with an (f+1, n) code so that any f+1 valid chunks reconstruct
// it, amortizing the response cost across a committee of replicas.
package erasure

import "encoding/binary"

// GF(2^8) arithmetic with the AES polynomial x^8+x^4+x^3+x+1 (0x11b).
// Multiplication uses log/exp tables built once at package init from the
// generator 3; this is deterministic precomputation, the sanctioned use of
// init-time work.
//
// The slice kernels below are the per-byte hot path of datablock
// dissemination. Matrix-row × shard products go through 256-byte
// per-coefficient multiplication tables (built lazily by the Codec) so the
// inner loop is a single table lookup and xor per byte, unrolled in 8-byte
// strides; the coefficient-1 case degenerates to a word-wide xor.

const fieldSize = 256

var (
	expTable [2 * fieldSize]byte
	logTable [fieldSize]byte
)

func init() {
	x := byte(1)
	for i := 0; i < fieldSize-1; i++ {
		expTable[i] = x
		logTable[x] = byte(i)
		// multiply x by the generator 3 = x + 1:
		x = xtimes(x) ^ x
	}
	// Duplicate so exp lookups never need a mod.
	for i := fieldSize - 1; i < 2*fieldSize; i++ {
		expTable[i] = expTable[i-(fieldSize-1)]
	}
}

// xtimes multiplies by x (i.e. 2) modulo the field polynomial.
func xtimes(a byte) byte {
	if a&0x80 != 0 {
		return (a << 1) ^ 0x1b
	}
	return a << 1
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// gfDiv divides a by b. Division by zero panics: it indicates a programming
// error in matrix inversion, which guards against singular pivots.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("erasure: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	d := int(logTable[a]) - int(logTable[b])
	if d < 0 {
		d += fieldSize - 1
	}
	return expTable[d]
}

// gfInv returns the multiplicative inverse of a.
func gfInv(a byte) byte { return gfDiv(1, a) }

// gfExp returns base**power in the field.
func gfExp(base byte, power int) byte {
	if power == 0 {
		return 1
	}
	if base == 0 {
		return 0
	}
	l := (int(logTable[base]) * power) % (fieldSize - 1)
	if l < 0 {
		l += fieldSize - 1
	}
	return expTable[l]
}

// buildMulTable returns the 256-entry multiplication table for coefficient c:
// tbl[x] = c*x in GF(2^8).
func buildMulTable(c byte) *[256]byte {
	var tbl [256]byte
	if c == 0 {
		return &tbl
	}
	logC := int(logTable[c])
	for x := 1; x < 256; x++ {
		tbl[x] = expTable[logC+int(logTable[x])]
	}
	return &tbl
}

// mulSliceAdd computes dst[i] ^= c*src[i] via log/exp lookups. It is kept
// for cold paths (matrix setup and inversion) where building a table per
// coefficient would cost more than it saves; bulk shard math goes through
// mulTableSliceAdd.
func mulSliceAdd(c byte, src, dst []byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		xorSlice(src, dst)
		return
	}
	logC := int(logTable[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= expTable[logC+int(logTable[s])]
		}
	}
}

// mulTableSliceAdd computes dst[i] ^= tbl[src[i]] in 8-byte strides. tbl
// must be a multiplication table from buildMulTable. The source word is
// loaded once and bytes extracted by shifting; the eight looked-up product
// bytes are assembled into one word so dst sees a single load/xor/store per
// stride — byte-granular memory traffic is what limits this kernel.
func mulTableSliceAdd(tbl *[256]byte, src, dst []byte) {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	src, dst = src[:n], dst[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		x := binary.LittleEndian.Uint64(src[i:])
		// Assemble the product word as a balanced tree of ORs: a linear
		// chain would serialize eight dependent ops and dominate latency.
		// byte(x>>s) compiles to a zero-extending move, no masking.
		y0 := uint64(tbl[byte(x)]) | uint64(tbl[byte(x>>8)])<<8
		y1 := uint64(tbl[byte(x>>16)])<<16 | uint64(tbl[byte(x>>24)])<<24
		y2 := uint64(tbl[byte(x>>32)])<<32 | uint64(tbl[byte(x>>40)])<<40
		y3 := uint64(tbl[byte(x>>48)])<<48 | uint64(tbl[byte(x>>56)])<<56
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^((y0|y1)|(y2|y3)))
	}
	for ; i < n; i++ {
		dst[i] ^= tbl[src[i]]
	}
}

// mulTableSliceAdd2 computes dst[i] ^= tbl1[src1[i]] ^ tbl2[src2[i]]: two
// source shards fused into one pass over dst. The two lookup streams are
// independent, so they pipeline; dst traffic is halved versus two separate
// mulTableSliceAdd calls.
func mulTableSliceAdd2(tbl1, tbl2 *[256]byte, src1, src2, dst []byte) {
	n := len(dst)
	if len(src1) < n {
		n = len(src1)
	}
	if len(src2) < n {
		n = len(src2)
	}
	src1, src2, dst = src1[:n], src2[:n], dst[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		x1 := binary.LittleEndian.Uint64(src1[i:])
		x2 := binary.LittleEndian.Uint64(src2[i:])
		y0 := uint64(tbl1[byte(x1)]^tbl2[byte(x2)]) |
			uint64(tbl1[byte(x1>>8)]^tbl2[byte(x2>>8)])<<8
		y1 := uint64(tbl1[byte(x1>>16)]^tbl2[byte(x2>>16)])<<16 |
			uint64(tbl1[byte(x1>>24)]^tbl2[byte(x2>>24)])<<24
		y2 := uint64(tbl1[byte(x1>>32)]^tbl2[byte(x2>>32)])<<32 |
			uint64(tbl1[byte(x1>>40)]^tbl2[byte(x2>>40)])<<40
		y3 := uint64(tbl1[byte(x1>>48)]^tbl2[byte(x2>>48)])<<48 |
			uint64(tbl1[byte(x1>>56)]^tbl2[byte(x2>>56)])<<56
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^((y0|y1)|(y2|y3)))
	}
	for ; i < n; i++ {
		dst[i] ^= tbl1[src1[i]] ^ tbl2[src2[i]]
	}
}

// xorSlice computes dst[i] ^= src[i], word-at-a-time. XOR is
// endianness-agnostic, so reading and writing uint64s with a fixed byte
// order is portable.
func xorSlice(src, dst []byte) {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	src, dst = src[:n], dst[:n]
	for len(src) >= 8 {
		v := binary.LittleEndian.Uint64(src) ^ binary.LittleEndian.Uint64(dst)
		binary.LittleEndian.PutUint64(dst, v)
		src, dst = src[8:], dst[8:]
	}
	for i, s := range src {
		dst[i] ^= s
	}
}
