// Package erasure implements systematic (k, n) Reed–Solomon erasure coding
// over GF(2^8), from scratch on the standard library.
//
// Leopard's datablock-retrieval mechanism (Alg. 3) encodes a missing
// datablock with an (f+1, n) code so that any f+1 valid chunks reconstruct
// it, amortizing the response cost across a committee of replicas.
package erasure

// GF(2^8) arithmetic with the AES polynomial x^8+x^4+x^3+x+1 (0x11b).
// Multiplication uses log/exp tables built once at package init from the
// generator 3; this is deterministic precomputation, the sanctioned use of
// init-time work.

const fieldSize = 256

var (
	expTable [2 * fieldSize]byte
	logTable [fieldSize]byte
)

func init() {
	x := byte(1)
	for i := 0; i < fieldSize-1; i++ {
		expTable[i] = x
		logTable[x] = byte(i)
		// multiply x by the generator 3 = x + 1:
		x = xtimes(x) ^ x
	}
	// Duplicate so exp lookups never need a mod.
	for i := fieldSize - 1; i < 2*fieldSize; i++ {
		expTable[i] = expTable[i-(fieldSize-1)]
	}
}

// xtimes multiplies by x (i.e. 2) modulo the field polynomial.
func xtimes(a byte) byte {
	if a&0x80 != 0 {
		return (a << 1) ^ 0x1b
	}
	return a << 1
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// gfDiv divides a by b. Division by zero panics: it indicates a programming
// error in matrix inversion, which guards against singular pivots.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("erasure: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	d := int(logTable[a]) - int(logTable[b])
	if d < 0 {
		d += fieldSize - 1
	}
	return expTable[d]
}

// gfInv returns the multiplicative inverse of a.
func gfInv(a byte) byte { return gfDiv(1, a) }

// gfExp returns base**power in the field.
func gfExp(base byte, power int) byte {
	if power == 0 {
		return 1
	}
	if base == 0 {
		return 0
	}
	l := (int(logTable[base]) * power) % (fieldSize - 1)
	if l < 0 {
		l += fieldSize - 1
	}
	return expTable[l]
}

// mulSlice computes dst = row * src accumulated: dst[i] ^= c*src[i].
func mulSliceAdd(c byte, src, dst []byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	logC := int(logTable[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= expTable[logC+int(logTable[s])]
		}
	}
}
