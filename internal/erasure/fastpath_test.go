package erasure

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// Tests for the dissemination fast path: grouped kernels, the decode-matrix
// cache, worker parallelism, and the zero-length contract.

// TestChunkSizeEncodeAgree pins the empty/short-message contract: ChunkSize
// is what Encode actually produces and what Decode/Reconstruct require, for
// the degenerate sizes that used to disagree (ChunkSize(0) was 0 while
// Encode silently promoted it to 1).
func TestChunkSizeEncodeAgree(t *testing.T) {
	codec, err := NewCodec(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{0, 1, 2, 3, 4} {
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i + 1)
		}
		chunks, err := codec.Encode(data)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		want := codec.ChunkSize(size)
		if want < 1 {
			t.Fatalf("ChunkSize(%d) = %d; chunks must never be empty", size, want)
		}
		for _, ch := range chunks {
			if len(ch.Data) != want {
				t.Fatalf("size %d: chunk %d has %d bytes, ChunkSize says %d", size, ch.Index, len(ch.Data), want)
			}
		}
		got, err := codec.Decode(chunks[4:7], size)
		if err != nil {
			t.Fatalf("size %d decode: %v", size, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("size %d: round trip mismatch", size)
		}
		rebuilt, err := codec.Reconstruct(chunks[2:5], size)
		if err != nil {
			t.Fatalf("size %d reconstruct: %v", size, err)
		}
		for i := range chunks {
			if !bytes.Equal(chunks[i].Data, rebuilt[i].Data) {
				t.Fatalf("size %d: reconstructed chunk %d differs", size, i)
			}
		}
	}
}

// TestPropertyRandomErasures drives random (k, n) up to (32, 64), random
// data spanning both kernel paths, and random erasure patterns through
// Decode(Encode(data)), and asserts the cached-inverse path is bitwise
// identical to the cold path.
func TestPropertyRandomErasures(t *testing.T) {
	rng := rand.New(rand.NewSource(271828))
	for trial := 0; trial < 60; trial++ {
		k := 1 + rng.Intn(32)
		n := k + rng.Intn(64-k+1)
		// Cold codec per trial so the first Decode is a guaranteed miss.
		codec, err := NewCodec(k, n)
		if err != nil {
			t.Fatal(err)
		}
		// Sizes on both sides of groupMinShard exercise the grouped and
		// per-coefficient kernels.
		size := rng.Intn(3 * groupMinShard * k / 2)
		data := make([]byte, size)
		rng.Read(data)
		chunks, err := codec.Encode(data)
		if err != nil {
			t.Fatalf("trial %d (k=%d n=%d size=%d): %v", trial, k, n, size, err)
		}
		// Random erasure pattern: keep a random k-subset.
		perm := rng.Perm(n)[:k]
		subset := make([]Chunk, 0, k)
		for _, idx := range perm {
			subset = append(subset, chunks[idx])
		}
		cold, err := codec.Decode(subset, size)
		if err != nil {
			t.Fatalf("trial %d (k=%d n=%d size=%d): cold decode: %v", trial, k, n, size, err)
		}
		if !bytes.Equal(cold, data) {
			t.Fatalf("trial %d (k=%d n=%d size=%d): cold decode mismatch", trial, k, n, size)
		}
		// Same selection again: must hit the cache and match bit for bit.
		warm, err := codec.Decode(subset, size)
		if err != nil {
			t.Fatalf("trial %d: warm decode: %v", trial, err)
		}
		if !bytes.Equal(cold, warm) {
			t.Fatalf("trial %d: cached-inverse decode differs from cold path", trial)
		}
		if hits, _ := codec.CacheStats(); hits == 0 && !allSystematic(subset, k) {
			t.Fatalf("trial %d: repeated selection did not hit the decode-matrix cache", trial)
		}
	}
}

func allSystematic(sel []Chunk, k int) bool {
	for _, ch := range sel {
		if ch.Index >= k {
			return false
		}
	}
	return true
}

// TestDecodeCacheSteadyState asserts the acceptance criterion directly:
// after the first decode of an index set, steady-state decodes perform zero
// matrix inversions (all cache hits, misses stay constant).
func TestDecodeCacheSteadyState(t *testing.T) {
	codec, err := NewCodec(32, 64)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64*1024)
	rand.New(rand.NewSource(17)).Read(data)
	chunks, err := codec.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	parity := chunks[32:] // non-systematic so every decode needs the matrix
	for i := 0; i < 10; i++ {
		got, err := codec.Decode(parity, len(data))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("decode %d: mismatch", i)
		}
	}
	hits, misses := codec.CacheStats()
	if misses != 1 {
		t.Fatalf("steady-state decode inverted the matrix %d times, want exactly 1 (the cold call)", misses)
	}
	if hits != 9 {
		t.Fatalf("cache hits = %d, want 9", hits)
	}
}

// TestDecodeCacheDisabled ensures CacheSize < 0 still decodes correctly.
func TestDecodeCacheDisabled(t *testing.T) {
	codec, err := NewCodecWithOptions(4, 8, Options{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("cacheless decoding still works fine")
	chunks, err := codec.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := codec.Decode(chunks[4:], len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mismatch with cache disabled")
	}
	if hits, misses := codec.CacheStats(); hits != 0 || misses != 0 {
		t.Fatalf("disabled cache reported hits=%d misses=%d", hits, misses)
	}
}

// TestParallelMatchesSerial forces the worker pool on and checks output
// equality against the serial path for sizes above the parallel threshold.
func TestParallelMatchesSerial(t *testing.T) {
	serial, err := NewCodecWithOptions(11, 32, Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewCodecWithOptions(11, 32, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 2*1024*1024) // ~190 KiB shards, well above thresholds
	rand.New(rand.NewSource(23)).Read(data)
	sc, err := serial.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := parallel.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sc {
		if !bytes.Equal(sc[i].Data, pc[i].Data) {
			t.Fatalf("parallel encode differs at chunk %d", i)
		}
	}
	sd, err := serial.Decode(sc[21:], len(data))
	if err != nil {
		t.Fatal(err)
	}
	pd, err := parallel.Decode(pc[21:], len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sd, pd) || !bytes.Equal(sd, data) {
		t.Fatal("parallel decode differs from serial")
	}
}

// TestTranspose8x8 checks the byte-matrix transpose against the naive
// definition.
func TestTranspose8x8(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		var m [8][8]byte
		var w [8]uint64
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				m[i][j] = byte(rng.Intn(256))
			}
			var row [8]byte
			copy(row[:], m[i][:])
			w[i] = binary.LittleEndian.Uint64(row[:])
		}
		transpose8x8(&w)
		for i := 0; i < 8; i++ {
			var row [8]byte
			binary.LittleEndian.PutUint64(row[:], w[i])
			for j := 0; j < 8; j++ {
				if row[j] != m[j][i] {
					t.Fatalf("trial %d: transposed (%d,%d) = %02x, want %02x", trial, i, j, row[j], m[j][i])
				}
			}
		}
	}
}

// TestGroupKernelMatchesNaive cross-checks the grouped program against the
// per-coefficient kernels on the same inputs, across the size threshold.
func TestGroupKernelMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, cfg := range []struct{ k, n int }{{1, 2}, {3, 7}, {5, 16}, {11, 32}, {32, 64}, {13, 14}} {
		small, err := NewCodec(cfg.k, cfg.n)
		if err != nil {
			t.Fatal(err)
		}
		// Sizes straddling groupMinShard per shard.
		for _, shard := range []int{1, 7, groupMinShard - 1, groupMinShard, groupMinShard + 13} {
			data := make([]byte, shard*cfg.k-rng.Intn(shard))
			rng.Read(data)
			chunks, err := small.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			// Reference parity via the per-coefficient path.
			size := small.ChunkSize(len(data))
			for i := cfg.k; i < cfg.n; i++ {
				want := make([]byte, size)
				row := small.encode.row(i)
				for j := 0; j < cfg.k; j++ {
					mulSliceAdd(row[j], chunks[j].Data, want)
				}
				if !bytes.Equal(want, chunks[i].Data) {
					t.Fatalf("(k=%d n=%d shard=%d): parity row %d differs from naive", cfg.k, cfg.n, shard, i)
				}
			}
		}
	}
}
