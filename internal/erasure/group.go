package erasure

import "encoding/binary"

// Grouped row generation: the throughput kernel behind Encode and Decode.
//
// Computing rows = M × shards one coefficient at a time costs one table
// lookup per (row, byte) product and tops out near 2 GB/s of product work
// in scalar Go. Grouping 8 output rows lets one [256]uint64 table per
// source column carry all 8 products of a source byte in one load: the
// inner loop is then load byte → load word → xor, producing 8 row-bytes
// per lookup (~7× the per-coefficient kernel). The group accumulates into
// a row-interleaved buffer (byte lane r of word t = row r at offset t)
// that an 8×8 byte transpose scatters back into contiguous row shards.

const (
	// groupMinShard is the shard size, in bytes, above which the grouped
	// kernel is used. Below it the per-coefficient path wins: compiling
	// group tables costs ~k×rows×256 table writes, which needs a few KiB
	// per shard to amortize (decode programs are LRU-cached, but a cache
	// miss must not be pathological on small blocks).
	groupMinShard = 4096

	// groupBlock is the number of byte offsets accumulated per work unit:
	// a 16 KiB interleave buffer that stays L1-resident while k source
	// blocks stream through it.
	groupBlock = 2048
)

// rowProg is a compiled program computing `rows` output shards as a
// coefficient matrix times k source shards, in groups of up to 8 rows.
// Programs are immutable once compiled and safe for concurrent use.
type rowProg struct {
	k      int
	rows   int
	groups []groupTables
}

// groupTables holds the packed multiplication tables for one group of up
// to 8 consecutive output rows: tables[j][s] has c(row g·8+r, j)·s in byte
// lane r.
type groupTables struct {
	lanes  int
	tables [][256]uint64
}

// compileRowProg packs the coefficient rows into grouped tables. coefRows
// must each have k entries. The per-coefficient byte tables are shared via
// c.table, so repeated compiles reuse them.
func (c *Codec) compileRowProg(coefRows [][]byte) *rowProg {
	rows := len(coefRows)
	p := &rowProg{k: c.k, rows: rows}
	for g := 0; g*8 < rows; g++ {
		lanes := rows - g*8
		if lanes > 8 {
			lanes = 8
		}
		gt := groupTables{lanes: lanes, tables: make([][256]uint64, c.k)}
		for j := 0; j < c.k; j++ {
			tbl := &gt.tables[j]
			for r := 0; r < lanes; r++ {
				cf := coefRows[g*8+r][j]
				if cf == 0 {
					continue
				}
				mt := c.table(cf)
				sh := uint(8 * r)
				for s := 1; s < fieldSize; s++ {
					tbl[s] |= uint64(mt[s]) << sh
				}
			}
		}
		p.groups = append(p.groups, gt)
	}
	return p
}

// run computes the program's output rows over srcs (each at least size
// bytes) into outs (p.rows shards of size bytes, fully overwritten).
// (group, offset-block) pairs are independent work units, fanned out
// across the codec's worker pool for large shards.
func (c *Codec) runProg(p *rowProg, srcs, outs [][]byte, size int) {
	nBlocks := (size + groupBlock - 1) / groupBlock
	units := len(p.groups) * nBlocks
	c.forRows(units, size, func(u int) {
		g := u / nBlocks
		t0 := (u % nBlocks) * groupBlock
		t1 := t0 + groupBlock
		if t1 > size {
			t1 = size
		}
		p.groups[g].run(srcs, outs[g*8:], t0, t1)
	})
}

// run accumulates this group's interleaved products over [t0, t1) and
// scatters them into the first `lanes` shards of outs.
func (gt *groupTables) run(srcs, outs [][]byte, t0, t1 int) {
	var inter [groupBlock]uint64
	n := t1 - t0
	acc := inter[:n]
	for j, src := range srcs {
		tbl := &gt.tables[j]
		for t, s := range src[t0:t1] {
			acc[t] ^= tbl[s]
		}
	}
	lanes := gt.lanes
	m := 0
	for ; m+8 <= n; m += 8 {
		var w [8]uint64
		copy(w[:], acc[m:m+8])
		transpose8x8(&w)
		for r := 0; r < lanes; r++ {
			binary.LittleEndian.PutUint64(outs[r][t0+m:], w[r])
		}
	}
	for ; m < n; m++ {
		w := acc[m]
		for r := 0; r < lanes; r++ {
			outs[r][t0+m] = byte(w >> (8 * uint(r)))
		}
	}
}

// transpose8x8 transposes an 8×8 byte matrix held in 8 uint64 words (byte
// lane r of w[t] is element (t, r)) by recursive block swaps: 4×4 blocks,
// then 2×2, then single bytes.
func transpose8x8(w *[8]uint64) {
	const (
		m4 = 0x00000000FFFFFFFF
		m2 = 0x0000FFFF0000FFFF
		m1 = 0x00FF00FF00FF00FF
	)
	for i := 0; i < 4; i++ {
		j := i + 4
		t := ((w[i] >> 32) ^ w[j]) & m4
		w[i] ^= t << 32
		w[j] ^= t
	}
	for _, i := range [4]int{0, 1, 4, 5} {
		j := i + 2
		t := ((w[i] >> 16) ^ w[j]) & m2
		w[i] ^= t << 16
		w[j] ^= t
	}
	for _, i := range [4]int{0, 2, 4, 6} {
		j := i + 1
		t := ((w[i] >> 8) ^ w[j]) & m1
		w[i] ^= t << 8
		w[j] ^= t
	}
}

// encodeProg returns the compiled parity program (rows k..n of the encode
// matrix), building it once on first use.
func (c *Codec) encodeProg() *rowProg {
	c.encodeOnce.Do(func() {
		rows := make([][]byte, 0, c.n-c.k)
		for i := c.k; i < c.n; i++ {
			rows = append(rows, c.encode.row(i))
		}
		c.parityProg = c.compileRowProg(rows)
	})
	return c.parityProg
}
