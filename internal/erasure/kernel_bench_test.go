package erasure

import (
	"math/rand"
	"testing"
)

// Microbenchmarks for the GF(256) slice kernels in isolation (32 KiB
// shards, the size the (32, 64) code produces for 1 MiB datablocks).

func kernelBufs(b *testing.B) (src, src2, dst []byte) {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	src = make([]byte, 32*1024)
	src2 = make([]byte, 32*1024)
	dst = make([]byte, 32*1024)
	rng.Read(src)
	rng.Read(src2)
	return
}

func BenchmarkKernelMulAdd(b *testing.B) {
	src, _, dst := kernelBufs(b)
	tbl := buildMulTable(0x57)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mulTableSliceAdd(tbl, src, dst)
	}
}

func BenchmarkKernelMulAdd2(b *testing.B) {
	src, src2, dst := kernelBufs(b)
	tbl1 := buildMulTable(0x57)
	tbl2 := buildMulTable(0xe3)
	b.SetBytes(int64(2 * len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mulTableSliceAdd2(tbl1, tbl2, src, src2, dst)
	}
}

func BenchmarkKernelXor(b *testing.B) {
	src, _, dst := kernelBufs(b)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xorSlice(src, dst)
	}
}
