package erasure

import "errors"

// ErrSingular is returned when a decode matrix cannot be inverted, which
// means the supplied chunk set does not span the data.
var ErrSingular = errors.New("erasure: singular decode matrix")

// matrix is a dense row-major GF(2^8) matrix.
type matrix struct {
	rows, cols int
	data       []byte
}

func newMatrix(rows, cols int) *matrix {
	return &matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

func (m *matrix) at(r, c int) byte     { return m.data[r*m.cols+c] }
func (m *matrix) set(r, c int, v byte) { m.data[r*m.cols+c] = v }
func (m *matrix) row(r int) []byte     { return m.data[r*m.cols : (r+1)*m.cols] }
func (m *matrix) swapRows(r1, r2 int) {
	if r1 == r2 {
		return
	}
	a, b := m.row(r1), m.row(r2)
	for i := range a {
		a[i], b[i] = b[i], a[i]
	}
}

// identity returns the k×k identity matrix.
func identity(k int) *matrix {
	m := newMatrix(k, k)
	for i := 0; i < k; i++ {
		m.set(i, i, 1)
	}
	return m
}

// vandermonde returns the rows×cols Vandermonde matrix with row i being
// [1, i, i², …]; any k rows are linearly independent for distinct i < 256.
func vandermonde(rows, cols int) *matrix {
	m := newMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.set(r, c, gfExp(byte(r), c))
		}
	}
	return m
}

// mul returns m × other.
func (m *matrix) mul(other *matrix) *matrix {
	out := newMatrix(m.rows, other.cols)
	for r := 0; r < m.rows; r++ {
		for c := 0; c < other.cols; c++ {
			var acc byte
			for k := 0; k < m.cols; k++ {
				acc ^= gfMul(m.at(r, k), other.at(k, c))
			}
			out.set(r, c, acc)
		}
	}
	return out
}

// subMatrix returns rows [rmin,rmax) and cols [cmin,cmax) as a copy.
func (m *matrix) subMatrix(rmin, rmax, cmin, cmax int) *matrix {
	out := newMatrix(rmax-rmin, cmax-cmin)
	for r := rmin; r < rmax; r++ {
		for c := cmin; c < cmax; c++ {
			out.set(r-rmin, c-cmin, m.at(r, c))
		}
	}
	return out
}

// invert returns the inverse of a square matrix via Gauss–Jordan
// elimination, or ErrSingular.
func (m *matrix) invert() (*matrix, error) {
	if m.rows != m.cols {
		return nil, errors.New("erasure: cannot invert non-square matrix")
	}
	k := m.rows
	work := newMatrix(k, 2*k)
	for r := 0; r < k; r++ {
		copy(work.row(r)[:k], m.row(r))
		work.set(r, k+r, 1)
	}
	for col := 0; col < k; col++ {
		// Find a pivot.
		pivot := -1
		for r := col; r < k; r++ {
			if work.at(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		work.swapRows(col, pivot)
		// Scale the pivot row to 1.
		inv := gfInv(work.at(col, col))
		row := work.row(col)
		for i := range row {
			row[i] = gfMul(row[i], inv)
		}
		// Eliminate the column from all other rows.
		for r := 0; r < k; r++ {
			if r == col {
				continue
			}
			factor := work.at(r, col)
			if factor == 0 {
				continue
			}
			target := work.row(r)
			mulSliceAdd(factor, row, target)
		}
	}
	return work.subMatrix(0, k, k, 2*k), nil
}
