package erasure

import (
	"container/list"
	"sync"
)

// inverseCache is an LRU of decode programs — inverted k×k decode matrices
// plus their grouped multiplication tables — keyed by the (sorted)
// chunk-index set they were derived from. In steady state a retrieval
// committee produces the same index set for every datablock, so Decode
// skips Gaussian elimination (and table compilation) entirely after the
// first miss.
//
// Cached entries are immutable once inserted; callers must not write to a
// returned entry's matrix or tables.
type inverseCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *cacheeElem
	entries  map[string]*list.Element

	hits, misses uint64
}

type cacheElem struct {
	key   string
	entry *decodeEntry
}

func newInverseCache(capacity int) *inverseCache {
	if capacity <= 0 {
		return nil
	}
	return &inverseCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element, capacity),
	}
}

// get returns the cached entry for key, or nil on a miss.
func (c *inverseCache) get(key string) *decodeEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheElem).entry
}

// put inserts entry under key, evicting the least recently used entry when
// full. Re-inserting an existing key refreshes its recency.
func (c *inverseCache) put(key string, entry *decodeEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheElem).entry = entry
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheElem).key)
		}
	}
	c.entries[key] = c.order.PushFront(&cacheElem{key: key, entry: entry})
}

// stats returns the hit/miss counters.
func (c *inverseCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// CacheStats reports the decode-matrix cache counters. Steady-state
// retrieval should show hits growing and misses constant; the cache-hit
// regression test in erasure_test.go asserts exactly that.
func (c *Codec) CacheStats() (hits, misses uint64) {
	if c.inverses == nil {
		return 0, 0
	}
	return c.inverses.stats()
}
