package erasure

import "runtime"

// Defaults for Options fields left zero.
const (
	// DefaultCacheSize is the default capacity of the decode-matrix LRU.
	// A steady-state retrieval committee re-sees the same index set
	// almost every time, so a handful of entries suffices. Entries are
	// not free: beyond the k×k inverse, a large-shard decode lazily
	// compiles ~ceil(k/8)·k·2 KiB of grouped tables per entry (~256 KiB
	// at k=32), so the default is kept small; raise CacheSize only if
	// responder sets genuinely churn.
	DefaultCacheSize = 8

	// parallelMinShard is the per-shard byte threshold below which row
	// generation stays serial: goroutine fan-out costs more than it saves
	// on small blocks.
	parallelMinShard = 16 * 1024
)

// Options tunes a Codec. The zero value selects sensible defaults, so
// NewCodec(k, n) behaves identically to
// NewCodecWithOptions(k, n, Options{}).
type Options struct {
	// Parallel is the maximum number of worker goroutines used for
	// parity-row generation and decode-row reconstruction on large blocks.
	// 0 means runtime.NumCPU(); 1 or any negative value forces the serial
	// path (mirroring CacheSize, where negative disables the feature).
	// Small shards (< 16 KiB) always run serially regardless.
	Parallel int

	// CacheSize is the capacity (entries) of the LRU cache of inverted
	// decode matrices, keyed by the selected chunk-index set. 0 means
	// DefaultCacheSize; negative disables caching.
	CacheSize int
}

// workers resolves the effective worker count.
func (o Options) workers() int {
	if o.Parallel < 0 {
		return 1
	}
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.NumCPU()
}

// cacheSize resolves the effective cache capacity (0 = disabled).
func (o Options) cacheSize() int {
	if o.CacheSize < 0 {
		return 0
	}
	if o.CacheSize == 0 {
		return DefaultCacheSize
	}
	return o.CacheSize
}
