package erasure

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFFieldAxioms(t *testing.T) {
	// Exhaustively verify multiplicative inverses and distributivity on a
	// sample; the field is small enough for full inverse coverage.
	for a := 1; a < 256; a++ {
		inv := gfInv(byte(a))
		if got := gfMul(byte(a), inv); got != 1 {
			t.Fatalf("gfMul(%d, inv) = %d, want 1", a, got)
		}
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		left := gfMul(a, b^c)
		right := gfMul(a, b) ^ gfMul(a, c)
		if left != right {
			t.Fatalf("distributivity fails: %d*(%d^%d)=%d, want %d", a, b, c, left, right)
		}
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatalf("commutativity fails for %d,%d", a, b)
		}
	}
}

func TestGFMulAssociative(t *testing.T) {
	check := func(a, b, c byte) bool {
		return gfMul(gfMul(a, b), c) == gfMul(a, gfMul(b, c))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestGFExp(t *testing.T) {
	if gfExp(2, 0) != 1 {
		t.Error("x^0 must be 1")
	}
	if gfExp(0, 5) != 0 {
		t.Error("0^5 must be 0")
	}
	// gfExp(g, k) must equal repeated multiplication.
	acc := byte(1)
	for k := 0; k < 300; k++ {
		if got := gfExp(3, k); got != acc {
			t.Fatalf("gfExp(3, %d) = %d, want %d", k, got, acc)
		}
		acc = gfMul(acc, 3)
	}
}

func TestMatrixInvertIdentity(t *testing.T) {
	for k := 1; k <= 8; k++ {
		m := identity(k)
		inv, err := m.invert()
		if err != nil {
			t.Fatalf("identity %d: %v", k, err)
		}
		for r := 0; r < k; r++ {
			for c := 0; c < k; c++ {
				want := byte(0)
				if r == c {
					want = 1
				}
				if inv.at(r, c) != want {
					t.Fatalf("inverse of identity differs at (%d,%d)", r, c)
				}
			}
		}
	}
}

func TestMatrixInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(12)
		m := newMatrix(k, k)
		for i := range m.data {
			m.data[i] = byte(rng.Intn(256))
		}
		inv, err := m.invert()
		if err != nil {
			continue // singular random matrix; skip
		}
		prod := m.mul(inv)
		for r := 0; r < k; r++ {
			for c := 0; c < k; c++ {
				want := byte(0)
				if r == c {
					want = 1
				}
				if prod.at(r, c) != want {
					t.Fatalf("M * M^-1 not identity at (%d,%d)", r, c)
				}
			}
		}
	}
}

func TestMatrixSingular(t *testing.T) {
	m := newMatrix(2, 2) // all zeros
	if _, err := m.invert(); err == nil {
		t.Fatal("inverting the zero matrix must fail")
	}
}

func TestNewCodecParams(t *testing.T) {
	cases := []struct {
		k, n    int
		wantErr bool
	}{
		{1, 1, false},
		{2, 4, false},
		{100, 256, false},
		{0, 4, true},
		{5, 4, true},
		{100, 300, true}, // GF(2^8) caps total chunks at 256
		{1, 257, true},
	}
	for _, c := range cases {
		_, err := NewCodec(c.k, c.n)
		if (err != nil) != c.wantErr {
			t.Errorf("NewCodec(%d,%d) err=%v, wantErr=%v", c.k, c.n, err, c.wantErr)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range []struct{ k, n int }{{1, 4}, {2, 4}, {2, 7}, {3, 7}, {5, 16}, {11, 32}, {43, 128}} {
		codec, err := NewCodec(cfg.k, cfg.n)
		if err != nil {
			t.Fatal(err)
		}
		for _, size := range []int{0, 1, 17, 1000, 4096} {
			data := make([]byte, size)
			rng.Read(data)
			chunks, err := codec.Encode(data)
			if err != nil {
				t.Fatalf("(%d,%d) size %d: %v", cfg.k, cfg.n, size, err)
			}
			if len(chunks) != cfg.n {
				t.Fatalf("got %d chunks, want %d", len(chunks), cfg.n)
			}
			// Decode from the systematic prefix.
			got, err := codec.Decode(chunks[:cfg.k], size)
			if err != nil {
				t.Fatalf("decode systematic: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("systematic round trip mismatch at size %d", size)
			}
			// Decode from the parity-heavy suffix.
			got, err = codec.Decode(chunks[cfg.n-cfg.k:], size)
			if err != nil {
				t.Fatalf("decode parity: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("parity round trip mismatch at size %d", size)
			}
		}
	}
}

func TestDecodeAnyKSubset(t *testing.T) {
	const k, n = 3, 10
	codec, err := NewCodec(k, n)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the quick brown fox jumps over the lazy dog")
	chunks, err := codec.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		perm := rng.Perm(n)[:k]
		subset := make([]Chunk, 0, k)
		for _, idx := range perm {
			subset = append(subset, chunks[idx])
		}
		got, err := codec.Decode(subset, len(data))
		if err != nil {
			t.Fatalf("subset %v: %v", perm, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("subset %v: wrong reconstruction", perm)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	codec, err := NewCodec(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello world, this is a test message")
	chunks, _ := codec.Encode(data)

	if _, err := codec.Decode(chunks[:2], len(data)); err == nil {
		t.Error("decoding with k-1 chunks must fail")
	}
	// Duplicate chunks do not count twice.
	dup := []Chunk{chunks[0], chunks[0], chunks[0]}
	if _, err := codec.Decode(dup, len(data)); err == nil {
		t.Error("decoding with duplicated chunk must fail")
	}
	// Out-of-range index is skipped.
	bad := []Chunk{chunks[0], chunks[1], {Index: 99, Data: chunks[2].Data}}
	if _, err := codec.Decode(bad, len(data)); err == nil {
		t.Error("decoding with out-of-range chunk index must fail")
	}
	// Wrong chunk size is an explicit error.
	short := []Chunk{chunks[0], chunks[1], {Index: 2, Data: chunks[2].Data[:1]}}
	if _, err := codec.Decode(short, len(data)); err == nil {
		t.Error("decoding with truncated chunk must fail")
	}
}

func TestCorruptedChunkChangesOutput(t *testing.T) {
	// Reed-Solomon without verification cannot detect corruption; Leopard
	// layers Merkle proofs on top. This test documents that a corrupted
	// chunk yields different (wrong) data rather than an error.
	codec, err := NewCodec(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("corruption test payload!")
	chunks, _ := codec.Encode(data)
	chunks[4].Data[0] ^= 0xff
	got, err := codec.Decode([]Chunk{chunks[3], chunks[4]}, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, data) {
		t.Fatal("corrupted chunk should have altered the reconstruction")
	}
}

func TestReconstructRegeneratesAllChunks(t *testing.T) {
	codec, err := NewCodec(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("reconstruct me please, I am a datablock")
	chunks, _ := codec.Encode(data)
	rebuilt, err := codec.Reconstruct(chunks[4:6], len(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(rebuilt) != 6 {
		t.Fatalf("got %d rebuilt chunks, want 6", len(rebuilt))
	}
	for i := range chunks {
		if !bytes.Equal(chunks[i].Data, rebuilt[i].Data) {
			t.Errorf("chunk %d differs after reconstruction", i)
		}
	}
}

// TestPropertyRoundTrip drives random (k, n, payload) through the codec.
func TestPropertyRoundTrip(t *testing.T) {
	check := func(kSeed, nSeed uint8, data []byte) bool {
		k := int(kSeed)%20 + 1
		n := k + int(nSeed)%20
		codec, err := NewCodec(k, n)
		if err != nil {
			return false
		}
		chunks, err := codec.Encode(data)
		if err != nil {
			return false
		}
		// Use every k-th rotation as the subset.
		subset := make([]Chunk, 0, k)
		for i := 0; i < k; i++ {
			subset = append(subset, chunks[(i*2+1)%n])
		}
		// Deduplicate indices (rotation may collide when n < 2k).
		seen := map[int]bool{}
		uniq := subset[:0]
		for _, c := range subset {
			if !seen[c.Index] {
				seen[c.Index] = true
				uniq = append(uniq, c)
			}
		}
		for i := 0; len(uniq) < k && i < n; i++ {
			if !seen[chunks[i].Index] {
				seen[chunks[i].Index] = true
				uniq = append(uniq, chunks[i])
			}
		}
		got, err := codec.Decode(uniq, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode100KB(b *testing.B) {
	codec, err := NewCodec(11, 32) // f+1=11 of n=32
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 100*1024)
	rand.New(rand.NewSource(5)).Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode100KB(b *testing.B) {
	codec, err := NewCodec(11, 32)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 100*1024)
	rand.New(rand.NewSource(5)).Read(data)
	chunks, _ := codec.Encode(data)
	parity := chunks[21:32]
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Decode(parity, len(data)); err != nil {
			b.Fatal(err)
		}
	}
}
