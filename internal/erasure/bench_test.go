package erasure

import (
	"math/rand"
	"testing"
)

// Throughput benchmarks for the dissemination hot path at the paper's
// retrieval-committee shape: a (k=f+1, n) code at n=64 over 1 MiB payloads.
// MB/s is reported via b.SetBytes; compare against the numbers recorded in
// CHANGES.md when touching the GF(256) kernels.

const (
	benchK    = 32
	benchN    = 64
	benchSize = 1 << 20 // 1 MiB
)

func benchData(b *testing.B) []byte {
	b.Helper()
	data := make([]byte, benchSize)
	rand.New(rand.NewSource(5)).Read(data)
	return data
}

func BenchmarkErasureEncode(b *testing.B) {
	codec, err := NewCodec(benchK, benchN)
	if err != nil {
		b.Fatal(err)
	}
	data := benchData(b)
	b.SetBytes(benchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkErasureDecode(b *testing.B) {
	codec, err := NewCodec(benchK, benchN)
	if err != nil {
		b.Fatal(err)
	}
	data := benchData(b)
	chunks, err := codec.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	// Parity-only selection: the worst case, where no systematic chunk
	// survives and every output row is a full matrix-vector product.
	parity := chunks[benchN-benchK:]
	b.SetBytes(benchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Decode(parity, benchSize); err != nil {
			b.Fatal(err)
		}
	}
}
