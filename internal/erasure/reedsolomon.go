package erasure

import (
	"errors"
	"fmt"
)

// Errors returned by the codec.
var (
	ErrInvalidParams = errors.New("erasure: invalid code parameters")
	ErrTooFewChunks  = errors.New("erasure: not enough chunks to reconstruct")
	ErrChunkSize     = errors.New("erasure: inconsistent chunk sizes")
	ErrShortData     = errors.New("erasure: encoded length does not match")
)

// Chunk is one erasure-coded piece of a message along with its index in the
// code (0..n-1). Indices < k carry systematic data.
type Chunk struct {
	Index int
	Data  []byte
}

// Codec is a systematic (k, n) Reed–Solomon code: Split a message into k
// data chunks, extend to n total chunks; any k chunks reconstruct.
type Codec struct {
	k, n   int
	encode *matrix // n×k; top k×k block is the identity
}

// NewCodec builds a (k, n) codec. Requires 1 <= k <= n <= 256.
func NewCodec(k, n int) (*Codec, error) {
	if k < 1 || n < k || n > fieldSize {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrInvalidParams, k, n)
	}
	// Build a systematic encoding matrix: take the n×k Vandermonde matrix V,
	// and normalize so the top k×k block becomes the identity: E = V · (V_top)^-1.
	// Any k rows of E remain invertible because row operations preserve that
	// property of the Vandermonde construction.
	v := vandermonde(n, k)
	top := v.subMatrix(0, k, 0, k)
	topInv, err := top.invert()
	if err != nil {
		// Vandermonde top block with distinct points is always invertible.
		return nil, fmt.Errorf("erasure: internal setup failure: %w", err)
	}
	return &Codec{k: k, n: n, encode: v.mul(topInv)}, nil
}

// K returns the number of data chunks needed for reconstruction.
func (c *Codec) K() int { return c.k }

// N returns the total number of chunks produced.
func (c *Codec) N() int { return c.n }

// ChunkSize returns the chunk length for a message of dataLen bytes.
func (c *Codec) ChunkSize(dataLen int) int { return (dataLen + c.k - 1) / c.k }

// Encode splits data into k systematic chunks plus n-k parity chunks.
// The message length is restored by Decode callers via the original length.
func (c *Codec) Encode(data []byte) ([]Chunk, error) {
	size := c.ChunkSize(len(data))
	if size == 0 {
		size = 1 // allow encoding the empty message
	}
	// Systematic chunks: zero-padded slices of the message.
	shards := make([][]byte, c.n)
	for i := 0; i < c.k; i++ {
		shards[i] = make([]byte, size)
		start := i * size
		if start < len(data) {
			end := start + size
			if end > len(data) {
				end = len(data)
			}
			copy(shards[i], data[start:end])
		}
	}
	// Parity chunks: row i of the encode matrix times the data chunks.
	for i := c.k; i < c.n; i++ {
		shards[i] = make([]byte, size)
		row := c.encode.row(i)
		for j := 0; j < c.k; j++ {
			mulSliceAdd(row[j], shards[j], shards[i])
		}
	}
	out := make([]Chunk, c.n)
	for i, s := range shards {
		out[i] = Chunk{Index: i, Data: s}
	}
	return out, nil
}

// Decode reconstructs the original message of length dataLen from any k
// distinct valid chunks.
func (c *Codec) Decode(chunks []Chunk, dataLen int) ([]byte, error) {
	if len(chunks) < c.k {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrTooFewChunks, len(chunks), c.k)
	}
	size := c.ChunkSize(dataLen)
	if size == 0 {
		size = 1
	}
	// Select the first k distinct in-range chunks.
	seen := make(map[int]struct{}, c.k)
	sel := make([]Chunk, 0, c.k)
	for _, ch := range chunks {
		if ch.Index < 0 || ch.Index >= c.n {
			continue
		}
		if _, dup := seen[ch.Index]; dup {
			continue
		}
		if len(ch.Data) != size {
			return nil, fmt.Errorf("%w: chunk %d has %d bytes, want %d", ErrChunkSize, ch.Index, len(ch.Data), size)
		}
		seen[ch.Index] = struct{}{}
		sel = append(sel, ch)
		if len(sel) == c.k {
			break
		}
	}
	if len(sel) < c.k {
		return nil, fmt.Errorf("%w: only %d distinct valid chunks", ErrTooFewChunks, len(sel))
	}
	// Build the k×k decode matrix from the encode rows of the selected chunks.
	sub := newMatrix(c.k, c.k)
	for r, ch := range sel {
		copy(sub.row(r), c.encode.row(ch.Index))
	}
	inv, err := sub.invert()
	if err != nil {
		return nil, err
	}
	// data_j = sum_r inv[j][r] * chunk_r
	data := make([]byte, c.k*size)
	for j := 0; j < c.k; j++ {
		dst := data[j*size : (j+1)*size]
		row := inv.row(j)
		for r := 0; r < c.k; r++ {
			mulSliceAdd(row[r], sel[r].Data, dst)
		}
	}
	if dataLen > len(data) {
		return nil, fmt.Errorf("%w: reconstructed %d bytes, want %d", ErrShortData, len(data), dataLen)
	}
	return data[:dataLen], nil
}

// Reconstruct recomputes all n chunks from any k valid chunks; useful for a
// replica that wants to re-serve parity after recovering the data.
func (c *Codec) Reconstruct(chunks []Chunk, dataLen int) ([]Chunk, error) {
	data, err := c.Decode(chunks, dataLen)
	if err != nil {
		return nil, err
	}
	return c.Encode(data)
}
