package erasure

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Errors returned by the codec.
var (
	ErrInvalidParams = errors.New("erasure: invalid code parameters")
	ErrTooFewChunks  = errors.New("erasure: not enough chunks to reconstruct")
	ErrChunkSize     = errors.New("erasure: inconsistent chunk sizes")
	ErrShortData     = errors.New("erasure: encoded length does not match")
)

// Chunk is one erasure-coded piece of a message along with its index in the
// code (0..n-1). Indices < k carry systematic data.
type Chunk struct {
	Index int
	Data  []byte
}

// Codec is a systematic (k, n) Reed–Solomon code: Split a message into k
// data chunks, extend to n total chunks; any k chunks reconstruct.
//
// A Codec is safe for concurrent use. Heavy state is built lazily and
// shared: per-coefficient multiplication tables materialize on first use of
// a coefficient, and inverted decode matrices are cached per chunk-index
// set, so a long-lived Codec amortizes all setup across calls. Build one
// per (k, n) and reuse it.
type Codec struct {
	k, n   int
	opts   Options
	encode *matrix // n×k; top k×k block is the identity

	// tables[c] is the 256-byte multiplication table for coefficient c,
	// built lazily on first use. Concurrent builders may race benignly:
	// the table contents are deterministic, so any winner is correct.
	tables [fieldSize]atomic.Pointer[[256]byte]

	// parityProg is the grouped parity-generation program (see group.go),
	// compiled once on first large Encode.
	encodeOnce sync.Once
	parityProg *rowProg

	// inverses caches decode programs (nil when disabled).
	inverses *inverseCache
}

// NewCodec builds a (k, n) codec with default Options.
// Requires 1 <= k <= n <= 256.
func NewCodec(k, n int) (*Codec, error) {
	return NewCodecWithOptions(k, n, Options{})
}

// NewCodecWithOptions builds a (k, n) codec with explicit tuning knobs.
func NewCodecWithOptions(k, n int, opts Options) (*Codec, error) {
	if k < 1 || n < k || n > fieldSize {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrInvalidParams, k, n)
	}
	// Build a systematic encoding matrix: take the n×k Vandermonde matrix V,
	// and normalize so the top k×k block becomes the identity: E = V · (V_top)^-1.
	// Any k rows of E remain invertible because row operations preserve that
	// property of the Vandermonde construction.
	v := vandermonde(n, k)
	top := v.subMatrix(0, k, 0, k)
	topInv, err := top.invert()
	if err != nil {
		// Vandermonde top block with distinct points is always invertible.
		return nil, fmt.Errorf("erasure: internal setup failure: %w", err)
	}
	return &Codec{
		k:        k,
		n:        n,
		opts:     opts,
		encode:   v.mul(topInv),
		inverses: newInverseCache(opts.cacheSize()),
	}, nil
}

// K returns the number of data chunks needed for reconstruction.
func (c *Codec) K() int { return c.k }

// N returns the total number of chunks produced.
func (c *Codec) N() int { return c.n }

// ChunkSize returns the chunk length for a message of dataLen bytes. The
// empty message still occupies one byte per chunk so that encoded chunks
// are never zero-length; Encode, Decode and Reconstruct all agree on this.
func (c *Codec) ChunkSize(dataLen int) int {
	if dataLen <= 0 {
		return 1
	}
	return (dataLen + c.k - 1) / c.k
}

// table returns the multiplication table for coefficient coef, building it
// on first use.
func (c *Codec) table(coef byte) *[256]byte {
	if t := c.tables[coef].Load(); t != nil {
		return t
	}
	t := buildMulTable(coef)
	c.tables[coef].Store(t)
	return t
}

// rowMulAdd accumulates dst ^= Σ_j row[j]*srcs[j], one full matrix-row ×
// shard-set product. Zero coefficients are skipped, ones degrade to word
// xors, and general coefficients stream through the fused two-source kernel
// so dst is loaded and stored half as often.
func (c *Codec) rowMulAdd(row []byte, srcs [][]byte, dst []byte) {
	var pendTbl *[256]byte
	var pendSrc []byte
	for j, coef := range row {
		switch coef {
		case 0:
		case 1:
			xorSlice(srcs[j], dst)
		default:
			t := c.table(coef)
			if pendTbl == nil {
				pendTbl, pendSrc = t, srcs[j]
				continue
			}
			mulTableSliceAdd2(pendTbl, t, pendSrc, srcs[j], dst)
			pendTbl, pendSrc = nil, nil
		}
	}
	if pendTbl != nil {
		mulTableSliceAdd(pendTbl, pendSrc, dst)
	}
}

// forRows runs fn(0..rows-1), fanning out across a bounded worker pool when
// the per-row payload is large enough to amortize goroutine handoff. Rows
// must be independent (each fn(i) writes only row i).
func (c *Codec) forRows(rows, shardSize int, fn func(row int)) {
	workers := c.opts.workers()
	if workers > rows {
		workers = rows
	}
	if workers <= 1 || rows < 2 || shardSize < parallelMinShard {
		for i := 0; i < rows; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= rows {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// shardPool recycles the contiguous backing arrays used for intermediate
// shard math (Reconstruct's decoded image). Output buffers that escape to
// callers are never pooled. Buffers come back dirty: every decodeInto
// branch either overwrites dst fully or clears the rows it accumulates
// into, so no up-front memset is paid on the large-shard path.
var shardPool = sync.Pool{New: func() any { return []byte(nil) }}

func getShardBuf(n int) []byte {
	buf := shardPool.Get().([]byte)
	if cap(buf) < n {
		return make([]byte, n)
	}
	return buf[:n]
}

func putShardBuf(buf []byte) { shardPool.Put(buf) } //nolint:staticcheck // slice header boxing is fine here

// Encode splits data into k systematic chunks plus n-k parity chunks.
// The message length is restored by Decode callers via the original length.
// All chunks share one contiguous backing array (a single allocation).
func (c *Codec) Encode(data []byte) ([]Chunk, error) {
	size := c.ChunkSize(len(data))
	backing := make([]byte, c.n*size)
	shards := make([][]byte, c.n)
	for i := range shards {
		shards[i] = backing[i*size : (i+1)*size]
	}
	// Systematic chunks: zero-padded slices of the message.
	for i := 0; i < c.k; i++ {
		start := i * size
		if start < len(data) {
			end := start + size
			if end > len(data) {
				end = len(data)
			}
			copy(shards[i], data[start:end])
		}
	}
	// Parity chunks: rows k..n of the encode matrix times the data chunks.
	// Large shards go through the grouped 8-row program; small ones use
	// the per-coefficient kernels directly.
	if c.n > c.k {
		if size >= groupMinShard {
			c.runProg(c.encodeProg(), shards[:c.k], shards[c.k:], size)
		} else {
			c.forRows(c.n-c.k, size, func(p int) {
				i := c.k + p
				c.rowMulAdd(c.encode.row(i), shards[:c.k], shards[i])
			})
		}
	}
	out := make([]Chunk, c.n)
	for i, s := range shards {
		out[i] = Chunk{Index: i, Data: s}
	}
	return out, nil
}

// selectChunks picks the first k distinct in-range chunks and returns them
// sorted by index (the canonical order used for decode-matrix cache keys).
func (c *Codec) selectChunks(chunks []Chunk, size int) ([]Chunk, error) {
	if len(chunks) < c.k {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrTooFewChunks, len(chunks), c.k)
	}
	seen := make(map[int]struct{}, c.k)
	sel := make([]Chunk, 0, c.k)
	for _, ch := range chunks {
		if ch.Index < 0 || ch.Index >= c.n {
			continue
		}
		if _, dup := seen[ch.Index]; dup {
			continue
		}
		if len(ch.Data) != size {
			return nil, fmt.Errorf("%w: chunk %d has %d bytes, want %d", ErrChunkSize, ch.Index, len(ch.Data), size)
		}
		seen[ch.Index] = struct{}{}
		sel = append(sel, ch)
		if len(sel) == c.k {
			break
		}
	}
	if len(sel) < c.k {
		return nil, fmt.Errorf("%w: only %d distinct valid chunks", ErrTooFewChunks, len(sel))
	}
	sort.Slice(sel, func(i, j int) bool { return sel[i].Index < sel[j].Index })
	return sel, nil
}

// decodeEntry is one cached decode program: the inverted decode matrix for
// an index set, plus the grouped row program compiled from it on first
// large decode. Entries are shared across goroutines; the matrix and
// program are immutable once published.
type decodeEntry struct {
	inv  *matrix
	once sync.Once
	prog *rowProg
}

// program returns the grouped program for this entry, compiling it once.
func (e *decodeEntry) program(c *Codec) *rowProg {
	e.once.Do(func() {
		rows := make([][]byte, e.inv.rows)
		for j := range rows {
			rows[j] = e.inv.row(j)
		}
		e.prog = c.compileRowProg(rows)
	})
	return e.prog
}

// decodeMatrix returns the decode entry for the given (index-sorted)
// selection, consulting the LRU cache first. The returned entry is shared
// and must not be modified.
func (c *Codec) decodeMatrix(sel []Chunk) (*decodeEntry, error) {
	var key string
	if c.inverses != nil {
		kb := make([]byte, len(sel))
		for i, ch := range sel {
			kb[i] = byte(ch.Index)
		}
		key = string(kb)
		if e := c.inverses.get(key); e != nil {
			return e, nil
		}
	}
	sub := newMatrix(c.k, c.k)
	for r, ch := range sel {
		copy(sub.row(r), c.encode.row(ch.Index))
	}
	inv, err := sub.invert()
	if err != nil {
		return nil, err
	}
	e := &decodeEntry{inv: inv}
	if c.inverses != nil {
		c.inverses.put(key, e)
	}
	return e, nil
}

// decodeInto reconstructs the k data shards from sel (index-sorted, all of
// length size) into dst, which must hold k*size bytes; prior contents are
// ignored (every path overwrites or clears what it writes).
func (c *Codec) decodeInto(dst []byte, sel []Chunk, size int) error {
	// Fast path: an all-systematic selection must be exactly chunks
	// 0..k-1, which are the data itself — no matrix math at all.
	if sel[c.k-1].Index < c.k {
		for i, ch := range sel {
			copy(dst[i*size:(i+1)*size], ch.Data)
		}
		return nil
	}
	entry, err := c.decodeMatrix(sel)
	if err != nil {
		return err
	}
	// data_j = sum_r inv[j][r] * chunk_r. Large shards run the grouped
	// program; small ones use the per-coefficient kernels directly.
	srcs := make([][]byte, len(sel))
	for r, ch := range sel {
		srcs[r] = ch.Data
	}
	if size >= groupMinShard {
		outs := make([][]byte, c.k)
		for j := range outs {
			outs[j] = dst[j*size : (j+1)*size]
		}
		c.runProg(entry.program(c), srcs, outs, size)
		return nil
	}
	inv := entry.inv
	c.forRows(c.k, size, func(j int) {
		out := dst[j*size : (j+1)*size]
		clear(out) // rowMulAdd accumulates
		c.rowMulAdd(inv.row(j), srcs, out)
	})
	return nil
}

// Decode reconstructs the original message of length dataLen from any k
// distinct valid chunks.
func (c *Codec) Decode(chunks []Chunk, dataLen int) ([]byte, error) {
	size := c.ChunkSize(dataLen)
	sel, err := c.selectChunks(chunks, size)
	if err != nil {
		return nil, err
	}
	data := make([]byte, c.k*size)
	if err := c.decodeInto(data, sel, size); err != nil {
		return nil, err
	}
	if dataLen > len(data) {
		return nil, fmt.Errorf("%w: reconstructed %d bytes, want %d", ErrShortData, len(data), dataLen)
	}
	return data[:dataLen], nil
}

// Reconstruct recomputes all n chunks from any k valid chunks; useful for a
// replica that wants to re-serve parity after recovering the data. The
// intermediate decoded image lives in a pooled buffer, so the only
// allocations are the returned chunk set.
func (c *Codec) Reconstruct(chunks []Chunk, dataLen int) ([]Chunk, error) {
	size := c.ChunkSize(dataLen)
	sel, err := c.selectChunks(chunks, size)
	if err != nil {
		return nil, err
	}
	buf := getShardBuf(c.k * size)
	defer putShardBuf(buf)
	if err := c.decodeInto(buf, sel, size); err != nil {
		return nil, err
	}
	if dataLen > len(buf) {
		return nil, fmt.Errorf("%w: reconstructed %d bytes, want %d", ErrShortData, len(buf), dataLen)
	}
	return c.Encode(buf[:dataLen])
}
