package leopard_test

import (
	"testing"
	"time"

	"leopard/internal/crypto"
	"leopard/internal/leopard"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// TestNormalCaseConfirms drives the normal case end to end over the
// synchronous router: requests -> datablocks -> ready -> BFTblock -> two
// voting rounds -> confirmed and executed on every replica.
func TestNormalCaseConfirms(t *testing.T) {
	r := newRouter(t, 4, nil)
	// Leader of view 1 is replica 1 (v mod n); clients submit to the
	// non-leader replicas 2 and 3.
	r.submit(2, 20, 0)
	r.submit(3, 20, 0)
	r.advance(100*time.Millisecond, 5*time.Millisecond)

	for _, node := range r.nodes {
		st := node.Stats()
		if st.ConfirmedRequests < 40 {
			t.Errorf("replica %d confirmed %d requests, want >= 40", node.ID(), st.ConfirmedRequests)
		}
		if node.ExecutedTo() == 0 {
			t.Errorf("replica %d executed nothing", node.ID())
		}
	}
}

// TestSafetyLogsIdentical checks the paper's safety property: the blocks at
// every executed position are identical across honest replicas.
func TestSafetyLogsIdentical(t *testing.T) {
	r := newRouter(t, 7, nil)
	for i := 1; i < 7; i++ {
		r.submit(types.ReplicaID(i), 50, 0)
	}
	r.advance(200*time.Millisecond, 5*time.Millisecond)

	min := r.nodes[0].ExecutedTo()
	for _, node := range r.nodes[1:] {
		if node.ExecutedTo() < min {
			min = node.ExecutedTo()
		}
	}
	if min == 0 {
		t.Fatal("no blocks executed")
	}
	for sn := types.SeqNum(1); sn <= min; sn++ {
		ref, ok := r.nodes[0].LogBlock(sn)
		if !ok {
			t.Fatalf("replica 0 missing log block %d", sn)
		}
		refDigest := crypto.HashBFTblock(ref)
		for _, node := range r.nodes[1:] {
			b, ok := node.LogBlock(sn)
			if !ok {
				t.Fatalf("replica %d missing log block %d", node.ID(), sn)
			}
			if crypto.HashBFTblock(b) != refDigest {
				t.Fatalf("safety violation: logs differ at sn=%d between replicas 0 and %d", sn, node.ID())
			}
		}
	}
}

// TestExecutionOrderIsSequential verifies executor callbacks arrive in
// strictly increasing serial-number order with no gaps.
func TestExecutionOrderIsSequential(t *testing.T) {
	r := newRouter(t, 4, nil)
	var seqs []types.SeqNum
	r.nodes[3].SetExecutor(func(sn types.SeqNum, reqs []types.Request) {
		seqs = append(seqs, sn)
	})
	r.submit(2, 40, 0)
	r.advance(150*time.Millisecond, 5*time.Millisecond)
	if len(seqs) == 0 {
		t.Fatal("executor never invoked")
	}
	last := types.SeqNum(0)
	for _, sn := range seqs {
		if sn != last && sn != last+1 {
			t.Fatalf("execution out of order: %v", seqs)
		}
		last = sn
	}
}

// TestLeaderEquivocationRejected feeds a replica two different proposals
// for the same serial number; it must vote for at most one.
func TestLeaderEquivocationRejected(t *testing.T) {
	const n = 4
	q, _ := types.NewQuorumParams(n)
	suite, err := crypto.NewEd25519Suite(n, []byte("equivocate"))
	if err != nil {
		t.Fatal(err)
	}
	node, err := leopard.NewNode(leopard.Config{ID: 2, Quorum: q, Suite: suite})
	if err != nil {
		t.Fatal(err)
	}
	node.Start(0, transport.Discard)
	leaderID := node.Leader()

	mkProposal := func(content types.Hash) *leopard.BFTblockMsg {
		block := &types.BFTblock{View: 1, Seq: 1, Content: []types.Hash{content}}
		digest := crypto.HashBFTblock(block)
		share, err := suite.Sign(leaderID, digest)
		if err != nil {
			t.Fatal(err)
		}
		return &leopard.BFTblockMsg{Block: block, LeaderShare: share}
	}
	// Give the node the datablocks so it can vote immediately.
	dbA := &types.Datablock{Ref: types.DatablockRef{Generator: 0, Counter: 1}}
	dbB := &types.Datablock{Ref: types.DatablockRef{Generator: 3, Counter: 1}}
	hA, hB := crypto.HashDatablock(dbA), crypto.HashDatablock(dbB)
	deliver(node, 0, 0, &leopard.DatablockMsg{Block: dbA, Digest: hA})
	deliver(node, 0, 3, &leopard.DatablockMsg{Block: dbB, Digest: hB})

	countVotes := func(outs []transport.Envelope) int {
		votes := 0
		for _, env := range outs {
			if v, ok := env.Msg.(*leopard.VoteMsg); ok && v.Round == 1 {
				votes++
			}
		}
		return votes
	}
	first := countVotes(deliver(node, 0, leaderID, mkProposal(hA)))
	second := countVotes(deliver(node, 0, leaderID, mkProposal(hB)))
	if first != 1 {
		t.Fatalf("first proposal produced %d votes, want 1", first)
	}
	if second != 0 {
		t.Fatal("replica voted for an equivocating proposal with the same serial number")
	}
}

// TestProposalFromNonLeaderIgnored ensures only the view leader can open
// agreement instances.
func TestProposalFromNonLeaderIgnored(t *testing.T) {
	const n = 4
	q, _ := types.NewQuorumParams(n)
	suite, err := crypto.NewEd25519Suite(n, []byte("nonleader"))
	if err != nil {
		t.Fatal(err)
	}
	node, err := leopard.NewNode(leopard.Config{ID: 2, Quorum: q, Suite: suite})
	if err != nil {
		t.Fatal(err)
	}
	node.Start(0, transport.Discard)
	imposter := types.ReplicaID(3) // leader of view 1 is 1 (v mod n)
	if imposter == node.Leader() {
		t.Fatal("test setup: imposter is the leader")
	}
	block := &types.BFTblock{View: 1, Seq: 1}
	digest := crypto.HashBFTblock(block)
	share, _ := suite.Sign(imposter, digest)
	outs := deliver(node, 0, imposter, &leopard.BFTblockMsg{Block: block, LeaderShare: share})
	for _, env := range outs {
		if _, ok := env.Msg.(*leopard.VoteMsg); ok {
			t.Fatal("replica voted on a non-leader proposal")
		}
	}
}

// TestForgedLeaderShareRejected: a proposal whose embedded share does not
// verify must not be voted on.
func TestForgedLeaderShareRejected(t *testing.T) {
	const n = 4
	q, _ := types.NewQuorumParams(n)
	suite, err := crypto.NewEd25519Suite(n, []byte("forged"))
	if err != nil {
		t.Fatal(err)
	}
	node, err := leopard.NewNode(leopard.Config{ID: 2, Quorum: q, Suite: suite})
	if err != nil {
		t.Fatal(err)
	}
	node.Start(0, transport.Discard)
	block := &types.BFTblock{View: 1, Seq: 1}
	bad := crypto.Share{Signer: node.Leader(), Sig: make([]byte, 64)}
	outs := deliver(node, 0, node.Leader(), &leopard.BFTblockMsg{Block: block, LeaderShare: bad})
	for _, env := range outs {
		if _, ok := env.Msg.(*leopard.VoteMsg); ok {
			t.Fatal("replica voted despite a forged leader share")
		}
	}
}

// TestDatablockGeneratorSpoofRejected: datablocks claiming another replica
// as generator are dropped (channels are authenticated).
func TestDatablockGeneratorSpoofRejected(t *testing.T) {
	r := newRouter(t, 4, nil)
	spoofed := &types.Datablock{
		Ref:      types.DatablockRef{Generator: 2, Counter: 1},
		Requests: []types.Request{{ClientID: 1, Seq: 1, Payload: []byte("x")}},
	}
	digest := crypto.HashDatablock(spoofed)
	// Replica 3 sends a datablock that claims replica 2 generated it.
	outs := deliver(r.nodes[0], r.now, 3, &leopard.DatablockMsg{Block: spoofed, Digest: digest})
	if len(outs) != 0 {
		t.Fatal("spoofed datablock was accepted (produced output)")
	}
	if _, ok := r.nodes[0].Datablock(digest); ok {
		t.Fatal("spoofed datablock entered the pool")
	}
}

// TestDuplicateCounterIgnored: a second datablock reusing (generator,
// counter) must not be admitted (Alg. 1's repetitive-counter rule).
func TestDuplicateCounterIgnored(t *testing.T) {
	r := newRouter(t, 4, nil)
	db1 := &types.Datablock{Ref: types.DatablockRef{Generator: 2, Counter: 9},
		Requests: []types.Request{{ClientID: 1, Seq: 1, Payload: []byte("a")}}}
	db2 := &types.Datablock{Ref: types.DatablockRef{Generator: 2, Counter: 9},
		Requests: []types.Request{{ClientID: 1, Seq: 2, Payload: []byte("b")}}}
	h1, h2 := crypto.HashDatablock(db1), crypto.HashDatablock(db2)
	deliver(r.nodes[0], r.now, 2, &leopard.DatablockMsg{Block: db1, Digest: h1})
	deliver(r.nodes[0], r.now, 2, &leopard.DatablockMsg{Block: db2, Digest: h2})
	if _, ok := r.nodes[0].Datablock(h1); !ok {
		t.Fatal("first datablock missing")
	}
	if _, ok := r.nodes[0].Datablock(h2); ok {
		t.Fatal("duplicate-counter datablock admitted")
	}
}

// TestWatermarkWindowEnforced: proposals outside (lw, lw+k] are ignored.
func TestWatermarkWindowEnforced(t *testing.T) {
	const n = 4
	q, _ := types.NewQuorumParams(n)
	suite, err := crypto.NewEd25519Suite(n, []byte("watermark"))
	if err != nil {
		t.Fatal(err)
	}
	node, err := leopard.NewNode(leopard.Config{ID: 2, Quorum: q, Suite: suite, MaxParallel: 10})
	if err != nil {
		t.Fatal(err)
	}
	node.Start(0, transport.Discard)
	block := &types.BFTblock{View: 1, Seq: 11} // beyond lw + k = 10
	digest := crypto.HashBFTblock(block)
	share, _ := suite.Sign(node.Leader(), digest)
	outs := deliver(node, 0, node.Leader(), &leopard.BFTblockMsg{Block: block, LeaderShare: share})
	for _, env := range outs {
		if _, ok := env.Msg.(*leopard.VoteMsg); ok {
			t.Fatal("replica voted outside the watermark window")
		}
	}
}

// TestPartialBatchesFlushOnTimeout: a trickle of requests below the batch
// size must still confirm via the batch timeout.
func TestPartialBatchesFlushOnTimeout(t *testing.T) {
	r := newRouter(t, 4, func(c *leopard.Config) {
		c.DatablockSize = 1000 // never fills
		c.BFTBlockSize = 100   // never fills
		c.BatchTimeout = 10 * time.Millisecond
	})
	r.submit(2, 3, 0)
	r.advance(200*time.Millisecond, 5*time.Millisecond)
	st := r.nodes[0].Stats()
	if st.ConfirmedRequests != 3 {
		t.Fatalf("confirmed %d requests, want 3", st.ConfirmedRequests)
	}
}

// TestIdleSystemStaysQuiet: with no requests there are no proposals, no
// view changes, and no retrievals.
func TestIdleSystemStaysQuiet(t *testing.T) {
	r := newRouter(t, 4, func(c *leopard.Config) {
		c.ViewChangeTimeout = 20 * time.Millisecond
	})
	r.advance(500*time.Millisecond, 5*time.Millisecond)
	for _, node := range r.nodes {
		st := node.Stats()
		if st.ConfirmedBlocks != 0 || st.ViewChanges != 0 || st.Retrievals != 0 {
			t.Errorf("replica %d not idle: %+v", node.ID(), st)
		}
		if node.View() != 1 {
			t.Errorf("replica %d advanced to view %d while idle", node.ID(), node.View())
		}
	}
}

// TestConfirmedRequestsNotRepacked: once confirmed, a duplicate submission
// of the same request is rejected by the mempool.
func TestConfirmedRequestsNotRepacked(t *testing.T) {
	r := newRouter(t, 4, nil)
	r.submit(1, 10, 0)
	r.advance(100*time.Millisecond, 5*time.Millisecond)
	if !r.nodes[1].SubmitRequest(r.now, types.Request{ClientID: 2, Seq: 999, Payload: []byte("new")}) {
		t.Fatal("fresh request rejected")
	}
	if r.nodes[1].SubmitRequest(r.now, types.Request{ClientID: 2, Seq: 0, Payload: make([]byte, 32)}) {
		t.Fatal("already-confirmed request re-admitted")
	}
}
