package leopard

import (
	"leopard/internal/crypto"
	"leopard/internal/obs"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// maybePackDatablocks implements the generation loop of Alg. 1: extract
// pending requests, build a datablock, multicast it. Non-leader replicas
// only (every replica under RotateLeaders — there is no single leader to
// exempt); pacing is by the outstanding-datablock window, and partial
// blocks are packed once requests have waited BatchTimeout.
func (n *Node) maybePackDatablocks(out transport.Sink) {
	if n.inViewChange || (!n.cfg.RotateLeaders && n.isLeader()) {
		return
	}
	for len(n.myOutstanding) < n.cfg.MaxOutstandingDatablocks {
		full := n.reqPool.Len() >= n.cfg.DatablockSize
		stale := n.reqPool.Len() > 0 && n.now-n.lastPack >= n.cfg.BatchTimeout
		if !full && !stale {
			break
		}
		reqs, oldest := n.reqPool.Extract(n.cfg.DatablockSize)
		if len(reqs) == 0 {
			break
		}
		n.dbCounter++
		n.reserveCounter()
		db := &types.Datablock{
			Ref:      types.DatablockRef{Generator: n.cfg.ID, Counter: n.dbCounter},
			Requests: reqs,
		}
		digest := crypto.HashDatablock(db)
		n.dbPool.Add(digest, db)
		n.myOutstanding[digest] = struct{}{}
		n.myDBPacked[digest] = n.now
		n.stats.DatablocksMade++
		n.stages.Add(StageGeneration, n.now-oldest)
		n.trace(obs.EvDatablockPacked, traceID(digest), int64(len(reqs)))
		n.lastPack = n.now
		out.Broadcast(&DatablockMsg{Block: db, Digest: digest})
		// The generator holds its own datablock; announce readiness.
		n.sendReady(digest, out)
	}
}

// sendReady routes a ready announcement for digest to its vote collector —
// the fixed view leader, or the rotated per-digest owner under
// RotateLeaders — applying it locally when that is this replica.
func (n *Node) sendReady(digest types.Hash, out transport.Sink) {
	owner := n.readyOwnerOf(digest)
	if owner == n.cfg.ID {
		n.recordReady(digest, n.cfg.ID)
		return
	}
	out.Send(transport.Unicast(owner, &ReadyMsg{Digest: digest}))
}

// handleDatablock implements datablock verification (Alg. 1, lines 11-16):
// accept unless a datablock with the same counter from the same generator
// was already received, then announce readiness to the leader.
func (n *Node) handleDatablock(from types.ReplicaID, m *DatablockMsg, out transport.Sink) {
	if m.Block == nil || m.Block.Ref.Generator != from {
		// Replicas may only disseminate their own datablocks; channel
		// authentication makes the generator field trustworthy.
		return
	}
	digest := m.Digest
	if !n.cfg.TrustDigests || digest.IsZero() {
		digest = crypto.HashDatablock(m.Block)
	}
	n.acceptDatablock(digest, m.Block, from, out)
}

// acceptDatablock admits a datablock into the pool (from dissemination or
// retrieval), announces readiness, and unblocks anything waiting on it.
func (n *Node) acceptDatablock(digest types.Hash, db *types.Datablock, from types.ReplicaID, out transport.Sink) {
	if !n.dbPool.Add(digest, db) {
		return // duplicate digest or duplicate (generator, counter)
	}
	if n.readyOwnerOf(digest) == n.cfg.ID {
		// The vote collector counts itself and the generator as holders.
		n.recordReady(digest, n.cfg.ID)
		n.recordReady(digest, db.Ref.Generator)
	} else {
		n.sendReady(digest, out)
	}
	n.resolveMissing(digest, out)
}

// handleReady collects ready votes at the digest's vote collector (Alg. 3,
// Ready step). A datablock moves to the ready queue once 2f+1 distinct
// replicas hold it, guaranteeing f+1 honest holders for the retrieval
// committee.
func (n *Node) handleReady(from types.ReplicaID, m *ReadyMsg, out transport.Sink) {
	if n.readyOwnerOf(m.Digest) != n.cfg.ID {
		return
	}
	n.recordReady(m.Digest, from)
}

// recordReady adds one holder vote and enqueues the datablock for linking
// when the quorum is met (or immediately under the A2 ablation).
func (n *Node) recordReady(digest types.Hash, from types.ReplicaID) {
	if _, done := n.readySet[digest]; done {
		return
	}
	votes := n.readyVotes[digest]
	if votes == nil {
		votes = make(map[types.ReplicaID]struct{}, n.q.Quorum())
		n.readyVotes[digest] = votes
	}
	votes[from] = struct{}{}
	enough := len(votes) >= n.q.Quorum() || n.cfg.DisableReadyRound
	if enough && n.dbPool.Has(digest) {
		n.readySet[digest] = struct{}{}
		n.readyQueue = append(n.readyQueue, digest)
		delete(n.readyVotes, digest)
		// The ready quorum is observed at the digest's vote collector only —
		// the earliest such event per digest closes the dissemination stage.
		n.trace(obs.EvDatablockReady, traceID(digest), 0)
	}
}
