package leopard

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"leopard/internal/crypto"
	"leopard/internal/merkle"
	"leopard/internal/transport"
	"leopard/internal/types"
)

func roundTrip(t *testing.T, msg transport.Message) transport.Message {
	t.Helper()
	buf, err := EncodeMessage(msg)
	if err != nil {
		t.Fatalf("encode %T: %v", msg, err)
	}
	got, err := DecodeMessage(buf)
	if err != nil {
		t.Fatalf("decode %T: %v", msg, err)
	}
	return got
}

func TestWireRoundTripAllKinds(t *testing.T) {
	share := crypto.Share{Signer: 3, Sig: []byte("sig-bytes")}
	proof := crypto.Proof{Sig: []byte("proof-bytes")}
	db := &types.Datablock{
		Ref:      types.DatablockRef{Generator: 2, Counter: 7},
		Requests: []types.Request{{ClientID: 1, Seq: 2, Payload: []byte("pay")}},
	}
	block := &types.BFTblock{View: 1, Seq: 9, Content: []types.Hash{{1}, {2}}}
	cp := &CheckpointProofMsg{Seq: 50, StateHash: types.Hash{9}, Proof: proof}
	vc := ViewChangeMsg{
		NewView:    4,
		Checkpoint: cp,
		Sender:     3,
		Blocks: []NotarizedBlock{
			{Block: block, Digest: types.Hash{5}, Notarized: proof},
			{Block: block, Digest: types.Hash{6}, Notarized: proof, Confirmed: &proof},
		},
		Share: share,
	}

	msgs := []transport.Message{
		&DatablockMsg{Block: db},
		&ReadyMsg{Digest: types.Hash{1, 2}},
		&BFTblockMsg{Block: block, LeaderShare: share},
		&VoteMsg{Block: block.ID(), Round: 2, Digest: types.Hash{3}, Share: share},
		&ProofMsg{Block: block.ID(), Round: 1, Digest: types.Hash{4}, Proof: proof},
		&QueryMsg{Digests: []types.Hash{{7}, {8}}},
		&RespMsg{
			Digest: types.Hash{1}, Root: types.Hash{2},
			Chunk: []byte("chunk"), Index: 3, DataLen: 100,
			Proof: merkle.Proof{Index: 3, Steps: []merkle.ProofStep{{Hash: types.Hash{9}, Right: true}}},
		},
		&FullBlockMsg{Digest: crypto.HashDatablock(db), Block: db},
		&CheckpointMsg{Seq: 10, StateHash: types.Hash{5}, Share: share},
		cp,
		&TimeoutMsg{View: 2, Share: share},
		&vc,
		&NewViewMsg{NewView: 4, Proofs: []ViewChangeMsg{vc}, Share: share},
	}
	for _, msg := range msgs {
		got := roundTrip(t, msg)
		switch want := msg.(type) {
		case *DatablockMsg:
			gd := got.(*DatablockMsg)
			if gd.Block.Ref != want.Block.Ref || len(gd.Block.Requests) != len(want.Block.Requests) {
				t.Errorf("datablock round trip mismatch")
			}
		default:
			if !reflect.DeepEqual(got, msg) {
				t.Errorf("%T round trip mismatch:\n got %#v\nwant %#v", msg, got, msg)
			}
		}
	}
}

func TestWireRejectsGarbage(t *testing.T) {
	if _, err := DecodeMessage(nil); err == nil {
		t.Error("empty frame accepted")
	}
	if _, err := DecodeMessage([]byte{0xff, 1, 2, 3}); err == nil {
		t.Error("unknown kind accepted")
	}
	// Truncations of a valid frame must all error (or decode cleanly for
	// prefix-complete messages), never panic.
	buf, err := EncodeMessage(&VoteMsg{Block: types.BlockID{View: 1, Seq: 2}, Round: 1, Digest: types.Hash{1}, Share: crypto.Share{Signer: 1, Sig: []byte("abc")}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(buf); cut++ {
		if _, err := DecodeMessage(buf[:cut]); err == nil {
			t.Fatalf("truncated vote at %d accepted", cut)
		}
	}
}

// TestPropertyWireGarbage fuzzes the decoder with random bytes.
func TestPropertyWireGarbage(t *testing.T) {
	check := func(data []byte) bool {
		_, _ = DecodeMessage(data) // must not panic
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWireSizeUpperBoundsEncoding(t *testing.T) {
	// WireSize drives the bandwidth model; it should be close to (and for
	// safety at least) the real encoded size for bulk messages.
	db := &types.Datablock{Ref: types.DatablockRef{Generator: 1, Counter: 1}}
	for i := 0; i < 100; i++ {
		db.Requests = append(db.Requests, types.Request{ClientID: 1, Seq: uint64(i), Payload: bytes.Repeat([]byte{1}, 128)})
	}
	msg := &DatablockMsg{Block: db}
	encoded, err := EncodeMessage(msg)
	if err != nil {
		t.Fatal(err)
	}
	if msg.WireSize() < len(encoded)-64 {
		t.Errorf("WireSize %d far below encoded size %d", msg.WireSize(), len(encoded))
	}
}
