package leopard

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"leopard/internal/codec"
	"leopard/internal/crypto"
	"leopard/internal/merkle"
	"leopard/internal/storage"
	"leopard/internal/transport"
	"leopard/internal/types"
)

func roundTrip(t *testing.T, msg transport.Message) transport.Message {
	t.Helper()
	buf, err := EncodeMessage(msg)
	if err != nil {
		t.Fatalf("encode %T: %v", msg, err)
	}
	got, err := DecodeMessage(buf)
	if err != nil {
		t.Fatalf("decode %T: %v", msg, err)
	}
	return got
}

func TestWireRoundTripAllKinds(t *testing.T) {
	for _, msg := range testMessages() {
		got := roundTrip(t, msg)
		switch want := msg.(type) {
		case *DatablockMsg:
			gd := got.(*DatablockMsg)
			if gd.Block.Ref != want.Block.Ref || len(gd.Block.Requests) != len(want.Block.Requests) {
				t.Errorf("datablock round trip mismatch")
			}
		default:
			if !reflect.DeepEqual(got, msg) {
				t.Errorf("%T round trip mismatch:\n got %#v\nwant %#v", msg, got, msg)
			}
		}
	}
}

func TestWireRejectsGarbage(t *testing.T) {
	if _, err := DecodeMessage(nil); err == nil {
		t.Error("empty frame accepted")
	}
	if _, err := DecodeMessage([]byte{0xff, 1, 2, 3}); err == nil {
		t.Error("unknown kind accepted")
	}
	// Truncations of a valid frame must all error (or decode cleanly for
	// prefix-complete messages), never panic.
	buf, err := EncodeMessage(&VoteMsg{Block: types.BlockID{View: 1, Seq: 2}, Round: 1, Digest: types.Hash{1}, Share: crypto.Share{Signer: 1, Sig: []byte("abc")}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(buf); cut++ {
		if _, err := DecodeMessage(buf[:cut]); err == nil {
			t.Fatalf("truncated vote at %d accepted", cut)
		}
	}
}

// testMessages returns one instance of every wire kind, for tests that
// must cover the whole message surface.
func testMessages() []transport.Message {
	share := crypto.Share{Signer: 3, Sig: []byte("sig-bytes")}
	proof := crypto.Proof{Sig: []byte("proof-bytes")}
	db := &types.Datablock{
		Ref:      types.DatablockRef{Generator: 2, Counter: 7},
		Requests: []types.Request{{ClientID: 1, Seq: 2, Payload: []byte("pay")}},
	}
	block := &types.BFTblock{View: 1, Seq: 9, Content: []types.Hash{{1}, {2}}}
	cp := &CheckpointProofMsg{Seq: 50, StateHash: types.Hash{9}, Proof: proof}
	vc := ViewChangeMsg{
		NewView:    4,
		Checkpoint: cp,
		Sender:     3,
		Blocks: []NotarizedBlock{
			{Block: block, Digest: types.Hash{5}, Notarized: proof},
			{Block: block, Digest: types.Hash{6}, Notarized: proof, Confirmed: &proof},
		},
		Share: share,
	}
	return []transport.Message{
		&DatablockMsg{Block: db},
		&ReadyMsg{Digest: types.Hash{1, 2}},
		&BFTblockMsg{Block: block, LeaderShare: share},
		&VoteMsg{Block: block.ID(), Round: 2, Digest: types.Hash{3}, Share: share},
		&ProofMsg{Block: block.ID(), Round: 1, Digest: types.Hash{4}, Proof: proof},
		&QueryMsg{Digests: []types.Hash{{7}, {8}}},
		&RespMsg{
			Digest: types.Hash{1}, Root: types.Hash{2},
			Chunk: []byte("chunk"), Index: 3, DataLen: 100,
			Proof: merkle.Proof{Index: 3, Steps: []merkle.ProofStep{{Hash: types.Hash{9}, Right: true}}},
		},
		&FullBlockMsg{Digest: crypto.HashDatablock(db), Block: db},
		&CheckpointMsg{Seq: 10, StateHash: types.Hash{5}, Share: share},
		cp,
		&TimeoutMsg{View: 2, Share: share},
		&vc,
		&NewViewMsg{NewView: 4, Proofs: []ViewChangeMsg{vc}, Share: share},
		&StateReqMsg{Have: 41},
		&RequestMsg{
			Req: types.Request{ClientID: 7, Seq: 12, Payload: []byte("signed-pay")},
			Sig: []byte("client-sig-64-bytes"),
		},
		&ReplyMsg{Client: 7, Seq: 12, SN: 51, Result: types.Hash{8}, Share: share},
		&StateRespMsg{
			Checkpoint: cp,
			Blocks: []*storage.BlockRecord{{
				Seq:        51,
				Block:      &types.BFTblock{View: 2, Seq: 51, Content: []types.Hash{crypto.HashDatablock(db)}},
				Notarized:  proof,
				Confirmed:  crypto.Proof{Sig: []byte("sigma2")},
				Datablocks: []*types.Datablock{db},
			}},
		},
	}
}

// TestDecodeRejectsTrailingGarbage is the regression test for DecodeMessage
// accepting non-canonical frames: every kind must reject leftover bytes
// after its last field, in both decode modes.
func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	for _, msg := range testMessages() {
		buf, err := EncodeMessage(msg)
		if err != nil {
			t.Fatalf("encode %T: %v", msg, err)
		}
		extended := append(buf, 0x00)
		if _, err := DecodeMessage(extended); err == nil {
			t.Errorf("%T: borrow decode accepted trailing garbage", msg)
		}
		if _, err := DecodeMessageCopying(extended); err == nil {
			t.Errorf("%T: copying decode accepted trailing garbage", msg)
		}
	}
}

// TestDecodeRejectsOversizeMerkleProof is the regression test for
// readMerkleProof silently returning an empty proof on count > 64: a
// malformed RespMsg used to decode "successfully" with no inclusion proof.
func TestDecodeRejectsOversizeMerkleProof(t *testing.T) {
	w := &codec.Writer{}
	w.U8(kindResp)
	w.Hash(types.Hash{1}) // digest
	w.Hash(types.Hash{2}) // root
	w.Bytes([]byte("chunk"))
	w.U32(3)   // index
	w.U32(100) // data len
	w.U32(3)   // proof index
	w.U32(65)  // proof step count: impossible, must be rejected
	for i := 0; i < 65; i++ {
		w.Hash(types.Hash{byte(i)})
		w.U8(0)
	}
	if _, err := DecodeMessage(w.Buf); err == nil {
		t.Fatal("RespMsg with 65 proof steps decoded successfully")
	}
	if _, err := DecodeMessageCopying(w.Buf); err == nil {
		t.Fatal("RespMsg with 65 proof steps decoded successfully (copying)")
	}
}

// TestDecodeRejectsNonCanonicalBoolBytes asserts flag bytes other than 0/1
// are rejected, so a message cannot be re-served under alternate frames.
func TestDecodeRejectsNonCanonicalBoolBytes(t *testing.T) {
	proof := crypto.Proof{Sig: []byte("proof-bytes")}
	vc := &ViewChangeMsg{
		NewView: 4,
		Sender:  3,
		Blocks: []NotarizedBlock{{
			Block:     &types.BFTblock{View: 1, Seq: 9},
			Digest:    types.Hash{5},
			Notarized: proof,
		}},
		Share: crypto.Share{Signer: 3, Sig: []byte("sig-bytes")},
	}
	buf, err := EncodeMessage(vc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMessage(buf); err != nil {
		t.Fatalf("canonical frame must decode: %v", err)
	}
	// The checkpoint-present flag (0) sits right after kind + view + sender.
	flagOff := 1 + 8 + 4
	if buf[flagOff] != 0 {
		t.Fatalf("test layout drifted: flag byte at %d is %d", flagOff, buf[flagOff])
	}
	mutated := append([]byte(nil), buf...)
	mutated[flagOff] = 2
	if _, err := DecodeMessage(mutated); err == nil {
		t.Error("flag byte 2 accepted: message has multiple valid frames")
	}
}

// TestBorrowAndCopyDecodeAgree asserts the two decode modes produce
// bitwise-identical messages for every wire kind.
func TestBorrowAndCopyDecodeAgree(t *testing.T) {
	for _, msg := range testMessages() {
		buf, err := EncodeMessage(msg)
		if err != nil {
			t.Fatalf("encode %T: %v", msg, err)
		}
		borrowed, err := DecodeMessage(buf)
		if err != nil {
			t.Fatalf("borrow decode %T: %v", msg, err)
		}
		copied, err := DecodeMessageCopying(buf)
		if err != nil {
			t.Fatalf("copying decode %T: %v", msg, err)
		}
		encB, err := EncodeMessage(borrowed)
		if err != nil {
			t.Fatalf("re-encode borrowed %T: %v", msg, err)
		}
		encC, err := EncodeMessage(copied)
		if err != nil {
			t.Fatalf("re-encode copied %T: %v", msg, err)
		}
		if !bytes.Equal(encB, encC) {
			t.Errorf("%T: borrow and copy decodes disagree", msg)
		}
		if !bytes.Equal(encB, buf) {
			t.Errorf("%T: decode/encode not a fixpoint", msg)
		}
	}
}

// TestDecodeBorrowsChunkFromFrame pins the tentpole property: the dominant
// field of a decoded RespMsg sub-slices the frame instead of being copied.
func TestDecodeBorrowsChunkFromFrame(t *testing.T) {
	resp := &RespMsg{
		Digest: types.Hash{1}, Root: types.Hash{2},
		Chunk: bytes.Repeat([]byte{7}, 1024), Index: 3, DataLen: 4096,
		Proof: merkle.Proof{Index: 3, Steps: []merkle.ProofStep{{Hash: types.Hash{9}, Right: true}}},
	}
	buf, err := EncodeMessage(resp)
	if err != nil {
		t.Fatal(err)
	}
	// Frame layout: kind (1) + digest (32) + root (32) + chunk len (4).
	const chunkOff = 1 + 32 + 32 + 4

	got, err := DecodeMessage(buf)
	if err != nil {
		t.Fatal(err)
	}
	chunk := got.(*RespMsg).Chunk
	if &chunk[0] != &buf[chunkOff] {
		t.Error("borrow decode must sub-slice the chunk from the frame")
	}

	got, err = DecodeMessageCopying(buf)
	if err != nil {
		t.Fatal(err)
	}
	chunk = got.(*RespMsg).Chunk
	if &chunk[0] == &buf[chunkOff] {
		t.Error("copying decode must not alias the frame")
	}
	if !bytes.Equal(chunk, resp.Chunk) {
		t.Error("chunk corrupted by copying decode")
	}
}

// TestPropertyWireGarbage fuzzes the decoder with random bytes.
func TestPropertyWireGarbage(t *testing.T) {
	check := func(data []byte) bool {
		_, _ = DecodeMessage(data) // must not panic
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWireSizeUpperBoundsEncoding(t *testing.T) {
	// WireSize drives the bandwidth model; it should be close to (and for
	// safety at least) the real encoded size for bulk messages.
	db := &types.Datablock{Ref: types.DatablockRef{Generator: 1, Counter: 1}}
	for i := 0; i < 100; i++ {
		db.Requests = append(db.Requests, types.Request{ClientID: 1, Seq: uint64(i), Payload: bytes.Repeat([]byte{1}, 128)})
	}
	msg := &DatablockMsg{Block: db}
	encoded, err := EncodeMessage(msg)
	if err != nil {
		t.Fatal(err)
	}
	if msg.WireSize() < len(encoded)-64 {
		t.Errorf("WireSize %d far below encoded size %d", msg.WireSize(), len(encoded))
	}
}
