package leopard_test

import (
	"testing"
	"time"

	"leopard/internal/leopard"
	"leopard/internal/storage"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// Views are 1-based, so the genesis leader is replica 1 (LeaderOf(1, 4)).
const genesisLeader = types.ReplicaID(1)

// voteAheadRestart drives the amnesia window at unit level: the leader
// proposes (persisting its embedded round-1 votes) but every returning
// vote is dropped, so nothing notarizes and the vote-ahead records sit
// above the executed frontier. The leader is then rebuilt over its
// surviving store and offered fresh — different — content for the same
// slots. It returns the rebuilt leader's reloaded-lock count and how many
// proposals it emitted in its second life.
func voteAheadRestart(t *testing.T, disable bool) (reloaded int64, reproposed int) {
	t.Helper()
	mutate := func(cfg *leopard.Config) { cfg.DisableVoteAheadLog = disable }
	r, stores := storedRouter(t, 4, mutate)
	r.drop = func(from, to types.ReplicaID, msg transport.Message) bool {
		_, isVote := msg.(*leopard.VoteMsg)
		return isVote
	}
	r.submit(2, 40, 0)
	r.advance(100*time.Millisecond, 5*time.Millisecond)

	old := r.nodes[genesisLeader]
	if old.ExecutedTo() != 0 {
		t.Fatalf("votes were dropped yet execution reached %d", old.ExecutedTo())
	}
	if !disable && old.Stats().VotesLogged == 0 {
		t.Fatal("leader proposed without logging any vote-ahead records")
	}

	// Second life: resume full delivery, but count every proposal the
	// rebuilt leader sends. Fresh requests at a different replica produce
	// different datablocks, so any proposal for a previously-voted slot
	// would be round-0 equivocation.
	r.drop = func(from, to types.ReplicaID, msg transport.Message) bool {
		if from == genesisLeader {
			if _, ok := msg.(*leopard.BFTblockMsg); ok {
				reproposed++
			}
		}
		return false
	}
	node := rebuild(t, r, genesisLeader, stores[genesisLeader], mutate)
	r.flush()
	r.submit(3, 40, 5000)
	r.advance(100*time.Millisecond, 5*time.Millisecond)
	return node.Stats().VotesReloaded, reproposed
}

// TestVoteAheadReloadPinsSlots: with the vote-ahead log enabled, a
// restarted leader reloads its round-1 locks and parks instead of
// re-proposing different content for slots it already voted on; with the
// log disabled the same schedule makes it re-propose — the equivocation
// the chaos amnesia test observes at the wire.
func TestVoteAheadReloadPinsSlots(t *testing.T) {
	reloaded, reproposed := voteAheadRestart(t, false)
	if reloaded == 0 {
		t.Error("vote-ahead log enabled: no locks reloaded at restart")
	}
	if reproposed != 0 {
		t.Errorf("vote-ahead log enabled: rebuilt leader re-proposed %d blocks over locked slots", reproposed)
	}

	reloaded, reproposed = voteAheadRestart(t, true)
	if reloaded != 0 {
		t.Errorf("vote-ahead log disabled: %d locks reloaded", reloaded)
	}
	if reproposed == 0 {
		t.Error("vote-ahead log disabled: rebuilt leader never re-proposed; amnesia window not exercised")
	}
}

// TestVotePersistFailureAbortsVote: when the very first vote persist fails,
// the vote must not leave the node — the fail-stop latches in the same
// event, before anything is signed into the wire. (Broadcasting a vote the
// store could not log would reopen the amnesia window on the next restart:
// a peer counted a vote this replica would not remember.)
func TestVotePersistFailureAbortsVote(t *testing.T) {
	const victim = types.ReplicaID(2) // not the leader: the cluster must survive it
	ffs := storage.NewFaultFS(storage.OsFS{})
	faulty, err := storage.Open(t.TempDir(), storage.Options{SegmentBytes: 4096, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer faulty.Close()
	// Every fsync fails from the start, so the victim's first AppendVote —
	// durable before return — is the first thing to hit the bad medium.
	ffs.FailNextSyncs(1 << 20)

	stores := make([]storage.Store, 4)
	for i := range stores {
		stores[i] = storage.NewMemLog()
	}
	stores[victim] = faulty
	r := newRouter(t, 4, func(cfg *leopard.Config) {
		cfg.MaxParallel = 8
		cfg.CheckpointEvery = 4
		cfg.Store = stores[cfg.ID]
	})
	votesSent := 0
	r.drop = func(from, to types.ReplicaID, msg transport.Message) bool {
		if from == victim {
			if _, ok := msg.(*leopard.VoteMsg); ok {
				votesSent++
			}
		}
		return false
	}
	r.submit(3, 40, 0)
	r.advance(200*time.Millisecond, 5*time.Millisecond)

	st := r.nodes[victim].Stats()
	if votesSent != 0 {
		t.Errorf("victim broadcast %d votes whose persist failed", votesSent)
	}
	if st.VotesLogged != 0 {
		t.Errorf("victim counted %d votes as logged on a failing store", st.VotesLogged)
	}
	if !st.WALFailed {
		t.Error("first failed vote persist did not latch the fail-stop")
	}
	if st.WALErrors == 0 {
		t.Error("no persistence failure recorded")
	}
	if r.nodes[0].ExecutedTo() == 0 {
		t.Error("cluster made no progress without the victim (quorum 3 of 4)")
	}
}

// TestRestartedVoterReadvertisesNotarization: a σ2 voter rebuilt over its
// surviving store must reload the persisted notarization certificates and
// keep advertising those blocks in its view-change messages. Without the
// durable notes, every crash-restart of a σ2 voter silently removes one
// advertiser from the quorum-intersection argument, and a confirmed block
// can eventually be redone as a dummy.
func TestRestartedVoterReadvertisesNotarization(t *testing.T) {
	// Replica 3: not the view-1 leader being silenced, and not the view-2
	// leader (replica 2) — the latter absorbs its own view-change message
	// locally, so it would never appear on the wire.
	const voter = types.ReplicaID(3)
	mutate := func(cfg *leopard.Config) {
		// Keep the watermark at 0 so nothing is checkpoint-pruned, and make
		// the view change triggerable by silencing the leader.
		cfg.CheckpointEvery = 1 << 20
		cfg.ViewChangeTimeout = 50 * time.Millisecond
	}
	r, stores := storedRouter(t, 4, mutate)
	r.submit(0, 20, 0)
	r.advance(100*time.Millisecond, 5*time.Millisecond)
	exec := r.nodes[voter].ExecutedTo()
	if exec == 0 {
		t.Fatal("cluster made no progress in the healthy phase")
	}
	if r.nodes[voter].Stats().NotesLogged == 0 {
		t.Fatal("σ2 votes cast but no notarization certificates persisted")
	}

	node := rebuild(t, r, voter, stores[voter], mutate)
	r.flush()
	if node.Stats().NotesReloaded == 0 {
		t.Fatal("restart reloaded no notarization certificates into the carried set")
	}

	// Silence the leader and submit fresh work; the stalled cluster runs a
	// view change, and the rebuilt voter's view-change message must still
	// advertise the blocks it endorsed in its previous life.
	advertised := make(map[types.SeqNum]bool)
	r.drop = func(from, to types.ReplicaID, msg transport.Message) bool {
		if from == genesisLeader {
			return true
		}
		if from == voter {
			if vc, ok := msg.(*leopard.ViewChangeMsg); ok {
				for _, nb := range vc.Blocks {
					advertised[nb.Block.Seq] = true
				}
			}
		}
		return false
	}
	r.submit(3, 10, 5000)
	r.advance(400*time.Millisecond, 5*time.Millisecond)
	if len(advertised) == 0 {
		t.Fatal("rebuilt voter sent no view-change advertisements")
	}
	for sn := types.SeqNum(1); sn <= exec; sn++ {
		if !advertised[sn] {
			t.Errorf("executed block %d not re-advertised after restart", sn)
		}
	}
}

// TestWALFailStop: a replica whose backing medium goes bad mid-run must
// latch the fail-stop state, stop voting, and leave the rest of the
// cluster to make progress without it.
func TestWALFailStop(t *testing.T) {
	const victim = types.ReplicaID(2) // not the leader: the cluster must survive it
	ffs := storage.NewFaultFS(storage.OsFS{})
	faulty, err := storage.Open(t.TempDir(), storage.Options{
		SegmentBytes:   4096,
		SyncEachAppend: true,
		FS:             ffs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer faulty.Close()

	stores := make([]storage.Store, 4)
	for i := range stores {
		stores[i] = storage.NewMemLog()
	}
	stores[victim] = faulty
	r := newRouter(t, 4, func(cfg *leopard.Config) {
		cfg.MaxParallel = 8
		cfg.CheckpointEvery = 4
		cfg.Store = stores[cfg.ID]
	})

	// Healthy phase: the faulty-store replica participates normally.
	r.submit(victim, 40, 0)
	r.submit(3, 40, 1000)
	r.advance(150*time.Millisecond, 5*time.Millisecond)
	if r.nodes[0].ExecutedTo() == 0 {
		t.Fatal("cluster made no progress in the healthy phase")
	}
	if r.nodes[victim].Stats().VotesLogged == 0 {
		t.Fatal("victim replica never voted in the healthy phase")
	}
	if r.nodes[victim].Stats().WALFailed {
		t.Fatal("fail-stop latched before any fault was injected")
	}

	// Every fsync from here on fails: the next persist attempt poisons the
	// store and the following tick latches the fail-stop.
	ffs.FailNextSyncs(1 << 20)
	r.submit(victim, 20, 40)
	r.submit(3, 20, 1040)
	r.advance(150*time.Millisecond, 5*time.Millisecond)
	if !r.nodes[victim].Stats().WALFailed {
		t.Fatal("sticky store error did not latch the fail-stop state")
	}

	// After the latch: no more votes from the victim, while the other
	// three replicas keep the pipeline moving (quorum 3 of 4 survives).
	votesAfter := 0
	r.drop = func(from, to types.ReplicaID, msg transport.Message) bool {
		if from == victim {
			if _, ok := msg.(*leopard.VoteMsg); ok {
				votesAfter++
			}
		}
		return false
	}
	before := r.nodes[0].ExecutedTo()
	r.submit(3, 40, 1060)
	r.advance(300*time.Millisecond, 5*time.Millisecond)
	if votesAfter != 0 {
		t.Errorf("fail-stopped replica sent %d votes after the latch", votesAfter)
	}
	if after := r.nodes[0].ExecutedTo(); after <= before {
		t.Errorf("cluster stalled after one replica fail-stopped: executed %d -> %d", before, after)
	}
}
