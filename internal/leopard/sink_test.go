package leopard

import (
	"testing"

	"leopard/internal/crypto"
	"leopard/internal/transport"
	"leopard/internal/types"
)

func newSinkTestNode(tb testing.TB) *Node {
	tb.Helper()
	q, err := types.NewQuorumParams(4)
	if err != nil {
		tb.Fatal(err)
	}
	suite, err := crypto.NewSimSuite(4, []byte("sink-test"))
	if err != nil {
		tb.Fatal(err)
	}
	node, err := NewNode(Config{ID: 2, Quorum: q, Suite: suite})
	if err != nil {
		tb.Fatal(err)
	}
	return node
}

// TestHonestOutboundPathNoAlloc pins the regression the Sink redesign
// fixed: with no Byzantine hook active the node hands the transport's sink
// straight to its handlers — no decorator, no filtered-slice rebuild, zero
// allocations. The cached Byzantine decorator is allocation-free per event
// too.
func TestHonestOutboundPathNoAlloc(t *testing.T) {
	n := newSinkTestNode(t)
	base := transport.Discard

	identical := true
	allocs := testing.AllocsPerRun(100, func() {
		if n.outbound(base) != base {
			identical = false
		}
	})
	if !identical {
		t.Fatal("honest outbound path must pass the transport sink through unchanged")
	}
	if allocs != 0 {
		t.Fatalf("honest outbound path allocated %.1f/op, want 0", allocs)
	}

	// An idle honest Tick must not allocate either (no slice churn left).
	allocs = testing.AllocsPerRun(100, func() {
		n.Tick(0, base)
	})
	if allocs != 0 {
		t.Fatalf("idle honest Tick allocated %.1f/op, want 0", allocs)
	}

	// The selective-attack decorator is cached on the node: active hooks
	// add filtering, not allocation.
	n.SetSelectiveAttack([]types.ReplicaID{0, 1})
	ready := &ReadyMsg{}
	allocs = testing.AllocsPerRun(100, func() {
		n.outbound(base).Send(transport.Unicast(0, ready))
	})
	if allocs != 0 {
		t.Fatalf("selective outbound path allocated %.1f/op, want 0", allocs)
	}
}

// BenchmarkSinkEmit measures the envelope emit path: node sink wrap plus
// one pushed unicast. This is the per-envelope overhead every handler pays;
// allocation regressions here fail the CI bench smoke loudly (want
// 0 allocs/op).
func BenchmarkSinkEmit(b *testing.B) {
	n := newSinkTestNode(b)
	msg := &ReadyMsg{Digest: types.Hash{1}}
	count := 0
	sink := transport.Sink(transport.SinkFunc(func(env transport.Envelope) { count++ }))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.outbound(sink).Send(transport.Unicast(1, msg))
	}
	if count != b.N {
		b.Fatalf("sank %d envelopes, want %d", count, b.N)
	}
}

// BenchmarkSinkEmitSelective is the same path through the cached Byzantine
// decorator, including a broadcast rewrite to the target set.
func BenchmarkSinkEmitSelective(b *testing.B) {
	n := newSinkTestNode(b)
	n.SetSelectiveAttack([]types.ReplicaID{0, 1})
	msg := &DatablockMsg{Block: &types.Datablock{}, Digest: types.Hash{1}}
	count := 0
	sink := transport.Sink(transport.SinkFunc(func(env transport.Envelope) { count++ }))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.outbound(sink).Broadcast(msg)
	}
	if count == 0 {
		b.Fatal("selective broadcast reached no targets")
	}
}
