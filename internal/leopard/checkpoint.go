package leopard

import (
	"encoding/binary"

	"leopard/internal/crypto"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// checkpointDigest derives the digest replicas threshold-sign for a
// checkpoint: H("checkpoint" || sn || stateHash).
func checkpointDigest(sn types.SeqNum, state types.Hash) types.Hash {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(sn))
	return crypto.HashConcat([]byte("leopard/checkpoint"), buf[:], state[:])
}

// maybeCheckpoint emits this replica's checkpoint share after executing a
// block at a multiple of the checkpoint interval (Alg. 4). The state hash
// is the running execution chain hash, identical at every honest replica
// that executed the same prefix.
func (n *Node) maybeCheckpoint(sn types.SeqNum, out transport.Sink) {
	if uint64(sn)%uint64(n.cfg.CheckpointEvery) != 0 {
		return
	}
	st := n.execState
	digest := checkpointDigest(sn, st)
	n.cpDigest[sn] = digest
	share, err := n.suite.Sign(n.cfg.ID, digest)
	if err != nil {
		return
	}
	msg := &CheckpointMsg{Seq: sn, StateHash: st, Share: share}
	if n.isLeader() {
		n.collectCheckpoint(n.cfg.ID, msg, out)
		return
	}
	out.Send(transport.Unicast(n.Leader(), msg))
}

// handleCheckpoint collects checkpoint shares at the leader.
func (n *Node) handleCheckpoint(from types.ReplicaID, m *CheckpointMsg, out transport.Sink) {
	if !n.isLeader() {
		return
	}
	n.collectCheckpoint(from, m, out)
}

func (n *Node) collectCheckpoint(from types.ReplicaID, m *CheckpointMsg, out transport.Sink) {
	if m.Seq <= n.lw {
		return // already garbage-collected
	}
	digest := checkpointDigest(m.Seq, m.StateHash)
	if err := n.suite.VerifyShare(digest, m.Share); err != nil || m.Share.Signer != from {
		return
	}
	shares := n.cpShares[m.Seq]
	if shares == nil {
		shares = make(map[types.ReplicaID]crypto.Share, n.q.Quorum())
		n.cpShares[m.Seq] = shares
	}
	if _, dup := shares[from]; dup {
		return
	}
	shares[from] = m.Share
	if len(shares) < n.q.Quorum() {
		return
	}
	all := make([]crypto.Share, 0, len(shares))
	for _, s := range shares {
		all = append(all, s)
	}
	proof, err := n.suite.Combine(digest, all)
	if err != nil {
		return
	}
	cp := &CheckpointProofMsg{Seq: m.Seq, StateHash: m.StateHash, Proof: proof}
	out.Broadcast(cp)
	n.applyCheckpoint(cp)
}

// handleCheckpointProof verifies and applies a stable checkpoint.
func (n *Node) handleCheckpointProof(from types.ReplicaID, m *CheckpointProofMsg, out transport.Sink) {
	if m.Seq <= n.lw {
		return
	}
	digest := checkpointDigest(m.Seq, m.StateHash)
	if err := n.suite.VerifyProof(digest, m.Proof); err != nil {
		return
	}
	n.applyCheckpoint(m)
}

// applyCheckpoint advances the low watermark to the checkpoint and garbage
// collects instances, datablocks and vote bookkeeping below it.
func (n *Node) applyCheckpoint(cp *CheckpointProofMsg) {
	if cp.Seq <= n.lw {
		return
	}
	n.lastCheckpoint = cp
	// The watermark always advances: a quorum has executed past cp.Seq, so
	// nothing at or below it will be proposed again. Data pruning inside
	// advanceWatermark is limited to this replica's own executed prefix,
	// so a lagging replica keeps what it still needs to catch up.
	n.advanceWatermark(cp)
}

func (n *Node) advanceWatermark(cp *CheckpointProofMsg) {
	old := n.lw
	n.lw = cp.Seq
	for sn := old + 1; sn <= cp.Seq; sn++ {
		if inst := n.instances[sn]; inst != nil && inst.block != nil {
			for _, h := range inst.block.Content {
				if sn <= n.executedTo {
					n.dbPool.Remove(h)
					delete(n.confirmedDBs, h)
					delete(n.readySet, h)
					delete(n.linked, h)
					delete(n.respCache, h)
				}
			}
		}
		if sn <= n.executedTo {
			delete(n.instances, sn)
		}
		delete(n.votedSeq, sn)
		delete(n.cpShares, sn)
		delete(n.cpDigest, sn)
	}
	// Drop buffered proofs that can no longer matter.
	for id := range n.pendingProof {
		if id.Seq <= n.lw {
			delete(n.pendingProof, id)
		}
	}
	// Sweep the retrieval serve-cooldown map: an entry is dead once its
	// cooldown lapsed (the next query would be served regardless) or its
	// datablock was pruned above, so the map stays bounded by the serves
	// of the last cooldown window instead of growing for the node's
	// lifetime.
	for key, t := range n.served {
		if n.now-t >= n.serveCooldown() || !n.dbPool.Has(key.digest) {
			delete(n.served, key)
		}
	}
}
