package leopard

import (
	"encoding/binary"

	"leopard/internal/crypto"
	"leopard/internal/obs"
	"leopard/internal/storage"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// CheckpointDigest derives the digest replicas threshold-sign for a
// checkpoint: H("checkpoint" || sn || stateHash).
func CheckpointDigest(sn types.SeqNum, state types.Hash) types.Hash {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(sn))
	return crypto.HashConcat([]byte("leopard/checkpoint"), buf[:], state[:])
}

// maybeCheckpoint emits this replica's checkpoint share after executing a
// block at a multiple of the checkpoint interval (Alg. 4). The state hash
// is the running execution chain hash, identical at every honest replica
// that executed the same prefix.
func (n *Node) maybeCheckpoint(sn types.SeqNum, out transport.Sink) {
	if uint64(sn)%uint64(n.cfg.CheckpointEvery) != 0 {
		return
	}
	st := n.execState
	digest := CheckpointDigest(sn, st)
	n.cpDigest[sn] = digest
	share, err := n.suite.Sign(n.cfg.ID, digest)
	if err != nil {
		return
	}
	msg := &CheckpointMsg{Seq: sn, StateHash: st, Share: share}
	if n.isLeader() {
		n.collectCheckpoint(n.cfg.ID, msg, out)
		return
	}
	out.Send(transport.Unicast(n.Leader(), msg))
}

// handleCheckpoint collects checkpoint shares at the leader.
func (n *Node) handleCheckpoint(from types.ReplicaID, m *CheckpointMsg, out transport.Sink) {
	if !n.isLeader() {
		return
	}
	n.collectCheckpoint(from, m, out)
}

func (n *Node) collectCheckpoint(from types.ReplicaID, m *CheckpointMsg, out transport.Sink) {
	if m.Seq <= n.lw {
		return // already garbage-collected
	}
	if m.Seq > n.lw+types.SeqNum(n.cfg.MaxParallel) {
		// No honest replica can execute beyond the watermark window, so no
		// honest share exists for this seq. Without the bound, f Byzantine
		// replicas could seed cpShares entries at arbitrary far-future seqs
		// that the watermark sweep never reaches — an unbounded map on a
		// long-running leader (regression: TestCheckpointMapsPruned).
		return
	}
	digest := CheckpointDigest(m.Seq, m.StateHash)
	if err := n.suite.VerifyShare(digest, m.Share); err != nil || m.Share.Signer != from {
		return
	}
	shares := n.cpShares[m.Seq]
	if shares == nil {
		shares = make(map[types.ReplicaID]crypto.Share, n.q.Quorum())
		n.cpShares[m.Seq] = shares
	}
	if _, dup := shares[from]; dup {
		return
	}
	shares[from] = m.Share
	if len(shares) < n.q.Quorum() {
		return
	}
	all := make([]crypto.Share, 0, len(shares))
	for _, s := range shares {
		all = append(all, s)
	}
	proof, err := n.suite.Combine(digest, all)
	if err != nil {
		return
	}
	cp := &CheckpointProofMsg{Seq: m.Seq, StateHash: m.StateHash, Proof: proof}
	out.Broadcast(cp)
	n.applyCheckpoint(cp)
}

// handleCheckpointProof verifies and applies a stable checkpoint.
func (n *Node) handleCheckpointProof(from types.ReplicaID, m *CheckpointProofMsg, out transport.Sink) {
	if m.Seq <= n.lw {
		return
	}
	digest := CheckpointDigest(m.Seq, m.StateHash)
	if err := n.suite.VerifyProof(digest, m.Proof); err != nil {
		return
	}
	n.applyCheckpoint(m)
}

// applyCheckpoint advances the low watermark to the checkpoint and garbage
// collects instances, datablocks and vote bookkeeping below it.
func (n *Node) applyCheckpoint(cp *CheckpointProofMsg) {
	if cp.Seq <= n.lw {
		return
	}
	n.lastCheckpoint = cp
	n.trace(obs.EvCheckpointStable, uint64(cp.Seq), 0)
	if n.store != nil {
		// Durable order matters: the anchor must hit disk before the log
		// below it becomes eligible for truncation, or a crash in between
		// could lose the range. SaveCheckpoint is write-through (fsync +
		// atomic rename); it is also what lets a restarting replica resume
		// from this checkpoint even when it never executed up to it.
		if err := n.store.SaveCheckpoint(storage.Checkpoint{Seq: cp.Seq, StateHash: cp.StateHash, Proof: cp.Proof}); err != nil {
			n.stats.WALErrors++
		} else if err := n.store.TruncateBelow(cp.Seq); err != nil {
			n.stats.WALErrors++
		}
	}
	// The watermark always advances: a quorum has executed past cp.Seq, so
	// nothing at or below it will be proposed again. Data pruning inside
	// advanceWatermark is limited to this replica's own executed prefix,
	// so a lagging replica keeps what it still needs to catch up.
	n.advanceWatermark(cp)
}

func (n *Node) advanceWatermark(cp *CheckpointProofMsg) {
	old := n.lw
	n.lw = cp.Seq
	n.pruneBelow()
	for sn := old + 1; sn <= cp.Seq; sn++ {
		delete(n.votedSeq, sn)
		delete(n.vote2Lock, sn)
	}
	// Sweep the checkpoint share/digest maps wholesale rather than only the
	// (old, cp.Seq] range: entries can exist at any seq at or below the new
	// watermark (e.g. after a state-transfer jump moved it far ahead), and
	// sweeping keyed on the map keeps them bounded by the live window.
	for sn := range n.cpShares {
		if sn <= n.lw {
			delete(n.cpShares, sn)
		}
	}
	for sn := range n.cpDigest {
		if sn <= n.lw {
			delete(n.cpDigest, sn)
		}
	}
	// Notarizations carried across view changes are certified by the
	// stable checkpoint once below the watermark.
	for sn := range n.carried {
		if sn <= n.lw {
			delete(n.carried, sn)
		}
	}
	// Drop buffered proofs that can no longer matter.
	for id := range n.pendingProof {
		if id.Seq <= n.lw {
			delete(n.pendingProof, id)
		}
	}
	// Sweep the retrieval serve-cooldown map: an entry is dead once its
	// cooldown lapsed (the next query would be served regardless) or its
	// datablock was pruned above, so the map stays bounded by the serves
	// of the last cooldown window instead of growing for the node's
	// lifetime.
	for key, t := range n.served {
		if n.now-t >= n.serveCooldown() || !n.dbPool.Has(key.digest) {
			delete(n.served, key)
		}
	}
	// The state-transfer serve map is already bounded (one entry per
	// requester); dropping lapsed entries is just hygiene.
	for id, s := range n.stateServed {
		if n.now-s.at >= n.serveCooldown() {
			delete(n.stateServed, id)
		}
	}
}

// pruneBelow garbage-collects execution-side state — pooled datablocks,
// instances, proof stashes, executed block headers (the confirmed log) —
// for every serial number that is both executed
// and at or below the watermark. It resumes from a cursor (prunedTo)
// rather than the previous watermark: a lagging replica skips pruning a
// range until it executes it (or jumps past it via a checkpoint anchor),
// and the cursor is what guarantees the skipped range is swept when
// execution eventually passes it instead of leaking for the node's
// lifetime.
func (n *Node) pruneBelow() {
	limit := n.lw
	if n.executedTo < limit {
		limit = n.executedTo
	}
	for sn := n.prunedTo + 1; sn <= limit; sn++ {
		// The executed block at sn lives in the confirmed log; fall back to
		// the agreement instance for blocks confirmed but not yet executed.
		// (Blocks installed by WAL replay or state transfer have no
		// instance, so the log lookup is what lets their datablocks be
		// pruned here.)
		blk := n.log[sn]
		if blk == nil {
			if inst := n.instances[sn]; inst != nil {
				blk = inst.block
			}
		}
		if blk != nil {
			for _, h := range blk.Content {
				n.dbPool.Remove(h)
				delete(n.confirmedDBs, h)
				delete(n.readySet, h)
				delete(n.linked, h)
				delete(n.respCache, h)
			}
		}
		delete(n.instances, sn)
		delete(n.proofStash, sn)
		// The executed header itself goes too: everything at or below the
		// watermark is certified by the stable checkpoint, and without this
		// the confirmed log grows for the node's lifetime.
		delete(n.log, sn)
	}
	if limit > n.prunedTo {
		n.prunedTo = limit
	}
}
