package analysis

import (
	"math"
	"testing"
)

func TestLeopardConstantScalingFactorWithAdaptiveAlpha(t *testing.T) {
	// With α = λ(n-1) and β + 4κ/τ <= λ, SF must stay bounded by a small
	// constant as n grows — the paper's headline analytical result.
	lambda := 64.0 // bytes per (n-1); β + 4κ/τ = 32 + 1.92 < 64
	var prev float64
	for _, n := range []int{16, 64, 256, 600, 2048} {
		p := DefaultParams(n, 1)
		p.Alpha = AdaptiveAlpha(n, lambda)
		sf := LeopardScalingFactor(p)
		if sf > 3.0 {
			t.Errorf("n=%d: SF=%f exceeds the constant bound", n, sf)
		}
		if prev != 0 && math.Abs(sf-prev) > 0.5 {
			t.Errorf("n=%d: SF jumped from %f to %f", n, prev, sf)
		}
		prev = sf
	}
}

func TestLeaderDisseminationScalingFactorGrowsLinearly(t *testing.T) {
	p128 := DefaultParams(128, 2000)
	p600 := DefaultParams(600, 2000)
	sf128 := LeaderDisseminationScalingFactor(p128, 1, false)
	sf600 := LeaderDisseminationScalingFactor(p600, 1, false)
	ratio := sf600 / sf128
	wantRatio := float64(600-1) / float64(128-1)
	if math.Abs(ratio-wantRatio) > 0.1 {
		t.Errorf("SF ratio = %f, want ~%f (linear in n)", ratio, wantRatio)
	}
}

func TestLeopardBeatsLeaderDisseminationAtScale(t *testing.T) {
	for _, n := range []int{64, 128, 300, 600} {
		p := DefaultParams(n, 4000)
		leo := LeopardScalingFactor(p)
		hs := LeaderDisseminationScalingFactor(p, 1, false)
		if leo >= hs {
			t.Errorf("n=%d: Leopard SF %f >= HotStuff SF %f", n, leo, hs)
		}
	}
	// Expected throughput gap at n=300 should be >= 5x with Table II
	// batch parameters (the paper's headline 5x claim).
	p := DefaultParams(300, 4000)
	p.Tau = 300
	leoTp := ExpectedThroughput(p, LeopardScalingFactor(p), 9.8e9)
	hsTp := ExpectedThroughput(p, LeaderDisseminationScalingFactor(p, 1, false), 9.8e9)
	if leoTp < 5*hsTp {
		t.Errorf("throughput gap %.1fx at n=300, want >= 5x (leo=%.0f hs=%.0f)", leoTp/hsTp, leoTp, hsTp)
	}
}

func TestGammaBehaviour(t *testing.T) {
	// Leopard's γ approaches 1/2 at large n with adaptive α.
	p := DefaultParams(600, 1)
	p.Alpha = AdaptiveAlpha(600, 64)
	gamma := LeopardGamma(p)
	if gamma < 0.33 || gamma > 0.51 {
		t.Errorf("Leopard γ = %f, want ~1/2", gamma)
	}
	// Leader-dissemination γ tends to 0 like 1/(n-1).
	g16 := LeaderDisseminationGamma(DefaultParams(16, 1), 1, false)
	g600 := LeaderDisseminationGamma(DefaultParams(600, 1), 1, false)
	if g600 >= g16 {
		t.Error("baseline γ must shrink with n")
	}
	if g600 > 1.0/599*1.1 {
		t.Errorf("baseline γ = %f, want <= ~1/(n-1)", g600)
	}
}

func TestLeopardReplicaCostDominatesAtAdaptiveAlpha(t *testing.T) {
	// With a large enough α the non-leader cost (2 + ε) exceeds the
	// leader cost (1 + ε'), making the *replica* the binding constraint —
	// the workload-balancing goal of the design.
	p := DefaultParams(300, 4000)
	if LeopardReplicaCost(p) <= LeopardLeaderCost(p) {
		t.Skip("leader still dominates at this α; acceptable for small α")
	}
	sf := LeopardScalingFactor(p)
	if sf != LeopardReplicaCost(p) {
		t.Errorf("SF %f should equal replica cost %f", sf, LeopardReplicaCost(p))
	}
}

func TestExpectedThroughputMatchesPaperScale(t *testing.T) {
	// Order-of-magnitude check: Leopard at n=600 with Table II parameters
	// on 9.8 Gbps should support >= 1e5 req/s.
	p := DefaultParams(600, 4000)
	p.Tau = 400
	tp := ExpectedThroughput(p, LeopardScalingFactor(p), 9.8e9)
	if tp < 1e5 {
		t.Errorf("expected throughput %.0f req/s, want >= 1e5", tp)
	}
}

func TestRetrievalCosts(t *testing.T) {
	// Responding cost per replica must drop sharply with n (erasure
	// amortization): Fig. 12's 163 KB -> 8 KB trend.
	p4 := DefaultParams(4, 2000)
	p128 := DefaultParams(128, 2000)
	r4 := RetrievalResponseBytes(p4)
	r128 := RetrievalResponseBytes(p128)
	if r128 >= r4/10 {
		t.Errorf("response bytes %f (n=4) -> %f (n=128): want >= 10x drop", r4, r128)
	}
	// Recovering cost stays roughly flat (the +β·logn term only).
	c4 := RetrievalRecoverBytes(p4)
	c128 := RetrievalRecoverBytes(p128)
	if c128 > 1.5*c4 {
		t.Errorf("recover bytes grew %f -> %f: want near-flat", c4, c128)
	}
}

func TestExpectedThroughputZeroSF(t *testing.T) {
	if got := ExpectedThroughput(DefaultParams(4, 1), 0, 1e9); got != 0 {
		t.Errorf("zero SF must yield 0, got %f", got)
	}
}

func TestTableIShape(t *testing.T) {
	rows := TableI()
	if len(rows) != 4 {
		t.Fatalf("Table I has %d rows", len(rows))
	}
	last := rows[len(rows)-1]
	if last.Protocol != "Leopard" || last.ScalingFactor != "O(1)" {
		t.Errorf("Leopard row wrong: %+v", last)
	}
	if last.VotingOptimistic != 2 || last.VotingFaulty != 3 {
		t.Errorf("Leopard voting rounds wrong: %+v", last)
	}
	for _, r := range rows[:3] {
		if r.ScalingFactor != "O(n)" {
			t.Errorf("%s scaling factor %s, want O(n)", r.Protocol, r.ScalingFactor)
		}
	}
}
