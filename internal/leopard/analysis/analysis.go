// Package analysis implements the closed-form communication-cost model of
// Leopard's §V-B: per-replica costs cL and cR, the scaling factor SF, and
// the scaling-up effectiveness γ, for Leopard and for the leader-
// dissemination baselines (PBFT/SBFT/HotStuff-style). The Table I bench
// evaluates this model and tests cross-check it against traffic measured on
// the simulator.
package analysis

// Params are the protocol and workload parameters of the model.
type Params struct {
	N       int     // number of replicas
	Payload float64 // bytes per request
	Alpha   float64 // α: bytes per datablock
	Beta    float64 // β: hash size in bytes (32 for SHA-256)
	Kappa   float64 // κ: vote size in bytes (48 for threshold BLS)
	Tau     float64 // τ: datablock links per BFTblock
}

// DefaultParams returns the paper's evaluation parameters for scale n with
// a datablock of dbRequests requests.
func DefaultParams(n, dbRequests int) Params {
	return Params{
		N:       n,
		Payload: 128,
		Alpha:   float64(dbRequests) * 128,
		Beta:    32,
		Kappa:   48,
		Tau:     100,
	}
}

// agreementOverheadPerPayloadByte is (β + 4κ/τ)/α: the agreement-plane
// bytes per payload byte in Leopard.
func (p Params) agreementOverheadPerPayloadByte() float64 {
	return (p.Beta + 4*p.Kappa/p.Tau) / p.Alpha
}

// LeopardLeaderCost returns cL/(Λ·payload): the leader's communication
// bytes per payload byte (paper eq. 2).
func LeopardLeaderCost(p Params) float64 {
	return p.agreementOverheadPerPayloadByte()*float64(p.N-1) + 1
}

// LeopardReplicaCost returns cR/(Λ·payload): a non-leader replica's
// communication bytes per payload byte (paper eq. 3).
func LeopardReplicaCost(p Params) float64 {
	return 2 + p.agreementOverheadPerPayloadByte()
}

// LeopardScalingFactor returns SF = max(cL, cR)/(Λ·payload) (paper §V-B).
func LeopardScalingFactor(p Params) float64 {
	l, r := LeopardLeaderCost(p), LeopardReplicaCost(p)
	if l > r {
		return l
	}
	return r
}

// LeopardGamma returns the scaling-up effectiveness Λ∆/C∆ (paper eq. 4):
// the throughput gained per unit of added per-replica bandwidth.
func LeopardGamma(p Params) float64 {
	return 1 / LeopardScalingFactor(p)
}

// LeaderDisseminationScalingFactor returns the scaling factor of protocols
// where the leader sends every request to all n-1 replicas (PBFT, SBFT,
// HotStuff): SF = n-1 + vote overhead; the leader term dominates.
func LeaderDisseminationScalingFactor(p Params, votesPerDecision float64, allToAll bool) float64 {
	// Leader: disseminate payload to n-1 replicas, plus receive votes.
	batchBytes := p.Payload * p.Tau // interpretation: τ requests per proposal
	voteOverhead := votesPerDecision * p.Kappa / batchBytes
	leader := float64(p.N-1) * (1 + voteOverhead)
	replica := 1.0 + voteOverhead
	if allToAll {
		// PBFT: every replica multicasts each vote round to n-1 peers.
		replica = 1.0 + voteOverhead*float64(p.N-1)*2
	}
	if leader > replica {
		return leader
	}
	return replica
}

// LeaderDisseminationGamma is γ for leader-dissemination protocols; it
// approaches 0 as n grows (at most 1/(n-1)).
func LeaderDisseminationGamma(p Params, votesPerDecision float64, allToAll bool) float64 {
	return 1 / LeaderDisseminationScalingFactor(p, votesPerDecision, allToAll)
}

// AdaptiveAlpha returns α = λ·(n-1), the paper's recipe for a constant
// scaling factor: datablock size growing linearly with scale.
func AdaptiveAlpha(n int, lambda float64) float64 {
	return lambda * float64(n-1)
}

// ExpectedThroughput returns C/SF: the bandwidth-limited throughput (in
// requests/sec) for per-replica capacity capBps (bits per second).
func ExpectedThroughput(p Params, sf float64, capBps float64) float64 {
	if sf <= 0 {
		return 0
	}
	bytesPerSec := capBps / 8
	return bytesPerSec / sf / p.Payload
}

// RetrievalResponseBytes returns the size of one erasure-coded retrieval
// response: α/(f+1) + β·log2(n) (paper §V-B case (b)).
func RetrievalResponseBytes(p Params) float64 {
	f := float64((p.N - 1) / 3)
	logN := 0.0
	for v := 1; v < p.N; v *= 2 {
		logN++
	}
	return p.Alpha/(f+1) + p.Beta*logN
}

// RetrievalRecoverBytes returns the cost of recovering one datablock from
// f+1 responses.
func RetrievalRecoverBytes(p Params) float64 {
	f := float64((p.N - 1) / 3)
	return (f + 1) * RetrievalResponseBytes(p) / 1 // f+1 chunks needed
}

// TableIRow is one row of the paper's Table I.
type TableIRow struct {
	Protocol         string
	LeaderCost       string // amortized communication at the leader
	ReplicaCost      string
	ScalingFactor    string
	VotingOptimistic int
	VotingFaulty     int
}

// TableI returns the qualitative comparison of Table I.
func TableI() []TableIRow {
	return []TableIRow{
		{"PBFT", "O(n)", "O(1)", "O(n)", 2, 2},
		{"SBFT", "O(n)", "O(1)", "O(n)", 1, 2},
		{"HotStuff", "O(n)", "O(1)", "O(n)", 1, 1},
		{"Leopard", "O(1)", "O(1)", "O(1)", 2, 3},
	}
}
