package leopard

import (
	"bytes"
	"testing"
)

// FuzzDecodeMessage drives the wire decoder with arbitrary frames, seeded
// with one valid encoding of every wire kind. For any input it asserts:
//
//   - neither decode mode panics;
//   - borrow and copying decode agree on accept/reject;
//   - accepted frames re-encode bitwise-identically in both modes (the
//     borrowed sub-slices carry the same bytes as the copies);
//   - the encoding is canonical: an accepted frame IS its message's
//     re-encoding, so each message has exactly one accepted frame
//     (trailing bytes, non-0/1 bool bytes, oversize counts all reject);
//   - decode → encode is a fixpoint across a second round trip.
func FuzzDecodeMessage(f *testing.F) {
	for _, msg := range testMessages() {
		buf, err := EncodeMessage(msg)
		if err != nil {
			f.Fatalf("seed encode %T: %v", msg, err)
		}
		f.Add(buf)
	}
	// Adversarial seeds: trailing garbage, impossible proof counts.
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Add(bytes.Repeat([]byte{0x07}, 100))

	f.Fuzz(func(t *testing.T, data []byte) {
		borrowed, errB := DecodeMessage(data)
		copied, errC := DecodeMessageCopying(data)
		if (errB == nil) != (errC == nil) {
			t.Fatalf("decode modes disagree: borrow err=%v, copy err=%v", errB, errC)
		}
		if errB != nil {
			return
		}
		encB, err := EncodeMessage(borrowed)
		if err != nil {
			t.Fatalf("re-encode borrowed: %v", err)
		}
		encC, err := EncodeMessage(copied)
		if err != nil {
			t.Fatalf("re-encode copied: %v", err)
		}
		if !bytes.Equal(encB, encC) {
			t.Fatal("borrow and copying decodes re-encode differently")
		}
		if !bytes.Equal(encB, data) {
			t.Fatal("accepted frame is not canonical: re-encoding differs from input")
		}
		again, err := DecodeMessage(encB)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		enc2, err := EncodeMessage(again)
		if err != nil {
			t.Fatalf("re-encode after re-decode: %v", err)
		}
		if !bytes.Equal(encB, enc2) {
			t.Fatal("decode→encode is not a fixpoint")
		}
	})
}
