package leopard

import (
	"leopard/internal/crypto"
	"leopard/internal/merkle"
	"leopard/internal/storage"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// Wire-size constants for fixed headers; payload-bearing fields are counted
// from their actual lengths. β = 32 (SHA-256) matches the paper.
const (
	hashSize   = 32
	hdrSize    = 8 // kind tag + length framing
	seqViewLen = 16
)

// DatablockMsg carries a datablock from its generator to all replicas
// (Alg. 1, line 7). Digest caches H(Block); receivers recompute it unless
// Config.TrustDigests is set (simulation-only CPU optimization).
type DatablockMsg struct {
	Block  *types.Datablock
	Digest types.Hash
}

var _ transport.Message = (*DatablockMsg)(nil)

// WireSize implements transport.Message.
func (m *DatablockMsg) WireSize() int { return hdrSize + m.Block.Size() }

// Class implements transport.Message.
func (m *DatablockMsg) Class() transport.Class { return transport.ClassDatablock }

// ReadyMsg tells the leader that the sender holds the datablock with the
// given digest (Alg. 3, Ready step). Channel authentication suffices; no
// transferable signature is needed because only the leader consumes it.
type ReadyMsg struct {
	Digest types.Hash
}

var _ transport.Message = (*ReadyMsg)(nil)

// WireSize implements transport.Message.
func (m *ReadyMsg) WireSize() int { return hdrSize + hashSize }

// Class implements transport.Message.
func (m *ReadyMsg) Class() transport.Class { return transport.ClassVote }

// BFTblockMsg is the leader's consensus proposal with its own first-round
// share (Alg. 2, pre-prepare).
type BFTblockMsg struct {
	Block       *types.BFTblock
	LeaderShare crypto.Share
}

var _ transport.Message = (*BFTblockMsg)(nil)

// WireSize implements transport.Message.
func (m *BFTblockMsg) WireSize() int {
	return hdrSize + m.Block.Size() + len(m.LeaderShare.Sig)
}

// Class implements transport.Message.
func (m *BFTblockMsg) Class() transport.Class { return transport.ClassBFTblock }

// VoteMsg is a threshold-signature share sent to the leader. Round 1 votes
// sign H(block); round 2 votes sign H(σ1).
type VoteMsg struct {
	Block  types.BlockID
	Round  int // 1 or 2
	Digest types.Hash
	Share  crypto.Share
}

var _ transport.Message = (*VoteMsg)(nil)

// WireSize implements transport.Message.
func (m *VoteMsg) WireSize() int { return hdrSize + seqViewLen + 1 + hashSize + len(m.Share.Sig) }

// Class implements transport.Message.
func (m *VoteMsg) Class() transport.Class { return transport.ClassVote }

// ProofMsg carries a combined proof from the leader: round 1 notarizes,
// round 2 confirms.
type ProofMsg struct {
	Block  types.BlockID
	Round  int
	Digest types.Hash
	Proof  crypto.Proof
}

var _ transport.Message = (*ProofMsg)(nil)

// WireSize implements transport.Message.
func (m *ProofMsg) WireSize() int { return hdrSize + seqViewLen + 1 + hashSize + len(m.Proof.Sig) }

// Class implements transport.Message.
func (m *ProofMsg) Class() transport.Class { return transport.ClassProof }

// QueryMsg asks the committee for missing datablocks (Alg. 3, Query step).
type QueryMsg struct {
	Digests []types.Hash
}

var _ transport.Message = (*QueryMsg)(nil)

// WireSize implements transport.Message.
func (m *QueryMsg) WireSize() int { return hdrSize + hashSize*len(m.Digests) }

// Class implements transport.Message.
func (m *QueryMsg) Class() transport.Class { return transport.ClassRetrieval }

// RespMsg answers a query with one erasure chunk plus a Merkle inclusion
// proof (Alg. 3, Response step).
type RespMsg struct {
	Digest  types.Hash // digest of the requested datablock
	Root    types.Hash // Merkle root over all chunks
	Chunk   []byte
	Index   int
	Proof   merkle.Proof
	DataLen int // original encoded length, needed to decode
}

var _ transport.Message = (*RespMsg)(nil)

// WireSize implements transport.Message.
func (m *RespMsg) WireSize() int {
	return hdrSize + 2*hashSize + len(m.Chunk) + 8 + m.Proof.Size()
}

// Class implements transport.Message.
func (m *RespMsg) Class() transport.Class { return transport.ClassRetrieval }

// FullBlockMsg is the ablation-A1 leader response: the whole datablock.
type FullBlockMsg struct {
	Digest types.Hash
	Block  *types.Datablock
}

var _ transport.Message = (*FullBlockMsg)(nil)

// WireSize implements transport.Message.
func (m *FullBlockMsg) WireSize() int { return hdrSize + hashSize + m.Block.Size() }

// Class implements transport.Message.
func (m *FullBlockMsg) Class() transport.Class { return transport.ClassRetrieval }

// CheckpointMsg is a replica's checkpoint share (Alg. 4).
type CheckpointMsg struct {
	Seq       types.SeqNum
	StateHash types.Hash
	Share     crypto.Share
}

var _ transport.Message = (*CheckpointMsg)(nil)

// WireSize implements transport.Message.
func (m *CheckpointMsg) WireSize() int { return hdrSize + 8 + hashSize + len(m.Share.Sig) }

// Class implements transport.Message.
func (m *CheckpointMsg) Class() transport.Class { return transport.ClassCheckpoint }

// CheckpointProofMsg is the leader's combined checkpoint certificate.
type CheckpointProofMsg struct {
	Seq       types.SeqNum
	StateHash types.Hash
	Proof     crypto.Proof
}

var _ transport.Message = (*CheckpointProofMsg)(nil)

// WireSize implements transport.Message.
func (m *CheckpointProofMsg) WireSize() int { return hdrSize + 8 + hashSize + len(m.Proof.Sig) }

// Class implements transport.Message.
func (m *CheckpointProofMsg) Class() transport.Class { return transport.ClassCheckpoint }

// TimeoutMsg votes to leave view View (view-change trigger).
type TimeoutMsg struct {
	View  types.View
	Share crypto.Share // share over the timeout digest, binds the view
}

var _ transport.Message = (*TimeoutMsg)(nil)

// WireSize implements transport.Message.
func (m *TimeoutMsg) WireSize() int { return hdrSize + 8 + len(m.Share.Sig) }

// Class implements transport.Message.
func (m *TimeoutMsg) Class() transport.Class { return transport.ClassViewChange }

// NotarizedBlock is a block header carried by view-change messages together
// with its notarization proof.
type NotarizedBlock struct {
	Block     *types.BFTblock
	Digest    types.Hash
	Notarized crypto.Proof
	Confirmed *crypto.Proof // non-nil if the sender saw a confirmation
}

// WireSize returns the carried bytes.
func (nb *NotarizedBlock) WireSize() int {
	s := nb.Block.Size() + hashSize + len(nb.Notarized.Sig)
	if nb.Confirmed != nil {
		s += len(nb.Confirmed.Sig)
	}
	return s
}

// ViewChangeMsg is sent to the next leader: <view-change, v+1, lc, B>.
type ViewChangeMsg struct {
	NewView    types.View
	Checkpoint *CheckpointProofMsg // lc: latest stable checkpoint, may be nil
	Blocks     []NotarizedBlock    // notarized/confirmed blocks above lw
	Sender     types.ReplicaID
	Share      crypto.Share // signature over the message digest
}

var _ transport.Message = (*ViewChangeMsg)(nil)

// WireSize implements transport.Message.
func (m *ViewChangeMsg) WireSize() int {
	s := hdrSize + 8 + 4 + len(m.Share.Sig)
	if m.Checkpoint != nil {
		s += m.Checkpoint.WireSize()
	}
	for i := range m.Blocks {
		s += m.Blocks[i].WireSize()
	}
	return s
}

// Class implements transport.Message.
func (m *ViewChangeMsg) Class() transport.Class { return transport.ClassViewChange }

// CarriesPayload implements transport.PayloadCarrier: view-change messages
// carry every outstanding notarized block header and can reach megabytes,
// so they use the bulk lane of the network model.
func (m *ViewChangeMsg) CarriesPayload() bool { return true }

// StateReqMsg asks a peer for checkpoint-anchored state transfer: the
// sender has executed up to Have and wants the newest stable checkpoint
// plus the executed range above it. Sent by a replica that restarted from
// its durable log (or that observes the cluster watermark ahead of its own
// execution) to a rotating set of f+1 peers, so at least one recipient is
// honest; every response is independently verifiable, so one honest
// responder suffices.
type StateReqMsg struct {
	Have types.SeqNum
}

var _ transport.Message = (*StateReqMsg)(nil)

// WireSize implements transport.Message.
func (m *StateReqMsg) WireSize() int { return hdrSize + 8 }

// Class implements transport.Message.
func (m *StateReqMsg) Class() transport.Class { return transport.ClassState }

// MaxStateBlocks bounds the executed-block records one StateRespMsg may
// carry. A recovering replica pages through the range by re-requesting with
// its advanced Have — each advance is a fresh serve-cooldown key at the
// responder, so progressive catch-up is never throttled while a stuck
// requester repeating one height is.
const MaxStateBlocks = 8

// StateRespMsg answers a StateReqMsg from the responder's durable log: the
// newest stable checkpoint certificate (the recovery anchor, may be nil
// when the responder has none) and up to MaxStateBlocks executed-block
// records continuing the requester's log. Each record is self-certifying —
// it carries the block's notarization and confirmation proofs, and the
// datablocks hash-check against the block's content — so a Byzantine
// responder cannot fabricate history.
type StateRespMsg struct {
	Checkpoint *CheckpointProofMsg
	Blocks     []*storage.BlockRecord
}

var _ transport.Message = (*StateRespMsg)(nil)

// WireSize implements transport.Message.
func (m *StateRespMsg) WireSize() int {
	s := hdrSize + 1
	if m.Checkpoint != nil {
		s += m.Checkpoint.WireSize()
	}
	for _, rec := range m.Blocks {
		s += rec.WireSize()
	}
	return s
}

// Class implements transport.Message.
func (m *StateRespMsg) Class() transport.Class { return transport.ClassState }

// CarriesPayload implements transport.PayloadCarrier: responses carry full
// datablocks (megabytes at Table II sizing), so they ride the bulk lane and
// are charged through the receiver's CPU stage.
func (m *StateRespMsg) CarriesPayload() bool { return true }

// RequestMsg is a signed client request submission: the authenticated front
// door of the serving path. Clients (and replicas forwarding on their
// behalf) send it to a replica, which verifies Sig against the client's
// public key (client.RequestDigest) before admitting the request to its
// mempool. Carries raw payload bytes, so it rides the bulk lane.
type RequestMsg struct {
	Req types.Request
	Sig []byte
}

var _ transport.Message = (*RequestMsg)(nil)

// WireSize implements transport.Message.
func (m *RequestMsg) WireSize() int { return hdrSize + m.Req.Size() + 4 + len(m.Sig) }

// Class implements transport.Message.
func (m *RequestMsg) Class() transport.Class { return transport.ClassRequest }

// ReplyMsg is an executing replica's signed reply to a client: the request
// identity, the serial number it executed at, the replica's execution chain
// result, and the replica's signature share over client.ReplyDigest. A
// client accepts once f+1 replicas report matching (SN, Result) — at least
// one is honest, so the result is the committed one. Replies are small and
// latency-sensitive: they travel the control lane (ClassAck is not bulk).
type ReplyMsg struct {
	Client uint64
	Seq    uint64
	SN     types.SeqNum
	Result types.Hash
	Share  crypto.Share
}

var _ transport.Message = (*ReplyMsg)(nil)

// WireSize implements transport.Message. The trailing 8 covers the share's
// signer id and signature length prefix (writeShare), matching EncodeMessage
// byte-for-byte so simnet bandwidth accounting does not undercount replies.
func (m *ReplyMsg) WireSize() int { return hdrSize + 24 + hashSize + 8 + len(m.Share.Sig) }

// Class implements transport.Message.
func (m *ReplyMsg) Class() transport.Class { return transport.ClassAck }

// NewViewMsg is broadcast by the new leader: <new-view, v+1, V>.
type NewViewMsg struct {
	NewView types.View
	Proofs  []ViewChangeMsg // V: 2f+1 view-change messages
	Share   crypto.Share
}

var _ transport.Message = (*NewViewMsg)(nil)

// WireSize implements transport.Message.
func (m *NewViewMsg) WireSize() int {
	s := hdrSize + 8 + len(m.Share.Sig)
	for i := range m.Proofs {
		s += m.Proofs[i].WireSize()
	}
	return s
}

// Class implements transport.Message.
func (m *NewViewMsg) Class() transport.Class { return transport.ClassViewChange }

// CarriesPayload implements transport.PayloadCarrier: new-view messages
// embed 2f+1 view-change messages (O(n) of them at O(n) size each).
func (m *NewViewMsg) CarriesPayload() bool { return true }
