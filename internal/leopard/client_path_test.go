package leopard_test

import (
	"testing"
	"time"

	"leopard/internal/client"
	"leopard/internal/crypto"
	"leopard/internal/leopard"
	"leopard/internal/mempool"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// authedNode builds a single replica with an authenticated front door: a
// real client keychain wired in as the admission verifier.
func authedNode(t *testing.T, mutate func(*leopard.Config)) (*leopard.Node, *client.Keychain) {
	t.Helper()
	q, err := types.NewQuorumParams(4)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := crypto.NewEd25519Suite(4, []byte("client-path"))
	if err != nil {
		t.Fatal(err)
	}
	keys, err := client.NewKeychain(8, []byte("client-path"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := leopard.Config{
		ID: 2, Quorum: q, Suite: suite,
		Verifier: keys.Verifier(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	node, err := leopard.NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	node.Start(0, transport.Discard)
	return node, keys
}

// TestUnsignedRejectedWhenVerifierSet: once a verifier is configured, the
// legacy unsigned submission path must be closed — otherwise signatures
// would be decorative.
func TestUnsignedRejectedWhenVerifierSet(t *testing.T) {
	node, _ := authedNode(t, nil)
	req := types.Request{ClientID: 1, Seq: 0, Payload: []byte("unsigned")}
	if node.SubmitRequest(0, req) {
		t.Fatal("unsigned SubmitRequest accepted on a verifier-configured node")
	}
	st := node.Stats()
	if st.BadSignatures != 1 || st.RejectedRequests != 1 {
		t.Fatalf("bad-signature rejection not counted: %+v", st)
	}
	if node.PendingRequests() != 0 {
		t.Fatal("rejected request reached the pool")
	}
}

// TestSignedAdmissionAndBadSignature: a correctly signed request is
// admitted; flipping one signature byte, signing with the wrong client's
// key, or mutating any signed field must all reject.
func TestSignedAdmissionAndBadSignature(t *testing.T) {
	node, keys := authedNode(t, nil)
	req := types.Request{ClientID: 3, Seq: 0, Payload: []byte("hello")}
	sig, err := keys.Sign(req)
	if err != nil {
		t.Fatal(err)
	}
	if v := node.SubmitSigned(0, req, sig); v != mempool.Admitted {
		t.Fatalf("valid signed request: verdict %v, want Admitted", v)
	}
	if node.PendingRequests() != 1 {
		t.Fatalf("pool depth %d after admission, want 1", node.PendingRequests())
	}

	bad := append([]byte(nil), sig...)
	bad[0] ^= 0x01
	if v := node.SubmitSigned(0, types.Request{ClientID: 3, Seq: 1, Payload: []byte("hello")}, bad); v != mempool.BadSignature {
		t.Fatalf("corrupt signature: verdict %v, want BadSignature", v)
	}
	// Signature over different field values must not transfer.
	forged := types.Request{ClientID: 3, Seq: 2, Payload: []byte("hello")}
	if v := node.SubmitSigned(0, forged, sig); v != mempool.BadSignature {
		t.Fatalf("replayed signature on new seq: verdict %v, want BadSignature", v)
	}
	wrongClient := types.Request{ClientID: 4, Seq: 0, Payload: []byte("hello")}
	if v := node.SubmitSigned(0, wrongClient, sig); v != mempool.BadSignature {
		t.Fatalf("other client's signature: verdict %v, want BadSignature", v)
	}
	st := node.Stats()
	if st.BadSignatures != 3 {
		t.Fatalf("BadSignatures = %d, want 3", st.BadSignatures)
	}
	if st.AdmittedRequests != 1 || st.RejectedRequests != 3 {
		t.Fatalf("admission counters wrong: %+v", st)
	}
}

// TestBadNonceRejectedAtAdmission: a seq below the client's watermark is
// refused with StaleSeq and never reaches the pool.
func TestBadNonceRejectedAtAdmission(t *testing.T) {
	node, keys := authedNode(t, nil)
	sign := func(seq uint64) (types.Request, []byte) {
		req := types.Request{ClientID: 5, Seq: seq, Payload: []byte("p")}
		sig, err := keys.Sign(req)
		if err != nil {
			t.Fatal(err)
		}
		return req, sig
	}
	req, sig := sign(10)
	if v := node.SubmitSigned(0, req, sig); v != mempool.Admitted {
		t.Fatalf("anchor request: verdict %v", v)
	}
	// Below the anchor: stale, even though correctly signed.
	req, sig = sign(7)
	if v := node.SubmitSigned(0, req, sig); v != mempool.StaleSeq {
		t.Fatalf("stale seq: verdict %v, want StaleSeq", v)
	}
	// Duplicate of a live seq.
	req, sig = sign(10)
	if v := node.SubmitSigned(0, req, sig); v != mempool.DupLive {
		t.Fatalf("duplicate live seq: verdict %v, want DupLive", v)
	}
	if node.PendingRequests() != 1 {
		t.Fatalf("pool depth %d, want 1", node.PendingRequests())
	}
}

// TestOverRateRejectedAtAdmission: per-client token buckets refuse a burst
// beyond the configured budget, without touching other clients.
func TestOverRateRejectedAtAdmission(t *testing.T) {
	node, keys := authedNode(t, func(cfg *leopard.Config) {
		cfg.Mempool = mempool.Limits{RatePerSec: 10, RateBurst: 2}
	})
	sign := func(cl, seq uint64) (types.Request, []byte) {
		req := types.Request{ClientID: cl, Seq: seq, Payload: []byte("p")}
		sig, err := keys.Sign(req)
		if err != nil {
			t.Fatal(err)
		}
		return req, sig
	}
	for seq := uint64(0); seq < 2; seq++ {
		req, sig := sign(1, seq)
		if v := node.SubmitSigned(0, req, sig); !v.OK() {
			t.Fatalf("burst request %d: verdict %v", seq, v)
		}
	}
	req, sig := sign(1, 2)
	if v := node.SubmitSigned(0, req, sig); v != mempool.RateLimited {
		t.Fatalf("over-budget request: verdict %v, want RateLimited", v)
	}
	// Another client still has a full bucket.
	req, sig = sign(2, 0)
	if v := node.SubmitSigned(0, req, sig); !v.OK() {
		t.Fatalf("other client's request: verdict %v", v)
	}
	st := node.Stats()
	if st.RateLimited != 1 {
		t.Fatalf("RateLimited = %d, want 1", st.RateLimited)
	}
	// The bucket refills: 100ms at 10/s buys one more token.
	req, sig = sign(1, 2)
	if v := node.SubmitSigned(100*time.Millisecond, req, sig); !v.OK() {
		t.Fatalf("post-refill request: verdict %v", v)
	}
}

// TestRequestMsgGoesThroughAuthentication: a peer-forwarded RequestMsg is
// verified like a direct submission — a replica cannot launder an unsigned
// request through the wire.
func TestRequestMsgGoesThroughAuthentication(t *testing.T) {
	node, keys := authedNode(t, nil)
	good := types.Request{ClientID: 2, Seq: 0, Payload: []byte("wire")}
	sig, err := keys.Sign(good)
	if err != nil {
		t.Fatal(err)
	}
	deliver(node, 0, 0, &leopard.RequestMsg{Req: good, Sig: sig})
	if node.PendingRequests() != 1 {
		t.Fatalf("signed RequestMsg not admitted: depth %d", node.PendingRequests())
	}
	forged := types.Request{ClientID: 2, Seq: 1, Payload: []byte("wire")}
	deliver(node, 0, 0, &leopard.RequestMsg{Req: forged, Sig: []byte("garbage")})
	if node.PendingRequests() != 1 {
		t.Fatal("forged RequestMsg reached the pool")
	}
	if node.Stats().BadSignatures == 0 {
		t.Fatal("forged RequestMsg not counted as a bad signature")
	}
}

// TestRepliesEmittedOnExecution: every executed request produces a signed
// ReplyMsg whose share verifies against the reply digest — the unit a
// client aggregates into an f+1 reply certificate.
func TestRepliesEmittedOnExecution(t *testing.T) {
	var replies []leopard.ReplyMsg
	r := newRouter(t, 4, nil)
	for _, node := range r.nodes {
		if node.ID() == 0 {
			node.SetReplySink(func(m leopard.ReplyMsg) { replies = append(replies, m) })
		}
	}
	// Node 1 leads view 1 and never packs its own requests; submit to
	// non-leaders so datablocks actually form.
	r.submit(0, 30, 0)
	r.submit(2, 30, 1000)
	r.advance(200*time.Millisecond, 5*time.Millisecond)

	if len(replies) == 0 {
		t.Fatal("no replies emitted despite execution")
	}
	if got := r.nodes[0].Stats().RepliesSent; got != int64(len(replies)) {
		t.Fatalf("RepliesSent = %d, sink saw %d", got, len(replies))
	}
	suite, err := crypto.NewEd25519Suite(4, []byte("router-seed"))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[[2]uint64]bool)
	for _, m := range replies {
		if m.Share.Signer != 0 {
			t.Fatalf("reply signed by %d, want replica 0", m.Share.Signer)
		}
		digest := client.ReplyDigest(m.Client, m.Seq, m.SN, m.Result)
		if err := suite.VerifyShare(digest, m.Share); err != nil {
			t.Fatalf("reply share does not verify: %v", err)
		}
		key := [2]uint64{m.Client, m.Seq}
		if seen[key] {
			t.Fatalf("duplicate reply for client %d seq %d", m.Client, m.Seq)
		}
		seen[key] = true
	}
}

// TestNoRepliesDuringReplay: WAL replay re-runs execution bookkeeping but
// must not re-send replies — the requests were answered in a previous life,
// and clients that missed the answer retransmit.
func TestNoRepliesDuringReplay(t *testing.T) {
	r, stores := storedRouter(t, 4, nil)
	r.submit(0, 60, 0)
	r.submit(2, 60, 1000)
	r.advance(100*time.Millisecond, 5*time.Millisecond)
	if r.nodes[3].ExecutedTo() == 0 {
		t.Fatal("no execution happened; test cannot exercise replay")
	}

	q, _ := types.NewQuorumParams(4)
	suite, err := crypto.NewEd25519Suite(4, []byte("router-seed"))
	if err != nil {
		t.Fatal(err)
	}
	node, err := leopard.NewNode(leopard.Config{
		ID: 3, Quorum: q, Suite: suite,
		DatablockSize: 10, BFTBlockSize: 2,
		BatchTimeout: 5 * time.Millisecond, ViewChangeTimeout: time.Hour,
		RetrievalTimeout: 10 * time.Millisecond,
		MaxParallel:      8, CheckpointEvery: 4,
		Store: stores[3],
	})
	if err != nil {
		t.Fatal(err)
	}
	var replayReplies int
	node.SetReplySink(func(leopard.ReplyMsg) { replayReplies++ })
	node.Start(r.now, transport.Discard)
	if node.Stats().BlocksReplayed == 0 {
		t.Skip("nothing replayed (anchor at frontier); replay suppression not exercised")
	}
	if replayReplies != 0 {
		t.Fatalf("replay emitted %d replies, want 0", replayReplies)
	}
	if node.Stats().RepliesSent != 0 {
		t.Fatalf("RepliesSent = %d after pure replay", node.Stats().RepliesSent)
	}
}

// TestConfirmedResubmissionGetsFreshReply: a client that missed the original
// reply certificate retransmits its confirmed request; instead of a bare
// dup-confirmed rejection, the replica re-emits a fresh signed ReplyMsg from
// its last-reply cache, so the client still completes.
func TestConfirmedResubmissionGetsFreshReply(t *testing.T) {
	var replies []leopard.ReplyMsg
	r := newRouter(t, 4, nil)
	r.nodes[0].SetReplySink(func(m leopard.ReplyMsg) { replies = append(replies, m) })

	const clientID, seq = 77, 5
	req := types.Request{ClientID: clientID, Seq: seq, Payload: []byte("retry-me")}
	if v := r.nodes[0].SubmitSigned(r.now, req, nil); v != mempool.Admitted {
		t.Fatalf("initial submission: verdict %v", v)
	}
	r.advance(200*time.Millisecond, 5*time.Millisecond)

	var original *leopard.ReplyMsg
	for i := range replies {
		if replies[i].Client == clientID && replies[i].Seq == seq {
			original = &replies[i]
		}
	}
	if original == nil {
		t.Fatal("request never executed; no original reply emitted")
	}
	first := *original

	// The client missed the certificate and retransmits. The pool rejects
	// the duplicate (as StaleSeq here: the contiguous confirmation folded
	// into the consumed watermark), but the cached reply must be re-sent —
	// identical result and a share that verifies, so f+1 such replies still
	// certify.
	replies = replies[:0]
	sentBefore := r.nodes[0].Stats().RepliesSent
	if v := r.nodes[0].SubmitSigned(r.now, req, nil); v.OK() {
		t.Fatalf("retransmission admitted: %v", v)
	}
	if len(replies) != 1 {
		t.Fatalf("retransmission produced %d replies, want 1", len(replies))
	}
	got := replies[0]
	if got.Client != clientID || got.Seq != seq || got.SN != first.SN || got.Result != first.Result {
		t.Fatalf("re-emitted reply %+v does not match original %+v", got, first)
	}
	suite, err := crypto.NewEd25519Suite(4, []byte("router-seed"))
	if err != nil {
		t.Fatal(err)
	}
	digest := client.ReplyDigest(got.Client, got.Seq, got.SN, got.Result)
	if err := suite.VerifyShare(digest, got.Share); err != nil {
		t.Fatalf("re-emitted reply share does not verify: %v", err)
	}
	if sent := r.nodes[0].Stats().RepliesSent; sent != sentBefore+1 {
		t.Fatalf("RepliesSent %d → %d, want +1", sentBefore, sent)
	}

	// Only the exact confirmed (client, seq) is served from the cache: a
	// different stale seq stays a bare rejection.
	replies = replies[:0]
	stale := types.Request{ClientID: clientID, Seq: seq - 1, Payload: []byte("older")}
	if v := r.nodes[0].SubmitSigned(r.now, stale, nil); v.OK() {
		t.Fatalf("stale retransmission admitted: %v", v)
	}
	if len(replies) != 0 {
		t.Fatalf("stale retransmission re-emitted %d replies", len(replies))
	}
}
