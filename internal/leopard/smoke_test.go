package leopard_test

import (
	"testing"
	"time"

	"leopard/internal/crypto"
	"leopard/internal/harness"
	"leopard/internal/leopard"
	"leopard/internal/protocol"
	"leopard/internal/simnet"
	"leopard/internal/types"
)

// buildCluster wires an n-replica Leopard cluster over simnet with the
// Ed25519 suite and small batches suitable for tests. mutateNet, when
// non-nil, adjusts the network config (e.g. to enable wire fidelity).
func buildCluster(t *testing.T, n int, mutate func(*leopard.Config), mutateNet func(*simnet.Config)) *harness.Cluster {
	t.Helper()
	q, err := types.NewQuorumParams(n)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := crypto.NewEd25519Suite(n, []byte("test-seed"))
	if err != nil {
		t.Fatal(err)
	}
	netCfg := simnet.DefaultConfig()
	netCfg.TickInterval = 2 * time.Millisecond
	if mutateNet != nil {
		mutateNet(&netCfg)
	}
	cluster, err := harness.NewCluster(harness.Options{
		N:               n,
		Net:             netCfg,
		PayloadSize:     128,
		SaturationDepth: 200,
		Build: func(id types.ReplicaID) (protocol.Replica, error) {
			cfg := leopard.Config{
				ID:            id,
				Quorum:        q,
				Suite:         suite,
				DatablockSize: 50,
				BFTBlockSize:  4,
				BatchTimeout:  10 * time.Millisecond,
			}
			if mutate != nil {
				mutate(&cfg)
			}
			return leopard.NewNode(cfg)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cluster
}

func TestSmokeConfirmsRequests(t *testing.T) {
	cluster := buildCluster(t, 4, nil, nil)
	cluster.Start()
	res := cluster.MeasureFor(2 * time.Second)
	if res.Confirmed == 0 {
		t.Fatalf("no requests confirmed in %v", res.Elapsed)
	}
	t.Logf("n=4 confirmed=%d throughput=%.0f req/s meanLat=%v", res.Confirmed, res.Throughput, res.MeanLat)
}

// TestSmokeConfirmsRequestsWireFidelity runs the same cluster with every
// message round-tripped through the real wire codec before delivery, so the
// zero-copy decode path and the canonical-frame checks are exercised under
// a full protocol workload (not just hand-built frames).
func TestSmokeConfirmsRequestsWireFidelity(t *testing.T) {
	cluster := buildCluster(t, 4, nil, func(cfg *simnet.Config) {
		cfg.Codec = leopard.WireCodec{}
	})
	cluster.Start()
	res := cluster.MeasureFor(2 * time.Second)
	if res.Confirmed == 0 {
		t.Fatalf("no requests confirmed over the wire codec in %v", res.Elapsed)
	}
	t.Logf("n=4 wire-fidelity confirmed=%d throughput=%.0f req/s meanLat=%v", res.Confirmed, res.Throughput, res.MeanLat)
}
