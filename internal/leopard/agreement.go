package leopard

import (
	"leopard/internal/crypto"
	"leopard/internal/obs"
	"leopard/internal/storage"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// maybePropose implements the pre-prepare stage (Alg. 2, leader): link up
// to τ ready datablocks into a BFTblock and multicast it with the leader's
// first-round share. Serial numbers stay within the watermark window
// (lw, lw+k].
func (n *Node) maybePropose(out transport.Sink) {
	for {
		if n.walFailed {
			return // fail-stop latched (possibly by a failed vote persist)
		}
		if n.cfg.RotateLeaders {
			// Under rotation this replica proposes only its own stride-n
			// subset of serials; skip past slots owned by other proposers.
			for !n.isProposer(n.nextSeq) {
				n.nextSeq++
			}
		}
		if n.nextSeq > n.lw+types.SeqNum(n.cfg.MaxParallel) {
			return // watermark window full; wait for checkpoints
		}
		if _, locked := n.votedSeq[n.nextSeq]; locked {
			// A reloaded vote-ahead lock pins this slot to content proposed
			// in a previous life that we no longer hold. Proposing anything
			// else would equivocate; the view change resolves the slot.
			return
		}
		full := len(n.readyQueue) >= n.cfg.BFTBlockSize
		stale := len(n.readyQueue) > 0 && n.now-n.lastPropose >= n.cfg.BatchTimeout
		// Under rotation, an owned slot that peers have already proposed
		// past is a hole blocking everyone's consecutive-prefix executor;
		// fill it with an empty block once the batch timer expires. Fills
		// do not reset lastPropose, so a run of consecutive holes (e.g.
		// after this replica rejoins) fills in a single tick.
		fill := n.cfg.RotateLeaders && n.maxSeqSeen > n.nextSeq &&
			n.now-n.lastPropose >= n.cfg.BatchTimeout
		if !full && !stale && !fill {
			return
		}
		take := n.cfg.BFTBlockSize
		if take > len(n.readyQueue) {
			take = len(n.readyQueue)
		}
		content := make([]types.Hash, take)
		copy(content, n.readyQueue[:take])
		n.readyQueue = n.readyQueue[take:]
		for _, h := range content {
			n.linked[h] = struct{}{}
		}
		block := &types.BFTblock{View: n.view, Seq: n.nextSeq, Content: content}
		n.nextSeq++
		if take > 0 {
			n.lastPropose = n.now
		}
		if err := n.propose(block, out); err != nil {
			// Signing with our own key cannot fail in a correct setup.
			panic(err)
		}
	}
}

// propose starts the agreement instance for block at the leader.
func (n *Node) propose(block *types.BFTblock, out transport.Sink) error {
	digest := crypto.HashBFTblock(block)
	share, err := n.suite.Sign(n.cfg.ID, digest)
	if err != nil {
		return err
	}
	// The proposal embeds the leader's first-round vote: log it durably
	// ahead of the broadcast so a crash right after sending cannot forget
	// it. On a persist failure nothing leaves the node — the fail-stop has
	// latched and the slot stays unvoted in this life.
	if !n.persistVote(1, block.Seq, digest) {
		return nil
	}
	inst := n.getInstance(block.Seq)
	inst.block = block
	inst.digest = digest
	inst.state = types.StatePending
	inst.proposedAt = n.now
	inst.voted1 = true
	n.votedSeq[block.Seq] = digest
	if block.Seq > n.maxSeqSeen {
		n.maxSeqSeen = block.Seq
	}
	n.addVote1(inst, share)
	n.trace(obs.EvBlockProposed, uint64(block.Seq), int64(len(block.Content)))
	out.Broadcast(&BFTblockMsg{Block: block, LeaderShare: share})
	return nil
}

// persistVote durably appends one vote-ahead record for the current view
// and reports whether the vote may proceed. Called before the vote (or the
// proposal embedding it) is recorded or leaves the node — AppendVote
// flushes and fsyncs before returning, so the durable lock always covers
// anything a peer may have seen. On failure the fail-stop latches
// immediately and the caller must abort the vote: broadcasting without the
// durable lock would reopen the amnesia window the log exists to close.
func (n *Node) persistVote(round uint8, seq types.SeqNum, digest types.Hash) bool {
	if n.store == nil || n.cfg.DisableVoteAheadLog {
		return true
	}
	if err := n.store.AppendVote(storage.VoteRecord{
		View: n.view, Seq: seq, Round: round, Digest: digest,
	}); err != nil {
		n.stats.WALErrors++
		n.walFailed = true
		return false
	}
	n.stats.VotesLogged++
	return true
}

// persistNote stages the notarization certificate a round-2 vote endorses
// (block + σ1 proof) and reports whether the vote may proceed. Without it a
// σ2 voter that crash-restarts stops advertising the notarized block in its
// view-change messages, and the redo plan's quorum-intersection argument —
// every view-change quorum contains an honest σ2 voter that remembers the
// block — breaks down, letting a confirmed block be redone as a dummy. The
// frame is staged only; the round-2 persistVote that always follows flushes
// and fsyncs both records before the vote leaves the node.
func (n *Node) persistNote(inst *instance) bool {
	if n.store == nil || n.cfg.DisableVoteAheadLog {
		return true
	}
	if err := n.store.AppendNote(storage.NoteRecord{
		Block: inst.block, Notarized: *inst.notarized,
	}); err != nil {
		n.stats.WALErrors++
		n.walFailed = true
		return false
	}
	n.stats.NotesLogged++
	return true
}

// getInstance returns the instance for sn, creating it if needed.
func (n *Node) getInstance(sn types.SeqNum) *instance {
	inst := n.instances[sn]
	if inst == nil {
		inst = &instance{
			state:     types.StatePending,
			vote1Seen: make(map[types.ReplicaID]struct{}),
			vote2Seen: make(map[types.ReplicaID]struct{}),
		}
		n.instances[sn] = inst
	}
	return inst
}

// handleBFTblock implements VRFBFTBLOCK and the prepare stage (Alg. 2):
// validate the proposal, ensure every linked datablock is held (starting
// retrieval otherwise), then cast the first-round vote.
func (n *Node) handleBFTblock(from types.ReplicaID, m *BFTblockMsg, out transport.Sink) {
	if m.Block == nil {
		return
	}
	block := m.Block
	if block.View > n.view {
		// Proposal for a future view: buffer until the new-view message
		// moves us there (bounded against flooding). This must happen even
		// mid-view-change — the new-view announcement is large (it embeds
		// 2f+1 view-change messages) and the new leader's first proposals
		// routinely overtake it; dropping them would strand every redo slot,
		// because the leader proposes each slot exactly once.
		if from == n.proposerForView(block.View, block.Seq) && len(n.futureBlocks) < 4*n.cfg.MaxParallel {
			//lint:retains-frame buffered proposal keeps its frame alive until the view advances and handleBFTblock replays it; the buffer is bounded by 4*MaxParallel
			n.futureBlocks = append(n.futureBlocks, m)
		}
		return
	}
	if n.inViewChange || block.View != n.view || from != n.proposerOf(block.Seq) {
		return
	}
	if block.Seq <= n.lw || block.Seq > n.lw+types.SeqNum(n.cfg.MaxParallel) {
		return // outside the watermark window
	}
	if block.Seq > n.maxSeqSeen {
		n.maxSeqSeen = block.Seq
	}
	digest := crypto.HashBFTblock(block)
	if prev, voted := n.votedSeq[block.Seq]; voted && prev != digest {
		return // leader equivocation: refuse the second proposal
	}
	if err := n.suite.VerifyShare(digest, m.LeaderShare); err != nil {
		return
	}
	if expected, ok := n.expectedRedo[block.Seq]; ok && expected != digest {
		return // new leader deviated from its own new-view promise
	}
	inst := n.getInstance(block.Seq)
	if inst.block == nil {
		//lint:retains-frame the accepted proposal owns its frame for the instance's lifetime; it is re-encoded (not re-sliced) for the WAL, so no aliasing escapes
		inst.block = block
		inst.digest = digest
		inst.proposedAt = n.now
		n.trace(obs.EvBlockProposed, uint64(block.Seq), int64(len(block.Content)))
	} else if inst.digest != digest {
		return
	}
	// Track the leader's embedded first-round share in case this replica
	// later becomes vote collector via view change (cheap bookkeeping).
	n.checkDatablocks(inst, out)
	n.flushPendingProofs(inst, out)
}

// checkDatablocks verifies receipt of every linked datablock (Alg. 2 line
// 39) and either casts the first-round vote or starts retrieval.
func (n *Node) checkDatablocks(inst *instance, out transport.Sink) {
	if inst.voted1 || inst.block == nil {
		return
	}
	if inst.missing == nil {
		inst.missing = make(map[types.Hash]struct{})
		for _, h := range inst.block.Content {
			if !n.dbPool.Has(h) {
				inst.missing[h] = struct{}{}
				n.noteMissing(h, inst.block.Seq)
			}
		}
	}
	if len(inst.missing) > 0 {
		return
	}
	n.castVote1(inst, out)
}

// castVote1 signs H(m) and sends the share to the leader (prepare stage).
func (n *Node) castVote1(inst *instance, out transport.Sink) {
	if inst.voted1 {
		return
	}
	n.checkStoreHealth()
	if n.walFailed {
		return // fail-stop: cannot durably log the vote
	}
	share, err := n.suite.Sign(n.cfg.ID, inst.digest)
	if err != nil {
		return
	}
	// Durable lock first: a vote the store could not persist is never
	// recorded or sent (the failure latched the fail-stop above).
	if !n.persistVote(1, inst.block.Seq, inst.digest) {
		return
	}
	inst.voted1 = true
	n.votedSeq[inst.block.Seq] = inst.digest
	vote := &VoteMsg{Block: inst.block.ID(), Round: 1, Digest: inst.digest, Share: share}
	if n.isProposer(inst.block.Seq) {
		n.addVote1(inst, share)
		return
	}
	out.Send(transport.Unicast(n.proposerOf(inst.block.Seq), vote))
}

// handleVote collects threshold shares at the leader (notarize and confirm
// stages of Alg. 2).
func (n *Node) handleVote(from types.ReplicaID, m *VoteMsg, out transport.Sink) {
	if n.inViewChange || m.Block.View != n.view || !n.isProposer(m.Block.Seq) {
		return
	}
	inst := n.instances[m.Block.Seq]
	if inst == nil || inst.block == nil {
		return
	}
	switch m.Round {
	case 1:
		if m.Digest != inst.digest || inst.notarized != nil {
			return
		}
		if _, dup := inst.vote1Seen[from]; dup {
			return
		}
		if err := n.suite.VerifyShare(inst.digest, m.Share); err != nil || m.Share.Signer != from {
			return
		}
		inst.vote1Seen[from] = struct{}{}
		//lint:retains-frame verified vote shares (~100B of a ~120B frame) are held until quorum aggregation; copying would double the allocation for no lifetime win
		inst.vote1Shares = append(inst.vote1Shares, m.Share)
		if len(inst.vote1Shares) >= n.q.Quorum() {
			n.leaderNotarize(inst, out)
		}
	case 2:
		if inst.notarized == nil || m.Digest != inst.sigma1Digest || inst.confirmed != nil {
			return
		}
		if _, dup := inst.vote2Seen[from]; dup {
			return
		}
		if err := n.suite.VerifyShare(inst.sigma1Digest, m.Share); err != nil || m.Share.Signer != from {
			return
		}
		inst.vote2Seen[from] = struct{}{}
		//lint:retains-frame verified vote shares (~100B of a ~120B frame) are held until quorum aggregation; copying would double the allocation for no lifetime win
		inst.vote2Shares = append(inst.vote2Shares, m.Share)
		if len(inst.vote2Shares) >= n.q.Quorum() {
			n.leaderConfirm(inst, out)
		}
	}
}

// addVote1 records the leader's own first-round share.
func (n *Node) addVote1(inst *instance, share crypto.Share) {
	if _, dup := inst.vote1Seen[share.Signer]; dup {
		return
	}
	inst.vote1Seen[share.Signer] = struct{}{}
	inst.vote1Shares = append(inst.vote1Shares, share)
}

// leaderNotarize combines 2f+1 first-round shares into the notarization
// proof σ1, multicasts it, and casts the leader's second-round vote.
func (n *Node) leaderNotarize(inst *instance, out transport.Sink) {
	proof, err := n.suite.Combine(inst.digest, inst.vote1Shares)
	if err != nil {
		return
	}
	inst.notarized = &proof
	if inst.state < types.StateNotarized {
		inst.state = types.StateNotarized
	}
	inst.sigma1Digest = crypto.HashBytes(proof.Sig)
	n.trace(obs.EvSigma1Cert, uint64(inst.block.Seq), 0)
	out.Broadcast(&ProofMsg{
		Block: inst.block.ID(), Round: 1, Digest: inst.digest, Proof: proof,
	})
	// Leader's own second-round vote. The σ1 broadcast above is only a
	// relay of others' shares; the vote itself must not be counted unless
	// the certificate and the vote record are durably logged first.
	n.checkStoreHealth()
	if n.walFailed {
		return
	}
	share, err := n.suite.Sign(n.cfg.ID, inst.sigma1Digest)
	if err != nil {
		return
	}
	if !n.persistNote(inst) || !n.persistVote(2, inst.block.Seq, inst.sigma1Digest) {
		return
	}
	inst.vote2Seen[n.cfg.ID] = struct{}{}
	inst.vote2Shares = append(inst.vote2Shares, share)
	inst.voted2 = true
	n.vote2Lock[inst.block.Seq] = inst.sigma1Digest
}

// leaderConfirm combines 2f+1 second-round shares into the confirmation
// proof σ2, multicasts it, and confirms locally.
func (n *Node) leaderConfirm(inst *instance, out transport.Sink) {
	proof, err := n.suite.Combine(inst.sigma1Digest, inst.vote2Shares)
	if err != nil {
		return
	}
	inst.confirmed = &proof
	out.Broadcast(&ProofMsg{
		Block: inst.block.ID(), Round: 2, Digest: inst.sigma1Digest, Proof: proof,
	})
	n.confirmBlock(inst, out)
}

// handleProof processes notarization/confirmation proofs at replicas
// (commit and confirm stages of Alg. 2).
func (n *Node) handleProof(from types.ReplicaID, m *ProofMsg, out transport.Sink) {
	if m.Block.View != n.view && m.Round == 1 {
		return
	}
	inst := n.instances[m.Block.Seq]
	if inst == nil || inst.block == nil || inst.block.ID() != m.Block {
		// Proof arrived before its block (possible across view changes):
		// buffer it keyed by block id, bounded against flooding.
		const maxPendingProofs = 4096
		if len(n.pendingProof) < maxPendingProofs {
			//lint:retains-frame a buffered proof is almost the whole frame (one threshold sig); it is held until its block arrives or the checkpoint GC drops it
			n.pendingProof[m.Block] = append(n.pendingProof[m.Block], pendingProof{
				round: m.Round, digest: m.Digest, proof: m.Proof,
			})
		}
		return
	}
	n.applyProof(inst, m.Round, m.Digest, m.Proof, out)
}

// applyProof validates and applies a proof to an instance.
func (n *Node) applyProof(inst *instance, round int, digest types.Hash, proof crypto.Proof, out transport.Sink) {
	switch round {
	case 1:
		if inst.notarized != nil || digest != inst.digest {
			return
		}
		if err := n.suite.VerifyProof(digest, proof); err != nil {
			return
		}
		p := proof
		inst.notarized = &p
		inst.sigma1Digest = crypto.HashBytes(proof.Sig)
		if inst.state < types.StateNotarized {
			inst.state = types.StateNotarized
		}
		n.trace(obs.EvSigma1Cert, uint64(inst.block.Seq), 0)
		n.castVote2(inst, out)
	case 2:
		if inst.confirmed != nil {
			return
		}
		// A replica that never saw σ1 (e.g. it was retrieving) can still
		// verify σ2 once it learns H(σ1) — but H(σ1) must come from σ1
		// itself, so require notarization first.
		if inst.notarized == nil || digest != inst.sigma1Digest {
			return
		}
		if err := n.suite.VerifyProof(digest, proof); err != nil {
			return
		}
		p := proof
		inst.confirmed = &p
		n.confirmBlock(inst, out)
	}
}

// castVote2 signs H(σ1) and sends the second-round share to the leader
// (commit stage).
func (n *Node) castVote2(inst *instance, out transport.Sink) {
	if inst.voted2 || n.inViewChange {
		return
	}
	if lock, ok := n.vote2Lock[inst.block.Seq]; ok && lock != inst.sigma1Digest {
		return // reloaded vote-ahead lock: already signed a different σ1 digest
	}
	n.checkStoreHealth()
	if n.walFailed {
		return // fail-stop: cannot durably log the vote
	}
	share, err := n.suite.Sign(n.cfg.ID, inst.sigma1Digest)
	if err != nil {
		return
	}
	// Stage the notarization certificate, then durably log the vote (one
	// fsync covers both); only then is the vote recorded and sent.
	if !n.persistNote(inst) || !n.persistVote(2, inst.block.Seq, inst.sigma1Digest) {
		return
	}
	inst.voted2 = true
	n.vote2Lock[inst.block.Seq] = inst.sigma1Digest
	if n.isProposer(inst.block.Seq) {
		inst.vote2Seen[n.cfg.ID] = struct{}{}
		inst.vote2Shares = append(inst.vote2Shares, share)
		return
	}
	out.Send(transport.Unicast(n.proposerOf(inst.block.Seq), &VoteMsg{
		Block: inst.block.ID(), Round: 2, Digest: inst.sigma1Digest, Share: share,
	}))
}

// flushPendingProofs replays proofs that arrived before the block.
func (n *Node) flushPendingProofs(inst *instance, out transport.Sink) {
	if inst.block == nil {
		return
	}
	id := inst.block.ID()
	pending := n.pendingProof[id]
	if len(pending) == 0 {
		return
	}
	delete(n.pendingProof, id)
	for _, p := range pending {
		n.applyProof(inst, p.round, p.digest, p.proof, out)
	}
}

// confirmBlock moves a block to the confirmed log and advances execution.
func (n *Node) confirmBlock(inst *instance, out transport.Sink) {
	if inst.state >= types.StateConfirmed {
		return
	}
	inst.state = types.StateConfirmed
	n.lastProgress = n.now
	if _, done := n.log[inst.block.Seq]; done {
		// Re-confirmation after a view change redo; the log entry (and
		// all counters) already reflect this block.
		return
	}
	n.log[inst.block.Seq] = inst.block
	n.trace(obs.EvSigma2Cert, uint64(inst.block.Seq), 0)
	if inst.block.Seq > n.maxConfirmed {
		// A frontier gap below maxConfirmed starts the stuckBehind clock
		// (frontierStalled); if it persists a full retry interval, state
		// transfer takes over.
		n.maxConfirmed = inst.block.Seq
	}
	if n.store != nil && inst.notarized != nil && inst.confirmed != nil {
		// Stash the certificates now: execution may happen after a view
		// change has reset the instance, and the WAL record must carry them
		// for state-transfer receivers to verify.
		n.proofStash[inst.block.Seq] = blockProofs{notarized: *inst.notarized, confirmed: *inst.confirmed}
	}
	n.stats.ConfirmedBlocks++
	// Release our own flow-control window and record stage timings;
	// request counting happens at execution, when all datablocks are
	// guaranteed present.
	for _, h := range inst.block.Content {
		n.confirmedDBs[h] = struct{}{}
		if db, ok := n.dbPool.Get(h); ok {
			if db.Ref.Generator == n.cfg.ID {
				delete(n.myOutstanding, h)
				if packed, ok := n.myDBPacked[h]; ok {
					// Dissemination covers pack -> leader proposal (as
					// observed here via the proposal's arrival time);
					// agreement covers proposal -> confirmation.
					n.stages.Add(StageDissemination, inst.proposedAt-packed)
					n.stages.Add(StageAgreement, n.now-inst.proposedAt)
					delete(n.myDBPacked, h)
				}
			}
		}
	}
	n.tryExecute(out)
}

// tryExecute executes the longest consecutive confirmed prefix whose
// datablocks are all present, invoking the executor callback in order.
func (n *Node) tryExecute(out transport.Sink) {
	for {
		next := n.executedTo + 1
		block, ok := n.log[next]
		if !ok {
			return
		}
		// All linked datablocks must be held to execute. A replica that
		// confirmed via proofs without voting may still be missing some.
		allHeld := true
		for _, h := range block.Content {
			if !n.dbPool.Has(h) {
				allHeld = false
				n.noteMissing(h, block.Seq)
			}
		}
		if !allHeld {
			return
		}
		datablocks := make([]*types.Datablock, 0, len(block.Content))
		for _, h := range block.Content {
			db, _ := n.dbPool.Get(h)
			datablocks = append(datablocks, db)
		}
		n.executeBlock(next, block, datablocks)
		if inst := n.instances[next]; inst != nil && inst.state < types.StateExecuted {
			inst.state = types.StateExecuted
		}
		if n.store != nil {
			n.persistExecuted(next, block, datablocks)
		}
		n.maybeCheckpoint(next, out)
	}
}
