package leopard

import (
	"fmt"

	"leopard/internal/codec"
	"leopard/internal/crypto"
	"leopard/internal/merkle"
	"leopard/internal/storage"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// WireCodec adapts EncodeMessage/DecodeMessage to the transport.Codec
// interface. Decode runs in borrow mode: it takes ownership of the frame,
// per the transport.Codec contract.
type WireCodec struct{}

var _ transport.Codec = WireCodec{}

// Encode serializes a Leopard message.
func (WireCodec) Encode(msg transport.Message) ([]byte, error) { return EncodeMessage(msg) }

// Decode parses a Leopard message, taking ownership of buf.
func (WireCodec) Decode(buf []byte) (transport.Message, error) { return DecodeMessage(buf) }

// Wire kinds for the TCP transport. Values are part of the wire contract.
const (
	kindDatablock uint8 = iota + 1
	kindReady
	kindBFTblock
	kindVote
	kindProof
	kindQuery
	kindResp
	kindFullBlock
	kindCheckpoint
	kindCheckpointProof
	kindTimeout
	kindViewChange
	kindNewView
	kindStateReq
	kindStateResp
	kindRequest
	kindReply
)

func writeShare(w *codec.Writer, s crypto.Share) {
	w.U32(uint32(s.Signer))
	w.Bytes(s.Sig)
}

func readShare(r *codec.Reader) crypto.Share {
	return crypto.Share{Signer: types.ReplicaID(r.U32()), Sig: r.Bytes()}
}

func writeProof(w *codec.Writer, p crypto.Proof) { w.Bytes(p.Sig) }

func readProof(r *codec.Reader) crypto.Proof { return crypto.Proof{Sig: r.Bytes()} }

func writeBlockID(w *codec.Writer, id types.BlockID) {
	w.U64(uint64(id.View))
	w.U64(uint64(id.Seq))
}

func readBlockID(r *codec.Reader) types.BlockID {
	return types.BlockID{View: types.View(r.U64()), Seq: types.SeqNum(r.U64())}
}

func writeMerkleProof(w *codec.Writer, p merkle.Proof) {
	w.U32(uint32(p.Index))
	w.U32(uint32(len(p.Steps)))
	for _, s := range p.Steps {
		w.Hash(s.Hash)
		if s.Right {
			w.U8(1)
		} else {
			w.U8(0)
		}
	}
}

// readBool decodes a canonical boolean byte, failing the reader on any
// value other than 0 or 1: together with the trailing-bytes check this
// gives every message exactly one accepted frame (no alternate encodings
// for an adversary to re-serve the same message under).
func readBool(r *codec.Reader) bool {
	switch b := r.U8(); b {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Fail(fmt.Errorf("leopard: non-canonical bool byte %d", b))
		return false
	}
}

func readMerkleProof(r *codec.Reader) merkle.Proof {
	p := merkle.Proof{Index: int(r.U32())}
	count := int(r.U32())
	if count < 0 || count > 64 { // a 2^64-leaf tree is impossible; < 0: 32-bit wrap
		r.Fail(fmt.Errorf("leopard: merkle proof with %d steps", uint32(count)))
		return merkle.Proof{}
	}
	for i := 0; i < count; i++ {
		step := merkle.ProofStep{Hash: r.Hash(), Right: readBool(r)}
		p.Steps = append(p.Steps, step)
	}
	return p
}

// EncodeMessage serializes any Leopard protocol message into a frame body
// beginning with its wire kind.
func EncodeMessage(msg transport.Message) ([]byte, error) {
	w := &codec.Writer{Buf: make([]byte, 0, msg.WireSize()+16)}
	switch m := msg.(type) {
	case *DatablockMsg:
		w.U8(kindDatablock)
		codec.MarshalDatablockTo(w, m.Block)
	case *ReadyMsg:
		w.U8(kindReady)
		w.Hash(m.Digest)
	case *BFTblockMsg:
		w.U8(kindBFTblock)
		codec.MarshalBFTblock(w, m.Block)
		writeShare(w, m.LeaderShare)
	case *VoteMsg:
		w.U8(kindVote)
		writeBlockID(w, m.Block)
		w.U8(uint8(m.Round))
		w.Hash(m.Digest)
		writeShare(w, m.Share)
	case *ProofMsg:
		w.U8(kindProof)
		writeBlockID(w, m.Block)
		w.U8(uint8(m.Round))
		w.Hash(m.Digest)
		writeProof(w, m.Proof)
	case *QueryMsg:
		w.U8(kindQuery)
		w.U32(uint32(len(m.Digests)))
		for _, h := range m.Digests {
			w.Hash(h)
		}
	case *RespMsg:
		w.U8(kindResp)
		w.Hash(m.Digest)
		w.Hash(m.Root)
		w.Bytes(m.Chunk)
		w.U32(uint32(m.Index))
		w.U32(uint32(m.DataLen))
		writeMerkleProof(w, m.Proof)
	case *FullBlockMsg:
		w.U8(kindFullBlock)
		w.Hash(m.Digest)
		codec.MarshalDatablockTo(w, m.Block)
	case *CheckpointMsg:
		w.U8(kindCheckpoint)
		w.U64(uint64(m.Seq))
		w.Hash(m.StateHash)
		writeShare(w, m.Share)
	case *CheckpointProofMsg:
		w.U8(kindCheckpointProof)
		w.U64(uint64(m.Seq))
		w.Hash(m.StateHash)
		writeProof(w, m.Proof)
	case *TimeoutMsg:
		w.U8(kindTimeout)
		w.U64(uint64(m.View))
		writeShare(w, m.Share)
	case *ViewChangeMsg:
		w.U8(kindViewChange)
		encodeViewChange(w, m)
	case *NewViewMsg:
		w.U8(kindNewView)
		w.U64(uint64(m.NewView))
		w.U32(uint32(len(m.Proofs)))
		for i := range m.Proofs {
			encodeViewChange(w, &m.Proofs[i])
		}
		writeShare(w, m.Share)
	case *StateReqMsg:
		w.U8(kindStateReq)
		w.U64(uint64(m.Have))
	case *StateRespMsg:
		w.U8(kindStateResp)
		if m.Checkpoint != nil {
			w.U8(1)
			w.U64(uint64(m.Checkpoint.Seq))
			w.Hash(m.Checkpoint.StateHash)
			writeProof(w, m.Checkpoint.Proof)
		} else {
			w.U8(0)
		}
		w.U32(uint32(len(m.Blocks)))
		for _, rec := range m.Blocks {
			storage.AppendBlockRecord(w, rec)
		}
	case *RequestMsg:
		w.U8(kindRequest)
		codec.MarshalRequest(w, m.Req)
		w.Bytes(m.Sig)
	case *ReplyMsg:
		w.U8(kindReply)
		w.U64(m.Client)
		w.U64(m.Seq)
		w.U64(uint64(m.SN))
		w.Hash(m.Result)
		writeShare(w, m.Share)
	default:
		return nil, fmt.Errorf("leopard: cannot encode message type %T", msg)
	}
	return w.Buf, nil
}

func encodeViewChange(w *codec.Writer, m *ViewChangeMsg) {
	w.U64(uint64(m.NewView))
	w.U32(uint32(m.Sender))
	if m.Checkpoint != nil {
		w.U8(1)
		w.U64(uint64(m.Checkpoint.Seq))
		w.Hash(m.Checkpoint.StateHash)
		writeProof(w, m.Checkpoint.Proof)
	} else {
		w.U8(0)
	}
	w.U32(uint32(len(m.Blocks)))
	for i := range m.Blocks {
		nb := &m.Blocks[i]
		codec.MarshalBFTblock(w, nb.Block)
		w.Hash(nb.Digest)
		writeProof(w, nb.Notarized)
		if nb.Confirmed != nil {
			w.U8(1)
			writeProof(w, *nb.Confirmed)
		} else {
			w.U8(0)
		}
	}
	writeShare(w, m.Share)
}

func decodeViewChange(r *codec.Reader) (*ViewChangeMsg, error) {
	m := &ViewChangeMsg{
		NewView: types.View(r.U64()),
		Sender:  types.ReplicaID(r.U32()),
	}
	if readBool(r) {
		m.Checkpoint = &CheckpointProofMsg{
			Seq:       types.SeqNum(r.U64()),
			StateHash: r.Hash(),
			Proof:     readProof(r),
		}
	}
	count := int(r.U32())
	if count < 0 || count > codec.MaxElements {
		return nil, fmt.Errorf("leopard: view-change carries %d blocks", count)
	}
	for i := 0; i < count; i++ {
		block, err := codec.UnmarshalBFTblock(r)
		if err != nil {
			return nil, err
		}
		nb := NotarizedBlock{Block: block, Digest: r.Hash(), Notarized: readProof(r)}
		if readBool(r) {
			p := readProof(r)
			nb.Confirmed = &p
		}
		m.Blocks = append(m.Blocks, nb)
	}
	m.Share = readShare(r)
	return m, r.Err()
}

// DecodeMessage parses a frame body produced by EncodeMessage. It decodes
// in borrow mode: every variable-length field of the returned message
// (signature shares, combined proofs, retrieval chunks, request payloads)
// sub-slices buf, so ownership of buf transfers to the message and the
// caller must neither modify nor recycle it afterwards. The TCP transport
// satisfies this by allocating one fresh frame per message; callers that
// reuse their buffer must use DecodeMessageCopying. Frames with bytes left
// over after the last field are rejected, keeping the encoding canonical.
func DecodeMessage(buf []byte) (transport.Message, error) {
	return decodeMessage(buf, true)
}

// DecodeMessageCopying parses like DecodeMessage but copies every
// variable-length field out of buf, leaving buf free for reuse. The two
// modes decode bitwise-identical messages; this one trades allocations for
// buffer independence.
func DecodeMessageCopying(buf []byte) (transport.Message, error) {
	return decodeMessage(buf, false)
}

func decodeMessage(buf []byte, borrow bool) (transport.Message, error) {
	if len(buf) == 0 {
		return nil, fmt.Errorf("leopard: empty frame")
	}
	r := &codec.Reader{Buf: buf[1:], Borrow: borrow}
	var msg transport.Message
	switch buf[0] {
	case kindDatablock:
		db, err := codec.UnmarshalDatablockFrom(r)
		if err != nil {
			return nil, err
		}
		msg = &DatablockMsg{Block: db}
	case kindReady:
		msg = &ReadyMsg{Digest: r.Hash()}
	case kindBFTblock:
		block, err := codec.UnmarshalBFTblock(r)
		if err != nil {
			return nil, err
		}
		msg = &BFTblockMsg{Block: block, LeaderShare: readShare(r)}
	case kindVote:
		msg = &VoteMsg{Block: readBlockID(r), Round: int(r.U8()), Digest: r.Hash(), Share: readShare(r)}
	case kindProof:
		msg = &ProofMsg{Block: readBlockID(r), Round: int(r.U8()), Digest: r.Hash(), Proof: readProof(r)}
	case kindQuery:
		count := int(r.U32())
		if count < 0 || count > codec.MaxElements {
			return nil, fmt.Errorf("leopard: query carries %d digests", count)
		}
		q := &QueryMsg{}
		// Stop on the first truncation error instead of spinning out count
		// zero-hash appends from a lying prefix.
		for i := 0; i < count && r.Err() == nil; i++ {
			q.Digests = append(q.Digests, r.Hash())
		}
		msg = q
	case kindResp:
		msg = &RespMsg{
			Digest:  r.Hash(),
			Root:    r.Hash(),
			Chunk:   r.Bytes(),
			Index:   int(r.U32()),
			DataLen: int(r.U32()),
			Proof:   readMerkleProof(r),
		}
	case kindFullBlock:
		digest := r.Hash()
		db, err := codec.UnmarshalDatablockFrom(r)
		if err != nil {
			return nil, err
		}
		msg = &FullBlockMsg{Digest: digest, Block: db}
	case kindCheckpoint:
		msg = &CheckpointMsg{Seq: types.SeqNum(r.U64()), StateHash: r.Hash(), Share: readShare(r)}
	case kindCheckpointProof:
		msg = &CheckpointProofMsg{Seq: types.SeqNum(r.U64()), StateHash: r.Hash(), Proof: readProof(r)}
	case kindTimeout:
		msg = &TimeoutMsg{View: types.View(r.U64()), Share: readShare(r)}
	case kindViewChange:
		vc, err := decodeViewChange(r)
		if err != nil {
			return nil, err
		}
		msg = vc
	case kindNewView:
		nv := &NewViewMsg{NewView: types.View(r.U64())}
		count := int(r.U32())
		if count < 0 || count > codec.MaxElements {
			return nil, fmt.Errorf("leopard: new-view carries %d proofs", count)
		}
		for i := 0; i < count; i++ {
			vc, err := decodeViewChange(r)
			if err != nil {
				return nil, err
			}
			nv.Proofs = append(nv.Proofs, *vc)
		}
		nv.Share = readShare(r)
		msg = nv
	case kindStateReq:
		msg = &StateReqMsg{Have: types.SeqNum(r.U64())}
	case kindStateResp:
		sr := &StateRespMsg{}
		if readBool(r) {
			sr.Checkpoint = &CheckpointProofMsg{
				Seq:       types.SeqNum(r.U64()),
				StateHash: r.Hash(),
				Proof:     readProof(r),
			}
		}
		count := int(r.U32())
		if count < 0 || count > MaxStateBlocks {
			return nil, fmt.Errorf("leopard: state response carries %d blocks", count)
		}
		for i := 0; i < count; i++ {
			rec, err := storage.ReadBlockRecord(r)
			if err != nil {
				return nil, err
			}
			sr.Blocks = append(sr.Blocks, rec)
		}
		msg = sr
	case kindRequest:
		msg = &RequestMsg{Req: codec.UnmarshalRequest(r), Sig: r.Bytes()}
	case kindReply:
		msg = &ReplyMsg{
			Client: r.U64(),
			Seq:    r.U64(),
			SN:     types.SeqNum(r.U64()),
			Result: r.Hash(),
			Share:  readShare(r),
		}
	default:
		return nil, fmt.Errorf("leopard: unknown wire kind %d", buf[0])
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return msg, nil
}
