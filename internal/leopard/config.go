// Package leopard implements the Leopard BFT protocol (Hu et al., ICDCS
// 2022): a leader-based, partially synchronous protocol that preserves high
// throughput at large scales by decoupling consensus proposals into
// datablocks (request packages disseminated by every replica) and BFTblocks
// (leader proposals carrying only datablock hashes).
//
// The package contains the full normal case (Alg. 1–2), the ready round and
// committee-based datablock retrieval with erasure codes (Alg. 3), the
// checkpoint/garbage-collection protocol (Alg. 4) and the PBFT-style
// view-change (Appendix A). Nodes are event-driven state machines driven by
// a transport (internal/simnet in simulations, internal/transport/tcp in
// deployments).
package leopard

import (
	"errors"
	"time"

	"leopard/internal/crypto"
	"leopard/internal/erasure"
	"leopard/internal/mempool"
	"leopard/internal/obs"
	"leopard/internal/storage"
	"leopard/internal/types"
)

// ClientVerifier authenticates client request submissions at admission.
// internal/client.Verifier is the production implementation; tests may
// substitute fakes. VerifyRequestBatch must be positionally equivalent to
// calling VerifyRequest per element (implementations typically parallelize).
type ClientVerifier interface {
	VerifyRequest(req types.Request, sig []byte) bool
	VerifyRequestBatch(reqs []types.Request, sigs [][]byte) []bool
}

// Default protocol parameters. Batch sizes follow the paper's Table II.
const (
	DefaultDatablockSize   = 2000 // requests per datablock
	DefaultBFTBlockSize    = 100  // datablock links per BFTblock (τ)
	DefaultMaxParallel     = 100  // k: max parallel agreement instances
	DefaultOutstandingDBs  = 8    // per-replica datablock flow-control window
	DefaultRetrievalAfter  = 20 * time.Millisecond
	DefaultViewChangeAfter = 2 * time.Second
	DefaultProposeEvery    = 2 * time.Millisecond
	DefaultBatchTimeout    = 20 * time.Millisecond
)

// Config parameterizes a Leopard replica.
type Config struct {
	// ID is this replica's identity (0..n-1).
	ID types.ReplicaID
	// Quorum holds n and f.
	Quorum types.QuorumParams
	// Suite provides the (2f+1, n)-threshold signatures.
	Suite crypto.Suite

	// DatablockSize is the number of requests packed per datablock. The
	// paper's α (bits per datablock) is DatablockSize × payload.
	DatablockSize int
	// BFTBlockSize is τ: the number of datablock links per BFTblock.
	BFTBlockSize int
	// MaxParallel is k: the watermark window of parallel agreement
	// instances (valid sn satisfies lw < sn <= lw+k).
	MaxParallel int
	// CheckpointEvery is the checkpoint period in executed blocks; the
	// paper uses k/2. Zero derives it from MaxParallel.
	CheckpointEvery int
	// MaxOutstandingDatablocks bounds how many of this replica's own
	// datablocks may be unconfirmed at once (flow control under
	// saturation). Zero means DefaultOutstandingDBs.
	MaxOutstandingDatablocks int

	// RetrievalTimeout is how long to wait for a linked-but-missing
	// datablock to arrive before multicasting a Query.
	RetrievalTimeout time.Duration
	// ViewChangeTimeout is how long confirmation progress may stall while
	// work is pending before this replica votes to change the view.
	ViewChangeTimeout time.Duration
	// ProposeInterval paces the leader: it proposes at most once per
	// interval per tick even if more ready datablocks are available.
	ProposeInterval time.Duration

	// BatchTimeout bounds how long pending requests wait before being
	// packed into a partial datablock, and how long ready datablocks wait
	// before the leader proposes a partial BFTblock.
	BatchTimeout time.Duration

	// Verifier, when non-nil, makes the replica's front door authenticated:
	// SubmitSigned/SubmitSignedBatch and peer-forwarded RequestMsgs verify
	// the client's signature before admission, and the unsigned
	// SubmitRequest path is rejected outright. Nil keeps the legacy
	// unauthenticated admission (synthetic workloads, protocol tests).
	Verifier ClientVerifier
	// Mempool bounds the request pool: byte/count budgets, per-client
	// caps, token-bucket rate limits, nonce bookkeeping windows. The zero
	// value selects the pool's generous defaults.
	Mempool mempool.Limits

	// Erasure tunes the retrieval committee's Reed–Solomon codec: worker
	// parallelism for large blocks and the decode-matrix cache size. The
	// zero value selects the erasure package defaults.
	Erasure erasure.Options

	// Store, when non-nil, makes the replica durable: every executed block
	// is appended to the write-ahead log, stable checkpoints and local
	// metadata are persisted, and Start recovers the replica's state from
	// the store (checkpoint anchor + log-tail replay) before requesting the
	// rest from peers via state transfer. Nil keeps the replica purely
	// in-memory (simulations that never crash).
	Store storage.Store
	// DisableStateTransfer turns off the recovery protocol — the replica
	// neither requests nor serves checkpoint-anchored state transfer. Used
	// by the recover experiment's pre-durability baseline.
	DisableStateTransfer bool
	// DisableVoteAheadLog turns off vote-ahead logging: votes above the
	// executed frontier are not persisted or reloaded, reopening the
	// crash-between-vote-and-execute amnesia window. Only the chaos
	// experiment's A/B schedule should set this.
	DisableVoteAheadLog bool
	// ViewChangeMaxTimeout caps the exponential view-change patience
	// ladder: while a view change is pending, the per-view patience before
	// escalating to the next view starts at 4×ViewChangeTimeout and doubles
	// per escalation up to this cap, resetting when a view completes. Zero
	// defaults to 16×ViewChangeTimeout.
	ViewChangeMaxTimeout time.Duration
	// Tracer, when non-nil, records this replica's lifecycle events
	// (request admitted → packed → ready → proposed → σ1 → σ2 → executed →
	// replied, plus view-change/retrieval/state-transfer spans) into the
	// obs ring buffer, stamped with the node clock. Events are emitted at
	// the same points regardless of tracing, so a traced run is
	// byte-identical to an untraced one; nil disables with a single
	// pointer check per site. A replica restarted through the same tracer
	// keeps accumulating into one history.
	Tracer *obs.Tracer
	// OnExecute, when set, is invoked after every block execution —
	// including WAL replay and state-transfer apply — with the height, the
	// executed block and the resulting chain state hash. The harness's
	// invariant checker uses it to assert cross-replica safety; unlike the
	// executor callback it also fires for dummy blocks and replayed
	// history.
	OnExecute func(sn types.SeqNum, block *types.BFTblock, chain types.Hash)
	// TrustDigests makes receivers use the digest cached in DatablockMsg
	// instead of recomputing it. Only safe in simulations where all nodes
	// share one process; real deployments must leave it false.
	TrustDigests bool
	// SkipRequestDedup disables the per-request confirmed-set bookkeeping
	// that rejects client resubmissions of already-confirmed requests.
	// Simulations with unique synthetic request streams enable this to
	// avoid billions of map operations; deployments leave it false.
	SkipRequestDedup bool

	// RotateLeaders spreads agreement across the cluster: each serial
	// number's instance is proposed — and its σ1/σ2 votes aggregated — by
	// types.LeaderFor(view, seq, n) instead of the fixed per-view leader,
	// and the ready round's vote collection rotates per datablock digest.
	// The σ1 phase of block s+1 then overlaps the σ2 phase of block s on a
	// different replica, lifting the single-leader CPU/fan-in ceiling. The
	// view-change coordinator remains LeaderOf(view); checkpoints still
	// aggregate there. False keeps the paper's fixed-leader protocol
	// byte-identically.
	RotateLeaders bool

	// DisableReadyRound skips the extra voting round before linking
	// datablocks (ablation A2). Unsafe against selective attacks.
	DisableReadyRound bool
	// LeaderRetrieval answers queries only at the leader instead of the
	// erasure-coded committee (ablation A1, the paper's "intuitive
	// solution").
	LeaderRetrieval bool
}

// Validate checks the configuration and fills defaults in place.
func (c *Config) Validate() error {
	if !c.Quorum.Valid() {
		return errors.New("leopard: invalid quorum parameters")
	}
	if int(c.ID) >= c.Quorum.N {
		return errors.New("leopard: replica id out of range")
	}
	if c.Suite == nil {
		return errors.New("leopard: missing crypto suite")
	}
	if c.DatablockSize <= 0 {
		c.DatablockSize = DefaultDatablockSize
	}
	if c.BFTBlockSize <= 0 {
		c.BFTBlockSize = DefaultBFTBlockSize
	}
	if c.MaxParallel <= 0 {
		c.MaxParallel = DefaultMaxParallel
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = c.MaxParallel / 2
		if c.CheckpointEvery == 0 {
			c.CheckpointEvery = 1
		}
	}
	if c.MaxOutstandingDatablocks <= 0 {
		c.MaxOutstandingDatablocks = DefaultOutstandingDBs
	}
	if c.RetrievalTimeout <= 0 {
		c.RetrievalTimeout = DefaultRetrievalAfter
	}
	if c.ViewChangeTimeout <= 0 {
		c.ViewChangeTimeout = DefaultViewChangeAfter
	}
	if c.ViewChangeMaxTimeout <= 0 {
		c.ViewChangeMaxTimeout = 16 * c.ViewChangeTimeout
	}
	if c.ProposeInterval <= 0 {
		c.ProposeInterval = DefaultProposeEvery
	}
	if c.BatchTimeout <= 0 {
		c.BatchTimeout = DefaultBatchTimeout
	}
	return nil
}
