package leopard

import (
	"encoding/binary"
	"sort"

	"leopard/internal/crypto"
	"leopard/internal/obs"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// timeoutDigest is what replicas sign to vote for leaving view v.
func timeoutDigest(v types.View) types.Hash {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(v))
	return crypto.HashConcat([]byte("leopard/timeout"), buf[:])
}

// viewChangeDigest binds a view-change message's contents for signing.
func viewChangeDigest(m *ViewChangeMsg) types.Hash {
	var buf []byte
	var tmp [8]byte
	buf = append(buf, []byte("leopard/viewchange")...)
	binary.BigEndian.PutUint64(tmp[:], uint64(m.NewView))
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint32(tmp[:4], uint32(m.Sender))
	buf = append(buf, tmp[:4]...)
	if m.Checkpoint != nil {
		binary.BigEndian.PutUint64(tmp[:], uint64(m.Checkpoint.Seq))
		buf = append(buf, tmp[:]...)
		buf = append(buf, m.Checkpoint.StateHash[:]...)
	}
	for i := range m.Blocks {
		buf = append(buf, m.Blocks[i].Digest[:]...)
	}
	return crypto.HashBytes(buf)
}

// newViewDigest binds a new-view message for the leader's signature.
func newViewDigest(m *NewViewMsg) types.Hash {
	var buf []byte
	var tmp [8]byte
	buf = append(buf, []byte("leopard/newview")...)
	binary.BigEndian.PutUint64(tmp[:], uint64(m.NewView))
	buf = append(buf, tmp[:]...)
	for i := range m.Proofs {
		d := viewChangeDigest(&m.Proofs[i])
		buf = append(buf, d[:]...)
	}
	return crypto.HashBytes(buf)
}

// hasPendingWork reports whether there is anything to make progress on; an
// idle system must not trigger view changes.
func (n *Node) hasPendingWork() bool {
	if n.reqPool.Len() > 0 || len(n.myOutstanding) > 0 || len(n.readyQueue) > 0 {
		return true
	}
	if n.cfg.RotateLeaders && n.maxConfirmed > n.executedTo {
		// A confirmed-but-unexecuted suffix means some slot below it is
		// still open. Under rotation that hole may belong to a crashed
		// proposer with no live instance anywhere, so it must count as
		// pending work or the stall would never trigger a view change.
		return true
	}
	for _, inst := range n.instances {
		if inst.block != nil && inst.state < types.StateConfirmed {
			return true
		}
	}
	return false
}

// checkViewChangeTimer implements the view-change trigger: if confirmation
// progress stalls while work is pending, vote to leave the current view;
// if an in-flight view change itself stalls, escalate to the next view.
// Escalation patience is exponential: each failed target view doubles the
// wait (capped at ViewChangeMaxTimeout), so during a long partition the
// cluster does not burn a view per fixed interval and the backlog of
// pending views stays small when the network heals.
func (n *Node) checkViewChangeTimer(out transport.Sink) {
	if n.inViewChange {
		if n.vcPatience <= 0 {
			n.vcPatience = 4 * n.cfg.ViewChangeTimeout
		}
		if n.now-n.vcStartedAt >= n.vcPatience {
			target := n.pendingView // leave the failed target view too
			n.voteTimeout(target, out)
		}
		return
	}
	if !n.hasPendingWork() {
		n.lastProgress = n.now
		return
	}
	if n.now-n.lastProgress >= n.cfg.ViewChangeTimeout {
		n.voteTimeout(n.view, out)
		return
	}
	if n.cfg.RotateLeaders && n.maxConfirmed > n.executedTo &&
		n.now-n.lastExecProgress >= n.cfg.ViewChangeTimeout {
		// Rotation-specific stall: pipelined confirmations at higher slots
		// keep lastProgress fresh even while a crashed proposer's hole
		// stalls the execution frontier, so watch that frontier directly.
		n.voteTimeout(n.view, out)
	}
}

// voteTimeout broadcasts this replica's timeout vote for view v (once) and
// enters the view change for v+1.
func (n *Node) voteTimeout(v types.View, out transport.Sink) {
	if n.sentTimeout[v] || v < n.view {
		return
	}
	share, err := n.suite.Sign(n.cfg.ID, timeoutDigest(v))
	if err != nil {
		return
	}
	n.sentTimeout[v] = true
	n.recordTimeout(v, n.cfg.ID)
	out.Broadcast(&TimeoutMsg{View: v, Share: share})
	n.startViewChange(v+1, out)
}

// handleTimeout records another replica's timeout vote; f+1 votes for the
// current (or a later) view are proof the leader is faulty, so this replica
// joins (Appendix A, trigger condition 2).
func (n *Node) handleTimeout(from types.ReplicaID, m *TimeoutMsg, out transport.Sink) {
	if m.View < n.view {
		return
	}
	if err := n.suite.VerifyShare(timeoutDigest(m.View), m.Share); err != nil || m.Share.Signer != from {
		return
	}
	n.recordTimeout(m.View, from)
	if len(n.timeoutVotes[m.View]) >= n.q.Small() && !n.sentTimeout[m.View] {
		n.voteTimeout(m.View, out)
	}
}

func (n *Node) recordTimeout(v types.View, from types.ReplicaID) {
	votes := n.timeoutVotes[v]
	if votes == nil {
		votes = make(map[types.ReplicaID]struct{}, n.q.Small())
		n.timeoutVotes[v] = votes
	}
	votes[from] = struct{}{}
}

// startViewChange moves this replica into the view change targeting the
// given view and sends its view-change message to the new leader.
func (n *Node) startViewChange(target types.View, out transport.Sink) {
	if target <= n.view || (n.inViewChange && target <= n.pendingView) {
		return
	}
	if n.inViewChange {
		// Escalating past a failed target view: double the patience.
		n.vcPatience *= 2
	} else {
		n.vcPatience = 4 * n.cfg.ViewChangeTimeout
	}
	if n.vcPatience > n.cfg.ViewChangeMaxTimeout {
		n.vcPatience = n.cfg.ViewChangeMaxTimeout
	}
	n.inViewChange = true
	n.pendingView = target
	n.vcStartedAt = n.now
	n.trace(obs.EvViewChangeStart, uint64(target), 0)

	msg := n.buildViewChangeMsg(target)
	newLeader := types.LeaderOf(target, n.q.N)
	if newLeader == n.cfg.ID {
		n.collectViewChange(n.cfg.ID, msg, out)
		return
	}
	// View-change messages are payload carriers (they embed notarized
	// block headers, so the receiver's CPU stage charges them), but they
	// are the recovery path's critical traffic: pin them to the control
	// lane so they overtake queued datablock transfers.
	out.Send(transport.Envelope{To: newLeader, Msg: msg, Lane: transport.LaneControl})
}

// buildViewChangeMsg assembles <view-change, v+1, lc, B> (Appendix A). B
// merges the live notarized instances with notarizations carried across
// earlier view changes — dropping the carried ones would break the quorum
// intersection that keeps a confirmed-and-executed block from being
// redone as a dummy (see the carried field).
func (n *Node) buildViewChangeMsg(target types.View) *ViewChangeMsg {
	msg := &ViewChangeMsg{
		NewView:    target,
		Checkpoint: n.lastCheckpoint,
		Sender:     n.cfg.ID,
	}
	best := make(map[types.SeqNum]NotarizedBlock, len(n.instances)+len(n.carried))
	for sn, nb := range n.carried {
		if sn > n.lw {
			best[sn] = nb
		}
	}
	for sn, inst := range n.instances {
		if sn > n.lw && inst.block != nil && inst.notarized != nil {
			if prev, ok := best[sn]; !ok || inst.block.View > prev.Block.View {
				best[sn] = NotarizedBlock{
					Block:     inst.block,
					Digest:    inst.digest,
					Notarized: *inst.notarized,
					Confirmed: inst.confirmed,
				}
			}
		}
	}
	sns := make([]types.SeqNum, 0, len(best))
	for sn := range best {
		sns = append(sns, sn)
	}
	sort.Slice(sns, func(i, j int) bool { return sns[i] < sns[j] })
	for _, sn := range sns {
		msg.Blocks = append(msg.Blocks, best[sn])
	}
	share, err := n.suite.Sign(n.cfg.ID, viewChangeDigest(msg))
	if err == nil {
		msg.Share = share
	}
	return msg
}

// validViewChangeMsg verifies a view-change message's signature, checkpoint
// proof and notarization proofs.
func (n *Node) validViewChangeMsg(from types.ReplicaID, m *ViewChangeMsg) bool {
	if m.Sender != from {
		return false
	}
	if err := n.suite.VerifyShare(viewChangeDigest(m), m.Share); err != nil || m.Share.Signer != from {
		return false
	}
	if m.Checkpoint != nil {
		d := CheckpointDigest(m.Checkpoint.Seq, m.Checkpoint.StateHash)
		if err := n.suite.VerifyProof(d, m.Checkpoint.Proof); err != nil {
			return false
		}
	}
	for i := range m.Blocks {
		nb := &m.Blocks[i]
		if nb.Block == nil {
			return false
		}
		if crypto.HashBFTblock(nb.Block) != nb.Digest {
			return false
		}
		if err := n.suite.VerifyProof(nb.Digest, nb.Notarized); err != nil {
			return false
		}
	}
	return true
}

// handleViewChange collects view-change messages at the would-be leader of
// the target view; 2f+1 of them produce the new-view message.
func (n *Node) handleViewChange(from types.ReplicaID, m *ViewChangeMsg, out transport.Sink) {
	if types.LeaderOf(m.NewView, n.q.N) != n.cfg.ID || m.NewView <= n.view {
		return
	}
	n.collectViewChange(from, m, out)
}

func (n *Node) collectViewChange(from types.ReplicaID, m *ViewChangeMsg, out transport.Sink) {
	if n.sentNewView[m.NewView] {
		return
	}
	if !n.validViewChangeMsg(from, m) {
		return
	}
	msgs := n.vcMsgs[m.NewView]
	if msgs == nil {
		msgs = make(map[types.ReplicaID]*ViewChangeMsg, n.q.Quorum())
		n.vcMsgs[m.NewView] = msgs
	}
	msgs[from] = m
	if len(msgs) < n.q.Quorum() {
		return
	}
	// Assemble the new-view message with 2f+1 view-change messages, in
	// sender order for determinism.
	n.sentNewView[m.NewView] = true
	senders := make([]types.ReplicaID, 0, len(msgs))
	for id := range msgs {
		senders = append(senders, id)
	}
	sort.Slice(senders, func(i, j int) bool { return senders[i] < senders[j] })
	nv := &NewViewMsg{NewView: m.NewView}
	for _, id := range senders[:n.q.Quorum()] {
		nv.Proofs = append(nv.Proofs, *msgs[id])
	}
	share, err := n.suite.Sign(n.cfg.ID, newViewDigest(nv))
	if err != nil {
		return
	}
	nv.Share = share
	// Same lane override as the view-change message: the new-view
	// announcement must not queue behind bulk backlog.
	out.Send(transport.Envelope{Broadcast: true, Msg: nv, Lane: transport.LaneControl})
	n.enterNewView(nv, out)
}

// handleNewView validates a new-view message and enters the new view.
func (n *Node) handleNewView(from types.ReplicaID, m *NewViewMsg, out transport.Sink) {
	if m.NewView <= n.view || types.LeaderOf(m.NewView, n.q.N) != from {
		return
	}
	if err := n.suite.VerifyShare(newViewDigest(m), m.Share); err != nil || m.Share.Signer != from {
		return
	}
	seen := make(map[types.ReplicaID]struct{}, len(m.Proofs))
	for i := range m.Proofs {
		vc := &m.Proofs[i]
		if vc.NewView != m.NewView || !n.validViewChangeMsg(vc.Sender, vc) {
			return
		}
		if _, dup := seen[vc.Sender]; dup {
			return
		}
		seen[vc.Sender] = struct{}{}
	}
	if len(seen) < n.q.Quorum() {
		return
	}
	n.enterNewView(m, out)
}

// redoPlan is the deterministic block selection derived from a new-view
// message: for every serial number above the recovered watermark up to the
// highest notarized one, either a carried notarized block (highest view
// wins) or a dummy empty block.
type redoPlan struct {
	lw     types.SeqNum
	maxSN  types.SeqNum
	chosen map[types.SeqNum]*types.BFTblock // nil entry = dummy
	cp     *CheckpointProofMsg
}

// computeRedo derives the redo plan from the 2f+1 view-change messages.
func computeRedo(m *NewViewMsg) redoPlan {
	plan := redoPlan{chosen: make(map[types.SeqNum]*types.BFTblock)}
	bestView := make(map[types.SeqNum]types.View)
	for i := range m.Proofs {
		vc := &m.Proofs[i]
		if vc.Checkpoint != nil && vc.Checkpoint.Seq > plan.lw {
			plan.lw = vc.Checkpoint.Seq
			plan.cp = vc.Checkpoint
		}
		for j := range vc.Blocks {
			nb := &vc.Blocks[j]
			sn := nb.Block.Seq
			if sn > plan.maxSN {
				plan.maxSN = sn
			}
			if v, ok := bestView[sn]; !ok || nb.Block.View > v {
				bestView[sn] = nb.Block.View
				plan.chosen[sn] = nb.Block
			}
		}
	}
	return plan
}

// enterNewView installs the new view, recomputes the redo plan, and (when
// this replica is the new leader) re-proposes the carried blocks.
func (n *Node) enterNewView(m *NewViewMsg, out transport.Sink) {
	plan := computeRedo(m)

	n.view = m.NewView
	n.inViewChange = false
	n.pendingView = 0
	n.vcPatience = 0 // completed: next view change starts patient again
	n.lastProgress = n.now
	n.lastExecProgress = n.now
	n.stats.ViewChanges++
	n.trace(obs.EvViewChangeDone, uint64(m.NewView), 0)
	// Persist the entered view so a restart resumes here instead of at
	// view 1 (where it would ignore the live leader until the next view
	// change). Rare event, so the synchronous metadata write is fine.
	n.persistMeta()
	if plan.cp != nil && plan.cp.Seq > n.lw {
		n.applyCheckpoint(plan.cp)
	}

	// Fold this view's notarizations into the carried set before wiping
	// the instances, so later view changes still advertise them.
	for sn, inst := range n.instances {
		if sn > n.lw && inst.block != nil && inst.notarized != nil {
			if prev, ok := n.carried[sn]; !ok || inst.block.View > prev.Block.View {
				n.carried[sn] = NotarizedBlock{
					Block:     inst.block,
					Digest:    inst.digest,
					Notarized: *inst.notarized,
					Confirmed: inst.confirmed,
				}
			}
		}
	}

	// Reset per-view agreement state. The confirmed log survives; every
	// unconfirmed instance will be re-agreed via the redo plan.
	n.instances = make(map[types.SeqNum]*instance)
	n.votedSeq = make(map[types.SeqNum]types.Hash)
	n.vote2Lock = make(map[types.SeqNum]types.Hash)
	n.pendingProof = make(map[types.BlockID][]pendingProof)
	n.expectedRedo = make(map[types.SeqNum]types.Hash)
	n.readyVotes = make(map[types.Hash]map[types.ReplicaID]struct{})
	n.readySet = make(map[types.Hash]struct{})
	n.readyQueue = nil
	n.linked = make(map[types.Hash]struct{})
	n.lastPropose = n.now

	// Record what the new leader must propose for each redo slot, so an
	// equivocating new leader is caught by handleBFTblock. The plan's
	// highest notarized slot can sit below this replica's own watermark
	// (nothing notarized since the last checkpoint), leaving no redo work.
	capHint := int(plan.maxSN - n.lw)
	if capHint < 0 {
		capHint = 0
	}
	redoBlocks := make([]*types.BFTblock, 0, capHint)
	for sn := n.lw + 1; sn <= plan.maxSN; sn++ {
		var blk *types.BFTblock
		if prev, ok := plan.chosen[sn]; ok {
			blk = &types.BFTblock{View: n.view, Seq: sn, Content: prev.Content}
		} else {
			blk = &types.BFTblock{View: n.view, Seq: sn} // dummy filler
		}
		n.expectedRedo[sn] = crypto.HashBFTblock(blk)
		redoBlocks = append(redoBlocks, blk)
	}

	// Replay proposals that overtook the new-view announcement.
	replay := n.futureBlocks
	n.futureBlocks = nil
	for _, m := range replay {
		if m.Block.View == n.view {
			n.handleBFTblock(n.proposerForView(m.Block.View, m.Block.Seq), m, out)
		} else if m.Block.View > n.view && len(n.futureBlocks) < 4*n.cfg.MaxParallel {
			n.futureBlocks = append(n.futureBlocks, m)
		}
	}

	// The schedule restarts above the redo plan: under rotation every
	// replica owns a share of the fresh slots, so all of them move their
	// proposal cursor; fixed mode moves only the leader's.
	n.maxSeqSeen = plan.maxSN
	if n.isLeader() || n.cfg.RotateLeaders {
		n.nextSeq = plan.maxSN + 1
		if n.nextSeq <= n.lw {
			n.nextSeq = n.lw + 1
		}
		for _, blk := range redoBlocks {
			// Propose every redo slot — including blocks already confirmed
			// locally, so lagging replicas converge (cheap: content is only
			// hashes). Under rotation each replica re-proposes exactly the
			// redo slots the new view's schedule assigns it, so the plan is
			// collectively covered across all recent proposers.
			if n.cfg.RotateLeaders && !n.isProposer(blk.Seq) {
				continue
			}
			if err := n.propose(blk, out); err != nil {
				return
			}
			if n.walFailed {
				return // a failed vote persist latched the fail-stop mid-redo
			}
		}
	}

	// Re-announce held, unconfirmed datablocks to the new leader so its
	// ready queue can be rebuilt.
	n.reannounceDatablocks(out)
}

// unconfirmedPooled returns the sorted digests of pooled datablocks that
// have not appeared in any confirmed block yet.
func (n *Node) unconfirmedPooled() []types.Hash {
	all := n.dbPool.Digests()
	out := all[:0]
	for _, h := range all {
		if _, done := n.confirmedDBs[h]; !done {
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		for b := 0; b < len(out[i]); b++ {
			if out[i][b] != out[j][b] {
				return out[i][b] < out[j][b]
			}
		}
		return false
	})
	return out
}

// reannounceDatablocks sends Ready for every pooled datablock that has not
// been confirmed yet, rebuilding the new leader's ready state.
func (n *Node) reannounceDatablocks(out transport.Sink) {
	digests := n.unconfirmedPooled()
	for _, h := range digests {
		n.sendReady(h, out)
	}
	// Each digest's vote collector also re-credits the generator for
	// blocks it holds (the fixed view leader, or the rotated per-digest
	// owner under RotateLeaders).
	for _, h := range digests {
		if n.readyOwnerOf(h) != n.cfg.ID {
			continue
		}
		if db, ok := n.dbPool.Get(h); ok {
			n.recordReady(h, db.Ref.Generator)
		}
	}
}
