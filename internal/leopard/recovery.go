package leopard

import (
	"encoding/binary"
	"time"

	"leopard/internal/client"
	"leopard/internal/crypto"
	"leopard/internal/obs"
	"leopard/internal/storage"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// This file implements the durability and recovery subsystem: persistence
// of executed blocks and stable checkpoints through Config.Store, replay of
// the durable state at Start, and the checkpoint-anchored state-transfer
// protocol (StateReqMsg / StateRespMsg) by which a replica that restarted
// behind the cluster fetches the newest stable checkpoint certificate and
// the executed range above it from peers — instead of re-running agreement
// or storming the per-datablock retrieval path.
//
// Votes above the last executed block are persisted too (vote-ahead
// logging, persistVote — durable before the vote is broadcast): a replica
// that crashes between voting and executing reloads its vote locks here and
// therefore cannot sign different content for the same (view, seq) slot in
// its next life. Round-2 votes additionally persist the notarization
// certificate they endorse (persistNote), reloaded into the carried set so
// the replica keeps advertising the block in view-change messages. The
// chaos experiment's crash-between-vote-and-execute schedule exercises
// exactly this window, and fails when Config.DisableVoteAheadLog reopens
// it.

// counterReserveSlack is how far ahead of the live datablock counter the
// persisted reservation runs. A restart resumes from the reservation,
// skipping at most this many counters — one metadata fsync per slack-many
// datablocks buys restart-safe (generator, counter) uniqueness.
const counterReserveSlack = 1024

// blockProofs stashes a block's agreement certificates between confirmation
// and execution, so the WAL record persisted at execution carries them even
// if the instance was reset by an intervening view change.
type blockProofs struct {
	notarized crypto.Proof
	confirmed crypto.Proof
}

// stateServeState is the per-requester state-transfer serve bookkeeping:
// when the requester was last answered, and the minimum Have that proves
// it consumed that answer (the last seq the response carried). A requester
// presenting Have >= nextHave bypasses the cooldown — that is what lets a
// recovering replica page through the log at transfer speed — while any
// other request inside the window is refused, as in retrieval's (digest,
// requester) bound. Keying by requester alone bounds the map at N-1
// entries, and the monotonic nextHave bounds what a Byzantine requester
// can extract per window by varying Have to one pass over the log plus
// one empty ack — the cost of one honest recovery.
type stateServeState struct {
	at       time.Duration
	nextHave types.SeqNum
}

// recoverFromStore restores the replica's durable state at Start: local
// metadata (view, counter reservation), the stable-checkpoint anchor, and
// a replay of the contiguous log tail above it. Replayed blocks re-run the
// executor callback, so the application rebuilds the same state it had at
// the last fsync batch; the remainder is fetched via state transfer.
// Records in the local WAL were verified before they were appended, so
// replay trusts them (the CRC layer guards against disk corruption).
func (n *Node) recoverFromStore(out transport.Sink) {
	st := n.store
	meta := st.Meta()
	if meta.View > n.view {
		n.view = meta.View
	}
	if meta.CounterReserve > 0 {
		n.dbCounter = meta.CounterReserve
		n.counterReserve = meta.CounterReserve
	}
	if cp, ok := st.Checkpoint(); ok {
		n.lastCheckpoint = &CheckpointProofMsg{Seq: cp.Seq, StateHash: cp.StateHash, Proof: cp.Proof}
		n.lw = cp.Seq
		if cp.Seq > n.executedTo {
			// The anchor is ahead of (or at) any replayable record: execution
			// resumes from the checkpointed state.
			n.executedTo = cp.Seq
			n.execState = cp.StateHash
		}
	}
	// Replay rebuilds local state only: the requests in replayed blocks were
	// already answered (or will be re-requested by their clients), so the
	// reply path stays quiet until live execution resumes.
	n.replaying = true
	for {
		rec, ok := st.Get(n.executedTo + 1)
		if !ok || rec.Block == nil || len(rec.Datablocks) != len(rec.Block.Content) {
			break
		}
		n.replayRecord(rec)
	}
	n.replaying = false
	if _, last := st.Bounds(); last != 0 && last != n.executedTo {
		// The durable tail does not meet the execution frontier: the anchor
		// was saved ahead of the last appended record (the watermark advanced
		// on a quorum proof while execution lagged, then the replica
		// crashed), or replay stopped at a malformed record. Appends resume
		// at executedTo+1, so re-anchor the log — without this every future
		// Append fails non-contiguous and the replica silently never
		// persists again. The discarded records sit under the saved
		// checkpoint certificate (or are unreadable), so nothing recoverable
		// is lost.
		if err := st.Reset(n.executedTo); err != nil {
			n.stats.WALErrors++
		}
	}
	n.nextSeq = n.executedTo + 1
	if n.nextSeq <= n.lw {
		n.nextSeq = n.lw + 1
	}
	n.reloadVoteLocks(st)
	n.reloadNotes(st)
	if n.maxConfirmed < n.executedTo {
		n.maxConfirmed = n.executedTo
	}
	// Nothing below the anchor was pooled in this life; start the prune
	// cursor there so the first watermark advance does not walk history.
	n.prunedTo = n.lw
	if !n.cfg.DisableStateTransfer {
		// Probe peers for what was decided while this replica was down.
		// Even an empty store probes: a replica restarted with a lost data
		// dir still recovers — the whole state arrives anchored at the
		// cluster's checkpoint. (At genesis the probe is a no-op round:
		// peers answer with empty acks and the sync flag clears.)
		n.needSync = true
		n.sendStateReq(out)
	}
}

// reloadVoteLocks restores the vote-ahead locks from the store: every
// persisted vote above the recovered execution frontier re-pins its
// (view, seq) slot, so this life cannot sign different content where the
// previous one already voted. Round-1 votes re-lock votedSeq (the same
// lock handleBFTblock checks against equivocating proposals, and the lock
// maybePropose refuses to re-propose over); round-2 votes pin the σ1
// digest castVote2 may sign. Votes from earlier views need no lock — the
// view-change protocol releases them — and a vote from a later view than
// the recovered meta proves that view was entered, so the view advances
// to match.
//
//lint:voteahead-exempt replaying locks FROM the durable vote log: every record written here was persisted by a checked persistVote in a previous life
func (n *Node) reloadVoteLocks(st storage.Store) {
	if n.cfg.DisableVoteAheadLog {
		return
	}
	votes := st.Votes()
	for _, v := range votes {
		if v.View > n.view {
			n.view = v.View
		}
	}
	for _, v := range votes {
		if v.View != n.view || v.Seq <= n.executedTo {
			continue
		}
		switch v.Round {
		case 1:
			n.votedSeq[v.Seq] = v.Digest
		case 2:
			n.vote2Lock[v.Seq] = v.Digest
		}
		n.stats.VotesReloaded++
	}
}

// reloadNotes restores the carried-notarization set from the persisted
// certificates: every note above the recovered watermark re-enters carried,
// so this replica's view-change messages keep advertising blocks it cast σ2
// votes for in a previous life. Without this, a cascade of crash-restarts
// among the 2f+1 σ2 voters erases a confirmed block's last advertised
// notarization and a later redo can replace it with a dummy — the same
// quorum-intersection argument the in-memory carried set serves across view
// changes, extended across crashes. Notes are view-agnostic (the highest
// block view per seq wins, as in enterNewView's fold); digests are
// recomputed rather than trusted, certificates are trusted like block
// replay is (CRC-guarded local WAL, verified before append).
func (n *Node) reloadNotes(st storage.Store) {
	if n.cfg.DisableVoteAheadLog {
		return
	}
	for _, nt := range st.Notes() {
		if nt.Block == nil || nt.Block.Seq <= n.lw {
			continue
		}
		if prev, ok := n.carried[nt.Block.Seq]; ok && prev.Block.View >= nt.Block.View {
			continue
		}
		n.carried[nt.Block.Seq] = NotarizedBlock{
			Block:     nt.Block,
			Digest:    crypto.HashBFTblock(nt.Block),
			Notarized: nt.Notarized,
		}
		n.stats.NotesReloaded++
	}
}

// replayRecord re-applies one WAL record during recovery: no outbound
// traffic, no re-verification, just the execution bookkeeping tryExecute
// would have done.
func (n *Node) replayRecord(rec *storage.BlockRecord) {
	block := rec.Block
	n.log[rec.Seq] = block
	for i, h := range block.Content {
		if !n.dbPool.Has(h) {
			n.dbPool.Add(h, rec.Datablocks[i])
		}
		n.confirmedDBs[h] = struct{}{}
	}
	n.executeBlock(rec.Seq, block, rec.Datablocks)
	n.stats.ConfirmedBlocks++
	n.stats.BlocksReplayed++
	n.stats.BytesReplayed += int64(rec.WireSize())
}

// persistExecuted appends the block executed at sn to the WAL, with the
// agreement proofs stashed at confirmation. Append only stages the record
// (group-committed fsync), so this sits on the hot execute path at
// encode+memcpy cost — see storage.Log and BenchmarkWALAppend.
func (n *Node) persistExecuted(sn types.SeqNum, block *types.BFTblock, datablocks []*types.Datablock) {
	rec := &storage.BlockRecord{Seq: sn, Block: block, Datablocks: datablocks}
	if p, ok := n.proofStash[sn]; ok {
		rec.Notarized, rec.Confirmed = p.notarized, p.confirmed
		delete(n.proofStash, sn)
	} else if inst := n.instances[sn]; inst != nil {
		if inst.notarized != nil {
			rec.Notarized = *inst.notarized
		}
		if inst.confirmed != nil {
			rec.Confirmed = *inst.confirmed
		}
	}
	if err := n.store.Append(rec); err != nil {
		n.stats.WALErrors++
	}
}

// persistMeta writes the replica-local metadata through the store.
func (n *Node) persistMeta() {
	if n.store == nil {
		return
	}
	if err := n.store.SaveMeta(storage.Meta{View: n.view, CounterReserve: n.counterReserve}); err != nil {
		n.stats.WALErrors++
	}
}

// reserveCounter advances the persisted datablock-counter reservation when
// the live counter catches up to it.
func (n *Node) reserveCounter() {
	if n.store == nil || n.dbCounter < n.counterReserve {
		return
	}
	n.counterReserve = n.dbCounter + counterReserveSlack
	n.persistMeta()
}

// stateRetryInterval paces a recovering replica's state requests. It must
// exceed the responder serve cooldown (serveCooldown, 6×RetrievalTimeout)
// so a retry at the same height is served, mirroring retrieval's re-query
// cadence.
func (n *Node) stateRetryInterval() time.Duration { return 8 * n.cfg.RetrievalTimeout }

// frontierStalled reports whether the execution frontier cannot advance
// right now: the replica is behind a stable checkpoint, or a confirmed
// block exists above a frontier whose next block was never confirmed
// here. Both conditions are routinely transient — confirmation proofs
// arrive out of order, retrieval fills datablock gaps — so stalling only
// starts the stuckBehind clock; it does not by itself trigger recovery.
func (n *Node) frontierStalled() bool {
	if n.lw > n.executedTo {
		return true
	}
	if n.maxConfirmed > n.executedTo {
		if _, held := n.log[n.executedTo+1]; !held {
			return true
		}
	}
	return false
}

// stuckBehind reports whether the frontier has been stalled for a full
// retry interval — long past anything the normal path (in-flight proofs,
// retrieval) resolves. Only then may the replica probe peers and, if
// offered a newer stable checkpoint, jump the anchor and skip local
// execution of the range below; a merely-slow replica never jumps.
func (n *Node) stuckBehind() bool {
	return n.behindSince >= 0 && n.now-n.behindSince >= n.stateRetryInterval()
}

// maybeRequestState re-probes for state transfer while the replica is
// syncing after a restart or provably stuck. Driven from Tick.
func (n *Node) maybeRequestState(out transport.Sink) {
	if n.cfg.DisableStateTransfer {
		return
	}
	if n.frontierStalled() {
		if n.behindSince < 0 {
			n.behindSince = n.now
		}
	} else {
		n.behindSince = -1
	}
	if !n.needSync && !n.stuckBehind() {
		return
	}
	if n.lastStateReq >= 0 && n.now-n.lastStateReq < n.stateRetryInterval() {
		return
	}
	n.sendStateReq(out)
}

// sendStateReq unicasts a state request to the next f+1 peers in a
// deterministic rotation — at least one recipient is honest, and since
// responses are self-certifying, one honest responder suffices. Used for
// the initial probe and for the paced retries.
func (n *Node) sendStateReq(out transport.Sink) { n.sendStateReqWidth(out, n.q.Small()) }

// sendStateReqWidth is sendStateReq with an explicit fan-out. Paging after
// a productive response uses width 1: every recipient would serve a full
// page of multi-block records while only one copy can be applied, so the
// f+1 fan-out multiplies the transferred range's bulk bytes by f+1 for
// nothing. Liveness is unharmed — if the single rotating peer never
// answers, the paced retry re-probes f+1 after stateRetryInterval.
func (n *Node) sendStateReqWidth(out transport.Sink, k int) {
	if n.cfg.DisableStateTransfer {
		return
	}
	n.lastStateReq = n.now
	req := &StateReqMsg{Have: n.executedTo}
	peers := n.q.N - 1
	if k > peers {
		k = peers
	}
	n.trace(obs.EvStateReqSent, uint64(n.executedTo), int64(k))
	for i := 0; i < k; i++ {
		off := (n.stateRound + i) % peers
		peer := types.ReplicaID((int(n.cfg.ID) + 1 + off) % n.q.N)
		out.Send(transport.Unicast(peer, req))
	}
	n.stateRound = (n.stateRound + k) % peers
}

// handleStateReq serves a recovering peer from the durable log: the newest
// stable checkpoint certificate plus up to MaxStateBlocks records
// continuing the requester's height. When the range right above the
// requester has been truncated here, the response anchors the requester at
// this replica's checkpoint and continues from the watermark instead —
// that is the checkpoint-anchored jump.
func (n *Node) handleStateReq(from types.ReplicaID, m *StateReqMsg, out transport.Sink) {
	if n.cfg.DisableStateTransfer {
		return
	}
	if n.lastCheckpoint == nil && n.store == nil {
		return
	}
	if prev, seen := n.stateServed[from]; seen && n.now-prev.at < n.serveCooldown() && m.Have < prev.nextHave {
		return
	}
	resp := &StateRespMsg{Checkpoint: n.lastCheckpoint}
	if n.store != nil {
		next := m.Have + 1
		if _, ok := n.store.Get(next); !ok && n.lw > m.Have {
			next = n.lw + 1
		}
		for len(resp.Blocks) < MaxStateBlocks {
			rec, ok := n.store.Get(next)
			if !ok {
				break
			}
			resp.Blocks = append(resp.Blocks, rec)
			next++
		}
	}
	// An empty response is still sent: it is the "you are caught up" ack
	// that lets the requester retire its sync probe.
	entry := stateServeState{at: n.now}
	if k := len(resp.Blocks); k > 0 {
		// Bypassing the cooldown again requires consuming this page, so
		// in-window serves walk nextHave monotonically through the log.
		entry.nextHave = resp.Blocks[k-1].Seq
	} else {
		// Nothing to give: only cooldown expiry re-enables serving, so
		// repeated caught-up (or beyond-tail) probes cost one ack per
		// window.
		entry.nextHave = ^types.SeqNum(0)
	}
	n.stateServed[from] = entry
	n.stats.StateReqsServed++
	out.Send(transport.Unicast(from, resp))
}

// handleStateResp applies a state-transfer response: a verified carried
// checkpoint always advances the watermark; the execution anchor jumps to
// the newest verified certificate only when the replica is provably stuck
// with no connecting blocks; then each contiguous self-certifying record
// is applied. On progress the next page is requested immediately from one
// rotating peer (a height at or past the served page's end bypasses the
// responder cooldown); a response that offers nothing new means we are
// caught up.
func (n *Node) handleStateResp(from types.ReplicaID, m *StateRespMsg, out transport.Sink) {
	if n.cfg.DisableStateTransfer {
		return
	}
	n.stats.StateRespsReceived++
	progress := false
	if cp := m.Checkpoint; cp != nil && cp.Seq > n.lw {
		// A verified quorum certificate advances the watermark (and durably
		// saves the anchor) no matter who carried it — exactly as a
		// broadcast CheckpointProofMsg would. Execution does not jump here.
		digest := CheckpointDigest(cp.Seq, cp.StateHash)
		if err := n.suite.VerifyProof(digest, cp.Proof); err == nil {
			n.applyCheckpoint(cp)
		}
	}
	connects := len(m.Blocks) > 0 && m.Blocks[0] != nil && m.Blocks[0].Seq == n.executedTo+1
	if cp := n.lastCheckpoint; cp != nil && cp.Seq > n.executedTo && !connects && n.stuckBehind() {
		// Jump only when provably stuck: the frontier has stalled a full
		// retry interval, long past anything honest connecting blocks (which
		// any honest responder sends when it has them) would have resolved.
		// A single Byzantine first responder offering a bare certificate
		// must not push a replica with a live local path into skipping
		// execution — the skipped range is an application-state hole only a
		// snapshot transfer could fill. The jump targets lastCheckpoint, the
		// newest certificate this replica has verified (the watermark
		// advance above keeps it fresh), not whatever this response carried.
		n.adoptCheckpoint(cp)
		progress = true
	}
	for _, rec := range m.Blocks {
		if rec == nil || rec.Block == nil {
			break
		}
		if rec.Seq <= n.executedTo {
			continue // stale prefix below our frontier
		}
		if rec.Seq != n.executedTo+1 {
			break // gap: nothing beyond it can be applied contiguously
		}
		if !n.applyTransferredRecord(rec, out) {
			break
		}
		progress = true
	}
	if progress {
		n.lastProgress = n.now
		n.tryExecute(out)
		if n.needSync || n.lw > n.executedTo {
			n.sendStateReqWidth(out, 1)
		}
		return
	}
	if n.executedTo >= n.lw {
		// Nothing newer anywhere we can see: consider the sync done. If the
		// confirmed log later shows a gap at the execution frontier,
		// confirmBlock re-arms needSync.
		n.needSync = false
	}
}

// adoptCheckpoint jumps this replica's execution state to a verified stable
// checkpoint it cannot reach by replay: executedTo and the execution chain
// hash snap to the certificate, the WAL resets to the new anchor, and the
// watermark machinery garbage-collects everything below. Blocks skipped by
// the jump are never executed locally — the quorum certificate stands in
// for them (applications needing full state need snapshot transfer; see
// ROADMAP).
func (n *Node) adoptCheckpoint(cp *CheckpointProofMsg) {
	n.executedTo = cp.Seq
	n.execState = cp.StateHash
	if cp.Seq > n.maxConfirmed {
		n.maxConfirmed = cp.Seq
	}
	// Retrieval waiters below the anchor are moot: those instances will be
	// garbage-collected, and the datablocks are being pruned cluster-wide.
	for h, r := range n.missing {
		for sn := range r.waiters {
			if sn <= cp.Seq {
				delete(r.waiters, sn)
			}
		}
		if len(r.waiters) == 0 {
			delete(n.missing, h)
		}
	}
	// applyCheckpoint durably saves the anchor (if this proof is news) and
	// advances the watermark; when the proof was applied earlier the anchor
	// is already on disk. Either way the save happens-before the Reset
	// below, so a crash in between recovers correctly. pruneBelow runs
	// explicitly because applyCheckpoint no-ops when the watermark already
	// reached cp.Seq while execution lagged — the jump is what makes the
	// skipped range pruneable.
	n.applyCheckpoint(cp)
	n.pruneBelow()
	if n.store != nil {
		// The WAL tail below the anchor is obsolete history; re-anchor so
		// appends resume at cp.Seq+1.
		if err := n.store.Reset(cp.Seq); err != nil {
			n.stats.WALErrors++
		}
	}
}

// executionDigest is the view-independent identity of an executed block:
// a redo carried across a view change re-stamps the View field, so a
// replica that executed the original and one that executed the re-proposal
// must still converge on the same execution chain — it is what checkpoint
// shares certify, and mismatched chains would keep them from ever
// combining into a stable checkpoint.
func executionDigest(block *types.BFTblock) types.Hash {
	buf := make([]byte, 0, 20+len(block.Content)*len(types.Hash{}))
	buf = append(buf, []byte("leopard/exec")...)
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], uint64(block.Seq))
	buf = append(buf, tmp[:]...)
	for _, h := range block.Content {
		buf = append(buf, h[:]...)
	}
	return crypto.HashBytes(buf)
}

// executeBlock runs the execution bookkeeping shared by the normal path
// (tryExecute), WAL replay and state transfer: the per-datablock executor
// callback and request dedup, then the chain-hash/height advance. The
// caller guarantees datablocks[i] matches block.Content[i] and that the
// block sits exactly at the execution frontier.
func (n *Node) executeBlock(sn types.SeqNum, block *types.BFTblock, datablocks []*types.Datablock) {
	digest := executionDigest(block)
	for _, db := range datablocks {
		n.stats.ConfirmedRequests += int64(len(db.Requests))
		if n.execFn != nil {
			n.execFn(sn, db.Requests)
		}
		if !n.cfg.SkipRequestDedup {
			for _, r := range db.Requests {
				n.reqPool.MarkConfirmed(r.ID())
			}
		}
		if n.replyFn != nil && !n.replaying {
			for _, r := range db.Requests {
				share, err := n.suite.Sign(n.cfg.ID, client.ReplyDigest(r.ClientID, r.Seq, sn, digest))
				if err != nil {
					continue
				}
				reply := ReplyMsg{Client: r.ClientID, Seq: r.Seq, SN: sn, Result: digest, Share: share}
				n.cacheReply(reply)
				n.replyFn(reply)
				n.stats.RepliesSent++
				n.trace(obs.EvReplySent, r.ClientID, int64(r.Seq))
			}
		}
	}
	n.execState = crypto.HashConcat(n.execState[:], digest[:])
	n.executedTo = sn
	n.lastExecProgress = n.now
	n.stats.ExecutedBlocks++
	n.trace(obs.EvBlockExecuted, uint64(sn), int64(len(datablocks)))
	if sn > n.maxConfirmed {
		n.maxConfirmed = sn
	}
	if n.cfg.OnExecute != nil {
		n.cfg.OnExecute(sn, block, n.execState)
	}
}

// applyTransferredRecord verifies and applies one state-transfer record at
// the execution frontier. Verification is complete — notarization over
// H(block), confirmation over H(σ1), and every datablock against the
// block's content hashes — so records from Byzantine responders cannot
// inject unconfirmed history. Applied blocks execute exactly like locally
// agreed ones (executor callback, dedup bookkeeping, WAL append) but cast
// no votes: agreement already happened.
func (n *Node) applyTransferredRecord(rec *storage.BlockRecord, out transport.Sink) bool {
	block := rec.Block
	if block.Seq != rec.Seq || len(rec.Datablocks) != len(block.Content) {
		return false
	}
	digest := crypto.HashBFTblock(block)
	if err := n.suite.VerifyProof(digest, rec.Notarized); err != nil {
		return false
	}
	sigma1 := crypto.HashBytes(rec.Notarized.Sig)
	if err := n.suite.VerifyProof(sigma1, rec.Confirmed); err != nil {
		return false
	}
	for i, h := range block.Content {
		if rec.Datablocks[i] == nil || crypto.HashDatablock(rec.Datablocks[i]) != h {
			return false
		}
	}
	for i, h := range block.Content {
		if !n.dbPool.Has(h) && !n.dbPool.Add(h, rec.Datablocks[i]) {
			// A different datablock with the same (generator, counter) is
			// pooled — equivocation by its generator. The confirmed one wins
			// for execution, but the pool cannot hold both; bail out and let
			// the next response retry after the pool entry is GC'd.
			return false
		}
		n.confirmedDBs[h] = struct{}{}
	}
	n.log[rec.Seq] = block
	n.executeBlock(rec.Seq, block, rec.Datablocks)
	n.stats.ConfirmedBlocks++
	n.stats.StateBlocksApplied++
	n.trace(obs.EvStateApplied, uint64(rec.Seq), int64(len(rec.Datablocks)))
	if inst := n.instances[rec.Seq]; inst != nil && inst.state < types.StateExecuted {
		// The slot is decided and executed; a live instance here must not
		// keep the view-change timer armed.
		inst.state = types.StateExecuted
	}
	if n.store != nil {
		if err := n.store.Append(rec); err != nil {
			n.stats.WALErrors++
		}
	}
	for _, h := range block.Content {
		n.resolveMissing(h, out)
	}
	return true
}
