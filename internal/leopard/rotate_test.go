package leopard_test

import (
	"testing"
	"time"

	"leopard/internal/leopard"
	"leopard/internal/types"
)

// rotated enables the rotating-leader schedule on a router cluster.
func rotated(cfg *leopard.Config) { cfg.RotateLeaders = true }

// TestRotationProgress: a rotating cluster confirms and executes requests
// submitted at every replica, and all replicas converge on the same
// execution frontier and chain state.
func TestRotationProgress(t *testing.T) {
	r := newRouter(t, 4, rotated)
	const perReplica = 20
	for i := 0; i < 4; i++ {
		r.submit(types.ReplicaID(i), perReplica, 1)
	}
	r.advance(300*time.Millisecond, time.Millisecond)

	want := int64(4 * perReplica)
	for i, node := range r.nodes {
		if got := node.Stats().ConfirmedRequests; got != want {
			t.Fatalf("replica %d confirmed %d requests, want %d", i, got, want)
		}
		if node.ExecutedTo() == 0 {
			t.Fatalf("replica %d executed nothing", i)
		}
	}
	for i := 1; i < 4; i++ {
		if r.nodes[i].ExecutedTo() != r.nodes[0].ExecutedTo() {
			t.Fatalf("frontier mismatch: replica %d at %d, replica 0 at %d",
				i, r.nodes[i].ExecutedTo(), r.nodes[0].ExecutedTo())
		}
		if r.nodes[i].ExecutionState() != r.nodes[0].ExecutionState() {
			t.Fatalf("chain state mismatch between replicas 0 and %d", i)
		}
	}
}

// TestRotationProposersRotate: with requests arriving everywhere, more than
// one replica ends up proposing confirmed blocks — the schedule actually
// spreads agreement instead of funneling through one leader.
func TestRotationProposersRotate(t *testing.T) {
	r := newRouter(t, 4, rotated)
	for i := 0; i < 4; i++ {
		r.submit(types.ReplicaID(i), 30, 1)
	}
	r.advance(300*time.Millisecond, time.Millisecond)

	node := r.nodes[0]
	proposers := make(map[types.ReplicaID]struct{})
	for sn := types.SeqNum(1); sn <= node.ExecutedTo(); sn++ {
		if blk, ok := node.LogBlock(sn); ok {
			proposers[types.LeaderFor(blk.View, blk.Seq, 4)] = struct{}{}
		}
	}
	if len(proposers) < 2 {
		t.Fatalf("expected multiple proposers across %d executed slots, got %d",
			node.ExecutedTo(), len(proposers))
	}
}

// TestRotationFillsIdleSlots: when only one replica has client load, the
// other proposers' slots are holes; they must fill them with empty blocks
// so the consecutive-prefix executor keeps advancing.
func TestRotationFillsIdleSlots(t *testing.T) {
	r := newRouter(t, 4, rotated)
	r.submit(0, 40, 1)
	r.advance(300*time.Millisecond, time.Millisecond)

	for i, node := range r.nodes {
		if got := node.Stats().ConfirmedRequests; got != 40 {
			t.Fatalf("replica %d confirmed %d requests, want 40", i, got)
		}
	}
	// At least one executed slot must be an empty fill block (only replica 0
	// generated datablocks, so three of every four slots had no content).
	node := r.nodes[0]
	fills := 0
	for sn := types.SeqNum(1); sn <= node.ExecutedTo(); sn++ {
		if blk, ok := node.LogBlock(sn); ok && len(blk.Content) == 0 {
			fills++
		}
	}
	if fills == 0 {
		t.Fatalf("expected empty fill blocks among %d executed slots", node.ExecutedTo())
	}
}

// TestRotationViewChange: a crashed proposer stalls its slots; the
// rotation-aware stall detector must trigger a view change (shifting the
// schedule) and the cluster must keep executing new requests afterwards.
func TestRotationViewChange(t *testing.T) {
	r := newRouter(t, 4, func(cfg *leopard.Config) {
		cfg.RotateLeaders = true
		cfg.ViewChangeTimeout = 20 * time.Millisecond
	})
	for i := 0; i < 4; i++ {
		r.submit(types.ReplicaID(i), 10, 1)
	}
	r.advance(100*time.Millisecond, time.Millisecond)
	before := r.nodes[0].ExecutedTo()
	if before == 0 {
		t.Fatal("no progress before the fault")
	}

	// Replica 1 goes silent: its slots stall until view changes rotate the
	// schedule past it. (Replica 1, not 2: the first target view's
	// coordinator is LeaderOf(2, 4) = 2, which must be live.)
	r.nodes[1].SetSilent(true)
	for i := 0; i < 4; i++ {
		if i == 1 {
			continue
		}
		r.submit(types.ReplicaID(i), 10, 11)
	}
	r.advance(2*time.Second, time.Millisecond)

	if r.nodes[0].View() == 1 {
		t.Fatal("expected a view change after silencing a proposer")
	}
	if got := r.nodes[0].ExecutedTo(); got <= before {
		t.Fatalf("no execution progress after view change: frontier still %d", got)
	}
	for _, i := range []int{0, 2, 3} {
		if got := r.nodes[i].Stats().ConfirmedRequests; got != 70 {
			t.Fatalf("replica %d confirmed %d requests, want 70", i, got)
		}
	}
}
