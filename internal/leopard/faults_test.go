package leopard_test

import (
	"testing"
	"time"

	"leopard/internal/crypto"
	"leopard/internal/leopard"
	"leopard/internal/merkle"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// TestSelectiveAttackRecoversViaRetrieval reproduces the paper's §IV-A2
// liveness threat: a faulty replica sends its datablocks to only a quorum
// subset, so some honest replicas must recover them through the erasure-
// coded committee retrieval (Alg. 3) before they can vote.
func TestSelectiveAttackRecoversViaRetrieval(t *testing.T) {
	const n = 4 // f = 1, leader of view 1 is replica 1
	r := newRouter(t, n, func(c *leopard.Config) {
		c.RetrievalTimeout = 10 * time.Millisecond
	})
	// Replica 3 is faulty: its datablocks reach only replicas 0, 1, 2 —
	// but wait, that IS everyone at n=4. Use the drop hook instead: its
	// datablocks never reach replica 2. Ready still reaches 2f+1 = 3
	// holders (0, 1, 3), so the leader links them.
	r.drop = func(from, to types.ReplicaID, msg transport.Message) bool {
		_, isDB := msg.(*leopard.DatablockMsg)
		return isDB && from == 3 && to == 2
	}
	r.submit(3, 30, 0)
	r.advance(300*time.Millisecond, 5*time.Millisecond)

	st2 := r.nodes[2].Stats()
	if st2.Retrievals == 0 {
		t.Fatal("replica 2 never exercised the retrieval path")
	}
	for _, node := range r.nodes {
		if got := node.Stats().ConfirmedRequests; got < 30 {
			t.Errorf("replica %d confirmed %d requests, want >= 30", node.ID(), got)
		}
	}
}

// TestSelectiveAttackHelperHook exercises the built-in SetSelectiveAttack
// fault hook across a larger cluster: the faulty replica's datablocks only
// reach a bare quorum, everyone else retrieves.
func TestSelectiveAttackHelperHook(t *testing.T) {
	const n = 7 // f = 2, quorum = 5, leader of view 1 is replica 1
	r := newRouter(t, n, func(c *leopard.Config) {
		c.RetrievalTimeout = 10 * time.Millisecond
	})
	// Faulty replica 2 sends datablocks only to replicas 0,1,3,4 (plus
	// itself = 5 holders = 2f+1, so ready succeeds and the leader links).
	r.nodes[2].SetSelectiveAttack([]types.ReplicaID{0, 1, 3, 4})
	r.submit(2, 20, 0)
	r.advance(400*time.Millisecond, 5*time.Millisecond)

	retrievals := int64(0)
	for _, id := range []types.ReplicaID{5, 6} {
		retrievals += r.nodes[id].Stats().Retrievals
	}
	if retrievals == 0 {
		t.Fatal("excluded replicas never retrieved")
	}
	for _, node := range r.nodes {
		if got := node.Stats().ConfirmedRequests; got < 20 {
			t.Errorf("replica %d confirmed %d, want >= 20", node.ID(), got)
		}
	}
}

// TestReadyRoundBlocksUnderdisseminatedDatablocks: with the ready round ON
// (the paper's design), a datablock held by fewer than 2f+1 replicas is
// never linked, so no instance can stall on it — progress elsewhere
// continues and no view change fires.
func TestReadyRoundBlocksUnderdisseminatedDatablocks(t *testing.T) {
	const n = 4
	r := newRouter(t, n, func(c *leopard.Config) {
		c.ViewChangeTimeout = 100 * time.Millisecond
	})
	// Faulty replica 3 sends its datablocks to the leader only: holders =
	// {1 (leader), 3} = 2 < quorum 3, so ready never completes.
	r.nodes[3].SetSelectiveAttack([]types.ReplicaID{1})
	r.submit(3, 10, 0) // requests that will never confirm
	r.submit(2, 10, 5000)
	r.advance(300*time.Millisecond, 5*time.Millisecond)

	// Replica 2's requests confirm; replica 3's never do; no view change.
	st := r.nodes[0].Stats()
	if st.ConfirmedRequests != 10 {
		t.Errorf("confirmed %d requests, want exactly 10 (only the honest batch)", st.ConfirmedRequests)
	}
	if st.ViewChanges != 0 {
		t.Errorf("unnecessary view change fired (%d)", st.ViewChanges)
	}
}

// TestAblationNoReadyRoundStalls (A2): with the ready round disabled, the
// leader links an under-disseminated datablock; honest replicas cannot
// retrieve it (fewer than f+1 honest holders) and the view change fires.
func TestAblationNoReadyRoundStalls(t *testing.T) {
	const n = 4
	r := newRouter(t, n, func(c *leopard.Config) {
		c.DisableReadyRound = true
		c.ViewChangeTimeout = 100 * time.Millisecond
		c.RetrievalTimeout = 10 * time.Millisecond
	})
	// Faulty replica 3 sends its datablock to the leader only. Without the
	// ready round the leader links it immediately; replicas 0 and 2 cannot
	// recover it: responders = leader only (1 chunk < f+1 = 2).
	r.nodes[3].SetSelectiveAttack([]types.ReplicaID{1})
	r.submit(3, 10, 0)
	r.advance(1200*time.Millisecond, 5*time.Millisecond)

	vcSeen := false
	for _, node := range r.nodes {
		if node.View() > 1 {
			vcSeen = true
		}
	}
	if !vcSeen {
		t.Fatal("expected the selective attack to force a view change when the ready round is disabled")
	}
}

// TestViewChangeOnSilentLeader: the leader goes silent; replicas time out,
// run the view change, and the next leader resumes confirmations.
func TestViewChangeOnSilentLeader(t *testing.T) {
	const n = 4
	r := newRouter(t, n, func(c *leopard.Config) {
		c.ViewChangeTimeout = 50 * time.Millisecond
	})
	r.nodes[1].SetSilent(true) // leader of view 1
	r.submit(2, 30, 0)
	r.submit(3, 30, 0)
	r.advance(2*time.Second, 5*time.Millisecond)

	for _, node := range r.nodes {
		if node.ID() == 1 {
			continue
		}
		if node.View() < 2 {
			t.Errorf("replica %d still in view %d", node.ID(), node.View())
		}
		if got := node.Stats().ConfirmedRequests; got < 60 {
			t.Errorf("replica %d confirmed %d requests after view change, want >= 60", node.ID(), got)
		}
	}
	// The new leader must be replica 2 (view 2 mod 4).
	if got := r.nodes[0].Leader(); got != 2 {
		t.Errorf("leader after view change = %d, want 2", got)
	}
}

// TestViewChangeCarriesNotarizedBlocks: blocks notarized before the leader
// dies must survive into the new view and eventually confirm (Lemma 2).
func TestViewChangeCarriesNotarizedBlocks(t *testing.T) {
	const n = 4
	r := newRouter(t, n, func(c *leopard.Config) {
		c.ViewChangeTimeout = 50 * time.Millisecond
	})
	// Drop all round-2 proofs from the leader: blocks notarize but never
	// confirm, then the leader is silenced.
	r.drop = func(from, to types.ReplicaID, msg transport.Message) bool {
		p, ok := msg.(*leopard.ProofMsg)
		return ok && p.Round == 2 && from == 1
	}
	r.submit(2, 10, 0)
	r.advance(30*time.Millisecond, 5*time.Millisecond)
	r.drop = nil
	r.nodes[1].SetSilent(true)
	r.advance(2*time.Second, 5*time.Millisecond)

	for _, node := range r.nodes {
		if node.ID() == 1 {
			continue
		}
		if got := node.Stats().ConfirmedRequests; got < 10 {
			t.Errorf("replica %d confirmed %d, want >= 10 (notarized work lost in view change)", node.ID(), got)
		}
	}
}

// TestSafetyAcrossViewChange: logs of all honest replicas agree position-
// by-position even after a view change.
func TestSafetyAcrossViewChange(t *testing.T) {
	const n = 4
	r := newRouter(t, n, func(c *leopard.Config) {
		c.ViewChangeTimeout = 50 * time.Millisecond
	})
	r.submit(2, 20, 0)
	r.advance(50*time.Millisecond, 5*time.Millisecond)
	r.nodes[1].SetSilent(true)
	r.submit(3, 20, 0)
	r.advance(2*time.Second, 5*time.Millisecond)

	honest := []types.ReplicaID{0, 2, 3}
	var min types.SeqNum
	for i, id := range honest {
		if e := r.nodes[id].ExecutedTo(); i == 0 || e < min {
			min = e
		}
	}
	if min == 0 {
		t.Fatal("nothing executed after view change")
	}
	for sn := types.SeqNum(1); sn <= min; sn++ {
		ref, ok := r.nodes[0].LogBlock(sn)
		if !ok {
			t.Fatalf("replica 0 missing block %d", sn)
		}
		for _, id := range honest[1:] {
			b, ok := r.nodes[id].LogBlock(sn)
			if !ok {
				t.Fatalf("replica %d missing block %d", id, sn)
			}
			if crypto.HashBFTblock(b) != crypto.HashBFTblock(ref) {
				t.Fatalf("safety violation at sn=%d after view change", sn)
			}
		}
	}
}

// TestCheckpointAdvancesWatermarkAndPrunes: long runs must not accumulate
// unbounded datablocks — the checkpoint protocol garbage-collects them.
func TestCheckpointAdvancesWatermarkAndPrunes(t *testing.T) {
	r := newRouter(t, 4, func(c *leopard.Config) {
		c.MaxParallel = 8
		c.CheckpointEvery = 4
		c.DatablockSize = 5
		c.BFTBlockSize = 1
	})
	for round := 0; round < 10; round++ {
		r.submit(2, 25, uint64(round*25))
		r.advance(50*time.Millisecond, 5*time.Millisecond)
	}
	for _, node := range r.nodes {
		st := node.Stats()
		if st.ExecutedBlocks < 8 {
			t.Fatalf("replica %d executed only %d blocks", node.ID(), st.ExecutedBlocks)
		}
		// 50 datablocks were produced in total; with checkpoints every 4
		// blocks, the pool must have been pruned well below that.
		if st.DatablocksHeld > 20 {
			t.Errorf("replica %d still holds %d datablocks; checkpoint GC not working", node.ID(), st.DatablocksHeld)
		}
		// Executed block headers below the watermark are GC'd with the rest
		// (regression: the confirmed log used to grow for the node's
		// lifetime).
		if st.LastCheckpointSeq < 1 {
			t.Fatalf("replica %d formed no checkpoint", node.ID())
		}
		if _, ok := node.LogBlock(1); ok {
			t.Errorf("replica %d still holds the executed block header at sn=1 below the watermark", node.ID())
		}
	}
}

// TestRetrievalRejectsTamperedChunk: a response whose chunk fails the
// Merkle check, or whose index does not match the responder, is discarded.
func TestRetrievalRejectsTamperedChunk(t *testing.T) {
	const n = 4
	r := newRouter(t, n, func(c *leopard.Config) {
		c.RetrievalTimeout = 5 * time.Millisecond
	})
	// Make replica 2 miss a datablock that gets linked.
	r.drop = func(from, to types.ReplicaID, msg transport.Message) bool {
		_, isDB := msg.(*leopard.DatablockMsg)
		return isDB && from == 3 && to == 2
	}
	r.submit(3, 10, 0)
	// Also intercept responses to tamper with them: drop genuine responses
	// to replica 2 and inject a forged one.
	sawResp := false
	r.drop = func(from, to types.ReplicaID, msg transport.Message) bool {
		if db, isDB := msg.(*leopard.DatablockMsg); isDB && from == 3 && to == 2 {
			_ = db
			return true
		}
		if resp, isResp := msg.(*leopard.RespMsg); isResp && to == 2 {
			sawResp = true
			// Deliver a tampered copy instead: flipped chunk byte.
			bad := *resp
			bad.Chunk = append([]byte(nil), resp.Chunk...)
			if len(bad.Chunk) > 0 {
				bad.Chunk[0] ^= 0xff
			}
			deliver(r.nodes[2], r.now, from, &bad)
			return true
		}
		return false
	}
	r.advance(200*time.Millisecond, 5*time.Millisecond)
	if !sawResp {
		t.Fatal("no retrieval responses were generated")
	}
	if got := r.nodes[2].Stats().Retrievals; got != 0 {
		t.Fatalf("replica 2 accepted %d retrievals from tampered chunks", got)
	}
}

// TestRetrievalWrongIndexRejected: a responder must serve the chunk at its
// own replica index; anything else is ignored.
func TestRetrievalWrongIndexRejected(t *testing.T) {
	const n = 4
	r := newRouter(t, n, nil)
	// Build a valid response from replica 0's perspective but with a
	// mismatched sender: deliver it claiming to be from replica 3.
	db := &types.Datablock{Ref: types.DatablockRef{Generator: 0, Counter: 1},
		Requests: []types.Request{{ClientID: 1, Seq: 1, Payload: []byte("zz")}}}
	digest := crypto.HashDatablock(db)
	// Node 2 is waiting for this digest.
	block := &types.BFTblock{View: 1, Seq: 1, Content: []types.Hash{digest}}
	bd := crypto.HashBFTblock(block)
	share, _ := r.nodes[2].Leader(), bd
	_ = share
	leaderShare, err := mustSign(r, r.nodes[2].Leader(), bd)
	if err != nil {
		t.Fatal(err)
	}
	deliver(r.nodes[2], r.now, r.nodes[2].Leader(), &leopard.BFTblockMsg{Block: block, LeaderShare: leaderShare})

	resp := &leopard.RespMsg{Digest: digest, Root: types.Hash{1}, Chunk: []byte("junk"), Index: 0, Proof: merkle.Proof{Index: 0}, DataLen: 10}
	deliver(r.nodes[2], r.now, 3, resp) // index 0 but sender 3
	if got := r.nodes[2].Stats().Retrievals; got != 0 {
		t.Fatalf("wrong-index response accepted: %d retrievals", got)
	}
}

// mustSign signs a digest with the given replica's key from the router's
// shared suite (all router nodes share one dealer suite).
func mustSign(r *router, id types.ReplicaID, digest types.Hash) (crypto.Share, error) {
	suite, err := crypto.NewEd25519Suite(len(r.nodes), []byte("router-seed"))
	if err != nil {
		return crypto.Share{}, err
	}
	return suite.Sign(id, digest)
}

// TestCrashFaultToleranceF: with f replicas silenced (non-leader), the
// remaining 2f+1 still confirm requests.
func TestCrashFaultToleranceF(t *testing.T) {
	const n = 7 // f = 2
	r := newRouter(t, n, nil)
	r.nodes[5].SetSilent(true)
	r.nodes[6].SetSilent(true)
	r.submit(2, 30, 0)
	r.submit(3, 30, 0)
	r.advance(300*time.Millisecond, 5*time.Millisecond)
	for _, id := range []types.ReplicaID{0, 1, 2, 3, 4} {
		if got := r.nodes[id].Stats().ConfirmedRequests; got < 60 {
			t.Errorf("replica %d confirmed %d with f crashed, want >= 60", id, got)
		}
	}
}

// TestFPlusOneCrashesStall: beyond the resilience bound (f+1 silent
// non-leaders), confirmation must stop — the quorum is unreachable.
func TestFPlusOneCrashesStall(t *testing.T) {
	const n = 4 // f = 1, quorum = 3
	r := newRouter(t, n, nil)
	r.nodes[2].SetSilent(true)
	r.nodes[3].SetSilent(true) // f+1 = 2 silent
	r.submit(2, 10, 0)
	r.advance(300*time.Millisecond, 5*time.Millisecond)
	if got := r.nodes[0].Stats().ConfirmedRequests; got != 0 {
		t.Errorf("confirmed %d requests with f+1 faults; the bound says 0", got)
	}
}
