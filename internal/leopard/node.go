package leopard

import (
	"encoding/binary"
	"sort"
	"time"

	"leopard/internal/crypto"
	"leopard/internal/erasure"
	"leopard/internal/mempool"
	"leopard/internal/metrics"
	"leopard/internal/obs"
	"leopard/internal/protocol"
	"leopard/internal/storage"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// instance is one agreement instance (one BFTblock).
type instance struct {
	block        *types.BFTblock
	digest       types.Hash // H(m)
	sigma1Digest types.Hash // H(σ1), defined once notarized
	state        types.BlockState
	missing      map[types.Hash]struct{} // linked datablocks not yet held
	voted1       bool
	voted2       bool
	proposedAt   time.Duration

	// Leader-only vote collection.
	vote1Shares []crypto.Share
	vote1Seen   map[types.ReplicaID]struct{}
	vote2Shares []crypto.Share
	vote2Seen   map[types.ReplicaID]struct{}

	notarized *crypto.Proof
	confirmed *crypto.Proof
}

// retrievalState tracks recovery of one missing datablock (Alg. 3).
type retrievalState struct {
	firstMissing time.Duration
	queried      bool
	queriedAt    time.Duration
	// chunks maps Merkle root -> chunk index -> chunk bytes. Responses
	// under different roots are collected separately; a root whose decode
	// fails the digest check is discarded.
	chunks  map[types.Hash]map[int][]byte
	dataLen map[types.Hash]int
	waiters map[types.SeqNum]struct{}
}

type servedKey struct {
	digest    types.Hash
	requester types.ReplicaID
}

// pendingProof buffers a proof that arrived before its BFTblock (possible
// across view changes).
type pendingProof struct {
	round  int
	digest types.Hash
	proof  crypto.Proof
}

// Stats are the per-node counters the experiments read.
type Stats struct {
	ConfirmedRequests int64
	ConfirmedBlocks   int64
	ExecutedBlocks    int64
	DatablocksMade    int64
	DatablocksHeld    int64
	Retrievals        int64 // datablocks recovered via Alg. 3
	ViewChanges       int64
	View              types.View
	Stages            *metrics.StageTimer

	// Durability and recovery counters (zero without a Store).
	LastCheckpointSeq  types.SeqNum // newest stable checkpoint applied
	LogSegments        int64        // live WAL segment files
	LogBytes           int64        // live WAL bytes
	BlocksReplayed     int64        // WAL records replayed at Start
	BytesReplayed      int64        // byte volume of those records
	StateReqsServed    int64        // state-transfer responses sent to peers
	StateRespsReceived int64        // state-transfer responses received
	StateBlocksApplied int64        // blocks applied via state transfer
	WALErrors          int64        // persistence failures (append/meta/reset)
	// WALFailed reports the fail-stop state: the store's backing medium
	// has a sticky write/fsync failure, so the replica has stopped voting
	// and proposing (it can no longer persist what it signs).
	WALFailed bool
	// VotesLogged counts vote-ahead records persisted this session;
	// VotesReloaded counts vote locks restored from the store at Start.
	VotesLogged   int64
	VotesReloaded int64
	// NotesLogged counts notarization certificates persisted alongside
	// round-2 votes; NotesReloaded counts certificates restored into the
	// carried set at Start.
	NotesLogged   int64
	NotesReloaded int64
	// CheckpointSeqsTracked is the live size of the leader's checkpoint
	// share/digest maps — bounded by the watermark window (regression:
	// TestCheckpointMapsPruned).
	CheckpointSeqsTracked int

	// Client serving path counters (client-signed admission + replies).
	PendingRequests  int   // gauge: extractable mempool entries
	QueuedRequests   int   // gauge: nonce-gapped mempool entries
	AdmittedRequests int64 // requests admitted (pending or queued)
	RejectedRequests int64 // admission rejections, all causes
	RateLimited      int64 // rejections from per-client token buckets
	BadSignatures    int64 // rejections from signature verification
	RepliesSent      int64 // signed ReplyMsgs emitted after execution
}

// Node is a Leopard replica. It implements transport.Node and must be
// driven from a single goroutine (simnet does this; the TCP runtime
// serializes events onto one apply loop).
type Node struct {
	cfg    Config
	suite  crypto.Suite
	q      types.QuorumParams
	now    time.Duration
	execFn protocol.ExecuteFunc

	// Request and datablock pools.
	reqPool   *mempool.RequestPool
	dbPool    *mempool.DatablockPool
	dbCounter uint64
	// myOutstanding holds digests of this replica's own datablocks that
	// are not yet confirmed (flow-control window).
	myOutstanding map[types.Hash]struct{}
	// myDBPacked records when each of this replica's datablocks was
	// packed, feeding the Table IV stage breakdown.
	myDBPacked map[types.Hash]time.Duration
	lastPack   time.Duration

	// Leader state.
	readyVotes  map[types.Hash]map[types.ReplicaID]struct{}
	readySet    map[types.Hash]struct{} // enqueued or linked
	readyQueue  []types.Hash
	linked      map[types.Hash]struct{}
	nextSeq     types.SeqNum
	lastPropose time.Duration
	// maxSeqSeen is the highest serial number proposed or received in the
	// current view. Under RotateLeaders each proposer owns a stride-n subset
	// of serials, and fills its own slots with empty blocks when peers have
	// proposed past them (agreement.go), so the consecutive-prefix executor
	// never stalls on a hole owned by an idle replica.
	maxSeqSeen types.SeqNum

	// Agreement state.
	view      types.View
	lw        types.SeqNum
	instances map[types.SeqNum]*instance
	votedSeq  map[types.SeqNum]types.Hash // per-view first-vote lock
	// vote2Lock pins the σ1 digest this replica signed a round-2 vote
	// over, per seq in the current view. Populated from reloaded
	// vote-ahead records so a restarted replica never signs a second,
	// different σ2 for a slot it already voted in.
	vote2Lock    map[types.SeqNum]types.Hash
	pendingProof map[types.BlockID][]pendingProof
	// carried keeps notarized blocks across view changes (highest view per
	// seq) until they fall below a stable checkpoint. enterNewView wipes
	// the per-view instances, but the quorum-intersection argument behind
	// the redo plan needs every replica that ever saw a σ1 proof for a seq
	// to keep advertising it in its view-change messages — a block can be
	// confirmed and executed at one replica and then vanish from every
	// live instance after a cascade of failed view changes, letting a
	// later redo replace it with a dummy (the analog of PBFT carrying
	// prepared certificates across views). The same argument must survive
	// crash-restarts of the σ2 voters, so each certificate is also
	// persisted with the round-2 vote (storage.NoteRecord) and reloaded
	// into this set at Start.
	carried map[types.SeqNum]NotarizedBlock

	// Confirmed log and execution.
	log        map[types.SeqNum]*types.BFTblock
	executedTo types.SeqNum
	// execState is the running chain hash over executed block digests; it
	// is the checkpointed "execution state" (the consensus layer is
	// application-agnostic, as in the paper).
	execState types.Hash

	// Retrieval state.
	missing map[types.Hash]*retrievalState
	// served records when each (digest, requester) pair was last answered;
	// re-serves are allowed once the requester's retry period has passed.
	served map[servedKey]time.Duration
	// respCache holds the one retrieval response this replica serves per
	// datablock (chunk + proof are requester-independent); pruned with the
	// datablock at watermark advance.
	respCache map[types.Hash]*RespMsg
	// rs is the retrieval codec, built on first use and reused so its
	// lazily-built multiplication tables and decode-matrix cache persist
	// across datablocks (rebuilding it per call would defeat both).
	rs *erasure.Codec

	// Checkpoints.
	lastCheckpoint *CheckpointProofMsg
	cpShares       map[types.SeqNum]map[types.ReplicaID]crypto.Share
	cpDigest       map[types.SeqNum]types.Hash

	// Durability and recovery (recovery.go). store mirrors cfg.Store;
	// proofStash holds each confirmed block's certificates until execution
	// appends them to the WAL; counterReserve is the persisted datablock
	// counter ceiling. needSync marks a restarted (or gap-detected) replica
	// that should probe peers for state transfer; lastStateReq /
	// stateRound pace and rotate those probes; stateServed is the
	// responder-side per-requester cooldown (bounded at N-1 entries).
	store          storage.Store
	proofStash     map[types.SeqNum]blockProofs
	counterReserve uint64
	needSync       bool
	lastStateReq   time.Duration
	stateRound     int
	stateServed    map[types.ReplicaID]stateServeState
	// behindSince is when the execution frontier first stalled (-1 while
	// advancing normally); feeds the stuckBehind grace period.
	behindSince time.Duration
	// maxConfirmed is the highest serial number in the confirmed log;
	// frontierStalled compares it against executedTo to detect gaps.
	maxConfirmed types.SeqNum
	// prunedTo is the pruneBelow cursor: every sn at or below it has had
	// its execution-side state garbage-collected.
	prunedTo types.SeqNum

	// walFailed latches the fail-stop state once store.Err() reports the
	// backing medium failed: the replica stops packing, proposing, voting
	// and checkpointing — it cannot durably log what it signs — while
	// read-only service (retrieval, state transfer) continues.
	walFailed bool

	// View change.
	inViewChange bool
	pendingView  types.View // target view while a view change is in flight
	vcStartedAt  time.Duration
	// vcPatience is the current escalation patience: how long a pending
	// view change may stall before this replica votes for the next view.
	// Starts at 4×ViewChangeTimeout on entering a view change, doubles per
	// escalation up to ViewChangeMaxTimeout, resets when a view completes.
	vcPatience   time.Duration
	sentTimeout  map[types.View]bool
	timeoutVotes map[types.View]map[types.ReplicaID]struct{}
	vcMsgs       map[types.View]map[types.ReplicaID]*ViewChangeMsg
	expectedRedo map[types.SeqNum]types.Hash // content digests promised by new-view
	lastProgress time.Duration
	// lastExecProgress is when the execution frontier last advanced. Under
	// RotateLeaders, confirmations at higher serials keep lastProgress fresh
	// even while a crashed proposer's hole stalls execution, so the
	// view-change timer additionally watches this (viewchange.go).
	lastExecProgress time.Duration
	sentNewView      map[types.View]bool
	// futureBlocks buffers proposals for views this replica has not
	// entered yet (control-plane messages can overtake the new-view
	// announcement); replayed on entering the view. Bounded.
	futureBlocks []*BFTblockMsg
	// confirmedDBs tracks datablock digests already confirmed in some
	// block, so replicas re-announce only outstanding ones after a view
	// change. Pruned with the watermark.
	confirmedDBs map[types.Hash]struct{}

	// replyFn, when set, receives a signed ReplyMsg for every executed
	// request (SetReplySink); replaying suppresses emission during WAL
	// replay at Start.
	replyFn   func(ReplyMsg)
	replaying bool
	// lastReply caches the newest signed reply per client so a request that
	// re-arrives after confirmation — a client that missed the original
	// certificate — gets its ReplyMsg re-emitted instead of a bare
	// dup-confirmed rejection. Bounded FIFO over clients (replyOrder).
	lastReply  map[uint64]ReplyMsg
	replyOrder []uint64

	stats  Stats
	stages metrics.StageTimer

	// Byzantine hooks used by tests and the fault-injection harness.
	// selectiveTargets, when non-nil, restricts datablock broadcasts to
	// the given replicas (the paper's selective attack). The slice is kept
	// sorted so simulation runs stay deterministic. selective is the
	// cached Sink decorator applying the hook (reused across events so the
	// faulty path allocates nothing per event either).
	selectiveTargets map[types.ReplicaID]struct{}
	selectiveOrder   []types.ReplicaID
	selective        selectiveSink
	silent           bool // drop all outbound protocol messages
}

var _ transport.Node = (*Node)(nil)

// NewNode builds a Leopard replica from cfg.
func NewNode(cfg Config) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Node{
		cfg:           cfg,
		suite:         cfg.Suite,
		q:             cfg.Quorum,
		reqPool:       mempool.NewRequestPoolLimits(cfg.Mempool),
		dbPool:        mempool.NewDatablockPool(),
		myOutstanding: make(map[types.Hash]struct{}),
		myDBPacked:    make(map[types.Hash]time.Duration),
		readyVotes:    make(map[types.Hash]map[types.ReplicaID]struct{}),
		readySet:      make(map[types.Hash]struct{}),
		linked:        make(map[types.Hash]struct{}),
		nextSeq:       1,
		view:          1,
		instances:     make(map[types.SeqNum]*instance),
		votedSeq:      make(map[types.SeqNum]types.Hash),
		vote2Lock:     make(map[types.SeqNum]types.Hash),
		pendingProof:  make(map[types.BlockID][]pendingProof),
		carried:       make(map[types.SeqNum]NotarizedBlock),
		log:           make(map[types.SeqNum]*types.BFTblock),
		missing:       make(map[types.Hash]*retrievalState),
		served:        make(map[servedKey]time.Duration),
		respCache:     make(map[types.Hash]*RespMsg),
		cpShares:      make(map[types.SeqNum]map[types.ReplicaID]crypto.Share),
		cpDigest:      make(map[types.SeqNum]types.Hash),
		sentTimeout:   make(map[types.View]bool),
		timeoutVotes:  make(map[types.View]map[types.ReplicaID]struct{}),
		vcMsgs:        make(map[types.View]map[types.ReplicaID]*ViewChangeMsg),
		sentNewView:   make(map[types.View]bool),
		confirmedDBs:  make(map[types.Hash]struct{}),
		lastReply:     make(map[uint64]ReplyMsg),
		store:         cfg.Store,
		proofStash:    make(map[types.SeqNum]blockProofs),
		stateServed:   make(map[types.ReplicaID]stateServeState),
		lastStateReq:  -1,
		behindSince:   -1,
	}
	n.stats.Stages = &n.stages
	n.selective.node = n
	return n, nil
}

// ID implements transport.Node.
func (n *Node) ID() types.ReplicaID { return n.cfg.ID }

// SetExecutor registers the execution callback invoked for every confirmed
// block in log order. Must be called before Start.
func (n *Node) SetExecutor(fn protocol.ExecuteFunc) { n.execFn = fn }

// View returns the current view number.
func (n *Node) View() types.View { return n.view }

// InViewChange reports whether the replica has stopped the normal case and
// is waiting for a new view to form.
func (n *Node) InViewChange() bool { return n.inViewChange }

// Leader returns the leader of the current view.
func (n *Node) Leader() types.ReplicaID { return types.LeaderOf(n.view, n.q.N) }

// isLeader reports whether this replica leads the current view.
func (n *Node) isLeader() bool { return n.Leader() == n.cfg.ID }

// proposerOf returns the proposer of serial s in the current view: the
// rotated schedule under RotateLeaders, the fixed view leader otherwise.
func (n *Node) proposerOf(s types.SeqNum) types.ReplicaID {
	if n.cfg.RotateLeaders {
		return types.LeaderFor(n.view, s, n.q.N)
	}
	return n.Leader()
}

// proposerForView returns the proposer of serial s as of view v (used when
// classifying buffered future-view proposals).
func (n *Node) proposerForView(v types.View, s types.SeqNum) types.ReplicaID {
	if n.cfg.RotateLeaders {
		return types.LeaderFor(v, s, n.q.N)
	}
	return types.LeaderOf(v, n.q.N)
}

// isProposer reports whether this replica proposes serial s in the current
// view.
func (n *Node) isProposer(s types.SeqNum) bool { return n.proposerOf(s) == n.cfg.ID }

// readyOwnerOf returns the replica that collects ready votes for the given
// datablock digest. Under RotateLeaders ownership rotates deterministically
// per digest (offset by the view, so a censoring owner is rotated away by a
// view change); otherwise the fixed view leader collects all ready votes.
func (n *Node) readyOwnerOf(digest types.Hash) types.ReplicaID {
	if !n.cfg.RotateLeaders {
		return n.Leader()
	}
	h := binary.BigEndian.Uint64(digest[:8])
	return types.ReplicaID((h + uint64(n.view)) % uint64(n.q.N))
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	s := n.stats
	s.View = n.view
	s.DatablocksHeld = int64(n.dbPool.Len())
	if n.lastCheckpoint != nil {
		s.LastCheckpointSeq = n.lastCheckpoint.Seq
	}
	if n.store != nil {
		st := n.store.Stats()
		s.LogSegments = st.Segments
		s.LogBytes = st.LiveBytes
	}
	s.CheckpointSeqsTracked = len(n.cpShares)
	if d := len(n.cpDigest); d > s.CheckpointSeqsTracked {
		s.CheckpointSeqsTracked = d
	}
	s.WALFailed = n.walFailed
	s.PendingRequests = n.reqPool.Len()
	s.QueuedRequests = n.reqPool.Queued()
	ps := n.reqPool.Stats()
	s.AdmittedRequests = ps.Admitted
	s.RejectedRequests = ps.Rejected + s.BadSignatures
	s.RateLimited = ps.RateLimited
	return s
}

// LastCheckpoint returns the newest stable checkpoint certificate this
// replica holds, or nil. Read-only: the harness's invariant checker
// verifies the quorum proof against the cluster's chain.
func (n *Node) LastCheckpoint() *CheckpointProofMsg { return n.lastCheckpoint }

// ExecutionState returns the running execution chain hash — the state the
// checkpoint protocol certifies. Recovery tests compare it across restarts.
func (n *Node) ExecutionState() types.Hash { return n.execState }

// PendingRequests returns the mempool depth.
func (n *Node) PendingRequests() int { return n.reqPool.Len() }

// ExecutedTo returns the highest consecutively executed serial number.
func (n *Node) ExecutedTo() types.SeqNum { return n.executedTo }

// LogBlock returns the confirmed block at sn, if any. Part of the public
// API so applications can audit the output log. Entries at or below the
// low watermark are garbage-collected once executed (the stable checkpoint
// certificate stands in for them), so audits should track the live window.
func (n *Node) LogBlock(sn types.SeqNum) (*types.BFTblock, bool) {
	b, ok := n.log[sn]
	return b, ok
}

// Datablock returns a datablock by digest from the local pool.
func (n *Node) Datablock(h types.Hash) (*types.Datablock, bool) { return n.dbPool.Get(h) }

// Stage names for the Table IV latency breakdown.
const (
	StageGeneration    = "datablock_generation"
	StageDissemination = "datablock_dissemination"
	StageAgreement     = "agreement"
)

// SubmitRequest adds a client request to this replica's mempool over the
// legacy unauthenticated path. Returns false if the request is rejected
// (duplicate, stale nonce, over budget — or always, on replicas configured
// with a Verifier: an authenticated front door takes no unsigned requests).
func (n *Node) SubmitRequest(now time.Duration, req types.Request) bool {
	n.observe(now)
	if n.cfg.Verifier != nil {
		n.stats.BadSignatures++
		return false
	}
	ok := n.reqPool.Add(req, now)
	if ok {
		n.trace(obs.EvRequestAdmitted, req.ClientID, int64(req.Seq))
	}
	return ok
}

// SubmitSigned verifies a client-signed request and admits it to the
// mempool, returning the admission verdict. Replicas without a Verifier
// accept the request unverified (the signature is carried but not checked).
func (n *Node) SubmitSigned(now time.Duration, req types.Request, sig []byte) mempool.Verdict {
	n.observe(now)
	if n.cfg.Verifier != nil && !n.cfg.Verifier.VerifyRequest(req, sig) {
		n.stats.BadSignatures++
		return mempool.BadSignature
	}
	v := n.reqPool.Admit(req, now)
	if v.OK() {
		n.trace(obs.EvRequestAdmitted, req.ClientID, int64(req.Seq))
	}
	if v == mempool.DupConfirmed || v == mempool.StaleSeq {
		n.resendReply(req)
	}
	return v
}

// maxReplyCache bounds the per-client last-reply cache (FIFO over clients).
const maxReplyCache = 1024

// cacheReply records the newest signed reply per client, evicting the
// oldest-admitted client once the bound is reached.
func (n *Node) cacheReply(r ReplyMsg) {
	if _, ok := n.lastReply[r.Client]; !ok {
		if len(n.replyOrder) >= maxReplyCache {
			delete(n.lastReply, n.replyOrder[0])
			n.replyOrder = n.replyOrder[1:]
		}
		n.replyOrder = append(n.replyOrder, r.Client)
	}
	n.lastReply[r.Client] = r
}

// resendReply re-emits the cached signed reply for a request that re-arrived
// after confirmation — the pool reports such arrivals as DupConfirmed or,
// once the confirmation folded into the client's consumed watermark, as
// StaleSeq. Either way a client that missed the original certificate still
// completes. Only the client's newest executed seq is cached; older dups
// stay bare rejections (the client has necessarily moved past them).
func (n *Node) resendReply(req types.Request) {
	if n.replyFn == nil {
		return
	}
	if r, ok := n.lastReply[req.ClientID]; ok && r.Seq == req.Seq {
		n.replyFn(r)
		n.stats.RepliesSent++
	}
}

// SubmitSignedBatch admits a batch of client-signed requests, verifying all
// signatures in one batched pass (ClientVerifier.VerifyRequestBatch — the
// parallel admission path) before touching the pool. Verdicts are
// positional. Drivers that aggregate submissions between events (the
// clients scenario, cmd/leopard-node's apply loop) get signature
// verification at batch cost instead of per-request cost.
func (n *Node) SubmitSignedBatch(now time.Duration, reqs []types.Request, sigs [][]byte) []mempool.Verdict {
	n.observe(now)
	out := make([]mempool.Verdict, len(reqs))
	var okSigs []bool
	if n.cfg.Verifier != nil {
		okSigs = n.cfg.Verifier.VerifyRequestBatch(reqs, sigs)
	}
	for i := range reqs {
		if okSigs != nil && !okSigs[i] {
			n.stats.BadSignatures++
			out[i] = mempool.BadSignature
			continue
		}
		out[i] = n.reqPool.Admit(reqs[i], now)
		if out[i].OK() {
			n.trace(obs.EvRequestAdmitted, reqs[i].ClientID, int64(reqs[i].Seq))
		}
		if out[i] == mempool.DupConfirmed || out[i] == mempool.StaleSeq {
			n.resendReply(reqs[i])
		}
	}
	return out
}

// QueuedRequests returns the number of nonce-gapped mempool entries.
func (n *Node) QueuedRequests() int { return n.reqPool.Queued() }

// SetReplySink registers the callback that carries signed execution replies
// toward clients; the transport layer (simnet driver, TCP runtime) owns the
// actual delivery. Replies are emitted once per request execution — not
// during WAL replay, which re-executes history the clients of a previous
// life already saw. Must be called before Start.
func (n *Node) SetReplySink(fn func(ReplyMsg)) { n.replyFn = fn }

// SetSelectiveAttack makes this (faulty) replica send its datablocks only
// to the listed targets, the paper's §V-B selective attack. Nil restores
// honest behaviour.
func (n *Node) SetSelectiveAttack(targets []types.ReplicaID) {
	if targets == nil {
		n.selectiveTargets = nil
		n.selectiveOrder = nil
		return
	}
	n.selectiveTargets = make(map[types.ReplicaID]struct{}, len(targets))
	n.selectiveOrder = nil
	for _, t := range targets {
		if _, dup := n.selectiveTargets[t]; dup {
			continue
		}
		n.selectiveTargets[t] = struct{}{}
		n.selectiveOrder = append(n.selectiveOrder, t)
	}
	sort.Slice(n.selectiveOrder, func(i, j int) bool {
		return n.selectiveOrder[i] < n.selectiveOrder[j]
	})
}

// SetSilent makes the node drop all outbound messages (crash-like fault
// while still consuming input). Used by fault-injection tests.
func (n *Node) SetSilent(v bool) { n.silent = v }

// observe advances the node clock.
func (n *Node) observe(now time.Duration) {
	if now > n.now {
		n.now = now
	}
}

// trace records one lifecycle event on the configured tracer, stamped with
// the node clock and current view. Emit is nil-safe, so untraced replicas
// pay one pointer check per site.
func (n *Node) trace(kind obs.EventKind, id uint64, aux int64) {
	n.cfg.Tracer.Emit(n.now, kind, uint64(n.view), id, aux)
}

// traceID compresses a digest into a trace event id (first 8 bytes,
// big-endian) — enough to correlate lifecycle stages across replicas.
func traceID(h types.Hash) uint64 { return binary.BigEndian.Uint64(h[:8]) }

// Start implements transport.Node. With a Store configured, Start first
// recovers the durable state (checkpoint anchor + WAL replay) and, when
// that reveals a prior life, probes peers for state transfer.
func (n *Node) Start(now time.Duration, out transport.Sink) {
	n.observe(now)
	n.lastProgress = now
	n.lastExecProgress = now
	if n.store != nil {
		out = n.outbound(out)
		defer n.releaseOutbound()
		n.recoverFromStore(out)
	}
}

// Tick implements transport.Node.
func (n *Node) Tick(now time.Duration, out transport.Sink) {
	n.observe(now)
	out = n.outbound(out)
	defer n.releaseOutbound()
	n.checkStoreHealth()
	if !n.walFailed {
		n.maybePackDatablocks(out)
		if (n.isLeader() || n.cfg.RotateLeaders) && !n.inViewChange {
			n.maybePropose(out)
		}
	}
	n.checkRetrievalTimers(out)
	n.maybeRequestState(out)
	if !n.walFailed {
		n.checkViewChangeTimer(out)
	}
}

// checkStoreHealth latches the fail-stop state when the store reports a
// sticky backing-medium failure. A replica that cannot persist its votes
// and executed blocks must stop participating in agreement: continuing
// would let a later crash erase state it already signed for, turning a
// disk fault into a safety hazard. Read paths keep serving.
func (n *Node) checkStoreHealth() {
	if n.walFailed || n.store == nil {
		return
	}
	if err := n.store.Err(); err != nil {
		n.walFailed = true
		n.stats.WALErrors++
	}
}

// Deliver implements transport.Node.
func (n *Node) Deliver(now time.Duration, from types.ReplicaID, msg transport.Message, out transport.Sink) {
	n.observe(now)
	out = n.outbound(out)
	defer n.releaseOutbound()
	switch m := msg.(type) {
	case *RequestMsg:
		// A peer (or a client gateway) forwarded a signed submission; it
		// goes through the same authenticated admission as SubmitSigned.
		n.SubmitSigned(now, m.Req, m.Sig)
	case *DatablockMsg:
		n.handleDatablock(from, m, out)
	case *ReadyMsg:
		n.handleReady(from, m, out)
	case *BFTblockMsg:
		n.handleBFTblock(from, m, out)
	case *VoteMsg:
		n.handleVote(from, m, out)
	case *ProofMsg:
		n.handleProof(from, m, out)
	case *QueryMsg:
		n.handleQuery(from, m, out)
	case *RespMsg:
		n.handleResp(from, m, out)
	case *FullBlockMsg:
		n.handleFullBlock(from, m, out)
	case *CheckpointMsg:
		n.handleCheckpoint(from, m, out)
	case *CheckpointProofMsg:
		n.handleCheckpointProof(from, m, out)
	case *TimeoutMsg:
		n.handleTimeout(from, m, out)
	case *ViewChangeMsg:
		n.handleViewChange(from, m, out)
	case *NewViewMsg:
		n.handleNewView(from, m, out)
	case *StateReqMsg:
		n.handleStateReq(from, m, out)
	case *StateRespMsg:
		n.handleStateResp(from, m, out)
	}
}

// outbound wraps the transport's sink with the node's Byzantine output
// hooks. The honest path returns out unchanged — no decoration, no
// allocation (asserted by TestHonestOutboundPathNoAlloc); the old
// slice-based filterOut rebuilt the envelope list even when no hook was
// active.
func (n *Node) outbound(out transport.Sink) transport.Sink {
	if n.silent {
		return transport.Discard
	}
	if n.selectiveTargets == nil {
		return out
	}
	n.selective.down = out
	return &n.selective
}

// releaseOutbound drops the decorator's reference to the transport's sink
// when the event handler returns — the Sink contract forbids retaining it
// past the call.
func (n *Node) releaseOutbound() { n.selective.down = nil }

// selectiveSink is the Byzantine output hook as a Sink decorator. A
// selective attacker sends its datablocks only to its chosen targets
// (broadcasts are rewritten to unicasts in sorted target order so
// simulation runs stay deterministic) and ignores retrieval queries from
// everyone else (it "sends its packages to a small subset of replicas and
// ignores others", §IV-A2).
type selectiveSink struct {
	node *Node
	down transport.Sink
}

// Send implements transport.Sink.
func (s *selectiveSink) Send(env transport.Envelope) {
	n := s.node
	switch env.Msg.(type) {
	case *DatablockMsg:
		if env.Broadcast {
			for _, t := range n.selectiveOrder {
				if t != n.cfg.ID {
					// Preserve the envelope's lane override across the
					// broadcast-to-unicast rewrite.
					s.down.Send(transport.Envelope{To: t, Msg: env.Msg, Lane: env.Lane})
				}
			}
			return
		}
		if _, ok := n.selectiveTargets[env.To]; !ok {
			return
		}
	case *RespMsg, *FullBlockMsg:
		if !env.Broadcast {
			if _, ok := n.selectiveTargets[env.To]; !ok {
				return // ignore retrieval from non-targets
			}
		}
	}
	s.down.Send(env)
}

// Broadcast implements transport.Sink.
func (s *selectiveSink) Broadcast(msg transport.Message) {
	s.Send(transport.Broadcast(msg))
}
