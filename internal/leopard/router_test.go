package leopard_test

import (
	"testing"
	"time"

	"leopard/internal/crypto"
	"leopard/internal/leopard"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// router delivers envelopes among nodes synchronously in FIFO order, with
// no bandwidth model. It gives protocol-logic tests precise control over
// time and message schedules (drop/reorder hooks) without simnet.
type router struct {
	t     *testing.T
	nodes []*leopard.Node
	now   time.Duration
	// drop, when set, suppresses matching deliveries.
	drop func(from, to types.ReplicaID, msg transport.Message) bool

	queue []routedMsg
}

type routedMsg struct {
	from, to types.ReplicaID
	msg      transport.Message
}

// newRouter builds n Leopard nodes with the given config mutator.
func newRouter(t *testing.T, n int, mutate func(*leopard.Config)) *router {
	t.Helper()
	q, err := types.NewQuorumParams(n)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := crypto.NewEd25519Suite(n, []byte("router-seed"))
	if err != nil {
		t.Fatal(err)
	}
	r := &router{t: t}
	for i := 0; i < n; i++ {
		cfg := leopard.Config{
			ID:            types.ReplicaID(i),
			Quorum:        q,
			Suite:         suite,
			DatablockSize: 10,
			BFTBlockSize:  2,
			BatchTimeout:  5 * time.Millisecond,
			// Long VC timeout by default so logic tests control it.
			ViewChangeTimeout: time.Hour,
			RetrievalTimeout:  10 * time.Millisecond,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		node, err := leopard.NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.nodes = append(r.nodes, node)
	}
	for _, node := range r.nodes {
		r.enqueue(node.ID(), start(node, r.now))
	}
	r.flush()
	return r
}

// start drives Start and returns the pushed envelopes.
func start(node *leopard.Node, now time.Duration) []transport.Envelope {
	var sink transport.SliceSink
	node.Start(now, &sink)
	return sink.Envelopes
}

// deliver drives one message into node and returns the pushed envelopes —
// the SliceSink bridge from the push-based Sink API back to the slices
// these logic tests assert on.
func deliver(node *leopard.Node, now time.Duration, from types.ReplicaID, msg transport.Message) []transport.Envelope {
	var sink transport.SliceSink
	node.Deliver(now, from, msg, &sink)
	return sink.Envelopes
}

// tick drives Tick and returns the pushed envelopes.
func tick(node *leopard.Node, now time.Duration) []transport.Envelope {
	var sink transport.SliceSink
	node.Tick(now, &sink)
	return sink.Envelopes
}

func (r *router) enqueue(from types.ReplicaID, outs []transport.Envelope) {
	for _, env := range outs {
		if env.Msg == nil {
			continue
		}
		if env.Broadcast {
			for i := range r.nodes {
				to := types.ReplicaID(i)
				if to != from {
					r.queue = append(r.queue, routedMsg{from: from, to: to, msg: env.Msg})
				}
			}
			continue
		}
		r.queue = append(r.queue, routedMsg{from: from, to: env.To, msg: env.Msg})
	}
}

// flush delivers queued messages (and any they generate) to exhaustion.
func (r *router) flush() {
	for len(r.queue) > 0 {
		m := r.queue[0]
		r.queue = r.queue[1:]
		if int(m.to) >= len(r.nodes) {
			continue
		}
		if r.drop != nil && r.drop(m.from, m.to, m.msg) {
			continue
		}
		outs := deliver(r.nodes[m.to], r.now, m.from, m.msg)
		r.enqueue(m.to, outs)
	}
}

// advance moves time forward in tick-sized steps, ticking every node and
// flushing after each step.
func (r *router) advance(d, step time.Duration) {
	deadline := r.now + d
	for r.now < deadline {
		r.now += step
		for _, node := range r.nodes {
			r.enqueue(node.ID(), tick(node, r.now))
		}
		r.flush()
	}
}

// submit feeds count requests to the given node's mempool.
func (r *router) submit(to types.ReplicaID, count int, firstSeq uint64) {
	for i := 0; i < count; i++ {
		req := types.Request{ClientID: uint64(to) + 1, Seq: firstSeq + uint64(i), Payload: make([]byte, 32)}
		if !r.nodes[to].SubmitRequest(r.now, req) {
			r.t.Fatalf("request %d rejected at %d", i, to)
		}
	}
}
