package leopard_test

import (
	"testing"
	"time"

	"leopard/internal/crypto"
	"leopard/internal/leopard"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// TestForgedProofRejected: a confirmation proof that does not verify must
// not confirm a block.
func TestForgedProofRejected(t *testing.T) {
	r := newRouter(t, 4, nil)
	r.submit(2, 10, 0)
	// Intercept the leader's round-2 proof and corrupt it before delivery
	// to replica 0; also suppress the genuine copy.
	r.drop = func(from, to types.ReplicaID, msg transport.Message) bool {
		p, ok := msg.(*leopard.ProofMsg)
		if !ok || p.Round != 2 || to != 0 {
			return false
		}
		bad := *p
		bad.Proof = crypto.Proof{Sig: append([]byte(nil), p.Proof.Sig...)}
		if len(bad.Proof.Sig) > 0 {
			bad.Proof.Sig[0] ^= 0xff
		}
		deliver(r.nodes[0], r.now, from, &bad)
		return true
	}
	r.advance(100*time.Millisecond, 5*time.Millisecond)
	if got := r.nodes[0].Stats().ConfirmedBlocks; got != 0 {
		t.Fatalf("replica 0 confirmed %d blocks from forged proofs", got)
	}
	// The rest of the cluster is unaffected.
	if got := r.nodes[2].Stats().ConfirmedRequests; got < 10 {
		t.Fatalf("replica 2 confirmed only %d", got)
	}
}

// TestForgedTimeoutSharesCannotForceViewChange: f+1 timeout messages with
// invalid shares must not drag honest replicas out of the view.
func TestForgedTimeoutSharesCannotForceViewChange(t *testing.T) {
	r := newRouter(t, 4, nil)
	for sender := types.ReplicaID(2); sender <= 3; sender++ {
		forged := &leopard.TimeoutMsg{
			View:  1,
			Share: crypto.Share{Signer: sender, Sig: make([]byte, 64)},
		}
		deliver(r.nodes[0], r.now, sender, forged)
	}
	r.advance(100*time.Millisecond, 5*time.Millisecond)
	if r.nodes[0].View() != 1 || r.nodes[0].InViewChange() {
		t.Fatal("forged timeout shares moved replica 0 out of view 1")
	}
}

// TestNewViewFromWrongLeaderIgnored: only the round-robin leader of the
// target view may announce it.
func TestNewViewFromWrongLeaderIgnored(t *testing.T) {
	r := newRouter(t, 4, nil)
	// Replica 3 (not the leader of view 2, which is replica 2) sends an
	// empty new-view for view 2.
	nv := &leopard.NewViewMsg{NewView: 2}
	deliver(r.nodes[0], r.now, 3, nv)
	if r.nodes[0].View() != 1 {
		t.Fatal("replica accepted a new-view from the wrong leader")
	}
	// Even from the right sender, a new-view without 2f+1 valid
	// view-change messages must be rejected.
	deliver(r.nodes[0], r.now, 2, &leopard.NewViewMsg{NewView: 2})
	if r.nodes[0].View() != 1 {
		t.Fatal("replica accepted a new-view without quorum evidence")
	}
}

// TestQueryServedOncePerRequester: repeated queries for the same digest
// from the same replica are answered at most once per retry period
// (anti-amplification), but a retry after the requester's re-query cadence
// is served again, so a response dropped by a saturated transport is not a
// permanent loss.
func TestQueryServedOncePerRequester(t *testing.T) {
	r := newRouter(t, 4, nil) // RetrievalTimeout = 10ms (router default)
	db := &types.Datablock{
		Ref:      types.DatablockRef{Generator: 2, Counter: 1},
		Requests: []types.Request{{ClientID: 1, Seq: 1, Payload: []byte("q")}},
	}
	digest := crypto.HashDatablock(db)
	deliver(r.nodes[0], r.now, 2, &leopard.DatablockMsg{Block: db, Digest: digest})

	countResponses := func() int {
		count := 0
		for i := 0; i < 5; i++ {
			outs := deliver(r.nodes[0], r.now, 3, &leopard.QueryMsg{Digests: []types.Hash{digest}})
			for _, env := range outs {
				if _, ok := env.Msg.(*leopard.RespMsg); ok {
					count++
				}
			}
		}
		return count
	}
	if count := countResponses(); count != 1 {
		t.Fatalf("served %d responses to repeated queries, want 1", count)
	}
	// A burst inside the cooldown (6×RetrievalTimeout = 60ms) stays
	// suppressed…
	r.now += 10 * time.Millisecond
	if count := countResponses(); count != 0 {
		t.Fatalf("served %d responses inside the cooldown, want 0", count)
	}
	// …but a retry at the protocol's re-query cadence (8×RetrievalTimeout)
	// is answered exactly once more.
	r.now += 80 * time.Millisecond
	if count := countResponses(); count != 1 {
		t.Fatalf("served %d responses after the cooldown, want 1", count)
	}
}

// TestQueryForUnknownDigestIgnored: queries for datablocks we do not hold
// produce no response.
func TestQueryForUnknownDigestIgnored(t *testing.T) {
	r := newRouter(t, 4, nil)
	outs := deliver(r.nodes[0], r.now, 3, &leopard.QueryMsg{Digests: []types.Hash{{0xde, 0xad}}})
	if len(outs) != 0 {
		t.Fatalf("produced %d envelopes for an unknown digest", len(outs))
	}
}

// TestVoteFromImpersonatedSignerRejected: the leader must reject a vote
// whose share claims a different signer than the channel it arrived on.
func TestVoteFromImpersonatedSignerRejected(t *testing.T) {
	const n = 4
	r := newRouter(t, n, nil)
	r.submit(2, 10, 0)
	// Stop round-1 votes from replica 3 and replay them as if replica 0
	// had also cast them (double-counting attack): the leader must not
	// count the same share under two identities.
	r.drop = func(from, to types.ReplicaID, msg transport.Message) bool {
		v, ok := msg.(*leopard.VoteMsg)
		if !ok || v.Round != 1 || from != 3 {
			return false
		}
		// Deliver the original, then a replay claiming to be from 0.
		deliver(r.nodes[to], r.now, 3, v)
		deliver(r.nodes[to], r.now, 0, v)
		return true
	}
	r.advance(100*time.Millisecond, 5*time.Millisecond)
	// Progress continues (the genuine quorum exists), and safety tests
	// elsewhere ensure no double-counting; here we just require liveness
	// wasn't broken by the replay.
	if got := r.nodes[1].Stats().ConfirmedBlocks; got == 0 {
		t.Fatal("no blocks confirmed under vote-replay attack")
	}
}

// TestCheckpointProofForgeryRejected: an invalid checkpoint certificate
// must not advance the watermark.
func TestCheckpointProofForgeryRejected(t *testing.T) {
	r := newRouter(t, 4, nil)
	forged := &leopard.CheckpointProofMsg{
		Seq:       50,
		StateHash: types.Hash{1},
		Proof:     crypto.Proof{Sig: make([]byte, 300)},
	}
	deliver(r.nodes[0], r.now, 3, forged)
	r.submit(2, 10, 0)
	r.advance(100*time.Millisecond, 5*time.Millisecond)
	// Had the forged checkpoint (seq 50) been accepted, the watermark
	// would exclude new proposals at seq 1.. and nothing would confirm.
	if got := r.nodes[0].Stats().ConfirmedRequests; got < 10 {
		t.Fatalf("forged checkpoint disrupted progress: confirmed %d", got)
	}
}

// TestDeterministicRuns: two identical router schedules produce identical
// protocol outcomes.
func TestDeterministicRuns(t *testing.T) {
	run := func() (types.SeqNum, int64) {
		r := newRouter(t, 4, nil)
		r.submit(2, 30, 0)
		r.submit(3, 30, 0)
		r.advance(150*time.Millisecond, 5*time.Millisecond)
		return r.nodes[0].ExecutedTo(), r.nodes[0].Stats().ConfirmedRequests
	}
	e1, c1 := run()
	e2, c2 := run()
	if e1 != e2 || c1 != c2 {
		t.Fatalf("non-deterministic runs: (%d,%d) vs (%d,%d)", e1, c1, e2, c2)
	}
}
