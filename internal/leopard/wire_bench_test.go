package leopard

import (
	"bytes"
	"testing"

	"leopard/internal/crypto"
	"leopard/internal/merkle"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// benchDecode measures both decode modes over one encoded frame, reporting
// MB/s of frame bytes and allocs/op. The borrow/copy delta is the cost of
// the per-field copies the zero-copy path eliminates.
func benchDecode(b *testing.B, msg transport.Message) {
	buf, err := EncodeMessage(msg)
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name   string
		decode func([]byte) (transport.Message, error)
	}{
		{"borrow", DecodeMessage},
		{"copy", DecodeMessageCopying},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			b.SetBytes(int64(len(buf)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mode.decode(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecodeVote(b *testing.B) {
	benchDecode(b, &VoteMsg{
		Block:  types.BlockID{View: 3, Seq: 1000},
		Round:  1,
		Digest: types.Hash{1},
		Share:  crypto.Share{Signer: 2, Sig: bytes.Repeat([]byte{0xee}, 64)},
	})
}

func BenchmarkDecodeResp(b *testing.B) {
	steps := make([]merkle.ProofStep, 6) // 64-chunk tree
	benchDecode(b, &RespMsg{
		Digest:  types.Hash{1},
		Root:    types.Hash{2},
		Chunk:   bytes.Repeat([]byte{0xc1}, 32<<10), // 1 MiB block over k=32
		Index:   7,
		DataLen: 1 << 20,
		Proof:   merkle.Proof{Index: 7, Steps: steps},
	})
}

func BenchmarkDecodeDatablock(b *testing.B) {
	db := &types.Datablock{Ref: types.DatablockRef{Generator: 1, Counter: 9}}
	for i := 0; i < 256; i++ {
		db.Requests = append(db.Requests, types.Request{
			ClientID: uint64(i),
			Seq:      uint64(i),
			Payload:  bytes.Repeat([]byte{byte(i)}, 512),
		})
	}
	benchDecode(b, &DatablockMsg{Block: db})
}
