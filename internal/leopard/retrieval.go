package leopard

import (
	"sort"
	"time"

	"leopard/internal/codec"
	"leopard/internal/crypto"
	"leopard/internal/erasure"
	"leopard/internal/merkle"
	"leopard/internal/obs"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// noteMissing registers a datablock digest as missing and starts its
// retrieval timer (Alg. 3, Query step).
func (n *Node) noteMissing(h types.Hash, waiter types.SeqNum) {
	r := n.missing[h]
	if r == nil {
		r = &retrievalState{
			firstMissing: n.now,
			chunks:       make(map[types.Hash]map[int][]byte),
			dataLen:      make(map[types.Hash]int),
			waiters:      make(map[types.SeqNum]struct{}),
		}
		n.missing[h] = r
	}
	r.waiters[waiter] = struct{}{}
}

// checkRetrievalTimers multicasts a batched Query for every missing
// datablock whose timer expired; stale queries are re-sent.
func (n *Node) checkRetrievalTimers(out transport.Sink) {
	var due []types.Hash
	for h, r := range n.missing {
		fresh := !r.queried && n.now-r.firstMissing >= n.cfg.RetrievalTimeout
		retry := r.queried && n.now-r.queriedAt >= 8*n.cfg.RetrievalTimeout
		if fresh || retry {
			due = append(due, h)
		}
	}
	if len(due) == 0 {
		return
	}
	sort.Slice(due, func(i, j int) bool {
		for b := 0; b < len(due[i]); b++ {
			if due[i][b] != due[j][b] {
				return due[i][b] < due[j][b]
			}
		}
		return false
	})
	for _, h := range due {
		r := n.missing[h]
		if !r.queried {
			n.trace(obs.EvRetrievalStart, traceID(h), 0)
		}
		r.queried = true
		r.queriedAt = n.now
	}
	out.Broadcast(&QueryMsg{Digests: due})
}

// serveCooldown is how long a (digest, requester) pair is refused after
// being served — the retrieval anti-amplification bound.
//
// Invariant: serveCooldown must stay strictly below the re-query cadence
// (8×RetrievalTimeout, checkRetrievalTimers), so that by the time an
// honest requester legitimately re-queries, its previous serve has aged
// out and the retry is answered. The served-map sweep in advanceWatermark
// uses the same window to expire entries, so the invariant also bounds
// that map's size.
//
// Derivation: under the drop-on-overflow transport the cooldown was
// 4×RetrievalTimeout — deliberately well under the cadence, because a
// RespMsg lost to a full bulk queue was a routine event and the requester
// might effectively need a fast second serve. Under credit-based flow
// control the bulk lane no longer drops on overflow: a response parks
// until the requester grants credit, and is lost only to the rare
// park-budget eviction of a stalled peer or a connection reset. With
// response loss exceptional rather than routine, the cooldown widens to
// 6×RetrievalTimeout — cutting the amplification a Byzantine querier can
// extract by another third — while keeping the strict margin below 8× so
// a retry after an eviction is always served.
func (n *Node) serveCooldown() time.Duration { return 6 * n.cfg.RetrievalTimeout }

// rsCodec returns the (f+1, n) Reed–Solomon codec shared by retrieval. The
// GF(2^8) code supports at most 256 chunks, so for n > 256 the retrieval
// committee is the first 256 replicas (same 256-shard ceiling as the
// Reed–Solomon library the paper's implementation used); the paper's
// retrieval experiments run at n <= 128.
//
// The codec is built once and cached on the node: its multiplication
// tables and decode-matrix cache are only effective when they persist
// across datablocks.
func (n *Node) rsCodec() (*erasure.Codec, error) {
	if n.rs != nil {
		return n.rs, nil
	}
	shards := n.q.N
	if shards > 256 {
		shards = 256
	}
	rs, err := erasure.NewCodecWithOptions(n.q.Small(), shards, n.cfg.Erasure)
	if err != nil {
		return nil, err
	}
	n.rs = rs
	return rs, nil
}

// handleQuery serves erasure chunks for datablocks this replica holds
// (Alg. 3, Response step). Each (digest, requester) pair is served at most
// once per serveCooldown, which bounds the amplification a Byzantine
// querier can cause to one chunk per period while still letting an honest
// requester recover a response that a saturated transport dropped from its
// bounded bulk queue.
func (n *Node) handleQuery(from types.ReplicaID, m *QueryMsg, out transport.Sink) {
	for _, digest := range m.Digests {
		key := servedKey{digest: digest, requester: from}
		if last, done := n.served[key]; done && n.now-last < n.serveCooldown() {
			continue
		}
		db, ok := n.dbPool.Get(digest)
		if !ok {
			continue
		}
		n.served[key] = n.now
		if n.cfg.LeaderRetrieval {
			// Ablation A1: only the leader answers, with the full block.
			if n.isLeader() {
				out.Send(transport.Unicast(from, &FullBlockMsg{Digest: digest, Block: db}))
			}
			continue
		}
		resp, err := n.buildResponse(digest, db)
		if err != nil {
			continue
		}
		out.Send(transport.Unicast(from, resp))
	}
}

// buildResponse erasure-codes the datablock, builds the Merkle tree over
// the chunks, and returns this replica's chunk with its inclusion proof.
// The response is independent of the requester (a replica always serves
// the chunk at its own index), so it is built once per digest and cached
// until the datablock itself is garbage-collected; without this, a
// broadcast Query from n-1 peers would trigger n-1 identical encode +
// Merkle passes over the same block.
func (n *Node) buildResponse(digest types.Hash, db *types.Datablock) (*RespMsg, error) {
	if resp, ok := n.respCache[digest]; ok {
		return resp, nil
	}
	rs, err := n.rsCodec()
	if err != nil {
		return nil, err
	}
	// The marshal buffer is pooled: Encode copies the systematic bytes
	// into its own shards, so the buffer can be released right after.
	w := codec.GetWriter()
	codec.MarshalDatablockTo(w, db)
	data := w.Buf
	chunks, err := rs.Encode(data)
	dataLen := len(data)
	codec.PutWriter(w)
	if err != nil {
		return nil, err
	}
	leaves := make([][]byte, len(chunks))
	for i, c := range chunks {
		leaves[i] = c.Data
	}
	tree, err := merkle.New(leaves)
	if err != nil {
		return nil, err
	}
	idx := int(n.cfg.ID)
	proof, err := tree.Prove(idx)
	if err != nil {
		return nil, err
	}
	// Copy the served chunk out of Encode's shared backing array: all n
	// chunks alias one n×size allocation, and a receiver retaining the
	// chunk (in-process simulation delivers by reference) would otherwise
	// pin the whole thing.
	resp := &RespMsg{
		Digest:  digest,
		Root:    tree.Root(),
		Chunk:   append([]byte(nil), chunks[idx].Data...),
		Index:   idx,
		Proof:   proof,
		DataLen: dataLen,
	}
	n.respCache[digest] = resp
	return resp, nil
}

// handleResp collects chunks; once f+1 chunks agree under one Merkle root,
// the datablock is decoded, digest-checked and admitted (Alg. 3, lines
// 22-28).
func (n *Node) handleResp(from types.ReplicaID, m *RespMsg, out transport.Sink) {
	r := n.missing[m.Digest]
	if r == nil {
		return
	}
	if m.Index != int(from) {
		return // each replica serves the chunk at its own index
	}
	if err := merkle.Verify(m.Root, m.Proof, m.Chunk); err != nil || m.Proof.Index != m.Index {
		return
	}
	byRoot := r.chunks[m.Root]
	if byRoot == nil {
		byRoot = make(map[int][]byte)
		r.chunks[m.Root] = byRoot
		r.dataLen[m.Root] = m.DataLen
	}
	if r.dataLen[m.Root] != m.DataLen {
		return // inconsistent responders under this root; ignore
	}
	// m.Chunk is retained past this handler. Under zero-copy decode it
	// sub-slices the response frame, which is almost entirely chunk bytes,
	// so keeping the frame alive until the datablock decodes is the
	// intended ownership transfer — no copy needed.
	//lint:retains-frame the chunk IS the frame; holding it until the datablock decodes is the zero-copy retrieval path's whole point
	byRoot[m.Index] = m.Chunk
	if len(byRoot) < n.q.Small() {
		return
	}
	db, ok := n.decodeRoot(m.Digest, byRoot, r.dataLen[m.Root])
	if !ok {
		// The root was bogus (only possible with >= f+1 colluding faulty
		// responders under an invalid root, or a corrupted chunk set);
		// discard it and keep waiting for an honest root.
		delete(r.chunks, m.Root)
		delete(r.dataLen, m.Root)
		return
	}
	n.stats.Retrievals++
	n.trace(obs.EvRetrievalDone, traceID(m.Digest), 1)
	n.acceptDatablock(m.Digest, db, db.Ref.Generator, out)
}

// decodeRoot attempts to reconstruct and digest-check a datablock from f+1
// chunks collected under one root.
func (n *Node) decodeRoot(digest types.Hash, byRoot map[int][]byte, dataLen int) (*types.Datablock, bool) {
	rs, err := n.rsCodec()
	if err != nil {
		return nil, false
	}
	// No need to order the chunks: Decode selects and canonically sorts
	// them itself (the decode-matrix cache keys on the sorted index set).
	chunks := make([]erasure.Chunk, 0, len(byRoot))
	for idx, data := range byRoot {
		chunks = append(chunks, erasure.Chunk{Index: idx, Data: data})
	}
	data, err := rs.Decode(chunks, dataLen)
	if err != nil {
		return nil, false
	}
	// Decode returns a fresh buffer used nowhere else, so the datablock can
	// borrow its request payloads from it (the block keeps data alive).
	db, err := codec.UnmarshalDatablockBorrowed(data)
	if err != nil {
		return nil, false
	}
	if crypto.HashDatablock(db) != digest {
		return nil, false
	}
	return db, true
}

// handleFullBlock processes the ablation-A1 leader response.
func (n *Node) handleFullBlock(from types.ReplicaID, m *FullBlockMsg, out transport.Sink) {
	if n.missing[m.Digest] == nil || m.Block == nil {
		return
	}
	if crypto.HashDatablock(m.Block) != m.Digest {
		return
	}
	n.stats.Retrievals++
	n.trace(obs.EvRetrievalDone, traceID(m.Digest), 2)
	n.acceptDatablock(m.Digest, m.Block, m.Block.Ref.Generator, out)
}

// resolveMissing is called when a previously missing datablock arrives by
// any path: it unblocks first-round votes and execution.
func (n *Node) resolveMissing(h types.Hash, out transport.Sink) {
	r := n.missing[h]
	if r == nil {
		return
	}
	delete(n.missing, h)
	waiters := make([]types.SeqNum, 0, len(r.waiters))
	for sn := range r.waiters {
		waiters = append(waiters, sn)
	}
	sort.Slice(waiters, func(i, j int) bool { return waiters[i] < waiters[j] })
	for _, sn := range waiters {
		inst := n.instances[sn]
		if inst == nil || inst.block == nil {
			continue
		}
		if inst.missing != nil {
			delete(inst.missing, h)
		}
		if len(inst.missing) == 0 && !inst.voted1 && !n.inViewChange {
			n.castVote1(inst, out)
		}
	}
	n.tryExecute(out)
}
