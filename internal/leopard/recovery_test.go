package leopard_test

import (
	"testing"
	"time"

	"leopard/internal/crypto"
	"leopard/internal/leopard"
	"leopard/internal/storage"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// storedRouter builds a router whose every node persists to its own MemLog,
// returning the stores for crash-restart tests.
func storedRouter(t *testing.T, n int, mutate func(*leopard.Config)) (*router, []storage.Store) {
	t.Helper()
	stores := make([]storage.Store, n)
	for i := range stores {
		stores[i] = storage.NewMemLog()
	}
	r := newRouter(t, n, func(cfg *leopard.Config) {
		cfg.MaxParallel = 8
		cfg.CheckpointEvery = 4
		cfg.Store = stores[cfg.ID]
		if mutate != nil {
			mutate(cfg)
		}
	})
	return r, stores
}

// rebuild constructs a fresh node for slot id over the given store — the
// picture after a process restart — and swaps it into the router.
func rebuild(t *testing.T, r *router, id types.ReplicaID, st storage.Store, mutate func(*leopard.Config)) *leopard.Node {
	t.Helper()
	n := len(r.nodes)
	q, err := types.NewQuorumParams(n)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := crypto.NewEd25519Suite(n, []byte("router-seed"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := leopard.Config{
		ID:                id,
		Quorum:            q,
		Suite:             suite,
		DatablockSize:     10,
		BFTBlockSize:      2,
		BatchTimeout:      5 * time.Millisecond,
		ViewChangeTimeout: time.Hour,
		RetrievalTimeout:  10 * time.Millisecond,
		MaxParallel:       8,
		CheckpointEvery:   4,
		Store:             st,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	node, err := leopard.NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.nodes[id] = node
	r.enqueue(id, start(node, r.now))
	return node
}

// TestRecoverReplaysWAL: a replica rebuilt over its surviving store must
// come back at the same executed height and execution chain hash, purely
// from local replay (checkpoint anchor + WAL tail), before any message
// reaches it.
func TestRecoverReplaysWAL(t *testing.T) {
	r, stores := storedRouter(t, 4, nil)
	r.submit(0, 60, 0)
	r.submit(2, 60, 1000)
	r.advance(100*time.Millisecond, 5*time.Millisecond)

	old := r.nodes[3]
	if old.ExecutedTo() == 0 {
		t.Fatal("no execution happened; test cannot exercise replay")
	}
	wantTo, wantState := old.ExecutedTo(), old.ExecutionState()
	if wantCp := old.Stats().LastCheckpointSeq; wantCp == 0 {
		t.Fatal("no stable checkpoint formed; widen the run")
	}

	// Rebuild over the same store, but do NOT deliver anything: recovery
	// must be purely local.
	var executed []types.SeqNum
	q, _ := types.NewQuorumParams(4)
	suite, err := crypto.NewEd25519Suite(4, []byte("router-seed"))
	if err != nil {
		t.Fatal(err)
	}
	node, err := leopard.NewNode(leopard.Config{
		ID: 3, Quorum: q, Suite: suite,
		DatablockSize: 10, BFTBlockSize: 2,
		BatchTimeout: 5 * time.Millisecond, ViewChangeTimeout: time.Hour,
		RetrievalTimeout: 10 * time.Millisecond,
		MaxParallel:      8, CheckpointEvery: 4,
		Store: stores[3],
	})
	if err != nil {
		t.Fatal(err)
	}
	node.SetExecutor(func(sn types.SeqNum, reqs []types.Request) { executed = append(executed, sn) })
	node.Start(r.now, transport.Discard)

	if node.ExecutedTo() != wantTo {
		t.Fatalf("recovered to %d, want %d", node.ExecutedTo(), wantTo)
	}
	if node.ExecutionState() != wantState {
		t.Fatalf("execution chain hash diverged after recovery")
	}
	st := node.Stats()
	if st.BlocksReplayed == 0 && st.LastCheckpointSeq != wantTo {
		t.Fatalf("nothing replayed and anchor below height: %+v", st)
	}
	// Replay re-runs the executor for the tail above the anchor, in log
	// order (the callback fires once per datablock, so seqs repeat).
	for i := 1; i < len(executed); i++ {
		if executed[i] != executed[i-1] && executed[i] != executed[i-1]+1 {
			t.Fatalf("replay executed out of order: %v", executed)
		}
	}
}

// TestRecoverReanchorsStaleWALTail: a stable checkpoint can be durably
// saved ahead of the WAL tail (the watermark advances on a quorum proof
// while this replica's execution lags, then it crashes — or it crashes
// inside the group-commit window right after the save). Restart must
// re-anchor the log at the recovered frontier; without it every
// post-recovery Append fails non-contiguous and the replica silently
// never persists again.
func TestRecoverReanchorsStaleWALTail(t *testing.T) {
	st := storage.NewMemLog()
	for sn := types.SeqNum(1); sn <= 5; sn++ {
		if err := st.Append(&storage.BlockRecord{Seq: sn, Block: &types.BFTblock{Seq: sn}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.SaveCheckpoint(storage.Checkpoint{Seq: 10, StateHash: types.Hash{7}, Proof: crypto.Proof{Sig: []byte("cp")}}); err != nil {
		t.Fatal(err)
	}

	q, err := types.NewQuorumParams(4)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := crypto.NewEd25519Suite(4, []byte("router-seed"))
	if err != nil {
		t.Fatal(err)
	}
	node, err := leopard.NewNode(leopard.Config{
		ID: 3, Quorum: q, Suite: suite,
		DatablockSize: 10, BFTBlockSize: 2,
		BatchTimeout: 5 * time.Millisecond, ViewChangeTimeout: time.Hour,
		RetrievalTimeout: 10 * time.Millisecond,
		MaxParallel:      8, CheckpointEvery: 4,
		Store: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	node.Start(0, transport.Discard)

	if node.ExecutedTo() != 10 {
		t.Fatalf("recovered to %d, want the anchor 10", node.ExecutedTo())
	}
	if _, last := st.Bounds(); last != 10 {
		t.Fatalf("WAL tail at %d after recovery, want re-anchored at 10", last)
	}
	if err := st.Append(&storage.BlockRecord{Seq: 11, Block: &types.BFTblock{Seq: 11}}); err != nil {
		t.Fatalf("append at the frontier after recovery: %v", err)
	}
}

// TestStateTransferCatchup: a replica that restarts far behind — its
// executed range garbage-collected cluster-wide — must reach the cluster's
// height via the checkpoint anchor plus paged block transfer, casting no
// agreement votes for the recovered range.
func TestStateTransferCatchup(t *testing.T) {
	r, stores := storedRouter(t, 4, nil)

	// Cut replica 3 off and drive the rest well past several checkpoints.
	// 460 requests = 46 datablocks = 23 BFTblocks: the final height sits
	// above the last checkpoint boundary (20), so catch-up must combine the
	// anchor jump with block transfer for the range above the watermark.
	r.drop = func(from, to types.ReplicaID, msg transport.Message) bool {
		return from == 3 || to == 3
	}
	r.submit(0, 230, 0)
	r.submit(2, 230, 1000)
	r.advance(200*time.Millisecond, 5*time.Millisecond)
	cluster := r.nodes[0].ExecutedTo()
	if cluster < 8 {
		t.Fatalf("cluster only reached %d; widen the run", cluster)
	}
	if lw := r.nodes[0].Stats().LastCheckpointSeq; lw == 0 {
		t.Fatal("no stable checkpoint formed")
	}

	// Restart replica 3 over its (empty — it was isolated from the start)
	// store, reconnected. It must sync via state transfer.
	var votes int
	r.drop = func(from, to types.ReplicaID, msg transport.Message) bool {
		if from == 3 {
			if v, ok := msg.(*leopard.VoteMsg); ok && v.Block.Seq <= cluster {
				votes++
			}
		}
		return false
	}
	node := rebuild(t, r, 3, stores[3], nil)
	r.flush()
	r.advance(300*time.Millisecond, 5*time.Millisecond)

	if node.ExecutedTo() < cluster {
		t.Fatalf("restarted replica at %d, cluster at %d", node.ExecutedTo(), cluster)
	}
	st := node.Stats()
	if st.StateBlocksApplied == 0 {
		t.Fatalf("no blocks arrived via state transfer: %+v", st)
	}
	if votes != 0 {
		t.Fatalf("restarted replica cast %d votes for the transferred range", votes)
	}
	if node.ExecutionState() != r.nodes[0].ExecutionState() && node.ExecutedTo() == r.nodes[0].ExecutedTo() {
		t.Fatal("execution chain hash diverged from the cluster at equal height")
	}
}

// TestStateTransferServeCooldown: inside the cooldown window a requester
// is served again only when its height proves it consumed the previous
// page — anything else (repeats, partial or fabricated heights) is refused
// until the window lapses. That is the amplification bound of the serve
// path: per requester per window, at most one pass over the log.
func TestStateTransferServeCooldown(t *testing.T) {
	r, _ := storedRouter(t, 4, nil)
	r.submit(0, 60, 0)
	r.advance(100*time.Millisecond, 5*time.Millisecond)
	server := r.nodes[0]
	if server.ExecutedTo() == 0 {
		t.Fatal("no execution")
	}

	served := func(have types.SeqNum) *leopard.StateRespMsg {
		outs := deliver(server, r.now, 3, &leopard.StateReqMsg{Have: have})
		var resp *leopard.StateRespMsg
		for _, env := range outs {
			if m, ok := env.Msg.(*leopard.StateRespMsg); ok {
				if resp != nil {
					t.Fatal("more than one response to a single request")
				}
				resp = m
			}
		}
		return resp
	}
	first := served(0)
	if first == nil {
		t.Fatal("first request not served")
	}
	if len(first.Blocks) == 0 {
		t.Fatal("first response carried no blocks; widen the run")
	}
	pageEnd := first.Blocks[len(first.Blocks)-1].Seq
	if got := served(0); got != nil {
		t.Fatal("repeat inside cooldown was served")
	}
	if pageEnd > 1 {
		// A height below the served page's end is not proof of consumption:
		// a Byzantine requester sweeping Have must not mint fresh serves.
		if got := served(pageEnd - 1); got != nil {
			t.Fatal("partial height inside cooldown was served")
		}
	}
	// Consuming the page is what earns the next one immediately.
	if got := served(pageEnd); got == nil {
		t.Fatal("consumed-page height refused (progress must not throttle)")
	}
	// After the cooldown lapses the original height is served again.
	r.now += 7 * 10 * time.Millisecond // > serveCooldown = 6×RetrievalTimeout
	if got := served(0); got == nil {
		t.Fatal("post-cooldown repeat refused")
	}
}

// TestCheckpointMapsPruned is the regression test for unbounded leader
// checkpoint maps: shares for seqs beyond the watermark window are
// rejected outright, and watermark advance shrinks the tracked set.
func TestCheckpointMapsPruned(t *testing.T) {
	r, _ := storedRouter(t, 4, nil)
	leader := r.nodes[1] // view-1 leader
	suite, err := crypto.NewEd25519Suite(4, []byte("router-seed"))
	if err != nil {
		t.Fatal(err)
	}

	// A Byzantine replica signs checkpoint shares for absurd future seqs;
	// validly signed, but far outside the watermark window.
	forge := func(from types.ReplicaID, seq types.SeqNum) {
		digest := leopard.CheckpointDigest(seq, types.Hash{0xbb})
		share, err := suite.Sign(from, digest)
		if err != nil {
			t.Fatal(err)
		}
		deliver(leader, r.now, from, &leopard.CheckpointMsg{Seq: seq, StateHash: types.Hash{0xbb}, Share: share})
	}
	for seq := types.SeqNum(1000); seq < 1064; seq++ {
		forge(3, seq)
	}
	if got := leader.Stats().CheckpointSeqsTracked; got != 0 {
		t.Fatalf("far-future checkpoint shares tracked: %d entries", got)
	}

	// Legitimate progress: maps fill within the window and shrink as the
	// watermark advances past each stable checkpoint.
	r.submit(0, 200, 0)
	r.submit(2, 200, 1000)
	r.advance(200*time.Millisecond, 5*time.Millisecond)
	if leader.Stats().LastCheckpointSeq == 0 {
		t.Fatal("no checkpoint formed")
	}
	if got, window := leader.Stats().CheckpointSeqsTracked, 8/4+1; got > window {
		t.Fatalf("checkpoint maps hold %d seqs after GC, want <= %d (window/interval)", got, window)
	}
}
