package determinism_test

import (
	"testing"

	"leopard/internal/lint/determinism"
	"leopard/internal/lint/linttest"
)

func TestDeterminism(t *testing.T) {
	linttest.Run(t, "testdata", determinism.Analyzer)
}
