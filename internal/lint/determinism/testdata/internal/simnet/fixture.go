// Package simnet is the determinism fixture: nondeterminism sources inside
// a deterministically replayed package.
package simnet

import (
	"math/rand"
	"time"
)

var c1, c2 chan int

func wallClock() {
	_ = time.Now()               // want `call to time.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `call to time.Sleep reads the wall clock`
	_ = time.Since(time.Time{})  // want `call to time.Since reads the wall clock`
}

func globalRand() int {
	rand.Shuffle(4, func(i, j int) {}) // want `global rand.Shuffle draws from the process-wide random source`
	return rand.Intn(4)                // want `global rand.Intn draws from the process-wide random source`
}

func scheduler() {
	go wallClock() // want `go statement in deterministic package`
	select {       // want `select over multiple cases in deterministic package`
	case <-c1:
	case <-c2:
	}
}

// good shows the sanctioned forms: the event clock as a parameter, an
// explicitly seeded source, and a single-case select.
func good(now time.Duration) time.Duration {
	r := rand.New(rand.NewSource(7))
	_ = r.Intn(4)
	select {
	case <-c1:
	}
	return now + time.Millisecond
}

// exempted demonstrates the annotation escape hatch.
//
//lint:determinism-exempt fixture: wall-clock read outside the replayed path
func exempted() time.Time {
	return time.Now()
}
