// Package determinism forbids nondeterminism sources in the packages whose
// byte-identical replay the chaos/recover experiments depend on.
//
// The simulation stack (internal/simnet, internal/faultplan,
// internal/harness, internal/experiments), the protocol state machine
// (internal/leopard) and the trace/metrics layer they emit into
// (internal/obs) promise that two identically-seeded runs are
// byte-identical down to per-replica traffic counters — the property every
// chaos regression (TestChaosDeterministic, TestRecoverScenarioDeterministic)
// asserts and every fault schedule's reproducibility rests on. That promise
// dies the moment any of these packages reads the wall clock, draws from a
// process-global random source, or lets the Go scheduler order events. This
// analyzer rejects, in non-test files of those packages:
//
//   - time.Now, time.Since, time.Until, time.Sleep, time.After,
//     time.AfterFunc, time.Tick, time.NewTimer, time.NewTicker — simulated
//     components take the event clock as a parameter (`now time.Duration`);
//   - package-level math/rand and math/rand/v2 functions (rand.Intn,
//     rand.Shuffle, ...), which draw from the global, racily-shared source;
//     methods on an explicitly seeded *rand.Rand stay legal, as do the
//     constructors (rand.New, rand.NewSource, ...);
//   - go statements — deterministic execution is single-threaded by design;
//   - select statements with more than one case: which ready channel wins
//     is a scheduler decision.
//
// Exemption: annotate the line (or the enclosing function's doc comment)
// with `//lint:determinism-exempt <justification>`.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"leopard/internal/lint/analysis"
)

// Analyzer is the determinism invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock reads, global randomness, goroutines and channel races in deterministically replayed packages",
	Run:  run,
}

// scopedPrefixes are the import paths (and their subpackages) under the
// determinism contract.
var scopedPrefixes = []string{
	"leopard/internal/leopard",
	"leopard/internal/obs",
	"leopard/internal/simnet",
	"leopard/internal/faultplan",
	"leopard/internal/harness",
	"leopard/internal/experiments",
}

// forbiddenTimeFuncs are the wall-clock and scheduler-timer entry points of
// package time.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// allowedRandFuncs are the math/rand package-level constructors that build
// explicitly seeded sources — the sanctioned path to randomness.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func inScope(path string) bool {
	for _, p := range scopedPrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.ImportPath) {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, _ := decl.(*ast.FuncDecl)
			ast.Inspect(decl, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.CallExpr:
					checkCall(pass, node, fd)
				case *ast.GoStmt:
					report(pass, node.Pos(), fd,
						"go statement in deterministic package: execution must stay single-threaded so identically-seeded runs replay byte-identically")
				case *ast.SelectStmt:
					if len(node.Body.List) > 1 {
						report(pass, node.Pos(), fd,
							"select over multiple cases in deterministic package: which ready channel wins is a scheduler decision, not a replayable one")
					}
				}
				return true
			})
		}
	}
	return nil, nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, encl *ast.FuncDecl) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if forbiddenTimeFuncs[fn.Name()] {
			report(pass, call.Pos(), encl,
				"call to time.%s reads the wall clock or the runtime timer: deterministic packages must use the event clock (`now` parameter)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !allowedRandFuncs[fn.Name()] {
			report(pass, call.Pos(), encl,
				"global %s.%s draws from the process-wide random source: draw from an explicitly seeded *rand.Rand instead", fn.Pkg().Name(), fn.Name())
		}
	}
}

func report(pass *analysis.Pass, pos token.Pos, encl *ast.FuncDecl, format string, args ...any) {
	if pass.ExemptedAt(pos, "determinism-exempt", encl) {
		return
	}
	pass.Reportf(pos, format, args...)
}
