// Package exhaustivewire machine-checks exhaustiveness over the wire
// message kind enum: every kind must be encodable, decodable, classified
// for lane scheduling, and fuzz-seeded.
//
// When StateReq/StateResp were added (PR 5), four places had to change in
// lockstep by convention: the EncodeMessage switch, the decodeMessage
// switch, the message's Class method (which drives transport.LaneFor lane
// classification and the bandwidth accounting tables), and the
// FuzzDecodeMessage seed corpus (testMessages). Nothing checked they did.
// A future message kind that misses one of them fails silently: an
// undecodable kind, a lane-less class that always rides bulk, or a fuzz
// corpus that never exercises the new decoder.
//
// In leopard/internal/leopard this analyzer checks, for every package-level
// `kind*` wire constant:
//
//   - a message type named strings.TrimPrefix(kind, "kind")+"Msg" exists
//     (the naming convention every existing kind follows);
//   - the constant is used in EncodeMessage;
//   - the constant appears in a case clause of decodeMessage/DecodeMessage;
//   - the message type's Class method returns one of the named
//     transport.Class constants — the hook transport.LaneFor and the
//     bandwidth breakdown classify by;
//   - the message type is referenced in the fuzz seed corpus (the
//     testMessages function in the package's test files);
//   - no two kind constants share a value — a collision makes frames of
//     one kind decode as the other (kinds that collide are reported once
//     and skip the per-kind checks, which would only add noise).
//
// In leopard/internal/transport it checks that every Class constant has a
// case in (Class).String — so no class ever renders as "unknown" in a
// Table III breakdown — and that NumClasses equals the highest class value
// plus one, so the dense per-class accounting arrays cannot silently drop
// the newest class.
//
// There is no exemption annotation: a wire kind is either fully wired or a
// bug.
package exhaustivewire

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"leopard/internal/lint/analysis"
)

// Analyzer is the wire-kind exhaustiveness checker.
var Analyzer = &analysis.Analyzer{
	Name: "exhaustivewire",
	Doc:  "every wire kind must appear in EncodeMessage, decodeMessage, a Class mapping, and the fuzz seed corpus",
	Run:  run,
}

const (
	leopardPath   = "leopard/internal/leopard"
	transportPath = "leopard/internal/transport"
)

func run(pass *analysis.Pass) (any, error) {
	switch pass.ImportPath {
	case leopardPath:
		checkKinds(pass)
	case transportPath:
		checkClasses(pass)
	}
	return nil, nil
}

// --- leopard/internal/leopard: the kind enum ---

func checkKinds(pass *analysis.Pass) {
	kinds := kindConsts(pass)
	if len(kinds) == 0 {
		return
	}
	encodeUses := constsUsedIn(pass, findFunc(pass, "EncodeMessage"))
	decodeCases := constsInCaseClauses(pass, firstNonNil(findFunc(pass, "decodeMessage"), findFunc(pass, "DecodeMessage")))
	seedIdents, seedFound := identsInTestFunc(pass, "testMessages")

	// Kind values must be distinct: a collision makes frames of one kind
	// decode as the other. A colliding kind is broken at the root, so it is
	// reported once and skips the per-kind checks below.
	byValue := make(map[string]*types.Const)
	colliding := make(map[*types.Const]bool)
	for _, k := range kinds {
		v := k.Val().ExactString()
		if prev, ok := byValue[v]; ok {
			pass.Reportf(k.Pos(),
				"wire kind %s duplicates the value of %s (%s): frames of one kind decode as the other", k.Name(), prev.Name(), v)
			colliding[k] = true
			continue
		}
		byValue[v] = k
	}

	for _, k := range kinds {
		if colliding[k] {
			continue
		}
		typeName := strings.TrimPrefix(k.Name(), "kind") + "Msg"
		if pass.Pkg.Scope().Lookup(typeName) == nil {
			pass.Reportf(k.Pos(),
				"wire kind %s has no message type %s: every kind needs a message type following the kind<Name> / <Name>Msg convention", k.Name(), typeName)
			continue
		}
		if !encodeUses[k] {
			pass.Reportf(k.Pos(), "wire kind %s is not used in EncodeMessage: the kind cannot be emitted", k.Name())
		}
		if !decodeCases[k] {
			pass.Reportf(k.Pos(), "wire kind %s has no case in decodeMessage: frames of this kind are rejected as unknown", k.Name())
		}
		checkClassMethod(pass, k, typeName)
		if seedFound && !seedIdents[typeName] {
			pass.Reportf(k.Pos(),
				"message type %s is missing from the FuzzDecodeMessage seed corpus (testMessages): the fuzzer never starts from a valid %s frame", typeName, k.Name())
		}
	}
	if !seedFound {
		// Report once, at the first kind: the corpus function itself is gone.
		pass.Reportf(kinds[0].Pos(),
			"seed corpus function testMessages not found in package test files: FuzzDecodeMessage has no per-kind seeds to audit")
	}
}

// kindConsts returns the package-level wire-kind constants (name prefix
// "kind"), ordered by declaration position.
func kindConsts(pass *analysis.Pass) []*types.Const {
	var out []*types.Const
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for _, name := range vs.Names {
				if c, ok := pass.TypesInfo.Defs[name].(*types.Const); ok &&
					strings.HasPrefix(c.Name(), "kind") && c.Parent() == pass.Pkg.Scope() {
					out = append(out, c)
				}
			}
			return true
		})
	}
	return out
}

func findFunc(pass *analysis.Pass, name string) *ast.FuncDecl {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}

func firstNonNil(a, b *ast.FuncDecl) *ast.FuncDecl {
	if a != nil {
		return a
	}
	return b
}

// constsUsedIn returns the set of constants referenced anywhere in fd.
func constsUsedIn(pass *analysis.Pass, fd *ast.FuncDecl) map[*types.Const]bool {
	used := make(map[*types.Const]bool)
	if fd == nil {
		return used
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if c, ok := pass.TypesInfo.Uses[id].(*types.Const); ok {
				used[c] = true
			}
		}
		return true
	})
	return used
}

// constsInCaseClauses returns the constants appearing in case-clause
// expressions of switch statements inside fd.
func constsInCaseClauses(pass *analysis.Pass, fd *ast.FuncDecl) map[*types.Const]bool {
	used := make(map[*types.Const]bool)
	if fd == nil {
		return used
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, expr := range cc.List {
			ast.Inspect(expr, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if c, ok := pass.TypesInfo.Uses[id].(*types.Const); ok {
						used[c] = true
					}
				}
				return true
			})
		}
		return true
	})
	return used
}

// identsInTestFunc syntactically collects the identifier names used inside
// the named function in the package's test files.
func identsInTestFunc(pass *analysis.Pass, name string) (map[string]bool, bool) {
	for _, file := range pass.TestFiles {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != name {
				continue
			}
			idents := make(map[string]bool)
			ast.Inspect(fd, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					idents[id.Name] = true
				}
				return true
			})
			return idents, true
		}
	}
	return nil, false
}

// checkClassMethod verifies the message type's Class method returns a named
// transport.Class constant.
func checkClassMethod(pass *analysis.Pass, k *types.Const, typeName string) {
	fd := findMethod(pass, typeName, "Class")
	if fd == nil {
		pass.Reportf(k.Pos(),
			"message type %s has no Class method: transport.LaneFor cannot classify it for lane scheduling", typeName)
		return
	}
	if fd.Body == nil || len(fd.Body.List) != 1 {
		pass.Reportf(fd.Pos(), "%s.Class must be a single return of a named transport.Class constant", typeName)
		return
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		pass.Reportf(fd.Pos(), "%s.Class must be a single return of a named transport.Class constant", typeName)
		return
	}
	if !returnsClassConst(pass, ret.Results[0]) {
		pass.Reportf(ret.Pos(),
			"%s.Class does not return a named transport.Class constant: lane scheduling and bandwidth accounting key on the declared classes", typeName)
	}
}

func returnsClassConst(pass *analysis.Pass, expr ast.Expr) bool {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	c, ok := pass.TypesInfo.Uses[id].(*types.Const)
	if !ok {
		return false
	}
	return analysis.ImplementsIface(c.Type(), transportPath, "Class")
}

func findMethod(pass *analysis.Pass, typeName, method string) *ast.FuncDecl {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != method || len(fd.Recv.List) == 0 {
				continue
			}
			if recvTypeName(fd.Recv.List[0].Type) == typeName {
				return fd
			}
		}
	}
	return nil
}

func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	}
	return ""
}

// --- leopard/internal/transport: the Class enum ---

func checkClasses(pass *analysis.Pass) {
	var classes []*types.Const
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for _, name := range vs.Names {
				c, ok := pass.TypesInfo.Defs[name].(*types.Const)
				if ok && c.Parent() == pass.Pkg.Scope() &&
					analysis.ImplementsIface(c.Type(), transportPath, "Class") {
					classes = append(classes, c)
				}
			}
			return true
		})
	}
	if len(classes) == 0 {
		return
	}
	stringCases := constsInCaseClauses(pass, findMethod(pass, "Class", "String"))
	for _, c := range classes {
		if !stringCases[c] {
			pass.Reportf(c.Pos(),
				"class %s has no case in (Class).String: it renders as %q in every bandwidth breakdown", c.Name(), "unknown")
		}
	}
	checkNumClasses(pass, classes)
}

// checkNumClasses verifies that the NumClasses constant — the size of every
// dense per-class accounting array — tracks the class enum: it must equal
// the highest class value plus one.
func checkNumClasses(pass *analysis.Pass, classes []*types.Const) {
	var top *types.Const
	var topVal int64
	for _, c := range classes {
		if v, ok := constant.Int64Val(c.Val()); ok && (top == nil || v > topVal) {
			top, topVal = c, v
		}
	}
	if top == nil {
		return
	}
	nc, ok := pass.Pkg.Scope().Lookup("NumClasses").(*types.Const)
	if !ok {
		pass.Reportf(top.Pos(),
			"class enum has no NumClasses constant: dense per-class accounting arrays have nothing to size by")
		return
	}
	if v, ok := constant.Int64Val(nc.Val()); !ok || v != topVal+1 {
		pass.Reportf(nc.Pos(),
			"NumClasses is %s but the class enum tops out at %s (%d): per-class accounting arrays sized by NumClasses drop the newest class",
			nc.Val().ExactString(), top.Name(), topVal)
	}
}
