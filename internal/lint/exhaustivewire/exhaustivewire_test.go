package exhaustivewire_test

import (
	"testing"

	"leopard/internal/lint/exhaustivewire"
	"leopard/internal/lint/linttest"
)

func TestExhaustiveWire(t *testing.T) {
	linttest.Run(t, "testdata", exhaustivewire.Analyzer)
}
