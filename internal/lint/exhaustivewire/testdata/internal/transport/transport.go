// Package transport is a fixture stub mirroring the real
// leopard/internal/transport Class enum — with one class deliberately
// missing from String.
package transport

type Class uint8

const (
	ClassControl Class = iota
	ClassBulk
	ClassOrphaned // want `class ClassOrphaned has no case in \(Class\)\.String`
)

// NumClasses is deliberately stale: it stops one short of ClassOrphaned.
const NumClasses = int(ClassBulk) + 1 // want `NumClasses is 2 but the class enum tops out at ClassOrphaned \(2\)`

func (c Class) String() string {
	switch c {
	case ClassControl:
		return "control"
	case ClassBulk:
		return "bulk"
	}
	return "unknown"
}
