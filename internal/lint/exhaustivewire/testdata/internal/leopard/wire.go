// Package leopard is the exhaustivewire fixture: a wire-kind enum where
// each deliberately broken kind misses exactly one of the places a kind
// must appear.
package leopard

import "leopard/internal/transport"

const (
	kindPing   uint8 = iota + 1
	kindPong         // want `wire kind kindPong has no case in decodeMessage` `message type PongMsg is missing from the FuzzDecodeMessage seed corpus`
	kindOrphan       // want `wire kind kindOrphan has no message type OrphanMsg`
	kindCalc
	kindNoClass // want `message type NoClassMsg has no Class method`
	kindUnsent  // want `wire kind kindUnsent is not used in EncodeMessage`

	kindAlias uint8 = 1 // want `wire kind kindAlias duplicates the value of kindPing \(1\)`
)

type PingMsg struct{}

func (*PingMsg) Class() transport.Class { return transport.ClassControl }

type PongMsg struct{}

func (*PongMsg) Class() transport.Class { return transport.ClassBulk }

type CalcMsg struct{}

func (*CalcMsg) Class() transport.Class {
	return transport.Class(1) // want `CalcMsg\.Class does not return a named transport\.Class constant`
}

type NoClassMsg struct{}

type UnsentMsg struct{}

func (*UnsentMsg) Class() transport.Class { return transport.ClassControl }

func EncodeMessage(msg any) []byte {
	switch msg.(type) {
	case *PingMsg:
		return []byte{kindPing}
	case *PongMsg:
		return []byte{kindPong}
	case *CalcMsg:
		return []byte{kindCalc}
	case *NoClassMsg:
		return []byte{kindNoClass}
	}
	_ = kindOrphan
	return nil
}

func decodeMessage(buf []byte) any {
	switch buf[0] {
	case kindPing:
		return &PingMsg{}
	case kindCalc:
		return &CalcMsg{}
	case kindNoClass:
		return &NoClassMsg{}
	case kindUnsent:
		return &UnsentMsg{}
	case kindOrphan:
		return nil
	}
	return nil
}
