package leopard

// testMessages is the fixture seed corpus: PongMsg is deliberately missing.
func testMessages() []any {
	return []any{
		&PingMsg{},
		&CalcMsg{},
		&NoClassMsg{},
		&UnsentMsg{},
	}
}
