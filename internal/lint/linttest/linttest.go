// Package linttest runs a leopard-lint analyzer over a fixture module and
// checks its diagnostics against expectations embedded in the fixture
// source — the analysistest pattern, adapted to the offline loader.
//
// A fixture is a complete, compiling Go module rooted at the directory
// passed to Run (conventionally testdata/ next to the analyzer). Fixture
// modules are named `leopard` and mirror the real tree's import paths with
// minimal stubs (a transport.Sink, a codec.Reader), because the analyzers
// match contracts by package path and type name — the same fixture that
// exercises voteahead's Sink matching therefore proves the path/name
// matching itself. The go tool ignores testdata directories, so fixture
// modules never leak into the enclosing build.
//
// Expectations are comments of the form
//
//	n.voted1 = true // want `vote state "voted1" recorded`
//
// where each backquoted string is a regular expression that must match the
// message of exactly one diagnostic reported on that line. Diagnostics
// without a matching want, and wants without a matching diagnostic, fail
// the test.
package linttest

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"leopard/internal/lint/analysis"
	"leopard/internal/lint/loader"
)

type key struct {
	file string
	line int
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("`([^`]*)`")

// Run loads the fixture module rooted at dir, applies a to every package in
// it, and compares diagnostics against the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkgs, err := loader.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading fixture module %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture module %s matched no packages", dir)
	}

	wants := make(map[key][]*expectation)
	collectWants := func(fset *token.FileSet, files []*ast.File) {
		for _, f := range files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						k := key{pos.Filename, pos.Line}
						wants[k] = append(wants[k], &expectation{re: re})
					}
				}
			}
		}
	}

	for _, pkg := range pkgs {
		collectWants(pkg.Fset, pkg.Syntax)
		collectWants(pkg.Fset, pkg.TestSyntax)
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Syntax,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.TypesInfo,
			ImportPath: pkg.ImportPath,
			TestFiles:  pkg.TestSyntax,
		}
		pass.Report = func(d analysis.Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			for _, exp := range wants[key{pos.Filename, pos.Line}] {
				if !exp.matched && exp.re.MatchString(d.Message) {
					exp.matched = true
					return
				}
			}
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, pkg.ImportPath, err)
		}
	}

	for k, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, exp.re)
			}
		}
	}
}
