package aliasret_test

import (
	"testing"

	"leopard/internal/lint/aliasret"
	"leopard/internal/lint/linttest"
)

func TestAliasRet(t *testing.T) {
	linttest.Run(t, "testdata", aliasret.Analyzer)
}
