// Package store is the aliasret fixture: exported accessors returning
// internal state by reference versus by copy.
package store

type DemoStore struct {
	votes []uint64
	index map[string]int
	byKey map[string][]byte
}

func (s *DemoStore) Votes() []uint64 {
	return s.votes // want `DemoStore\.Votes returns internal s\.votes by reference`
}

func (s *DemoStore) Index() map[string]int {
	return s.index // want `DemoStore\.Index returns internal s\.index by reference`
}

func (s *DemoStore) Lookup(k string) []byte {
	return s.byKey[k] // want `DemoStore\.Lookup returns internal s\.byKey\[\.\.\.\] by reference`
}

// VotesCopy is the sanctioned pattern.
func (s *DemoStore) VotesCopy() []uint64 {
	return append([]uint64(nil), s.votes...)
}

// helper is unexported: callers inside the package own the invariants.
func (s *DemoStore) helper() []uint64 { return s.votes }

// View hands out shared state deliberately.
//
//lint:aliases-internal fixture: documented read-only view, callers audited
func (s *DemoStore) View() []uint64 {
	return s.votes
}

// plain is outside the checked suffixes and packages.
type plain struct{ data []byte }

func (p *plain) Data() []byte { return p.data }
