// Package aliasret machine-checks the copy-on-return accessor contract for
// store, log, stats and pool types (the MemLog.Votes bug, generalized).
//
// The PR 6 review found MemLog.Votes returning its internal slice: any
// caller could corrupt the vote-ahead log through the alias, silently
// undermining the durability argument built on it. The fix — accessors
// return copies — is a contract, not a one-off, and this analyzer enforces
// it: an exported method on a state-holding type must not return an
// internal mutable slice or map reached from its receiver.
//
// Scope: every exported method in internal/storage and internal/metrics,
// plus, module-wide, exported methods whose receiver type name ends in
// Store, Log, Stats or Pool. Flagged shape: a return result that is a
// selector/index chain rooted at the receiver whose type is a slice or map
// (`return m.votes`, `return s.chunks[k]`). Returning freshly built values
// (`append([]T(nil), m.votes...)`, composite literals, call results) is
// the sanctioned pattern and passes.
//
// Exemption: `//lint:aliases-internal <justification>` — for accessors
// that intentionally hand out shared state (e.g. a read-only view whose
// callers are documented).
package aliasret

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"leopard/internal/lint/analysis"
)

// Analyzer is the copy-on-return invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "aliasret",
	Doc:  "exported accessors on store/log/stats/pool types must not return internal slices or maps without copying",
	Run:  run,
}

// scopedPackages have every exported method checked regardless of type
// name: these are the durability and measurement layers, where an aliased
// return corrupts state the rest of the system reasons about.
var scopedPackages = map[string]bool{
	"leopard/internal/storage": true,
	"leopard/internal/metrics": true,
}

// scopedSuffixes widen the check module-wide to types that are stores by
// name and role.
var scopedSuffixes = []string{"Store", "Log", "Stats", "Pool"}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recvVar, recvTypeName := receiver(pass, fd)
			if recvVar == nil || !inScope(pass, recvTypeName) {
				continue
			}
			checkMethod(pass, fd, recvVar, recvTypeName)
		}
	}
	return nil, nil
}

func receiver(pass *analysis.Pass, fd *ast.FuncDecl) (*types.Var, string) {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil, ""
	}
	name := fd.Recv.List[0].Names[0]
	obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
	if !ok {
		return nil, ""
	}
	named := analysis.NamedOf(obj.Type())
	if named == nil {
		return nil, ""
	}
	return obj, named.Obj().Name()
}

func inScope(pass *analysis.Pass, typeName string) bool {
	if scopedPackages[pass.ImportPath] {
		return true
	}
	for _, suf := range scopedSuffixes {
		if strings.HasSuffix(typeName, suf) {
			return true
		}
	}
	return false
}

func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl, recv *types.Var, recvTypeName string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			_ = fl
			return false // closures are not the accessor's return path
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if path, ok := aliasesReceiver(pass, recv, res); ok {
				report(pass, ret.Pos(), fd, recvTypeName, fd.Name.Name, path)
			}
		}
		return true
	})
}

// aliasesReceiver reports whether res is a selector/index chain rooted at
// the receiver whose type is a slice or map — i.e. it hands the caller a
// live reference into the receiver's state.
func aliasesReceiver(pass *analysis.Pass, recv *types.Var, res ast.Expr) (string, bool) {
	res = ast.Unparen(res)
	tv, ok := pass.TypesInfo.Types[res]
	if !ok || tv.Type == nil {
		return "", false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
	default:
		return "", false
	}
	// Walk down the chain to the root identifier.
	expr := res
	for {
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			expr = ast.Unparen(e.X)
		case *ast.IndexExpr:
			expr = ast.Unparen(e.X)
		case *ast.Ident:
			if obj, ok := pass.TypesInfo.Uses[e].(*types.Var); ok && obj == recv {
				return render(res), true
			}
			return "", false
		default:
			return "", false
		}
	}
}

func render(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.SelectorExpr:
		return render(t.X) + "." + t.Sel.Name
	case *ast.IndexExpr:
		return render(t.X) + "[...]"
	case *ast.Ident:
		return t.Name
	}
	return "?"
}

func report(pass *analysis.Pass, pos token.Pos, fd *ast.FuncDecl, typeName, method, path string) {
	if pass.ExemptedAt(pos, "aliases-internal", fd) {
		return
	}
	pass.Reportf(pos,
		"%s.%s returns internal %s by reference: callers can corrupt the %s through the alias (the MemLog.Votes bug); return a copy or annotate `//lint:aliases-internal <why>`",
		typeName, method, path, strings.ToLower(typeName))
}
