// Package analysis is a minimal, offline-friendly clone of the
// golang.org/x/tools/go/analysis API surface that leopard-lint's analyzers
// are written against.
//
// Why a clone and not the real thing: the build environment for this
// repository is fully hermetic — no module proxy, no vendored third-party
// code — so golang.org/x/tools cannot be a dependency. The subset
// implemented here (Analyzer, Pass, Diagnostic, positional reporting) is
// deliberately shaped after the upstream API: an analyzer written against
// this package ports to x/tools by changing one import path, and vice
// versa. Facts, modular analysis and the multichecker driver protocol are
// out of scope; leopard-lint loads whole packages with full type
// information (internal/lint/loader), which is all the invariant suite
// needs.
//
// # Exemption annotations
//
// Every leopard-lint analyzer supports explicit, auditable exemptions: a
// comment of the form
//
//	//lint:<marker> <one-line justification>
//
// on the flagged line, on the line directly above it, or in the enclosing
// function's doc comment suppresses that analyzer's findings for the line
// (respectively the function). The justification is mandatory — a bare
// marker does not exempt — so every escape hatch in the tree documents why
// the invariant does not apply. ExemptedAt implements the lookup.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name is the analyzer's short kebab/lowercase identifier, used in
	// diagnostics and CLI output.
	Name string
	// Doc is the full help text: the first line is a summary, the rest
	// explains the invariant being enforced and how to annotate exemptions.
	Doc string
	// Run applies the analyzer to one package. Diagnostics are reported
	// through the pass; the result value is unused by the driver and exists
	// for API compatibility with x/tools.
	Run func(*Pass) (any, error)
}

// Pass provides one analyzed package to an Analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File // parsed non-test sources, with comments
	Pkg       *types.Package
	TypesInfo *types.Info

	// ImportPath is the package's import path as reported by the build
	// system (Pkg.Path() matches it; kept explicit for clarity in scoping
	// checks).
	ImportPath string
	// TestFiles are the package's _test.go files (both in-package and
	// external test packages), parsed syntactically only — no type
	// information. Analyzers that audit test artifacts (seed corpora)
	// scan these.
	TestFiles []*ast.File

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)

	// lineComments maps file line numbers to the comment text present on
	// that line, built lazily for exemption lookups.
	lineComments map[exemptKey]string
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Category string // analyzer name
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Category: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

type exemptKey struct {
	file string
	line int
}

// lintDirective extracts the marker and justification from a "//lint:"
// comment, returning ok=false for other comments.
func lintDirective(text string) (marker, justification string, ok bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "lint:") {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, "lint:")
	marker, justification, _ = strings.Cut(rest, " ")
	return marker, strings.TrimSpace(justification), true
}

func (p *Pass) buildLineComments() {
	p.lineComments = make(map[exemptKey]string)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := p.Fset.Position(c.Pos())
				key := exemptKey{file: pos.Filename, line: pos.Line}
				p.lineComments[key] += c.Text + "\n"
			}
		}
	}
}

// ExemptedAt reports whether a finding at pos is covered by an exemption
// comment for marker: a justified "//lint:<marker> why" on the same line,
// the line above, or in the doc comment of the enclosing function
// (encl may be nil when there is none).
func (p *Pass) ExemptedAt(pos token.Pos, marker string, encl *ast.FuncDecl) bool {
	if p.lineComments == nil {
		p.buildLineComments()
	}
	position := p.Fset.Position(pos)
	for _, line := range []int{position.Line, position.Line - 1} {
		if text, ok := p.lineComments[exemptKey{file: position.Filename, line: line}]; ok {
			if hasJustifiedMarker(text, marker) {
				return true
			}
		}
	}
	if encl != nil && encl.Doc != nil && hasJustifiedMarker(encl.Doc.Text()+rawComments(encl.Doc), marker) {
		return true
	}
	return false
}

// rawComments returns the raw //-prefixed lines of a comment group;
// CommentGroup.Text strips directive comments (//lint:...), so exemption
// lookup needs the raw text.
func rawComments(cg *ast.CommentGroup) string {
	var sb strings.Builder
	for _, c := range cg.List {
		sb.WriteString(c.Text)
		sb.WriteString("\n")
	}
	return sb.String()
}

func hasJustifiedMarker(text, marker string) bool {
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "//") {
			line = "//" + line
		}
		if m, just, ok := lintDirective(line); ok && m == marker && just != "" {
			return true
		}
	}
	return false
}

// EnclosingFunc returns the function declaration in file that contains pos,
// or nil.
func EnclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// IsPkgCall reports whether call is a direct call of the package-level
// function pkgPath.name, resolved through type information.
func IsPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name &&
		fn.Type().(*types.Signature).Recv() == nil
}

// IsMethodCall reports whether call invokes a method called name whose
// receiver's named type is recvPkgPath.recvType (pointer or value receiver).
func IsMethodCall(info *types.Info, call *ast.CallExpr, recvPkgPath, recvType, name string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedOf(sig.Recv().Type())
	return named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == recvPkgPath && named.Obj().Name() == recvType
}

// CalleeName returns the bare name of the called function or method, or "".
func CalleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		return fn.Name()
	}
	// Fall back to syntax for calls the type checker could not resolve.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// NamedOf unwraps pointers and returns the named type of t, or nil.
func NamedOf(t types.Type) *types.Named { return namedOf(t) }

// ImplementsIface reports whether t (or *t) has a named type whose name and
// package path match — a structural stand-in for interface checks that must
// also hold against fixture stubs, which share names but not identities
// with the real types.
func ImplementsIface(t types.Type, pkgPath, name string) bool {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == name
}
