// Package loader loads Go packages with full type information using only
// the standard library and the go tool — an offline-friendly stand-in for
// golang.org/x/tools/go/packages, which the hermetic build environment
// cannot depend on.
//
// The mechanism: `go list -export -deps -json` resolves the build (module
// mode, build tags, file selection) and hands back compiler export data for
// every dependency from the build cache; the target packages' sources are
// then parsed with go/parser and type-checked with go/types, importing
// dependencies through go/importer's gc importer pointed at that export
// data. No network, no GOPATH assumptions, no third-party code — and the
// type information is the compiler's own, so analyzers see exactly the
// types the build does.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	// Syntax holds the parsed non-test sources, with comments.
	Syntax []*ast.File
	// TestSyntax holds the package's _test.go files (in-package and
	// external), parsed syntactically only — no type information.
	TestSyntax []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPackage mirrors the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath   string
	Dir          string
	Name         string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Standard     bool
	DepOnly      bool
	Error        *struct{ Err string }
}

// Load type-checks the packages matching patterns, resolved relative to
// dir (the module root or any directory inside it). Test files are parsed
// but not type-checked. Packages come back sorted by import path.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Name,Export,GoFiles,TestGoFiles,XTestGoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loader: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("loader: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		// Every pattern-matched package (DepOnly=false) is a target,
		// including main packages.
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(f)
	})

	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		pkg, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func check(fset *token.FileSet, imp types.Importer, t listPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(t.GoFiles))
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("loader: %v", err)
		}
		files = append(files, f)
	}
	var testFiles []*ast.File
	for _, name := range append(append([]string(nil), t.TestGoFiles...), t.XTestGoFiles...) {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("loader: %v", err)
		}
		testFiles = append(testFiles, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	typesPkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %v", t.ImportPath, err)
	}
	return &Package{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		Fset:       fset,
		Syntax:     files,
		TestSyntax: testFiles,
		Types:      typesPkg,
		TypesInfo:  info,
	}, nil
}
