// Package lint assembles leopard-lint: the project's go/analysis-style
// invariant suite. Each analyzer encodes one hard-won contract from the
// invariant catalog (see README §"Static analysis & invariant linting"):
//
//	voteahead      — persist-before-broadcast vote-ahead discipline (PR 6)
//	borrowcheck    — codec frame-ownership / borrow contract (PR 2, PR 5)
//	determinism    — event-clock-only, single-threaded simulation (PRs 3/6)
//	aliasret       — copy-on-return store/log/stats accessors (PR 6 review)
//	exhaustivewire — wire-kind enum exhaustiveness across encode, decode,
//	                 lane classification and fuzz seeds (PR 5)
//
// The suite is driven by cmd/leopard-lint and by the in-repo meta-test that
// keeps the tree clean.
package lint

import (
	"fmt"
	"go/token"
	"sort"

	"leopard/internal/lint/aliasret"
	"leopard/internal/lint/analysis"
	"leopard/internal/lint/borrowcheck"
	"leopard/internal/lint/determinism"
	"leopard/internal/lint/exhaustivewire"
	"leopard/internal/lint/loader"
	"leopard/internal/lint/voteahead"
)

// Suite returns the project's analyzers in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		voteahead.Analyzer,
		borrowcheck.Analyzer,
		determinism.Analyzer,
		aliasret.Analyzer,
		exhaustivewire.Analyzer,
	}
}

// Finding is one resolved diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the conventional path:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Run loads the packages matching patterns (relative to dir) and applies
// every analyzer, returning the findings sorted by position.
func Run(dir string, analyzers []*analysis.Analyzer, patterns ...string) ([]Finding, error) {
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Syntax,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.TypesInfo,
				ImportPath: pkg.ImportPath,
				TestFiles:  pkg.TestSyntax,
			}
			pass.Report = func(d analysis.Diagnostic) {
				findings = append(findings, Finding{
					Pos:      pkg.Fset.Position(d.Pos),
					Analyzer: d.Category,
					Message:  d.Message,
				})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
