package borrowcheck_test

import (
	"testing"

	"leopard/internal/lint/borrowcheck"
	"leopard/internal/lint/linttest"
)

func TestBorrowCheck(t *testing.T) {
	linttest.Run(t, "testdata", borrowcheck.Analyzer)
}
