// Package borrowcheck machine-checks the codec frame-ownership contract
// (PR 2) and the borrowed-buffer aliasing rules the PR 5 WAL bug made
// expensive to relearn.
//
// Borrow-mode decoding (codec.Reader.BorrowBytes, Reader.Bytes under
// Borrow, codec.UnmarshalDatablockBorrowed, leopard.DecodeMessage)
// sub-slices the input frame instead of copying: the decoded value aliases
// the frame, retaining any field pins the whole frame, and writing through
// any field scribbles over wire bytes. The contract in the codec package
// doc permits retention only where the frame's ownership was genuinely
// transferred — and those sites must be findable, because they decide how
// long multi-megabyte frames live.
//
// This analyzer performs a per-function taint analysis:
//
//	sources: results of BorrowBytes / UnmarshalDatablockBorrowed /
//	         DecodeMessage; and, inside internal/leopard, the message
//	         pointer parameters of Deliver/handle* handlers (every handler
//	         argument was produced by borrow-mode DecodeMessage, per the
//	         transport.Codec contract);
//	flows:   plain assignments, and selector/index projections whose type
//	         still references memory (slices, maps, pointers, or structs
//	         carrying them); projecting out a value ([32]byte hash, an
//	         integer) launders the taint, as it should — copies are free
//	         to retain;
//	sinks:   stores through a field selector or into a map/slice element,
//	         stores to package-level variables (retention), appends to a
//	         borrowed slice and writes into its elements (mutation).
//
// A retention sink must carry the annotation
//
//	//lint:retains-frame <why this retention is the intended ownership>
//
// on its line, the line above, or the enclosing function's doc comment.
// Mutation sinks cannot be annotated away: writing into borrowed frame
// memory is the PR 5 silent-corruption bug class and is always an error.
package borrowcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"leopard/internal/lint/analysis"
)

// Analyzer is the frame-ownership invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "borrowcheck",
	Doc:  "borrowed frame slices must not be retained without annotation, and never mutated",
	Run:  run,
}

const (
	codecPath   = "leopard/internal/codec"
	leopardPath = "leopard/internal/leopard"
)

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// isSourceCall reports whether call produces a value aliasing a borrowed
// frame.
func isSourceCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	info := pass.TypesInfo
	return analysis.IsMethodCall(info, call, codecPath, "Reader", "BorrowBytes") ||
		analysis.IsPkgCall(info, call, codecPath, "UnmarshalDatablockBorrowed") ||
		analysis.IsPkgCall(info, call, leopardPath, "DecodeMessage")
}

// handlerParams returns the borrowed-by-contract parameters of fd: inside
// internal/leopard, pointer-to-*Msg parameters of Deliver and handle*
// methods alias the frame DecodeMessage borrowed them from.
func handlerParams(pass *analysis.Pass, fd *ast.FuncDecl) map[*types.Var]bool {
	tainted := make(map[*types.Var]bool)
	if pass.ImportPath != leopardPath {
		return tainted
	}
	name := fd.Name.Name
	if name != "Deliver" && !hasPrefix(name, "handle") {
		return tainted
	}
	for _, field := range fd.Type.Params.List {
		for _, pname := range field.Names {
			obj, ok := pass.TypesInfo.Defs[pname].(*types.Var)
			if !ok {
				continue
			}
			if named := analysis.NamedOf(obj.Type()); named != nil &&
				named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == leopardPath &&
				hasSuffix(named.Obj().Name(), "Msg") {
				if _, isPtr := obj.Type().(*types.Pointer); isPtr {
					tainted[obj] = true
				}
			}
		}
	}
	return tainted
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	tainted := handlerParams(pass, fd)

	// Fixed-point taint propagation across plain assignments. The function
	// bodies in this codebase are small; a handful of passes converges.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) == 0 {
				return true
			}
			// Align LHS/RHS; the multi-value forms (v, err := f()) pair the
			// call with every LHS.
			for i, lhs := range assign.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				var obj *types.Var
				if d, ok := info.Defs[id].(*types.Var); ok {
					obj = d
				} else if u, ok := info.Uses[id].(*types.Var); ok {
					obj = u
				}
				if obj == nil || tainted[obj] {
					continue
				}
				var rhs ast.Expr
				if len(assign.Rhs) == len(assign.Lhs) {
					rhs = assign.Rhs[i]
				} else if len(assign.Rhs) == 1 {
					rhs = assign.Rhs[0]
				}
				if rhs == nil {
					continue
				}
				if exprTainted(pass, tainted, rhs) {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			checkStores(pass, fd, tainted, node)
		case *ast.CallExpr:
			checkAppendMutation(pass, fd, tainted, node)
		}
		return true
	})
}

// exprTainted reports whether expr carries frame-aliasing bytes: a source
// call, a tainted identifier, or a reference-typed projection rooted at
// one.
func exprTainted(pass *analysis.Pass, tainted map[*types.Var]bool, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			if isSourceCall(pass, e) {
				found = true
				return false
			}
			// append is the one builtin that carries its arguments'
			// references into its result; everything else launders taint —
			// a call's result is the callee's to define.
			if isAppend(pass, e) && appendTainted(pass, tainted, e) {
				found = true
			}
			return false
		case *ast.Ident:
			if obj, ok := pass.TypesInfo.Uses[e].(*types.Var); ok && tainted[obj] {
				found = true
				return false
			}
		case *ast.SelectorExpr, *ast.IndexExpr:
			// Projections only carry taint while the projected type still
			// references memory; stop descending once the type is a pure
			// value (hash array, integer).
			ex := e.(ast.Expr)
			if tv, ok := pass.TypesInfo.Types[ex]; ok && !refLike(tv.Type, 3) {
				return false
			}
		}
		return true
	})
	return found
}

func isAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, builtin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return builtin && id.Name == "append"
}

// appendTainted reports whether an append call's result aliases borrowed
// frame memory: the base slice is tainted, or an appended element is tainted
// and its element type still references memory. The copy idiom
// `append([]byte(nil), borrowed...)` passes — the spread copies plain bytes.
func appendTainted(pass *analysis.Pass, tainted map[*types.Var]bool, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	if exprTainted(pass, tainted, call.Args[0]) {
		return true
	}
	for _, arg := range call.Args[1:] {
		if !exprTainted(pass, tainted, arg) {
			continue
		}
		elem := typeOf(pass, arg)
		if call.Ellipsis.IsValid() && arg == call.Args[len(call.Args)-1] {
			if sl, ok := elem.Underlying().(*types.Slice); ok {
				elem = sl.Elem()
			}
		}
		if refLike(elem, 3) {
			return true
		}
	}
	return false
}

// refLike reports whether values of type t can alias other memory: slices,
// maps, pointers, channels, interfaces, or aggregates containing them.
func refLike(t types.Type, depth int) bool {
	if depth == 0 {
		return true // be conservative past the recursion budget
	}
	switch tt := t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan, *types.Interface, *types.Signature:
		return true
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if refLike(tt.Field(i).Type(), depth-1) {
				return true
			}
		}
		return false
	case *types.Array:
		return refLike(tt.Elem(), depth-1)
	default:
		return false
	}
}

// checkStores flags retention sinks (stores of tainted values through
// fields, map/slice elements, or package vars) and element-write mutation
// sinks.
func checkStores(pass *analysis.Pass, fd *ast.FuncDecl, tainted map[*types.Var]bool, assign *ast.AssignStmt) {
	for i, lhs := range assign.Lhs {
		var rhs ast.Expr
		if len(assign.Rhs) == len(assign.Lhs) {
			rhs = assign.Rhs[i]
		} else if len(assign.Rhs) == 1 {
			rhs = assign.Rhs[0]
		}
		if rhs == nil {
			continue
		}
		switch target := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			// Writing INTO a borrowed slice is mutation of frame memory.
			if id, ok := ast.Unparen(target.X).(*ast.Ident); ok {
				if obj, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && tainted[obj] {
					if _, isSlice := typeOf(pass, target.X).Underlying().(*types.Slice); isSlice {
						pass.Reportf(assign.Pos(),
							"write into borrowed slice %q mutates frame memory owned by the decoder (PR 5 WAL-aliasing bug class); copy the slice first", id.Name)
						continue
					}
				}
			}
			if exprTainted(pass, tainted, rhs) {
				reportRetention(pass, fd, assign.Pos(), describeLHS(target))
			}
		case *ast.SelectorExpr:
			if exprTainted(pass, tainted, rhs) {
				reportRetention(pass, fd, assign.Pos(), describeLHS(target))
			}
		case *ast.Ident:
			// Stores to package-level variables escape by definition.
			if obj, ok := pass.TypesInfo.Uses[target].(*types.Var); ok && obj.Parent() == pass.Pkg.Scope() {
				if exprTainted(pass, tainted, rhs) {
					reportRetention(pass, fd, assign.Pos(), "package variable "+target.Name)
				}
			}
		}
	}
}

// checkAppendMutation flags append(t, ...) where t is a borrowed slice:
// even though borrowed slices are returned with clipped capacity (so the
// append reallocates), appending to one is almost always a confusion about
// who owns the bytes, and a capacity-preserving sub-slice elsewhere would
// corrupt the frame.
func checkAppendMutation(pass *analysis.Pass, fd *ast.FuncDecl, tainted map[*types.Var]bool, call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return
	}
	base, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	if obj, ok := pass.TypesInfo.Uses[base].(*types.Var); ok && tainted[obj] {
		pass.Reportf(call.Pos(),
			"append to borrowed slice %q: the bytes belong to the decoded frame; build a fresh slice instead", base.Name)
	}
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

func describeLHS(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.SelectorExpr:
		return "field " + t.Sel.Name
	case *ast.IndexExpr:
		return "element of " + describeIndexBase(t.X)
	}
	return "store target"
}

func describeIndexBase(e ast.Expr) string {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return t.Sel.Name
	}
	return "collection"
}

func reportRetention(pass *analysis.Pass, fd *ast.FuncDecl, pos token.Pos, target string) {
	if pass.ExemptedAt(pos, "retains-frame", fd) {
		return
	}
	pass.Reportf(pos,
		"borrowed frame bytes stored into %s outlive the handler: annotate `//lint:retains-frame <why>` if this retention is the intended ownership transfer, or copy the bytes", target)
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }
func hasSuffix(s, p string) bool { return len(s) >= len(p) && s[len(s)-len(p):] == p }
