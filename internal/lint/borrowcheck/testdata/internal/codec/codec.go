// Package codec is a fixture stub mirroring the real leopard/internal/codec
// borrow-mode surface the borrowcheck analyzer matches on.
package codec

type Reader struct{ Buf []byte }

func (r *Reader) BorrowBytes() []byte { return r.Buf }

func (r *Reader) Bytes() []byte { return append([]byte(nil), r.Buf...) }

type Datablock struct{ Payload []byte }

func UnmarshalDatablockBorrowed(buf []byte) (*Datablock, bool) {
	return &Datablock{Payload: buf}, true
}
