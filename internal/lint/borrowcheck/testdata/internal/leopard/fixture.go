// Package leopard is the borrowcheck fixture: retention and mutation of
// borrowed frame slices, with and without the retains-frame annotation.
package leopard

import "leopard/internal/codec"

type RespMsg struct {
	Index int
	Chunk []byte
}

type cache struct {
	held   []byte
	chunks map[int][]byte
	db     *codec.Datablock
}

var global []byte

func (c *cache) retainField(r *codec.Reader) {
	b := r.BorrowBytes()
	c.held = b // want `borrowed frame bytes stored into field held`
}

func (c *cache) retainMap(r *codec.Reader) {
	b := r.BorrowBytes()
	c.chunks[0] = b // want `borrowed frame bytes stored into element of chunks`
}

func (c *cache) retainDatablock(r *codec.Reader) {
	db, ok := codec.UnmarshalDatablockBorrowed(r.Buf)
	if !ok {
		return
	}
	c.db = db // want `borrowed frame bytes stored into field db`
}

func retainGlobal(r *codec.Reader) {
	b := r.BorrowBytes()
	global = b // want `borrowed frame bytes stored into package variable global`
}

func mutate(r *codec.Reader) {
	b := r.BorrowBytes()
	b[0] = 1 // want `write into borrowed slice "b" mutates frame memory`
}

func appendTo(r *codec.Reader) []byte {
	b := r.BorrowBytes()
	return append(b, 1) // want `append to borrowed slice "b"`
}

// handleResp's parameter is borrowed by the transport.Codec contract: every
// handler argument was produced by borrow-mode DecodeMessage.
func (c *cache) handleResp(m *RespMsg) {
	c.chunks[m.Index] = m.Chunk // want `borrowed frame bytes stored into element of chunks`
}

// copies shows the sanctioned patterns: copying launders the taint.
func (c *cache) copies(r *codec.Reader, m *RespMsg) {
	b := r.BorrowBytes()
	c.held = append([]byte(nil), b...)
	c.chunks[m.Index] = append([]byte(nil), m.Chunk...)
	c.held = r.Bytes()
}

// projections of pure value types launder the taint too.
func (c *cache) values(m *RespMsg) int {
	idx := m.Index
	return idx
}

func (c *cache) annotated(r *codec.Reader) {
	b := r.BorrowBytes()
	//lint:retains-frame fixture: the cache owns the frame until the next checkpoint
	c.held = b
}
