module leopard

go 1.24
