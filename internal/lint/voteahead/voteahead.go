// Package voteahead machine-checks the persist-before-broadcast discipline
// of the vote-ahead log (PR 6).
//
// A Leopard replica's vote is a unilateral commitment: once a vote-kind
// message leaves the node, a peer may have seen it, so a crash that forgets
// the vote reopens the amnesia window — the restarted replica can sign
// different content for the same (view, seq) slot, i.e. equivocate. The
// codebase therefore requires every path that sends a vote-carrying message
// (VoteMsg, or BFTblockMsg, whose LeaderShare embeds the leader's round-1
// vote) or records local vote state (voted1/voted2 flags, the votedSeq and
// vote2Lock lock maps) to first pass a checked persist guard:
//
//	if !n.persistVote(...) { return }            // or
//	if !n.persistNote(inst) || !n.persistVote(...) { return }
//
// persistVote flushes and fsyncs the vote record before returning and
// latches the fail-stop on error, so after the guard either the durable
// lock covers anything a peer may see, or nothing leaves the node.
//
// Before this analyzer the discipline was enforced at four call sites by
// convention — and was shipped broken once (the PR 6 review found persist
// failures that did not abort the vote). The check here is positional
// within each function: every emission/record site must be preceded by a
// persist guard whose body aborts the path. That is an approximation of
// dominance, but it is exact for the shape this codebase uses (straight-
// line guard-then-act) and it catches both regressions that matter:
// deleting the guard, and reordering the broadcast above it.
//
// Exemption: `//lint:voteahead-exempt <justification>` on the line or in
// the enclosing function's doc comment. The legitimate exemption in-tree is
// vote-lock *reloading* at startup, where the records being written back
// into the lock maps are the store's own — already durable by definition.
package voteahead

import (
	"go/ast"
	"go/token"

	"leopard/internal/lint/analysis"
)

// Analyzer is the persist-before-broadcast invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "voteahead",
	Doc:  "vote-kind sends and vote-state records must be dominated by a checked persistVote success",
	Run:  run,
}

const scopePath = "leopard/internal/leopard"

// voteMsgTypes are the message types whose emission constitutes a vote
// leaving the node. ProofMsg is deliberately absent: a σ1/σ2 broadcast
// relays others' shares and carries no new commitment by the sender.
var voteMsgTypes = map[string]bool{"VoteMsg": true, "BFTblockMsg": true}

// voteStateFields and voteLockMaps are the node-local vote bookkeeping that
// must never run ahead of the durable record.
var voteStateFields = map[string]bool{"voted1": true, "voted2": true}
var voteLockMaps = map[string]bool{"votedSeq": true, "vote2Lock": true}

func run(pass *analysis.Pass) (any, error) {
	if pass.ImportPath != scopePath {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var guards []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if ok && condChecksPersist(pass, ifStmt.Cond) && bodyAborts(ifStmt.Body) {
			guards = append(guards, ifStmt.Pos())
		}
		return true
	})
	guarded := func(pos token.Pos) bool {
		for _, g := range guards {
			if g < pos {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if msgType, ok := emitsVoteKind(pass, node); ok && !guarded(node.Pos()) {
				report(pass, node.Pos(), fd,
					"*%s put on the Sink without a preceding checked persistVote: a crash after this send reopens the vote-amnesia window (persist-before-broadcast, PR 6)", msgType)
			}
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if name, ok := recordsVoteState(lhs); ok && !guarded(node.Pos()) {
					report(pass, node.Pos(), fd,
						"vote state %q recorded without a preceding checked persistVote: the durable lock must cover every vote this node considers cast", name)
				}
			}
		}
		return true
	})
}

// condChecksPersist reports whether cond contains a call to a function or
// method named persistVote — the guard expression shape is free (negation,
// || with persistNote) as long as the durable append's result is what gates
// the branch.
func condChecksPersist(pass *analysis.Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if analysis.CalleeName(pass.TypesInfo, call) == "persistVote" {
				found = true
			}
		}
		return !found
	})
	return found
}

// bodyAborts reports whether the guard body terminates the path: its last
// statement is a return, a branch (break/continue/goto), or a panic.
func bodyAborts(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// emitsVoteKind reports whether call pushes a vote-kind message into a
// transport.Sink (Send or Broadcast, including messages wrapped through
// transport.Unicast/transport.Broadcast in the arguments).
func emitsVoteKind(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	isSink := analysis.IsMethodCall(pass.TypesInfo, call, "leopard/internal/transport", "Sink", "Send") ||
		analysis.IsMethodCall(pass.TypesInfo, call, "leopard/internal/transport", "Sink", "Broadcast")
	if !isSink {
		return "", false
	}
	for _, arg := range call.Args {
		if name, ok := containsVoteMsg(pass, arg); ok {
			return name, true
		}
	}
	return "", false
}

// containsVoteMsg walks expr for any sub-expression whose static type is a
// pointer to one of the vote-kind message types.
func containsVoteMsg(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	name, found := "", false
	ast.Inspect(expr, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok || found {
			return !found
		}
		tv, ok := pass.TypesInfo.Types[e]
		if !ok {
			return true
		}
		named := analysis.NamedOf(tv.Type)
		if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != scopePath {
			return true
		}
		if voteMsgTypes[named.Obj().Name()] {
			name, found = named.Obj().Name(), true
		}
		return !found
	})
	return name, found
}

// recordsVoteState matches assignment targets that record a cast vote:
// `x.voted1 = ...`, `x.voted2 = ...`, or writes into the votedSeq /
// vote2Lock maps (`n.votedSeq[seq] = digest`).
func recordsVoteState(lhs ast.Expr) (string, bool) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if voteStateFields[e.Sel.Name] {
			return e.Sel.Name, true
		}
	case *ast.IndexExpr:
		switch x := ast.Unparen(e.X).(type) {
		case *ast.SelectorExpr:
			if voteLockMaps[x.Sel.Name] {
				return x.Sel.Name, true
			}
		case *ast.Ident:
			if voteLockMaps[x.Name] {
				return x.Name, true
			}
		}
	}
	return "", false
}

func report(pass *analysis.Pass, pos token.Pos, encl *ast.FuncDecl, format string, args ...any) {
	if pass.ExemptedAt(pos, "voteahead-exempt", encl) {
		return
	}
	pass.Reportf(pos, format, args...)
}
