// Package transport is a fixture stub mirroring the real
// leopard/internal/transport surface the voteahead analyzer matches on.
package transport

type Message interface{}

type Envelope struct {
	To  int
	Msg Message
}

type Sink interface {
	Send(Envelope)
	Broadcast(Message)
}
