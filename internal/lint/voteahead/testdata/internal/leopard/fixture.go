// Package leopard is the voteahead fixture: vote-kind sends and vote-state
// records with and without the persist-before-broadcast guard.
package leopard

import "leopard/internal/transport"

type Hash [32]byte

type VoteMsg struct{ Seq uint64 }

type BFTblockMsg struct{ Seq uint64 }

type ProofMsg struct{ Seq uint64 }

type Node struct {
	voted1   bool
	voted2   bool
	votedSeq map[uint64]Hash
	failed   bool
}

func (n *Node) persistVote(round int, seq uint64) bool { return !n.failed }

func (n *Node) unguardedVote(seq uint64, out transport.Sink) {
	n.voted1 = true                   // want `vote state "voted1" recorded without a preceding checked persistVote`
	n.votedSeq[seq] = Hash{}          // want `vote state "votedSeq" recorded without a preceding checked persistVote`
	out.Broadcast(&VoteMsg{Seq: seq}) // want `\*VoteMsg put on the Sink without a preceding checked persistVote`
}

func (n *Node) unguardedProposal(seq uint64, out transport.Sink) {
	out.Broadcast(&BFTblockMsg{Seq: seq}) // want `\*BFTblockMsg put on the Sink without a preceding checked persistVote`
}

// uncheckedPersist calls persistVote but ignores its result, so the send is
// not covered: a failed append must abort the path, not just log.
func (n *Node) uncheckedPersist(seq uint64, out transport.Sink) {
	n.persistVote(1, seq)
	out.Broadcast(&VoteMsg{Seq: seq}) // want `\*VoteMsg put on the Sink without a preceding checked persistVote`
}

func (n *Node) guardedVote(seq uint64, out transport.Sink) {
	if !n.persistVote(1, seq) {
		return
	}
	n.voted1 = true
	n.votedSeq[seq] = Hash{}
	out.Broadcast(&VoteMsg{Seq: seq})
}

func (n *Node) guardedVote2(seq uint64, out transport.Sink) {
	if !n.persistNote(seq) || !n.persistVote(2, seq) {
		return
	}
	n.voted2 = true
	out.Broadcast(&VoteMsg{Seq: seq})
}

func (n *Node) persistNote(seq uint64) bool { return !n.failed }

// relayProof broadcasts a ProofMsg, which relays others' shares and is not a
// vote kind: no guard required.
func (n *Node) relayProof(seq uint64, out transport.Sink) {
	out.Broadcast(&ProofMsg{Seq: seq})
}

// reload writes vote locks back from the durable store at startup.
//
//lint:voteahead-exempt fixture: replaying records that were persisted by a previous life
func (n *Node) reload(seq uint64) {
	n.votedSeq[seq] = Hash{}
}
