package voteahead_test

import (
	"testing"

	"leopard/internal/lint/linttest"
	"leopard/internal/lint/voteahead"
)

func TestVoteAhead(t *testing.T) {
	linttest.Run(t, "testdata", voteahead.Analyzer)
}
