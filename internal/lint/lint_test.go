package lint_test

import (
	"testing"

	"leopard/internal/lint"
)

// TestRepositoryIsLintClean is the meta-test behind the CI gate: the
// invariant suite must exit clean on the repository itself. Every real
// finding has either been fixed or carries a justified //lint:<marker>
// exemption; a failure here means a contract regressed (or a new exemption
// needs its justification written down).
func TestRepositoryIsLintClean(t *testing.T) {
	findings, err := lint.Run("../..", lint.Suite(), "./...")
	if err != nil {
		t.Fatalf("running invariant suite on repository: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestSuiteComposition pins the analyzer roster: dropping an analyzer from
// the suite silently un-checks its invariant, so removal has to be
// deliberate.
func TestSuiteComposition(t *testing.T) {
	want := map[string]bool{
		"voteahead":      true,
		"borrowcheck":    true,
		"determinism":    true,
		"aliasret":       true,
		"exhaustivewire": true,
	}
	suite := lint.Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for _, a := range suite {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q in suite", a.Name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
	}
}
