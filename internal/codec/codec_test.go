package codec

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"leopard/internal/types"
)

func TestPrimitivesRoundTrip(t *testing.T) {
	w := &Writer{}
	w.U8(7)
	w.U32(123456)
	w.U64(1 << 40)
	w.Bytes([]byte("payload"))
	w.Hash(types.Hash{1, 2, 3})

	r := &Reader{Buf: w.Buf}
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := r.U32(); got != 123456 {
		t.Errorf("U32 = %d", got)
	}
	if got := r.U64(); got != 1<<40 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte("payload")) {
		t.Errorf("Bytes = %q", got)
	}
	if got := r.Hash(); got != (types.Hash{1, 2, 3}) {
		t.Errorf("Hash = %v", got)
	}
	if r.Err() != nil {
		t.Errorf("unexpected error: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Errorf("%d bytes left over", r.Remaining())
	}
}

func TestReaderTruncation(t *testing.T) {
	r := &Reader{Buf: []byte{1, 2}}
	_ = r.U32()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Errorf("want ErrTruncated, got %v", r.Err())
	}
	// Errors are sticky.
	_ = r.U8()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Error("error must stick")
	}
}

func TestBytesOversizeRejected(t *testing.T) {
	w := &Writer{}
	w.U32(uint32(MaxElements + 1))
	r := &Reader{Buf: w.Buf}
	if r.Bytes() != nil || !errors.Is(r.Err(), ErrOversize) {
		t.Errorf("want ErrOversize, got %v", r.Err())
	}
}

func TestDatablockRoundTrip(t *testing.T) {
	db := &types.Datablock{
		Ref: types.DatablockRef{Generator: 9, Counter: 42},
		Requests: []types.Request{
			{ClientID: 1, Seq: 1, Payload: []byte("first")},
			{ClientID: 2, Seq: 7, Payload: nil},
			{ClientID: 3, Seq: 0, Payload: bytes.Repeat([]byte{0xaa}, 1000)},
		},
	}
	buf := MarshalDatablock(db)
	got, err := UnmarshalDatablock(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ref != db.Ref || len(got.Requests) != len(db.Requests) {
		t.Fatalf("header mismatch: %+v", got.Ref)
	}
	for i := range db.Requests {
		if got.Requests[i].ClientID != db.Requests[i].ClientID ||
			got.Requests[i].Seq != db.Requests[i].Seq ||
			!bytes.Equal(got.Requests[i].Payload, db.Requests[i].Payload) {
			t.Fatalf("request %d mismatch", i)
		}
	}
}

func TestDatablockCanonical(t *testing.T) {
	db := &types.Datablock{
		Ref:      types.DatablockRef{Generator: 1, Counter: 2},
		Requests: []types.Request{{ClientID: 5, Seq: 6, Payload: []byte("x")}},
	}
	if !bytes.Equal(MarshalDatablock(db), MarshalDatablock(db)) {
		t.Fatal("encoding must be deterministic")
	}
}

func TestDatablockTruncated(t *testing.T) {
	db := &types.Datablock{
		Ref:      types.DatablockRef{Generator: 1, Counter: 2},
		Requests: []types.Request{{ClientID: 5, Seq: 6, Payload: []byte("xyz")}},
	}
	buf := MarshalDatablock(db)
	for cut := 1; cut < len(buf); cut += 3 {
		if _, err := UnmarshalDatablock(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestBFTblockRoundTrip(t *testing.T) {
	b := &types.BFTblock{View: 3, Seq: 99, Content: []types.Hash{{1}, {2}, {3}}}
	w := &Writer{}
	MarshalBFTblock(w, b)
	got, err := UnmarshalBFTblock(&Reader{Buf: w.Buf})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, b)
	}
}

func TestBFTblockEmptyContent(t *testing.T) {
	b := &types.BFTblock{View: 1, Seq: 1}
	w := &Writer{}
	MarshalBFTblock(w, b)
	got, err := UnmarshalBFTblock(&Reader{Buf: w.Buf})
	if err != nil {
		t.Fatal(err)
	}
	if got.View != 1 || got.Seq != 1 || len(got.Content) != 0 {
		t.Fatalf("unexpected block %+v", got)
	}
}

// TestPropertyDatablockRoundTrip fuzzes datablock encode/decode.
func TestPropertyDatablockRoundTrip(t *testing.T) {
	check := func(gen uint32, counter uint64, payloads [][]byte) bool {
		db := &types.Datablock{Ref: types.DatablockRef{Generator: types.ReplicaID(gen), Counter: counter}}
		for i, p := range payloads {
			db.Requests = append(db.Requests, types.Request{ClientID: uint64(i), Seq: counter, Payload: p})
		}
		got, err := UnmarshalDatablock(MarshalDatablock(db))
		if err != nil {
			return false
		}
		if got.Ref != db.Ref || len(got.Requests) != len(db.Requests) {
			return false
		}
		for i := range db.Requests {
			if !bytes.Equal(got.Requests[i].Payload, db.Requests[i].Payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyGarbageInput feeds random bytes to the decoders; they must
// error or succeed but never panic.
func TestPropertyGarbageInput(t *testing.T) {
	check := func(data []byte) bool {
		_, _ = UnmarshalDatablock(data)
		_, _ = UnmarshalBFTblock(&Reader{Buf: data})
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
