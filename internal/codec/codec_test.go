package codec

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"leopard/internal/types"
)

func TestPrimitivesRoundTrip(t *testing.T) {
	w := &Writer{}
	w.U8(7)
	w.U32(123456)
	w.U64(1 << 40)
	w.Bytes([]byte("payload"))
	w.Hash(types.Hash{1, 2, 3})

	r := &Reader{Buf: w.Buf}
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := r.U32(); got != 123456 {
		t.Errorf("U32 = %d", got)
	}
	if got := r.U64(); got != 1<<40 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte("payload")) {
		t.Errorf("Bytes = %q", got)
	}
	if got := r.Hash(); got != (types.Hash{1, 2, 3}) {
		t.Errorf("Hash = %v", got)
	}
	if r.Err() != nil {
		t.Errorf("unexpected error: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Errorf("%d bytes left over", r.Remaining())
	}
}

func TestReaderTruncation(t *testing.T) {
	r := &Reader{Buf: []byte{1, 2}}
	_ = r.U32()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Errorf("want ErrTruncated, got %v", r.Err())
	}
	// Errors are sticky.
	_ = r.U8()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Error("error must stick")
	}
}

func TestBytesOversizeRejected(t *testing.T) {
	for name, read := range map[string]func(*Reader) []byte{
		"copy":   (*Reader).Bytes,
		"borrow": (*Reader).BorrowBytes,
	} {
		w := &Writer{}
		w.U32(uint32(MaxBytesLen + 1))
		r := &Reader{Buf: w.Buf}
		if read(r) != nil || !errors.Is(r.Err(), ErrOversize) {
			t.Errorf("%s: want ErrOversize, got %v", name, r.Err())
		}
	}
}

// TestBytesBoundIsByteLengthNotElementCount is the regression test for the
// MaxElements/MaxBytesLen conflation: a field longer than the collection
// bound (4 Mi elements) but within the byte bound (64 MiB) is a legal chunk
// and must decode.
func TestBytesBoundIsByteLengthNotElementCount(t *testing.T) {
	big := make([]byte, MaxElements+1)
	big[0], big[len(big)-1] = 0xab, 0xcd
	w := &Writer{}
	w.Bytes(big)
	for name, read := range map[string]func(*Reader) []byte{
		"copy":   (*Reader).Bytes,
		"borrow": (*Reader).BorrowBytes,
	} {
		r := &Reader{Buf: w.Buf}
		got := read(r)
		if r.Err() != nil {
			t.Fatalf("%s: %d-byte field rejected: %v", name, len(big), r.Err())
		}
		if !bytes.Equal(got, big) {
			t.Fatalf("%s: field corrupted", name)
		}
	}
}

func TestBorrowBytesAliasesBuffer(t *testing.T) {
	w := &Writer{}
	w.Bytes([]byte("abcdef"))
	w.Bytes([]byte("rest"))

	r := &Reader{Buf: w.Buf, Borrow: true}
	got := r.Bytes() // dispatches to BorrowBytes via the mode flag
	if !bytes.Equal(got, []byte("abcdef")) {
		t.Fatalf("Bytes = %q", got)
	}
	if &got[0] != &w.Buf[4] {
		t.Error("borrow mode must sub-slice the frame, not copy")
	}
	if cap(got) != len(got) {
		t.Errorf("borrowed slice capacity %d not clipped to length %d", cap(got), len(got))
	}

	// Copying mode must return an independent slice.
	r = &Reader{Buf: w.Buf}
	got = r.Bytes()
	if &got[0] == &w.Buf[4] {
		t.Error("copy mode must not alias the frame")
	}
}

func TestReaderFailSticks(t *testing.T) {
	r := &Reader{Buf: []byte{1, 2, 3, 4}}
	first := errors.New("first")
	r.Fail(first)
	r.Fail(errors.New("second"))
	if r.Err() != first {
		t.Errorf("first error must win, got %v", r.Err())
	}
	if got := r.U32(); got != 0 {
		t.Errorf("failed reader must not yield values, got %d", got)
	}
}

func TestFinishRejectsTrailingBytes(t *testing.T) {
	r := &Reader{Buf: []byte{1, 2}}
	_ = r.U8()
	if err := r.Finish(); !errors.Is(err, ErrTrailing) {
		t.Errorf("want ErrTrailing, got %v", err)
	}
	_ = r.U8()
	if err := r.Finish(); err != nil {
		t.Errorf("fully consumed reader must finish clean, got %v", err)
	}
}

func TestDatablockRoundTrip(t *testing.T) {
	db := &types.Datablock{
		Ref: types.DatablockRef{Generator: 9, Counter: 42},
		Requests: []types.Request{
			{ClientID: 1, Seq: 1, Payload: []byte("first")},
			{ClientID: 2, Seq: 7, Payload: nil},
			{ClientID: 3, Seq: 0, Payload: bytes.Repeat([]byte{0xaa}, 1000)},
		},
	}
	buf := MarshalDatablock(db)
	got, err := UnmarshalDatablock(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ref != db.Ref || len(got.Requests) != len(db.Requests) {
		t.Fatalf("header mismatch: %+v", got.Ref)
	}
	for i := range db.Requests {
		if got.Requests[i].ClientID != db.Requests[i].ClientID ||
			got.Requests[i].Seq != db.Requests[i].Seq ||
			!bytes.Equal(got.Requests[i].Payload, db.Requests[i].Payload) {
			t.Fatalf("request %d mismatch", i)
		}
	}
}

func TestDatablockCanonical(t *testing.T) {
	db := &types.Datablock{
		Ref:      types.DatablockRef{Generator: 1, Counter: 2},
		Requests: []types.Request{{ClientID: 5, Seq: 6, Payload: []byte("x")}},
	}
	if !bytes.Equal(MarshalDatablock(db), MarshalDatablock(db)) {
		t.Fatal("encoding must be deterministic")
	}
}

func TestDatablockTruncated(t *testing.T) {
	db := &types.Datablock{
		Ref:      types.DatablockRef{Generator: 1, Counter: 2},
		Requests: []types.Request{{ClientID: 5, Seq: 6, Payload: []byte("xyz")}},
	}
	buf := MarshalDatablock(db)
	for cut := 1; cut < len(buf); cut += 3 {
		if _, err := UnmarshalDatablock(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// TestDatablockTrailingGarbageRejected is the regression test for the
// decoder accepting non-canonical frames with leftover bytes.
func TestDatablockTrailingGarbageRejected(t *testing.T) {
	db := &types.Datablock{
		Ref:      types.DatablockRef{Generator: 1, Counter: 2},
		Requests: []types.Request{{ClientID: 5, Seq: 6, Payload: []byte("xyz")}},
	}
	buf := append(MarshalDatablock(db), 0x00)
	if _, err := UnmarshalDatablock(buf); !errors.Is(err, ErrTrailing) {
		t.Errorf("copying decode: want ErrTrailing, got %v", err)
	}
	if _, err := UnmarshalDatablockBorrowed(buf); !errors.Is(err, ErrTrailing) {
		t.Errorf("borrowed decode: want ErrTrailing, got %v", err)
	}
}

// TestDatablockBorrowedAliasesInput pins the zero-copy property: borrowed
// decode sub-slices the input buffer instead of copying payloads.
func TestDatablockBorrowedAliasesInput(t *testing.T) {
	db := &types.Datablock{
		Ref:      types.DatablockRef{Generator: 1, Counter: 2},
		Requests: []types.Request{{ClientID: 5, Seq: 6, Payload: bytes.Repeat([]byte{7}, 100)}},
	}
	buf := MarshalDatablock(db)

	borrowed, err := UnmarshalDatablockBorrowed(buf)
	if err != nil {
		t.Fatal(err)
	}
	// Layout: ref (4+8) + count (4) + client/seq (8+8) + len (4) = offset 36.
	p := borrowed.Requests[0].Payload
	if &p[0] != &buf[36] {
		t.Error("borrowed payload must sub-slice the input buffer")
	}

	copied, err := UnmarshalDatablock(buf)
	if err != nil {
		t.Fatal(err)
	}
	q := copied.Requests[0].Payload
	if &q[0] == &p[0] {
		t.Error("copying decode must not alias the input buffer")
	}
	if !bytes.Equal(p, q) {
		t.Error("borrowed and copied payloads must match")
	}
}

func TestBFTblockRoundTrip(t *testing.T) {
	b := &types.BFTblock{View: 3, Seq: 99, Content: []types.Hash{{1}, {2}, {3}}}
	w := &Writer{}
	MarshalBFTblock(w, b)
	got, err := UnmarshalBFTblock(&Reader{Buf: w.Buf})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, b)
	}
}

func TestBFTblockEmptyContent(t *testing.T) {
	b := &types.BFTblock{View: 1, Seq: 1}
	w := &Writer{}
	MarshalBFTblock(w, b)
	got, err := UnmarshalBFTblock(&Reader{Buf: w.Buf})
	if err != nil {
		t.Fatal(err)
	}
	if got.View != 1 || got.Seq != 1 || len(got.Content) != 0 {
		t.Fatalf("unexpected block %+v", got)
	}
}

// TestPropertyDatablockRoundTrip fuzzes datablock encode/decode.
func TestPropertyDatablockRoundTrip(t *testing.T) {
	check := func(gen uint32, counter uint64, payloads [][]byte) bool {
		db := &types.Datablock{Ref: types.DatablockRef{Generator: types.ReplicaID(gen), Counter: counter}}
		for i, p := range payloads {
			db.Requests = append(db.Requests, types.Request{ClientID: uint64(i), Seq: counter, Payload: p})
		}
		got, err := UnmarshalDatablock(MarshalDatablock(db))
		if err != nil {
			return false
		}
		if got.Ref != db.Ref || len(got.Requests) != len(db.Requests) {
			return false
		}
		for i := range db.Requests {
			if !bytes.Equal(got.Requests[i].Payload, db.Requests[i].Payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyGarbageInput feeds random bytes to the decoders; they must
// error or succeed but never panic.
func TestPropertyGarbageInput(t *testing.T) {
	check := func(data []byte) bool {
		_, _ = UnmarshalDatablock(data)
		_, _ = UnmarshalBFTblock(&Reader{Buf: data})
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
