// Package codec provides the deterministic binary wire encoding used by the
// TCP transport and by Leopard's retrieval mechanism (datablocks are
// serialized before erasure coding so chunks are well-defined byte ranges).
//
// Encoding conventions: big-endian fixed-width integers, length-prefixed
// byte strings (uint32 lengths), no varints — simple, unambiguous, and
// cheap to bound-check.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"leopard/internal/types"
)

// Errors returned by decoders.
var (
	ErrTruncated = errors.New("codec: truncated input")
	ErrOversize  = errors.New("codec: length prefix exceeds limit")
)

// MaxElements bounds decoded collection sizes to prevent memory-exhaustion
// on malformed input.
const MaxElements = 1 << 22

// Writer appends primitives to a byte slice.
type Writer struct {
	Buf []byte
}

// maxPooledWriter caps the buffer capacity retained by the Writer pool so
// one oversized message does not pin memory forever.
const maxPooledWriter = 4 << 20

var writerPool = sync.Pool{New: func() any { return new(Writer) }}

// GetWriter returns a pooled Writer with an empty buffer. Hot marshalling
// paths (the leader's per-datablock encode, wire framing) use this to
// avoid a fresh backing array per message; return it with PutWriter once
// the bytes have been copied out or are no longer needed.
func GetWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.Buf = w.Buf[:0]
	return w
}

// PutWriter returns w to the pool. The caller must not retain w or w.Buf
// after the call.
func PutWriter(w *Writer) {
	if cap(w.Buf) > maxPooledWriter {
		w.Buf = nil
	}
	writerPool.Put(w)
}

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.Buf = append(w.Buf, v) }

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) {
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], v)
	w.Buf = append(w.Buf, tmp[:]...)
}

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], v)
	w.Buf = append(w.Buf, tmp[:]...)
}

// Bytes appends a uint32 length prefix followed by b.
func (w *Writer) Bytes(b []byte) {
	w.U32(uint32(len(b)))
	w.Buf = append(w.Buf, b...)
}

// Hash appends a fixed 32-byte hash.
func (w *Writer) Hash(h types.Hash) { w.Buf = append(w.Buf, h[:]...) }

// Reader consumes primitives from a byte slice.
type Reader struct {
	Buf []byte
	off int
	err error
}

// Err returns the first decoding error encountered.
func (r *Reader) Err() error { return r.err }

// Remaining returns the unread byte count.
func (r *Reader) Remaining() int { return len(r.Buf) - r.off }

func (r *Reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.Buf) {
		r.err = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, r.off, len(r.Buf))
		return false
	}
	return true
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.Buf[r.off]
	r.off++
	return v
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.Buf[r.off:])
	r.off += 4
	return v
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.Buf[r.off:])
	r.off += 8
	return v
}

// Bytes reads a length-prefixed byte string (copied out).
func (r *Reader) Bytes() []byte {
	n := int(r.U32())
	if r.err != nil {
		return nil
	}
	if n > MaxElements {
		r.err = fmt.Errorf("%w: %d", ErrOversize, n)
		return nil
	}
	if !r.need(n) {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.Buf[r.off:])
	r.off += n
	return out
}

// Hash reads a fixed 32-byte hash.
func (r *Reader) Hash() types.Hash {
	var h types.Hash
	if !r.need(32) {
		return h
	}
	copy(h[:], r.Buf[r.off:])
	r.off += 32
	return h
}

// MarshalRequest encodes one request.
func MarshalRequest(w *Writer, req types.Request) {
	w.U64(req.ClientID)
	w.U64(req.Seq)
	w.Bytes(req.Payload)
}

// UnmarshalRequest decodes one request.
func UnmarshalRequest(r *Reader) types.Request {
	return types.Request{
		ClientID: r.U64(),
		Seq:      r.U64(),
		Payload:  r.Bytes(),
	}
}

// MarshalDatablock encodes a datablock to bytes. The encoding is canonical:
// equal datablocks produce equal bytes.
func MarshalDatablock(d *types.Datablock) []byte {
	w := &Writer{Buf: make([]byte, 0, d.Size()+16)}
	MarshalDatablockTo(w, d)
	return w.Buf
}

// MarshalDatablockTo appends the canonical datablock encoding to w,
// letting callers reuse a pooled Writer instead of allocating per block.
func MarshalDatablockTo(w *Writer, d *types.Datablock) {
	w.U32(uint32(d.Ref.Generator))
	w.U64(d.Ref.Counter)
	w.U32(uint32(len(d.Requests)))
	for _, req := range d.Requests {
		MarshalRequest(w, req)
	}
}

// UnmarshalDatablock decodes a datablock.
func UnmarshalDatablock(buf []byte) (*types.Datablock, error) {
	r := &Reader{Buf: buf}
	d := &types.Datablock{}
	d.Ref.Generator = types.ReplicaID(r.U32())
	d.Ref.Counter = r.U64()
	count := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if count > MaxElements {
		return nil, fmt.Errorf("%w: %d requests", ErrOversize, count)
	}
	d.Requests = make([]types.Request, 0, count)
	for i := 0; i < count; i++ {
		d.Requests = append(d.Requests, UnmarshalRequest(r))
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	return d, nil
}

// MarshalBFTblock encodes a BFTblock.
func MarshalBFTblock(w *Writer, b *types.BFTblock) {
	w.U64(uint64(b.View))
	w.U64(uint64(b.Seq))
	w.U32(uint32(len(b.Content)))
	for _, h := range b.Content {
		w.Hash(h)
	}
}

// UnmarshalBFTblock decodes a BFTblock.
func UnmarshalBFTblock(r *Reader) (*types.BFTblock, error) {
	b := &types.BFTblock{
		View: types.View(r.U64()),
		Seq:  types.SeqNum(r.U64()),
	}
	count := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if count > MaxElements {
		return nil, fmt.Errorf("%w: %d links", ErrOversize, count)
	}
	b.Content = make([]types.Hash, 0, count)
	for i := 0; i < count; i++ {
		b.Content = append(b.Content, r.Hash())
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	return b, nil
}
