// Package codec provides the deterministic binary wire encoding used by the
// TCP transport and by Leopard's retrieval mechanism (datablocks are
// serialized before erasure coding so chunks are well-defined byte ranges).
//
// Encoding conventions: big-endian fixed-width integers, length-prefixed
// byte strings (uint32 lengths), no varints — simple, unambiguous, and
// cheap to bound-check.
//
// # Frame ownership and borrow mode
//
// A Reader has two modes for variable-length fields. In the default
// (copying) mode, Bytes allocates and copies each field out of the input
// buffer, so decoded values are independent of it. In borrow mode
// (Reader.Borrow, or BorrowBytes called directly), Bytes returns sub-slices
// of Reader.Buf instead: decoding allocates nothing per field, and
// ownership of the input buffer transfers to the decoded value.
//
// The contract for borrow-mode decoding is:
//
//   - The caller must own the buffer outright: it was freshly allocated for
//     this decode (e.g. one TCP frame per message) and will never be
//     modified or recycled afterwards. Pooled or reused buffers must use
//     the copying mode.
//   - The decoded value and all byte fields reached from it alias the
//     buffer. Retaining any one of them (a mempool'd request payload, a
//     retrieval chunk, a stored proof) keeps the whole buffer alive; that
//     is the intended trade — one backing array per frame instead of one
//     per field. A consumer that wants to retain a small field without
//     pinning a large frame must copy it explicitly.
//   - Borrowed slices are returned with capacity clipped to their length
//     (three-index sub-slices), so appending to one cannot scribble over
//     neighbouring fields.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"leopard/internal/types"
)

// Errors returned by decoders.
var (
	ErrTruncated = errors.New("codec: truncated input")
	ErrOversize  = errors.New("codec: length prefix exceeds limit")
	ErrTrailing  = errors.New("codec: trailing bytes after message")
)

// MaxElements bounds decoded collection counts (requests per datablock,
// hashes per block, blocks per view-change) to prevent memory-exhaustion on
// malformed input. It is a count of elements, not a byte length — byte
// strings are bounded by MaxBytesLen.
const MaxElements = 1 << 22

// MaxBytesLen bounds a single length-prefixed byte string. It is sized for
// the largest legal field — a retrieval chunk or request payload inside a
// maximum-size frame — and matches the TCP transport's default frame cap
// (64 MiB), so any field that fits in a legal frame decodes.
const MaxBytesLen = 64 << 20

// Writer appends primitives to a byte slice.
type Writer struct {
	Buf []byte
}

// maxPooledWriter caps the buffer capacity retained by the Writer pool so
// one oversized message does not pin memory forever.
const maxPooledWriter = 4 << 20

var writerPool = sync.Pool{New: func() any { return new(Writer) }}

// GetWriter returns a pooled Writer with an empty buffer. Hot marshalling
// paths (the leader's per-datablock encode, wire framing) use this to
// avoid a fresh backing array per message; return it with PutWriter once
// the bytes have been copied out or are no longer needed.
func GetWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.Buf = w.Buf[:0]
	return w
}

// PutWriter returns w to the pool. The caller must not retain w or w.Buf
// after the call.
func PutWriter(w *Writer) {
	if cap(w.Buf) > maxPooledWriter {
		w.Buf = nil
	}
	writerPool.Put(w)
}

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.Buf = append(w.Buf, v) }

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) {
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], v)
	w.Buf = append(w.Buf, tmp[:]...)
}

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], v)
	w.Buf = append(w.Buf, tmp[:]...)
}

// Bytes appends a uint32 length prefix followed by b.
func (w *Writer) Bytes(b []byte) {
	w.U32(uint32(len(b)))
	w.Buf = append(w.Buf, b...)
}

// Hash appends a fixed 32-byte hash.
func (w *Writer) Hash(h types.Hash) { w.Buf = append(w.Buf, h[:]...) }

// Reader consumes primitives from a byte slice.
type Reader struct {
	Buf []byte
	// Borrow makes Bytes return sub-slices of Buf instead of copies. See
	// the package doc for the ownership contract the caller must satisfy.
	Borrow bool
	off    int
	err    error
}

// Err returns the first decoding error encountered.
func (r *Reader) Err() error { return r.err }

// Fail records err as the reader's sticky decoding error (first error
// wins). Decoders layered on top of Reader use it to surface structural
// violations — bad counts, non-canonical flags — through the same channel
// as truncation, so a caller checking Err cannot miss them.
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Remaining returns the unread byte count.
func (r *Reader) Remaining() int { return len(r.Buf) - r.off }

// Finish returns the reader's terminal state: the sticky error if one was
// recorded, otherwise ErrTrailing if unread bytes remain. Decoders of
// complete messages call it so that non-canonical frames carrying trailing
// garbage are rejected rather than silently accepted.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if rem := r.Remaining(); rem != 0 {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, rem)
	}
	return nil
}

func (r *Reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.Buf) {
		r.err = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, r.off, len(r.Buf))
		return false
	}
	return true
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.Buf[r.off]
	r.off++
	return v
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.Buf[r.off:])
	r.off += 4
	return v
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.Buf[r.off:])
	r.off += 8
	return v
}

// Bytes reads a length-prefixed byte string. In the default mode the field
// is copied out; with Borrow set it sub-slices Buf (see BorrowBytes).
func (r *Reader) Bytes() []byte {
	if r.Borrow {
		return r.BorrowBytes()
	}
	n := r.bytesLen()
	if n < 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.Buf[r.off:])
	r.off += n
	return out
}

// BorrowBytes reads a length-prefixed byte string as a sub-slice of Buf,
// with capacity clipped to its length. No bytes are copied: the returned
// slice aliases Buf and stays valid exactly as long as Buf does. Callers
// must satisfy the ownership contract in the package doc.
func (r *Reader) BorrowBytes() []byte {
	n := r.bytesLen()
	if n < 0 {
		return nil
	}
	out := r.Buf[r.off : r.off+n : r.off+n]
	r.off += n
	return out
}

// bytesLen consumes and bound-checks a byte-string length prefix, returning
// -1 after recording an error. The bound is MaxBytesLen (a byte length),
// not MaxElements (a collection count). The n < 0 arm matters on 32-bit
// platforms, where int(uint32) can wrap negative and would otherwise slip
// past both bounds into a panic.
func (r *Reader) bytesLen() int {
	n := int(r.U32())
	if r.err != nil {
		return -1
	}
	if n < 0 || n > MaxBytesLen {
		r.err = fmt.Errorf("%w: %d bytes", ErrOversize, uint32(n))
		return -1
	}
	if !r.need(n) {
		return -1
	}
	return n
}

// Hash reads a fixed 32-byte hash.
func (r *Reader) Hash() types.Hash {
	var h types.Hash
	if !r.need(32) {
		return h
	}
	copy(h[:], r.Buf[r.off:])
	r.off += 32
	return h
}

// MarshalRequest encodes one request.
func MarshalRequest(w *Writer, req types.Request) {
	w.U64(req.ClientID)
	w.U64(req.Seq)
	w.Bytes(req.Payload)
}

// UnmarshalRequest decodes one request.
func UnmarshalRequest(r *Reader) types.Request {
	return types.Request{
		ClientID: r.U64(),
		Seq:      r.U64(),
		Payload:  r.Bytes(),
	}
}

// MarshalDatablock encodes a datablock to bytes. The encoding is canonical:
// equal datablocks produce equal bytes.
func MarshalDatablock(d *types.Datablock) []byte {
	w := &Writer{Buf: make([]byte, 0, d.Size()+16)}
	MarshalDatablockTo(w, d)
	return w.Buf
}

// MarshalDatablockTo appends the canonical datablock encoding to w,
// letting callers reuse a pooled Writer instead of allocating per block.
func MarshalDatablockTo(w *Writer, d *types.Datablock) {
	w.U32(uint32(d.Ref.Generator))
	w.U64(d.Ref.Counter)
	w.U32(uint32(len(d.Requests)))
	for _, req := range d.Requests {
		MarshalRequest(w, req)
	}
}

// UnmarshalDatablock decodes a datablock, copying request payloads out of
// buf. The whole of buf must be consumed: trailing bytes are rejected, so
// the encoding stays canonical (one datablock, one byte string).
func UnmarshalDatablock(buf []byte) (*types.Datablock, error) {
	return unmarshalDatablock(&Reader{Buf: buf})
}

// UnmarshalDatablockBorrowed decodes a datablock whose request payloads
// sub-slice buf: ownership of buf transfers to the returned block, per the
// package ownership contract. Like UnmarshalDatablock it rejects trailing
// bytes.
func UnmarshalDatablockBorrowed(buf []byte) (*types.Datablock, error) {
	return unmarshalDatablock(&Reader{Buf: buf, Borrow: true})
}

func unmarshalDatablock(r *Reader) (*types.Datablock, error) {
	d, err := UnmarshalDatablockFrom(r)
	if err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return d, nil
}

// UnmarshalDatablockFrom decodes a datablock from r in r's mode, without a
// trailing-bytes check (the datablock may be embedded in a larger frame
// whose decoder performs the terminal Finish).
func UnmarshalDatablockFrom(r *Reader) (*types.Datablock, error) {
	d := &types.Datablock{}
	d.Ref.Generator = types.ReplicaID(r.U32())
	d.Ref.Counter = r.U64()
	count := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if count < 0 || count > MaxElements { // < 0: 32-bit int(uint32) wrap
		return nil, fmt.Errorf("%w: %d requests", ErrOversize, uint32(count))
	}
	// A request occupies at least 20 bytes on the wire; capping the
	// pre-allocation by what the buffer could possibly hold keeps a lying
	// count from forcing a huge allocation before truncation is detected.
	capHint := count
	if most := r.Remaining() / 20; capHint > most {
		capHint = most
	}
	d.Requests = make([]types.Request, 0, capHint)
	for i := 0; i < count && r.Err() == nil; i++ {
		d.Requests = append(d.Requests, UnmarshalRequest(r))
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	return d, nil
}

// MarshalBFTblock encodes a BFTblock.
func MarshalBFTblock(w *Writer, b *types.BFTblock) {
	w.U64(uint64(b.View))
	w.U64(uint64(b.Seq))
	w.U32(uint32(len(b.Content)))
	for _, h := range b.Content {
		w.Hash(h)
	}
}

// UnmarshalBFTblock decodes a BFTblock.
func UnmarshalBFTblock(r *Reader) (*types.BFTblock, error) {
	b := &types.BFTblock{
		View: types.View(r.U64()),
		Seq:  types.SeqNum(r.U64()),
	}
	count := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if count < 0 || count > MaxElements { // < 0: 32-bit int(uint32) wrap
		return nil, fmt.Errorf("%w: %d links", ErrOversize, uint32(count))
	}
	capHint := count
	if most := r.Remaining() / 32; capHint > most {
		capHint = most
	}
	b.Content = make([]types.Hash, 0, capHint)
	for i := 0; i < count && r.Err() == nil; i++ {
		b.Content = append(b.Content, r.Hash())
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	return b, nil
}
