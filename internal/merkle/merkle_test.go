package merkle

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"leopard/internal/types"
)

func leaves(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("leaf-%d-payload", i))
	}
	return out
}

func TestEmptyTree(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty tree must be rejected")
	}
}

func TestSingleLeaf(t *testing.T) {
	tree, err := New(leaves(1))
	if err != nil {
		t.Fatal(err)
	}
	proof, err := tree.Prove(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(tree.Root(), proof, leaves(1)[0]); err != nil {
		t.Fatal(err)
	}
}

func TestProveVerifyAllSizes(t *testing.T) {
	for n := 1; n <= 33; n++ {
		ls := leaves(n)
		tree, err := New(ls)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			proof, err := tree.Prove(i)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if err := Verify(tree.Root(), proof, ls[i]); err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
		}
	}
}

func TestProofRejectsTampering(t *testing.T) {
	ls := leaves(16)
	tree, err := New(ls)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := tree.Prove(5)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong leaf data.
	if err := Verify(tree.Root(), proof, []byte("evil")); err == nil {
		t.Error("tampered leaf must fail verification")
	}
	// Wrong index (proof for 5 presented as 6).
	wrongIdx := proof
	wrongIdx.Index = 6
	if err := Verify(tree.Root(), wrongIdx, ls[6]); err == nil {
		t.Error("proof with swapped index must fail")
	}
	// Tampered sibling hash.
	tampered := Proof{Index: proof.Index, Steps: append([]ProofStep(nil), proof.Steps...)}
	tampered.Steps[0].Hash[0] ^= 1
	if err := Verify(tree.Root(), tampered, ls[5]); err == nil {
		t.Error("tampered proof step must fail")
	}
	// Wrong root.
	var otherRoot types.Hash
	if err := Verify(otherRoot, proof, ls[5]); err == nil {
		t.Error("wrong root must fail")
	}
}

func TestLeafIndexDomainSeparation(t *testing.T) {
	// Two trees whose leaves have identical bytes but different positions
	// must have different roots, or position-swap attacks would verify.
	a, err := New([][]byte{[]byte("x"), []byte("y")})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New([][]byte{[]byte("y"), []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if a.Root() == b.Root() {
		t.Fatal("roots must differ when leaf order differs")
	}
}

func TestProveOutOfRange(t *testing.T) {
	tree, err := New(leaves(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Prove(-1); err == nil {
		t.Error("negative index must fail")
	}
	if _, err := tree.Prove(4); err == nil {
		t.Error("index == leaf count must fail")
	}
}

func TestProofSizeGrowsLogarithmically(t *testing.T) {
	small, _ := New(leaves(4))
	big, _ := New(leaves(256))
	ps, _ := small.Prove(0)
	pb, _ := big.Prove(0)
	if len(ps.Steps) != 2 {
		t.Errorf("4 leaves: %d steps, want 2", len(ps.Steps))
	}
	if len(pb.Steps) != 8 {
		t.Errorf("256 leaves: %d steps, want 8", len(pb.Steps))
	}
	if ps.Size() >= pb.Size() {
		t.Error("proof size must grow with the tree")
	}
}

// TestPropertyRandomLeaves fuzzes tree construction and verification.
func TestPropertyRandomLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	check := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%64 + 1
		ls := make([][]byte, n)
		r := rand.New(rand.NewSource(seed))
		for i := range ls {
			ls[i] = make([]byte, r.Intn(100))
			r.Read(ls[i])
		}
		tree, err := New(ls)
		if err != nil {
			return false
		}
		idx := rng.Intn(n)
		proof, err := tree.Prove(idx)
		if err != nil {
			return false
		}
		return Verify(tree.Root(), proof, ls[idx]) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
