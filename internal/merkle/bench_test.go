package merkle

import (
	"math/rand"
	"testing"
)

// BenchmarkMerkleNew measures tree construction over 64 chunks of 16 KiB
// (one erasure-coded 1 MiB datablock at n=64), the per-response cost of
// Leopard's retrieval path. MB/s via b.SetBytes.
func BenchmarkMerkleNew(b *testing.B) {
	const (
		nLeaves  = 64
		leafSize = 16 * 1024
	)
	rng := rand.New(rand.NewSource(9))
	ls := make([][]byte, nLeaves)
	for i := range ls {
		ls[i] = make([]byte, leafSize)
		rng.Read(ls[i])
	}
	b.SetBytes(int64(nLeaves * leafSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(ls); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMerkleProveVerify measures one prove+verify round trip, the
// per-chunk cost at a retrieval responder and requester.
func BenchmarkMerkleProveVerify(b *testing.B) {
	const (
		nLeaves  = 64
		leafSize = 16 * 1024
	)
	rng := rand.New(rand.NewSource(9))
	ls := make([][]byte, nLeaves)
	for i := range ls {
		ls[i] = make([]byte, leafSize)
		rng.Read(ls[i])
	}
	tree, err := New(ls)
	if err != nil {
		b.Fatal(err)
	}
	root := tree.Root()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i % nLeaves
		proof, err := tree.Prove(idx)
		if err != nil {
			b.Fatal(err)
		}
		if err := Verify(root, proof, ls[idx]); err != nil {
			b.Fatal(err)
		}
	}
}
