// Package merkle implements a binary Merkle tree with inclusion proofs.
//
// Leopard's retrieval mechanism (Alg. 3) builds a Merkle tree over the
// erasure-coded chunks of a datablock so that a replica can verify each
// received chunk individually against the tree root before decoding.
package merkle

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"leopard/internal/types"
)

// Errors returned by proof verification.
var (
	ErrEmptyTree    = errors.New("merkle: tree has no leaves")
	ErrIndexRange   = errors.New("merkle: leaf index out of range")
	ErrProofInvalid = errors.New("merkle: proof does not verify against root")
)

// Domain-separation prefixes prevent second-preimage attacks where an inner
// node is presented as a leaf.
var (
	leafPrefix  = []byte{0x00}
	innerPrefix = []byte{0x01}
)

// Tree is an immutable Merkle tree over a fixed set of leaves. Odd nodes at
// each level are promoted (not duplicated), so the tree is well-defined for
// any leaf count >= 1.
type Tree struct {
	levels [][]types.Hash // levels[0] = leaf hashes, last level = [root]
}

// Per-node hashing deliberately calls sha256.New/Write/Sum with the
// concrete digest in one function: the compiler devirtualizes and
// stack-allocates the whole state, so each node hash is allocation-free (a
// sync.Pool of hash.Hash interfaces measures strictly worse — the
// interface call forces Sum's output to escape). BenchmarkMerkleNew pins
// the resulting allocs/op.

func hashLeaf(index int, data []byte) types.Hash {
	h := sha256.New()
	h.Write(leafPrefix)
	var idx [4]byte
	binary.BigEndian.PutUint32(idx[:], uint32(index))
	h.Write(idx[:])
	h.Write(data)
	var out types.Hash
	h.Sum(out[:0])
	return out
}

func hashInner(left, right types.Hash) types.Hash {
	h := sha256.New()
	h.Write(innerPrefix)
	h.Write(left[:])
	h.Write(right[:])
	var out types.Hash
	h.Sum(out[:0])
	return out
}

// New builds a tree over the given leaves. The levels are sliced out of
// one contiguous backing array sized by summing the level widths, so
// construction allocates O(1) times regardless of leaf count.
func New(leaves [][]byte) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, ErrEmptyTree
	}
	total := 0
	for w := len(leaves); ; w = (w + 1) / 2 {
		total += w
		if w == 1 {
			break
		}
	}
	backing := make([]types.Hash, total)
	level := backing[:len(leaves)]
	backing = backing[len(leaves):]
	for i, l := range leaves {
		level[i] = hashLeaf(i, l)
	}
	t := &Tree{levels: [][]types.Hash{level}}
	for len(level) > 1 {
		next := backing[:(len(level)+1)/2]
		backing = backing[len(next):]
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next[i/2] = hashInner(level[i], level[i+1])
			} else {
				next[i/2] = level[i] // promote odd node
			}
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t, nil
}

// Root returns the tree root.
func (t *Tree) Root() types.Hash { return t.levels[len(t.levels)-1][0] }

// LeafCount returns the number of leaves.
func (t *Tree) LeafCount() int { return len(t.levels[0]) }

// ProofStep is one sibling hash on the path from a leaf to the root.
type ProofStep struct {
	Hash  types.Hash
	Right bool // sibling is on the right of the running hash
}

// Proof is an inclusion proof for one leaf.
type Proof struct {
	Index int
	Steps []ProofStep
}

// Size returns the wire size of the proof in bytes (β·logn in the paper's
// cost model, plus the 4-byte index).
func (p Proof) Size() int { return 4 + len(p.Steps)*(32+1) }

// Prove returns the inclusion proof for leaf index.
func (t *Tree) Prove(index int) (Proof, error) {
	if index < 0 || index >= t.LeafCount() {
		return Proof{}, fmt.Errorf("%w: %d of %d", ErrIndexRange, index, t.LeafCount())
	}
	p := Proof{Index: index, Steps: make([]ProofStep, 0, len(t.levels)-1)}
	pos := index
	for _, level := range t.levels[:len(t.levels)-1] {
		sibling := pos ^ 1
		if sibling < len(level) {
			p.Steps = append(p.Steps, ProofStep{Hash: level[sibling], Right: sibling > pos})
		}
		pos /= 2
	}
	return p, nil
}

// Verify checks that leafData is the leaf at proof.Index under root.
func Verify(root types.Hash, proof Proof, leafData []byte) error {
	if proof.Index < 0 {
		return ErrIndexRange
	}
	running := hashLeaf(proof.Index, leafData)
	for _, step := range proof.Steps {
		if step.Right {
			running = hashInner(running, step.Hash)
		} else {
			running = hashInner(step.Hash, running)
		}
	}
	if running != root {
		return ErrProofInvalid
	}
	return nil
}
