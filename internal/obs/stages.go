package obs

import (
	"sort"
	"time"

	"leopard/internal/metrics"
)

// Stage reduction: collapse raw event traces into the paper's Table IV
// stage-latency breakdown. Each stage is the gap between two lifecycle
// events of the same object, taking the earliest observation of each side
// across all replicas of a run:
//
//	dissemination: datablock packed  → ready quorum      (per datablock)
//	notarization:  block proposed    → σ1 certificate    (per serial number)
//	confirmation:  σ1 certificate    → σ2 certificate    (per serial number)
//	execution:     σ2 certificate    → block executed    (per serial number)
//
// Durations are summed per stage; percentages are of the summed total. The
// computation only ever sums and min-reduces integers, so it is
// deterministic regardless of map iteration order.

const (
	StageDissemination = "dissemination (packed->ready)"
	StageNotarization  = "notarization (proposed->sigma1)"
	StageConfirmation  = "confirmation (sigma1->sigma2)"
	StageExecution     = "execution (sigma2->executed)"
)

// stagePair accumulates the earliest begin/end observation for one object.
type stagePair struct {
	begin, end time.Duration
	hasB, hasE bool
}

func (p *stagePair) observe(at time.Duration, isBegin bool) {
	if isBegin {
		if !p.hasB || at < p.begin {
			p.begin, p.hasB = at, true
		}
	} else {
		if !p.hasE || at < p.end {
			p.end, p.hasE = at, true
		}
	}
}

func (p *stagePair) gap() (time.Duration, bool) {
	if !p.hasB || !p.hasE || p.end < p.begin {
		return 0, false
	}
	return p.end - p.begin, true
}

// stageEdges maps each stage to its begin/end event kinds.
var stageEdges = []struct {
	name       string
	begin, end EventKind
}{
	{StageDissemination, EvDatablockPacked, EvDatablockReady},
	{StageNotarization, EvBlockProposed, EvSigma1Cert},
	{StageConfirmation, EvSigma1Cert, EvSigma2Cert},
	{StageExecution, EvSigma2Cert, EvBlockExecuted},
}

// StageBreakdown reduces the given runs to Table IV-style rows (sorted by
// stage name, percent of the summed total). Stages with no completed pairs
// are omitted; an empty input yields no rows.
func StageBreakdown(runs []*TraceSet) []metrics.StageRow {
	totals := make(map[string]time.Duration)
	for _, run := range runs {
		for si := range stageEdges {
			pairs := make(map[uint64]*stagePair)
			observe := func(id uint64, at time.Duration, isBegin bool) {
				p := pairs[id]
				if p == nil {
					p = &stagePair{}
					pairs[id] = p
				}
				p.observe(at, isBegin)
			}
			for tid := 0; tid < run.Size(); tid++ {
				for _, e := range run.Tracer(tid).Events() {
					if e.Kind == stageEdges[si].begin {
						observe(e.ID, e.At, true)
					}
					if e.Kind == stageEdges[si].end {
						observe(e.ID, e.At, false)
					}
				}
			}
			for _, p := range pairs {
				if d, ok := p.gap(); ok {
					totals[stageEdges[si].name] += d
				}
			}
		}
	}
	var total time.Duration
	for _, d := range totals {
		total += d
	}
	names := make([]string, 0, len(totals))
	for n := range totals {
		names = append(names, n)
	}
	sort.Strings(names)
	rows := make([]metrics.StageRow, 0, len(names))
	for _, n := range names {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(totals[n]) / float64(total)
		}
		rows = append(rows, metrics.StageRow{Stage: n, Total: totals[n], Percent: pct})
	}
	return rows
}

// StageBreakdown reduces every collected run.
func (c *Collector) StageBreakdown() []metrics.StageRow { return StageBreakdown(c.Runs()) }
