package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(time.Second, EvSigma1Cert, 1, 2, 3) // must not panic
	if tr.Total() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer should record nothing")
	}
	var ts *TraceSet
	if ts.Tracer(0) != nil || ts.Size() != 0 || ts.DumpLast(8) != "" {
		t.Fatal("nil trace set should be inert")
	}
	ts.Tracer(3).Emit(0, EvBlockExecuted, 0, 0, 0)
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(time.Duration(i)*time.Millisecond, EvBlockExecuted, 0, uint64(i), 0)
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(6 + i); e.ID != want {
			t.Errorf("evs[%d].ID = %d, want %d (oldest-first order after wrap)", i, e.ID, want)
		}
	}
	last := tr.Last(2)
	if len(last) != 2 || last[0].ID != 8 || last[1].ID != 9 {
		t.Fatalf("Last(2) = %+v, want ids 8,9", last)
	}
}

func TestTracerEmitZeroAlloc(t *testing.T) {
	tr := NewTracer(64)
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(time.Millisecond, EvSigma2Cert, 1, 42, 0)
	})
	if allocs != 0 {
		t.Fatalf("Emit allocates %v times per call, want 0", allocs)
	}
	reg := NewRegistry()
	tr.MirrorCounts(reg, "leopard")
	allocs = testing.AllocsPerRun(1000, func() {
		tr.Emit(time.Millisecond, EvSigma2Cert, 1, 42, 0)
	})
	if allocs != 0 {
		t.Fatalf("Emit with mirrored counters allocates %v times per call, want 0", allocs)
	}
}

func TestMirrorCounts(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(8)
	tr.MirrorCounts(reg, "leopard")
	tr.Emit(0, EvSigma1Cert, 0, 1, 0)
	tr.Emit(0, EvSigma1Cert, 0, 2, 0)
	tr.Emit(0, EvBlockExecuted, 0, 1, 0)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `leopard_events_total{kind="sigma1_cert"} 2`) {
		t.Fatalf("missing sigma1 counter in:\n%s", out)
	}
	if !strings.Contains(out, `leopard_events_total{kind="block_executed"} 1`) {
		t.Fatalf("missing executed counter in:\n%s", out)
	}
}

// fillTraceSet emits a tiny deterministic lifecycle across 2 replicas.
func fillTraceSet(ts *TraceSet) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	ts.Tracer(0).Emit(ms(1), EvDatablockPacked, 0, 0xabc, 5)
	ts.Tracer(1).Emit(ms(3), EvDatablockReady, 0, 0xabc, 0)
	ts.Tracer(0).Emit(ms(4), EvBlockProposed, 0, 7, 1)
	ts.Tracer(0).Emit(ms(6), EvSigma1Cert, 0, 7, 0)
	ts.Tracer(1).Emit(ms(7), EvSigma1Cert, 0, 7, 0)
	ts.Tracer(0).Emit(ms(9), EvSigma2Cert, 0, 7, 0)
	ts.Tracer(0).Emit(ms(10), EvBlockExecuted, 0, 7, 5)
	ts.Tracer(1).Emit(ms(11), EvViewChangeStart, 1, 1, 0)
	ts.Tracer(1).Emit(ms(15), EvViewChangeDone, 1, 1, 0)
}

func TestChromeExportValidJSONAndDeterministic(t *testing.T) {
	export := func() []byte {
		c := NewCollector(128)
		ts := c.NewRun("unit", 2)
		fillTraceSet(ts)
		var buf bytes.Buffer
		if err := c.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatal("identical trace contents exported different bytes")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, a)
	}
	// 2 metadata names + 1 process_name + 9 events.
	if len(doc.TraceEvents) != 12 {
		t.Fatalf("trace has %d events, want 12:\n%s", len(doc.TraceEvents), a)
	}
	sawAsync := false
	for _, e := range doc.TraceEvents {
		if e["ph"] == "b" && e["name"] == "view_change" {
			sawAsync = true
		}
	}
	if !sawAsync {
		t.Fatalf("no async view_change begin event in export:\n%s", a)
	}
}

func TestStageBreakdown(t *testing.T) {
	ts := NewTraceSet("unit", 2, 128)
	fillTraceSet(ts)
	rows := StageBreakdown([]*TraceSet{ts})
	want := map[string]time.Duration{
		StageDissemination: 2 * time.Millisecond, // packed@1 -> ready@3
		StageNotarization:  2 * time.Millisecond, // proposed@4 -> earliest sigma1@6
		StageConfirmation:  3 * time.Millisecond, // sigma1@6 -> sigma2@9
		StageExecution:     1 * time.Millisecond, // sigma2@9 -> executed@10
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d: %+v", len(rows), len(want), rows)
	}
	var pct float64
	for _, r := range rows {
		if want[r.Stage] != r.Total {
			t.Errorf("%s: total %v, want %v", r.Stage, r.Total, want[r.Stage])
		}
		pct += r.Percent
	}
	if pct < 99.9 || pct > 100.1 {
		t.Errorf("percentages sum to %v, want ~100", pct)
	}
}

func TestDumpLast(t *testing.T) {
	ts := NewTraceSet("unit", 2, 128)
	fillTraceSet(ts)
	dump := ts.DumpLast(4)
	if !strings.Contains(dump, "replica 0") || !strings.Contains(dump, "replica 1") {
		t.Fatalf("dump missing per-replica sections:\n%s", dump)
	}
	if !strings.Contains(dump, "sigma2_cert") || !strings.Contains(dump, "view_change_done") {
		t.Fatalf("dump missing expected events:\n%s", dump)
	}
}
