package obs

import (
	"bufio"
	"fmt"
	"io"
	"time"
)

// Chrome trace_event export. The output loads in chrome://tracing and
// Perfetto. Layout: one "process" per run (pid = run index, named with the
// run label), one "thread" per replica (tid = replica index). View-change
// and retrieval lifecycles export as async begin/end pairs (ph "b"/"e",
// paired by id, so overlapping retrievals never mis-nest); every other
// event is an instant (ph "i").
//
// The writer is fully deterministic: events are emitted in ring order per
// replica, replicas in index order, runs in creation order, and no map is
// iterated — identically-seeded runs export byte-identical files.

// chromeTS renders a virtual-time offset as the trace_event "ts" field:
// microseconds with nanosecond fraction.
func chromeTS(d time.Duration) string {
	ns := d.Nanoseconds()
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// asyncSpan describes kinds exported as async begin/end pairs.
var asyncSpan = map[EventKind]struct {
	open bool   // begin (true) or end (false)
	name string // span name, shared by the begin and end kinds
	cat  string // category, also the async-pairing namespace
}{
	EvViewChangeStart: {true, "view_change", "viewchange"},
	EvViewChangeDone:  {false, "view_change", "viewchange"},
	EvRetrievalStart:  {true, "retrieval", "retrieval"},
	EvRetrievalDone:   {false, "retrieval", "retrieval"},
}

// WriteChrome writes every collected run as one Chrome trace_event JSON
// document.
func (c *Collector) WriteChrome(w io.Writer) error {
	return writeChromeRuns(w, c.Runs())
}

// WriteChrome writes this run alone as a Chrome trace_event JSON document.
func (ts *TraceSet) WriteChrome(w io.Writer) error {
	if ts == nil {
		return writeChromeRuns(w, nil)
	}
	return writeChromeRuns(w, []*TraceSet{ts})
}

func writeChromeRuns(w io.Writer, runs []*TraceSet) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteByte('\n')
		fmt.Fprintf(bw, format, args...)
	}
	for pid, run := range runs {
		emit(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%q}}`, pid, run.Label)
		for tid := 0; tid < run.Size(); tid++ {
			emit(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"replica %d"}}`,
				pid, tid, tid)
			for _, e := range run.Tracer(tid).Events() {
				if span, ok := asyncSpan[e.Kind]; ok {
					ph := "e"
					if span.open {
						ph = "b"
					}
					emit(`{"name":%q,"cat":%q,"ph":%q,"id":"0x%x","ts":%s,"pid":%d,"tid":%d,"args":{"view":%d,"aux":%d}}`,
						span.name, span.cat, ph, e.ID, chromeTS(e.At), pid, tid, e.View, e.Aux)
					continue
				}
				emit(`{"name":%q,"ph":"i","s":"t","ts":%s,"pid":%d,"tid":%d,"args":{"view":%d,"id":"0x%x","aux":%d}}`,
					e.Kind.String(), chromeTS(e.At), pid, tid, e.View, e.ID, e.Aux)
			}
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}
