package obs

import (
	"reflect"
	"time"
	"unicode"
)

// Struct binding: publish every exported numeric/bool field of a stats
// struct as a gauge named prefix_field_name (snake_case), recursing into
// nested structs. This is what keeps /status and /metrics in lockstep with
// the stats structs automatically — adding a counter to leopard.Node.Stats
// or metrics.StreamStats surfaces it on both endpoints with no hand edits.
//
// time.Duration fields are published in seconds with a _seconds suffix.
// Array/slice/map/string fields are skipped.

// SetStruct binds v's fields into r (creating gauges on first use) and sets
// their current values. v may be a struct or a pointer to one; anything
// else is ignored.
func (r *Registry) SetStruct(prefix string, v any) {
	rv := reflect.ValueOf(v)
	for rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return
		}
		rv = rv.Elem()
	}
	if rv.Kind() != reflect.Struct {
		return
	}
	r.setStructValue(prefix, rv)
}

var durationType = reflect.TypeOf(time.Duration(0))

func (r *Registry) setStructValue(prefix string, rv reflect.Value) {
	rt := rv.Type()
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if !f.IsExported() {
			continue
		}
		fv := rv.Field(i)
		name := prefix + "_" + snakeCase(f.Name)
		switch fv.Kind() {
		case reflect.Struct:
			r.setStructValue(name, fv)
		case reflect.Bool:
			val := 0.0
			if fv.Bool() {
				val = 1.0
			}
			r.Gauge(name, bindHelp(f.Name)).Set(val)
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			if f.Type == durationType {
				r.Gauge(name+"_seconds", bindHelp(f.Name)).
					Set(time.Duration(fv.Int()).Seconds())
				continue
			}
			r.Gauge(name, bindHelp(f.Name)).Set(float64(fv.Int()))
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			r.Gauge(name, bindHelp(f.Name)).Set(float64(fv.Uint()))
		case reflect.Float32, reflect.Float64:
			r.Gauge(name, bindHelp(f.Name)).Set(fv.Float())
		}
	}
}

func bindHelp(field string) string { return "bound from stats field " + field }

// snakeCase converts a Go identifier to snake_case, keeping acronym runs
// together: DatablocksMade → datablocks_made, WALFailed → wal_failed,
// P99Lat → p99_lat.
func snakeCase(s string) string {
	runes := []rune(s)
	out := make([]rune, 0, len(runes)+4)
	for i, c := range runes {
		if unicode.IsUpper(c) {
			prevLower := i > 0 && (unicode.IsLower(runes[i-1]) || unicode.IsDigit(runes[i-1]))
			nextLower := i+1 < len(runes) && unicode.IsLower(runes[i+1])
			if i > 0 && (prevLower || nextLower) {
				out = append(out, '_')
			}
			c = unicode.ToLower(c)
		}
		out = append(out, c)
	}
	return string(out)
}
