package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("leopard_confirmed_total", "confirmed requests").Add(42)
	r.Gauge("leopard_view", "current view").SetInt(3)
	r.Gauge("leopard_ratio", "").Set(0.25)
	r.GaugeFunc("leopard_up", "liveness", func() float64 { return 1 })
	h := r.Histogram("leopard_latency_seconds", "request latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP leopard_confirmed_total confirmed requests",
		"# TYPE leopard_confirmed_total counter",
		"leopard_confirmed_total 42",
		"# TYPE leopard_view gauge",
		"leopard_view 3",
		"leopard_ratio 0.25",
		"leopard_up 1",
		"# TYPE leopard_latency_seconds histogram",
		`leopard_latency_seconds_bucket{le="0.01"} 1`,
		`leopard_latency_seconds_bucket{le="0.1"} 1`,
		`leopard_latency_seconds_bucket{le="1"} 2`,
		`leopard_latency_seconds_bucket{le="+Inf"} 3`,
		"leopard_latency_seconds_sum 5.505",
		"leopard_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// A metric with no help string must still carry a TYPE line.
	if strings.Contains(out, "# HELP leopard_ratio") {
		t.Errorf("unexpected HELP for help-less metric:\n%s", out)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Fatal("re-registering the same counter must return the same instance")
	}
	g1 := r.Gauge("g", "")
	g2 := r.Gauge("g", "")
	if g1 != g2 {
		t.Fatal("re-registering the same gauge must return the same instance")
	}
	if n := r.NumSeries(); n != 2 {
		t.Fatalf("NumSeries = %d, want 2", n)
	}
}

func TestRegistryLabeledSeriesGroupedUnderOneFamily(t *testing.T) {
	r := NewRegistry()
	r.Counter(`ev_total{kind="a"}`, "events").Inc()
	r.Counter(`other_metric`, "").Inc()
	r.Counter(`ev_total{kind="b"}`, "events").Add(2)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// All ev_total series must be contiguous (one family block) even though
	// another metric was registered between them.
	aIdx := strings.Index(out, `ev_total{kind="a"} 1`)
	bIdx := strings.Index(out, `ev_total{kind="b"} 2`)
	oIdx := strings.Index(out, "other_metric 1")
	if aIdx < 0 || bIdx < 0 || oIdx < 0 {
		t.Fatalf("missing series:\n%s", out)
	}
	if !(aIdx < bIdx && (oIdx < aIdx || oIdx > bIdx)) {
		t.Fatalf("labeled series not grouped into one family block:\n%s", out)
	}
	if strings.Count(out, "# TYPE ev_total counter") != 1 {
		t.Fatalf("want exactly one TYPE line for ev_total:\n%s", out)
	}
}

// TestRegistryConcurrentIncrements exercises the lock-free hot paths under
// the race detector: CI runs this package with -race.
func TestRegistryConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{10, 100})
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 200))
				// Concurrent re-registration must also be safe.
				r.Counter("c_total", "").Add(0)
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", g.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
}

func TestCounterIgnoresNegativeAdd(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5 (negative adds ignored)", c.Value())
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(7)
	r.Gauge("b", "").Set(1.5)
	h := r.Histogram("lat", "", []float64{1})
	h.Observe(0.5)
	h.Observe(2)
	snap := r.Snapshot()
	if snap["a_total"] != 7.0 {
		t.Fatalf("a_total = %v, want 7", snap["a_total"])
	}
	if snap["b"] != 1.5 {
		t.Fatalf("b = %v, want 1.5", snap["b"])
	}
	hm, ok := snap["lat"].(map[string]any)
	if !ok {
		t.Fatalf("lat snapshot = %T, want map", snap["lat"])
	}
	if hm["count"] != int64(2) {
		t.Fatalf("lat count = %v, want 2", hm["count"])
	}
	buckets := hm["buckets"].(map[string]int64)
	if buckets["1"] != 1 || buckets["+Inf"] != 2 {
		t.Fatalf("lat buckets = %v", buckets)
	}
}
