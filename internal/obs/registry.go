package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Inc/Add are lock-free and
// allocation-free.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time float value. Set/Add are lock-free and
// allocation-free.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add adds d to the current value.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets
// (Prometheus-style: bounds are inclusive upper limits, plus +Inf).
// Observe is lock-free and allocation-free.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// entry is one registered series.
type entry struct {
	name string // full series name, possibly with a {label="..."} suffix
	base string // metric family name (name up to any '{')
	help string
	typ  string // "counter" | "gauge" | "histogram"
	c    *Counter
	g    *Gauge
	h    *Histogram
	fn   func() float64
}

// Registry holds named metrics and renders them as Prometheus text
// exposition or a JSON snapshot. Registration methods are idempotent by
// series name: registering an existing name returns the existing metric, so
// scrape-time re-binding is cheap and safe.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*entry
	byBase  map[string][]*entry
	baseSeq []string // family emission order (first registration wins)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry), byBase: make(map[string][]*entry)}
}

func baseOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

func (r *Registry) register(name, help, typ string) *entry {
	e := r.byName[name]
	if e != nil {
		return e
	}
	e = &entry{name: name, base: baseOf(name), help: help, typ: typ}
	r.byName[name] = e
	if _, seen := r.byBase[e.base]; !seen {
		r.baseSeq = append(r.baseSeq, e.base)
	}
	r.byBase[e.base] = append(r.byBase[e.base], e)
	return e
}

// Counter registers (or fetches) a counter series. The name may carry a
// fixed label set, e.g. `leopard_events_total{kind="sigma1_cert"}`.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.register(name, help, "counter")
	if e.c == nil {
		e.c = &Counter{}
	}
	return e.c
}

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.register(name, help, "gauge")
	if e.g == nil {
		e.g = &Gauge{}
	}
	return e.g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.register(name, help, "gauge")
	if e.fn == nil {
		e.fn = fn
	}
}

// Histogram registers (or fetches) a histogram with the given inclusive
// upper bucket bounds (+Inf is implicit). Histogram names must not carry
// labels.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.register(name, help, "histogram")
	if e.h == nil {
		e.h = newHistogram(bounds)
	}
	return e.h
}

// snapshot returns families in registration order under the lock.
func (r *Registry) snapshot() [][]*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([][]*entry, 0, len(r.baseSeq))
	for _, base := range r.baseSeq {
		out = append(out, append([]*entry(nil), r.byBase[base]...))
	}
	return out
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (e *entry) value() float64 {
	switch {
	case e.c != nil:
		return float64(e.c.Value())
	case e.g != nil:
		return e.g.Value()
	case e.fn != nil:
		return e.fn()
	}
	return 0
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), families in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, family := range r.snapshot() {
		head := family[0]
		if head.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", head.base, strings.ReplaceAll(head.help, "\n", " "))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", head.base, head.typ)
		for _, e := range family {
			if e.h != nil {
				cum := int64(0)
				for i, b := range e.h.bounds {
					cum += e.h.buckets[i].Load()
					fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", e.base, formatValue(b), cum)
				}
				cum += e.h.buckets[len(e.h.bounds)].Load()
				fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", e.base, cum)
				fmt.Fprintf(bw, "%s_sum %s\n", e.base, formatValue(e.h.Sum()))
				fmt.Fprintf(bw, "%s_count %d\n", e.base, e.h.Count())
				continue
			}
			fmt.Fprintf(bw, "%s %s\n", e.name, formatValue(e.value()))
		}
	}
	return bw.Flush()
}

// Snapshot returns the registry as a flat name→value map (histograms as
// {count, sum, buckets} maps), ready for JSON encoding — this is what
// leopard-node's /status serves, so the status body is generated from the
// registry rather than hand-maintained.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, family := range r.snapshot() {
		for _, e := range family {
			if e.h != nil {
				buckets := make(map[string]int64, len(e.h.bounds)+1)
				cum := int64(0)
				for i, b := range e.h.bounds {
					cum += e.h.buckets[i].Load()
					buckets[formatValue(b)] = cum
				}
				cum += e.h.buckets[len(e.h.bounds)].Load()
				buckets["+Inf"] = cum
				out[e.name] = map[string]any{
					"count": e.h.Count(), "sum": e.h.Sum(), "buckets": buckets,
				}
				continue
			}
			out[e.name] = e.value()
		}
	}
	return out
}

// NumSeries returns the number of registered series (histograms count once).
func (r *Registry) NumSeries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byName)
}
