// Package obs is the observability layer: a deterministic structured
// event-trace facility and a unified metrics registry.
//
// The trace side records typed protocol lifecycle events (request admitted →
// packed → disseminated → σ1-cert → σ2-cert → executed → replied, plus
// view-change, retrieval, state-transfer and credit park/evict spans) into a
// bounded per-replica ring buffer. Every event is timestamped from the
// caller-supplied clock — the package never reads wall-clock time — so
// identically-seeded simnet runs produce byte-identical traces. Traces
// export as Chrome trace_event JSON (chrome.go) and reduce to the paper's
// Table IV stage-latency breakdown (stages.go).
//
// The metrics side (registry.go, bind.go) is a dependency-free registry of
// counters/gauges/histograms with stable names, zero-alloc hot-path
// increments, Prometheus text exposition and a JSON snapshot.
package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// EventKind identifies one lifecycle event type.
type EventKind uint8

// The event catalog. ID/Aux semantics per kind are documented inline; "hash"
// means the first 8 bytes of a digest, big-endian.
const (
	EvNone             EventKind = iota
	EvRequestAdmitted            // id=client, aux=client seq
	EvDatablockPacked            // id=datablock hash, aux=requests packed
	EvDatablockReady             // id=datablock hash, aux=0 (ready quorum reached)
	EvBlockProposed              // id=seq, aux=datablock count (own proposal or accepted proposal)
	EvSigma1Cert                 // id=seq, aux=0 (first-round threshold proof applied)
	EvSigma2Cert                 // id=seq, aux=0 (block confirmed)
	EvBlockExecuted              // id=seq, aux=requests executed
	EvReplySent                  // id=client, aux=client seq
	EvViewChangeStart            // id=target view
	EvViewChangeDone             // id=entered view
	EvRetrievalStart             // id=datablock hash, aux=0
	EvRetrievalDone              // id=datablock hash, aux=1 if recovered via erasure decode, 2 via full block
	EvStateReqSent               // id=from seq, aux=width
	EvStateApplied               // id=seq, aux=0 (transferred record applied)
	EvCheckpointStable           // id=seq
	EvCreditParked               // id=peer, aux=queued bytes
	EvCreditEvicted              // id=peer, aux=evicted bytes
	numEventKinds
)

var kindNames = [numEventKinds]string{
	EvNone:             "none",
	EvRequestAdmitted:  "request_admitted",
	EvDatablockPacked:  "datablock_packed",
	EvDatablockReady:   "datablock_ready",
	EvBlockProposed:    "block_proposed",
	EvSigma1Cert:       "sigma1_cert",
	EvSigma2Cert:       "sigma2_cert",
	EvBlockExecuted:    "block_executed",
	EvReplySent:        "reply_sent",
	EvViewChangeStart:  "view_change_start",
	EvViewChangeDone:   "view_change_done",
	EvRetrievalStart:   "retrieval_start",
	EvRetrievalDone:    "retrieval_done",
	EvStateReqSent:     "state_req_sent",
	EvStateApplied:     "state_applied",
	EvCheckpointStable: "checkpoint_stable",
	EvCreditParked:     "credit_parked",
	EvCreditEvicted:    "credit_evicted",
}

func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one recorded lifecycle event. At is the caller-supplied clock
// reading (virtual time under simnet, runtime-relative monotonic time under
// the TCP runtime).
type Event struct {
	At   time.Duration
	Kind EventKind
	View uint64
	ID   uint64
	Aux  int64
}

// DefaultRingCap is the per-replica event capacity used when callers don't
// choose one.
const DefaultRingCap = 4096

// Tracer is a bounded ring buffer of events for one replica. A nil *Tracer
// is valid and ignores every call, so emit sites need no guards. Emit is
// allocation-free after construction and safe for concurrent use (the TCP
// transport emits from multiple goroutines; under simnet it is simply
// uncontended).
type Tracer struct {
	mu       sync.Mutex
	buf      []Event
	next     int
	total    uint64
	counters []*Counter // optional per-kind mirrors, indexed by EventKind
}

// NewTracer returns a tracer retaining the last capacity events
// (DefaultRingCap if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultRingCap
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// MirrorCounts registers one counter per event kind in reg, named
// prefix_events_total{kind="..."}, and increments it on every Emit. The
// counters are plain registry counters: they survive ring-buffer wraparound
// and make the trace stream visible on /metrics.
func (t *Tracer) MirrorCounts(reg *Registry, prefix string) {
	if t == nil || reg == nil {
		return
	}
	counters := make([]*Counter, numEventKinds)
	for k := EventKind(1); k < numEventKinds; k++ {
		counters[k] = reg.Counter(
			fmt.Sprintf("%s_events_total{kind=%q}", prefix, k.String()),
			"lifecycle trace events by kind")
	}
	t.mu.Lock()
	t.counters = counters
	t.mu.Unlock()
}

// Emit records one event at the given clock reading. Safe on a nil tracer.
func (t *Tracer) Emit(now time.Duration, kind EventKind, view, id uint64, aux int64) {
	if t == nil {
		return
	}
	e := Event{At: now, Kind: kind, View: view, ID: id, Aux: aux}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.next] = e
	}
	t.next++
	if t.next == cap(t.buf) {
		t.next = 0
	}
	t.total++
	counters := t.counters
	t.mu.Unlock()
	if counters != nil && int(kind) < len(counters) && counters[kind] != nil {
		counters[kind].Inc()
	}
}

// Total returns the number of events emitted over the tracer's lifetime
// (including any that have rotated out of the ring).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Events returns the retained events in emission order (oldest first).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) == cap(t.buf) {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Last returns up to n most-recent events in emission order.
func (t *Tracer) Last(n int) []Event {
	evs := t.Events()
	if len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// TraceSet is the per-replica tracer collection for one run (one cluster).
// A nil *TraceSet is valid: Tracer returns nil, which emit sites accept.
type TraceSet struct {
	Label   string
	tracers []*Tracer
}

// NewTraceSet builds n tracers of the given ring capacity.
func NewTraceSet(label string, n, capacity int) *TraceSet {
	ts := &TraceSet{Label: label, tracers: make([]*Tracer, n)}
	for i := range ts.tracers {
		ts.tracers[i] = NewTracer(capacity)
	}
	return ts
}

// Size returns the number of replicas traced.
func (ts *TraceSet) Size() int {
	if ts == nil {
		return 0
	}
	return len(ts.tracers)
}

// Tracer returns replica i's tracer, or nil when ts is nil or i is out of
// range.
func (ts *TraceSet) Tracer(i int) *Tracer {
	if ts == nil || i < 0 || i >= len(ts.tracers) {
		return nil
	}
	return ts.tracers[i]
}

// FormatEvent renders one event as a single text line.
func FormatEvent(e Event) string {
	return fmt.Sprintf("t=%-12v view=%-3d %-18s id=%#016x aux=%d",
		e.At, e.View, e.Kind.String(), e.ID, e.Aux)
}

// DumpLast renders the last n events of every replica as text — the
// post-mortem body the invariant checker attaches to a violation.
func (ts *TraceSet) DumpLast(n int) string {
	if ts == nil {
		return ""
	}
	var sb strings.Builder
	for i, t := range ts.tracers {
		evs := t.Last(n)
		fmt.Fprintf(&sb, "replica %d: %d trace events total, last %d:\n", i, t.Total(), len(evs))
		for _, e := range evs {
			fmt.Fprintf(&sb, "  r%d %s\n", i, FormatEvent(e))
		}
	}
	return sb.String()
}

// Collector accumulates the TraceSets of every traced run in one process
// (e.g. each chaos plan at each scale), for a single combined export.
type Collector struct {
	mu      sync.Mutex
	ringCap int
	runs    []*TraceSet
}

// NewCollector returns a collector whose runs use the given per-replica
// ring capacity (DefaultRingCap if <= 0).
func NewCollector(ringCap int) *Collector {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	return &Collector{ringCap: ringCap}
}

// NewRun registers and returns a TraceSet for a run of n replicas.
func (c *Collector) NewRun(label string, n int) *TraceSet {
	ts := NewTraceSet(label, n, c.ringCap)
	c.mu.Lock()
	c.runs = append(c.runs, ts)
	c.mu.Unlock()
	return ts
}

// Runs returns the registered trace sets in creation order.
func (c *Collector) Runs() []*TraceSet {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*TraceSet(nil), c.runs...)
}
