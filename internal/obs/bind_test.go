package obs

import (
	"testing"
	"time"
)

func TestSnakeCase(t *testing.T) {
	cases := map[string]string{
		"DatablocksMade":     "datablocks_made",
		"WALFailed":          "wal_failed",
		"BFTBlockSize":       "bft_block_size",
		"P99Lat":             "p99_lat",
		"View":               "view",
		"CreditsOutstanding": "credits_outstanding",
		"StateReqsServed":    "state_reqs_served",
		"ID":                 "id",
	}
	for in, want := range cases {
		if got := snakeCase(in); got != want {
			t.Errorf("snakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSetStruct(t *testing.T) {
	type inner struct {
		QueuedBytes int64
		Evictions   int64
	}
	type stats struct {
		ConfirmedRequests int64
		PendingRequests   int
		WALFailed         bool
		Uptime            time.Duration
		Ratio             float64
		View              uint64
		Stream            inner
		Name              string // skipped
		hidden            int64  // skipped
	}
	r := NewRegistry()
	s := stats{
		ConfirmedRequests: 9, PendingRequests: 3, WALFailed: true,
		Uptime: 1500 * time.Millisecond, Ratio: 0.5, View: 4,
		Stream: inner{QueuedBytes: 100, Evictions: 2},
		Name:   "x", hidden: 1,
	}
	r.SetStruct("leopard", &s)
	snap := r.Snapshot()
	want := map[string]float64{
		"leopard_confirmed_requests":  9,
		"leopard_pending_requests":    3,
		"leopard_wal_failed":          1,
		"leopard_uptime_seconds":      1.5,
		"leopard_ratio":               0.5,
		"leopard_view":                4,
		"leopard_stream_queued_bytes": 100,
		"leopard_stream_evictions":    2,
	}
	for name, v := range want {
		got, ok := snap[name]
		if !ok {
			t.Errorf("missing bound gauge %q (snapshot: %v)", name, snap)
			continue
		}
		if got != v {
			t.Errorf("%s = %v, want %v", name, got, v)
		}
	}
	if _, ok := snap["leopard_name"]; ok {
		t.Error("string field must not be bound")
	}
	if len(snap) != len(want) {
		t.Errorf("bound %d series, want %d: %v", len(snap), len(want), snap)
	}
	// Re-binding updates in place without duplicating series.
	s.ConfirmedRequests = 11
	r.SetStruct("leopard", &s)
	if got := r.Snapshot()["leopard_confirmed_requests"]; got != 11.0 {
		t.Errorf("rebound value = %v, want 11", got)
	}
	if r.NumSeries() != len(want) {
		t.Errorf("NumSeries = %d after rebind, want %d", r.NumSeries(), len(want))
	}
}
