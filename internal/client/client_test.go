package client

import (
	"bytes"
	"testing"

	"leopard/internal/types"
)

func testKeychain(t *testing.T, n int) *Keychain {
	t.Helper()
	kc, err := NewKeychain(n, []byte("test-seed"))
	if err != nil {
		t.Fatalf("NewKeychain: %v", err)
	}
	return kc
}

func TestKeychainDeterministic(t *testing.T) {
	a := testKeychain(t, 4)
	b := testKeychain(t, 4)
	for i := uint64(0); i < 4; i++ {
		if !bytes.Equal(a.Public(i), b.Public(i)) {
			t.Fatalf("client %d: keys differ across derivations", i)
		}
	}
	c, err := NewKeychain(4, []byte("other-seed"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Public(0), c.Public(0)) {
		t.Fatal("different seeds derived the same key")
	}
	if a.Public(4) != nil {
		t.Fatal("out-of-range Public should be nil")
	}
}

func TestSignVerify(t *testing.T) {
	kc := testKeychain(t, 3)
	v := kc.Verifier()
	req := types.Request{ClientID: 1, Seq: 7, Payload: []byte("hello")}
	sig, err := kc.Sign(req)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if !v.VerifyRequest(req, sig) {
		t.Fatal("valid signature rejected")
	}

	// Every signed field must be load-bearing.
	mutations := []types.Request{
		{ClientID: 2, Seq: 7, Payload: []byte("hello")},
		{ClientID: 1, Seq: 8, Payload: []byte("hello")},
		{ClientID: 1, Seq: 7, Payload: []byte("hellO")},
	}
	for i, m := range mutations {
		if v.VerifyRequest(m, sig) {
			t.Fatalf("mutation %d verified under the original signature", i)
		}
	}
	if v.VerifyRequest(req, sig[:16]) {
		t.Fatal("truncated signature verified")
	}
	if v.VerifyRequest(types.Request{ClientID: 99, Seq: 0}, sig) {
		t.Fatal("unknown client verified")
	}
	if _, err := kc.Sign(types.Request{ClientID: 99}); err == nil {
		t.Fatal("Sign for unknown client should fail")
	}
}

func TestRequestDigestDomainSeparation(t *testing.T) {
	// Requests whose concatenated fields would collide under naive
	// encoding must produce distinct digests.
	a := RequestDigest(types.Request{ClientID: 1, Seq: 2, Payload: []byte("x")})
	b := RequestDigest(types.Request{ClientID: 2, Seq: 1, Payload: []byte("x")})
	if a == b {
		t.Fatal("digest ignores field positions")
	}
	r := ReplyDigest(1, 2, 3, types.Hash{4})
	if r == a {
		t.Fatal("request and reply digest domains overlap")
	}
}

func TestVerifyBatchMatchesSequential(t *testing.T) {
	kc := testKeychain(t, 8)
	v := kc.Verifier()
	// Large enough to take the parallel path.
	const batch = 3 * batchParallelMin
	reqs := make([]types.Request, batch)
	sigs := make([][]byte, batch)
	for i := range reqs {
		reqs[i] = types.Request{ClientID: uint64(i % 8), Seq: uint64(i), Payload: []byte{byte(i)}}
		sig, err := kc.Sign(reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		sigs[i] = sig
	}
	// Corrupt a deterministic subset.
	bad := map[int]bool{0: true, 17: true, batch - 1: true}
	for i := range bad {
		sigs[i] = append([]byte(nil), sigs[i]...)
		sigs[i][5] ^= 0xff
	}
	got := v.VerifyRequestBatch(reqs, sigs)
	if len(got) != batch {
		t.Fatalf("batch returned %d verdicts, want %d", len(got), batch)
	}
	for i := range reqs {
		want := v.VerifyRequest(reqs[i], sigs[i])
		if got[i] != want {
			t.Fatalf("verdict %d: batch=%v sequential=%v", i, got[i], want)
		}
		if got[i] == bad[i] {
			t.Fatalf("verdict %d: corrupted=%v but verified=%v", i, bad[i], got[i])
		}
	}
	// Mismatched lengths fail closed.
	for _, verdict := range v.VerifyRequestBatch(reqs, sigs[:1]) {
		if verdict {
			t.Fatal("length-mismatched batch verified a signature")
		}
	}
}
