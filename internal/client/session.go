package client

import (
	"time"

	"leopard/internal/types"
)

// Reply is the transport-agnostic form of a replica's signed reply: the
// request identity, the serial number it executed at, the replica's
// execution result hash, and the replica that sent it. The wire form is
// leopard.ReplyMsg; drivers convert before handing it to a Session.
type Reply struct {
	Client  uint64
	Seq     uint64
	SN      types.SeqNum
	Result  types.Hash
	Replica types.ReplicaID
}

// certKey is the value f+1 replies must agree on to form a certificate: a
// matching serial number and execution result.
type certKey struct {
	sn     types.SeqNum
	result types.Hash
}

// SessionConfig parameterizes one closed-loop client session.
type SessionConfig struct {
	// ClientID identifies the client; its key signs every request.
	ClientID uint64
	// F is the cluster's fault threshold: a request is accepted once F+1
	// replicas report matching (serial number, result) replies — at least
	// one is honest, so the result is the one the cluster committed.
	F int
	// RetransmitAfter is how long an unaccepted request waits before the
	// client retransmits it. Zero defaults to 500ms.
	RetransmitAfter time.Duration
	// FirstSeq is the sequence number of the session's first request.
	FirstSeq uint64
}

// Session is one closed-loop client: at most one request in flight,
// sequence numbers strictly increasing, acceptance only on an f+1 reply
// certificate. It is a pure state machine — the caller supplies time,
// signs requests (Keychain) and moves bytes — so simulations stay
// deterministic and the TCP client reuses the same logic.
type Session struct {
	cfg      SessionConfig
	seq      uint64
	inflight bool
	payload  []byte
	sentAt   time.Duration // first transmission of the current request
	lastSend time.Duration
	attempts int
	// votes holds each replica's latest (sn, result) claim for the current
	// request: one slot per replica, so Byzantine replicas cannot grow it
	// by spraying conflicting results.
	votes map[types.ReplicaID]certKey

	accepted    int64
	retransmits int64
}

// NewSession creates a session with no request in flight.
func NewSession(cfg SessionConfig) *Session {
	if cfg.RetransmitAfter <= 0 {
		cfg.RetransmitAfter = 500 * time.Millisecond
	}
	return &Session{cfg: cfg, seq: cfg.FirstSeq, votes: make(map[types.ReplicaID]certKey)}
}

// Seq returns the sequence number of the current (or next) request.
func (s *Session) Seq() uint64 { return s.seq }

// InFlight reports whether a request is awaiting its certificate.
func (s *Session) InFlight() bool { return s.inflight }

// Accepted returns how many requests have completed with a certificate.
func (s *Session) Accepted() int64 { return s.accepted }

// Retransmits returns how many retransmissions the session has issued.
func (s *Session) Retransmits() int64 { return s.retransmits }

// Begin starts the next request with the given payload at time now and
// returns the request to sign and send. It must not be called while a
// request is in flight.
func (s *Session) Begin(now time.Duration, payload []byte) types.Request {
	if s.inflight {
		panic("client: Begin with a request in flight")
	}
	s.inflight = true
	s.payload = payload
	s.sentAt = now
	s.lastSend = now
	s.attempts = 1
	for k := range s.votes {
		delete(s.votes, k)
	}
	return s.Request()
}

// Request returns the current in-flight request.
func (s *Session) Request() types.Request {
	return types.Request{ClientID: s.cfg.ClientID, Seq: s.seq, Payload: s.payload}
}

// Due reports whether the in-flight request's retransmit timer has expired.
func (s *Session) Due(now time.Duration) bool {
	return s.inflight && now-s.lastSend >= s.cfg.RetransmitAfter
}

// Retransmit restamps the retransmit timer and returns the request to
// resend. The caller should send it to a rotating set of f+1 replicas
// (RetransmitSet) so at least one recipient is honest and live.
func (s *Session) Retransmit(now time.Duration) types.Request {
	s.lastSend = now
	s.attempts++
	s.retransmits++
	return s.Request()
}

// Attempt returns the 0-based retransmission round of the current request
// (0 while only the original send is outstanding).
func (s *Session) Attempt() int {
	if s.attempts == 0 {
		return 0
	}
	return s.attempts - 1
}

// OnReply folds one replica reply into the current request's certificate.
// It returns (true, latency) when this reply completes the f+1 matching
// set: the request is accepted, the session becomes idle, and latency is
// measured from the request's first transmission. Replies for other
// requests (stale retransmitted seqs, other clients) are ignored.
func (s *Session) OnReply(now time.Duration, r Reply) (bool, time.Duration) {
	if !s.inflight || r.Client != s.cfg.ClientID || r.Seq != s.seq {
		return false, 0
	}
	key := certKey{sn: r.SN, result: r.Result}
	s.votes[r.Replica] = key
	matching := 0
	for _, k := range s.votes {
		if k == key {
			matching++
		}
	}
	if matching < s.cfg.F+1 {
		return false, 0
	}
	s.inflight = false
	s.seq++
	s.accepted++
	return true, now - s.sentAt
}

// RetransmitSet returns the f+1 replicas attempt k of a request should go
// to: a window rotating through the cluster from the original target, so
// successive attempts cover every replica — whatever mix of crashed,
// Byzantine-silent or leader (non-packing) replicas the first f+1 hit.
func RetransmitSet(n, f, attempt int, origin types.ReplicaID) []types.ReplicaID {
	if n <= 0 {
		return nil
	}
	count := f + 1
	if count > n {
		count = n
	}
	out := make([]types.ReplicaID, 0, count)
	start := (int(origin) + attempt) % n
	for i := 0; i < count; i++ {
		out = append(out, types.ReplicaID((start+i)%n))
	}
	return out
}
