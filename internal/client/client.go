// Package client implements the client side of Leopard's authenticated
// serving path: deterministic per-client ed25519 keys, canonical
// signed-request digests, reply digests, batch signature verification for
// replica admission, and a closed-loop Session that accepts a request only
// once f+1 replicas report the same execution result.
//
// The package depends only on types and codec, so both replicas
// (internal/leopard admission and reply emission) and client binaries
// (cmd/leopard-client, examples/kvstore) can share one wire contract.
package client

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"leopard/internal/codec"
	"leopard/internal/types"
)

// SignatureSize is the wire size of a request signature.
const SignatureSize = ed25519.SignatureSize

// requestDomain and replyDomain separate the two signature/digest spaces so
// a request signature can never be replayed as anything else (and vice
// versa), mirroring the domain tags in internal/crypto.
const (
	requestDomain = "leopard/client-req"
	replyDomain   = "leopard/reply"
)

// RequestDigest is the canonical signing digest of a client request:
// SHA-256 over the domain tag and the codec encoding of the client ID, the
// sequence number and the payload digest. Hashing the payload digest (not
// the payload) keeps signing cost independent of payload size and lets
// replicas verify against zero-copy payloads without re-encoding.
func RequestDigest(req types.Request) types.Hash {
	payload := sha256.Sum256(req.Payload)
	w := codec.Writer{Buf: make([]byte, 0, len(requestDomain)+16+32)}
	w.Buf = append(w.Buf, requestDomain...)
	w.U64(req.ClientID)
	w.U64(req.Seq)
	w.Hash(payload)
	return sha256.Sum256(w.Buf)
}

// ReplyDigest is the digest an executing replica signs over its reply:
// it binds the request identity (client, seq) to the serial number the
// request executed at and the replica's execution result hash. f+1 valid
// reply signatures over one digest form a reply certificate.
func ReplyDigest(clientID, seq uint64, sn types.SeqNum, result types.Hash) types.Hash {
	var buf [len(replyDomain) + 24 + 32]byte
	off := copy(buf[:], replyDomain)
	binary.BigEndian.PutUint64(buf[off:], clientID)
	binary.BigEndian.PutUint64(buf[off+8:], seq)
	binary.BigEndian.PutUint64(buf[off+16:], uint64(sn))
	copy(buf[off+24:], result[:])
	return sha256.Sum256(buf[:])
}

// Keychain derives one ed25519 key pair per client from a shared seed, the
// same trusted-dealer pattern as crypto.Ed25519Suite: client i's private
// key is NewKeyFromSeed(SHA-256(seed || "client" || i)). Simulations and
// tests hand the seed to both the clients and the replicas' Verifier;
// deployments would distribute only the public keys.
type Keychain struct {
	keys []ed25519.PrivateKey
	pubs []ed25519.PublicKey
}

// NewKeychain derives n client key pairs (client IDs 0..n-1) from seed.
func NewKeychain(n int, seed []byte) (*Keychain, error) {
	if n <= 0 {
		return nil, fmt.Errorf("client: keychain needs n > 0, got %d", n)
	}
	kc := &Keychain{
		keys: make([]ed25519.PrivateKey, n),
		pubs: make([]ed25519.PublicKey, n),
	}
	for i := 0; i < n; i++ {
		h := sha256.New()
		h.Write(seed)
		h.Write([]byte("client"))
		var idx [8]byte
		binary.BigEndian.PutUint64(idx[:], uint64(i))
		h.Write(idx[:])
		kc.keys[i] = ed25519.NewKeyFromSeed(h.Sum(nil))
		kc.pubs[i] = kc.keys[i].Public().(ed25519.PublicKey)
	}
	return kc, nil
}

// NumClients returns the number of derived key pairs.
func (kc *Keychain) NumClients() int { return len(kc.keys) }

// Public returns client id's public key, or nil if id is out of range.
func (kc *Keychain) Public(id uint64) ed25519.PublicKey {
	if id >= uint64(len(kc.pubs)) {
		return nil
	}
	return kc.pubs[id]
}

// Sign signs the request under its client's key. The request's ClientID
// must be within the keychain.
func (kc *Keychain) Sign(req types.Request) ([]byte, error) {
	if req.ClientID >= uint64(len(kc.keys)) {
		return nil, fmt.Errorf("client: no key for client %d", req.ClientID)
	}
	d := RequestDigest(req)
	return ed25519.Sign(kc.keys[req.ClientID], d[:]), nil
}

// Verifier returns a request verifier over this keychain's public keys.
func (kc *Keychain) Verifier() *Verifier { return NewVerifier(kc.pubs) }
