package client

import (
	"fmt"
	"testing"

	"leopard/internal/types"
)

// benchBatch builds size signed requests across 16 clients.
func benchBatch(b *testing.B, size int) (*Verifier, []types.Request, [][]byte) {
	b.Helper()
	kc, err := NewKeychain(16, []byte("bench"))
	if err != nil {
		b.Fatal(err)
	}
	reqs := make([]types.Request, size)
	sigs := make([][]byte, size)
	payload := make([]byte, 128)
	for i := range reqs {
		reqs[i] = types.Request{ClientID: uint64(i % 16), Seq: uint64(i), Payload: payload}
		sigs[i], err = kc.Sign(reqs[i])
		if err != nil {
			b.Fatal(err)
		}
	}
	return kc.Verifier(), reqs, sigs
}

// BenchmarkVerifySequential is the one-by-one admission baseline.
func BenchmarkVerifySequential(b *testing.B) {
	for _, size := range []int{64, 512} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			v, reqs, sigs := benchBatch(b, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range reqs {
					if !v.VerifyRequest(reqs[j], sigs[j]) {
						b.Fatal("verify failed")
					}
				}
			}
			b.ReportMetric(float64(size*b.N)/b.Elapsed().Seconds(), "sigs/s")
		})
	}
}

// BenchmarkVerifyBatch is the admission path: parallel chunked verification.
func BenchmarkVerifyBatch(b *testing.B) {
	for _, size := range []int{64, 512} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			v, reqs, sigs := benchBatch(b, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, ok := range v.VerifyRequestBatch(reqs, sigs) {
					if !ok {
						b.Fatal("verify failed")
					}
				}
			}
			b.ReportMetric(float64(size*b.N)/b.Elapsed().Seconds(), "sigs/s")
		})
	}
}
