package client

import (
	"testing"
	"time"

	"leopard/internal/types"
)

func reply(client, seq uint64, sn types.SeqNum, result byte, replica types.ReplicaID) Reply {
	return Reply{Client: client, Seq: seq, SN: sn, Result: types.Hash{result}, Replica: replica}
}

func TestSessionCertificate(t *testing.T) {
	s := NewSession(SessionConfig{ClientID: 3, F: 1})
	req := s.Begin(10*time.Millisecond, []byte("op"))
	if req.ClientID != 3 || req.Seq != 0 {
		t.Fatalf("unexpected request %+v", req)
	}

	// One matching reply is below f+1.
	if ok, _ := s.OnReply(12*time.Millisecond, reply(3, 0, 5, 0xaa, 0)); ok {
		t.Fatal("accepted on a single reply with f=1")
	}
	// A second reply with a different result does not match.
	if ok, _ := s.OnReply(13*time.Millisecond, reply(3, 0, 5, 0xbb, 1)); ok {
		t.Fatal("accepted on conflicting results")
	}
	// Matching reply from the same replica must not double-count.
	if ok, _ := s.OnReply(14*time.Millisecond, reply(3, 0, 5, 0xaa, 0)); ok {
		t.Fatal("accepted two replies from one replica")
	}
	// A second distinct replica matching completes the certificate.
	ok, lat := s.OnReply(20*time.Millisecond, reply(3, 0, 5, 0xaa, 2))
	if !ok {
		t.Fatal("f+1 matching replies did not complete the certificate")
	}
	if lat != 10*time.Millisecond {
		t.Fatalf("latency = %v, want 10ms (from first send)", lat)
	}
	if s.InFlight() || s.Seq() != 1 || s.Accepted() != 1 {
		t.Fatalf("post-accept state: inflight=%v seq=%d accepted=%d", s.InFlight(), s.Seq(), s.Accepted())
	}
}

func TestSessionByzantineSpray(t *testing.T) {
	// A Byzantine replica spraying distinct results holds one vote slot and
	// can never complete a certificate alone, nor block honest ones.
	s := NewSession(SessionConfig{ClientID: 1, F: 1})
	s.Begin(0, []byte("x"))
	for i := byte(0); i < 50; i++ {
		if ok, _ := s.OnReply(time.Millisecond, reply(1, 0, types.SeqNum(i), i, 7)); ok {
			t.Fatal("one replica completed an f+1 certificate")
		}
	}
	if len(s.votes) != 1 {
		t.Fatalf("vote map grew to %d under a spraying replica", len(s.votes))
	}
	if ok, _ := s.OnReply(2*time.Millisecond, reply(1, 0, 9, 0x11, 0)); ok {
		t.Fatal("early accept")
	}
	if ok, _ := s.OnReply(3*time.Millisecond, reply(1, 0, 9, 0x11, 2)); !ok {
		t.Fatal("honest f+1 certificate blocked by the sprayer")
	}
}

func TestSessionIgnoresStaleAndForeignReplies(t *testing.T) {
	s := NewSession(SessionConfig{ClientID: 2, F: 0, FirstSeq: 10})
	s.Begin(0, nil)
	if ok, _ := s.OnReply(0, reply(2, 9, 1, 0x1, 0)); ok {
		t.Fatal("accepted a reply for a previous seq")
	}
	if ok, _ := s.OnReply(0, reply(4, 10, 1, 0x1, 0)); ok {
		t.Fatal("accepted a reply for another client")
	}
	if ok, _ := s.OnReply(0, reply(2, 10, 1, 0x1, 0)); !ok {
		t.Fatal("f=0 certificate needs exactly one reply")
	}
	if s.Seq() != 11 {
		t.Fatalf("seq = %d, want 11", s.Seq())
	}
	// Idle sessions ignore replies entirely.
	if ok, _ := s.OnReply(0, reply(2, 11, 2, 0x1, 0)); ok {
		t.Fatal("accepted a reply with nothing in flight")
	}
}

func TestSessionRetransmitTimer(t *testing.T) {
	s := NewSession(SessionConfig{ClientID: 0, F: 1, RetransmitAfter: 100 * time.Millisecond})
	s.Begin(0, nil)
	if s.Due(99 * time.Millisecond) {
		t.Fatal("due before the timer expired")
	}
	if !s.Due(100 * time.Millisecond) {
		t.Fatal("not due at the timer boundary")
	}
	req := s.Retransmit(100 * time.Millisecond)
	if req.Seq != 0 {
		t.Fatalf("retransmit changed seq to %d", req.Seq)
	}
	if s.Attempt() != 1 || s.Retransmits() != 1 {
		t.Fatalf("attempt=%d retransmits=%d", s.Attempt(), s.Retransmits())
	}
	if s.Due(150 * time.Millisecond) {
		t.Fatal("due again before a full period since the retransmit")
	}
	// Latency is still measured from the first send.
	s.OnReply(250*time.Millisecond, reply(0, 0, 1, 0x1, 0))
	if ok, lat := s.OnReply(250*time.Millisecond, reply(0, 0, 1, 0x1, 1)); !ok || lat != 250*time.Millisecond {
		t.Fatalf("ok=%v lat=%v, want latency from first send", ok, lat)
	}
}

func TestRetransmitSet(t *testing.T) {
	got := RetransmitSet(4, 1, 0, 2)
	want := []types.ReplicaID{2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("attempt 0: got %v want %v", got, want)
		}
	}
	// Successive attempts rotate through the full cluster.
	seen := map[types.ReplicaID]bool{}
	for attempt := 0; attempt < 4; attempt++ {
		for _, id := range RetransmitSet(4, 1, attempt, 2) {
			seen[id] = true
		}
	}
	if len(seen) != 4 {
		t.Fatalf("rotation covered %d of 4 replicas", len(seen))
	}
	if got := RetransmitSet(2, 2, 0, 0); len(got) != 2 {
		t.Fatalf("f+1 > n should clamp to n, got %v", got)
	}
	if RetransmitSet(0, 1, 0, 0) != nil {
		t.Fatal("n=0 should return nil")
	}
}
