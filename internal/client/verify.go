package client

import (
	"crypto/ed25519"
	"runtime"
	"sync"

	"leopard/internal/types"
)

// Verifier checks client request signatures against a fixed public-key set.
// It satisfies leopard.ClientVerifier. Methods are safe for concurrent use
// (the key set is immutable).
type Verifier struct {
	pubs []ed25519.PublicKey
}

// NewVerifier builds a verifier over pubs; client ID i verifies under
// pubs[i].
func NewVerifier(pubs []ed25519.PublicKey) *Verifier {
	return &Verifier{pubs: pubs}
}

// VerifyRequest reports whether sig is client req.ClientID's signature over
// the canonical request digest.
func (v *Verifier) VerifyRequest(req types.Request, sig []byte) bool {
	if req.ClientID >= uint64(len(v.pubs)) || len(sig) != ed25519.SignatureSize {
		return false
	}
	d := RequestDigest(req)
	return ed25519.Verify(v.pubs[req.ClientID], d[:], sig)
}

// batchParallelMin is the batch size below which VerifyRequestBatch runs
// sequentially: goroutine fan-out costs more than it saves under ~32
// signatures (see BenchmarkVerifyBatch).
const batchParallelMin = 32

// VerifyRequestBatch verifies a batch of request signatures and returns one
// verdict per request, in order. Batches of batchParallelMin or more are
// fanned out across GOMAXPROCS workers on contiguous chunks; results are
// positionally indexed, so the output is identical to the sequential path.
// Replica admission uses this to amortize signature checking across the
// requests that arrive between two events.
//
// The Go standard library has no multi-scalar ed25519 batch equation, and
// this repo takes no dependencies, so the win here is parallelism, not
// fewer scalar multiplications (ROADMAP keeps the algebraic batching as a
// follow-up).
func (v *Verifier) VerifyRequestBatch(reqs []types.Request, sigs [][]byte) []bool {
	out := make([]bool, len(reqs))
	if len(sigs) != len(reqs) {
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if len(reqs) < batchParallelMin || workers < 2 {
		for i := range reqs {
			out[i] = v.VerifyRequest(reqs[i], sigs[i])
		}
		return out
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	var wg sync.WaitGroup
	chunk := (len(reqs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(reqs) {
			hi = len(reqs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = v.VerifyRequest(reqs[i], sigs[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}
