package experiments

import (
	"strings"
	"testing"
	"time"
)

// testClientsParams compresses every scenario window so that two full runs
// (the determinism check) stay affordable, while still spanning a leader
// crash, a view change, the restart and plenty of post-churn traffic.
func testClientsParams() clientsParams {
	return clientsParams{
		TickEvery:    5 * time.Millisecond,
		ReplyDelay:   200 * time.Microsecond,
		Warmup:       200 * time.Millisecond,
		Measure:      1200 * time.Millisecond,
		CrashAfter:   300 * time.Millisecond,
		RestartAfter: 700 * time.Millisecond,
		Retransmit:   250 * time.Millisecond,
		VCTimeout:    150 * time.Millisecond,
	}
}

// TestClientsScenarioLiveAndDeterministic is the clients-scenario
// regression: 1000 closed-loop clients with signed requests and f+1 reply
// certificates must stay live through a leader crash/restart and a
// Byzantine reply-suppressing replica — and two identically-seeded runs
// must produce byte-identical formatted output.
func TestClientsScenarioLiveAndDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("clients scenario is seconds of virtual time; skipped in -short")
	}
	const clients = 1000
	p := testClientsParams()
	first, err := clientsRun(4, clients, p)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatClients(first)
	t.Logf("clients scenario:\n%s", out)

	if first.Accepted == 0 {
		t.Fatal("no reply certificates completed")
	}
	// Every client should turn over multiple requests despite the churn.
	if first.Accepted < clients {
		t.Errorf("accepted %d certificates, want at least one per client (%d)", first.Accepted, clients)
	}
	if first.Retransmits == 0 {
		t.Error("no retransmissions despite a leader crash and a reply-suppressing replica")
	}
	if first.FinalView < 2 {
		t.Errorf("final view %d: the leader crash never triggered a view change", first.FinalView)
	}
	if first.BadSigs != 0 || first.RateLimited != 0 {
		t.Errorf("honest clients tripped admission defenses: bad-sigs=%d rate-limited=%d",
			first.BadSigs, first.RateLimited)
	}
	if first.P99Lat < first.P50Lat || first.P50Lat <= 0 {
		t.Errorf("implausible latency percentiles: p50=%v p99=%v", first.P50Lat, first.P99Lat)
	}
	if !strings.Contains(out, "p50=") || !strings.Contains(out, "p99=") {
		t.Errorf("formatted output missing latency percentiles:\n%s", out)
	}

	second, err := clientsRun(4, clients, p)
	if err != nil {
		t.Fatal(err)
	}
	if out2 := FormatClients(second); out != out2 {
		t.Fatalf("identically-seeded runs diverged:\n-- run 1 --\n%s\n-- run 2 --\n%s", out, out2)
	}
}
