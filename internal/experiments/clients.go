package experiments

import (
	"encoding/binary"
	"fmt"
	"strings"
	"time"

	"leopard/internal/client"
	"leopard/internal/crypto"
	"leopard/internal/harness"
	"leopard/internal/leopard"
	"leopard/internal/mempool"
	"leopard/internal/metrics"
	"leopard/internal/protocol"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// This file implements the `clients` scenario: the closed-loop end of the
// authenticated client serving path. Where every other experiment drives the
// cluster with the harness's synthetic saturation injector, this one runs
// real client sessions — each signs its requests (internal/client), submits
// to an origin replica, collects signed replies, accepts on an f+1 matching
// certificate and immediately issues its next request. The run crashes and
// restarts the leader mid-measurement and silences one replica's reply path
// (a Byzantine reply suppressor), so the numbers show the serving path —
// admission signature checks, nonce bookkeeping, retransmission, reply
// certificates — staying live under the faults it was built for.

// ClientsResult is the outcome of one clients-scenario run.
type ClientsResult struct {
	N       int
	Clients int
	// Byzantine is the replica whose reply path is suppressed.
	Byzantine types.ReplicaID

	Accepted    int64 // reply certificates completed inside the window
	Retransmits int64 // client retransmissions over the whole run
	MeanLat     time.Duration
	P50Lat      time.Duration
	P99Lat      time.Duration

	// Cluster-wide admission and reply counters (summed over replicas).
	Admitted    int64
	Rejected    int64
	RateLimited int64
	BadSigs     int64
	Replies     int64

	FinalView types.View
	Histogram string
}

// clientsDriver owns every client session and moves bytes between clients
// and replicas deterministically: a single ticker walks the sessions in
// index order, batches each tick's submissions per replica, and replies are
// scheduled back through the simnet event queue.
type clientsDriver struct {
	c    *harness.Cluster
	keys *client.Keychain
	n, f int

	sessions []*client.Session
	sigs     [][]byte // signature of each session's in-flight request
	origin   []types.ReplicaID

	// down mirrors the scenario's crash schedule: submissions to a crashed
	// replica are dropped (connection refused), exactly like the replies it
	// cannot send.
	down map[types.ReplicaID]bool

	// Per-tick submission batches, reused across ticks.
	batchReqs [][]types.Request
	batchSigs [][][]byte

	measureFrom time.Duration
	lat         metrics.LatencyRecorder
	accepted    int64
}

// payload builds the deterministic request payload for (client, seq).
func clientPayload(clientID, seq uint64) []byte {
	p := make([]byte, PayloadSize)
	binary.BigEndian.PutUint64(p[0:8], clientID)
	binary.BigEndian.PutUint64(p[8:16], seq)
	return p
}

// tick walks every session once: idle sessions begin their next request at
// their origin replica; overdue ones retransmit to a rotating f+1 window.
func (d *clientsDriver) tick(now time.Duration) {
	for i := range d.batchReqs {
		d.batchReqs[i] = d.batchReqs[i][:0]
		d.batchSigs[i] = d.batchSigs[i][:0]
	}
	for i, s := range d.sessions {
		switch {
		case !s.InFlight():
			req := s.Begin(now, clientPayload(uint64(i), s.Seq()))
			sig, err := d.keys.Sign(req)
			if err != nil {
				continue
			}
			d.sigs[i] = sig
			d.enqueue(d.origin[i], req, sig)
		case s.Due(now):
			req := s.Retransmit(now)
			for _, id := range client.RetransmitSet(d.n, d.f, s.Attempt(), d.origin[i]) {
				d.enqueue(id, req, d.sigs[i])
			}
		}
	}
	for id := 0; id < d.n; id++ {
		reqs := d.batchReqs[id]
		if len(reqs) == 0 {
			continue
		}
		node := d.c.Replicas[id].(*leopard.Node)
		node.SubmitSignedBatch(now, reqs, d.batchSigs[id])
		stats := d.c.Net.Stats(types.ReplicaID(id))
		for _, req := range reqs {
			stats.AddReceived(transport.ClassRequest, req.Size()+client.SignatureSize)
		}
	}
}

func (d *clientsDriver) enqueue(id types.ReplicaID, req types.Request, sig []byte) {
	if d.down[id] {
		return
	}
	d.batchReqs[id] = append(d.batchReqs[id], req)
	d.batchSigs[id] = append(d.batchSigs[id], sig)
}

// onReply folds a replica's reply into the owning session's certificate.
func (d *clientsDriver) onReply(now time.Duration, r client.Reply) {
	if r.Client >= uint64(len(d.sessions)) {
		return
	}
	ok, lat := d.sessions[r.Client].OnReply(now, r)
	if ok && now >= d.measureFrom {
		d.accepted++
		d.lat.Add(lat)
	}
}

// ClientsScenario runs the clients scenario at each scale.
func ClientsScenario(scales []int, numClients int) ([]ClientsResult, error) {
	if len(scales) == 0 {
		scales = []int{4}
	}
	if numClients <= 0 {
		numClients = 1200
	}
	var out []ClientsResult
	for _, n := range scales {
		r, err := clientsOnce(n, numClients)
		if err != nil {
			return nil, fmt.Errorf("clients n=%d: %w", n, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// clientsParams are the scenario's schedule knobs. The defaults are the CLI
// run; the regression tests compress every window so two full runs (the
// determinism check) stay affordable.
type clientsParams struct {
	TickEvery  time.Duration // client driver granularity
	ReplyDelay time.Duration // client<->replica link latency
	Warmup     time.Duration
	Measure    time.Duration
	// Leader churn inside the measurement window: crash the initial leader
	// CrashAfter into it, bring it back (state intact) at RestartAfter.
	CrashAfter   time.Duration
	RestartAfter time.Duration
	Retransmit   time.Duration // per-session retransmit patience
	VCTimeout    time.Duration
}

func defaultClientsParams() clientsParams {
	return clientsParams{
		TickEvery:    5 * time.Millisecond,
		ReplyDelay:   200 * time.Microsecond,
		Warmup:       500 * time.Millisecond,
		Measure:      3 * time.Second,
		CrashAfter:   1 * time.Second,
		RestartAfter: 2 * time.Second,
		Retransmit:   400 * time.Millisecond,
		VCTimeout:    400 * time.Millisecond,
	}
}

func clientsOnce(n, numClients int) (ClientsResult, error) {
	return clientsRun(n, numClients, defaultClientsParams())
}

func clientsRun(n, numClients int, p clientsParams) (ClientsResult, error) {
	q, err := types.NewQuorumParams(n)
	if err != nil {
		return ClientsResult{}, err
	}
	suite, err := crypto.NewSimSuite(n, []byte("experiments"))
	if err != nil {
		return ClientsResult{}, err
	}
	keys, err := client.NewKeychain(numClients, []byte("clients-scenario"))
	if err != nil {
		return ClientsResult{}, err
	}
	verifier := keys.Verifier()
	net := netConfig()
	c, err := harness.NewCluster(harness.Options{
		N:           n,
		Net:         net,
		PayloadSize: PayloadSize,
		// No synthetic injection: the sessions are the workload.
		SaturationDepth: 0,
		Build: func(id types.ReplicaID) (protocol.Replica, error) {
			return leopard.NewNode(leopard.Config{
				ID:            id,
				Quorum:        q,
				Suite:         suite,
				DatablockSize: 500,
				BFTBlockSize:  10,
				BatchTimeout:  5 * time.Millisecond,
				MaxParallel:   16,
				// The crash must trigger a real view change mid-run.
				ViewChangeTimeout: p.VCTimeout,
				TrustDigests:      true,
				Verifier:          verifier,
				// Generous per-client budget: honest closed-loop clients
				// (one request in flight each) must never trip it, so any
				// RateLimited count in the result is a red flag.
				Mempool: mempool.Limits{RatePerSec: 1000, RateBurst: 64},
			})
		},
	})
	if err != nil {
		return ClientsResult{}, err
	}

	d := &clientsDriver{
		c:         c,
		keys:      keys,
		n:         n,
		f:         q.F,
		sessions:  make([]*client.Session, numClients),
		sigs:      make([][]byte, numClients),
		origin:    make([]types.ReplicaID, numClients),
		down:      make(map[types.ReplicaID]bool),
		batchReqs: make([][]types.Request, n),
		batchSigs: make([][][]byte, n),
	}
	initialLeader := c.Replicas[0].Leader()
	for i := range d.sessions {
		d.sessions[i] = client.NewSession(client.SessionConfig{
			ClientID:        uint64(i),
			F:               q.F,
			RetransmitAfter: p.Retransmit,
		})
		// Spread origins over the replicas that pack datablocks: the leader
		// never packs its own, so clients that would land there shift over
		// (a client of the real deployment would learn the same from its
		// first retransmission).
		o := types.ReplicaID(i % n)
		if o == initialLeader {
			o = types.ReplicaID((i + 1) % n)
		}
		d.origin[i] = o
	}

	// The Byzantine replica participates in agreement but never answers
	// clients: its reply sink stays unset. Replica n-1 is never the leader
	// in this run's view window, so consensus keeps it honest-looking.
	byz := types.ReplicaID(n - 1)
	for i, r := range c.Replicas {
		id := types.ReplicaID(i)
		if id == byz {
			continue
		}
		node := r.(*leopard.Node)
		node.SetReplySink(func(m leopard.ReplyMsg) {
			reply := client.Reply{
				Client: m.Client, Seq: m.Seq, SN: m.SN, Result: m.Result,
				Replica: m.Share.Signer,
			}
			c.Net.ScheduleCall(c.Net.Now()+p.ReplyDelay, func(now time.Duration) {
				d.onReply(now, reply)
			})
		})
	}

	c.Start()
	var driveTick func(at time.Duration)
	driveTick = func(at time.Duration) {
		c.Net.ScheduleCall(at, func(now time.Duration) {
			d.tick(now)
			driveTick(now + p.TickEvery)
		})
	}
	driveTick(c.Net.Now())

	c.Net.Run(c.Net.Now() + p.Warmup)
	d.measureFrom = c.Net.Now()
	start := c.Net.Now()
	c.Net.ScheduleCall(start+p.CrashAfter, func(time.Duration) {
		d.down[initialLeader] = true
		c.Net.Crash(initialLeader)
	})
	c.Net.ScheduleCall(start+p.RestartAfter, func(time.Duration) {
		d.down[initialLeader] = false
		c.Net.Restart(initialLeader)
	})
	c.Net.Run(start + p.Measure)

	res := ClientsResult{
		N:         n,
		Clients:   numClients,
		Byzantine: byz,
		Accepted:  d.accepted,
		MeanLat:   d.lat.Mean(),
		P50Lat:    d.lat.Percentile(50),
		P99Lat:    d.lat.Percentile(99),
		FinalView: c.Replicas[0].(*leopard.Node).View(),
		Histogram: d.lat.Histogram(),
	}
	for _, s := range d.sessions {
		res.Retransmits += s.Retransmits()
	}
	for _, r := range c.Replicas {
		st := r.(*leopard.Node).Stats()
		res.Admitted += st.AdmittedRequests
		res.Rejected += st.RejectedRequests
		res.RateLimited += st.RateLimited
		res.BadSigs += st.BadSignatures
		res.Replies += st.RepliesSent
	}
	if res.Accepted == 0 {
		return res, fmt.Errorf("no reply certificates completed (n=%d, %d clients)", n, numClients)
	}
	return res, nil
}

// FormatClients renders one result for the CLI and the determinism
// regression test (two identically-seeded runs must format identically).
func FormatClients(r ClientsResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d clients=%d byzantine-replica=%d final-view=%d\n",
		r.N, r.Clients, r.Byzantine, r.FinalView)
	fmt.Fprintf(&sb, "accepted=%d retransmits=%d p50=%v p99=%v mean=%v\n",
		r.Accepted, r.Retransmits, r.P50Lat, r.P99Lat, r.MeanLat)
	fmt.Fprintf(&sb, "admitted=%d rejected=%d rate-limited=%d bad-sigs=%d replies-sent=%d\n",
		r.Admitted, r.Rejected, r.RateLimited, r.BadSigs, r.Replies)
	sb.WriteString(r.Histogram)
	return sb.String()
}
