package experiments

import (
	"fmt"
	"time"

	"leopard/internal/crypto"
	"leopard/internal/harness"
	"leopard/internal/leopard"
	"leopard/internal/protocol"
	"leopard/internal/types"
)

// The rotate scenario studies the vote-aggregation ceiling, not raw
// dissemination bandwidth, so it uses small batches (many proposals per
// second) and charges the receiver's serial CPU stage per vote/proof
// message. A fixed leader absorbs ~2(n-1) agreement votes plus (n-1) ready
// announcements per datablock through one serial stage; at rotateVoteCost
// that stage saturates well before the bulk pipeline does at n=64, which is
// exactly the single-leader plateau the rotating schedule removes.
const (
	rotateDBSize   = 200
	rotateBFTSize  = 10
	rotateVoteCost = 50 * time.Microsecond
)

// RotateRow is one measured configuration of the fixed-vs-rotated A/B.
type RotateRow struct {
	N          int
	Mode       string // "fixed" or "rotated"
	Throughput float64
	MeanLat    time.Duration
	P50Lat     time.Duration
	P99Lat     time.Duration
	// LeaderCPU is the CPU-stage utilization of the view-1 leader over the
	// measurement window; OtherCPU is the mean utilization of the remaining
	// replicas, and MaxCPU the cluster-wide maximum. Under rotation
	// LeaderCPU should drop toward OtherCPU — no replica is special.
	LeaderCPU float64
	OtherCPU  float64
	MaxCPU    float64
}

// rotateCluster builds the scenario cluster: closed-loop saturation, vote
// CPU accounting on, and (in rotated mode) the rotating schedule with
// clients submitting everywhere.
func rotateCluster(n int, rotate bool, seed int64) (*harness.Cluster, error) {
	q, err := types.NewQuorumParams(n)
	if err != nil {
		return nil, err
	}
	suite, err := crypto.NewSimSuite(n, []byte("experiments"))
	if err != nil {
		return nil, err
	}
	net := netConfig()
	net.VoteProcCost = rotateVoteCost
	net.Seed = seed
	mode := "fixed"
	if rotate {
		mode = "rotated"
	}
	ts := traceRun("rotate "+mode, n)
	return harness.NewCluster(harness.Options{
		N:                n,
		Net:              net,
		PayloadSize:      PayloadSize,
		SaturationDepth:  2 * rotateDBSize,
		LatencySample:    16,
		SubmitEverywhere: rotate,
		Trace:            ts,
		Build: func(id types.ReplicaID) (protocol.Replica, error) {
			return leopard.NewNode(leopard.Config{
				ID:                       id,
				Quorum:                   q,
				Suite:                    suite,
				DatablockSize:            rotateDBSize,
				BFTBlockSize:             rotateBFTSize,
				RotateLeaders:            rotate,
				TrustDigests:             true,
				SkipRequestDedup:         true,
				ViewChangeTimeout:        time.Hour, // honest cluster, no VC noise
				MaxOutstandingDatablocks: 2,
				Erasure:                  ErasureOpts,
				Tracer:                   ts.Tracer(int(id)),
			})
		},
	})
}

// rotateMeasure warms up, measures, and folds per-replica CPU-stage shares
// into one row.
func rotateMeasure(c *harness.Cluster, n int, mode string) RotateRow {
	c.Start()
	c.Warmup(warmup)
	res := c.MeasureFor(measure)
	row := RotateRow{
		N:          n,
		Mode:       mode,
		Throughput: res.Throughput,
		MeanLat:    res.MeanLat,
		P50Lat:     res.P50Lat,
		P99Lat:     res.P99Lat,
	}
	leader := c.Replicas[0].Leader()
	elapsed := res.Elapsed.Seconds()
	var otherSum float64
	for i := 0; i < n; i++ {
		share := c.Net.ProcBusy(types.ReplicaID(i)).Seconds() / elapsed
		if share > row.MaxCPU {
			row.MaxCPU = share
		}
		if types.ReplicaID(i) == leader {
			row.LeaderCPU = share
		} else {
			otherSum += share
		}
	}
	row.OtherCPU = otherSum / float64(n-1)
	return row
}

// RotateScenario runs the fixed-vs-rotated A/B at each scale: same batches,
// same network, same vote CPU cost — only the proposer schedule differs.
func RotateScenario(scales []int) ([]RotateRow, error) {
	if len(scales) == 0 {
		scales = []int{4, 16, 64}
	}
	var out []RotateRow
	for _, n := range scales {
		for _, rotate := range []bool{false, true} {
			mode := "fixed"
			if rotate {
				mode = "rotated"
			}
			c, err := rotateCluster(n, rotate, 1)
			if err != nil {
				return nil, fmt.Errorf("rotate n=%d mode=%s: %w", n, mode, err)
			}
			out = append(out, rotateMeasure(c, n, mode))
		}
	}
	return out, nil
}

// RotateRunDigest renders one seeded rotated run as a deterministic string:
// per-replica traffic and CPU-stage counters plus every replica's execution
// frontier and chain state. Two identically-seeded runs must be
// byte-identical (TestRotateDeterministic, CI's rotate determinism gate).
func RotateRunDigest(n int) (string, error) {
	c, err := rotateCluster(n, true, 1)
	if err != nil {
		return "", err
	}
	c.Start()
	c.Warmup(500 * time.Millisecond)
	res := c.MeasureFor(time.Second)
	out := fmt.Sprintf("n=%d confirmed=%d ", n, res.Confirmed)
	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		bw := c.Net.Stats(id)
		node := c.Replicas[i].(*leopard.Node)
		state := node.ExecutionState()
		out += fmt.Sprintf("%d:%d/%d/%d/%d/%x ",
			i, bw.TotalSent(), bw.TotalReceived(), c.Net.ProcBusy(id), node.ExecutedTo(), state[:4])
	}
	return out, nil
}
