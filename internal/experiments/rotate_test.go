package experiments

import (
	"strings"
	"testing"
)

// TestRotateDeterministic runs a seeded rotated cluster twice: per-replica
// traffic counters, CPU-stage busy time, execution frontiers and chain
// states must be byte-identical. This is CI's rotate determinism gate — a
// schedule or pipelining change that introduces hidden nondeterminism (map
// iteration, wall-clock reads) shows up here as a digest diff.
func TestRotateDeterministic(t *testing.T) {
	first, err := RotateRunDigest(8)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RotateRunDigest(8)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("identically-seeded rotated runs diverged:\n  run 1: %s\n  run 2: %s", first, second)
	}
	if !strings.Contains(first, "confirmed=") || strings.Contains(first, "confirmed=0 ") {
		t.Fatalf("rotated run made no progress: %s", first)
	}
}

// TestRotateABSmoke is a scaled-down version of the rotate scenario's A/B:
// at n=4 both modes must make progress and the rotated mode must spread the
// vote-processing CPU — the view-1 leader's share may not dwarf the others'.
func TestRotateABSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("measured scenario")
	}
	rows, err := RotateScenario([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected fixed+rotated rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Throughput <= 0 {
			t.Fatalf("mode %s made no progress", r.Mode)
		}
	}
	rotated := rows[1]
	if rotated.Mode != "rotated" {
		t.Fatalf("row order: %+v", rows)
	}
	// Under rotation no replica is special: leader share within 1.5x of the
	// follower mean (in fixed mode at this scale it sits well above it).
	if rotated.OtherCPU > 0 && rotated.LeaderCPU > 1.5*rotated.OtherCPU {
		t.Fatalf("rotated leader CPU %.2f dwarfs follower mean %.2f",
			rotated.LeaderCPU, rotated.OtherCPU)
	}
}
