package experiments

import (
	"fmt"
	"time"

	"leopard/internal/leopard"
	"leopard/internal/storage"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// RecoverResult is one row of the recover scenario: a replica is killed
// mid-run and restarted after the cluster has advanced past several stable
// checkpoints, under the durable subsystem (WAL recovery + state transfer)
// and under the pre-durability baseline (fresh empty node, no state
// transfer).
type RecoverResult struct {
	N    int
	Mode string // "durable" or "baseline"
	// CaughtUp reports whether the restarted replica reached the cluster's
	// executed height within the deadline. The baseline never does: its
	// executed prefix was garbage-collected cluster-wide, and without state
	// transfer there is no protocol path to recover it.
	CaughtUp bool
	// CatchupTime is restart → executed height parity with the live
	// cluster.
	CatchupTime time.Duration
	// HeightAtRestart is the live cluster's executed height at the moment
	// of restart; HeightCaught is the height at catch-up.
	HeightAtRestart types.SeqNum
	HeightCaught    types.SeqNum
	// BlocksReplayed counts WAL records replayed locally at restart;
	// StateBlocks counts blocks fetched from peers via state transfer.
	BlocksReplayed int64
	StateBlocks    int64
	// Retrievals counts per-datablock retrievals at the restarted replica
	// after restart — state transfer must make this zero (the baseline's
	// alternative was a retrieval storm, and past the watermark not even
	// that works).
	Retrievals int64
	// ReVotes counts agreement votes the restarted replica cast for serial
	// numbers at or below HeightAtRestart: the transferred range must incur
	// zero re-votes.
	ReVotes int64

	// traffic is a per-replica sent/received byte signature of the whole
	// run, folded into RecoverRunDigest's determinism assertion.
	traffic string
}

// recoverParams sizes one scenario run; the regression test shrinks it.
type recoverParams struct {
	dbRequests  int
	bftSize     int
	maxParallel int
	checkpoint  int
	loadEvery   time.Duration
	crashAt     time.Duration
	restartAt   time.Duration
	loadUntil   time.Duration // absolute; generators stop submitting here
	deadline    time.Duration // catch-up budget after restart
	seed        int64
}

// defaultRecoverParams: the checkpoint interval is deliberately wide
// relative to block production so the restarted replica exercises both
// recovery paths — the anchor jump to the cluster's stable checkpoint AND
// paged block transfer for the executed range above it. (A tight interval
// degenerates to a pure jump: everything below the watermark is
// garbage-collected the moment it stabilizes.)
func defaultRecoverParams() recoverParams {
	return recoverParams{
		dbRequests:  200,
		bftSize:     4,
		maxParallel: 32,
		checkpoint:  16,
		loadEvery:   20 * time.Millisecond,
		crashAt:     1037 * time.Millisecond,
		restartAt:   3 * time.Second,
		loadUntil:   3200 * time.Millisecond,
		deadline:    30 * time.Second,
		seed:        1,
	}
}

// RecoverScenario runs the crash-restart experiment at each scale under
// both modes.
func RecoverScenario(scales []int) ([]RecoverResult, error) {
	if len(scales) == 0 {
		scales = []int{4, 8}
	}
	var out []RecoverResult
	for _, n := range scales {
		for _, durable := range []bool{true, false} {
			r, err := recoverOnce(n, durable, defaultRecoverParams())
			if err != nil {
				return nil, fmt.Errorf("recover n=%d %s: %w", n, r.Mode, err)
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// recoverOnce builds an n-replica cluster where every replica persists to a
// deterministic in-memory store, kills the last non-leader replica at
// crashAt, restarts it at restartAt — rebuilt over its surviving store
// (durable) or empty with state transfer disabled (baseline) — and
// measures catch-up.
func recoverOnce(n int, durable bool, p recoverParams) (RecoverResult, error) {
	res := RecoverResult{N: n, Mode: "durable"}
	if !durable {
		res.Mode = "baseline"
	}
	if n < 4 {
		return res, fmt.Errorf("need n >= 4, got %d", n)
	}
	victim := types.ReplicaID(n - 1)

	net := netConfig()
	net.TickInterval = 5 * time.Millisecond
	net.Seed = p.seed

	// One deterministic in-memory store per replica; it survives the crash
	// and is handed to the rebuilt victim, exactly as an on-disk WAL
	// survives a process restart.
	stores := make([]storage.Store, n)
	for i := range stores {
		stores[i] = storage.NewMemLog()
	}
	baseline := !durable

	c, err := leopardClusterDepth(n, p.dbRequests, p.bftSize, 0, net, func(cfg *leopard.Config) {
		cfg.ViewChangeTimeout = time.Hour // the victim is not the leader
		cfg.RetrievalTimeout = 50 * time.Millisecond
		cfg.MaxParallel = p.maxParallel
		cfg.CheckpointEvery = p.checkpoint
		cfg.MaxOutstandingDatablocks = 2
		cfg.Store = stores[cfg.ID]
		if baseline {
			cfg.DisableStateTransfer = true
			if cfg.ID == types.ReplicaID(n-1) {
				cfg.Store = nil // the baseline victim restarts empty
			}
		}
	})
	if err != nil {
		return res, err
	}

	// Re-votes for the transferred range: count agreement votes the victim
	// sends for seqs at or below the cluster height captured at restart.
	var heightAtRestart types.SeqNum
	var restarted bool
	c.Net.SetFilter(func(now time.Duration, from, to types.ReplicaID, msg transport.Message) bool {
		if restarted && from == victim {
			if v, ok := msg.(*leopard.VoteMsg); ok && v.Block.Seq <= heightAtRestart {
				res.ReVotes++
			}
		}
		return true
	})

	c.Start()

	// Deterministic load: two non-leader, non-victim generators submit one
	// datablock's worth of requests every loadEvery until loadUntil.
	leader := c.Replicas[0].Leader()
	var generators []types.ReplicaID
	for i := 0; i < n && len(generators) < 2; i++ {
		id := types.ReplicaID(i)
		if id != leader && id != victim {
			generators = append(generators, id)
		}
	}
	var scheduleLoad func(at time.Duration)
	scheduleLoad = func(at time.Duration) {
		c.Net.ScheduleCall(at, func(now time.Duration) {
			if now >= p.loadUntil {
				return
			}
			for _, g := range generators {
				c.SubmitN(g, p.dbRequests)
			}
			scheduleLoad(now + p.loadEvery)
		})
	}
	scheduleLoad(50 * time.Millisecond)

	clusterHeight := func() types.SeqNum {
		var h types.SeqNum
		for i, r := range c.Replicas {
			if types.ReplicaID(i) == victim {
				continue
			}
			if e := r.(*leopard.Node).ExecutedTo(); e > h {
				h = e
			}
		}
		return h
	}

	c.Net.ScheduleCall(p.crashAt, func(now time.Duration) {
		c.Net.Crash(victim)
	})
	c.Net.Run(p.restartAt)

	heightAtRestart = clusterHeight()
	if heightAtRestart == 0 {
		return res, fmt.Errorf("cluster made no progress before restart")
	}
	victimBefore := c.Replicas[victim].(*leopard.Node)
	if victimBefore.ExecutedTo() >= heightAtRestart {
		return res, fmt.Errorf("victim not behind at restart: %d >= %d", victimBefore.ExecutedTo(), heightAtRestart)
	}
	res.HeightAtRestart = heightAtRestart
	restarted = true
	if err := c.Restart(victim); err != nil {
		return res, err
	}
	restartTime := c.Net.Now()
	node := c.Replicas[victim].(*leopard.Node)

	caught := func() bool { return node.ExecutedTo() >= clusterHeight() }
	res.CaughtUp = c.RunUntil(restartTime+p.deadline, 10*time.Millisecond, caught)
	st := node.Stats()
	res.BlocksReplayed = st.BlocksReplayed
	res.StateBlocks = st.StateBlocksApplied
	res.Retrievals = st.Retrievals
	res.HeightCaught = node.ExecutedTo()
	if res.CaughtUp {
		res.CatchupTime = c.Net.Now() - restartTime
	}
	for i := 0; i < n; i++ {
		bw := c.Net.Stats(types.ReplicaID(i))
		res.traffic += fmt.Sprintf("%d:%d/%d ", i, bw.TotalSent(), bw.TotalReceived())
	}
	return res, nil
}

// RecoverRunDigest renders one durable-mode run — the victim's counters
// plus every replica's per-class bandwidth totals — as a deterministic
// string: two identically-seeded runs must produce byte-identical digests
// (TestRecoverScenarioDeterministic).
func RecoverRunDigest(n int, p recoverParams) (string, error) {
	r, err := recoverOnce(n, true, p)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("n=%d caught=%v t=%v h0=%d h1=%d replayed=%d transferred=%d retr=%d revotes=%d traffic=%s",
		r.N, r.CaughtUp, r.CatchupTime, r.HeightAtRestart, r.HeightCaught,
		r.BlocksReplayed, r.StateBlocks, r.Retrievals, r.ReVotes, r.traffic), nil
}
