package experiments

import (
	"bytes"
	"testing"
	"time"

	"leopard/internal/crypto"
	"leopard/internal/harness"
	"leopard/internal/obs"
	"leopard/internal/storage"
	"leopard/internal/types"
)

// withTracing installs a fresh process collector for one test and returns
// it, restoring the previous state on cleanup.
func withTracing(t *testing.T) *obs.Collector {
	t.Helper()
	prev := Tracing
	col := obs.NewCollector(obs.DefaultRingCap)
	Tracing = col
	t.Cleanup(func() { Tracing = prev })
	return col
}

// TestChaosTraceDeterministic is the trace determinism gate: two
// identically-seeded traced chaos runs must export byte-identical Chrome
// trace JSON. Any wall-clock read, map-order dependence or goroutine race
// on the emit path shows up here as a byte diff.
func TestChaosTraceDeterministic(t *testing.T) {
	run := func() []byte {
		col := withTracing(t)
		p := defaultChaosParams()
		plan := chaosPlans(4, p.seed)[0]
		r, err := chaosOnce(4, plan, p)
		if err != nil {
			t.Fatal(err)
		}
		if r.Height == 0 {
			t.Fatalf("plan %s made no progress", plan.Name)
		}
		var buf bytes.Buffer
		if err := col.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := run()
	second := run()
	if !bytes.Equal(first, second) {
		t.Fatalf("identically-seeded traced runs exported different traces (%d vs %d bytes)",
			len(first), len(second))
	}
	if !bytes.Contains(first, []byte("request_admitted")) ||
		!bytes.Contains(first, []byte("block_executed")) {
		t.Fatalf("trace export missing lifecycle events:\n%.400s", first)
	}
}

// TestRotateDigestUnchangedByTracing asserts tracing is purely
// observational: the rotate run digest — traffic, CPU-stage, frontier and
// chain-state signature — is byte-identical with and without a tracer
// attached. In virtual time this is also the "≤5% overhead" claim in its
// strongest form: a traced run takes exactly the same simulated schedule.
func TestRotateDigestUnchangedByTracing(t *testing.T) {
	prev := Tracing
	Tracing = nil
	untraced, err := RotateRunDigest(8)
	Tracing = prev
	if err != nil {
		t.Fatal(err)
	}
	col := withTracing(t)
	traced, err := RotateRunDigest(8)
	if err != nil {
		t.Fatal(err)
	}
	if untraced != traced {
		t.Fatalf("tracing changed the run:\n  untraced: %s\n  traced:   %s", untraced, traced)
	}
	total := 0
	for _, ts := range col.Runs() {
		for i := 0; i < ts.Size(); i++ {
			total += len(ts.Tracer(i).Events())
		}
	}
	if total == 0 {
		t.Fatal("traced run recorded no events")
	}
}

// TestViolationPostMortemDumpsTrace induces an invariant violation on a
// traced cluster and asserts the checker captured a non-empty per-replica
// event history at that moment.
func TestViolationPostMortemDumpsTrace(t *testing.T) {
	withTracing(t)
	const n = 4
	p := defaultChaosParams()
	suite, err := crypto.NewSimSuite(n, []byte("chaos"))
	if err != nil {
		t.Fatal(err)
	}
	ic := harness.NewInvariantChecker(suite)
	stores := make([]storage.Store, n)
	for i := range stores {
		stores[i] = storage.NewMemLog()
		ic.RegisterStore(types.ReplicaID(i), stores[i])
	}
	c, err := chaosCluster(n, p, suite, ic, stores, traceRun("postmortem", n), nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	chaosLoad(c, []types.ReplicaID{1, 2}, p, 400*time.Millisecond)
	c.Net.Run(600 * time.Millisecond)
	if ic.PostMortem() != "" {
		t.Fatalf("post-mortem captured before any violation:\n%s", ic.PostMortem())
	}
	ic.Violate("induced violation for post-mortem test")
	pm := ic.PostMortem()
	if pm == "" {
		t.Fatal("violation on a traced cluster produced no post-mortem")
	}
	for i := 0; i < n; i++ {
		if !bytes.Contains([]byte(pm), []byte("replica "+string(rune('0'+i))+":")) {
			t.Fatalf("post-mortem missing replica %d section:\n%s", i, pm)
		}
	}
	if !bytes.Contains([]byte(pm), []byte("block_executed")) {
		t.Fatalf("post-mortem shows no executed blocks:\n%s", pm)
	}
}
