package experiments

import (
	"fmt"

	"leopard/internal/obs"
)

// Tracing, when set, makes the trace-aware scenarios (chaos, chaos-rotate,
// rotate) record a per-replica structured event trace for every run they
// build. cmd/leopard-sim sets it for -trace, the tests for the trace
// determinism gate; like ErasureOpts it is package state read at cluster
// build time. Traces are stamped from the simulated clock, so two
// identically-seeded traced runs export byte-identical traces — and a
// traced run behaves identically to an untraced one (the tracer only
// observes; TestRotateDigestUnchangedByTracing).
var Tracing *obs.Collector

// traceRun opens one run's TraceSet under the process collector. It
// returns nil when tracing is off; every consumer (harness.Options.Trace,
// leopard.Config.Tracer via TraceSet.Tracer, InvariantChecker.AttachTrace)
// is nil-safe, so call sites wire it unconditionally.
func traceRun(label string, n int) *obs.TraceSet {
	if Tracing == nil {
		return nil
	}
	return Tracing.NewRun(fmt.Sprintf("%s n=%d", label, n), n)
}
