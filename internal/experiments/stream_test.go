package experiments

import (
	"testing"
	"time"

	"leopard/internal/simnet"
)

// testStreamParams shrinks the stream scenario so the regression runs in
// seconds: ~70 KiB datablocks, a 10 Mbps slow receiver on 100 Mbps links,
// a 32 KiB credit window and a baseline queue of under two datablocks.
func testStreamParams() streamParams {
	return streamParams{
		dbRequests: 512,
		blocksPer:  3,
		linkBps:    100e6,
		slowBps:    10e6,
		window:     32 << 10,
		chunk:      8 << 10,
		dropBudget: 128 << 10,
		parkBudget: 8 << 20,
		timeout:    90 * time.Second,
	}
}

// TestStreamScenarioCreditVsDrop is the acceptance regression for the
// streamed bulk lane: with one slow receiver under a datablock fan-out,
// the credit-based run must complete with zero bulk drops and no
// retrieval repair, while the drop-on-overflow baseline sheds datablocks
// and leans on retrieval to converge.
func TestStreamScenarioCreditVsDrop(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	const n = 4
	stream, err := streamOnce(n, simnet.BulkCredit, testStreamParams())
	if err != nil {
		t.Fatalf("stream mode: %v", err)
	}
	drop, err := streamOnce(n, simnet.BulkDrop, testStreamParams())
	if err != nil {
		t.Fatalf("drop baseline: %v", err)
	}
	t.Logf("stream: %+v", stream)
	t.Logf("drop:   %+v", drop)

	// The credit run parks instead of dropping: every datablock arrives
	// by dissemination, so no transport loss and no repair traffic.
	if stream.BulkDrops != 0 {
		t.Errorf("credit run dropped %d bulk frames, want 0", stream.BulkDrops)
	}
	if stream.Retrievals != 0 {
		t.Errorf("credit run needed %d retrievals, want 0", stream.Retrievals)
	}
	// The backlog it parked instead must be visible — and bounded by the
	// park budget.
	if stream.PeakQueuedBytes == 0 {
		t.Error("credit run recorded no parked backlog despite the slow receiver")
	}
	if stream.PeakQueuedBytes > testStreamParams().parkBudget {
		t.Errorf("parked %d bytes over the %d budget", stream.PeakQueuedBytes, testStreamParams().parkBudget)
	}

	// The baseline's bounded queue sheds datablocks, and the slow replica
	// converges only through retrieval retries.
	if drop.BulkDrops == 0 {
		t.Error("drop baseline lost no frames: the scenario exerted no pressure")
	}
	if drop.Retrievals == 0 {
		t.Error("drop baseline converged without retrieval: drops were free?")
	}
	// Repairing after the fact cannot beat never losing the data.
	if stream.Converged > drop.Converged {
		t.Errorf("credit run converged in %v, slower than the drop baseline's %v",
			stream.Converged, drop.Converged)
	}
}
