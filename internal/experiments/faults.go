package experiments

import (
	"fmt"
	"time"

	"leopard/internal/leopard"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// RetrievalResult is one row of Fig. 12 / Table V: the cost of recovering
// one datablock of 2000 requests at scale n.
type RetrievalResult struct {
	N             int
	RecoverBytes  int64 // received by the recovering replica
	RespondBytes  int64 // sent by one responding replica
	RetrievalTime time.Duration
	LeaderRespond bool // true under the A1 ablation (leader-only serving)
}

// Fig12 reproduces Fig. 12 and Table V: a victim replica misses one
// 2000-request datablock and recovers it from the committee; leaderOnly
// runs the A1 ablation where only the leader serves (full copies).
func Fig12(scales []int, leaderOnly bool) ([]RetrievalResult, error) {
	if len(scales) == 0 {
		scales = []int{4, 7, 16, 32, 64, 128}
	}
	var out []RetrievalResult
	for _, n := range scales {
		r, err := retrievalOnce(n, leaderOnly)
		if err != nil {
			return nil, fmt.Errorf("fig12 n=%d: %w", n, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func retrievalOnce(n int, leaderOnly bool) (RetrievalResult, error) {
	const dbRequests = 2000 // paper: a datablock of 2000 128-byte requests
	net := netConfig()
	net.TickInterval = 2 * time.Millisecond
	// No background saturation: the paper measures retrieving one
	// datablock as a controlled microbenchmark.
	c, err := leopardClusterDepth(n, dbRequests, 1, 0, net, func(cfg *leopard.Config) {
		cfg.LeaderRetrieval = leaderOnly
		cfg.RetrievalTimeout = 10 * time.Millisecond
		cfg.BatchTimeout = 5 * time.Millisecond
		cfg.ViewChangeTimeout = time.Hour
	})
	if err != nil {
		return RetrievalResult{}, err
	}
	// The victim (replica 0) never receives the generator's datablocks
	// directly; leader of view 1 is replica 1, generator is replica 2.
	const victim, generator = types.ReplicaID(0), types.ReplicaID(2)
	c.Net.SetFilter(func(now time.Duration, from, to types.ReplicaID, msg transport.Message) bool {
		if _, isDB := msg.(*leopard.DatablockMsg); isDB && from == generator && to == victim {
			return false
		}
		return true
	})
	c.Start()
	c.SubmitN(generator, dbRequests)

	victimNode, ok := c.Replicas[victim].(*leopard.Node)
	if !ok {
		return RetrievalResult{}, fmt.Errorf("replica 0 is not a leopard node")
	}
	start := c.Net.Now()
	done := c.RunUntil(start+30*time.Second, 2*time.Millisecond, func() bool {
		return victimNode.Stats().Retrievals >= 1
	})
	if !done {
		return RetrievalResult{}, fmt.Errorf("retrieval did not complete at n=%d", n)
	}
	elapsed := c.Net.Now() - start

	recover := c.Net.Stats(victim).Received[transport.ClassRetrieval]
	// Responding cost: the maximum over responders (the paper reports the
	// per-replica responding cost; under A1 only the leader responds).
	var respond int64
	for i := 0; i < n; i++ {
		if s := c.Net.Stats(types.ReplicaID(i)).Sent[transport.ClassRetrieval]; s > respond {
			respond = s
		}
	}
	// Subtract the victim's own query broadcast from its received count?
	// No: recover counts only received retrieval bytes, queries are sent.
	return RetrievalResult{
		N:             n,
		RecoverBytes:  recover,
		RespondBytes:  respond,
		RetrievalTime: elapsed,
		LeaderRespond: leaderOnly,
	}, nil
}

// ViewChangeResult is one row of Fig. 13.
type ViewChangeResult struct {
	N                int
	Time             time.Duration // trigger to completion at all honest replicas
	TotalBytes       int64         // all view-change-class traffic
	LeaderSent       int64         // new leader's sent bytes (all classes, during VC)
	LeaderReceived   int64
	PerReplicaSent   int64 // average non-leader sent bytes during VC
	PerReplicaRecved int64
}

// Fig13 reproduces Fig. 13: view-change time and communication cost after
// crashing the leader mid-run at scale n.
func Fig13(scales []int) ([]ViewChangeResult, error) {
	if len(scales) == 0 {
		scales = []int{4, 8, 13, 32, 64, 128}
	}
	var out []ViewChangeResult
	for _, n := range scales {
		r, err := viewChangeOnce(n)
		if err != nil {
			return nil, fmt.Errorf("fig13 n=%d: %w", n, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func viewChangeOnce(n int) (ViewChangeResult, error) {
	dbSize, bftSize, _ := TableII(n)
	if n <= 16 {
		dbSize, bftSize = 500, 10
	}
	vcTimeout := 150*time.Millisecond + time.Duration(n)*5*time.Millisecond
	net := netConfig()
	c, err := leopardCluster(n, dbSize, bftSize, net, func(cfg *leopard.Config) {
		cfg.ViewChangeTimeout = vcTimeout
		// Keep the number of outstanding BFTblocks small, as the paper
		// argues Leopard's large per-block request counts allow; this
		// bounds the O(n) view-change message sizes.
		cfg.MaxParallel = 16
	})
	if err != nil {
		return ViewChangeResult{}, err
	}
	c.Start()
	// Let the system process load so outstanding BFTblocks exist when the
	// leader dies (the paper triggers the view change at a random point).
	c.Net.Run(700 * time.Millisecond)

	oldLeader := c.Replicas[0].Leader()
	newLeader := types.LeaderOf(2, n)
	c.Net.ResetStats()
	crashAt := c.Net.Now()
	c.Net.Crash(oldLeader)

	nodes := make([]*leopard.Node, 0, n)
	for _, r := range c.Replicas {
		if node, ok := r.(*leopard.Node); ok {
			nodes = append(nodes, node)
		}
	}
	// The paper measures from the trigger, not from the crash: first wait
	// for any honest replica to enter the view change, then for all of
	// them to complete it.
	triggered := func() bool {
		for _, node := range nodes {
			if node.ID() != oldLeader && node.InViewChange() {
				return true
			}
		}
		return false
	}
	if ok := c.RunUntil(crashAt+60*time.Second, time.Millisecond, triggered); !ok {
		return ViewChangeResult{}, fmt.Errorf("view change never triggered at n=%d", n)
	}
	triggerAt := c.Net.Now()
	allMoved := func() bool {
		for _, node := range nodes {
			if node.ID() == oldLeader {
				continue
			}
			if node.View() < 2 {
				return false
			}
		}
		return true
	}
	if ok := c.RunUntil(crashAt+60*time.Second, time.Millisecond, allMoved); !ok {
		return ViewChangeResult{}, fmt.Errorf("view change did not complete at n=%d", n)
	}
	vcTime := c.Net.Now() - triggerAt

	var total, leaderSent, leaderRecv, repSent, repRecv int64
	replicas := 0
	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		st := c.Net.Stats(id)
		sent := st.Sent[transport.ClassViewChange]
		recv := st.Received[transport.ClassViewChange]
		total += sent
		switch id {
		case newLeader:
			leaderSent, leaderRecv = sent, recv
		case oldLeader:
			// excluded: it is dead
		default:
			repSent += sent
			repRecv += recv
			replicas++
		}
	}
	if replicas > 0 {
		repSent /= int64(replicas)
		repRecv /= int64(replicas)
	}
	return ViewChangeResult{
		N:                n,
		Time:             vcTime,
		TotalBytes:       total,
		LeaderSent:       leaderSent,
		LeaderReceived:   leaderRecv,
		PerReplicaSent:   repSent,
		PerReplicaRecved: repRecv,
	}, nil
}

// LaneResult is one row of the lane-scheduling scenario: view-change
// convergence time while datablock dissemination saturates every link,
// with strict control-over-bulk lanes versus the single-FIFO baseline.
type LaneResult struct {
	N       int
	Laned   time.Duration // convergence with control-lane priority
	SingleQ time.Duration // convergence with DisableLanePriority (FIFO)
}

// ViewChangeUnderBulk measures how long a view change takes to converge
// while the bulk lane is saturated with datablock traffic on throttled
// links. With strict lane scheduling the timeout votes, view-change
// messages and new-view announcement bypass the queued datablock
// transfers; in the single-queue baseline they wait behind megabytes of
// bulk, inflating convergence. This is the simnet mirror of the TCP
// runtime's per-peer lane scheduler (tcp.Config.DisableLanes).
func ViewChangeUnderBulk(scales []int) ([]LaneResult, error) {
	if len(scales) == 0 {
		scales = []int{4, 8, 16, 32}
	}
	var out []LaneResult
	for _, n := range scales {
		laned, err := vcUnderBulkOnce(n, false)
		if err != nil {
			return nil, fmt.Errorf("vclanes n=%d laned: %w", n, err)
		}
		fifo, err := vcUnderBulkOnce(n, true)
		if err != nil {
			return nil, fmt.Errorf("vclanes n=%d fifo: %w", n, err)
		}
		out = append(out, LaneResult{N: n, Laned: laned, SingleQ: fifo})
	}
	return out, nil
}

func vcUnderBulkOnce(n int, disableLanes bool) (time.Duration, error) {
	// Throttled links so the injected datablock burst books every
	// egress/ingress pipe solid: 500-request datablocks are ~64 KB, ~5 ms
	// of wire time each at 100 Mbps, broadcast to n-1 peers.
	net := netConfig()
	net.EgressBps = 100e6
	net.IngressBps = 100e6
	net.ProcBps = 0
	net.TickInterval = 5 * time.Millisecond
	net.DisableLanePriority = disableLanes
	vcTimeout := 150 * time.Millisecond
	c, err := leopardClusterDepth(n, 500, 10, 0 /* no background injection */, net, func(cfg *leopard.Config) {
		cfg.ViewChangeTimeout = vcTimeout
		cfg.BatchTimeout = 5 * time.Millisecond
		cfg.MaxParallel = 16
		// Let every replica push a deep burst of datablocks at once.
		cfg.MaxOutstandingDatablocks = 8
		cfg.RetrievalTimeout = time.Hour // no retrieval noise while queued
	})
	if err != nil {
		return 0, err
	}
	c.Start()
	c.Net.Run(100 * time.Millisecond) // idle warm-up

	// Crash the leader, then saturate the bulk lanes: every non-leader
	// packs and broadcasts 8 datablocks (~500 ms of egress backlog per
	// replica at n=16) that can never confirm. The stalled confirmations
	// trip the view-change timers while the pipes are full of bulk, so
	// the timeout votes, view-change messages and new-view announcement
	// must either bypass the backlog (lanes) or queue through it (FIFO).
	oldLeader := c.Replicas[0].Leader()
	crashAt := c.Net.Now()
	c.Net.Crash(oldLeader)
	for i := 0; i < n; i++ {
		if types.ReplicaID(i) != oldLeader {
			c.SubmitN(types.ReplicaID(i), 8*500)
		}
	}

	nodes := make([]*leopard.Node, 0, n)
	for _, r := range c.Replicas {
		if node, ok := r.(*leopard.Node); ok {
			nodes = append(nodes, node)
		}
	}
	triggered := func() bool {
		for _, node := range nodes {
			if node.ID() != oldLeader && node.InViewChange() {
				return true
			}
		}
		return false
	}
	if ok := c.RunUntil(crashAt+60*time.Second, time.Millisecond, triggered); !ok {
		return 0, fmt.Errorf("view change never triggered")
	}
	triggerAt := c.Net.Now()
	allMoved := func() bool {
		for _, node := range nodes {
			if node.ID() == oldLeader {
				continue
			}
			if node.View() < 2 {
				return false
			}
		}
		return true
	}
	if ok := c.RunUntil(crashAt+60*time.Second, time.Millisecond, allMoved); !ok {
		return 0, fmt.Errorf("view change did not complete")
	}
	return c.Net.Now() - triggerAt, nil
}

// AblationAlphaRow compares fixed vs adaptive datablock sizing (A3).
type AblationAlphaRow struct {
	N            int
	FixedTput    float64
	AdaptiveTput float64
}

// AblationAdaptiveAlpha measures throughput with a fixed small datablock
// size versus α = λ(n-1) adaptive sizing, demonstrating the paper's recipe
// for a constant scaling factor.
func AblationAdaptiveAlpha(scales []int) ([]AblationAlphaRow, error) {
	if len(scales) == 0 {
		scales = []int{16, 64, 128, 256}
	}
	const fixedDB = 200 // deliberately small: overhead grows with n
	var out []AblationAlphaRow
	for _, n := range scales {
		fixed, err := LeopardThroughput(n, fixedDB, 50)
		if err != nil {
			return nil, err
		}
		// α = λ(n-1) with λ = 16 requests' worth of bytes per replica.
		adaptiveDB := 16 * (n - 1)
		if adaptiveDB < 50 {
			adaptiveDB = 50
		}
		adaptive, err := LeopardThroughput(n, adaptiveDB, 50)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationAlphaRow{
			N:            n,
			FixedTput:    fixed.Throughput,
			AdaptiveTput: adaptive.Throughput,
		})
	}
	return out, nil
}

// SelectiveAttackResult measures normal-case throughput against f faulty
// replicas running the selective attack (paper §VI-D setting).
type SelectiveAttackResult struct {
	N          int
	Throughput float64
	Retrievals int64
}

// SelectiveAttack runs Leopard with f selective-attacking replicas; the
// throughput should remain positive thanks to the ready round + retrieval.
func SelectiveAttack(n int) (SelectiveAttackResult, error) {
	dbSize, bftSize, _ := TableII(n)
	if n <= 16 {
		dbSize, bftSize = 500, 10
	}
	c, err := leopardCluster(n, dbSize, bftSize, netConfig(), func(cfg *leopard.Config) {
		cfg.RetrievalTimeout = 20 * time.Millisecond
	})
	if err != nil {
		return SelectiveAttackResult{}, err
	}
	q, _ := types.NewQuorumParams(n)
	// The highest-id f replicas are faulty: their datablocks reach only a
	// bare quorum (the first 2f+1 replicas).
	var targets []types.ReplicaID
	for i := 0; i < q.Quorum(); i++ {
		targets = append(targets, types.ReplicaID(i))
	}
	faulty := 0
	for i := n - 1; i >= 0 && faulty < q.F; i-- {
		if node, ok := c.Replicas[i].(*leopard.Node); ok && types.ReplicaID(i) != c.Replicas[0].Leader() {
			node.SetSelectiveAttack(targets)
			faulty++
		}
	}
	c.Start()
	c.Warmup(warmup)
	res := c.MeasureFor(measure)
	var retrievals int64
	for _, r := range c.Replicas {
		if node, ok := r.(*leopard.Node); ok {
			retrievals += node.Stats().Retrievals
		}
	}
	return SelectiveAttackResult{N: n, Throughput: res.Throughput, Retrievals: retrievals}, nil
}
