package experiments

import (
	"testing"
)

// TestCalibrationSmallScale checks the two systems land in the paper's
// processing-bound regime at n=16: both near the ~1.3e5 req/s peak.
func TestCalibrationSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	leo, err := LeopardThroughput(16, 2000, 100)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := HotStuffThroughput(16, 800)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("n=16: leopard=%.0f req/s (lat %v, leader %.0f Mbps), hotstuff=%.0f req/s (lat %v, leader %.0f Mbps)",
		leo.Throughput, leo.MeanLat, leo.LeaderMbps, hs.Throughput, hs.MeanLat, hs.LeaderMbps)
	if leo.Throughput < 5e4 {
		t.Errorf("Leopard throughput %.0f too low at n=16", leo.Throughput)
	}
	if hs.Throughput < 5e4 {
		t.Errorf("HotStuff throughput %.0f too low at n=16", hs.Throughput)
	}
}

// TestLeopardBeatsHotStuffAtScale reproduces the headline crossover: at
// n=128, Leopard sustains high throughput while HotStuff's leader egress
// saturates.
func TestLeopardBeatsHotStuffAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	const n = 128
	dbSize, bftSize, hsBatch := TableII(n)
	leo, err := LeopardThroughput(n, dbSize, bftSize)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := HotStuffThroughput(n, hsBatch)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("n=%d: leopard=%.0f req/s, hotstuff=%.0f req/s, ratio=%.1f",
		n, leo.Throughput, hs.Throughput, leo.Throughput/hs.Throughput)
	if leo.Throughput < 1.5*hs.Throughput {
		t.Errorf("Leopard %.0f should clearly beat HotStuff %.0f at n=%d", leo.Throughput, hs.Throughput, n)
	}
}
