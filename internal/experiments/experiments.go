// Package experiments reproduces every table and figure of the Leopard
// paper's evaluation (§VI). Each experiment builds a simulated cluster via
// internal/harness, runs it in virtual time, and returns the same rows the
// paper reports. bench_test.go and cmd/leopard-sim are thin wrappers.
//
// Calibration (see DESIGN.md §1): per-replica NIC capacity is the paper's
// 9.8 Gbps; the per-replica processing rate models the ~4-vCPU EC2
// instances on which both systems peak around 1.3e5 requests/sec — far
// below NIC line rate — so small-scale runs are processing-bound and
// large-scale runs are bandwidth-bound, matching the paper's regimes.
package experiments

import (
	"fmt"
	"time"

	"leopard/internal/crypto"
	"leopard/internal/erasure"
	"leopard/internal/harness"
	"leopard/internal/hotstuff"
	"leopard/internal/leopard"
	"leopard/internal/metrics"
	"leopard/internal/pbft"
	"leopard/internal/protocol"
	"leopard/internal/simnet"
	"leopard/internal/types"
)

// Evaluation constants shared by all experiments (paper §VI).
const (
	PayloadSize = 128
	// ProcessingBps is the calibrated per-replica processing rate.
	ProcessingBps = 140e6
	// NICBps is the EC2 c5.xlarge NIC rate used by the paper.
	NICBps = 9.8e9

	warmup  = 1 * time.Second
	measure = 2 * time.Second
)

// ErasureOpts tunes the Reed–Solomon codec of every Leopard replica built
// by the experiments (worker parallelism, decode-matrix cache size). The
// zero value keeps the erasure package defaults; cmd/leopard-sim exposes
// it as -erasure.parallel / -erasure.cache.
var ErasureOpts erasure.Options

// TableII returns the paper's Table II batch sizes for scale n:
// (datablock requests, BFTblock links) for Leopard and the HotStuff batch.
func TableII(n int) (dbSize, bftSize, hsBatch int) {
	switch {
	case n <= 64:
		return 2000, 100, 800
	case n <= 128:
		return 3000, 300, 800
	case n <= 300:
		return 4000, 300, 800
	default:
		return 4000, 400, 800
	}
}

// netConfig returns the default simulated network for scale n.
func netConfig() simnet.Config {
	cfg := simnet.DefaultConfig()
	cfg.EgressBps = NICBps
	cfg.IngressBps = NICBps
	cfg.ProcBps = ProcessingBps
	return cfg
}

// Point is one measured configuration.
type Point struct {
	N          int
	Param      float64 // the swept parameter (batch size, bandwidth, ...)
	Throughput float64 // requests per second
	MeanLat    time.Duration
	LeaderMbps float64 // leader's total bandwidth utilization
}

// leopardCluster builds an n-replica Leopard cluster on simnet under
// closed-loop saturation.
func leopardCluster(n, dbSize, bftSize int, net simnet.Config, mutate func(*leopard.Config)) (*harness.Cluster, error) {
	return leopardClusterDepth(n, dbSize, bftSize, 2*dbSize, net, mutate)
}

// leopardClusterDepth is leopardCluster with an explicit saturation depth;
// zero disables background load (controlled microbenchmarks).
func leopardClusterDepth(n, dbSize, bftSize, depth int, net simnet.Config, mutate func(*leopard.Config)) (*harness.Cluster, error) {
	q, err := types.NewQuorumParams(n)
	if err != nil {
		return nil, err
	}
	suite, err := crypto.NewSimSuite(n, []byte("experiments"))
	if err != nil {
		return nil, err
	}
	return harness.NewCluster(harness.Options{
		N:               n,
		Net:             net,
		PayloadSize:     PayloadSize,
		SaturationDepth: depth,
		LatencySample:   16,
		Build: func(id types.ReplicaID) (protocol.Replica, error) {
			cfg := leopard.Config{
				ID:               id,
				Quorum:           q,
				Suite:            suite,
				DatablockSize:    dbSize,
				BFTBlockSize:     bftSize,
				TrustDigests:     true,
				SkipRequestDedup: true,
				// Throughput experiments measure the normal case under an
				// honest leader; progress stalls are queueing, not leader
				// faults, so the view-change timer stays out of the way
				// (fault experiments override this).
				ViewChangeTimeout: time.Hour,
				// A small window bounds the in-flight backlog so warmup
				// reaches steady state quickly even at n = 600.
				MaxOutstandingDatablocks: 2,
				Erasure:                  ErasureOpts,
			}
			if mutate != nil {
				mutate(&cfg)
			}
			return leopard.NewNode(cfg)
		},
	})
}

// hotstuffCluster builds an n-replica HotStuff cluster on simnet.
func hotstuffCluster(n, batch int, net simnet.Config) (*harness.Cluster, error) {
	q, err := types.NewQuorumParams(n)
	if err != nil {
		return nil, err
	}
	suite, err := crypto.NewSimSuite(n, []byte("experiments"))
	if err != nil {
		return nil, err
	}
	return harness.NewCluster(harness.Options{
		N:               n,
		Net:             net,
		PayloadSize:     PayloadSize,
		SaturationDepth: 4 * batch,
		SubmitToLeader:  true,
		LatencySample:   16,
		Build: func(id types.ReplicaID) (protocol.Replica, error) {
			node, err := hotstuff.NewNode(hotstuff.Config{ID: id, Quorum: q, Suite: suite, BatchSize: batch})
			if err != nil {
				return nil, err
			}
			node.TrustDigests = true
			node.SkipRequestDedup = true
			return node, nil
		},
	})
}

// pbftCluster builds an n-replica PBFT cluster on simnet.
func pbftCluster(n, batch int, net simnet.Config) (*harness.Cluster, error) {
	q, err := types.NewQuorumParams(n)
	if err != nil {
		return nil, err
	}
	suite, err := crypto.NewSimSuite(n, []byte("experiments"))
	if err != nil {
		return nil, err
	}
	return harness.NewCluster(harness.Options{
		N:               n,
		Net:             net,
		PayloadSize:     PayloadSize,
		SaturationDepth: 4 * batch,
		SubmitToLeader:  true,
		LatencySample:   16,
		Build: func(id types.ReplicaID) (protocol.Replica, error) {
			node, err := pbft.NewNode(pbft.Config{ID: id, Quorum: q, Suite: suite, BatchSize: batch})
			if err != nil {
				return nil, err
			}
			node.TrustDigests = true
			node.SkipRequestDedup = true
			return node, nil
		},
	})
}

// measureLong is measureCluster with a longer window so queueing latency
// under saturation (seconds at low bandwidth, as in the paper's Fig. 10)
// is observable within the run.
func measureLong(c *harness.Cluster, n int, param float64) Point {
	c.Start()
	c.Warmup(2 * time.Second)
	res := c.MeasureFor(12 * time.Second)
	leader := c.LeaderStats()
	return Point{
		N:          n,
		Param:      param,
		Throughput: res.Throughput,
		MeanLat:    res.MeanLat,
		LeaderMbps: metrics.Mbps(leader.Total(), res.Elapsed),
	}
}

// measureCluster warms a cluster up and measures one point.
func measureCluster(c *harness.Cluster, n int, param float64) Point {
	c.Start()
	c.Warmup(warmup)
	res := c.MeasureFor(measure)
	leader := c.LeaderStats()
	return Point{
		N:          n,
		Param:      param,
		Throughput: res.Throughput,
		MeanLat:    res.MeanLat,
		LeaderMbps: metrics.Mbps(leader.Total(), res.Elapsed),
	}
}

// LeopardThroughput measures Leopard at scale n with the given batches.
func LeopardThroughput(n, dbSize, bftSize int) (Point, error) {
	c, err := leopardCluster(n, dbSize, bftSize, netConfig(), nil)
	if err != nil {
		return Point{}, err
	}
	return measureCluster(c, n, 0), nil
}

// HotStuffThroughput measures HotStuff at scale n with the given batch.
func HotStuffThroughput(n, batch int) (Point, error) {
	c, err := hotstuffCluster(n, batch, netConfig())
	if err != nil {
		return Point{}, err
	}
	return measureCluster(c, n, float64(batch)), nil
}

// PBFTThroughput measures PBFT at scale n with the given batch.
func PBFTThroughput(n, batch int) (Point, error) {
	c, err := pbftCluster(n, batch, netConfig())
	if err != nil {
		return Point{}, err
	}
	return measureCluster(c, n, float64(batch)), nil
}

// Fig2 reproduces Fig. 2: HotStuff throughput and leader bandwidth as n
// grows — the leader-bottleneck motivation experiment.
func Fig2(scales []int) ([]Point, error) {
	if len(scales) == 0 {
		scales = []int{4, 16, 32, 64, 128, 256, 300}
	}
	var out []Point
	for _, n := range scales {
		_, _, batch := TableII(n)
		p, err := HotStuffThroughput(n, batch)
		if err != nil {
			return nil, fmt.Errorf("fig2 n=%d: %w", n, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// Fig6 reproduces Fig. 6: HotStuff throughput vs batch size.
func Fig6(scales []int, batches []int) ([]Point, error) {
	if len(scales) == 0 {
		scales = []int{32, 64, 128, 256, 300}
	}
	if len(batches) == 0 {
		batches = []int{100, 200, 400, 800, 1200}
	}
	var out []Point
	for _, n := range scales {
		for _, b := range batches {
			p, err := HotStuffThroughput(n, b)
			if err != nil {
				return nil, fmt.Errorf("fig6 n=%d batch=%d: %w", n, b, err)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// Fig7 reproduces Fig. 7: Leopard throughput vs BFTblock size (links per
// proposal) with the datablock size fixed.
func Fig7(scales []int, bftSizes []int) ([]Point, error) {
	if len(scales) == 0 {
		scales = []int{32, 64, 128, 256, 400, 600}
	}
	if len(bftSizes) == 0 {
		bftSizes = []int{10, 50, 100, 200, 400}
	}
	var out []Point
	for _, n := range scales {
		dbSize, _, _ := TableII(n)
		for _, bft := range bftSizes {
			c, err := leopardCluster(n, dbSize, bft, netConfig(), nil)
			if err != nil {
				return nil, fmt.Errorf("fig7 n=%d bft=%d: %w", n, bft, err)
			}
			pt := measureCluster(c, n, float64(bft))
			out = append(out, pt)
		}
	}
	return out, nil
}

// Fig8 reproduces Fig. 8: Leopard throughput vs datablock size at two
// fixed BFTblock sizes (10 and 100).
func Fig8(scales []int, dbSizes []int, bftSize int) ([]Point, error) {
	if len(scales) == 0 {
		scales = []int{32, 64, 128}
	}
	if len(dbSizes) == 0 {
		dbSizes = []int{500, 1000, 2000, 3000, 4000}
	}
	if bftSize == 0 {
		bftSize = 10
	}
	var out []Point
	for _, n := range scales {
		for _, db := range dbSizes {
			c, err := leopardCluster(n, db, bftSize, netConfig(), nil)
			if err != nil {
				return nil, fmt.Errorf("fig8 n=%d db=%d: %w", n, db, err)
			}
			pt := measureCluster(c, n, float64(db))
			out = append(out, pt)
		}
	}
	return out, nil
}

// Fig9Row pairs both systems at one scale.
type Fig9Row struct {
	N        int
	Leopard  Point
	HotStuff *Point // nil above the scale where HotStuff cannot run
}

// Fig9 reproduces Fig. 9: throughput of Leopard and HotStuff vs n with the
// Table II batch sizes. HotStuff is only run to maxHotStuff (the paper's
// implementation could not run beyond 300).
func Fig9(scales []int, maxHotStuff int) ([]Fig9Row, error) {
	if len(scales) == 0 {
		scales = []int{32, 64, 128, 256, 300, 400, 600}
	}
	if maxHotStuff == 0 {
		maxHotStuff = 300
	}
	var out []Fig9Row
	for _, n := range scales {
		dbSize, bftSize, hsBatch := TableII(n)
		leo, err := LeopardThroughput(n, dbSize, bftSize)
		if err != nil {
			return nil, fmt.Errorf("fig9 leopard n=%d: %w", n, err)
		}
		row := Fig9Row{N: n, Leopard: leo}
		if n <= maxHotStuff {
			hs, err := HotStuffThroughput(n, hsBatch)
			if err != nil {
				return nil, fmt.Errorf("fig9 hotstuff n=%d: %w", n, err)
			}
			row.HotStuff = &hs
		}
		out = append(out, row)
	}
	return out, nil
}

// Fig10Row is one (system, n, bandwidth) measurement of the scaling-up
// experiment.
type Fig10Row struct {
	System        string
	N             int
	BandwidthMbps float64
	TputMbps      float64 // confirmed payload bits per second, in Mbps
	MeanLat       time.Duration
}

// Fig10 reproduces Fig. 10: throughput and latency under 20-200 Mbps
// per-replica (half-duplex) bandwidth for both systems.
func Fig10(scales []int, bandwidthsMbps []float64) ([]Fig10Row, error) {
	if len(scales) == 0 {
		scales = []int{4, 16, 64, 128}
	}
	if len(bandwidthsMbps) == 0 {
		bandwidthsMbps = []float64{20, 40, 80, 100, 200}
	}
	var out []Fig10Row
	for _, n := range scales {
		for _, bw := range bandwidthsMbps {
			net := netConfig()
			net.HalfDuplex = true
			net.EgressBps = bw * 1e6
			net.TickInterval = 10 * time.Millisecond

			// Batch sizes are fixed across bandwidths (as in the paper);
			// smaller than Table II so low-bandwidth runs still confirm
			// within the measurement window.
			c, err := leopardCluster(n, 500, 10, net, func(cfg *leopard.Config) {
				cfg.ViewChangeTimeout = time.Hour // low bandwidth, no VC noise
				// Dissemination cycles take seconds on throttled links;
				// a deeper window keeps the pipeline full, and a long
				// retrieval timer models the paper's network-profiled
				// adaptive timer (no spurious queries while blocks are
				// legitimately in flight).
				cfg.MaxOutstandingDatablocks = 8
				cfg.RetrievalTimeout = time.Hour
			})
			if err != nil {
				return nil, err
			}
			pt := measureLong(c, n, bw)
			out = append(out, Fig10Row{
				System: "Leopard", N: n, BandwidthMbps: bw,
				TputMbps: pt.Throughput * PayloadSize * 8 / 1e6,
				MeanLat:  pt.MeanLat,
			})

			hc, err := hotstuffCluster(n, 400, net)
			if err != nil {
				return nil, err
			}
			hpt := measureLong(hc, n, bw)
			out = append(out, Fig10Row{
				System: "HotStuff", N: n, BandwidthMbps: bw,
				TputMbps: hpt.Throughput * PayloadSize * 8 / 1e6,
				MeanLat:  hpt.MeanLat,
			})
		}
	}
	return out, nil
}

// Fig11 reproduces Fig. 11: leader bandwidth utilization vs n for both
// systems under saturation.
func Fig11(scales []int, maxHotStuff int) ([]Fig9Row, error) {
	// Fig 11 reads the LeaderMbps field of the same runs as Fig 9.
	return Fig9(scales, maxHotStuff)
}

// Table3 reproduces Table III: the bandwidth utilization breakdown at the
// leader and at a non-leader replica (n = 32 in the paper).
func Table3(n int) (leaderRows, replicaRows []metrics.BreakdownRow, err error) {
	if n == 0 {
		n = 32
	}
	dbSize, bftSize, _ := TableII(n)
	c, err := leopardCluster(n, dbSize, bftSize, netConfig(), nil)
	if err != nil {
		return nil, nil, err
	}
	c.Start()
	c.Warmup(warmup)
	c.MeasureFor(measure)
	return c.LeaderStats().Breakdown(), c.NonLeaderStats().Breakdown(), nil
}

// Table4 reproduces Table IV: the latency breakdown across Leopard's
// pipeline stages (n = 32 in the paper).
func Table4(n int) ([]metrics.StageRow, error) {
	if n == 0 {
		n = 32
	}
	dbSize, bftSize, _ := TableII(n)
	var nodes []*leopard.Node
	c, err := leopardCluster(n, dbSize, bftSize, netConfig(), nil)
	if err != nil {
		return nil, err
	}
	for _, r := range c.Replicas {
		if node, ok := r.(*leopard.Node); ok {
			nodes = append(nodes, node)
		}
	}
	c.Start()
	c.Warmup(warmup)
	c.MeasureFor(measure)
	// Aggregate stage timers across replicas.
	var agg metrics.StageTimer
	for _, node := range nodes {
		for _, row := range node.Stats().Stages.Rows() {
			agg.Add(row.Stage, row.Total)
		}
	}
	return agg.Rows(), nil
}
