package experiments

import (
	"fmt"
	"time"

	"leopard/internal/crypto"
	"leopard/internal/faultplan"
	"leopard/internal/harness"
	"leopard/internal/leopard"
	"leopard/internal/obs"
	"leopard/internal/protocol"
	"leopard/internal/storage"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// ChaosResult is one fault schedule run under the cluster invariant
// checker: the plan's faults are injected into an otherwise loaded
// cluster, and the checker watches executions, votes, restarts and
// checkpoint certificates for safety/durability violations while a
// bounded-liveness probe asserts the cluster resumes after the schedule
// heals.
type ChaosResult struct {
	N    int
	Plan string
	// Height is the cluster's maximum executed height at the end of the
	// run; ViewChanges sums completed view changes across replicas.
	Height      types.SeqNum
	ViewChanges int64
	// VotesLogged/VotesReloaded sum the vote-ahead log counters: votes
	// persisted before sending, and vote locks restored across restarts.
	VotesLogged   int64
	VotesReloaded int64
	Violations    []string
	// PostMortem is the per-replica event-trace dump captured at the first
	// violation — empty on a clean run, or when tracing was off.
	PostMortem string `json:",omitempty"`

	// traffic is the per-replica sent/received byte signature folded into
	// ChaosRunDigest's determinism assertion.
	traffic string
}

// chaosParams sizes one chaos run; the regression tests shrink it.
type chaosParams struct {
	dbRequests  int
	bftSize     int
	maxParallel int
	checkpoint  int
	loadEvery   time.Duration
	vct         time.Duration // ViewChangeTimeout under scheduled faults
	grace       time.Duration // bounded-liveness budget after the plan heals
	triggerSeq  types.SeqNum  // amnesia: crash the leader at this proposal
	seed        int64
	// rotate runs the whole schedule library with the rotating-leader
	// schedule enabled (Config.RotateLeaders) and the invariant checker's
	// scheduled-proposer check armed.
	rotate bool
}

// rotateMutate composes the rotation flag onto a per-run config mutator.
func (p chaosParams) rotateMutate(mutate func(*leopard.Config)) func(*leopard.Config) {
	if !p.rotate {
		return mutate
	}
	return func(cfg *leopard.Config) {
		cfg.RotateLeaders = true
		if mutate != nil {
			mutate(cfg)
		}
	}
}

// arm wires the rotation-aware checks into a fresh invariant checker.
func (p chaosParams) arm(ic *harness.InvariantChecker, n int) {
	if p.rotate {
		ic.SetRotation(n)
	}
}

func defaultChaosParams() chaosParams {
	return chaosParams{
		dbRequests:  200,
		bftSize:     4,
		maxParallel: 32,
		checkpoint:  8,
		loadEvery:   20 * time.Millisecond,
		vct:         300 * time.Millisecond,
		grace:       4 * time.Second,
		triggerSeq:  4,
		seed:        1,
	}
}

// chaosPlans is the schedule library swept by the chaos experiment. Every
// plan heals: the invariant checker requires executed height to resume
// advancing within the grace period after End().
func chaosPlans(n int, seed int64) []faultplan.Plan {
	ms := time.Millisecond
	leader := types.LeaderOf(1, n)
	f := (n - 1) / 3
	var nonLeaders []types.ReplicaID
	for i := 0; i < n; i++ {
		if id := types.ReplicaID(i); id != leader {
			nonLeaders = append(nonLeaders, id)
		}
	}
	// The minority is the last f non-leaders; the cluster keeps quorum.
	minority := append([]types.ReplicaID(nil), nonLeaders[len(nonLeaders)-f:]...)
	var majority []types.ReplicaID
	for i := 0; i < n; i++ {
		if id := types.ReplicaID(i); !member(minority, id) {
			majority = append(majority, id)
		}
	}
	victim := minority[len(minority)-1]
	skewed := nonLeaders[0]
	return []faultplan.Plan{
		{
			Name: "partition-minority", Seed: seed,
			Partitions: []faultplan.Partition{
				{From: 300 * ms, Until: 900 * ms, A: minority, B: majority},
			},
		},
		{
			// The leader can send but not hear (asymmetric): proposals go
			// out, votes never come back, and the cluster must change view.
			Name: "partition-leader-oneway", Seed: seed + 1,
			Partitions: []faultplan.Partition{
				{From: 300 * ms, Until: 1200 * ms, A: nonLeaders, B: []types.ReplicaID{leader}, OneWay: true},
			},
		},
		{
			Name: "loss-control", Seed: seed + 2,
			Losses: []faultplan.Loss{
				{From: 200 * ms, Until: 800 * ms, Prob: 0.2, ControlOnly: true},
			},
		},
		{
			Name: "delay-skew", Seed: seed + 3,
			Delays: []faultplan.Delay{
				{Start: 300 * ms, Until: 900 * ms, From: -1, To: -1, Extra: 30 * ms, Jitter: 10 * ms},
			},
			Skews: []faultplan.Skew{
				{At: 250 * ms, Replica: skewed, Offset: 40 * ms},
				{At: 950 * ms, Replica: skewed, Offset: 0},
			},
		},
		{
			Name: "crash-restart", Seed: seed + 4,
			Crashes: []faultplan.Crash{
				{At: 400 * ms, Replica: victim, RestartAt: 1000 * ms},
			},
		},
	}
}

func member(ids []types.ReplicaID, id types.ReplicaID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// chaosCluster builds a fully durable n-replica cluster wired into the
// invariant checker: every replica persists to a deterministic in-memory
// store (registered for the durability invariant) and reports executions
// through the checker's per-replica observer.
func chaosCluster(n int, p chaosParams, suite crypto.Suite, ic *harness.InvariantChecker,
	stores []storage.Store, ts *obs.TraceSet, mutate func(*leopard.Config)) (*harness.Cluster, error) {
	q, err := types.NewQuorumParams(n)
	if err != nil {
		return nil, err
	}
	net := netConfig()
	net.TickInterval = 5 * time.Millisecond
	net.Seed = p.seed
	c, err := harness.NewCluster(harness.Options{
		N:             n,
		Net:           net,
		PayloadSize:   PayloadSize,
		LatencySample: 16,
		Trace:         ts,
		Build: func(id types.ReplicaID) (protocol.Replica, error) {
			cfg := leopard.Config{
				ID:                       id,
				Quorum:                   q,
				Suite:                    suite,
				DatablockSize:            p.dbRequests,
				BFTBlockSize:             p.bftSize,
				MaxParallel:              p.maxParallel,
				CheckpointEvery:          p.checkpoint,
				MaxOutstandingDatablocks: 2,
				RetrievalTimeout:         50 * time.Millisecond,
				ViewChangeTimeout:        p.vct,
				// Cap escalation patience below the liveness grace budget:
				// with the default 16x cap, one escalation wait after the
				// plan heals could eat the whole grace window by itself.
				ViewChangeMaxTimeout: 8 * p.vct,
				TrustDigests:         true,
				SkipRequestDedup:     true,
				Store:                stores[id],
				OnExecute:            ic.ExecutionObserver(id),
				// The Build closure runs again on Restart, re-wiring the
				// same per-slot tracer: one event history spans a replica's
				// crash/restart lives.
				Tracer: ts.Tracer(int(id)),
			}
			if mutate != nil {
				mutate(&cfg)
			}
			return leopard.NewNode(cfg)
		},
	})
	if err != nil {
		return nil, err
	}
	c.AttachInvariants(ic)
	ic.AttachTrace(ts)
	return c, nil
}

// chaosHeight is the maximum executed height across all replicas.
func chaosHeight(c *harness.Cluster) types.SeqNum {
	var h types.SeqNum
	for _, r := range c.Replicas {
		if e := r.(*leopard.Node).ExecutedTo(); e > h {
			h = e
		}
	}
	return h
}

// chaosLoad schedules the deterministic background workload: the given
// generators each submit one datablock's worth of requests every
// loadEvery until the absolute until time.
func chaosLoad(c *harness.Cluster, generators []types.ReplicaID, p chaosParams, until time.Duration) {
	var tick func(at time.Duration)
	tick = func(at time.Duration) {
		c.Net.ScheduleCall(at, func(now time.Duration) {
			if now >= until {
				return
			}
			for _, g := range generators {
				c.SubmitN(g, p.dbRequests)
			}
			tick(now + p.loadEvery)
		})
	}
	tick(50 * time.Millisecond)
}

// chaosGenerators picks f+1 load generators that are neither the leader
// nor scheduled to crash. The count matters for liveness under faults:
// only replicas holding pending work vote to leave a stalled view, and
// f+1 stalled voters are what pull the remaining (idle) replicas into
// the view change. Fewer generators and a leader-isolating partition
// would stall the cluster forever without any timeout quorum forming.
func chaosGenerators(n int, leader types.ReplicaID, plan faultplan.Plan) []types.ReplicaID {
	var crashed []types.ReplicaID
	for _, cr := range plan.Crashes {
		crashed = append(crashed, cr.Replica)
	}
	want := (n-1)/3 + 1 // f+1
	var out []types.ReplicaID
	for i := 0; i < n && len(out) < want; i++ {
		if id := types.ReplicaID(i); id != leader && !member(crashed, id) {
			out = append(out, id)
		}
	}
	return out
}

// chaosFinish folds the checker verdict and per-replica counters into the
// result.
func chaosFinish(res *ChaosResult, c *harness.Cluster, ic *harness.InvariantChecker) {
	ic.CheckCertificates(c.Replicas)
	res.Height = chaosHeight(c)
	for _, r := range c.Replicas {
		st := r.(*leopard.Node).Stats()
		res.ViewChanges += st.ViewChanges
		res.VotesLogged += st.VotesLogged
		res.VotesReloaded += st.VotesReloaded
	}
	for i := 0; i < len(c.Replicas); i++ {
		bw := c.Net.Stats(types.ReplicaID(i))
		res.traffic += fmt.Sprintf("%d:%d/%d ", i, bw.TotalSent(), bw.TotalReceived())
	}
	res.Violations = ic.Violations()
	res.PostMortem = ic.PostMortem()
}

// chaosOnce runs one scheduled plan under the invariant checker.
func chaosOnce(n int, plan faultplan.Plan, p chaosParams) (ChaosResult, error) {
	res := ChaosResult{N: n, Plan: plan.Name}
	if p.rotate {
		res.Plan += "+rotate"
	}
	if n < 4 {
		return res, fmt.Errorf("need n >= 4, got %d", n)
	}
	suite, err := crypto.NewSimSuite(n, []byte("chaos"))
	if err != nil {
		return res, err
	}
	ic := harness.NewInvariantChecker(suite)
	p.arm(ic, n)
	stores := make([]storage.Store, n)
	for i := range stores {
		stores[i] = storage.NewMemLog()
		ic.RegisterStore(types.ReplicaID(i), stores[i])
	}
	c, err := chaosCluster(n, p, suite, ic, stores, traceRun("chaos "+res.Plan, n), p.rotateMutate(nil))
	if err != nil {
		return res, err
	}
	eng, err := c.InstallPlan(plan)
	if err != nil {
		return res, err
	}
	c.Start()

	leader := c.Replicas[0].Leader()
	end := plan.End()
	deadline := end + p.grace
	chaosLoad(c, chaosGenerators(n, leader, plan), p, deadline)

	c.Net.Run(end)
	h0 := chaosHeight(c)
	if !c.RunUntil(deadline, 10*time.Millisecond, func() bool { return chaosHeight(c) > h0 }) {
		ic.Violate("liveness: executed height stuck at %d for %v after plan %q healed", h0, p.grace, plan.Name)
	}
	for _, e := range eng.Errs() {
		ic.Violate("schedule: %v", e)
	}
	chaosFinish(&res, c, ic)
	return res, nil
}

// chaosAmnesia is the crash-between-vote-and-execute schedule: the leader
// is crashed the moment it broadcasts the proposal at triggerSeq — its
// σ1 vote cast but the block far from executed — and restarted in the same
// view shortly after. Without the vote-ahead log the restarted leader has
// no memory of the vote and re-proposes different content at the same
// (view, seq): equivocation the message tap detects. With it, the reloaded
// vote lock parks the slot until the view change re-agrees it.
func chaosAmnesia(n int, disableVAL bool, p chaosParams) (ChaosResult, error) {
	name := "amnesia-leader-crash"
	if disableVAL {
		name += "-noval"
	}
	if p.rotate {
		name += "+rotate"
	}
	res := ChaosResult{N: n, Plan: name}
	if n < 4 {
		return res, fmt.Errorf("need n >= 4, got %d", n)
	}
	suite, err := crypto.NewSimSuite(n, []byte("chaos"))
	if err != nil {
		return res, err
	}
	ic := harness.NewInvariantChecker(suite)
	p.arm(ic, n)
	stores := make([]storage.Store, n)
	for i := range stores {
		stores[i] = storage.NewMemLog()
		ic.RegisterStore(types.ReplicaID(i), stores[i])
	}
	c, err := chaosCluster(n, p, suite, ic, stores, traceRun("chaos "+name, n), p.rotateMutate(func(cfg *leopard.Config) {
		// A patient view-change timer keeps the cluster in the leader's
		// view long enough for the restarted leader to equivocate before
		// anyone gives up on it, and a deep outstanding window keeps the
		// generators producing fresh datablocks while confirmations stall
		// — the restarted leader needs new content to re-propose.
		cfg.ViewChangeTimeout = time.Second
		cfg.MaxOutstandingDatablocks = 64
		cfg.DisableVoteAheadLog = disableVAL
	}))
	if err != nil {
		return res, err
	}
	leader := c.Replicas[0].Leader()

	var triggered bool
	var heightAtCrash types.SeqNum
	c.Net.SetObserver(func(now time.Duration, from, to types.ReplicaID, msg transport.Message) {
		ic.ObserveMessage(now, from, to, msg)
		if triggered || from != leader {
			return
		}
		if bm, ok := msg.(*leopard.BFTblockMsg); ok && bm.Block != nil && bm.Block.Seq >= p.triggerSeq {
			triggered = true
			heightAtCrash = chaosHeight(c)
			c.Net.ScheduleCall(now, func(time.Duration) { c.Net.Crash(leader) })
			c.Net.ScheduleCall(now+100*time.Millisecond, func(time.Duration) {
				if err := c.Restart(leader); err != nil {
					ic.Violate("schedule: restart leader %d: %v", leader, err)
				}
			})
		}
	})
	c.Start()

	var generators []types.ReplicaID
	for i := 0; i < n && len(generators) < 2; i++ {
		if id := types.ReplicaID(i); id != leader {
			generators = append(generators, id)
		}
	}
	chaosLoad(c, generators, p, 6*time.Second)

	if !c.RunUntil(4*time.Second, 10*time.Millisecond, func() bool { return triggered }) {
		return res, fmt.Errorf("amnesia: leader never proposed seq %d", p.triggerSeq)
	}
	// Bounded liveness: with the vote-ahead log the parked leader forces a
	// view change; without it the cluster refuses the equivocating
	// proposal and also changes view. Either way execution must resume.
	deadline := c.Net.Now() + 8*time.Second
	if !c.RunUntil(deadline, 10*time.Millisecond, func() bool { return chaosHeight(c) > heightAtCrash+4 }) {
		ic.Violate("liveness: executed height stuck near %d after leader crash-restart", heightAtCrash)
	}
	chaosFinish(&res, c, ic)
	return res, nil
}

// ChaosAmnesia runs the amnesia schedule with default sizing; the A/B over
// disableVAL is the vote-ahead log's acceptance check.
func ChaosAmnesia(n int, disableVAL bool) (ChaosResult, error) {
	return chaosAmnesia(n, disableVAL, defaultChaosParams())
}

// ChaosScenario sweeps the schedule library (plus the amnesia schedule,
// vote-ahead logging enabled) at each scale with the invariant checker on.
// A healthy tree returns zero violations in every row.
func ChaosScenario(scales []int) ([]ChaosResult, error) {
	return chaosScenario(scales, defaultChaosParams())
}

// ChaosScenarioRotated is ChaosScenario with the rotating-leader schedule
// enabled on every replica and the checker's scheduled-proposer invariant
// armed — the fault sweep that gates rotation changes in CI.
func ChaosScenarioRotated(scales []int) ([]ChaosResult, error) {
	p := defaultChaosParams()
	p.rotate = true
	return chaosScenario(scales, p)
}

func chaosScenario(scales []int, p chaosParams) ([]ChaosResult, error) {
	if len(scales) == 0 {
		scales = []int{4, 8, 16}
	}
	var out []ChaosResult
	for _, n := range scales {
		for _, plan := range chaosPlans(n, p.seed) {
			r, err := chaosOnce(n, plan, p)
			if err != nil {
				return nil, fmt.Errorf("chaos n=%d plan=%s: %w", n, plan.Name, err)
			}
			out = append(out, r)
		}
		r, err := chaosAmnesia(n, false, p)
		if err != nil {
			return nil, fmt.Errorf("chaos n=%d plan=%s: %w", n, r.Plan, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// ChaosRunDigest renders the whole schedule library at one scale as a
// deterministic string: two identically-seeded runs must be byte-identical
// (TestChaosDeterministic).
func ChaosRunDigest(n int, p chaosParams) (string, error) {
	var out string
	for _, plan := range chaosPlans(n, p.seed) {
		r, err := chaosOnce(n, plan, p)
		if err != nil {
			return "", err
		}
		out += fmt.Sprintf("plan=%s h=%d vc=%d logged=%d reloaded=%d viol=%d traffic=%s; ",
			r.Plan, r.Height, r.ViewChanges, r.VotesLogged, r.VotesReloaded, len(r.Violations), r.traffic)
	}
	r, err := chaosAmnesia(n, false, p)
	if err != nil {
		return "", err
	}
	out += fmt.Sprintf("plan=%s h=%d vc=%d logged=%d reloaded=%d viol=%d traffic=%s",
		r.Plan, r.Height, r.ViewChanges, r.VotesLogged, r.VotesReloaded, len(r.Violations), r.traffic)
	return out, nil
}
