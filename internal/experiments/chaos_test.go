package experiments

import (
	"strings"
	"testing"
	"time"

	"leopard/internal/crypto"
	"leopard/internal/harness"
	"leopard/internal/leopard"
	"leopard/internal/storage"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// TestChaosScenarioNoViolations sweeps the whole schedule library (plus
// the vote-ahead-enabled amnesia schedule) at n=4, 8 and 16 with the
// invariant checker armed. Any safety, durability or bounded-liveness
// violation under any plan fails the test.
func TestChaosScenarioNoViolations(t *testing.T) {
	results, err := ChaosScenario(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if len(r.Violations) > 0 {
			t.Errorf("n=%d plan=%s: %v", r.N, r.Plan, r.Violations)
		}
		if r.Height == 0 {
			t.Errorf("n=%d plan=%s: no execution progress at all", r.N, r.Plan)
		}
	}
}

// TestChaosDeterministic runs the full n=4 schedule library twice with
// identical seeds: heights, view changes, vote-log counters and the
// traffic signature must be byte-identical.
func TestChaosDeterministic(t *testing.T) {
	p := defaultChaosParams()
	first, err := ChaosRunDigest(4, p)
	if err != nil {
		t.Fatal(err)
	}
	second, err := ChaosRunDigest(4, p)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("identically-seeded chaos runs diverged:\n  run 1: %s\n  run 2: %s", first, second)
	}
}

// TestVoteAheadAmnesiaWindow is the A/B regression for vote-ahead logging.
// The schedule crashes the leader between broadcasting a proposal (which
// embeds its first-round vote) and executing the block, then restarts it
// within the same view. Without the vote-ahead log the restarted leader
// has no memory of the vote and proposes different content at the same
// (view, seq) — round-0 equivocation at the message tap. With the log the
// reloaded lock pins the slot and the run must be violation-free.
func TestVoteAheadAmnesiaWindow(t *testing.T) {
	broken, err := ChaosAmnesia(4, true)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range broken.Violations {
		if strings.Contains(v, "equivocation") {
			found = true
		}
	}
	if !found {
		t.Errorf("vote-ahead logging disabled: expected an equivocation violation, got %v", broken.Violations)
	}

	fixed, err := ChaosAmnesia(4, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed.Violations) > 0 {
		t.Errorf("vote-ahead logging enabled: %v", fixed.Violations)
	}
	if fixed.VotesReloaded == 0 {
		t.Errorf("vote-ahead logging enabled: restarted leader reloaded no vote locks")
	}
}

// escalationTimeoutVotes runs a 4-replica cluster into a total blackout
// (every inter-replica message dropped) with pending work everywhere, and
// counts the timeout votes one replica sends to one fixed peer over the
// horizon. With no quorum ever forming, the view change escalates forever;
// the count measures how fast the replica burns views.
func escalationTimeoutVotes(t *testing.T, maxTimeout time.Duration) int {
	t.Helper()
	const n = 4
	p := defaultChaosParams()
	suite, err := crypto.NewSimSuite(n, []byte("chaos"))
	if err != nil {
		t.Fatal(err)
	}
	ic := harness.NewInvariantChecker(suite)
	stores := make([]storage.Store, n)
	for i := range stores {
		stores[i] = storage.NewMemLog()
	}
	c, err := chaosCluster(n, p, suite, ic, stores, nil, func(cfg *leopard.Config) {
		cfg.ViewChangeTimeout = 100 * time.Millisecond
		cfg.ViewChangeMaxTimeout = maxTimeout
	})
	if err != nil {
		t.Fatal(err)
	}
	votes := 0
	c.Net.SetFilter(func(now time.Duration, from, to types.ReplicaID, msg transport.Message) bool {
		if from == 0 && to == 1 {
			if _, ok := msg.(*leopard.TimeoutMsg); ok {
				votes++
			}
		}
		return false // total blackout
	})
	c.Start()
	for i := 0; i < n; i++ {
		c.SubmitN(types.ReplicaID(i), p.dbRequests)
	}
	c.Net.Run(10 * time.Second)
	return votes
}

// TestViewTimeoutEscalation pins the exponential view-timeout ladder: in a
// long blackout a replica with a flat 4x patience re-votes every interval,
// while the doubling ladder backs off and sends a fraction of the votes.
func TestViewTimeoutEscalation(t *testing.T) {
	vct := 100 * time.Millisecond
	flat := escalationTimeoutVotes(t, 4*vct)    // cap = initial patience: no growth
	capped := escalationTimeoutVotes(t, 16*vct) // doubling up to 16x
	if flat < 10 {
		t.Fatalf("flat patience sent only %d timeout votes in 10s; blackout harness broken?", flat)
	}
	if capped >= flat {
		t.Errorf("exponential escalation sent %d timeout votes, flat patience %d — expected strictly fewer", capped, flat)
	}
	t.Logf("timeout votes over 10s blackout: flat=%d exponential=%d", flat, capped)
}
