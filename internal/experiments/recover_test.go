package experiments

import (
	"testing"
	"time"
)

// fastRecoverParams shrinks the scenario for the regression suite.
func fastRecoverParams() recoverParams {
	return recoverParams{
		dbRequests:  50,
		bftSize:     2,
		maxParallel: 16,
		checkpoint:  8,
		loadEvery:   20 * time.Millisecond,
		crashAt:     300 * time.Millisecond,
		restartAt:   1100 * time.Millisecond,
		loadUntil:   1200 * time.Millisecond,
		deadline:    20 * time.Second,
		seed:        1,
	}
}

// TestRecoverScenarioRegression is the recover-scenario gate: the restarted
// replica must reach the cluster's executed height via WAL replay + state
// transfer — with zero agreement re-votes for the transferred range and
// zero per-datablock retrievals — while the pre-durability baseline never
// catches up (its executed prefix is garbage-collected cluster-wide).
func TestRecoverScenarioRegression(t *testing.T) {
	p := fastRecoverParams()

	r, err := recoverOnce(4, true, p)
	if err != nil {
		t.Fatal(err)
	}
	if !r.CaughtUp {
		t.Fatalf("durable victim did not catch up: %+v", r)
	}
	if r.BlocksReplayed == 0 {
		t.Errorf("expected WAL replay at restart, got none: %+v", r)
	}
	if r.StateBlocks == 0 {
		t.Errorf("expected state-transfer blocks, got none: %+v", r)
	}
	if r.ReVotes != 0 {
		t.Errorf("restarted replica re-voted %d times in the transferred range", r.ReVotes)
	}
	if r.Retrievals != 0 {
		t.Errorf("restarted replica fell back to %d per-datablock retrievals", r.Retrievals)
	}
	if r.CatchupTime <= 0 || r.CatchupTime > 10*time.Second {
		t.Errorf("catch-up time out of bounds: %v", r.CatchupTime)
	}

	// The baseline restarts empty without state transfer: the range below
	// the cluster watermark is unreachable, so it must never reach height.
	base := p
	base.deadline = 5 * time.Second
	b, err := recoverOnce(4, false, base)
	if err != nil {
		t.Fatal(err)
	}
	if b.CaughtUp {
		t.Fatalf("baseline caught up without state transfer: %+v", b)
	}
}

// TestRecoverScenarioDeterministic asserts two identically-seeded durable
// runs are byte-identical — counters, timings and the full per-replica
// traffic signature.
func TestRecoverScenarioDeterministic(t *testing.T) {
	p := fastRecoverParams()
	a, err := RecoverRunDigest(4, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RecoverRunDigest(4, p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("identically-seeded runs diverged:\n run A: %s\n run B: %s", a, b)
	}
}
