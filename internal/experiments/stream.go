package experiments

import (
	"fmt"
	"time"

	"leopard/internal/leopard"
	"leopard/internal/simnet"
	"leopard/internal/transport"
	"leopard/internal/types"
)

// StreamResult is one row of the stream scenario: a mixed ~1 MiB datablock
// fan-out with one slow receiver, run under the chunked credit-based bulk
// lane and under the drop-on-overflow baseline it replaced.
type StreamResult struct {
	N    int
	Mode string // "stream" (BulkCredit) or "drop" (BulkDrop baseline)
	// Converged is from first submission until every replica holds every
	// datablock (by any path: dissemination or retrieval).
	Converged time.Duration
	// PeakQueuedBytes is the largest bulk backlog any sender parked for
	// one peer set at once — the memory cost of not dropping.
	PeakQueuedBytes int64
	// BulkDrops counts datablock/retrieval frames lost at the bulk lane
	// (tail drops in the baseline, park-budget evictions under credits).
	BulkDrops int64
	// Retrievals counts datablocks recovered via Alg. 3 across replicas —
	// the protocol-level repair work transport losses force.
	Retrievals int64
}

// streamParams sizes one scenario run. The CLI uses full ~1 MiB blocks;
// the regression test shrinks everything to stay fast.
type streamParams struct {
	dbRequests int     // requests per datablock (×128 B payload)
	blocksPer  int     // datablocks per generator
	linkBps    float64 // cluster link rate
	slowBps    float64 // the slow receiver's ingress rate
	window     int64   // credit window / in-flight bound, both modes
	chunk      int     // stream chunk size
	dropBudget int64   // baseline bounded-queue size (PR 3 sizing)
	parkBudget int64   // streaming park budget
	timeout    time.Duration
}

func defaultStreamParams() streamParams {
	return streamParams{
		dbRequests: 8192, // ~1.2 MiB datablocks at 128 B payload
		blocksPer:  4,
		linkBps:    200e6,
		slowBps:    20e6,
		window:     256 << 10,
		chunk:      64 << 10,
		dropBudget: 2 << 20,
		parkBudget: 64 << 20,
		timeout:    120 * time.Second,
	}
}

// StreamScenario runs the slow-receiver fan-out at each scale under both
// bulk models. Two generators broadcast blocksPer ~1 MiB datablocks each
// while the last replica's ingress runs at a tenth of the cluster's link
// rate. Under credits the backlog parks at the senders and drains at the
// receiver's pace — zero drops, zero retrievals; under the
// drop-on-overflow baseline the bounded queue sheds datablocks and the
// slow replica must repair via retrieval.
func StreamScenario(scales []int) ([]StreamResult, error) {
	if len(scales) == 0 {
		scales = []int{4, 8}
	}
	var out []StreamResult
	for _, n := range scales {
		for _, mode := range []simnet.BulkModel{simnet.BulkCredit, simnet.BulkDrop} {
			r, err := streamOnce(n, mode, defaultStreamParams())
			if err != nil {
				return nil, fmt.Errorf("stream n=%d %s: %w", n, r.Mode, err)
			}
			out = append(out, r)
		}
	}
	return out, nil
}

func streamOnce(n int, mode simnet.BulkModel, p streamParams) (StreamResult, error) {
	res := StreamResult{N: n, Mode: "stream"}
	if mode == simnet.BulkDrop {
		res.Mode = "drop"
	}
	if n < 4 {
		return res, fmt.Errorf("need n >= 4, got %d", n)
	}
	slow := types.ReplicaID(n - 1)
	net := netConfig()
	net.EgressBps = p.linkBps
	net.IngressBps = p.linkBps
	net.ProcBps = 0 // a pure transport scenario: the wire is the bottleneck
	net.TickInterval = 5 * time.Millisecond
	net.Bulk = mode
	net.IngressBpsPer = make([]float64, n)
	net.IngressBpsPer[slow] = p.slowBps
	net.Stream = transport.StreamConfig{
		ChunkSize:    p.chunk,
		CreditWindow: p.window,
		ParkBudget:   p.parkBudget,
	}
	if mode == simnet.BulkDrop {
		// The baseline's bounded queue uses the PR 3 sizing: small, since
		// without flow control a deep queue just pins stale datablocks.
		net.Stream.ParkBudget = p.dropBudget
	}

	// No background saturation: the scenario injects an exact burst.
	c, err := leopardClusterDepth(n, p.dbRequests, 10, 0, net, func(cfg *leopard.Config) {
		cfg.ViewChangeTimeout = time.Hour
		// Generous retrieval timer, as the paper's network-profiled
		// adaptive timer: parked-but-flowing datablocks must not trigger
		// spurious queries, while frames the baseline dropped (which will
		// never arrive) still get repaired.
		cfg.RetrievalTimeout = 4 * time.Second
		cfg.MaxOutstandingDatablocks = 2
		// Keep every datablock pooled until the run ends so convergence
		// can be read off DatablocksHeld (no checkpoint GC mid-run).
		cfg.MaxParallel = 200
	})
	if err != nil {
		return res, err
	}
	c.Start()
	c.Net.Run(50 * time.Millisecond) // connect/tick warm-up

	// Two generators, skipping the view-1 leader (replica 1) and the slow
	// receiver: replicas 0 and 2 each submit exactly blocksPer datablocks'
	// worth of requests.
	generators := []types.ReplicaID{0, 2}
	for _, g := range generators {
		c.SubmitN(g, p.blocksPer*p.dbRequests)
	}
	totalBlocks := int64(len(generators) * p.blocksPer)

	nodes := make([]*leopard.Node, 0, n)
	for _, r := range c.Replicas {
		if node, ok := r.(*leopard.Node); ok {
			nodes = append(nodes, node)
		}
	}
	start := c.Net.Now()
	converged := func() bool {
		for _, node := range nodes {
			if node.Stats().DatablocksHeld < totalBlocks {
				return false
			}
		}
		return true
	}
	if ok := c.RunUntil(start+p.timeout, 10*time.Millisecond, converged); !ok {
		held := make([]int64, n)
		for i, node := range nodes {
			held[i] = node.Stats().DatablocksHeld
		}
		return res, fmt.Errorf("no convergence within %v: held %v of %d, drops %d",
			p.timeout, held, totalBlocks, c.Net.TotalBulkDrops())
	}
	res.Converged = c.Net.Now() - start
	res.PeakQueuedBytes = c.Net.PeakQueuedBytes()
	res.BulkDrops = c.Net.TotalBulkDrops()
	for _, node := range nodes {
		res.Retrievals += node.Stats().Retrievals
	}
	return res, nil
}
