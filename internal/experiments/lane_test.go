package experiments

import (
	"testing"
)

// TestViewChangeUnderBulkLanesWin is the simnet half of the lane-priority
// regression: with every link saturated by datablock traffic, view-change
// convergence under strict control-over-bulk lanes must beat the
// single-FIFO baseline by a wide margin (the control path no longer queues
// behind megabytes of bulk). The simulation is deterministic, so the
// comparison is stable.
func TestViewChangeUnderBulkLanesWin(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	rows, err := ViewChangeUnderBulk([]int{8})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	t.Logf("n=%d laned=%v singleq=%v", r.N, r.Laned, r.SingleQ)
	if r.Laned <= 0 || r.SingleQ <= 0 {
		t.Fatal("view change did not converge")
	}
	if r.Laned*5 > r.SingleQ {
		t.Errorf("lanes gained only %v -> %v; want at least 5x faster convergence", r.SingleQ, r.Laned)
	}
}
