package experiments

import (
	"testing"
	"time"

	"leopard/internal/leopard/analysis"
	"leopard/internal/types"
)

// TestScalingFactorMatchesModel cross-checks the §V-B closed-form cost
// model against traffic actually measured on the simulator: the heaviest
// per-replica communication per confirmed payload byte (the measured
// scaling factor) must match the analytical SF within tolerance.
func TestScalingFactorMatchesModel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	const n = 32
	dbSize, bftSize, _ := TableII(n)
	c, err := leopardCluster(n, dbSize, bftSize, netConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Warmup(time.Second)
	res := c.MeasureFor(2 * time.Second)
	if res.Confirmed == 0 {
		t.Fatal("nothing confirmed")
	}
	payloadBytes := float64(res.Confirmed) * PayloadSize

	var worst float64
	for i := 0; i < n; i++ {
		total := float64(c.Net.Stats(types.ReplicaID(i)).Total())
		if sf := total / payloadBytes; sf > worst {
			worst = sf
		}
	}

	p := analysis.DefaultParams(n, dbSize)
	p.Tau = float64(bftSize)
	model := analysis.LeopardScalingFactor(p)
	t.Logf("measured SF = %.3f, model SF = %.3f", worst, model)

	// The wire format adds ~16% framing over raw payload (148 vs 128 B
	// per request), and the model ignores ready/checkpoint traffic; allow
	// 25% headroom, but insist the measured SF is in the model's regime —
	// in particular far below the leader-dissemination SF of n-1 = 31.
	if worst > model*1.25 {
		t.Errorf("measured SF %.3f exceeds model %.3f by more than 25%%", worst, model)
	}
	if worst < model*0.7 {
		t.Errorf("measured SF %.3f implausibly below model %.3f", worst, model)
	}
}
