package simnet

import (
	"testing"
	"time"

	"leopard/internal/transport"
)

// TestProcessingStageSerializesBulk verifies the CPU-model stage: bulk
// messages queue through the per-replica processing pipe after ingress.
func TestProcessingStageSerializesBulk(t *testing.T) {
	cfg := Config{
		EgressBps:  8e9, // network effectively free
		IngressBps: 8e9,
		ProcBps:    8e6, // 1 MB/s processing
	}
	net, nodes := newTestNet(t, cfg, 3)
	// Two 1000-byte bulk messages: processing takes 1 ms each, serially.
	nodes[0].onStart = []transport.Envelope{transport.Unicast(2, &testMsg{size: 1000, tag: 1})}
	nodes[1].onStart = []transport.Envelope{transport.Unicast(2, &testMsg{size: 1000, tag: 2})}
	net.Start()
	net.Run(time.Second)
	if len(nodes[2].got) != 2 {
		t.Fatalf("received %d messages", len(nodes[2].got))
	}
	if gap := nodes[2].gotAt[1] - nodes[2].gotAt[0]; gap < 900*time.Microsecond {
		t.Errorf("processing did not serialize: gap %v", gap)
	}
}

// TestProcessingStageSkipsControl verifies control messages bypass the
// processing queue entirely.
func TestProcessingStageSkipsControl(t *testing.T) {
	cfg := Config{EgressBps: 8e9, IngressBps: 8e9, ProcBps: 8e3} // proc crawls
	net, nodes := newTestNet(t, cfg, 2)
	nodes[0].onStart = []transport.Envelope{
		transport.Unicast(1, &testMsg{size: 1000, tag: 1}),                            // bulk: 1s proc
		transport.Unicast(1, &testMsg{size: 100, tag: 2, class: transport.ClassVote}), // control
	}
	net.Start()
	net.Run(5 * time.Second)
	if len(nodes[1].got) != 2 {
		t.Fatalf("received %d messages", len(nodes[1].got))
	}
	if nodes[1].got[0] != 2 {
		t.Error("control message waited behind the processing queue")
	}
}

// TestHalfDuplexHalvesDirectionRate verifies that half-duplex mode runs
// each direction at half the configured link rate.
func TestHalfDuplexHalvesDirectionRate(t *testing.T) {
	full := Config{EgressBps: 8e6, IngressBps: 8e6}
	half := full
	half.HalfDuplex = true

	measure := func(cfg Config) time.Duration {
		net, nodes := newTestNet(t, cfg, 2)
		nodes[0].onStart = []transport.Envelope{transport.Unicast(1, &testMsg{size: 10000, tag: 1})}
		net.Start()
		net.Run(time.Second)
		if len(nodes[1].got) != 1 {
			t.Fatal("message not delivered")
		}
		return nodes[1].gotAt[0]
	}
	fullTime := measure(full)
	halfTime := measure(half)
	ratio := float64(halfTime) / float64(fullTime)
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("half-duplex delivery took %v vs %v full duplex; want ~2x", halfTime, fullTime)
	}
}

// TestHalfDuplexNoCrossReplicaRatchet is a regression test for the booking
// ratchet: a replica whose *sends* are heavily queued must still be able to
// receive promptly (the directions must not share one FIFO horizon).
func TestHalfDuplexNoCrossReplicaRatchet(t *testing.T) {
	cfg := Config{EgressBps: 8e6, HalfDuplex: true} // 0.5 MB/s per direction
	net, nodes := newTestNet(t, cfg, 3)
	// Node 1 queues 2 seconds of outbound bulk to node 2 at t=0.
	nodes[1].onStart = []transport.Envelope{transport.Unicast(2, &testMsg{size: 1000000, tag: 9})}
	// Node 0 sends a small bulk frame to node 1; it must not wait for
	// node 1's outbound queue to drain.
	nodes[0].onStart = []transport.Envelope{transport.Unicast(1, &testMsg{size: 500, tag: 1})}
	net.Start()
	net.Run(10 * time.Second)
	if len(nodes[1].got) != 1 {
		t.Fatal("node 1 did not receive")
	}
	if nodes[1].gotAt[0] > 100*time.Millisecond {
		t.Errorf("receive delayed to %v by the sender-side queue (ratchet regression)", nodes[1].gotAt[0])
	}
}

// TestPipeLagDiagnostics sanity-checks the diagnostic accessor.
func TestPipeLagDiagnostics(t *testing.T) {
	cfg := Config{EgressBps: 8e6, IngressBps: 8e6, ProcBps: 8e6}
	net, nodes := newTestNet(t, cfg, 2)
	nodes[0].onStart = []transport.Envelope{transport.Unicast(1, &testMsg{size: 100000, tag: 1})}
	net.Start() // events queued but virtual time still 0
	tx, _, _ := net.PipeLag(0)
	if tx == 0 {
		t.Error("sender egress lag should be non-zero right after queuing")
	}
	net.Run(10 * time.Second)
	tx, rx, proc := net.PipeLag(0)
	if tx != 0 || rx != 0 || proc != 0 {
		t.Errorf("pipes should be drained: %v %v %v", tx, rx, proc)
	}
}
