package simnet

import (
	"fmt"
	"testing"
	"time"

	"leopard/internal/transport"
	"leopard/internal/types"
)

// testMsg is a sized message for transport tests. It defaults to the bulk
// datablock class so bandwidth-queue tests exercise FIFO behaviour; set
// class for control-message (priority) behaviour.
type testMsg struct {
	size  int
	tag   int
	class transport.Class
}

func (m *testMsg) WireSize() int { return m.size }
func (m *testMsg) Class() transport.Class {
	if m.class != 0 {
		return m.class
	}
	return transport.ClassDatablock
}

// echoNode records deliveries and can send on start or tick.
type echoNode struct {
	id       types.ReplicaID
	onStart  []transport.Envelope
	got      []int
	gotAt    []time.Duration
	gotFrom  []types.ReplicaID
	gotMsgs  []transport.Message
	tickSend []transport.Envelope
	ticks    int
}

func (n *echoNode) ID() types.ReplicaID { return n.id }
func (n *echoNode) Start(now time.Duration, out transport.Sink) {
	for _, env := range n.onStart {
		out.Send(env)
	}
}
func (n *echoNode) Deliver(now time.Duration, from types.ReplicaID, msg transport.Message, out transport.Sink) {
	m := msg.(*testMsg)
	n.got = append(n.got, m.tag)
	n.gotAt = append(n.gotAt, now)
	n.gotFrom = append(n.gotFrom, from)
	n.gotMsgs = append(n.gotMsgs, msg)
}
func (n *echoNode) Tick(now time.Duration, out transport.Sink) {
	n.ticks++
	for _, env := range n.tickSend {
		out.Send(env)
	}
	n.tickSend = nil
}

func newTestNet(t *testing.T, cfg Config, count int) (*Network, []*echoNode) {
	t.Helper()
	nodes := make([]*echoNode, count)
	tnodes := make([]transport.Node, count)
	for i := range nodes {
		nodes[i] = &echoNode{id: types.ReplicaID(i)}
		tnodes[i] = nodes[i]
	}
	net, err := New(cfg, tnodes)
	if err != nil {
		t.Fatal(err)
	}
	return net, nodes
}

func TestDeliveryTimeIncludesBandwidthAndLatency(t *testing.T) {
	cfg := Config{
		EgressBps:  8e6, // 1 MB/s
		IngressBps: 8e6,
		Latency:    10 * time.Millisecond,
	}
	net, nodes := newTestNet(t, cfg, 2)
	nodes[0].onStart = []transport.Envelope{transport.Unicast(1, &testMsg{size: 1000, tag: 1})}
	net.Start()
	net.Run(time.Second)

	if len(nodes[1].got) != 1 {
		t.Fatalf("node 1 received %d messages", len(nodes[1].got))
	}
	// 1000 bytes at 1 MB/s = 1 ms egress + 10 ms latency + 1 ms ingress.
	want := 12 * time.Millisecond
	got := nodes[1].gotAt[0]
	if got < want || got > want+time.Millisecond {
		t.Errorf("delivered at %v, want ~%v", got, want)
	}
}

func TestEgressSerializesBroadcast(t *testing.T) {
	// A broadcast of b bytes to n-1 peers occupies the egress pipe
	// (n-1)*b/rate seconds: the last receiver sees it much later than the
	// first. This is the leader-bottleneck mechanism of the paper.
	cfg := Config{EgressBps: 8e6, IngressBps: 8e9, Latency: 0}
	net, nodes := newTestNet(t, cfg, 5)
	nodes[0].onStart = []transport.Envelope{transport.Broadcast(&testMsg{size: 1000, tag: 1})}
	net.Start()
	net.Run(time.Second)

	first := nodes[1].gotAt[0]
	last := nodes[4].gotAt[0]
	if last <= first {
		t.Fatalf("broadcast did not serialize: first=%v last=%v", first, last)
	}
	// 4 copies at 1 ms each: last should arrive ~4 ms in.
	if last < 3900*time.Microsecond || last > 4200*time.Microsecond {
		t.Errorf("last delivery at %v, want ~4ms", last)
	}
}

func TestIngressContention(t *testing.T) {
	// Two senders each send 1000 B to node 2 simultaneously; the second
	// transfer must queue behind the first at the receiver's ingress.
	cfg := Config{EgressBps: 8e9, IngressBps: 8e6, Latency: 0}
	net, nodes := newTestNet(t, cfg, 3)
	nodes[0].onStart = []transport.Envelope{transport.Unicast(2, &testMsg{size: 1000, tag: 1})}
	nodes[1].onStart = []transport.Envelope{transport.Unicast(2, &testMsg{size: 1000, tag: 2})}
	net.Start()
	net.Run(time.Second)

	if len(nodes[2].got) != 2 {
		t.Fatalf("received %d messages", len(nodes[2].got))
	}
	gap := nodes[2].gotAt[1] - nodes[2].gotAt[0]
	if gap < 900*time.Microsecond {
		t.Errorf("ingress did not serialize: gap %v, want ~1ms", gap)
	}
}

func TestPerPairFIFOOrder(t *testing.T) {
	cfg := Config{EgressBps: 8e6, IngressBps: 8e6, Latency: time.Millisecond}
	net, nodes := newTestNet(t, cfg, 2)
	nodes[0].onStart = []transport.Envelope{
		transport.Unicast(1, &testMsg{size: 5000, tag: 1}), // large first
		transport.Unicast(1, &testMsg{size: 10, tag: 2}),   // small second
	}
	net.Start()
	net.Run(time.Second)
	if len(nodes[1].got) != 2 || nodes[1].got[0] != 1 || nodes[1].got[1] != 2 {
		t.Fatalf("bulk messages reordered: %v", nodes[1].got)
	}
}

func TestControlTrafficPreemptsBulk(t *testing.T) {
	// A small control message (vote) sent after a large bulk transfer must
	// not wait behind it: real stacks interleave flows (priority queuing).
	cfg := Config{EgressBps: 8e6, IngressBps: 8e6, Latency: 0}
	net, nodes := newTestNet(t, cfg, 2)
	nodes[0].onStart = []transport.Envelope{
		transport.Unicast(1, &testMsg{size: 1000000, tag: 1}), // 1s of bulk
		transport.Unicast(1, &testMsg{size: 100, tag: 2, class: transport.ClassVote}),
	}
	net.Start()
	net.Run(5 * time.Second)
	if len(nodes[1].got) != 2 {
		t.Fatalf("received %d messages", len(nodes[1].got))
	}
	if nodes[1].got[0] != 2 {
		t.Fatal("control message did not preempt the bulk transfer")
	}
	if nodes[1].gotAt[0] > 10*time.Millisecond {
		t.Errorf("control message delayed to %v", nodes[1].gotAt[0])
	}
}

func TestFilterDropsMessages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TickInterval = 0
	net, nodes := newTestNet(t, cfg, 3)
	nodes[0].onStart = []transport.Envelope{transport.Broadcast(&testMsg{size: 10, tag: 1})}
	net.SetFilter(func(now time.Duration, from, to types.ReplicaID, msg transport.Message) bool {
		return to != 2 // drop everything to node 2
	})
	net.Start()
	net.Run(time.Second)
	if len(nodes[1].got) != 1 {
		t.Error("node 1 should have received the broadcast")
	}
	if len(nodes[2].got) != 0 {
		t.Error("filter failed to drop")
	}
}

func TestCrashAndRestart(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TickInterval = 0
	net, nodes := newTestNet(t, cfg, 2)
	net.Start()
	net.Crash(1)
	net.ScheduleCall(10*time.Millisecond, func(now time.Duration) {
		net.dispatch(0, transport.Unicast(1, &testMsg{size: 10, tag: 1}))
	})
	net.Run(20 * time.Millisecond)
	if len(nodes[1].got) != 0 {
		t.Fatal("crashed node received a message")
	}
	net.Restart(1)
	net.ScheduleCall(30*time.Millisecond, func(now time.Duration) {
		net.dispatch(0, transport.Unicast(1, &testMsg{size: 10, tag: 2}))
	})
	net.Run(50 * time.Millisecond)
	if len(nodes[1].got) != 1 || nodes[1].got[0] != 2 {
		t.Fatalf("restarted node got %v, want [2]", nodes[1].got)
	}
}

func TestTicksFireAtInterval(t *testing.T) {
	cfg := Config{EgressBps: 1e9, IngressBps: 1e9, TickInterval: 10 * time.Millisecond}
	net, nodes := newTestNet(t, cfg, 2)
	net.Start()
	net.Run(100 * time.Millisecond)
	if nodes[0].ticks < 9 || nodes[0].ticks > 11 {
		t.Errorf("got %d ticks in 100ms at 10ms interval", nodes[0].ticks)
	}
	// Ticking must survive across Run calls.
	before := nodes[0].ticks
	net.Run(200 * time.Millisecond)
	if nodes[0].ticks <= before {
		t.Error("ticks stopped after the first Run window")
	}
}

func TestBandwidthAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TickInterval = 0
	net, nodes := newTestNet(t, cfg, 3)
	nodes[0].onStart = []transport.Envelope{transport.Broadcast(&testMsg{size: 500, tag: 1})}
	net.Start()
	net.Run(time.Second)
	if got := net.Stats(0).TotalSent(); got != 1000 {
		t.Errorf("sender counted %d bytes, want 1000", got)
	}
	if got := net.Stats(1).TotalReceived(); got != 500 {
		t.Errorf("receiver counted %d bytes, want 500", got)
	}
	net.ResetStats()
	if net.Stats(0).Total() != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestSelfSendIgnored(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TickInterval = 0
	net, nodes := newTestNet(t, cfg, 2)
	nodes[0].onStart = []transport.Envelope{transport.Unicast(0, &testMsg{size: 10, tag: 1})}
	net.Start()
	net.Run(time.Second)
	if len(nodes[0].got) != 0 {
		t.Error("self-send must be dropped")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		cfg := DefaultConfig()
		cfg.Jitter = time.Millisecond
		cfg.TickInterval = 0
		net, nodes := newTestNet(t, cfg, 4)
		nodes[0].onStart = []transport.Envelope{transport.Broadcast(&testMsg{size: 100, tag: 1})}
		nodes[1].onStart = []transport.Envelope{transport.Broadcast(&testMsg{size: 200, tag: 2})}
		net.Start()
		net.Run(time.Second)
		var all []time.Duration
		for _, n := range nodes {
			all = append(all, n.gotAt...)
		}
		return all
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different event counts across identical runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d at %v vs %v: not deterministic", i, a[i], b[i])
		}
	}
}

// testMsgCodec round-trips testMsg through real bytes, for wire-fidelity
// tests. failDecode simulates a codec rejecting the frame.
type testMsgCodec struct{ failDecode bool }

func (c testMsgCodec) Encode(m transport.Message) ([]byte, error) {
	t := m.(*testMsg)
	return []byte{byte(t.size >> 8), byte(t.size), byte(t.tag), byte(t.class)}, nil
}

func (c testMsgCodec) Decode(buf []byte) (transport.Message, error) {
	if c.failDecode {
		return nil, fmt.Errorf("testMsgCodec: rejected")
	}
	return &testMsg{size: int(buf[0])<<8 | int(buf[1]), tag: int(buf[2]), class: transport.Class(buf[3])}, nil
}

func TestWireFidelityDeliversDecodedMessage(t *testing.T) {
	cfg := Config{EgressBps: 1e9, IngressBps: 1e9, Codec: testMsgCodec{}}
	sent := &testMsg{size: 500, tag: 42}
	net, nodes := newTestNet(t, cfg, 2)
	nodes[0].onStart = []transport.Envelope{transport.Unicast(1, sent)}
	net.Start()
	net.Run(time.Second)
	if len(nodes[1].got) != 1 || nodes[1].got[0] != 42 {
		t.Fatalf("fidelity delivery failed: got %v", nodes[1].got)
	}
	if nodes[1].gotMsgs[0] == transport.Message(sent) {
		t.Error("fidelity mode must deliver a decoded message, not the sender's instance")
	}
	if got := nodes[1].gotMsgs[0].WireSize(); got != sent.WireSize() {
		t.Errorf("decoded message WireSize %d, want %d", got, sent.WireSize())
	}
}

func TestWireFidelityDropsUndecodableMessage(t *testing.T) {
	cfg := Config{EgressBps: 1e9, IngressBps: 1e9, Codec: testMsgCodec{failDecode: true}}
	net, nodes := newTestNet(t, cfg, 2)
	nodes[0].onStart = []transport.Envelope{transport.Unicast(1, &testMsg{size: 500, tag: 42})}
	net.Start()
	net.Run(time.Second)
	if len(nodes[1].got) != 0 {
		t.Fatalf("undecodable message delivered: %v", nodes[1].got)
	}
}

func TestNodeIDMismatchRejected(t *testing.T) {
	nodes := []transport.Node{&echoNode{id: 5}}
	if _, err := New(DefaultConfig(), nodes); err == nil {
		t.Fatal("mismatched node id accepted")
	}
}

func TestInvalidCapacityRejected(t *testing.T) {
	if _, err := New(Config{EgressBps: 0, IngressBps: 1}, nil); err == nil {
		t.Fatal("zero egress accepted")
	}
}

// clockNode records the virtual time every tick observes.
type clockNode struct {
	echoNode
	seen []time.Duration
}

func (n *clockNode) Tick(now time.Duration, out transport.Sink) {
	n.seen = append(n.seen, now)
}

// TestClockSkewHealNeverStepsBackwards: healing a positive skew must not
// rewind the node-observed clock — leopard's timer arithmetic assumes time
// is nondecreasing — so the clock holds still until true time catches up.
func TestClockSkewHealNeverStepsBackwards(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TickInterval = 10 * time.Millisecond
	node := &clockNode{echoNode: echoNode{id: 0}}
	net, err := New(cfg, []transport.Node{node})
	if err != nil {
		t.Fatal(err)
	}
	net.SetClockSkew(0, 40*time.Millisecond)
	net.ScheduleCall(100*time.Millisecond, func(now time.Duration) {
		net.SetClockSkew(0, 0) // heal mid-run
	})
	net.Start()
	net.Run(200 * time.Millisecond)
	if len(node.seen) == 0 {
		t.Fatal("no ticks observed")
	}
	for i := 1; i < len(node.seen); i++ {
		if node.seen[i] < node.seen[i-1] {
			t.Fatalf("observed clock stepped backwards: %v after %v", node.seen[i], node.seen[i-1])
		}
	}
	// Once true time passes the skewed high-water mark, the clock advances
	// again instead of freezing forever.
	if last := node.seen[len(node.seen)-1]; last <= 150*time.Millisecond {
		t.Fatalf("observed clock never resumed after the heal: last tick at %v", last)
	}
}
